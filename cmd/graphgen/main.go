// Command graphgen generates synthetic company graphs: the Italian-company-
// like graphs with planted family ground truth (the paper's real-world-data
// substitute) and Barabási–Albert scale-free graphs (the §6 synthetic data).
//
// Usage:
//
//	graphgen italian -persons 2000 [-companies 1000] [-seed 1] -out graph.json
//	graphgen barabasi -n 1000 -m 2 [-seed 1] [-persons 0.5] -out graph.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vadalink"
	"vadalink/internal/graphgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "italian":
		cmdItalian(os.Args[2:])
	case "barabasi":
		cmdBarabasi(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: graphgen <italian|barabasi> [flags]")
	os.Exit(2)
}

func writeGraph(g *vadalink.Graph, path string) {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		log.Fatal(err)
	}
}

func cmdItalian(args []string) {
	fs := flag.NewFlagSet("italian", flag.ExitOnError)
	persons := fs.Int("persons", 2000, "person nodes")
	companies := fs.Int("companies", 0, "company nodes (0 = same as persons)")
	seed := fs.Int64("seed", 1, "RNG seed")
	out := fs.String("out", "", "output file (default stdout)")
	truth := fs.String("truth", "", "also write the planted ground-truth pairs here (CSV)")
	_ = fs.Parse(args)

	it := graphgen.NewItalian(graphgen.ItalianConfig{
		Persons: *persons, Companies: *companies, Seed: *seed,
	})
	log.Printf("generated %d nodes, %d edges, %d planted family pairs",
		it.Graph.NumNodes(), it.Graph.NumEdges(), len(it.Truth))
	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "x,y,class")
		for _, gt := range it.Truth {
			fmt.Fprintf(f, "%d,%d,%s\n", gt.X, gt.Y, gt.Class)
		}
		f.Close()
	}
	writeGraph(it.Graph, *out)
}

func cmdBarabasi(args []string) {
	fs := flag.NewFlagSet("barabasi", flag.ExitOnError)
	n := fs.Int("n", 1000, "nodes")
	m := fs.Int("m", 2, "edges per node (density)")
	seed := fs.Int64("seed", 1, "RNG seed")
	personFrac := fs.Float64("persons", 0, "fraction of nodes relabelled as persons")
	out := fs.String("out", "", "output file (default stdout)")
	_ = fs.Parse(args)

	g := graphgen.BarabasiWith(graphgen.BarabasiConfig{
		N: *n, M: *m, Seed: *seed, PersonFraction: *personFrac,
	})
	log.Printf("generated %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	writeGraph(g, *out)
}
