// Command benchfig regenerates the data series of every figure and table of
// the paper's evaluation (Section 6) and prints them as aligned tables. The
// absolute numbers depend on the machine; the shapes — who wins, by what
// factor, where the curves bend — are the reproduction targets recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	benchfig stats   [-persons 100000]
//	benchfig fig4a   [-max 10000]
//	benchfig fig4b   [-max 5000]
//	benchfig fig4c   [-persons 2000]
//	benchfig fig4d   [-max 1000]
//	benchfig fig4e   [-persons 400 -graphs 3 -sets 3]
//	benchfig ablate  [-persons 2000]
//	benchfig all     (everything at reduced sizes)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vadalink/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchfig: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "stats":
		cmdStats(args)
	case "fig4a":
		cmdFig4a(args)
	case "fig4b":
		cmdFig4b(args)
	case "fig4c":
		cmdFig4c(args)
	case "fig4d":
		cmdFig4d(args)
	case "fig4e":
		cmdFig4e(args)
	case "ablate":
		cmdAblate(args)
	case "all":
		cmdStats([]string{"-persons", "20000"})
		cmdFig4a([]string{"-max", "2000"})
		cmdFig4b([]string{"-max", "1000"})
		cmdFig4c([]string{"-persons", "1000"})
		cmdFig4d([]string{"-max", "500"})
		cmdFig4e([]string{"-persons", "300", "-graphs", "2", "-sets", "2"})
		cmdAblate([]string{"-persons", "1000"})
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchfig <stats|fig4a|fig4b|fig4c|fig4d|fig4e|ablate|all> [flags]")
	os.Exit(2)
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	persons := fs.Int("persons", 100000, "person nodes (companies = same)")
	seed := fs.Int64("seed", 1, "seed")
	_ = fs.Parse(args)
	fmt.Printf("== §2 statistics profile (scaled Italian company graph, %d persons) ==\n", *persons)
	s, c := experiments.StatsAndConcentration(*persons, *persons, *seed)
	fmt.Print(s.String())
	fmt.Printf("ownership concentration: mean HHI %.3f, median %.3f, majority-held %.1f%%, sole-owner %.1f%%\n",
		c.MeanHHI, c.MedianHHI,
		100*float64(c.MajorityHeld)/float64(max(1, c.CompaniesWithOwners)),
		100*float64(c.SoleOwner)/float64(max(1, c.CompaniesWithOwners)))
	fmt.Println(`paper (4.059M nodes): SCCs ≈ nodes (largest 15), >600K WCCs (largest >1M),
avg degree ≈ 1, clustering ≈ 0.0084, ~3K self-loops, power-law degrees`)
	fmt.Println()
}

func sizesUpTo(max int) []int {
	base := []int{1000, 2000, 3000, 4000, 5000, 6000, 8000, 10000}
	var out []int
	for _, n := range base {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{max / 4, max / 2, max}
	}
	return out
}

func cmdFig4a(args []string) {
	fs := flag.NewFlagSet("fig4a", flag.ExitOnError)
	max := fs.Int("max", 10000, "largest person count")
	seed := fs.Int64("seed", 1, "seed")
	_ = fs.Parse(args)
	fmt.Println("== Figure 4(a): time vs nodes, Italian-company-like data ==")
	rows, err := experiments.Fig4a(sizesUpTo(*max), *seed)
	if err != nil {
		log.Fatal(err)
	}
	w := tab()
	fmt.Fprintln(w, "persons\tvada-link\tnaive\tvada cmps\tnaive cmps\tvada links\tnaive links")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%d\t%d\t%d\t%d\n",
			r.Nodes, r.VadaLink.Round(1e6), r.Naive.Round(1e6),
			r.VadaComparisons, r.NaiveComparisons, r.VadaLinks, r.NaiveLinks)
	}
	w.Flush()
	fmt.Println("paper shape: Vada-Link slightly superlinear, far below the quadratic naive line")
	fmt.Println()
}

func cmdFig4b(args []string) {
	fs := flag.NewFlagSet("fig4b", flag.ExitOnError)
	max := fs.Int("max", 5000, "largest node count")
	seed := fs.Int64("seed", 1, "seed")
	_ = fs.Parse(args)
	fmt.Println("== Figure 4(b): time vs nodes, dense synthetic (Barabási–Albert) ==")
	rows, err := experiments.Fig4b(sizesUpTo(*max), *seed)
	if err != nil {
		log.Fatal(err)
	}
	w := tab()
	fmt.Fprintln(w, "nodes\tvada-link\tcomparisons")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%d\n", r.Nodes, r.VadaLink.Round(1e6), r.Comparisons)
	}
	w.Flush()
	fmt.Println("paper shape: ≈ one order of magnitude slower than 4(a) at equal n, still near-linear")
	fmt.Println()
}

func cmdFig4c(args []string) {
	fs := flag.NewFlagSet("fig4c", flag.ExitOnError)
	persons := fs.Int("persons", 2000, "person nodes")
	seed := fs.Int64("seed", 1, "seed")
	_ = fs.Parse(args)
	fmt.Println("== Figure 4(c): time vs number of clusters (feature-hash blocking) ==")
	ks := []int{1, 2, 5, 10, 20, 50, 100, 200, 350, 500}
	rows, err := experiments.Fig4c(*persons, ks, *seed)
	if err != nil {
		log.Fatal(err)
	}
	w := tab()
	fmt.Fprintln(w, "clusters\telapsed\tcomparisons\tavg block size")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%d\t%.1f\n", r.Clusters, r.Elapsed.Round(1e6), r.Comparisons, r.AvgBlock)
	}
	w.Flush()
	fmt.Println("paper shape: time falls steeply with the cluster count, then flattens (<10 s beyond ~10 clusters)")
	fmt.Println()
}

func cmdFig4d(args []string) {
	fs := flag.NewFlagSet("fig4d", flag.ExitOnError)
	max := fs.Int("max", 1000, "largest node count")
	seed := fs.Int64("seed", 1, "seed")
	_ = fs.Parse(args)
	fmt.Println("== Figure 4(d): time vs density (sparse/normal/dense/superdense) ==")
	var sizes []int
	for _, n := range []int{100, 250, 500, 750, 1000} {
		if n <= *max {
			sizes = append(sizes, n)
		}
	}
	rows, err := experiments.Fig4d(sizes, *seed)
	if err != nil {
		log.Fatal(err)
	}
	w := tab()
	fmt.Fprintln(w, "density\tnodes\tedges\telapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\n", r.Density, r.Nodes, r.Edges, r.Elapsed.Round(1e6))
	}
	w.Flush()
	fmt.Println("paper shape: sparse/normal/dense track each other at small n; superdense clearly slower, superlinear growth for the two densest")
	fmt.Println()
}

func cmdFig4e(args []string) {
	fs := flag.NewFlagSet("fig4e", flag.ExitOnError)
	persons := fs.Int("persons", 400, "persons per graph")
	graphs := fs.Int("graphs", 3, "independent graphs")
	sets := fs.Int("sets", 3, "removal sets per graph")
	seed := fs.Int64("seed", 1, "seed")
	_ = fs.Parse(args)
	fmt.Println("== Figure 4(e): recall vs number of clusters (§6.2 removal protocol) ==")
	ks := []int{1, 5, 10, 20, 50, 100, 200, 400}
	rows, err := experiments.Fig4e(ks, experiments.Fig4eConfig{
		Persons: *persons, Graphs: *graphs, RemovalSets: *sets, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	w := tab()
	fmt.Fprintln(w, "clusters\trecall\ttrials")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.3f\t%d\n", r.Clusters, r.Recall, r.Trials)
	}
	w.Flush()
	fmt.Println("paper shape: 100% at 1 cluster, 99.4% at 20, 98.6% at 50, under 50% past ~400")
	fmt.Println()
}

func cmdAblate(args []string) {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	persons := fs.Int("persons", 2000, "person nodes")
	seed := fs.Int64("seed", 1, "seed")
	_ = fs.Parse(args)
	fmt.Println("== Ablation: clustering levels (DESIGN.md §4) ==")
	rows, err := experiments.AblationClusterLevels(*persons, *seed)
	if err != nil {
		log.Fatal(err)
	}
	w := tab()
	fmt.Fprintln(w, "mode\telapsed\tcomparisons\tlinks")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\n", r.Mode, r.Elapsed.Round(1e6), r.Comparisons, r.Links)
	}
	w.Flush()
	rec, total, err := experiments.GroundTruthRecall(*persons, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive classifier recall vs planted ground truth: %d/%d = %.1f%%\n",
		rec, total, 100*float64(rec)/float64(total))
	m, auc, err := experiments.ClassifierQuality(*persons, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained classifier on unseen graph: %s, AUC=%.3f\n", m, auc)
	fmt.Println()
}
