// Command vadalink is the operator CLI of the Vada-Link reproduction. It
// loads a property graph from JSON (see cmd/graphgen) and runs the paper's
// reasoning tasks over it.
//
// Usage:
//
//	vadalink stats     -in graph.json
//	vadalink control   -in graph.json [-node ID]
//	vadalink closelink -in graph.json [-t 0.2]
//	vadalink family    -in graph.json [-k 1]
//	vadalink reason    -in graph.json -task control|closelink|partner
//	vadalink query     -in graph.json -goal "control(4, Y)" [-program rules.vada]
//	vadalink whatif    -in graph.json -ops ops.json [-t 0.2]
//	vadalink serve     -in graph.json [-addr :8080] [-timeout 30s]
//	                   [-max-facts N] [-max-rounds N] [-metrics=true]
//	                   [-min-agg-delta 1e-4] [-no-ivm]
//	                   [-pprof] [-log-format text|json|off]
//	                   [-data-dir DIR] [-fsync 2ms]
//	                   [-replicate :7070] [-follow HOST:7070]
//	                   [-leader-api URL] [-max-staleness 5s]
//	                   [-replica-self HOST:7070] [-peers H1:7070,H2:7070]
//	                   [-api-advertise URL] [-lease 3s]
//
// serve applies a per-request wall-clock deadline and an optional chase
// budget; truncated answers are marked "truncated" in the JSON. SIGINT and
// SIGTERM drain in-flight requests before the process exits. Per-endpoint
// counters and the last chase report are served on GET /v1/metrics (disable
// with -metrics=false); -pprof mounts net/http/pprof under /debug/pprof/;
// -log-format selects slog text or JSON access logs on stderr.
//
// whatif evaluates a counterfactual scenario — a JSON array of hypothetical
// ops ({"op":"addShare","from":1,"to":2,"w":0.3}, addNode, setShare,
// removeEdge, removeNode) — on a copy-on-write overlay and prints how the
// control and close-link relations would change; the input graph is never
// modified. The same scenarios are served live on POST /v1/whatif.
//
// -data-dir turns on crash-safe persistence: the graph lives in a WAL +
// snapshot store under DIR, recovered on startup (torn writes truncated,
// corrupt state refused) and snapshotted on graceful shutdown. On the first
// run -in seeds the store; afterwards the durable state is authoritative and
// -in is ignored. -fsync is the WAL group-commit interval (0 = fsync every
// append). POST /v1/admin/snapshot forces a snapshot + WAL rotation.
//
// -replicate makes this node a replication leader: its WAL is served as a
// stream on the given address. -follow makes it a read-only follower of the
// leader at the given address: the graph arrives over the stream into the
// follower's own durable store, reads carry replication-lag headers (503
// past -max-staleness), and writes answer 421 with the -leader-api address.
// GET /v1/healthz is liveness; GET /v1/readyz is readiness (drain state,
// sticky WAL errors, replication staleness).
//
// -replica-self + -peers form a self-healing replica group instead: the
// members elect a leader among themselves (lease-based, epoch-fenced) and
// fail over automatically when it dies. Writes are accepted only on the
// current leader and acknowledged only after a majority holds them durably;
// non-leaders answer 421 with the live leader's -api-advertise address.
// Role, epoch and lease health are visible on /v1/readyz and /v1/metrics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"vadalink"
	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/vadalog"
	"vadalink/internal/whatif"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vadalink: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "stats":
		cmdStats(args)
	case "control":
		cmdControl(args)
	case "closelink":
		cmdCloseLink(args)
	case "family":
		cmdFamily(args)
	case "reason":
		cmdReason(args)
	case "query":
		cmdQuery(args)
	case "whatif":
		cmdWhatif(args)
	case "explain":
		cmdExplain(args)
	case "dot":
		cmdDot(args)
	case "ubo":
		cmdUBO(args)
	case "serve":
		cmdServe(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vadalink <stats|control|closelink|family|reason|query|whatif|explain|dot|ubo|serve> [flags]
run "vadalink <cmd> -h" for per-command flags`)
	os.Exit(2)
}

// cmdExplain prints the derivation tree of a control decision — the paper's
// explainability property, live: why does X control Y?
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	in := fs.String("in", "", "input graph JSON")
	from := fs.Int64("from", -1, "controller node id")
	to := fs.Int64("to", -1, "controlled node id")
	_ = fs.Parse(args)
	if *from < 0 || *to < 0 {
		log.Fatal("explain needs -from and -to node ids")
	}
	g := loadGraph(*in)
	r := vadalink.NewReasoner(g, vadalink.TaskControl)
	r.EngineOptions = append(r.EngineOptions, vadalink.WithProvenance())
	if err := r.Run(); err != nil {
		log.Fatal(err)
	}
	tree := r.ExplainControl(vadalink.NodeID(*from), vadalink.NodeID(*to))
	if tree == nil {
		fmt.Printf("%s does not control %s\n",
			nodeName(g, vadalink.NodeID(*from)), nodeName(g, vadalink.NodeID(*to)))
		return
	}
	for _, line := range tree {
		fmt.Println(line)
	}
}

func loadGraph(path string) *vadalink.Graph {
	if path == "" {
		log.Fatal("missing -in graph.json (generate one with graphgen, or use -companies/-persons/-shares CSVs)")
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := pg.ReadJSON(f)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// csvFlags adds the registry-CSV input flags shared by the commands that
// accept either -in graph.json or the CSV triple.
type csvFlags struct {
	in, companies, persons, shares *string
}

func addInputFlags(fs *flag.FlagSet) csvFlags {
	return csvFlags{
		in:        fs.String("in", "", "input graph JSON"),
		companies: fs.String("companies", "", "companies CSV (id,name,sector,addr,city)"),
		persons:   fs.String("persons", "", "persons CSV (id,name,surname,birth,addr,city)"),
		shares:    fs.String("shares", "", "shareholdings CSV (owner,owned,share[,right])"),
	}
}

func (c csvFlags) load() *vadalink.Graph {
	if *c.companies == "" && *c.persons == "" && *c.shares == "" {
		return loadGraph(*c.in)
	}
	open := func(path string) io.Reader {
		if path == "" {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	res, err := vadalink.LoadCSV(open(*c.companies), open(*c.persons), open(*c.shares))
	if err != nil {
		log.Fatal(err)
	}
	return res.Graph
}

func nodeName(g *vadalink.Graph, id vadalink.NodeID) string {
	if n := g.Node(id); n != nil {
		if s, ok := n.Props["name"].(string); ok && s != "" {
			if sn, ok := n.Props["surname"].(string); ok && sn != "" {
				return fmt.Sprintf("%s %s (#%d)", s, sn, id)
			}
			return fmt.Sprintf("%s (#%d)", s, id)
		}
	}
	return fmt.Sprintf("#%d", id)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	inputs := addInputFlags(fs)
	_ = fs.Parse(args)
	g := inputs.load()
	fmt.Print(vadalink.Stats(g).String())
}

func cmdControl(args []string) {
	fs := flag.NewFlagSet("control", flag.ExitOnError)
	inputs := addInputFlags(fs)
	node := fs.Int64("node", -1, "controller node id (default: all pairs)")
	_ = fs.Parse(args)
	g := inputs.load()
	if *node >= 0 {
		for _, y := range vadalink.Controls(g, vadalink.NodeID(*node)) {
			fmt.Printf("%s controls %s\n", nodeName(g, vadalink.NodeID(*node)), nodeName(g, y))
		}
		return
	}
	for _, p := range vadalink.AllControlPairs(g) {
		fmt.Printf("%s controls %s\n", nodeName(g, p.From), nodeName(g, p.To))
	}
}

func cmdCloseLink(args []string) {
	fs := flag.NewFlagSet("closelink", flag.ExitOnError)
	inputs := addInputFlags(fs)
	t := fs.Float64("t", 0.2, "close-link threshold")
	_ = fs.Parse(args)
	g := inputs.load()
	for _, l := range vadalink.CloseLinks(g, *t) {
		fmt.Printf("close link %s – %s (via %s)\n",
			nodeName(g, l.Pair.A), nodeName(g, l.Pair.B), nodeName(g, l.Via))
	}
}

func cmdFamily(args []string) {
	fs := flag.NewFlagSet("family", flag.ExitOnError)
	in := fs.String("in", "", "input graph JSON")
	k := fs.Int("k", 1, "first-level clusters (1 = blocking only)")
	out := fs.String("out", "", "write the augmented graph JSON here")
	_ = fs.Parse(args)
	g := loadGraph(*in)
	res, err := vadalink.DetectFamilies(g, *k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds=%d blocks=%d comparisons=%d\n", res.Rounds, res.Blocks, res.Comparisons)
	for label, n := range res.Added {
		fmt.Printf("added %-10s %d\n", label, n)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := g.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
	}
}

// cmdWhatif answers "what would change if…" from the command line: apply a
// scenario file to an overlay, chase the composite, print the diff.
func cmdWhatif(args []string) {
	fs := flag.NewFlagSet("whatif", flag.ExitOnError)
	inputs := addInputFlags(fs)
	t := fs.Float64("t", 0.2, "close-link threshold")
	opsPath := fs.String("ops", "", `scenario ops JSON array ("-" reads stdin)`)
	_ = fs.Parse(args)
	g := inputs.load()
	if *opsPath == "" {
		log.Fatal(`whatif needs -ops ops.json ("-" reads stdin)`)
	}
	var r io.Reader = os.Stdin
	if *opsPath != "-" {
		f, err := os.Open(*opsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var ops []whatif.Op
	if err := json.NewDecoder(r).Decode(&ops); err != nil {
		log.Fatalf("reading ops: %v", err)
	}
	ctx := context.Background()
	bl, err := whatif.ComputeBaseline(ctx, g, *t)
	if err != nil {
		log.Fatal(err)
	}
	res, err := whatif.Evaluate(ctx, g, bl, ops, whatif.Options{Threshold: *t})
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range res.Created {
		fmt.Printf("created node        #%d\n", id)
	}
	for _, p := range res.ControlGained {
		fmt.Printf("control gained      %s -> %s\n", nodeName(g, p[0]), nodeName(g, p[1]))
	}
	for _, p := range res.ControlLost {
		fmt.Printf("control lost        %s -> %s\n", nodeName(g, p[0]), nodeName(g, p[1]))
	}
	for _, p := range res.CloseLinkGained {
		fmt.Printf("close link gained   %s - %s\n", nodeName(g, p[0]), nodeName(g, p[1]))
	}
	for _, p := range res.CloseLinkLost {
		fmt.Printf("close link lost     %s - %s\n", nodeName(g, p[0]), nodeName(g, p[1]))
	}
	fmt.Printf("%d op(s): %+d nodes %+d edges, %d affected source(s), %d control pair(s), %d close link(s)\n",
		len(ops), res.Delta.AddedNodes-res.Delta.RemovedNodes, res.Delta.AddedEdges-res.Delta.RemovedEdges,
		res.AffectedSources, len(res.Control), len(res.CloseLink))
}

func cmdReason(args []string) {
	fs := flag.NewFlagSet("reason", flag.ExitOnError)
	in := fs.String("in", "", "input graph JSON")
	task := fs.String("task", "control", "control | closelink | partner")
	_ = fs.Parse(args)
	g := loadGraph(*in)
	var sel = vadalink.TaskControl
	switch *task {
	case "control":
		sel = vadalink.TaskControl
	case "closelink":
		sel = vadalink.TaskCloseLink
	case "partner":
		sel = vadalink.TaskPartner
	default:
		log.Fatalf("unknown task %q", *task)
	}
	r := vadalink.NewReasoner(g, sel)
	if err := r.Run(); err != nil {
		log.Fatal(err)
	}
	switch *task {
	case "control":
		for _, p := range r.ControlPairs() {
			fmt.Printf("control %s -> %s\n", nodeName(g, p[0]), nodeName(g, p[1]))
		}
	case "closelink":
		for _, p := range r.CloseLinkPairs() {
			if p[0] < p[1] {
				fmt.Printf("closelink %s – %s\n", nodeName(g, p[0]), nodeName(g, p[1]))
			}
		}
	case "partner":
		for _, p := range r.PartnerPairs() {
			if p[0] < p[1] {
				fmt.Printf("partner %s – %s\n", nodeName(g, p[0]), nodeName(g, p[1]))
			}
		}
	}
}

// cmdQuery answers one goal atom demand-driven from the command line: the
// constants in the goal drive a magic-sets rewrite, so "control(4, Y)"
// derives only node 4's cone instead of chasing the whole graph. -program
// supplies custom rules; without it the goal predicate selects the built-in
// control or close-link program.
func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	inputs := addInputFlags(fs)
	goalSrc := fs.String("goal", "", `goal atom, e.g. "control(4, Y)"`)
	progPath := fs.String("program", "", `rule file ("-" reads stdin; default: built-in program of the goal predicate)`)
	_ = fs.Parse(args)
	if *goalSrc == "" {
		log.Fatal(`query needs -goal, e.g. -goal "control(4, Y)"`)
	}
	g := inputs.load()
	goal, err := datalog.ParseGoal(*goalSrc)
	if err != nil {
		log.Fatalf("bad goal: %v", err)
	}
	progSrc := ""
	if *progPath != "" {
		var r io.Reader = os.Stdin
		if *progPath != "-" {
			f, err := os.Open(*progPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		b, err := io.ReadAll(r)
		if err != nil {
			log.Fatal(err)
		}
		progSrc = string(b)
	} else {
		var ok bool
		if progSrc, ok = vadalog.ProgramForGoal(goal.Pred); !ok {
			log.Fatalf("no built-in program defines %q; supply -program", goal.Pred)
		}
	}
	res, err := vadalog.EvalGoal(context.Background(), g, progSrc, goal)
	if err != nil {
		log.Fatal(err)
	}
	if res.RunErr != nil {
		log.Printf("warning: evaluation truncated: %v", res.RunErr)
	}
	for _, b := range res.Answers {
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, string(v))
		}
		sort.Strings(vars)
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			parts = append(parts, fmt.Sprintf("%s=%v", v, b[datalog.Variable(v)]))
		}
		fmt.Println(strings.Join(parts, " "))
	}
	fmt.Fprintf(os.Stderr, "%d answer(s), mode=%s, %d facts derived\n",
		len(res.Answers), res.Mode, res.Engine.DerivedCount())
}

// cmdDot renders the graph (optionally after annotating control and
// close-link edges) in Graphviz DOT format.
func cmdDot(args []string) {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	in := fs.String("in", "", "input graph JSON")
	annotate := fs.Bool("annotate", false, "add control and close-link edges before rendering")
	_ = fs.Parse(args)
	g := loadGraph(*in)
	if *annotate {
		r := vadalink.NewReasoner(g, vadalink.TaskControl|vadalink.TaskCloseLink)
		if err := r.Run(); err != nil {
			log.Fatal(err)
		}
		if _, err := r.Apply(); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.WriteDOT(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// cmdUBO lists the ultimate beneficial owners (controlling persons) of a
// company, or all orphan companies.
func cmdUBO(args []string) {
	fs := flag.NewFlagSet("ubo", flag.ExitOnError)
	in := fs.String("in", "", "input graph JSON")
	node := fs.Int64("node", -1, "company node id (default: list orphans)")
	_ = fs.Parse(args)
	g := loadGraph(*in)
	if *node >= 0 {
		ubos := vadalink.UltimateControllers(g, vadalink.NodeID(*node))
		if len(ubos) == 0 {
			fmt.Printf("%s has no ultimate controller\n", nodeName(g, vadalink.NodeID(*node)))
			return
		}
		for _, p := range ubos {
			fmt.Printf("%s is ultimately controlled by %s\n",
				nodeName(g, vadalink.NodeID(*node)), nodeName(g, p))
		}
		return
	}
	for _, c := range vadalink.Orphans(g) {
		fmt.Printf("orphan: %s\n", nodeName(g, c))
	}
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "", "input graph JSON")
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = 30s default, negative = none)")
	maxFacts := fs.Int("max-facts", 0, "chase budget: max derived facts per request (0 = unlimited)")
	maxRounds := fs.Int("max-rounds", 0, "chase budget: max evaluation rounds per request (0 = engine default)")
	minAggDelta := fs.Float64("min-agg-delta", 0, "aggregate convergence step for every chase (0 = 1e-4 default, negative = exact fixpoint; exact is exponential on cyclic ownership)")
	noIVM := fs.Bool("no-ivm", false, "disable incremental view maintenance; every read after a commit re-chases from scratch")
	queryCache := fs.Int64("query-cache-bytes", 0, "point-query result cache budget in bytes (0 = 64 MiB default, negative = disable)")
	metrics := fs.Bool("metrics", true, "collect per-endpoint metrics and serve GET /v1/metrics")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logFormat := fs.String("log-format", "text", "access-log format: text | json | off")
	dataDir := fs.String("data-dir", "", "crash-safe persistence directory (empty = memory-only)")
	fsync := fs.Duration("fsync", 2*time.Millisecond, "WAL group-commit interval (0 = fsync every append)")
	replicate := fs.String("replicate", "", "leader mode: serve the WAL as a replication stream on this address (requires -data-dir)")
	follow := fs.String("follow", "", "follower mode: tail the leader's replication stream at this address (requires -data-dir; serves read-only)")
	leaderAPI := fs.String("leader-api", "", "leader's API base URL, advertised to clients whose writes hit this follower")
	maxStaleness := fs.Duration("max-staleness", 0, "follower mode: reads staler than this answer 503 (0 = 5s default, negative = serve regardless)")
	replicaSelf := fs.String("replica-self", "", "replica-group mode: this member's advertised replication address; leadership fails over automatically (requires -data-dir and -peers)")
	peers := fs.String("peers", "", "replica-group mode: comma-separated replication addresses of the group (own address may be included)")
	apiAdvertise := fs.String("api-advertise", "", "replica-group mode: this member's API base URL, handed to clients redirected to it while it leads")
	lease := fs.Duration("lease", 0, "replica-group mode: leadership lease; bounds failure detection and write unavailability during failover (0 = 3s default)")
	_ = fs.Parse(args)
	cfg := vadalink.APIConfig{Timeout: *timeout, MaxRounds: *maxRounds}
	cfg.Budget.MaxFacts = *maxFacts
	cfg.MinAggDelta = *minAggDelta
	cfg.DisableIVM = *noIVM
	cfg.QueryCacheBytes = *queryCache
	cfg.DisableMetrics = !*metrics
	cfg.Pprof = *pprofOn
	switch *logFormat {
	case "text":
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
	default:
		log.Fatalf("unknown -log-format %q (want text, json or off)", *logFormat)
	}

	if *follow != "" && *dataDir == "" {
		log.Fatal("-follow requires -data-dir (the follower keeps its own durable copy)")
	}
	if *replicate != "" && *dataDir == "" {
		log.Fatal("-replicate requires -data-dir (the leader ships its WAL)")
	}
	if *replicaSelf != "" {
		if *dataDir == "" {
			log.Fatal("-replica-self requires -data-dir (every group member keeps a durable copy)")
		}
		if *peers == "" {
			log.Fatal("-replica-self requires -peers (the rest of the group roster)")
		}
		if *follow != "" || *replicate != "" {
			log.Fatal("-replica-self is a mode of its own; drop -follow/-replicate (the group elects its leader)")
		}
	}

	// SIGINT/SIGTERM drain in-flight requests instead of dropping them; the
	// same context stops the replication goroutines.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var wg sync.WaitGroup

	var g *vadalink.Graph
	var ps *vadalink.DurableStore
	var fl *vadalink.Follower
	var node *vadalink.ReplicaNode
	if *replicaSelf != "" {
		// Replica-group mode: this member and its -peers elect a leader among
		// themselves and fail over automatically. The graph is whatever the
		// group replicates, so -in never seeds it here — seed one member's
		// -data-dir with a plain `serve -data-dir -in` run first, or start
		// empty and write through the elected leader's API.
		if *in != "" {
			log.Printf("note: -in is ignored in replica-group mode (the group replicates the leader's state)")
		}
		ln, err := net.Listen("tcp", *replicaSelf)
		if err != nil {
			log.Fatal(err)
		}
		var roster []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				roster = append(roster, p)
			}
		}
		node, err = vadalink.OpenReplicaNode(*dataDir, vadalink.ReplicaNodeOptions{
			Self:      *replicaSelf,
			API:       *apiAdvertise,
			Peers:     roster,
			Lease:     *lease,
			SyncEvery: *fsync,
			Logger:    cfg.Logger,
			OnRoleChange: func(role string, epoch uint64) {
				log.Printf("replica group: now %s (epoch %d)", role, epoch)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Node = node
		cfg.LeaderAPI = *leaderAPI
		cfg.MaxStaleness = *maxStaleness
		ps = node.Store()
		g = ps.Graph()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Serve(ctx, ln); err != nil {
				log.Printf("replica group listener: %v", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			node.Run(ctx)
		}()
		log.Printf("replica group member %s (peers %s, lease %s, recovered to seq %d, epoch %d)",
			*replicaSelf, strings.Join(roster, " "), *lease, ps.Seq(), node.Epoch())
	} else if *follow != "" {
		// Follower mode: the graph arrives over the replication stream, so
		// -in never seeds it. The store recovers whatever an earlier run
		// replicated and the follower resumes from that position.
		var err error
		fl, err = vadalink.OpenFollower(*dataDir, vadalink.FollowerOptions{
			Leader:    *follow,
			SyncEvery: *fsync,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Follower = fl
		cfg.LeaderAPI = *leaderAPI
		cfg.MaxStaleness = *maxStaleness
		cfg.Persist = fl.Store()
		ps = fl.Store()
		g = fl.Graph()
		wg.Add(1)
		go func() {
			defer wg.Done()
			fl.Run(ctx)
		}()
		log.Printf("following %s (recovered to seq %d)", *follow, fl.Seq())
	} else if *dataDir != "" {
		var err error
		ps, err = vadalink.OpenDurable(*dataDir, vadalink.DurableOptions{SyncEvery: *fsync})
		if err != nil {
			log.Fatal(err)
		}
		rec := ps.Recovery()
		if rec.Nodes == 0 && rec.Edges == 0 && *in != "" {
			// First run against an empty store: seed it from -in and make the
			// seed durable immediately.
			if err := ps.Import(loadGraph(*in)); err != nil {
				log.Fatal(err)
			}
			log.Printf("seeded %s from %s (%d nodes, %d edges)",
				*dataDir, *in, ps.Graph().NumNodes(), ps.Graph().NumEdges())
		} else {
			log.Printf("recovered %d nodes, %d edges from %s in %dms (snapshot gen %d, %d wal records, %d torn tails)",
				rec.Nodes, rec.Edges, *dataDir, rec.DurationMillis,
				rec.SnapshotGen, rec.RecordsReplayed, rec.TornTails)
		}
		g = ps.Graph()
		cfg.Persist = ps
	} else {
		g = loadGraph(*in)
	}

	if *replicate != "" {
		// Leader mode: ship this store's WAL to followers. A follower can
		// also replicate onward (relay), since it keeps a full WAL of its own.
		ld := vadalink.NewReplicationLeader(ps, vadalink.ReplicationLeaderOptions{})
		ln, err := net.Listen("tcp", *replicate)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Leader = ld
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ld.Serve(ctx, ln); err != nil {
				log.Printf("replication leader: %v", err)
			}
		}()
		log.Printf("serving replication stream on %s", ln.Addr())
	}

	log.Printf("serving reasoning API on %s (%d nodes, %d edges)", *addr, g.NumNodes(), g.NumEdges())
	var handler = vadalink.APIHandlerWith(g, cfg)
	if fl != nil || node != nil {
		// Let the server adopt the follower's (or the replica node's tailing
		// half's) graph and track it across snapshot bootstraps.
		handler = vadalink.APIHandlerWith(nil, cfg)
	}
	if err := vadalink.ServeAPI(ctx, *addr, handler); err != nil {
		log.Fatal(err)
	}
	wg.Wait() // replication goroutines stop on the same signal context
	if ps != nil {
		// Serve has drained (including in-flight mutations), so the graph is
		// quiescent: compact the WAL into a snapshot and close cleanly. A
		// crash here costs nothing — the WAL already holds everything.
		if info, err := ps.Snapshot(); err != nil {
			log.Printf("shutdown snapshot failed: %v (state is still in the WAL)", err)
		} else {
			log.Printf("shutdown snapshot: gen %d, %d nodes, %d edges, %d bytes", info.Gen, info.Nodes, info.Edges, info.Bytes)
		}
		if err := ps.Close(); err != nil {
			log.Printf("closing store: %v", err)
		}
	}
	log.Print("drained, bye")
}
