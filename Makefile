GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fuzz:
	FUZZTIME=$(FUZZTIME) ./scripts/check.sh

# The full gate CI runs: vet + build + race tests + short fuzz.
check:
	FUZZTIME=$(FUZZTIME) ./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...
