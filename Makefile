GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz check bench bench-json cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fuzz:
	FUZZTIME=$(FUZZTIME) ./scripts/check.sh

# The full gate CI runs: vet + build + race tests + short fuzz.
check:
	FUZZTIME=$(FUZZTIME) ./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Regression benchmarks over the graphgen size ladder, emitting BENCH_<n>.json.
bench-json:
	./scripts/bench.sh

cover:
	$(GO) test -coverprofile=cover.out ./internal/datalog
	$(GO) tool cover -func=cover.out | tail -1
