// Benchmarks regenerating the paper's evaluation (Section 6): one benchmark
// per figure/table plus the design-choice ablations of DESIGN.md §4 and
// micro-benchmarks of the substrates. Absolute numbers are machine-local;
// the recorded shapes live in EXPERIMENTS.md. The companion CLI
// (cmd/benchfig) prints the full data series.
package vadalink_test

import (
	"fmt"
	"testing"

	"vadalink"
	"vadalink/internal/closelink"
	"vadalink/internal/cluster"
	"vadalink/internal/control"
	"vadalink/internal/datalog"
	"vadalink/internal/embed"
	"vadalink/internal/experiments"
	"vadalink/internal/family"
	"vadalink/internal/graphgen"
	"vadalink/internal/graphstats"
	"vadalink/internal/pg"
)

// --- §2 statistics table ---

// BenchmarkStatsProfile regenerates the §2 structural profile on a scaled
// Italian company graph.
func BenchmarkStatsProfile(b *testing.B) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 20000, Companies: 20000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := graphstats.Compute(it.Graph)
		if s.Nodes == 0 {
			b.Fatal("empty stats")
		}
	}
}

// --- Figure 4(a): time vs nodes, Italian-company-like, clustered vs naive ---

func BenchmarkFig4aScalabilityNodes(b *testing.B) {
	for _, n := range []int{500, 1000, 2000} {
		b.Run(fmt.Sprintf("vadalink/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig4a([]int{n}, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rows[0].VadaComparisons), "comparisons")
			}
		})
	}
}

func BenchmarkFig4aNaiveBaseline(b *testing.B) {
	// The red line of Figure 4(a): exhaustive all-pairs matching.
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 1000, Companies: 500, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := it.Graph.Clone()
		res, err := vadalink.Augment(g, vadalink.AugmentConfig{
			NoCluster:  true,
			Candidates: []vadalink.Candidate{&vadalink.FamilyCandidate{}},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Comparisons), "comparisons")
	}
}

// --- Figure 4(b): time vs nodes on dense synthetic graphs ---

func BenchmarkFig4bSyntheticNodes(b *testing.B) {
	for _, n := range []int{1000, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig4b([]int{n}, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4(c): time vs number of clusters ---

func BenchmarkFig4cClusters(b *testing.B) {
	for _, k := range []int{1, 10, 100, 500} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig4c(1000, []int{k}, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rows[0].Comparisons), "comparisons")
			}
		})
	}
}

// --- Figure 4(d): time vs density ---

func BenchmarkFig4dDensity(b *testing.B) {
	for _, d := range []graphgen.DensityLevel{graphgen.Sparse, graphgen.Normal, graphgen.Dense, graphgen.Superdense} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graphgen.BarabasiWith(graphgen.BarabasiConfig{
					N: 500, M: d.EdgesPerNode(), Seed: 1, PersonFraction: 0.5,
				})
				_, err := vadalink.Augment(g, vadalink.AugmentConfig{
					FirstLevelK: 8,
					Embed:       vadalink.EmbedConfig{Dims: 16, WalkLength: 10, WalksPerNode: 3, Epochs: 1, Seed: 1},
					Blocker:     vadalink.PersonBlocker{},
					Candidates:  []vadalink.Candidate{&vadalink.FamilyCandidate{}},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4(e): recall vs number of clusters ---

func BenchmarkFig4eRecall(b *testing.B) {
	for _, k := range []int{1, 20, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig4e([]int{k}, experiments.Fig4eConfig{
					Persons: 200, Graphs: 1, RemovalSets: 1, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].Recall, "recall")
			}
		})
	}
}

// --- ablations (DESIGN.md §4) ---

// BenchmarkAblationAliasSampling compares alias-table and linear-scan walk
// sampling in node2vec.
func BenchmarkAblationAliasSampling(b *testing.B) {
	g := graphgen.Barabasi(2000, 5, 1)
	for _, linear := range []bool{false, true} {
		name := "alias"
		if linear {
			name = "linear"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := embed.Learn(g, embed.Config{
					Dims: 16, WalkLength: 20, WalksPerNode: 2, Epochs: 1, Seed: 1,
					P: 0.5, Q: 2, LinearSampling: linear,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSemiNaive compares semi-naive and naive Datalog
// evaluation on a recursive reachability program.
func BenchmarkAblationSemiNaive(b *testing.B) {
	var edb []datalog.Fact
	const n = 300
	for i := 0; i < n; i++ {
		edb = append(edb, datalog.Fact{Pred: "edge", Args: []any{int64(i), int64(i + 1)}})
		edb = append(edb, datalog.Fact{Pred: "edge", Args: []any{int64(i), int64((i + 7) % n)}})
	}
	src := `
		edge(X, Y) -> path(X, Y).
		path(X, Z), edge(Z, Y) -> path(X, Y).
	`
	for _, naive := range []bool{false, true} {
		name := "seminaive"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			var opts []datalog.Option
			if naive {
				opts = append(opts, datalog.WithNaive())
			}
			for i := 0; i < b.N; i++ {
				e, err := datalog.NewEngine(datalog.MustParse(src), opts...)
				if err != nil {
					b.Fatal(err)
				}
				e.AssertAll(edb)
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRecursiveReembed compares the recall protocol with
// recursive re-embedding on and off (the §4.4 reinforcement principle).
func BenchmarkAblationRecursiveReembed(b *testing.B) {
	for _, reembed := range []bool{true, false} {
		name := "reembed-on"
		if !reembed {
			name = "reembed-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				recall, err := experiments.ReembedRecall(20, reembed, experiments.Fig4eConfig{Persons: 150, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(recall, "recall")
			}
		})
	}
}

// BenchmarkAblationParallelMatching compares sequential and parallel block
// matching in the augmentation loop.
func BenchmarkAblationParallelMatching(b *testing.B) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 3000, Companies: 1000, Seed: 1})
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := it.Graph.Clone()
				_, err := vadalink.Augment(g, vadalink.AugmentConfig{
					Blocker:    vadalink.PersonBlocker{},
					Candidates: []vadalink.Candidate{&vadalink.FamilyCandidate{}},
					Parallel:   parallel,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClusterLevels compares the four clustering configurations.
func BenchmarkAblationClusterLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationClusterLevels(1000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkControlFixpoint(b *testing.B) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 5000, Companies: 5000, Seed: 1})
	persons := it.Graph.NodesWithLabel(pg.LabelPerson)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		control.Controls(it.Graph, persons[i%len(persons)])
	}
}

func BenchmarkAccumulatedOwnership(b *testing.B) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 5000, Companies: 5000, Seed: 1})
	nodes := it.Graph.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closelink.AccumulatedFrom(it.Graph, nodes[i%len(nodes)], closelink.Options{})
	}
}

func BenchmarkCloseLinksFull(b *testing.B) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 1000, Companies: 1000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closelink.CloseLinks(it.Graph, 0.2, closelink.Options{})
	}
}

func BenchmarkDatalogControlProgram(b *testing.B) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 500, Companies: 500, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := vadalink.NewReasoner(it.Graph, vadalink.TaskControl)
		if err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNode2vec(b *testing.B) {
	g := graphgen.Barabasi(1000, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embed.Learn(g, embed.Config{Dims: 32, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	g := graphgen.Barabasi(2000, 2, 1)
	emb, err := embed.Learn(g, embed.Config{Dims: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	vecs := map[pg.NodeID][]float64{}
	for _, id := range g.Nodes() {
		if v := emb.Vector(id); v != nil {
			vecs[id] = v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(vecs, 20, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFamilyClassifier(b *testing.B) {
	clf := family.NewMulti()
	x := family.Person{Name: "Mario", Surname: "Rossi", Birth: 1960, Addr: "Via Garibaldi 12", City: "Roma"}
	y := family.Person{Name: "Luigi", Surname: "Rossi", Birth: 1962, Addr: "Via Garibaldi 12", City: "Roma"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Classify(x, y)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		family.Levenshtein("esposito", "expósito")
	}
}

func BenchmarkGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		graphgen.NewItalian(graphgen.ItalianConfig{Persons: 2000, Companies: 2000, Seed: int64(i + 1)})
	}
}
