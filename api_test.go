package vadalink_test

import (
	"net/http/httptest"
	"testing"

	"vadalink"
)

// The tests in this file exercise the public facade the way a downstream
// user would, keeping the README snippets honest.

func TestQuickstartSnippet(t *testing.T) {
	g, b := vadalink.Figure1()
	controlled := vadalink.Controls(g, b.ID("P1"))
	if len(controlled) != 4 {
		t.Errorf("P1 controls %d companies, want 4 (C, D, E, F)", len(controlled))
	}
	links := vadalink.CloseLinks(g, 0.2)
	if len(links) == 0 {
		t.Error("no close links on Figure 1")
	}
}

func TestBuildYourOwnGraph(t *testing.T) {
	b := vadalink.NewBuilder()
	b.Person("Alice")
	b.Company("Acme")
	b.Company("Sub")
	b.Own("Alice", "Acme", 0.6).Own("Acme", "Sub", 0.8)
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	got := vadalink.Controls(g, b.ID("Alice"))
	if len(got) != 2 {
		t.Errorf("Alice controls %d, want 2", len(got))
	}
	if phi := vadalink.Accumulated(g, b.ID("Alice"), b.ID("Sub")); phi != 0.48 {
		t.Errorf("Φ(Alice, Sub) = %v, want 0.48", phi)
	}
}

func TestAugmentThroughFacade(t *testing.T) {
	it := vadalink.NewItalian(vadalink.ItalianConfig{Persons: 100, Companies: 40, Seed: 2})
	res, err := vadalink.DetectFamilies(it.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Added {
		total += n
	}
	if total == 0 {
		t.Error("DetectFamilies added nothing")
	}
}

func TestCustomRulesThroughFacade(t *testing.T) {
	prog, err := vadalink.ParseRules(`
		own(X, Y, W), W > 0.9 -> wholly(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := vadalink.NewEngine(prog)
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReasonerThroughFacade(t *testing.T) {
	g, b := vadalink.Figure2()
	r := vadalink.NewReasoner(g, vadalink.TaskControl|vadalink.TaskCloseLink)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.ControlPairs()) == 0 || len(r.CloseLinkPairs()) == 0 {
		t.Error("combined tasks produced no results")
	}
	_ = b
}

func TestAPIHandlerThroughFacade(t *testing.T) {
	g, _ := vadalink.Figure2()
	srv := httptest.NewServer(vadalink.APIHandler(g))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("stats status = %d", resp.StatusCode)
	}
}

func TestStatsThroughFacade(t *testing.T) {
	g := vadalink.Barabasi(500, 2, 1)
	s := vadalink.Stats(g)
	if s.Nodes != 500 {
		t.Errorf("nodes = %d", s.Nodes)
	}
}

func TestSnapshotThroughFacade(t *testing.T) {
	g, _ := vadalink.Figure1()
	path := t.TempDir() + "/kg.snap"
	if err := vadalink.SaveSnapshot(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := vadalink.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Errorf("snapshot round trip lost elements")
	}
}

func TestConcentrationThroughFacade(t *testing.T) {
	g, _ := vadalink.Figure1()
	c := vadalink.OwnershipConcentration(g)
	if c.CompaniesWithOwners == 0 || c.MeanHHI <= 0 {
		t.Errorf("concentration = %+v", c)
	}
}
