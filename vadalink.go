// Package vadalink is a from-scratch Go implementation of Vada-Link, the
// knowledge-graph augmentation framework for company ownership graphs of
//
//	Atzeni, Bellomarini, Iezzi, Sallinger, Vlad:
//	"Weaving Enterprise Knowledge Graphs: The Case of Company Ownership
//	Graphs", EDBT 2020.
//
// The package is a stable facade over the implementation packages:
//
//   - property graphs and the company-graph model (Definitions 2.1/2.2);
//   - the three reasoning problems — company control (Definition 2.3),
//     close links / asset eligibility (Definitions 2.5/2.6), and detection
//     of personal connections (Section 2) — each available both as a direct
//     Go solver and as a declarative Vadalog program evaluated by the
//     embedded Datalog± engine;
//   - the KG-augmentation loop of Algorithm 1 (two-level clustering:
//     node2vec embeddings + feature blocking, with polymorphic candidate
//     predicates);
//   - synthetic data generators and graph statistics reproducing the
//     paper's §2 profile and §6 experiments;
//   - an HTTP reasoning API (the §5 architecture).
//
// # Quickstart
//
//	g, b := vadalink.Figure1()
//	controlled := vadalink.Controls(g, b.ID("P1"))   // C, D, E, F
//	links := vadalink.CloseLinks(g, 0.2)             // incl. (G, I) via P2
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package vadalink

import (
	"context"
	"io"
	"net/http"

	"vadalink/internal/backoff"
	"vadalink/internal/closelink"
	"vadalink/internal/cluster"
	"vadalink/internal/control"
	"vadalink/internal/core"
	"vadalink/internal/datalog"
	"vadalink/internal/embed"
	"vadalink/internal/etl"
	"vadalink/internal/family"
	"vadalink/internal/graphgen"
	"vadalink/internal/graphstats"
	"vadalink/internal/persist"
	"vadalink/internal/pg"
	"vadalink/internal/reasonapi"
	"vadalink/internal/replication"
	"vadalink/internal/store"
	"vadalink/internal/temporal"
	"vadalink/internal/vadalog"
)

// Graph model re-exports.
type (
	// Graph is a property graph (Definition 2.1).
	Graph = pg.Graph
	// Node is a labelled node with properties.
	Node = pg.Node
	// Edge is a labelled directed edge with properties.
	Edge = pg.Edge
	// NodeID identifies a node.
	NodeID = pg.NodeID
	// EdgeID identifies an edge.
	EdgeID = pg.EdgeID
	// Label is a node or edge label.
	Label = pg.Label
	// Properties maps property names to values.
	Properties = pg.Properties
	// Builder constructs company graphs by node name.
	Builder = pg.Builder
)

// Well-known labels of the company graph (Definition 2.2).
const (
	LabelCompany      = pg.LabelCompany
	LabelPerson       = pg.LabelPerson
	LabelShareholding = pg.LabelShareholding
	LabelControl      = pg.LabelControl
	LabelCloseLink    = pg.LabelCloseLink
	LabelPartnerOf    = pg.LabelPartnerOf
	LabelSiblingOf    = pg.LabelSiblingOf
	LabelParentOf     = pg.LabelParentOf
)

// NewGraph returns an empty property graph.
func NewGraph() *Graph { return pg.New() }

// NewBuilder returns a by-name company-graph builder.
func NewBuilder() *Builder { return pg.NewBuilder() }

// Figure1 builds the ownership graph of the paper's Figure 1.
func Figure1() (*Graph, *Builder) { return pg.Figure1() }

// Figure2 builds the Italian company graph of the paper's Figure 2.
func Figure2() (*Graph, *Builder) { return pg.Figure2() }

// --- company control (Definition 2.3) ---

// Controls returns the companies controlled by x.
func Controls(g *Graph, x NodeID) []NodeID { return control.Controls(g, x) }

// GroupControls returns the companies jointly controlled by a group pooling
// its shares (family control).
func GroupControls(g *Graph, members []NodeID) []NodeID { return control.GroupControls(g, members) }

// ControlPair is one control relationship.
type ControlPair = control.Pair

// AllControlPairs computes every control relationship in the graph.
func AllControlPairs(g *Graph) []ControlPair { return control.AllPairs(g) }

// UltimateControllers returns the persons ultimately controlling company y
// (the anti-money-laundering UBO question).
func UltimateControllers(g *Graph, y NodeID) []NodeID {
	return control.UltimateControllers(g, y)
}

// Orphans returns companies with no ultimate (person) controller.
func Orphans(g *Graph) []NodeID { return control.Orphans(g) }

// --- close links (Definitions 2.5, 2.6) ---

// CloseLinkResult is one close-link finding.
type CloseLinkResult = closelink.Link

// Accumulated computes the accumulated ownership Φ(x, y) over simple paths.
func Accumulated(g *Graph, x, y NodeID) float64 {
	return closelink.Accumulated(g, x, y, closelink.Options{})
}

// CloseLinks returns every close-link pair among companies for threshold t
// (use 0.2 for the ECB rule).
func CloseLinks(g *Graph, t float64) []CloseLinkResult {
	return closelink.CloseLinks(g, t, closelink.Options{})
}

// CommonOwner is evidence for a condition-(iii) close link: a third party
// holding ≥ t of both companies.
type CommonOwner = closelink.CommonOwner

// CommonOwners returns the third parties with accumulated ownership ≥ t in
// both x and y — the evidence behind a close-link rejection.
func CommonOwners(g *Graph, x, y NodeID, t float64) []CommonOwner {
	return closelink.CommonOwners(g, x, y, t, closelink.Options{})
}

// --- personal connections ---

// Person is the feature view of a person used by the link classifier.
type Person = family.Person

// LinkClass is a personal-connection class.
type LinkClass = family.LinkClass

// Family link classes.
const (
	PartnerOf = family.PartnerOf
	SiblingOf = family.SiblingOf
	ParentOf  = family.ParentOf
)

// FamilyClassifier is the multi-class Bayesian link classifier.
type FamilyClassifier = family.Multi

// NewFamilyClassifier returns the default multi-class classifier.
func NewFamilyClassifier() *FamilyClassifier { return family.NewMulti() }

// --- KG augmentation (Algorithm 1) ---

// AugmentConfig configures an augmentation run.
type AugmentConfig = core.Config

// AugmentResult reports an augmentation run.
type AugmentResult = core.Result

// Candidate is the polymorphic per-class candidate predicate.
type Candidate = core.Candidate

// Candidate implementations for the paper's three problems.
type (
	// FamilyCandidate predicts family links (Algorithm 7).
	FamilyCandidate = core.FamilyCandidate
	// ControlCandidate predicts control links (Algorithm 5).
	ControlCandidate = core.ControlCandidate
	// CloseLinkCandidate predicts close links (Algorithm 6).
	CloseLinkCandidate = core.CloseLinkCandidate
)

// EmbedConfig configures the node2vec step.
type EmbedConfig = embed.Config

// Blocker assigns nodes to second-level blocks.
type Blocker = cluster.Blocker

// Blockers for the shipped domains.
type (
	// PersonBlocker blocks persons by phonetic surname and birth decade.
	PersonBlocker = cluster.PersonBlocker
	// CompanyBlocker blocks companies by sector.
	CompanyBlocker = cluster.CompanyBlocker
	// FeatureHashBlocker hashes feature vectors into K blocks.
	FeatureHashBlocker = cluster.FeatureHashBlocker
)

// Augment runs the KG-augmentation loop of Algorithm 1 on g, inserting the
// predicted edges, and returns the run report.
func Augment(g *Graph, cfg AugmentConfig) (*AugmentResult, error) {
	a, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return a.Run(g)
}

// DetectFamilies is the common case: augment g with family links using the
// default classifier, two-level clustering with k first-level clusters
// (k <= 1 disables the embedding level) and the person blocker.
func DetectFamilies(g *Graph, k int) (*AugmentResult, error) {
	return Augment(g, AugmentConfig{
		FirstLevelK: k,
		Embed:       EmbedConfig{Seed: 1},
		Blocker:     PersonBlocker{},
		Candidates:  []Candidate{&FamilyCandidate{}},
	})
}

// --- declarative reasoning (Vadalog programs) ---

// Reasoner evaluates the paper's rule programs (Algorithms 2–9) over a
// company graph through the embedded Datalog± engine.
type Reasoner = vadalog.Reasoner

// Reasoning task selectors.
const (
	TaskControl         = vadalog.TaskControl
	TaskCloseLink       = vadalog.TaskCloseLink
	TaskPartner         = vadalog.TaskPartner
	TaskFamilyControl   = vadalog.TaskFamilyControl
	TaskFamilyCloseLink = vadalog.TaskFamilyCloseLink
)

// NewReasoner prepares a reasoner for the selected tasks.
func NewReasoner(g *Graph, tasks vadalog.Task) *Reasoner { return vadalog.NewReasoner(g, tasks) }

// ParseRules parses a Vadalog-syntax rule program (for custom reasoning).
func ParseRules(src string) (*datalog.Program, error) { return datalog.Parse(src) }

// NewEngine prepares a Datalog± engine for a custom program. Functional
// options tune it:
//
//	e, err := vadalink.NewEngine(p,
//	    vadalink.WithBudget(vadalink.Budget{MaxFacts: 1e6}),
//	    vadalink.WithParallel(4),
//	    vadalink.WithStats())
func NewEngine(p *datalog.Program, opts ...EngineOption) (*datalog.Engine, error) {
	return datalog.NewEngine(p, opts...)
}

// CheckWarded analyses a rule program for membership in the warded
// Datalog± fragment — the syntactic condition behind the PTIME
// data-complexity guarantee the paper relies on.
func CheckWarded(p *datalog.Program) datalog.WardedReport { return datalog.CheckWarded(p) }

// LoadCSV builds a company graph from registry-style CSV streams
// (companies, persons, shareholdings) — the §5 ETL pipeline. Any reader may
// be nil.
func LoadCSV(companies, persons, shareholdings io.Reader) (*etl.Result, error) {
	return etl.Load(companies, persons, shareholdings)
}

// RunGenericPipeline executes the fully declarative Algorithm 2→3→4
// pipeline (input mapping, two-level clustering with builtin hooks,
// candidate generation, output mapping) over a company graph.
func RunGenericPipeline(g *Graph, cfg vadalog.GenericConfig) (*vadalog.GenericResult, error) {
	return vadalog.RunGeneric(g, cfg)
}

// --- data generation and statistics ---

// ItalianConfig configures the synthetic Italian company graph generator.
type ItalianConfig = graphgen.ItalianConfig

// ItalianGraph is a generated graph plus planted ground truth.
type ItalianGraph = graphgen.Italian

// NewItalian generates an Italian-company-like graph with planted family
// ground truth (the §6 real-world-data substitute; see DESIGN.md).
func NewItalian(cfg ItalianConfig) *ItalianGraph { return graphgen.NewItalian(cfg) }

// Barabasi generates a scale-free company graph (n nodes, m edges per node).
func Barabasi(n, m int, seed int64) *Graph { return graphgen.Barabasi(n, m, seed) }

// GraphStats is the structural profile of a graph (§2 statistics).
type GraphStats = graphstats.Stats

// Stats computes the structural profile of a graph.
func Stats(g *Graph) GraphStats { return graphstats.Compute(g) }

// Concentration is the ownership-concentration profile (HHI and friends).
type Concentration = graphstats.Concentration

// OwnershipConcentration computes the concentration profile of a graph.
func OwnershipConcentration(g *Graph) Concentration { return graphstats.ComputeConcentration(g) }

// SaveSnapshot writes the graph to path as a versioned binary snapshot,
// atomically.
func SaveSnapshot(path string, g *Graph) error { return store.Save(path, g) }

// LoadSnapshot reads a snapshot written by SaveSnapshot.
func LoadSnapshot(path string) (*Graph, error) { return store.Load(path) }

// --- crash-safe persistence (WAL + checksummed snapshots; DESIGN.md §9) ---

// DurableStore is a crash-safe property-graph store: every committed graph
// mutation is captured into a checksummed write-ahead log, full snapshots
// rotate the log, and recovery replays the latest valid snapshot plus the
// WAL tail, truncating torn final records. Facts are durable once Sync
// returns.
type DurableStore = persist.Store

// DurableOptions tunes a DurableStore — chiefly SyncEvery, the WAL
// group-commit interval (0 fsyncs every append).
type DurableOptions = persist.Options

// RecoveryInfo reports what OpenDurable replayed: snapshot generation, WAL
// records, torn tails truncated, and the recovery duration.
type RecoveryInfo = persist.RecoveryInfo

// DurableSnapshotInfo reports one DurableStore.Snapshot call.
type DurableSnapshotInfo = persist.SnapshotInfo

// DurableStats is the live WAL/snapshot counter set of a DurableStore.
type DurableStats = persist.Stats

// OpenDurable opens the durable store in dir, creating it if empty and
// recovering crash-surviving state otherwise. Mutations of the returned
// store's Graph() are change-captured from that point on.
func OpenDurable(dir string, opts DurableOptions) (*DurableStore, error) {
	return persist.Open(dir, opts)
}

// --- WAL-shipping replication (leader/follower serving tier; DESIGN.md §10) ---

// ReplicationLeader serves a DurableStore's write-ahead log as a
// replication stream: followers bootstrap from the current snapshot and
// then tail WAL frames, each re-verified by checksum on arrival.
type ReplicationLeader = replication.Leader

// ReplicationLeaderOptions tunes the leader's stream (heartbeat cadence,
// WAL poll interval).
type ReplicationLeaderOptions = replication.LeaderOptions

// ReplicationLeaderStatus is the leader-side counter snapshot (connected
// followers, frames and snapshots shipped).
type ReplicationLeaderStatus = replication.LeaderStatus

// Follower tails a leader's WAL stream into its own durable store; its
// replication position survives kill -9 because it is recomputed from the
// recovered graph, not read from a position file.
type Follower = replication.Follower

// FollowerOptions tunes a Follower: leader address, dial/read timeouts,
// reconnect backoff, local group-commit interval.
type FollowerOptions = replication.FollowerOptions

// FollowerStatus is a follower's live position: applied sequence, leader
// sequence, lag, staleness, reconnect and bootstrap counts.
type FollowerStatus = replication.FollowerStatus

// BackoffPolicy is the capped, jittered exponential backoff shared by the
// follower's reconnect loop and the ETL loaders' retry logic.
type BackoffPolicy = backoff.Policy

// NewReplicationLeader wraps a durable store with a replication leader.
// Run it with Leader.Serve on a listener of your choice.
func NewReplicationLeader(st *DurableStore, opts ReplicationLeaderOptions) *ReplicationLeader {
	return replication.NewLeader(st, opts)
}

// OpenFollower opens (or recovers) a follower store in dir and prepares it
// to tail the leader named in opts. Call Run to start replicating; wire the
// follower into APIConfig.Follower to serve its graph read-only.
func OpenFollower(dir string, opts FollowerOptions) (*Follower, error) {
	return replication.OpenFollower(dir, opts)
}

// --- self-healing replica groups (lease-based failover; DESIGN.md §14) ---

// ReplicaNode is one member of a self-healing replica group: a follower and
// a leader bound to the same durable store, switching roles automatically
// under a lease/epoch-fencing protocol. Wire it into APIConfig.Node and the
// HTTP tier follows the role live — writes run the quorum barrier while
// leading and answer 421 with the current leader's address otherwise.
type ReplicaNode = replication.Node

// ReplicaNodeOptions configures a ReplicaNode: its advertised replication
// and API addresses, the peer set, and the lease duration that bounds
// failover time.
type ReplicaNodeOptions = replication.NodeOptions

// ReplicaNodeStatus is a node's live group view: role, epoch, sequence,
// leader belief, lease health and failover counters.
type ReplicaNodeStatus = replication.NodeStatus

// ReplicaFailoverEvent records one role transition and its cause.
type ReplicaFailoverEvent = replication.FailoverEvent

// Replica-group role names, as reported in ReplicaNodeStatus.Role.
const (
	ReplicaRoleLeader   = replication.RoleLeader
	ReplicaRoleFollower = replication.RoleFollower
)

// Replica-group write errors: ErrNotLeader refuses a write on a non-leader
// (retry against the hinted leader); ErrStaleEpoch reports a leadership
// change mid-write — the write was NOT acknowledged and may or may not
// survive on the new leader.
var (
	ErrNotLeader  = replication.ErrNotLeader
	ErrStaleEpoch = replication.ErrStaleEpoch
)

// OpenReplicaNode opens (or recovers) a replica-group member's durable
// store in dir. Start it with Serve (on a listener at opts.Self) and Run
// (the role state machine) on the same context.
func OpenReplicaNode(dir string, opts ReplicaNodeOptions) (*ReplicaNode, error) {
	return replication.OpenNode(dir, opts)
}

// --- temporal dimension (the 2005–2018 register; Example 3.2 intervals) ---

// TemporalGraph is a property graph whose edges carry validity intervals,
// with yearly snapshots and control-relation diffs across years.
type TemporalGraph = temporal.Graph

// NewTemporalGraph returns an empty temporal graph.
func NewTemporalGraph() *TemporalGraph { return temporal.New() }

// WrapTemporal makes an existing graph temporal (untimed edges are valid
// forever).
func WrapTemporal(g *Graph) *TemporalGraph { return temporal.Wrap(g) }

// --- reasoning API (§5 architecture) ---

// APIHandler returns the HTTP handler of the reasoning API over g, with the
// default governance (30s request deadline, unbounded chase).
func APIHandler(g *Graph) http.Handler { return reasonapi.NewServer(g).Handler() }

// APIConfig tunes the reasoning API's resource governance: per-request
// timeout, chase budget, Retry-After advice.
type APIConfig = reasonapi.Config

// APIHandlerWith is APIHandler with explicit resource governance.
func APIHandlerWith(g *Graph, cfg APIConfig) http.Handler {
	return reasonapi.NewServerWith(g, cfg).Handler()
}

// ServeAPI serves handler on addr until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests drain. Wire ctx to
// signal.NotifyContext for clean SIGINT/SIGTERM handling.
func ServeAPI(ctx context.Context, addr string, handler http.Handler) error {
	return reasonapi.ListenAndServe(ctx, addr, handler, 0)
}

// --- resource governance (budgets and typed limit errors) ---

// Budget bounds a chase evaluation: derived facts, delta-queue size, and
// how often the engine polls its context for cancellation.
type Budget = datalog.Budget

// BudgetExceededError is the typed error a budget-stopped evaluation
// returns; it names the tripped limit and the partial progress.
type BudgetExceededError = datalog.BudgetExceededError

// NewEngineWith prepares a rule program with a hand-built options struct.
//
// Deprecated: use NewEngine with functional options (WithBudget,
// WithParallel, WithStats, ...). Kept so pre-redesign call sites compile.
func NewEngineWith(p *datalog.Program, opts datalog.Options) (*datalog.Engine, error) {
	return datalog.NewEngineWith(p, opts)
}

// EngineOptions tunes the embedded Datalog± engine.
//
// Deprecated: configure engines with EngineOption values instead.
type EngineOptions = datalog.Options

// EngineOption is one functional engine option (see the With* constructors).
type EngineOption = datalog.Option

// Engine option constructors, re-exported from the engine package.
var (
	// WithBudget bounds a Run's resources (facts, delta queue, index memory).
	WithBudget = datalog.WithBudget
	// WithMaxRounds caps the semi-naive rounds of one Run.
	WithMaxRounds = datalog.WithMaxRounds
	// WithParallel sets the chase worker count (0 = GOMAXPROCS).
	WithParallel = datalog.WithParallel
	// WithNoIndex disables the positional hash indexes (scan mode).
	WithNoIndex = datalog.WithNoIndex
	// WithProvenance records derivations, enabling Explain/ExplainTree.
	WithProvenance = datalog.WithProvenance
	// WithStats collects an EngineStats report during each Run.
	WithStats = datalog.WithStats
	// WithHook installs chase lifecycle callbacks (tracing seam).
	WithHook = datalog.WithHook
)

// --- observability (chase statistics and API metrics) ---

// EngineStats is the evaluation report of one chase Run — per-rule firings,
// derivations, duplicates and timings, per-round deltas, index hit/scan
// counts and worker-pool utilization. Collected when the engine runs with
// WithStats; read it with Engine.Stats().
type EngineStats = datalog.ChaseStats

// EngineRuleStats is the per-rule slice of an EngineStats report.
type EngineRuleStats = datalog.RuleStats

// EngineHook is the chase lifecycle callback set installed by WithHook.
type EngineHook = datalog.Hook

// APIMetrics is the snapshot served by GET /v1/metrics: per-endpoint request
// counters and latency histograms plus the last chase's per-rule statistics.
type APIMetrics = reasonapi.Metrics
