// Benchmark regression harness for the reasoning hot path: the semi-naive
// chase (BenchmarkChase), conjunctive queries over its output
// (BenchmarkQuery), and the full KG-augmentation loop (BenchmarkAugment),
// each over fixed-seed graphgen workloads of increasing size
// (graphgen.BenchmarkSizes). scripts/bench.sh runs these and emits one
// BENCH_<n>.json per size; before/after numbers of engine-touching PRs are
// recorded in CHANGES.md.
package vadalink_test

import (
	"fmt"
	"testing"

	"vadalink"
	"vadalink/internal/datalog"
	"vadalink/internal/graphgen"
	"vadalink/internal/relstore"
	"vadalink/internal/vadalog"
)

// chaseWorkload builds the extensional database of the control program on a
// fixed-seed Italian company graph with n companies (and n/2 persons, the
// ratio of the paper's yearly snapshots).
func chaseWorkload(b *testing.B, n int) []datalog.Fact {
	b.Helper()
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: n / 2, Companies: n, Seed: 7})
	return relstore.CompanyGraphFacts(it.Graph)
}

// BenchmarkChase runs the company-control chase (Algorithm 5) to fixpoint on
// graphgen workloads of {1k, 10k, 50k} companies. The scan sub-benchmarks
// evaluate the same program with indexes disabled — the pre-index baseline
// the speedup numbers in CHANGES.md are measured against. Scan mode is
// quadratic in relation size (measured: 1.2 s at 1k, 111 s at 10k, ~45 min
// at 50k on the reference machine), so it only runs at the smallest size
// here; the one-off large-scale scan numbers live in CHANGES.md.
func BenchmarkChase(b *testing.B) {
	for _, n := range graphgen.BenchmarkSizes {
		edb := chaseWorkload(b, n)
		for _, mode := range []struct {
			name string
			opts []datalog.Option
		}{
			{"indexed", nil},
			{"stats", []datalog.Option{datalog.WithStats()}},
			{"scan", []datalog.Option{datalog.WithNoIndex()}},
		} {
			// Scan mode is quadratic: only the smallest size. The stats mode
			// exists to bound instrumentation overhead against "indexed".
			if mode.name == "scan" && n > 1000 {
				continue
			}
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				prog := datalog.MustParse(vadalog.ControlProgram)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e, err := datalog.NewEngine(prog, mode.opts...)
					if err != nil {
						b.Fatal(err)
					}
					e.AssertAll(edb)
					if err := e.Run(); err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(e.NumFacts("control")), "control-facts")
					// In stats mode, surface the chase report in the bench
					// output so bench.sh lands it in BENCH_<n>.json.
					if st := e.Stats(); st != nil {
						b.ReportMetric(float64(st.Rounds), "chase-rounds")
						b.ReportMetric(float64(st.Derived), "derived-facts")
						b.ReportMetric(float64(st.Duplicates), "duplicate-facts")
						b.ReportMetric(float64(st.IndexHits), "index-hits")
						b.ReportMetric(float64(st.IndexScans), "index-scans")
						b.ReportMetric(st.Utilization, "pool-utilization")
					}
				}
			})
		}
	}
}

// BenchmarkQuery measures conjunctive-query answering over the materialized
// control relation: a two-atom join (who controls a controller) plus a
// bound-argument point lookup, the two access patterns of /v1/reason.
func BenchmarkQuery(b *testing.B) {
	for _, n := range graphgen.BenchmarkSizes {
		edb := chaseWorkload(b, n)
		prog := datalog.MustParse(vadalog.ControlProgram)
		e, err := datalog.NewEngine(prog)
		if err != nil {
			b.Fatal(err)
		}
		e.AssertAll(edb)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		controls := e.Facts("control")
		if len(controls) == 0 {
			b.Fatal("no control facts derived")
		}
		b.Run(fmt.Sprintf("join/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Query(
					datalog.Atom{Pred: "control", Terms: []datalog.Term{datalog.Variable("X"), datalog.Variable("Y")}},
					datalog.Atom{Pred: "control", Terms: []datalog.Term{datalog.Variable("Y"), datalog.Variable("Z")}},
				)
			}
		})
		b.Run(fmt.Sprintf("point/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := controls[i%len(controls)]
				e.Match("control", f.Args[0], nil)
			}
		})
	}
}

// BenchmarkAugment measures the full augmentation loop (blocking + family
// matching) on growing graphs — the end-to-end path behind /v1/augment.
func BenchmarkAugment(b *testing.B) {
	for _, n := range graphgen.BenchmarkSizes {
		if n > 10_000 {
			// The classifier loop is quadratic per block; 50k is the chase
			// benchmark's job, not this one's.
			continue
		}
		it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: n, Companies: n / 2, Seed: 7})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := it.Graph.Clone()
				_, err := vadalink.Augment(g, vadalink.AugmentConfig{
					Blocker:    vadalink.PersonBlocker{},
					Candidates: []vadalink.Candidate{&vadalink.FamilyCandidate{}},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
