// Benchmark regression harness for the MVCC/overlay subsystem:
// BenchmarkWhatIf pits the scoped overlay evaluation of a counterfactual
// against the deep-copy-and-re-chase baseline it replaces, and
// BenchmarkSnapshotReaders measures read throughput on the published version
// chain while a writer commits continuously. scripts/bench.sh runs both.
package vadalink_test

import (
	"context"
	"fmt"
	"testing"

	"vadalink/internal/control"
	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
	"vadalink/internal/store"
	"vadalink/internal/whatif"
)

// whatifWorkload is a fixed-seed Italian graph with a warm baseline and a
// deterministic scenario: halve the weight of the first shareholding (a
// decrease always satisfies the ≤100% invariant).
func whatifWorkload(b *testing.B, n int) (*pg.Graph, *whatif.Baseline, []whatif.Op) {
	b.Helper()
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: n / 2, Companies: n, Seed: 7})
	g := it.Graph
	bl, err := whatif.ComputeBaseline(context.Background(), g, whatif.DefaultThreshold)
	if err != nil {
		b.Fatal(err)
	}
	shares := g.EdgesWithLabel(pg.LabelShareholding)
	if len(shares) == 0 {
		b.Fatal("workload has no shareholdings")
	}
	e := shares[0]
	w, _ := g.Edge(e).Weight()
	ops := []whatif.Op{{Op: "setShare", Edge: e, W: w / 2}}
	return g, bl, ops
}

// BenchmarkWhatIf compares the two ways to answer a counterfactual over a
// warm baseline: the scoped overlay evaluation behind POST /v1/whatif
// ("overlay": re-chase only the affected ownership cone on a copy-on-write
// view) versus the approach it replaces ("deepcopy": materialize the whole
// composite graph and run the full chase from scratch).
func BenchmarkWhatIf(b *testing.B) {
	ctx := context.Background()
	for _, n := range graphgen.BenchmarkSizes {
		if n > 10_000 {
			continue // the 50k chase is BenchmarkChase's job
		}
		g, bl, ops := whatifWorkload(b, n)
		b.Run(fmt.Sprintf("overlay/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := whatif.Evaluate(ctx, g, bl, ops, whatif.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("deepcopy/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := pg.NewOverlay(g)
				if _, _, err := whatif.Apply(o, ops); err != nil {
					b.Fatal(err)
				}
				flat, err := pg.Flatten(o)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := whatif.ComputeBaseline(ctx, flat, whatif.DefaultThreshold); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotReaders measures a realistic read (the control fixpoint
// of one owner) against the published version chain while a writer commits
// a steady stream of overlay transactions — the contention profile of
// /v1/control under an in-flight /v1/augment. Readers pin versions with one
// atomic load; throughput should not collapse under the writer.
func BenchmarkSnapshotReaders(b *testing.B) {
	const n = 1000
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		benchSnapshotReaders(b, n)
	})
}

func benchSnapshotReaders(b *testing.B, n int) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: n / 2, Companies: n, Seed: 7})
	vs := store.NewVersioned(it.Graph)
	persons := it.Graph.NodesWithLabel(pg.LabelPerson)
	companies := it.Graph.NodesWithLabel(pg.LabelCompany)
	if len(persons) == 0 || len(companies) == 0 {
		b.Fatal("workload is empty")
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			txn := vs.Begin()
			o := txn.Overlay()
			id := o.AddNode(pg.LabelCompany, pg.Properties{"name": fmt.Sprintf("w%d", i)})
			o.MustAddEdge(pg.LabelShareholding, id, companies[i%len(companies)],
				pg.Properties{pg.WeightProp: 0.0001})
			if _, err := txn.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			v := vs.Current().View()
			control.Controls(v, persons[i%len(persons)])
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}
