module vadalink

go 1.22
