// Benchmark for the replication catch-up path: how fast a cold follower
// replays a leader's WAL over the wire. scripts/bench.sh runs this with the
// other regression benchmarks; the frames/s metric lands in BENCH_<n>.json.
package vadalink_test

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"vadalink"
)

// BenchmarkFollowerCatchup measures end-to-end catch-up throughput: a
// follower with an empty store connects to a leader holding n WAL records
// and tails until parity. The cost covers the stream protocol, per-frame
// CRC re-verification, the mutation apply path, and the follower's own WAL
// append — the whole pipeline a lagged replica must traverse.
func BenchmarkFollowerCatchup(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			st, err := vadalink.OpenDurable(filepath.Join(dir, "leader"), vadalink.DurableOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			g := st.Graph()
			for i := 0; i < n; i++ {
				g.AddNode(vadalink.LabelCompany, vadalink.Properties{"n": i})
			}
			if err := st.Sync(); err != nil {
				b.Fatal(err)
			}
			ld := vadalink.NewReplicationLeader(st, vadalink.ReplicationLeaderOptions{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{})
			go func() {
				defer close(done)
				_ = ld.Serve(ctx, ln)
			}()
			defer func() { cancel(); <-done }()
			target := st.Seq()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl, err := vadalink.OpenFollower(
					filepath.Join(dir, fmt.Sprintf("f%d", i)),
					vadalink.FollowerOptions{Leader: ln.Addr().String()},
				)
				if err != nil {
					b.Fatal(err)
				}
				fctx, fcancel := context.WithCancel(ctx)
				fdone := make(chan struct{})
				go func() {
					defer close(fdone)
					fl.Run(fctx)
				}()
				for fl.Seq() < target {
					time.Sleep(100 * time.Microsecond)
				}
				fcancel()
				<-fdone
				if err := fl.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(target)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}
