// Benchmark regression harness for demand-driven point queries:
// BenchmarkPointQuery pits the magic-sets goal evaluation (the machinery
// behind POST /v1/query and the point endpoints) against the full chase it
// replaces, and both against a warm query-cache hit, on one fully bound
// control(x, y) goal over the graphgen size ladder. scripts/bench.sh runs
// it; the PR that introduced the goal engine recorded the trajectory in
// BENCH_9.json.
package vadalink_test

import (
	"context"
	"fmt"
	"os"
	"testing"

	"vadalink/internal/datalog"
	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
	"vadalink/internal/qcache"
	"vadalink/internal/relstore"
	"vadalink/internal/vadalog"
	"vadalink/internal/whatif"
)

// pointWorkload builds a fixed-seed Italian graph plus a bound goal pair:
// the holder and target of the first majority shareholding, so the goal
// control(x, y) is derivable through at least the direct-ownership rule (a
// non-empty demand cone, not a trivially failing probe). Falls back to the
// first shareholding when no single edge is a majority stake.
func pointWorkload(b *testing.B, n int) (pg.View, pg.NodeID, pg.NodeID) {
	b.Helper()
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: n / 2, Companies: n, Seed: 7})
	shares := it.Graph.EdgesWithLabel(pg.LabelShareholding)
	if len(shares) == 0 {
		b.Fatal("workload has no shareholdings")
	}
	pick := shares[0]
	for _, id := range shares {
		if w, ok := it.Graph.Edge(id).Weight(); ok && w > 0.5 {
			pick = id
			break
		}
	}
	e := it.Graph.Edge(pick)
	return it.Graph, e.From, e.To
}

// BenchmarkPointQuery measures the cost of answering one bound point query
// control(x, y) three ways: "goal" rewrites the control program with magic
// sets and chases only x's demand cone (the path behind /v1/query and the
// target form of /v1/control); "full" chases the whole program over every
// extracted fact and answers the goal against the result, which is what
// every point question cost before the goal engine existed; "cachehit"
// replays the marshaled answer from a warm result cache at an unchanged
// sequence number, the steady-state serving cost between relevant commits.
// The cross-validation harness in internal/vadalog proves goal and full
// agree; this benchmark records the gap.
func BenchmarkPointQuery(b *testing.B) {
	ctx := context.Background()
	goalOpts := []datalog.Option{datalog.WithMinAggDelta(whatif.DefaultMinAggDelta)}
	for _, n := range graphgen.BenchmarkSizes {
		// The 50k full chase re-derives the whole control relation per
		// iteration, minutes of work on the reference machine — too slow for
		// the CI smoke. Like BenchmarkIncrementalUpdate's 50k mode it only
		// runs on request; the one-off measurement lives in BENCH_9.json.
		if n > 10_000 && os.Getenv("BENCH_POINT_50K") == "" {
			continue
		}
		// The size is the outer sub-benchmark so workload construction only
		// runs for sizes the -bench filter selects.
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			v, x, y := pointWorkload(b, n)
			goal := datalog.Atom{Pred: "control", Terms: []datalog.Term{datalog.Int(int64(x)), datalog.Int(int64(y))}}
			// Parsing, fact extraction, and the EDB load into the engine cost
			// the same on both paths (the serving tier pays them per request
			// regardless of strategy), so they stay outside the timed region:
			// the arms time rewrite construction, chase, and answer lookup.
			prog, err := datalog.Parse(vadalog.ControlProgram)
			if err != nil {
				b.Fatal(err)
			}
			facts := relstore.CompanyGraphFacts(v)

			b.Run("goal", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e, err := datalog.NewGoalEngine(prog, goal, goalOpts...)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					e.AssertAll(facts)
					b.StartTimer()
					if err := e.RunContext(ctx); err != nil {
						b.Fatal(err)
					}
					_ = e.Query(goal)
				}
			})

			b.Run("full", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e, err := datalog.NewEngine(prog, goalOpts...)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					e.AssertAll(facts)
					b.StartTimer()
					if err := e.RunContext(ctx); err != nil {
						b.Fatal(err)
					}
					_ = e.Query(goal)
				}
			})

			b.Run("cachehit", func(b *testing.B) {
				c := qcache.New(0)
				key := fmt.Sprintf("control:%d:%d", x, y)
				payload := []byte(`{"node":1,"target":2,"controls":true,"mode":"magic","seq":1}`)
				c.Put(key, qcache.ClassDerived, 1, payload)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					val, _, hit, err := c.Do(key, qcache.ClassDerived, 1, func() ([]byte, error) {
						b.Fatal("unexpected cache miss")
						return nil, nil
					})
					if err != nil || !hit || len(val) == 0 {
						b.Fatalf("cache replay failed: hit=%v err=%v", hit, err)
					}
				}
			})
		})
	}
}
