package replication

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/faultinject"
	"vadalink/internal/persist"
)

// LeaderOptions tunes the serving side of replication.
type LeaderOptions struct {
	// Heartbeat is how often an idle stream sends a 'P' message so
	// followers can measure freshness. Default 500ms.
	Heartbeat time.Duration
	// Poll is how often a drained stream re-checks the WAL file for new
	// bytes. Default 10ms.
	Poll time.Duration
	// RequestTimeout bounds how long the leader waits for a follower's
	// request line before dropping the connection. Default 10s.
	RequestTimeout time.Duration
	// Logger receives connection lifecycle events. Default: discard.
	Logger *slog.Logger
}

// LeaderStatus is a snapshot of the leader's replication counters.
type LeaderStatus struct {
	Connected        int64  `json:"connectedFollowers"`
	Accepted         int64  `json:"accepted"`
	FramesShipped    int64  `json:"framesShipped"`
	SnapshotsShipped int64  `json:"snapshotsShipped"`
	Seq              int64  `json:"seq"`
	Addr             string `json:"addr,omitempty"`
}

// Leader serves a Store's WAL as a replication stream. One Leader serves
// any number of concurrent followers; each connection gets its own reader
// over the log file, so a slow follower never stalls a fast one — or the
// writer.
type Leader struct {
	store *persist.Store
	opts  LeaderOptions

	connected atomic.Int64
	accepted  atomic.Int64
	frames    atomic.Int64
	snapshots atomic.Int64
	addr      atomic.Value // string
}

// NewLeader wraps a store with a replication serving tier. The store keeps
// working exactly as before; the leader only ever reads its files.
func NewLeader(store *persist.Store, opts LeaderOptions) *Leader {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Poll <= 0 {
		opts.Poll = 10 * time.Millisecond
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Leader{store: store, opts: opts}
}

// Addr reports the listener address once Serve is running ("" before).
func (l *Leader) Addr() string {
	if v, ok := l.addr.Load().(string); ok {
		return v
	}
	return ""
}

// Status snapshots the leader's counters.
func (l *Leader) Status() LeaderStatus {
	return LeaderStatus{
		Connected:        l.connected.Load(),
		Accepted:         l.accepted.Load(),
		FramesShipped:    l.frames.Load(),
		SnapshotsShipped: l.snapshots.Load(),
		Seq:              l.store.Seq(),
		Addr:             l.Addr(),
	}
}

// Serve accepts follower connections on ln until ctx is cancelled. Each
// follower is handled on its own goroutine; Serve returns only after every
// stream has wound down.
func (l *Leader) Serve(ctx context.Context, ln net.Listener) error {
	l.addr.Store(ln.Addr().String())
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("replication: accept: %w", err)
		}
		if ferr := faultinject.FireErr(faultinject.SiteReplAccept); ferr != nil {
			// Injected accept-time crash: the follower sees the connection
			// vanish before the hello, exactly like a leader dying between
			// accept and negotiate.
			conn.Close()
			continue
		}
		l.accepted.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.connected.Add(1)
			defer l.connected.Add(-1)
			// Cancellation closes the socket out from under the stream
			// loop, which surfaces as a write/read error and unwinds it.
			stopConn := context.AfterFunc(ctx, func() { conn.Close() })
			defer stopConn()
			defer conn.Close()
			if err := l.handle(ctx, conn); err != nil && ctx.Err() == nil {
				l.opts.Logger.Debug("replication stream ended", "remote", conn.RemoteAddr().String(), "err", err)
			}
		}()
	}
}

// handle negotiates with one follower and streams until error, rotation or
// cancellation.
func (l *Leader) handle(ctx context.Context, conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(l.opts.RequestTimeout))
	br := bufio.NewReaderSize(conn, 4096)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("replication: reading request: %w", err)
	}
	var req request
	if err := json.Unmarshal(line, &req); err != nil || req.Seq < 0 {
		return fmt.Errorf("replication: bad request %q", line)
	}
	conn.SetReadDeadline(time.Time{})

	gen, base, seqNow := l.store.Position()
	h := hello{Gen: gen, Base: base, From: req.Seq, LeaderSeq: seqNow}
	switch {
	case req.Seq > seqNow:
		// The follower holds mutations this leader never durably had — the
		// leader lost an unsynced tail in a crash and the follower applied
		// it before the loss. The leader's durable state is authoritative;
		// the follower must discard and re-bootstrap.
		h.Reset = true
		h.Snapshot = gen > 0
		h.From = base
	case req.Seq < base:
		// Lagged past log truncation: the frames between the follower's
		// position and base were rotated away. Bootstrap from the current
		// generation's snapshot (generation 0 has none — the base state is
		// the empty graph).
		h.Snapshot = gen > 0
		h.From = base
	}

	hb, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if err := l.send(conn, msgHello, hb); err != nil {
		return err
	}
	if h.Snapshot {
		snap, err := os.ReadFile(l.store.SnapshotFile(gen))
		if err != nil {
			return fmt.Errorf("replication: reading snapshot for bootstrap: %w", err)
		}
		if err := l.send(conn, msgSnapshot, snap); err != nil {
			return err
		}
		l.snapshots.Add(1)
	}
	return l.stream(ctx, conn, gen, h.From-base)
}

// stream ships WAL frames of generation gen starting at frame index
// skip, then follows the file as it grows. It returns nil when the store
// rotates to a new generation and every frame of the old one has been
// shipped — the follower reconnects and renegotiates at the new base.
func (l *Leader) stream(ctx context.Context, conn net.Conn, gen uint64, skip int64) error {
	f, err := os.Open(l.store.WALFile(gen))
	if err != nil {
		if !os.IsNotExist(err) {
			return fmt.Errorf("replication: opening wal for streaming: %w", err)
		}
		// A fresh generation may not have a WAL file yet (no mutation since
		// rotation). Treat it as empty and poll for its creation below.
		f = nil
	}
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	var (
		buf       []byte // bytes read but not yet cut into frames
		chunk     = make([]byte, 64<<10)
		lastSend  = time.Now()
		heartbeat = l.opts.Heartbeat
	)
	for {
		if ctx.Err() != nil {
			return nil
		}
		// Drain what the file has beyond what we've consumed.
		grew := false
		if f == nil {
			if nf, err := os.Open(l.store.WALFile(gen)); err == nil {
				f = nf
			}
		}
		for f != nil {
			n, err := f.Read(chunk)
			if n > 0 {
				buf = append(buf, chunk[:n]...)
				grew = true
			}
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return fmt.Errorf("replication: reading wal: %w", err)
			}
			if n == 0 {
				break
			}
		}
		// Cut complete frames out of the buffer and ship them.
		for {
			n, ok := persist.NextFrame(buf)
			if !ok {
				break
			}
			frame := buf[:n:n]
			buf = buf[n:]
			if skip > 0 {
				skip--
				continue
			}
			if ferr := faultinject.FireErr(faultinject.SiteReplFrame); ferr != nil {
				// Injected wire corruption: flip one payload byte in a copy
				// (never in the file's bytes). The follower's CRC re-check
				// must reject it.
				frame = append([]byte(nil), frame...)
				frame[len(frame)-1] ^= 0x01
			}
			if err := l.send(conn, msgFrame, frame); err != nil {
				return err
			}
			l.frames.Add(1)
			lastSend = time.Now()
		}
		if grew {
			continue // more may already be in the file
		}
		// File is drained. If the store rotated, this generation is final
		// and fully shipped — end the stream so the follower renegotiates.
		if curGen, _, _ := l.store.Position(); curGen != gen && len(buf) == 0 {
			return nil
		}
		if time.Since(lastSend) >= heartbeat {
			hb, err := json.Marshal(heartbeatMsg(l.store.Seq()))
			if err != nil {
				return err
			}
			if err := l.send(conn, msgHeartbeat, hb); err != nil {
				return err
			}
			lastSend = time.Now()
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(l.opts.Poll):
		}
	}
}

func heartbeatMsg(seq int64) heartbeat { return heartbeat{Seq: seq} }

// send writes one protocol message. The injected fault here cuts the stream
// mid-message: half the bytes go out, then the connection dies — the
// follower must treat the torn message as a disconnect, not as data.
func (l *Leader) send(conn net.Conn, typ byte, payload []byte) error {
	msg := encodeMsg(typ, payload)
	if ferr := faultinject.FireErr(faultinject.SiteReplSend); ferr != nil {
		_, _ = conn.Write(msg[:len(msg)/2])
		conn.Close()
		return fmt.Errorf("replication: injected stream cut: %w", ferr)
	}
	if _, err := conn.Write(msg); err != nil {
		return fmt.Errorf("replication: writing %q message: %w", typ, err)
	}
	return nil
}
