package replication

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/faultinject"
	"vadalink/internal/persist"
)

// LeaderOptions tunes the serving side of replication.
type LeaderOptions struct {
	// Heartbeat is how often an idle stream sends a 'P' message so
	// followers can measure freshness. Default 500ms.
	Heartbeat time.Duration
	// Poll is how often a drained stream re-checks the WAL file for new
	// bytes. Default 10ms.
	Poll time.Duration
	// RequestTimeout bounds how long the leader waits for a follower's
	// request line before dropping the connection. Default 10s.
	RequestTimeout time.Duration
	// OnHigherEpoch, when set, is called whenever the leader observes a
	// higher epoch than its own — in a follower's stream request or in a
	// durable ack. A replica-group node steps down on it: someone fenced a
	// newer epoch, so this leader is deposed and must stop acknowledging.
	OnHigherEpoch func(epoch uint64)
	// API is this leader's advertised HTTP API address, stamped into every
	// stream hello so followers learn where writes belong without static
	// configuration.
	API string
	// Logger receives connection lifecycle events. Default: discard.
	Logger *slog.Logger
}

// LeaderStatus is a snapshot of the leader's replication counters.
type LeaderStatus struct {
	Connected        int64  `json:"connectedFollowers"`
	Accepted         int64  `json:"accepted"`
	FramesShipped    int64  `json:"framesShipped"`
	SnapshotsShipped int64  `json:"snapshotsShipped"`
	Seq              int64  `json:"seq"`
	Epoch            uint64 `json:"epoch,omitempty"`
	Addr             string `json:"addr,omitempty"`
}

// Leader serves a Store's WAL as a replication stream. One Leader serves
// any number of concurrent followers; each connection gets its own reader
// over the log file, so a slow follower never stalls a fast one — or the
// writer.
type Leader struct {
	store *persist.Store
	opts  LeaderOptions

	connected atomic.Int64
	accepted  atomic.Int64
	frames    atomic.Int64
	snapshots atomic.Int64
	addr      atomic.Value // string

	// acks tracks each follower's latest durable ack, keyed by its node ID
	// (fallback: remote address). Entries are never evicted — replica
	// groups are small — and reconnecting followers overwrite their slot.
	ackMu sync.Mutex
	acks  map[string]ackState
}

// ackState is one follower's newest durable ack and when it arrived.
type ackState struct {
	seq   int64
	epoch uint64
	at    time.Time
}

// NewLeader wraps a store with a replication serving tier. The store keeps
// working exactly as before; the leader only ever reads its files.
func NewLeader(store *persist.Store, opts LeaderOptions) *Leader {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Poll <= 0 {
		opts.Poll = 10 * time.Millisecond
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Leader{store: store, opts: opts, acks: make(map[string]ackState)}
}

// Addr reports the listener address once Serve is running ("" before).
func (l *Leader) Addr() string {
	if v, ok := l.addr.Load().(string); ok {
		return v
	}
	return ""
}

// Status snapshots the leader's counters.
func (l *Leader) Status() LeaderStatus {
	return LeaderStatus{
		Connected:        l.connected.Load(),
		Accepted:         l.accepted.Load(),
		FramesShipped:    l.frames.Load(),
		SnapshotsShipped: l.snapshots.Load(),
		Seq:              l.store.Seq(),
		Epoch:            l.store.Epoch(),
		Addr:             l.Addr(),
	}
}

// observeAck records one follower's durable-progress line. An ack from a
// higher epoch means this leader was deposed while it wasn't looking.
func (l *Leader) observeAck(id string, a ack) {
	l.ackMu.Lock()
	cur := l.acks[id]
	if a.Epoch > cur.epoch || (a.Epoch == cur.epoch && a.Seq >= cur.seq) {
		l.acks[id] = ackState{seq: a.Seq, epoch: a.Epoch, at: time.Now()}
	}
	l.ackMu.Unlock()
	if a.Epoch > l.store.Epoch() && l.opts.OnHigherEpoch != nil {
		l.opts.OnHigherEpoch(a.Epoch)
	}
}

// AckedAtLeast counts distinct followers whose newest durable ack covers
// seq, carries exactly epoch, and arrived within window. The replica-group
// leader uses it both as the commit barrier (majority-1 followers hold the
// fact fsynced at the current epoch) and as the lease signal (fresh acks
// prove the followers still follow this leader).
func (l *Leader) AckedAtLeast(seq int64, epoch uint64, window time.Duration) int {
	l.ackMu.Lock()
	defer l.ackMu.Unlock()
	n := 0
	now := time.Now()
	for _, a := range l.acks {
		if a.seq >= seq && a.epoch == epoch && now.Sub(a.at) <= window {
			n++
		}
	}
	return n
}

// Serve accepts follower connections on ln until ctx is cancelled. Each
// follower is handled on its own goroutine; Serve returns only after every
// stream has wound down.
func (l *Leader) Serve(ctx context.Context, ln net.Listener) error {
	l.addr.Store(ln.Addr().String())
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("replication: accept: %w", err)
		}
		if ferr := faultinject.FireErr(faultinject.SiteReplAccept); ferr != nil {
			// Injected accept-time crash: the follower sees the connection
			// vanish before the hello, exactly like a leader dying between
			// accept and negotiate.
			conn.Close()
			continue
		}
		l.accepted.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.connected.Add(1)
			defer l.connected.Add(-1)
			// Cancellation closes the socket out from under the stream
			// loop, which surfaces as a write/read error and unwinds it.
			stopConn := context.AfterFunc(ctx, func() { conn.Close() })
			defer stopConn()
			defer conn.Close()
			if err := l.handle(ctx, conn); err != nil && ctx.Err() == nil {
				l.opts.Logger.Debug("replication stream ended", "remote", conn.RemoteAddr().String(), "err", err)
			}
		}()
	}
}

// handle negotiates with one follower and streams until error, rotation or
// cancellation.
func (l *Leader) handle(ctx context.Context, conn net.Conn) error {
	req, br, err := readRequest(conn, l.opts.RequestTimeout)
	if err != nil {
		return err
	}
	return l.serveStream(ctx, conn, br, req)
}

// readRequest reads and validates the single JSON request line that opens
// every connection. The returned reader holds any bytes read past the
// newline (the follower's first ack may already be buffered behind it).
func readRequest(conn net.Conn, timeout time.Duration) (request, *bufio.Reader, error) {
	conn.SetReadDeadline(time.Now().Add(timeout))
	br := bufio.NewReaderSize(conn, 4096)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return request{}, nil, fmt.Errorf("replication: reading request: %w", err)
	}
	var req request
	if err := json.Unmarshal(line, &req); err != nil || req.Seq < 0 {
		return request{}, nil, fmt.Errorf("replication: bad request %q", line)
	}
	conn.SetReadDeadline(time.Time{})
	return req, br, nil
}

// serveStream answers one stream request: negotiate a start position, ship
// a bootstrap snapshot if needed, then stream frames while a side goroutine
// consumes the follower's durable-ack lines off the same connection.
func (l *Leader) serveStream(ctx context.Context, conn net.Conn, br *bufio.Reader, req request) error {
	myEpoch := l.store.Epoch()
	if req.Epoch > myEpoch {
		// The follower is fenced into a newer epoch than ours: we are the
		// deposed one. Tell the node layer, answer not-a-leader, drop.
		if l.opts.OnHigherEpoch != nil {
			l.opts.OnHigherEpoch(req.Epoch)
		}
		hb, err := json.Marshal(hello{Epoch: myEpoch, NotLeader: true})
		if err != nil {
			return err
		}
		_ = l.send(conn, msgHello, hb)
		return fmt.Errorf("replication: follower at epoch %d outranks leader at %d", req.Epoch, myEpoch)
	}

	gen, base, seqNow := l.store.Position()
	h := hello{Gen: gen, Base: base, From: req.Seq, LeaderSeq: seqNow,
		Epoch: myEpoch, Marks: l.store.EpochMarks(), LeaderAPI: l.opts.API}
	switch {
	case req.Seq > seqNow:
		// The follower holds mutations this leader never durably had — the
		// leader lost an unsynced tail in a crash and the follower applied
		// it before the loss. The leader's durable state is authoritative;
		// the follower must discard and re-bootstrap.
		h.Reset = true
		h.Snapshot = gen > 0
		h.From = base
	case l.store.DivergedSince(req.LastEpoch, req.Seq):
		// The follower's tail was written under an epoch that a later fence
		// cut off: its last records are not a prefix of this history. The
		// reset bootstrap is the "truncate the divergent tail" step — the
		// follower discards local state and adopts the fenced history.
		h.Reset = true
		h.Snapshot = gen > 0
		h.From = base
	case req.Seq < base:
		// Lagged past log truncation: the frames between the follower's
		// position and base were rotated away. Bootstrap from the current
		// generation's snapshot (generation 0 has none — the base state is
		// the empty graph).
		h.Snapshot = gen > 0
		h.From = base
	}

	hb, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if err := l.send(conn, msgHello, hb); err != nil {
		return err
	}
	if h.Snapshot {
		snap, err := os.ReadFile(l.store.SnapshotFile(gen))
		if err != nil {
			return fmt.Errorf("replication: reading snapshot for bootstrap: %w", err)
		}
		if err := l.send(conn, msgSnapshot, snap); err != nil {
			return err
		}
		l.snapshots.Add(1)
	}

	// Drain the follower's ack lines for the life of the stream. The reader
	// owns br; closing the connection (below, or via Serve's AfterFunc)
	// unblocks it.
	ackID := req.ID
	if ackID == "" {
		ackID = conn.RemoteAddr().String()
	}
	ackerDone := make(chan struct{})
	go func() {
		defer close(ackerDone)
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				return
			}
			var a ack
			if json.Unmarshal(line, &a) != nil || a.Seq < 0 {
				return
			}
			l.observeAck(ackID, a)
		}
	}()
	err = l.stream(ctx, conn, gen, h.From-base)
	conn.Close()
	<-ackerDone
	return err
}

// stream ships WAL frames of generation gen starting at frame index
// skip, then follows the file as it grows. It returns nil when the store
// rotates to a new generation and every frame of the old one has been
// shipped — the follower reconnects and renegotiates at the new base.
func (l *Leader) stream(ctx context.Context, conn net.Conn, gen uint64, skip int64) error {
	f, err := os.Open(l.store.WALFile(gen))
	if err != nil {
		if !os.IsNotExist(err) {
			return fmt.Errorf("replication: opening wal for streaming: %w", err)
		}
		// A fresh generation may not have a WAL file yet (no mutation since
		// rotation). Treat it as empty and poll for its creation below.
		f = nil
	}
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	var (
		buf      []byte // bytes read but not yet cut into frames
		chunk    = make([]byte, 64<<10)
		lastSend = time.Now()
		hbEvery  = l.opts.Heartbeat
	)
	for {
		if ctx.Err() != nil {
			return nil
		}
		// Drain what the file has beyond what we've consumed.
		grew := false
		if f == nil {
			if nf, err := os.Open(l.store.WALFile(gen)); err == nil {
				f = nf
			}
		}
		for f != nil {
			n, err := f.Read(chunk)
			if n > 0 {
				buf = append(buf, chunk[:n]...)
				grew = true
			}
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return fmt.Errorf("replication: reading wal: %w", err)
			}
			if n == 0 {
				break
			}
		}
		// Cut complete frames out of the buffer and ship them.
		for {
			n, ok := persist.NextFrame(buf)
			if !ok {
				break
			}
			frame := buf[:n:n]
			buf = buf[n:]
			// Epoch marks are sequence-neutral: they never consume the skip
			// budget (which counts mutations the follower already holds) and
			// always ship — a follower that already holds the mark ignores
			// it, one that doesn't needs it to fence correctly.
			if op, ok := persist.FrameOp(frame); ok && op == persist.OpEpoch {
				if err := l.send(conn, msgFrame, frame); err != nil {
					return err
				}
				l.frames.Add(1)
				lastSend = time.Now()
				continue
			}
			if skip > 0 {
				skip--
				continue
			}
			if ferr := faultinject.FireErr(faultinject.SiteReplFrame); ferr != nil {
				// Injected wire corruption: flip one payload byte in a copy
				// (never in the file's bytes). The follower's CRC re-check
				// must reject it.
				frame = append([]byte(nil), frame...)
				frame[len(frame)-1] ^= 0x01
			}
			if err := l.send(conn, msgFrame, frame); err != nil {
				return err
			}
			l.frames.Add(1)
			lastSend = time.Now()
		}
		if grew {
			continue // more may already be in the file
		}
		// File is drained. If the store rotated, this generation is final
		// and fully shipped — end the stream so the follower renegotiates.
		if curGen, _, _ := l.store.Position(); curGen != gen && len(buf) == 0 {
			return nil
		}
		if time.Since(lastSend) >= hbEvery {
			if ferr := faultinject.FireErr(faultinject.SiteReplHeartbeat); ferr != nil {
				// Injected heartbeat loss: the connection stays up but goes
				// mute, so follower lease deadlines expire under a live
				// leader. Stamp lastSend so the silence persists.
				lastSend = time.Now()
				continue
			}
			hb, err := json.Marshal(heartbeat{Seq: l.store.Seq(), Epoch: l.store.Epoch()})
			if err != nil {
				return err
			}
			if err := l.send(conn, msgHeartbeat, hb); err != nil {
				return err
			}
			lastSend = time.Now()
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(l.opts.Poll):
		}
	}
}

// send writes one protocol message. The injected fault here cuts the stream
// mid-message: half the bytes go out, then the connection dies — the
// follower must treat the torn message as a disconnect, not as data.
func (l *Leader) send(conn net.Conn, typ byte, payload []byte) error {
	msg := encodeMsg(typ, payload)
	if ferr := faultinject.FireErr(faultinject.SiteReplSend); ferr != nil {
		_, _ = conn.Write(msg[:len(msg)/2])
		conn.Close()
		return fmt.Errorf("replication: injected stream cut: %w", ferr)
	}
	if _, err := conn.Write(msg); err != nil {
		return fmt.Errorf("replication: writing %q message: %w", typ, err)
	}
	return nil
}
