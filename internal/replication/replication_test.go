package replication

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"vadalink/internal/backoff"
	"vadalink/internal/persist"
	"vadalink/internal/pg"
)

// testLeader spins up a leader store + serving loop on an ephemeral port.
// Cleanup tears the whole thing down.
func testLeader(t *testing.T, opts LeaderOptions) (*persist.Store, *Leader, string) {
	t.Helper()
	st, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ld := NewLeader(st, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ld.Serve(ctx, ln); err != nil {
			t.Errorf("leader serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return st, ld, ln.Addr().String()
}

// testFollower opens a follower in a temp dir and runs it against addr.
func testFollower(t *testing.T, addr string, opts FollowerOptions) *Follower {
	t.Helper()
	if opts.Leader == "" && opts.LeaderFunc == nil {
		opts.Leader = addr
	}
	fl, err := OpenFollower(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		fl.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		fl.Close()
	})
	return fl
}

// waitSeq polls until the follower has applied through seq (or the deadline
// passes).
func waitSeq(t *testing.T, fl *Follower, seq int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for fl.Seq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d (status %+v)", fl.Seq(), seq, fl.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sameFacts asserts the follower graph holds exactly the leader graph's
// nodes and edges.
func sameFacts(t *testing.T, leader, follower *pg.Graph) {
	t.Helper()
	if leader.NumNodes() != follower.NumNodes() || leader.NumEdges() != follower.NumEdges() {
		t.Fatalf("follower has %d nodes / %d edges, leader %d / %d",
			follower.NumNodes(), follower.NumEdges(), leader.NumNodes(), leader.NumEdges())
	}
	for _, id := range leader.Nodes() {
		ln, fn := leader.Node(id), follower.Node(id)
		if fn == nil || fn.Label != ln.Label || len(fn.Props) != len(ln.Props) {
			t.Fatalf("node %d differs: leader %+v follower %+v", id, ln, fn)
		}
		for k, v := range ln.Props {
			if fn.Props[k] != v {
				t.Fatalf("node %d prop %q: leader %v follower %v", id, k, v, fn.Props[k])
			}
		}
	}
	for _, id := range leader.Edges() {
		le, fe := leader.Edge(id), follower.Edge(id)
		if fe == nil || fe.From != le.From || fe.To != le.To || fe.Label != le.Label {
			t.Fatalf("edge %d differs: leader %+v follower %+v", id, le, fe)
		}
	}
}

// The happy path: a follower bootstrapping from empty tails a live leader
// through node adds, edge adds and removals, and converges to an identical
// graph.
func TestFollowerTailsLeader(t *testing.T) {
	st, ld, addr := testLeader(t, LeaderOptions{Heartbeat: 20 * time.Millisecond})
	g := st.Graph()

	// Pre-existing state before the follower ever connects.
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	e := g.MustAddEdgeWeighted(a, b, 0.4)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	fl := testFollower(t, addr, FollowerOptions{})
	waitSeq(t, fl, st.Seq())

	// Live writes while connected, including removals.
	c := g.AddNode(pg.LabelPerson, pg.Properties{"name": "C"})
	g.MustAddEdgeWeighted(c, a, 0.9)
	g.RemoveEdge(e)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, fl, st.Seq())
	sameFacts(t, g, fl.Graph())

	status := fl.Status()
	if !status.Connected || !status.EverSynced {
		t.Fatalf("status = %+v, want connected and synced", status)
	}
	if status.LagRecords != 0 {
		t.Fatalf("lag = %d, want 0", status.LagRecords)
	}
	lst := ld.Status()
	if lst.Connected != 1 || lst.FramesShipped < 6 {
		t.Fatalf("leader status = %+v", lst)
	}
}

// Two followers converge independently; a heartbeat keeps an idle stream's
// staleness bounded.
func TestTwoFollowersConvergeAndStayFresh(t *testing.T) {
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()
	for i := 0; i < 50; i++ {
		g.AddNode(pg.LabelCompany, pg.Properties{"i": int64(i)})
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	f1 := testFollower(t, addr, FollowerOptions{})
	f2 := testFollower(t, addr, FollowerOptions{})
	waitSeq(t, f1, st.Seq())
	waitSeq(t, f2, st.Seq())

	// Let heartbeats refresh the staleness clock on an idle stream.
	time.Sleep(50 * time.Millisecond)
	for i, fl := range []*Follower{f1, f2} {
		stt := fl.Status()
		if !stt.EverSynced || stt.Staleness > time.Second {
			t.Fatalf("follower %d staleness = %v (status %+v)", i+1, stt.Staleness, stt)
		}
	}
	sameFacts(t, g, f1.Graph())
	sameFacts(t, g, f2.Graph())
}

// A follower that reconnects mid-generation resumes from its own sequence
// number: the leader skips frames the follower already holds.
func TestFollowerResumesMidGeneration(t *testing.T) {
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()
	for i := 0; i < 10; i++ {
		g.AddNode(pg.LabelCompany, nil)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fl, err := OpenFollower(dir, FollowerOptions{Leader: addr})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); fl.Run(ctx) }()
	waitSeq(t, fl, 10)
	cancel()
	<-done
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	// More leader writes while the follower is down.
	for i := 0; i < 5; i++ {
		g.AddNode(pg.LabelPerson, nil)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	// Same directory: the follower recovers seq 10 from its local store and
	// must receive exactly the 5 new frames.
	fl2, err := OpenFollower(dir, FollowerOptions{Leader: addr})
	if err != nil {
		t.Fatal(err)
	}
	if got := fl2.Seq(); got != 10 {
		t.Fatalf("recovered follower seq = %d, want 10", got)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() { defer close(done2); fl2.Run(ctx2) }()
	defer func() {
		cancel2()
		<-done2
		fl2.Close()
	}()
	waitSeq(t, fl2, 15)
	if st2 := fl2.Status(); st2.Bootstraps != 0 {
		t.Fatalf("mid-generation resume took %d bootstraps, want 0", st2.Bootstraps)
	}
	sameFacts(t, g, fl2.Graph())
}

// A fresh follower connecting after the leader rotated (truncating the log)
// bootstraps from the shipped snapshot, then applies the tail frames.
func TestLaggedFollowerBootstrapsFromSnapshot(t *testing.T) {
	st, ld, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()
	for i := 0; i < 20; i++ {
		g.AddNode(pg.LabelCompany, pg.Properties{"i": int64(i)})
	}
	if _, err := st.Snapshot(); err != nil { // rotation: wal gen 0 is gone
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		g.AddNode(pg.LabelPerson, nil)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	fl := testFollower(t, addr, FollowerOptions{})
	waitSeq(t, fl, 27)
	sameFacts(t, g, fl.Graph())
	if stt := fl.Status(); stt.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want 1", stt.Bootstraps)
	}
	if lst := ld.Status(); lst.SnapshotsShipped != 1 {
		t.Fatalf("leader shipped %d snapshots, want 1", lst.SnapshotsShipped)
	}
	// The bootstrap state is durable locally: a reopened store starts at
	// the bootstrapped position, not at zero.
	g2 := fl.Graph()
	if got := persist.SeqOfGraph(g2); got != 27 {
		t.Fatalf("follower graph seq = %d, want 27", got)
	}
}

// The leader keeps streaming across its own rotations: the follower sees
// the stream close, reconnects, and picks up the new generation without
// losing or duplicating a record.
func TestStreamingAcrossRotation(t *testing.T) {
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond, Poll: time.Millisecond})
	g := st.Graph()

	fl := testFollower(t, addr, FollowerOptions{
		Backoff: backoffFast(),
	})
	var want int64
	for round := 0; round < 4; round++ {
		for i := 0; i < 25; i++ {
			g.AddNode(pg.LabelCompany, pg.Properties{"round": int64(round), "i": int64(i)})
			want++
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		waitSeq(t, fl, want)
		if _, err := st.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	sameFacts(t, g, fl.Graph())
}

// A diverged follower — holding mutations the leader never durably had —
// is reset to the leader's authoritative state.
func TestDivergedFollowerResets(t *testing.T) {
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "real"})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	// Fabricate a follower that is AHEAD of the leader (as if it applied
	// frames from a previous leader incarnation that lost its tail).
	dir := t.TempDir()
	pre, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		pre.Graph().AddNode(pg.LabelPerson, pg.Properties{"ghost": true})
	}
	if err := pre.Close(); err != nil {
		t.Fatal(err)
	}

	fl, err := OpenFollower(dir, FollowerOptions{Leader: addr})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Seq() != 5 {
		t.Fatalf("pre-seeded follower seq = %d, want 5", fl.Seq())
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); fl.Run(ctx) }()
	defer func() {
		cancel()
		<-done
		fl.Close()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for fl.Status().Bootstraps == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never reset (status %+v)", fl.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitSeq(t, fl, 1)
	// Ghost state must be gone; only the leader's fact remains.
	fg := fl.Graph()
	if fg.NumNodes() != 1 || fg.Node(0) == nil || fg.Node(0).Props["name"] != "real" {
		t.Fatalf("follower graph after reset: %d nodes", fg.NumNodes())
	}
}

// OnGraphSwap fires under the apply lock when a bootstrap replaces the
// graph, and the new pointer matches Graph().
func TestOnGraphSwap(t *testing.T) {
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()
	for i := 0; i < 10; i++ {
		g.AddNode(pg.LabelCompany, nil)
	}
	if _, err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var swapped *pg.Graph
	fl := testFollower(t, addr, FollowerOptions{
		OnGraphSwap: func(ng *pg.Graph) {
			mu.Lock()
			swapped = ng
			mu.Unlock()
		},
	})
	// Seq reaches 10 inside the same critical section that fires the swap
	// callback, but a hair earlier — poll for the callback itself.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		got := swapped
		mu.Unlock()
		if got != nil {
			if got != fl.Graph() {
				t.Fatalf("OnGraphSwap pointer %p != Graph() %p", got, fl.Graph())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("OnGraphSwap never fired (status %+v)", fl.Status())
		}
		time.Sleep(time.Millisecond)
	}
	waitSeq(t, fl, 10)
}

func newTestCtx() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// backoffFast is a millisecond-scale reconnect policy so failure tests
// don't wait out production delays.
func backoffFast() backoff.Policy {
	return backoff.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond, Jitter: 0.5}
}

// Weight edits and node removals ship as ordinary WAL frames: a follower
// tailing a leader through them converges on the identical graph, and the
// OnMutation observer sees every applied mutation in order with the new
// kinds resolved.
func TestFollowerReplicatesWeightEditAndNodeRemoval(t *testing.T) {
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 20 * time.Millisecond})
	g := st.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	c := g.AddNode(pg.LabelCompany, pg.Properties{"name": "C"})
	ab := g.MustAddEdgeWeighted(a, b, 0.6)
	g.MustAddEdgeWeighted(b, c, 0.8)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var seen []pg.Mutation
	fl, err := OpenFollower(t.TempDir(), FollowerOptions{Leader: addr})
	if err != nil {
		t.Fatal(err)
	}
	fl.OnMutation(func(m pg.Mutation) {
		mu.Lock()
		seen = append(seen, m)
		mu.Unlock()
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		fl.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		fl.Close()
	})
	waitSeq(t, fl, st.Seq())

	// Live weight edit and node removal while the follower tails.
	if err := g.SetEdgeWeight(ab, 0.15); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveNode(c) { // also removes the b→c edge
		t.Fatal("RemoveNode(c) = false")
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, fl, st.Seq())
	sameFacts(t, g, fl.Graph())

	fg := fl.Graph()
	if w, _ := fg.Edge(ab).Weight(); w != 0.15 {
		t.Fatalf("follower weight = %v, want 0.15", w)
	}
	if fg.Node(c) != nil {
		t.Fatal("follower still has removed node")
	}
	if got, want := persist.SeqOfGraph(fg), st.Seq(); got != want {
		t.Fatalf("follower SeqOfGraph = %d, leader seq %d", got, want)
	}

	// The observer saw the post-bootstrap stream: the weight edit (with the
	// new weight resolved), the incident-edge removal, then the bare node
	// removal — in apply order. The store seq advances inside the apply
	// before the observer callback fires, so waitSeq can return a beat
	// before the final mutation is recorded — wait for it explicitly.
	waitFor(t, 5*time.Second, "observer to record the node removal", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) >= 3 && seen[len(seen)-1].Kind == pg.MutRemoveNode
	})
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 3 {
		t.Fatalf("observer saw %d mutations, want >= 3", len(seen))
	}
	tail := seen[len(seen)-3:]
	if tail[0].Kind != pg.MutSetEdgeWeight || tail[0].Edge == nil || tail[0].Edge.ID != ab {
		t.Fatalf("mutation -3 = %+v, want weight edit of %d", tail[0], ab)
	}
	if w, _ := tail[0].Edge.Weight(); w != 0.15 {
		t.Fatalf("observed weight = %v, want 0.15", w)
	}
	if tail[1].Kind != pg.MutRemoveEdge || tail[1].Edge == nil {
		t.Fatalf("mutation -2 = %+v, want incident edge removal", tail[1])
	}
	if tail[2].Kind != pg.MutRemoveNode || tail[2].Node == nil || tail[2].Node.ID != c {
		t.Fatalf("mutation -1 = %+v, want removal of node %d", tail[2], c)
	}
}
