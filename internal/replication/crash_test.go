package replication

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"vadalink/internal/persist"
	"vadalink/internal/pg"
)

// The replication crash harness: a leader child and two follower children —
// separate processes, SIGKILLed in an interleaved pattern for twenty cycles
// while the leader keeps acknowledging facts. The durability and
// convergence contract under test:
//
//   - a fact acknowledged by ANY leader life (acked only after Store.Sync)
//     must exist in the final leader state — leader kill -9 loses nothing
//     acknowledged;
//   - both followers, each having been kill -9'd mid-apply multiple times
//     and having watched the leader die under them, must converge to the
//     leader's exact graph from their own recovered positions.
//
// The leader's address changes on every restart (ephemeral port), published
// through an atomically-renamed addr file; followers re-resolve it on every
// reconnect. That makes leader restart indistinguishable from a long
// network partition, which is the point.

const (
	replCrashRoleEnv = "REPL_CRASH_ROLE" // "leader" or "follower"
	replCrashDirEnv  = "REPL_CRASH_DIR"  // this process's data dir
	replCrashAckEnv  = "REPL_CRASH_ACK"  // leader only: ack file
	replCrashAddrEnv = "REPL_CRASH_ADDR" // addr file (leader writes, follower reads)

	replExitOpenFailed = 2
	replExitFactLost   = 3
	replExitInternal   = 4
)

// crashChild is one managed child process.
type crashChild struct {
	name string
	cmd  *exec.Cmd
	out  *bytes.Buffer
	done chan struct{} // closed once the child is reaped; kill is idempotent
}

func startCrashChild(t *testing.T, name string, env []string) *crashChild {
	t.Helper()
	return startCrashChildCmd(t, name, "^TestReplCrashChild$", env)
}

// startCrashChildCmd re-execs the test binary as one child of a crash
// harness, constrained to the given -test.run pattern.
func startCrashChildCmd(t *testing.T, name, runPattern string, env []string) *crashChild {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run="+runPattern, "-test.v")
	cmd.Env = append(os.Environ(), env...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s child: %v", name, err)
	}
	c := &crashChild{name: name, cmd: cmd, out: &out, done: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(c.done)
	}()
	return c
}

// kill SIGKILLs the child and reaps it. Safe to call more than once.
func (c *crashChild) kill() {
	_ = c.cmd.Process.Kill()
	<-c.done
}

// checkAlive fails the test if the child exited on its own — a child only
// self-exits when it detected a contract violation (or plumbing broke).
func (c *crashChild) checkAlive(t *testing.T) {
	t.Helper()
	select {
	case <-c.done:
		t.Fatalf("%s child exited on its own (code %d):\n%s",
			c.name, c.cmd.ProcessState.ExitCode(), c.out.String())
	default:
	}
}

func TestReplicationCrashLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("replication crash harness skipped in -short")
	}
	base := t.TempDir()
	leaderDir := filepath.Join(base, "leader")
	f1Dir := filepath.Join(base, "f1")
	f2Dir := filepath.Join(base, "f2")
	ackPath := filepath.Join(base, "acked.txt")
	addrPath := filepath.Join(base, "leader.addr")

	leaderEnv := []string{
		replCrashRoleEnv + "=leader",
		replCrashDirEnv + "=" + leaderDir,
		replCrashAckEnv + "=" + ackPath,
		replCrashAddrEnv + "=" + addrPath,
	}
	followerEnv := func(dir string) []string {
		return []string{
			replCrashRoleEnv + "=follower",
			replCrashDirEnv + "=" + dir,
			replCrashAddrEnv + "=" + addrPath,
		}
	}

	children := map[string]*crashChild{
		"leader": startCrashChild(t, "leader", leaderEnv),
		"f1":     startCrashChild(t, "f1", followerEnv(f1Dir)),
		"f2":     startCrashChild(t, "f2", followerEnv(f2Dir)),
	}
	restartEnv := map[string][]string{
		"leader": leaderEnv, "f1": followerEnv(f1Dir), "f2": followerEnv(f2Dir),
	}
	defer func() {
		for _, c := range children {
			c.kill()
		}
	}()

	// Interleave leader and follower kills: every third cycle the leader
	// dies mid-ack; the other cycles a follower dies mid-apply. Windows
	// vary so deaths land during appends, rotations, bootstraps and
	// reconnects alike.
	const cycles = 20
	victims := []string{"leader", "f1", "f2"}
	for i := 0; i < cycles; i++ {
		time.Sleep(time.Duration(30+i*17%90) * time.Millisecond)
		for _, c := range children {
			c.checkAlive(t)
		}
		name := victims[i%3]
		children[name].kill()
		children[name] = startCrashChild(t, name, restartEnv[name])
	}
	time.Sleep(100 * time.Millisecond)
	for _, c := range children {
		c.checkAlive(t)
		c.kill()
	}

	// Phase 1: the leader's durable state holds every acknowledged fact.
	acked := readCrashAcks(ackPath)
	if len(acked) == 0 {
		t.Fatal("harness never acknowledged a fact; the loop tested nothing")
	}
	st, err := persist.Open(leaderDir, persist.Options{})
	if err != nil {
		t.Fatalf("final leader recovery failed after %d kills: %v", cycles, err)
	}
	defer st.Close()
	g := st.Graph()
	checkAckedFacts(t, "leader", g, acked)

	// Phase 2: serve the final leader state in-process and let both
	// followers — from their battle-scarred local stores — converge to it.
	ld := NewLeader(st, LeaderOptions{Heartbeat: 10 * time.Millisecond, Poll: time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); ld.Serve(ctx, ln) }()
	defer func() { cancel(); <-serveDone }()

	want := st.Seq()
	for _, fd := range []struct {
		name string
		dir  string
	}{{"f1", f1Dir}, {"f2", f2Dir}} {
		fl, err := OpenFollower(fd.dir, FollowerOptions{
			Leader: ln.Addr().String(), Backoff: backoffFast(),
		})
		if err != nil {
			t.Fatalf("%s: recovery of crashed follower store failed: %v", fd.name, err)
		}
		fctx, fcancel := context.WithCancel(ctx)
		fdone := make(chan struct{})
		go func() { defer close(fdone); fl.Run(fctx) }()
		waitSeq(t, fl, want)
		sameFacts(t, g, fl.Graph())
		checkAckedFacts(t, fd.name, fl.Graph(), acked)
		stt := fl.Status()
		fcancel()
		<-fdone
		fl.Close()
		t.Logf("%s converged at seq %d (reconnect sessions and bootstraps across lives not tracked; final-life frames applied: %d, bad frames: %d)",
			fd.name, want, stt.FramesApplied, stt.BadFrames)
	}
	t.Logf("survived %d interleaved kills: %d facts acked, leader at seq %d, both followers converged",
		cycles, len(acked), want)
}

// checkAckedFacts asserts fact N (node N-1 carrying props["seq"]=N) exists
// in g for every acknowledged N.
func checkAckedFacts(t *testing.T, who string, g *pg.Graph, acked []int64) {
	t.Helper()
	for _, seq := range acked {
		n := g.Node(pg.NodeID(seq - 1))
		if n == nil || n.Props["seq"] != seq {
			t.Fatalf("%s: acknowledged fact %d lost (node %+v)", who, seq, n)
		}
	}
}

// TestReplCrashChild is the re-executed body for both roles. Under normal
// `go test` it skips.
func TestReplCrashChild(t *testing.T) {
	role := os.Getenv(replCrashRoleEnv)
	if role == "" {
		t.Skip("crash-harness child; run via TestReplicationCrashLoop")
	}
	die := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "repl crash child (%s): "+format+"\n", append([]any{role}, args...)...)
		os.Exit(code)
	}
	dir := os.Getenv(replCrashDirEnv)
	addrPath := os.Getenv(replCrashAddrEnv)
	switch role {
	case "leader":
		runCrashLeader(dir, addrPath, os.Getenv(replCrashAckEnv), die)
	case "follower":
		runCrashFollower(dir, addrPath, die)
	default:
		die(replExitInternal, "unknown role %q", role)
	}
}

func runCrashLeader(dir, addrPath, ackPath string, die func(int, string, ...any)) {
	acked := readCrashAcks(ackPath)
	st, err := persist.Open(dir, persist.Options{SyncEvery: 2 * time.Millisecond})
	if err != nil {
		die(replExitOpenFailed, "recovery refused: %v", err)
	}
	g := st.Graph()
	for _, seq := range acked {
		n := g.Node(pg.NodeID(seq - 1))
		if n == nil || n.Props["seq"] != seq {
			die(replExitFactLost, "acked fact %d missing after recovery (node %+v)", seq, n)
		}
	}

	ld := NewLeader(st, LeaderOptions{Heartbeat: 20 * time.Millisecond, Poll: time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die(replExitInternal, "listen: %v", err)
	}
	go ld.Serve(context.Background(), ln)
	// Publish the new address atomically: followers must never read a
	// half-written line.
	tmp := addrPath + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		die(replExitInternal, "writing addr: %v", err)
	}
	if err := os.Rename(tmp, addrPath); err != nil {
		die(replExitInternal, "publishing addr: %v", err)
	}

	ackF, err := os.OpenFile(ackPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		die(replExitInternal, "opening ack file: %v", err)
	}
	// Append, sync, acknowledge — forever, until the parent kills us. Same
	// fact scheme as the persist harness: fact N is node N-1 carrying its
	// number, with edge churn and periodic rotations (which also force
	// followers through the snapshot re-bootstrap path when they lag a
	// whole generation behind).
	seq := int64(g.NumNodes())
	for {
		seq++
		id := g.AddNode(pg.LabelCompany, pg.Properties{"seq": seq})
		if seq%3 == 0 && id > 0 {
			e := g.MustAddEdgeWeighted(id-1, id, 0.5)
			if seq%9 == 0 {
				g.RemoveEdge(e)
			}
		}
		if err := st.Sync(); err != nil {
			die(replExitInternal, "sync: %v", err)
		}
		if _, err := fmt.Fprintf(ackF, "%d\n", seq); err != nil {
			die(replExitInternal, "ack write: %v", err)
		}
		if seq%101 == 0 {
			if _, err := st.Snapshot(); err != nil {
				die(replExitInternal, "snapshot: %v", err)
			}
		}
	}
}

func runCrashFollower(dir, addrPath string, die func(int, string, ...any)) {
	fl, err := OpenFollower(dir, FollowerOptions{
		LeaderFunc: func() (string, error) {
			b, err := os.ReadFile(addrPath)
			if err != nil || len(b) == 0 {
				return "", fmt.Errorf("leader address not published yet")
			}
			return string(bytes.TrimSpace(b)), nil
		},
		SyncEvery: 2 * time.Millisecond,
		Backoff:   backoffFast(),
	})
	if err != nil {
		die(replExitOpenFailed, "follower recovery refused: %v", err)
	}
	// Tail until killed. Any session error is a reconnect, never an exit.
	fl.Run(context.Background())
}

// readCrashAcks parses the ack file (one acknowledged fact number per
// line); a torn final line means the ack never completed and is ignored.
func readCrashAcks(path string) []int64 {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var seqs []int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		n, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	return seqs
}
