package replication

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vadalink/internal/faultinject"
	"vadalink/internal/pg"
)

// Each test here injects one fault from the failure matrix at a named site
// and asserts the system degrades the way the design says it must: drop the
// connection, reconnect from durable state, converge. Hooks are global, so
// these tests do not run in parallel.

var errInjected = errors.New("injected fault")

// oneShot returns an error hook that fires exactly once.
func oneShot() func() error {
	var fired atomic.Bool
	return func() error {
		if fired.CompareAndSwap(false, true) {
			return errInjected
		}
		return nil
	}
}

// A stream cut mid-message: the leader writes half a frame message and
// drops the connection. The follower must treat the torn bytes as a
// disconnect, reconnect, and receive the frame again — exactly once in the
// graph.
func TestStreamCutMidFrameReconnects(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	// Heartbeat off (1h) so the next message after convergence is
	// deterministically the frame the fault will cut.
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: time.Hour})
	g := st.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "before"})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	fl := testFollower(t, addr, FollowerOptions{Backoff: backoffFast()})
	waitSeq(t, fl, 1)

	faultinject.SetErr(faultinject.SiteReplSend, oneShot())
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "cut"})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, fl, 2)
	sameFacts(t, g, fl.Graph())
	if stt := fl.Status(); stt.Reconnects == 0 {
		t.Fatalf("follower converged without reconnecting (status %+v)", stt)
	}
}

// A frame corrupted on the wire: the leader's disk bytes are fine but one
// payload byte flips in transit. The follower's CRC re-check must reject
// it, drop the connection, and fetch a clean copy on reconnect.
func TestCorruptFrameOnWireRejected(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: time.Hour})
	g := st.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "before"})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	fl := testFollower(t, addr, FollowerOptions{Backoff: backoffFast()})
	waitSeq(t, fl, 1)

	faultinject.SetErr(faultinject.SiteReplFrame, oneShot())
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "flipped"})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, fl, 2)
	sameFacts(t, g, fl.Graph())
	stt := fl.Status()
	if stt.BadFrames != 1 {
		t.Fatalf("badFrames = %d, want 1 (status %+v)", stt.BadFrames, stt)
	}
	if stt.Reconnects == 0 {
		t.Fatal("follower accepted a corrupt frame without reconnecting")
	}
}

// An unreachable leader: every dial fails until the fault clears. The
// reconnect delays must climb the capped doubling ladder (with jitter, so
// each is within [ceil/2, ceil]) and the follower must converge once the
// leader is back.
func TestReconnectBackoffLadder(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()
	g.AddNode(pg.LabelCompany, nil)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	const failures = 6
	var mu sync.Mutex
	var delays []time.Duration
	var attempts []int
	release := make(chan struct{})
	var fails atomic.Int64
	faultinject.SetErr(faultinject.SiteReplDial, func() error {
		if fails.Add(1) <= failures {
			return errInjected
		}
		return nil
	})

	fl := testFollower(t, addr, FollowerOptions{
		Backoff: backoffFast(), // Base 1ms, Max 10ms, Jitter 0.5
		OnBackoff: func(attempt int, d time.Duration) {
			mu.Lock()
			if len(delays) < failures {
				delays = append(delays, d)
				attempts = append(attempts, attempt)
				if len(delays) == failures {
					close(release)
				}
			}
			mu.Unlock()
		},
	})
	select {
	case <-release:
	case <-time.After(10 * time.Second):
		t.Fatal("backoff hook never saw enough failures")
	}
	waitSeq(t, fl, 1)
	sameFacts(t, g, fl.Graph())

	mu.Lock()
	defer mu.Unlock()
	// Ladder ceilings for Base=1ms, Max=10ms: 1, 2, 4, 8, 10, 10.
	ceil := []time.Duration{1, 2, 4, 8, 10, 10}
	for i, d := range delays {
		c := ceil[i] * time.Millisecond
		if d < c/2 || d > c {
			t.Fatalf("delay %d = %v, want within [%v, %v] (all: %v)", i, d, c/2, c, delays)
		}
		if attempts[i] != i+1 {
			t.Fatalf("attempt numbering %v, want consecutive from 1", attempts)
		}
	}
}

// A leader that refuses connections at accept time: the follower sees the
// socket vanish before the hello and must keep retrying until accepts
// succeed again.
func TestAcceptRefusedRetries(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	st, ld, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()
	g.AddNode(pg.LabelCompany, nil)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	const refusals = 3
	var n atomic.Int64
	faultinject.SetErr(faultinject.SiteReplAccept, func() error {
		if n.Add(1) <= refusals {
			return errInjected
		}
		return nil
	})
	fl := testFollower(t, addr, FollowerOptions{Backoff: backoffFast()})
	waitSeq(t, fl, 1)
	if got := n.Load(); got <= refusals {
		t.Fatalf("follower converged after %d accept attempts, fault wanted > %d", got, refusals)
	}
	if ld.Status().Accepted == 0 {
		t.Fatal("leader never counted an accepted follower")
	}
}

// A follower that was down long enough for the leader to truncate the log
// past its position must re-bootstrap from a snapshot instead of waiting
// for frames that no longer exist.
func TestRunningFollowerLagsPastTruncation(t *testing.T) {
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()
	for i := 0; i < 5; i++ {
		g.AddNode(pg.LabelCompany, nil)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	runFollower := func() (*Follower, func()) {
		fl, err := OpenFollower(dir, FollowerOptions{Leader: addr, Backoff: backoffFast()})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := newTestCtx()
		done := make(chan struct{})
		go func() { defer close(done); fl.Run(ctx) }()
		return fl, func() {
			cancel()
			<-done
			fl.Close()
		}
	}

	fl, stop := runFollower()
	waitSeq(t, fl, 5)
	stop() // follower goes offline at seq 5

	// Two rotations while it is away: the frames for seqs 6..N live only in
	// generations whose WALs have been deleted.
	for r := 0; r < 2; r++ {
		for i := 0; i < 10; i++ {
			g.AddNode(pg.LabelPerson, pg.Properties{"r": int64(r)})
		}
		if _, err := st.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "tail"})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	fl2, stop2 := runFollower()
	defer stop2()
	if fl2.Seq() != 5 {
		t.Fatalf("recovered follower seq = %d, want 5", fl2.Seq())
	}
	waitSeq(t, fl2, st.Seq())
	sameFacts(t, g, fl2.Graph())
	if stt := fl2.Status(); stt.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want exactly 1 snapshot re-bootstrap (status %+v)", stt.Bootstraps, stt)
	}
}

// A slow follower applying frames while readers hammer the graph through
// the shared RWMutex. Run under -race this is the proof that SetLock makes
// "serve reads while replicating" safe; the injected apply delay widens the
// race window.
func TestConcurrentReadsWhileApplying(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 10 * time.Millisecond})
	g := st.Graph()

	var rw sync.RWMutex
	fl, err := OpenFollower(t.TempDir(), FollowerOptions{Leader: addr, Backoff: backoffFast()})
	if err != nil {
		t.Fatal(err)
	}
	fl.SetLock(&rw)
	ctx, cancel := newTestCtx()
	done := make(chan struct{})
	go func() { defer close(done); fl.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-done
		fl.Close()
	})

	faultinject.Set(faultinject.SiteReplApply, func() { time.Sleep(50 * time.Microsecond) })

	// Readers: walk whatever graph the follower currently serves, under the
	// read lock, re-fetching the pointer each pass (it changes on
	// bootstrap). Each pass yields so the applier is contended, not starved.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	var reads atomic.Int64
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				rw.RLock()
				fg := fl.Graph()
				total := 0
				for _, id := range fg.Nodes() {
					total += len(fg.Out(id))
				}
				_ = total
				rw.RUnlock()
				reads.Add(1)
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}

	// Writer: churn on the leader while the readers run.
	for i := 0; i < 200; i++ {
		id := g.AddNode(pg.LabelCompany, pg.Properties{"i": int64(i)})
		if i%3 == 0 && id > 0 {
			e := g.MustAddEdgeWeighted(id-1, id, 0.5)
			if i%9 == 0 {
				g.RemoveEdge(e)
			}
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, fl, st.Seq())
	close(stopReaders)
	readers.Wait()
	sameFacts(t, g, fl.Graph())
	if reads.Load() == 0 {
		t.Fatal("readers never completed a pass; the test raced nothing")
	}
}

// A follower that falls behind reports lag; catching up restores freshness.
func TestLagIsVisibleAndRecovers(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	st, _, addr := testLeader(t, LeaderOptions{Heartbeat: 5 * time.Millisecond})
	g := st.Graph()
	for i := 0; i < 50; i++ {
		g.AddNode(pg.LabelCompany, nil)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	// Park the very first apply on a gate: the hello tells the follower the
	// leader is at 50 while it has applied nothing, so the full lag must be
	// visible in Status before the gate opens.
	gate := make(chan struct{})
	var gateOnce sync.Once
	faultinject.Set(faultinject.SiteReplApply, func() {
		gateOnce.Do(func() { <-gate })
	})

	fl := testFollower(t, addr, FollowerOptions{Backoff: backoffFast()})
	deadline := time.Now().Add(10 * time.Second)
	for fl.Status().LagRecords < 50 {
		if time.Now().After(deadline) {
			t.Fatalf("lag never surfaced (status %+v)", fl.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if fl.Status().EverSynced {
		t.Fatal("lagging bootstrap counted as synced")
	}
	close(gate)
	waitSeq(t, fl, st.Seq())
	deadline = time.Now().Add(10 * time.Second)
	for {
		stt := fl.Status()
		if stt.LagRecords == 0 && stt.EverSynced && stt.Staleness < time.Second {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("freshness never recovered (status %+v)", stt)
		}
		time.Sleep(time.Millisecond)
	}
}
