package replication

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vadalink/internal/faultinject"
	"vadalink/internal/persist"
	"vadalink/internal/pg"
)

// testMember is one in-process replica-group member: a Node plus its
// listener and the goroutines running Serve and Run. gmu is the apply lock
// shared between the follower session and test-side graph access.
type testMember struct {
	n      *Node
	dir    string
	ln     net.Listener
	gmu    sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
}

func (m *testMember) addr() string { return m.ln.Addr().String() }

// stop simulates a crash: Serve and Run halt, the listener closes, but the
// on-disk state stays (the member can be restarted from the same dir).
func (m *testMember) stop() {
	m.cancel()
	<-m.done
	m.n.Close()
}

// startMember opens a member in dir listening on a fresh port. peersFn
// yields the full group roster (self included — Node filters it out).
func startMember(t *testing.T, dir string, lease time.Duration, peersFn func() []string) *testMember {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	n, err := OpenNode(dir, NodeOptions{
		Self:      ln.Addr().String(),
		API:       "api-" + ln.Addr().String(),
		PeersFunc: peersFn,
		Lease:     lease,
		SyncEvery: time.Millisecond,
		AckEvery:  time.Millisecond,
	})
	if err != nil {
		ln.Close()
		t.Fatalf("OpenNode: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &testMember{n: n, dir: dir, ln: ln, cancel: cancel, done: make(chan struct{})}
	n.Follower().SetLock(&m.gmu)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = n.Serve(ctx, ln) }()
	go func() { defer wg.Done(); _ = n.Run(ctx) }()
	go func() { wg.Wait(); close(m.done) }()
	t.Cleanup(func() {
		cancel()
		<-m.done
		n.Close()
	})
	return m
}

// startGroup brings up k members that all know each other's addresses.
func startGroup(t *testing.T, k int, lease time.Duration) []*testMember {
	t.Helper()
	var (
		mu    sync.Mutex
		addrs []string
	)
	peersFn := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), addrs...)
	}
	members := make([]*testMember, 0, k)
	for i := 0; i < k; i++ {
		m := startMember(t, t.TempDir(), lease, peersFn)
		mu.Lock()
		addrs = append(addrs, m.addr())
		mu.Unlock()
		members = append(members, m)
	}
	return members
}

// waitLeader blocks until exactly one live member leads, and returns it.
func waitLeader(t *testing.T, members []*testMember, within time.Duration) *testMember {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		var leaders []*testMember
		for _, m := range members {
			select {
			case <-m.done:
				continue
			default:
			}
			if m.n.IsLeader() {
				leaders = append(leaders, m)
			}
		}
		if len(leaders) == 1 {
			return leaders[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no single leader within %v", within)
	return nil
}

// commitOne appends one company fact on the leader and runs the group
// write barrier, returning the sequence number the ack covers.
func commitOne(t *testing.T, m *testMember, name string) int64 {
	t.Helper()
	m.gmu.Lock()
	m.n.Store().Graph().AddNode(pg.LabelCompany, pg.Properties{"name": name})
	seq := m.n.Store().Seq()
	m.gmu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.n.Commit(ctx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return seq
}

// commitOnGroup commits one fact through whichever member currently leads,
// retrying when a dueling election deposes the leader between discovery and
// the quorum barrier — the same loop a real client runs on a 421. A write
// that raced a deposition lands on the deposed member as a divergent tail,
// which the reset bootstrap truncates when it rejoins the new history.
func commitOnGroup(t *testing.T, members []*testMember, name string) (*testMember, int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		m := waitLeader(t, members, 15*time.Second)
		m.gmu.Lock()
		m.n.Store().Graph().AddNode(pg.LabelCompany, pg.Properties{"name": name})
		seq := m.n.Store().Seq()
		m.gmu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := m.n.Commit(ctx)
		cancel()
		if err == nil {
			return m, seq
		}
		if !errors.Is(err, ErrStaleEpoch) && !errors.Is(err, ErrNotLeader) {
			t.Fatalf("Commit: %v", err)
		}
	}
	t.Fatal("no leader accepted the commit within 30s")
	return nil, 0
}

func TestSingleNodeSelfPromotes(t *testing.T) {
	t.Parallel()
	members := startGroup(t, 1, 200*time.Millisecond)
	leader := waitLeader(t, members, 5*time.Second)
	if got := leader.n.Epoch(); got != 1 {
		t.Fatalf("first promotion should open epoch 1, got %d", got)
	}
	commitOne(t, leader, "solo")
	st := leader.n.Status()
	if st.Role != RoleLeader || st.Promotions != 1 {
		t.Fatalf("status = %+v, want leader with 1 promotion", st)
	}
	if st.LastFailover == nil || st.LastFailover.Cause != "promoted" {
		t.Fatalf("last failover = %+v, want promoted", st.LastFailover)
	}
}

func TestThreeNodeElectionIsDeterministic(t *testing.T) {
	t.Parallel()
	members := startGroup(t, 3, 250*time.Millisecond)
	leader := waitLeader(t, members, 10*time.Second)
	// All members start at seq 0, so the tiebreak — lowest address — must
	// pick the winner.
	lowest := members[0].addr()
	for _, m := range members[1:] {
		if m.addr() < lowest {
			lowest = m.addr()
		}
	}
	if leader.addr() != lowest {
		t.Fatalf("leader %s, want lowest address %s", leader.addr(), lowest)
	}
	// Followers learn the leader through the stream handshake.
	waitFor(t, 5*time.Second, "followers learn leader hint", func() bool {
		for _, m := range members {
			if m == leader {
				continue
			}
			if hint, _ := m.n.LeaderHint(); hint != leader.addr() {
				return false
			}
		}
		return true
	})
}

func TestCommitOnFollowerRefused(t *testing.T) {
	t.Parallel()
	members := startGroup(t, 3, 250*time.Millisecond)
	leader := waitLeader(t, members, 10*time.Second)
	for _, m := range members {
		if m == leader {
			continue
		}
		if err := m.n.Commit(context.Background()); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("follower Commit = %v, want ErrNotLeader", err)
		}
	}
}

func TestFailoverPreservesAckedFacts(t *testing.T) {
	t.Parallel()
	members := startGroup(t, 3, 250*time.Millisecond)
	var (
		leader   *testMember
		ackedSeq int64
	)
	for i := 0; i < 5; i++ {
		leader, ackedSeq = commitOnGroup(t, members, "acked")
	}
	oldEpoch := leader.n.Epoch()

	// Crash the leader. The two survivors still form a majority of three,
	// so one of them must fence a higher epoch and take over.
	leader.stop()
	var survivors []*testMember
	for _, m := range members {
		if m != leader {
			survivors = append(survivors, m)
		}
	}
	next := waitLeader(t, survivors, 15*time.Second)
	if next.n.Epoch() <= oldEpoch {
		t.Fatalf("new leader epoch %d, want > %d", next.n.Epoch(), oldEpoch)
	}
	// Every acknowledged fact survived the failover.
	if got := next.n.Store().Seq(); got < ackedSeq {
		t.Fatalf("new leader seq %d lost acked facts (acked through %d)", got, ackedSeq)
	}
	// And the group accepts writes again.
	commitOnGroup(t, survivors, "after-failover")
}

func TestLeaseLossStepsLeaderDown(t *testing.T) {
	members := startGroup(t, 3, 250*time.Millisecond)
	leader := waitLeader(t, members, 10*time.Second)
	faultinject.SetErr(faultinject.SiteReplLease, func() error {
		return errors.New("injected lease loss")
	})
	defer faultinject.Clear(faultinject.SiteReplLease)
	waitFor(t, 10*time.Second, "leader steps down", func() bool {
		st := leader.n.Status()
		return st.Role == RoleFollower && st.Depositions >= 1 &&
			st.LastFailover != nil && st.LastFailover.Cause == "lease_expired"
	})
	faultinject.Clear(faultinject.SiteReplLease)
	// With the fault gone the group heals: some member leads again.
	waitLeader(t, members, 15*time.Second)
}

func TestHeartbeatLossTriggersFailover(t *testing.T) {
	members := startGroup(t, 3, 250*time.Millisecond)
	leader := waitLeader(t, members, 10*time.Second)
	oldEpoch := leader.n.Epoch()
	// Mute every heartbeat: streams stay connected but carry no liveness,
	// so follower leases expire under a live leader.
	faultinject.SetErr(faultinject.SiteReplHeartbeat, func() error {
		return errors.New("injected heartbeat loss")
	})
	defer faultinject.Clear(faultinject.SiteReplHeartbeat)
	waitFor(t, 15*time.Second, "a higher epoch is fenced", func() bool {
		for _, m := range members {
			if m.n.Epoch() > oldEpoch {
				return true
			}
		}
		return false
	})
	faultinject.Clear(faultinject.SiteReplHeartbeat)
	// Wait for a leader of the NEW epoch specifically: sampling for "any
	// sole leader" races the moment between a fence being granted and the
	// candidate finishing its promotion, when the deposed leader still
	// looks like the only one.
	waitFor(t, 15*time.Second, "a new leader at a higher epoch", func() bool {
		for _, m := range members {
			if m.n.IsLeader() && m.n.Epoch() > oldEpoch {
				return true
			}
		}
		return false
	})
	// The deposed leader must not keep its authority.
	waitFor(t, 10*time.Second, "old leader deposed", func() bool {
		return !leader.n.IsLeader() || leader.n.Epoch() > oldEpoch
	})
}

// TestPromotionLosesToCompetingFence covers the promotion race: a competing
// fence lands between a candidate deciding to promote and it recording the
// new epoch locally. The candidate must abandon the election, not lead
// under an epoch it no longer holds.
func TestPromotionLosesToCompetingFence(t *testing.T) {
	dir := t.TempDir()
	n, err := OpenNode(dir, NodeOptions{Self: "127.0.0.1:1", Lease: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("OpenNode: %v", err)
	}
	defer n.Close()
	// Single-member group: elect needs no peers, so the race window is the
	// only thing between deciding and promoting.
	faultinject.Set(faultinject.SiteReplPromote, func() {
		_ = n.Store().RecordEpoch(persist.EpochMark{Epoch: 10, StartSeq: n.Store().Seq()})
	})
	defer faultinject.Clear(faultinject.SiteReplPromote)
	if n.elect() {
		t.Fatal("elect() won despite a competing fence landing mid-promotion")
	}
	faultinject.Clear(faultinject.SiteReplPromote)
	if !n.elect() {
		t.Fatal("elect() failed with no competition in a single-member group")
	}
	if got := n.Store().Epoch(); got != 11 {
		t.Fatalf("epoch after re-election = %d, want 11 (fence above the competing 10)", got)
	}
}

// TestFenceGrantRules drives answerProbe directly through a pipe and checks
// every clause of the grant condition.
func TestFenceGrantRules(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	n, err := OpenNode(dir, NodeOptions{Self: "127.0.0.1:1", Lease: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("OpenNode: %v", err)
	}
	defer n.Close()
	n.Store().Graph().AddNode(pg.LabelCompany, pg.Properties{"name": "x"})
	seq := n.Store().Seq()

	probe := func(req request) PeerStatus {
		t.Helper()
		client, server := net.Pipe()
		defer client.Close()
		done := make(chan error, 1)
		go func() {
			defer server.Close()
			done <- n.answerProbe(server, req)
		}()
		typ, payload, err := readMsg(client)
		if err != nil {
			t.Fatalf("readMsg: %v", err)
		}
		if typ != msgStatus {
			t.Fatalf("got message type %q, want status", typ)
		}
		var st PeerStatus
		if err := decodeJSON(payload, &st); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("answerProbe: %v", err)
		}
		return st
	}

	// A fence that would orphan local facts (FenceStart < seq) is refused.
	if st := probe(request{Fence: 5, FenceStart: seq - 1, ID: "c"}); st.Granted {
		t.Fatal("granted a fence that orphans local facts")
	}
	// A non-advancing fence is refused.
	if err := n.Store().RecordEpoch(persist.EpochMark{Epoch: 7, StartSeq: seq}); err != nil {
		t.Fatal(err)
	}
	if st := probe(request{Fence: 7, FenceStart: seq, ID: "c"}); st.Granted {
		t.Fatal("granted a non-advancing fence")
	}
	// A valid fence is granted, durably.
	st := probe(request{Fence: 9, FenceStart: seq, ID: "cand:1", API: "cand-api"})
	if !st.Granted || st.Epoch != 9 {
		t.Fatalf("valid fence: %+v, want granted at epoch 9", st)
	}
	if got := n.Store().Epoch(); got != 9 {
		t.Fatalf("store epoch %d, want 9", got)
	}
	if hint, api := n.fl.LeaderHint(); hint != "cand:1" || api != "cand-api" {
		t.Fatalf("leader hint %q/%q, want candidate", hint, api)
	}
	// Fresh leader contact blocks further grants.
	n.fl.touchContact()
	if st := probe(request{Fence: 12, FenceStart: seq, ID: "c"}); st.Granted {
		t.Fatal("granted a fence while still hearing a live leader")
	}
}

// TestRejoinedStaleLeaderIsReset: a member that wrote past the fence point
// under the old epoch (an unreplicated divergent tail) must be bootstrapped
// from the new history when it rejoins, not merged.
func TestRejoinedStaleLeaderIsReset(t *testing.T) {
	t.Parallel()
	members := startGroup(t, 3, 250*time.Millisecond)
	commitOnGroup(t, members, "base")
	leader, ackedSeq := commitOnGroup(t, members, "base2")

	// Crash the leader, then give its on-disk state a divergent tail: a
	// fact written under the old epoch that was never replicated or acked.
	dir := leader.dir
	leader.stop()
	staleStore, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("reopen stale store: %v", err)
	}
	staleStore.Graph().AddNode(pg.LabelPerson, pg.Properties{"name": "divergent"})
	if err := staleStore.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := staleStore.Close(); err != nil {
		t.Fatal(err)
	}

	var survivors []*testMember
	for _, m := range members {
		if m != leader {
			survivors = append(survivors, m)
		}
	}
	next, _ := commitOnGroup(t, survivors, "new-history")

	// Rejoin the stale member from its tainted dir.
	var (
		mu    sync.Mutex
		addrs []string
	)
	for _, m := range survivors {
		addrs = append(addrs, m.addr())
	}
	peersFn := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), addrs...)
	}
	rejoined := startMember(t, dir, 250*time.Millisecond, peersFn)
	mu.Lock()
	addrs = append(addrs, rejoined.addr())
	mu.Unlock()

	waitFor(t, 20*time.Second, "rejoined member adopts the new history", func() bool {
		rejoined.gmu.Lock()
		defer rejoined.gmu.Unlock()
		st := rejoined.n.Store()
		return st.Epoch() >= next.n.Epoch() && st.Seq() >= ackedSeq &&
			len(st.Graph().NodesWithLabel(pg.LabelPerson)) == 0
	})
}

func waitFor(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestNodeStatusFields sanity-checks the surfaced status shape used by the
// serving tier's metrics.
func TestNodeStatusFields(t *testing.T) {
	t.Parallel()
	members := startGroup(t, 1, 200*time.Millisecond)
	leader := waitLeader(t, members, 5*time.Second)
	st := leader.n.Status()
	if st.Addr == "" || !strings.Contains(st.Addr, ":") {
		t.Fatalf("bad addr %q", st.Addr)
	}
	if st.LeaderAddr != st.Addr {
		t.Fatalf("leader's LeaderAddr %q, want self %q", st.LeaderAddr, st.Addr)
	}
	if !st.LeaseOK || st.LeaseMS < 0 {
		t.Fatalf("leader lease not ok: %+v", st)
	}
}

// grantFence re-evaluates the grant condition atomically against the
// store's live (seq, epoch, lastEpoch): a condition computed from a stale
// snapshot must be refused once the real state has moved past it. This is
// the binding half of the election protocol — without the re-check, a
// frame applied (and acked) between a probe's snapshot and the durable
// mark would let a candidate missing that acked record win the fence.
func TestGrantFenceRecheck(t *testing.T) {
	t.Parallel()
	fl, err := OpenFollower(t.TempDir(), FollowerOptions{Leader: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	g := fl.Store().Graph()
	g.AddNode(pg.LabelCompany, nil)
	g.AddNode(pg.LabelCompany, nil)

	// Stale condition: a candidate fencing at seq 1 when we durably hold 2.
	granted, err := fl.grantFence(persist.EpochMark{Epoch: 1, StartSeq: 1},
		func(seq int64, epoch, lastEpoch uint64) bool { return 1 >= seq })
	if err != nil || granted {
		t.Fatalf("stale fence granted = %v, err = %v; want refused", granted, err)
	}
	if fl.Store().Epoch() != 0 {
		t.Fatalf("refused grant moved epoch to %d", fl.Store().Epoch())
	}

	// A condition consistent with live state is granted and durable.
	granted, err = fl.grantFence(persist.EpochMark{Epoch: 1, StartSeq: 2},
		func(seq int64, epoch, lastEpoch uint64) bool { return 2 >= seq && epoch == 0 })
	if err != nil || !granted {
		t.Fatalf("valid fence granted = %v, err = %v; want granted", granted, err)
	}
	if fl.Store().Epoch() != 1 {
		t.Fatalf("epoch after grant = %d, want 1", fl.Store().Epoch())
	}
}
