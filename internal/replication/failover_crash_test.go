package replication

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vadalink/internal/persist"
	"vadalink/internal/pg"
)

// The failover chaos harness: a 3-member replica group, each member its own
// process running the full Node state machine (Serve + Run + a writer that
// commits facts whenever it holds the lease). For twenty cycles the parent
// SIGKILLs whichever member acknowledged a fact most recently — by
// construction the current leader — and restarts it from its own dir. The
// self-healing contract under test:
//
//   - zero acknowledged-fact loss: every fact acked through Node.Commit by
//     ANY leader life exists, with its exact payload, in the final leader's
//     recovered state;
//   - no dual-epoch acks: no two acknowledged facts claim the same sequence
//     number with different payloads — i.e. no two divergent histories were
//     ever both acknowledged;
//   - bounded write unavailability: after every leader kill the group
//     acknowledges a fresh fact within replFailoverMaxOutage.
//
// Every member publishes its (per-life, ephemeral) replication address
// through an atomically-renamed addr file; PeersFunc re-reads all three on
// every election and dial, so restarts look like address churn — which is
// exactly what a rescheduled replica looks like in production.

const (
	replFailoverIdxEnv  = "REPL_FAILOVER_IDX"  // this member's index (0..2)
	replFailoverBaseEnv = "REPL_FAILOVER_BASE" // shared scratch dir

	// replFailoverMaxOutage bounds how long writes may stay unavailable
	// after a leader kill (the ISSUE's "bounded write unavailability").
	replFailoverMaxOutage = 5 * time.Second

	replFailoverLease = 300 * time.Millisecond

	replFailoverExitOpen     = 2
	replFailoverExitInternal = 4
)

// failoverAck is one parsed ack line: "idx epoch seq nodeID val".
type failoverAck struct {
	idx    int
	epoch  uint64
	seq    int64
	nodeID int64
	val    string
}

func failoverAddrPath(base string, idx int) string {
	return filepath.Join(base, fmt.Sprintf("member%d.addr", idx))
}

func failoverDir(base string, idx int) string {
	return filepath.Join(base, fmt.Sprintf("member%d", idx))
}

func failoverAckPath(base string) string { return filepath.Join(base, "acks.txt") }

func failoverLogPath(base string) string { return filepath.Join(base, "debug.log") }

// dumpFailoverLog prints the members' shared lifecycle log (elections,
// grants, role transitions, resets) when the harness fails — the only way
// to reconstruct a rare interleaving after the fact.
func dumpFailoverLog(t *testing.T, base string) {
	t.Helper()
	b, err := os.ReadFile(failoverLogPath(base))
	if err != nil {
		t.Logf("no member debug log: %v", err)
		return
	}
	t.Logf("member lifecycle log:\n%s", b)
}

func TestReplicationFailoverLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("failover chaos harness skipped in -short")
	}
	base := t.TempDir()
	t.Cleanup(func() {
		if t.Failed() {
			dumpFailoverLog(t, base)
		}
	})
	memberEnv := func(idx int) []string {
		return []string{
			replFailoverIdxEnv + "=" + strconv.Itoa(idx),
			replFailoverBaseEnv + "=" + base,
		}
	}
	start := func(idx int) *crashChild {
		return startCrashChildCmd(t, fmt.Sprintf("member%d", idx),
			"^TestReplFailoverChild$", memberEnv(idx))
	}
	children := make([]*crashChild, 3)
	for i := range children {
		children[i] = start(i)
	}
	defer func() {
		for _, c := range children {
			c.kill()
		}
	}()

	ackPath := failoverAckPath(base)
	// Wait for the group to bootstrap: first election, first acked fact.
	acks := waitMoreAcks(t, ackPath, 0, 30*time.Second, "initial election")

	const cycles = 20
	var worstOutage time.Duration
	for i := 0; i < cycles; i++ {
		for _, c := range children {
			c.checkAlive(t)
		}
		// The most recent acker is the leader. Kill it mid-stride.
		leader := acks[len(acks)-1].idx
		children[leader].kill()
		killed := time.Now()
		children[leader] = start(leader)

		// The survivors form a majority: writes must come back within the
		// outage bound, acknowledged by a *different* member under a fenced
		// epoch (the killed member needs time to restart and rejoin, and
		// can't be re-elected before its WAL recovers — but nothing stops
		// it from winning a later cycle).
		prev := len(acks)
		acks = waitMoreAcks(t, ackPath, prev, replFailoverMaxOutage,
			fmt.Sprintf("cycle %d: writes unavailable after killing member%d", i, leader))
		if outage := time.Since(killed); outage > worstOutage {
			worstOutage = outage
		}
	}
	for _, c := range children {
		c.checkAlive(t)
		c.kill()
	}

	acks = readFailoverAcks(ackPath)
	if len(acks) <= cycles {
		t.Fatalf("only %d acks across %d cycles; the harness tested nothing", len(acks), cycles)
	}

	// No dual-epoch acks: a sequence number acknowledged twice with
	// different payloads means two divergent histories both got acked.
	bySeq := make(map[int64]failoverAck, len(acks))
	epochs := make(map[uint64]bool)
	for _, a := range acks {
		epochs[a.epoch] = true
		if prev, ok := bySeq[a.seq]; ok && (prev.nodeID != a.nodeID || prev.val != a.val) {
			t.Fatalf("dual-epoch ack at seq %d: epoch %d node %d %q vs epoch %d node %d %q",
				a.seq, prev.epoch, prev.nodeID, prev.val, a.epoch, a.nodeID, a.val)
		}
		bySeq[a.seq] = a
	}

	// Zero acked-fact loss: the last acker is the final leader; its
	// recovered store must hold every acknowledged fact with its exact
	// payload, across every epoch of the run.
	last := acks[len(acks)-1]
	st, err := persist.Open(failoverDir(base, last.idx), persist.Options{})
	if err != nil {
		t.Fatalf("final leader (member%d) recovery failed: %v", last.idx, err)
	}
	defer st.Close()
	g := st.Graph()
	for _, a := range acks {
		n := g.Node(pg.NodeID(a.nodeID))
		if n == nil || n.Props["val"] != a.val {
			t.Fatalf("acked fact lost: epoch %d seq %d node %d %q absent from final leader member%d (node %+v)",
				a.epoch, a.seq, a.nodeID, a.val, last.idx, n)
		}
	}
	t.Logf("survived %d leader kills: %d facts acked across %d epochs, final leader member%d at seq %d epoch %d, worst write outage %v",
		cycles, len(acks), len(epochs), last.idx, st.Seq(), st.Epoch(), worstOutage)
}

// waitMoreAcks polls the ack file until it holds more than have complete
// lines, failing the test after the deadline.
func waitMoreAcks(t *testing.T, path string, have int, within time.Duration, what string) []failoverAck {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		acks := readFailoverAcks(path)
		if len(acks) > have {
			return acks
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout (%v): %s", within, what)
	return nil
}

// readFailoverAcks parses the shared ack file. Lines are single O_APPEND
// writes, so each is complete or absent; malformed lines are skipped.
func readFailoverAcks(path string) []failoverAck {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var acks []failoverAck
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 5 {
			continue
		}
		idx, err1 := strconv.Atoi(fields[0])
		epoch, err2 := strconv.ParseUint(fields[1], 10, 64)
		seq, err3 := strconv.ParseInt(fields[2], 10, 64)
		nodeID, err4 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			continue
		}
		acks = append(acks, failoverAck{idx: idx, epoch: epoch, seq: seq, nodeID: nodeID, val: fields[4]})
	}
	return acks
}

// TestReplFailoverChild is the re-executed member body. Under normal
// `go test` it skips.
func TestReplFailoverChild(t *testing.T) {
	idxStr := os.Getenv(replFailoverIdxEnv)
	if idxStr == "" {
		t.Skip("failover-harness child; run via TestReplicationFailoverLoop")
	}
	die := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "failover child %s: "+format+"\n", append([]any{idxStr}, args...)...)
		os.Exit(code)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		die(replFailoverExitInternal, "bad index: %v", err)
	}
	runFailoverMember(idx, os.Getenv(replFailoverBaseEnv), die)
}

func runFailoverMember(idx int, base string, die func(int, string, ...any)) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die(replFailoverExitInternal, "listen: %v", err)
	}
	logF, err := os.OpenFile(failoverLogPath(base), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		die(replFailoverExitInternal, "opening debug log: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(logF, &slog.HandlerOptions{Level: slog.LevelDebug})).
		With("member", idx, "pid", os.Getpid())
	node, err := OpenNode(failoverDir(base, idx), NodeOptions{
		Self:   ln.Addr().String(),
		API:    "api-" + ln.Addr().String(),
		Logger: logger,
		PeersFunc: func() []string {
			addrs := make([]string, 0, 3)
			for i := 0; i < 3; i++ {
				if b, err := os.ReadFile(failoverAddrPath(base, i)); err == nil && len(b) > 0 {
					addrs = append(addrs, string(bytes.TrimSpace(b)))
				}
			}
			return addrs
		},
		Lease:     replFailoverLease,
		SyncEvery: 2 * time.Millisecond,
		AckEvery:  time.Millisecond,
	})
	if err != nil {
		die(replFailoverExitOpen, "recovery refused: %v", err)
	}
	var gmu sync.Mutex
	node.Follower().SetLock(&gmu)
	logger.Info("recovered", "seq", node.Store().Seq(),
		"epoch", node.Store().Epoch(), "lastEpoch", node.Store().LastEpoch())

	// Publish this life's address atomically; peers re-read it per dial.
	tmp := failoverAddrPath(base, idx) + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		die(replFailoverExitInternal, "writing addr: %v", err)
	}
	if err := os.Rename(tmp, failoverAddrPath(base, idx)); err != nil {
		die(replFailoverExitInternal, "publishing addr: %v", err)
	}

	ackF, err := os.OpenFile(failoverAckPath(base), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		die(replFailoverExitInternal, "opening ack file: %v", err)
	}

	ctx := context.Background()
	go node.Serve(ctx, ln)
	go node.Run(ctx)

	// Writer loop: whenever this member holds the lease, append a fact and
	// run the group write barrier. A fact is acknowledged — one atomic line
	// in the shared ack file — if and only if Commit returned nil. Commit
	// errors (deposed mid-write, quorum loss) are NOT acks; the fact either
	// replicates under a later leader or dies as a truncated divergent
	// tail, and the harness accepts both.
	pid := os.Getpid()
	for i := 0; ; i++ {
		if !node.IsLeader() {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		gmu.Lock()
		val := fmt.Sprintf("m%d-p%d-i%d", idx, pid, i)
		id := node.Store().Graph().AddNode(pg.LabelCompany, pg.Properties{"val": val})
		seq := node.Store().Seq()
		epoch := node.Store().Epoch()
		gmu.Unlock()
		cctx, cancel := context.WithTimeout(ctx, 2*replFailoverLease)
		err := node.Commit(cctx)
		cancel()
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if _, err := fmt.Fprintf(ackF, "%d %d %d %d %s\n", idx, epoch, seq, int64(id), val); err != nil {
			die(replFailoverExitInternal, "ack write: %v", err)
		}
	}
}
