package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/backoff"
	"vadalink/internal/faultinject"
	"vadalink/internal/persist"
	"vadalink/internal/pg"
)

// FollowerOptions tunes the tailing side of replication.
type FollowerOptions struct {
	// Leader is the leader's replication address (host:port). Ignored when
	// LeaderFunc is set.
	Leader string
	// LeaderFunc, when set, is called before every dial; it lets a follower
	// track a leader whose address changes across restarts.
	LeaderFunc func() (string, error)
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// ReadTimeout bounds one read on an established stream; a healthy leader
	// heartbeats well inside it, so expiry means the leader is gone without
	// the kernel noticing. Default 10s.
	ReadTimeout time.Duration
	// SyncEvery is the follower's own WAL group-commit interval (see
	// persist.Options).
	SyncEvery time.Duration
	// ID is this node's stable identity across reconnects (its advertised
	// replication address in a replica group). The leader keys durable-ack
	// tracking by it; empty falls back to the connection's remote address.
	ID string
	// API is this node's advertised HTTP API address, carried in the
	// request line so a promoted candidate can hint redirecting clients.
	API string
	// AckEvery rate-limits durable-ack lines while frames are flowing (an
	// ack forces a WAL fsync). Heartbeats and handshakes always ack.
	// Default 2ms.
	AckEvery time.Duration
	// OnLeaderHint, when set, observes leader redirects: a dialed node that
	// answered "not leader" names its best guess of who is. The node layer
	// re-points discovery; the API layer re-points 421 responses.
	OnLeaderHint func(addr, apiAddr string)
	// Backoff paces reconnect attempts. Zero value gets a sane default
	// (50ms base doubling to 2s, half-jittered).
	Backoff backoff.Policy
	// OnBackoff, when set, observes every reconnect delay (attempt number
	// and chosen delay). Test instrumentation.
	OnBackoff func(attempt int, d time.Duration)
	// OnGraphSwap, when set, is called — under the follower's apply lock —
	// whenever a snapshot bootstrap replaces the graph object. Serving
	// layers that cache the *pg.Graph pointer use it to re-point.
	OnGraphSwap func(*pg.Graph)
	// Logger receives connection lifecycle events. Default: discard.
	Logger *slog.Logger
}

// FollowerStatus is a snapshot of a follower's replication state.
type FollowerStatus struct {
	Connected     bool   `json:"connected"`
	Seq           int64  `json:"seq"`
	LeaderSeq     int64  `json:"leaderSeq"`
	LagRecords    int64  `json:"lagRecords"`
	EverSynced    bool   `json:"everSynced"`
	StalenessMS   int64  `json:"stalenessMillis"`
	Reconnects    int64  `json:"reconnects"`
	Bootstraps    int64  `json:"bootstraps"`
	FramesApplied int64  `json:"framesApplied"`
	BadFrames     int64  `json:"badFrames"`
	Epoch         uint64 `json:"epoch,omitempty"`
	// DisconnectedMS is how long the stream has been down (0 while
	// connected). LagRecords and StalenessMS freeze at their last-known
	// values during an outage — this field is the one that keeps growing,
	// so staleness gating cannot be fooled by a frozen lag.
	DisconnectedMS int64  `json:"disconnectedMillis,omitempty"`
	LastError      string `json:"lastError,omitempty"`

	// Staleness is the structured form of StalenessMS (not serialized).
	Staleness time.Duration `json:"-"`
	// Disconnected is the structured form of DisconnectedMS (not
	// serialized).
	Disconnected time.Duration `json:"-"`
}

// Follower tails a leader's WAL stream into a local durable store. Every
// applied frame flows through the same mutation-capture path as a leader
// write, so the follower's own WAL and snapshots make its position —
// persist.SeqOfGraph of whatever graph it recovers — survive kill -9 with
// no separate position file to tear.
type Follower struct {
	store *persist.Store
	opts  FollowerOptions

	// lock serializes frame application against readers. Defaults to a
	// private mutex; a serving layer hands in the write side of its own
	// RWMutex via SetLock so reads exclude half-applied mutations.
	lock sync.Locker

	// seqMu serializes every compound operation on the store's (seq, epoch)
	// pair: frame application (epoch gate + apply), ack construction (sync
	// + read), bootstrap adoption, and fence grants (condition re-check +
	// RecordEpoch). Without it a fence can be granted against a seq that an
	// in-flight apply is about to advance — the follower then acks the new
	// record under the old epoch, the old leader counts the ack as a
	// commit, and the freshly fenced candidate leads without the committed
	// record. Taken outside lock where both are held.
	seqMu sync.Mutex

	connected  atomic.Bool
	leaderSeq  atomic.Int64
	lastFresh  atomic.Int64 // unix nanos of last observed parity; 0 = never
	reconnects atomic.Int64
	bootstraps atomic.Int64
	frames     atomic.Int64
	badFrames  atomic.Int64

	// lastContact is the unix-nano stamp of the last protocol message from
	// a live leader (0 = never). The node layer's lease watchdog compares
	// it against the lease to decide when to run an election.
	lastContact atomic.Int64
	// downSince is the unix-nano stamp of when the stream went down (0 =
	// currently connected). Set at construction: a follower that never
	// connected has been "down" since it existed.
	downSince atomic.Int64

	// leaderHint is the redirect target learned from a NotLeader hello
	// (atomic string; "" = none). Used for the next dial when no
	// LeaderFunc overrides discovery, cleared when dialing it fails.
	leaderHint    atomic.Value
	leaderAPIHint atomic.Value

	errMu   sync.Mutex
	lastErr string

	// swapFns are additional graph-swap observers (see OnSwap), invoked —
	// like FollowerOptions.OnGraphSwap — under the apply lock.
	swapFns []func(*pg.Graph)

	// mutFns are applied-mutation observers (see OnMutation), invoked under
	// the apply lock after each shipped frame lands. An incremental view
	// maintainer tails them to keep derived facts current without
	// re-chasing on read.
	mutFns []func(pg.Mutation)
}

// OpenFollower opens (or recovers) the follower's local store in dir. The
// returned follower serves its recovered graph immediately; Run connects it
// to the leader.
func OpenFollower(dir string, opts FollowerOptions) (*Follower, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 10 * time.Second
	}
	if opts.AckEvery <= 0 {
		opts.AckEvery = 2 * time.Millisecond
	}
	if opts.Backoff == (backoff.Policy{}) {
		opts.Backoff = backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	st, err := persist.Open(dir, persist.Options{SyncEvery: opts.SyncEvery})
	if err != nil {
		return nil, err
	}
	f := &Follower{store: st, opts: opts, lock: &sync.Mutex{}}
	f.downSince.Store(time.Now().UnixNano())
	return f, nil
}

// SetLock replaces the apply lock. Call before Run. Passing the write side
// of the RWMutex that guards reads makes "concurrent reads while applying"
// safe by construction.
func (f *Follower) SetLock(l sync.Locker) { f.lock = l }

// OnSwap registers an additional bootstrap observer, called under the
// apply lock whenever a snapshot bootstrap replaces the graph object.
// Serving layers that cache the *pg.Graph pointer re-point it here. Call
// before Run.
func (f *Follower) OnSwap(fn func(*pg.Graph)) { f.swapFns = append(f.swapFns, fn) }

// OnMutation registers an observer of every mutation a shipped frame applies
// to the follower's graph, called under the apply lock with the same
// pg.Mutation a leader-side hook would have seen. A snapshot bootstrap does
// NOT replay through it — register an OnSwap observer to resynchronize from
// scratch on bootstrap. Call before Run.
func (f *Follower) OnMutation(fn func(pg.Mutation)) { f.mutFns = append(f.mutFns, fn) }

// Graph returns the follower's current graph. After a snapshot bootstrap
// this is a different object — cache the pointer only via OnGraphSwap.
func (f *Follower) Graph() *pg.Graph { return f.store.Graph() }

// Store returns the follower's local durable store.
func (f *Follower) Store() *persist.Store { return f.store }

// Seq returns the follower's applied (not necessarily fsynced) sequence
// number.
func (f *Follower) Seq() int64 { return f.store.Seq() }

// LastContact returns when the follower last heard any protocol message
// from a live leader (zero time = never). The lease watchdog reads it.
func (f *Follower) LastContact() time.Time {
	ns := f.lastContact.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// LeaderHint returns the replication and API addresses of the last leader
// this follower was redirected to or streamed from ("" when unknown).
func (f *Follower) LeaderHint() (addr, apiAddr string) {
	if v, ok := f.leaderHint.Load().(string); ok {
		addr = v
	}
	if v, ok := f.leaderAPIHint.Load().(string); ok {
		apiAddr = v
	}
	return addr, apiAddr
}

func (f *Follower) setLeaderHint(addr, apiAddr string) {
	f.leaderHint.Store(addr)
	f.leaderAPIHint.Store(apiAddr)
	if f.opts.OnLeaderHint != nil {
		f.opts.OnLeaderHint(addr, apiAddr)
	}
}

// Close releases the local store. Call after Run has returned.
func (f *Follower) Close() error { return f.store.Close() }

// Status snapshots the follower's replication state.
func (f *Follower) Status() FollowerStatus {
	seq := f.store.Seq()
	leaderSeq := f.leaderSeq.Load()
	lag := leaderSeq - seq
	if lag < 0 {
		lag = 0
	}
	var staleness time.Duration
	ever := false
	if fresh := f.lastFresh.Load(); fresh > 0 {
		ever = true
		staleness = time.Since(time.Unix(0, fresh))
	}
	var disconnected time.Duration
	if down := f.downSince.Load(); down > 0 && !f.connected.Load() {
		disconnected = time.Since(time.Unix(0, down))
	}
	f.errMu.Lock()
	lastErr := f.lastErr
	f.errMu.Unlock()
	return FollowerStatus{
		Connected:      f.connected.Load(),
		Seq:            seq,
		LeaderSeq:      leaderSeq,
		LagRecords:     lag,
		EverSynced:     ever,
		StalenessMS:    staleness.Milliseconds(),
		Staleness:      staleness,
		Reconnects:     f.reconnects.Load(),
		Bootstraps:     f.bootstraps.Load(),
		FramesApplied:  f.frames.Load(),
		BadFrames:      f.badFrames.Load(),
		Epoch:          f.store.Epoch(),
		DisconnectedMS: disconnected.Milliseconds(),
		Disconnected:   disconnected,
		LastError:      lastErr,
	}
}

// Run tails the leader until ctx is cancelled, reconnecting with capped
// jittered backoff on every failure. It returns ctx.Err() — every other
// error is a reason to reconnect, not to stop.
func (f *Follower) Run(ctx context.Context) error {
	retry := backoff.Retrier{Policy: f.opts.Backoff}
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		progressed, err := f.session(ctx)
		f.markDisconnected()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			f.setErr(err)
			f.opts.Logger.Debug("replication session ended", "err", err)
		}
		if progressed {
			// The leader was reachable and spoke protocol; whatever killed
			// the session was transient. Start the backoff ladder over.
			retry.Reset()
		}
		d := retry.Next()
		if f.opts.OnBackoff != nil {
			f.opts.OnBackoff(retry.Attempt(), d)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
		f.reconnects.Add(1)
	}
}

// markDisconnected flips the stream down, stamping the moment the outage
// began (only on the transition, so the age keeps growing across failed
// reconnect attempts).
func (f *Follower) markDisconnected() {
	if f.connected.CompareAndSwap(true, false) || f.downSince.Load() == 0 {
		f.downSince.Store(time.Now().UnixNano())
	}
}

// session runs one connect-negotiate-stream cycle. progressed reports
// whether the leader completed a handshake (used to reset backoff).
func (f *Follower) session(ctx context.Context) (progressed bool, err error) {
	addr := f.opts.Leader
	usedHint := false
	if f.opts.LeaderFunc != nil {
		if addr, err = f.opts.LeaderFunc(); err != nil {
			return false, fmt.Errorf("replication: resolving leader: %w", err)
		}
		// A resolver that returned the current hint gets the same dead-hint
		// cleanup as direct hint use below.
		if hint, _ := f.LeaderHint(); hint != "" && hint == addr {
			usedHint = true
		}
	} else if hint, _ := f.LeaderHint(); hint != "" {
		addr = hint
		usedHint = true
	}
	if ferr := faultinject.FireErr(faultinject.SiteReplDial); ferr != nil {
		return false, fmt.Errorf("replication: dial %s: %w", addr, ferr)
	}
	conn, err := net.DialTimeout("tcp", addr, f.opts.DialTimeout)
	if err != nil {
		if usedHint {
			// The hinted leader is unreachable; fall back to the configured
			// address on the next attempt.
			f.leaderHint.Store("")
		}
		return false, fmt.Errorf("replication: dial %s: %w", addr, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	mySeq := f.store.Seq()
	reqLine, err := json.Marshal(request{
		Seq: mySeq, Epoch: f.store.Epoch(), LastEpoch: f.store.LastEpoch(),
		ID: f.opts.ID, API: f.opts.API,
	})
	if err != nil {
		return false, err
	}
	if _, err := conn.Write(append(reqLine, '\n')); err != nil {
		return false, fmt.Errorf("replication: sending request: %w", err)
	}

	h, err := f.readHello(conn)
	if err != nil {
		return false, err
	}
	if h.NotLeader {
		// Redirect: the dialed node is not (or no longer) the leader. Adopt
		// its hint and redial. Counts as progress — the node spoke protocol.
		if h.Leader != "" && h.Leader != addr {
			f.setLeaderHint(h.Leader, h.LeaderAPI)
		} else if usedHint {
			f.leaderHint.Store("")
		}
		return true, fmt.Errorf("replication: %s is not the leader (hint %q)", addr, h.Leader)
	}
	if h.Epoch < f.store.Epoch() {
		// The dialed leader is fenced off: we hold a durable epoch newer
		// than its own. Refuse the stream — applying its frames would
		// resurrect a deposed history.
		return true, fmt.Errorf("%w: leader %s at epoch %d, local epoch %d",
			ErrStaleLeader, addr, h.Epoch, f.store.Epoch())
	}
	f.setLeaderHint(addr, h.LeaderAPI)
	f.observeLeaderSeq(h.LeaderSeq)
	// Note: a successful handshake does NOT touch the lease clock. Lease
	// liveness means the leader is streaming (heartbeats or frames, stamped
	// in the loop below) — a leader healthy enough to answer a dial but too
	// wedged to stream must still be replaceable, and reconnect cycles
	// against such a leader must not postpone elections forever.

	if h.Snapshot || h.Reset {
		if err := f.bootstrap(conn, h); err != nil {
			return true, err
		}
	} else {
		if h.From != mySeq {
			return true, fmt.Errorf("replication: leader offered seq %d, asked for %d", h.From, mySeq)
		}
		// Adopt epoch marks the handshake carried that we are missing (their
		// OpEpoch frames may have rotated away with old WAL generations).
		for _, m := range h.Marks {
			f.seqMu.Lock()
			var merr error
			if m.Epoch > f.store.Epoch() {
				merr = f.store.RecordEpoch(m)
			}
			f.seqMu.Unlock()
			if merr != nil {
				return true, fmt.Errorf("replication: adopting epoch mark: %w", merr)
			}
		}
	}
	// First durable ack: tells the leader where we are and arms its lease.
	sessEpoch := h.Epoch
	if err := f.sendAck(conn); err != nil {
		return true, err
	}
	lastAck := time.Now()

	// Stream loop: frames and heartbeats until something breaks.
	for {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, payload, err := readMsg(conn)
		if err != nil {
			return true, fmt.Errorf("replication: stream read: %w", err)
		}
		f.touchContact()
		switch typ {
		case msgFrame:
			newEpoch, err := f.applyFrame(payload, sessEpoch)
			if err != nil {
				return true, err
			}
			if newEpoch > sessEpoch {
				sessEpoch = newEpoch
			}
			if time.Since(lastAck) >= f.opts.AckEvery {
				if err := f.sendAck(conn); err != nil {
					return true, err
				}
				lastAck = time.Now()
			}
		case msgHeartbeat:
			var hb heartbeat
			if err := decodeJSON(payload, &hb); err != nil {
				return true, err
			}
			if hb.Epoch < f.store.Epoch() {
				return true, fmt.Errorf("%w: heartbeat at epoch %d, local epoch %d",
					ErrStaleLeader, hb.Epoch, f.store.Epoch())
			}
			f.observeLeaderSeq(hb.Seq)
			if err := f.sendAck(conn); err != nil {
				return true, err
			}
			lastAck = time.Now()
		default:
			return true, fmt.Errorf("replication: unexpected %q message mid-stream", typ)
		}
	}
}

// touchContact stamps the liveness clock the lease watchdog reads.
func (f *Follower) touchContact() { f.lastContact.Store(time.Now().UnixNano()) }

// sendAck fsyncs local state and reports the durable position to the
// leader. The sync-before-write order is the whole point: an acked sequence
// number survives this follower's kill -9, which is what lets a leader
// treat majority acks as commit. The (seq, epoch) pair is read under seqMu
// so an ack is always internally consistent: a fence granted concurrently
// either lands before the read (the ack carries the new epoch and the old
// leader refuses it) or after (the grant re-check saw this ack's seq).
func (f *Follower) sendAck(conn net.Conn) error {
	f.seqMu.Lock()
	err := f.store.Sync()
	var a ack
	if err == nil {
		a = ack{Seq: f.store.Seq(), Epoch: f.store.Epoch()}
	}
	f.seqMu.Unlock()
	if err != nil {
		return fmt.Errorf("replication: syncing before ack: %w", err)
	}
	line, err := json.Marshal(a)
	if err != nil {
		return err
	}
	if _, err := conn.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("replication: sending ack: %w", err)
	}
	return nil
}

func (f *Follower) readHello(conn net.Conn) (hello, error) {
	conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
	typ, payload, err := readMsg(conn)
	if err != nil {
		return hello{}, fmt.Errorf("replication: reading hello: %w", err)
	}
	if typ != msgHello {
		return hello{}, fmt.Errorf("replication: expected hello, got %q", typ)
	}
	var h hello
	if err := decodeJSON(payload, &h); err != nil {
		return hello{}, err
	}
	return h, nil
}

// bootstrap discards local state and adopts the leader's: either the
// shipped snapshot, or — for a generation-0 leader — the empty graph. The
// adopted graph is published atomically under the apply lock and made
// durable (the follower's store rotates to a fresh snapshot) before any
// frame is applied on top.
func (f *Follower) bootstrap(conn net.Conn, h hello) error {
	g := pg.New()
	// The adopted epoch history: the snapshot's own marks when one ships
	// (they describe exactly the shipped state), the handshake's otherwise.
	marks := h.Marks
	if h.Snapshot {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, payload, err := readMsg(conn)
		if err != nil {
			return fmt.Errorf("replication: reading snapshot: %w", err)
		}
		if typ != msgSnapshot {
			return fmt.Errorf("replication: expected snapshot, got %q", typ)
		}
		if g, marks, err = persist.DecodeSnapshotMarks(payload); err != nil {
			f.badFrames.Add(1)
			return fmt.Errorf("replication: snapshot rejected: %w", err)
		}
	}
	if got := persist.SeqOfGraph(g); got != h.From {
		return fmt.Errorf("replication: bootstrap graph is at seq %d, hello promised %d", got, h.From)
	}
	f.seqMu.Lock()
	defer f.seqMu.Unlock()
	f.lock.Lock()
	err := f.store.ReplaceGraphMarks(g, marks)
	if err == nil {
		if f.opts.OnGraphSwap != nil {
			f.opts.OnGraphSwap(g)
		}
		for _, fn := range f.swapFns {
			fn(g)
		}
	}
	f.lock.Unlock()
	if err != nil {
		return fmt.Errorf("replication: adopting bootstrap state: %w", err)
	}
	f.bootstraps.Add(1)
	f.opts.Logger.Info("replication bootstrap", "seq", h.From, "gen", h.Gen, "reset", h.Reset)
	return nil
}

// applyFrame validates one shipped WAL frame and applies it. The CRC check
// runs against the wire bytes, so corruption in transit is caught here and
// handled like a disconnect: the caller drops the connection and the next
// session re-requests from the last locally-held sequence number.
//
// sessEpoch is the epoch this stream was negotiated under; epoch frames
// that advance it are returned as newEpoch (and recorded durably). A local
// epoch newer than the session's — a fence granted mid-stream — kills the
// session: the sender is deposed and its frames must not land.
func (f *Follower) applyFrame(frame []byte, sessEpoch uint64) (newEpoch uint64, err error) {
	faultinject.Fire(faultinject.SiteReplApply)
	rec, err := persist.DecodeFrame(frame)
	if err != nil {
		f.badFrames.Add(1)
		return 0, fmt.Errorf("replication: frame rejected: %w", err)
	}
	if rec.Op == persist.OpEpoch {
		m := persist.EpochMark{Epoch: uint64(rec.ID), StartSeq: rec.From}
		f.seqMu.Lock()
		if m.Epoch > f.store.Epoch() {
			if err := f.store.RecordEpoch(m); err != nil {
				f.seqMu.Unlock()
				return 0, fmt.Errorf("replication: recording shipped epoch: %w", err)
			}
		}
		f.seqMu.Unlock()
		f.frames.Add(1)
		return m.Epoch, nil
	}
	// The epoch gate and the apply are one atomic step under seqMu: a fence
	// granted after the gate passes must not see the record slip in behind
	// it — that would file the deposed leader's record under the new
	// epoch's history.
	f.seqMu.Lock()
	if cur := f.store.Epoch(); cur > sessEpoch {
		f.seqMu.Unlock()
		return 0, fmt.Errorf("%w: frame from epoch %d session, local epoch %d",
			ErrStaleLeader, sessEpoch, cur)
	}
	f.lock.Lock()
	// Applying the record mutates the graph, which fires the store's
	// mutation hook: the frame lands in the follower's own WAL and advances
	// its sequence number. Durability and position tracking come free.
	g := f.store.Graph()
	// Removal mutations carry the element as it was — resolve before apply.
	var removed pg.Mutation
	if len(f.mutFns) > 0 {
		switch rec.Op {
		case persist.OpRemoveEdge:
			removed = pg.Mutation{Kind: pg.MutRemoveEdge, Edge: g.Edge(pg.EdgeID(rec.ID))}
		case persist.OpRemoveNode:
			removed = pg.Mutation{Kind: pg.MutRemoveNode, Node: g.Node(pg.NodeID(rec.ID))}
		}
	}
	err = persist.Apply(g, rec)
	if err == nil && len(f.mutFns) > 0 {
		m := removed
		switch rec.Op {
		case persist.OpAddNode:
			m = pg.Mutation{Kind: pg.MutAddNode, Node: g.Node(pg.NodeID(rec.ID))}
		case persist.OpAddEdge:
			m = pg.Mutation{Kind: pg.MutAddEdge, Edge: g.Edge(pg.EdgeID(rec.ID))}
		case persist.OpSetEdgeWeight:
			m = pg.Mutation{Kind: pg.MutSetEdgeWeight, Edge: g.Edge(pg.EdgeID(rec.ID))}
		}
		for _, fn := range f.mutFns {
			fn(m)
		}
	}
	f.lock.Unlock()
	f.seqMu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("replication: applying frame: %w", err)
	}
	f.frames.Add(1)
	f.markFreshIfCaughtUp()
	return 0, nil
}

// grantFence durably records a fence mark on behalf of the node layer's
// election protocol, re-evaluating the caller's grant condition atomically
// against the store's current (seq, epoch, lastEpoch) under seqMu. The
// atomicity is what makes a grant a real promise: no record can be applied
// or acked between the condition passing and the mark landing, so a
// candidate that wins the grant is guaranteed no committed record exists
// past its fence point that it does not hold.
func (f *Follower) grantFence(m persist.EpochMark, ok func(seq int64, epoch, lastEpoch uint64) bool) (bool, error) {
	f.seqMu.Lock()
	defer f.seqMu.Unlock()
	if ok != nil && !ok(f.store.Seq(), f.store.Epoch(), f.store.LastEpoch()) {
		return false, nil
	}
	return true, f.store.RecordEpoch(m)
}

// observeLeaderSeq records the leader's position and refreshes the
// staleness clock if we are at parity.
func (f *Follower) observeLeaderSeq(seq int64) {
	// Keep the max: heartbeats from a stale read race with hello.
	for {
		cur := f.leaderSeq.Load()
		if seq <= cur {
			break
		}
		if f.leaderSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	f.connected.Store(true)
	f.downSince.Store(0)
	f.markFreshIfCaughtUp()
}

// markFreshIfCaughtUp stamps lastFresh when the follower's applied state
// has reached the last position the leader reported. A follower that is
// perpetually slightly behind a busy leader never stamps — its staleness
// grows until a heartbeat or applied frame shows parity again.
func (f *Follower) markFreshIfCaughtUp() {
	if f.store.Seq() >= f.leaderSeq.Load() {
		f.lastFresh.Store(time.Now().UnixNano())
	}
}

func (f *Follower) setErr(err error) {
	f.errMu.Lock()
	f.lastErr = err.Error()
	f.errMu.Unlock()
}
