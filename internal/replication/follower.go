package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/backoff"
	"vadalink/internal/faultinject"
	"vadalink/internal/persist"
	"vadalink/internal/pg"
)

// FollowerOptions tunes the tailing side of replication.
type FollowerOptions struct {
	// Leader is the leader's replication address (host:port). Ignored when
	// LeaderFunc is set.
	Leader string
	// LeaderFunc, when set, is called before every dial; it lets a follower
	// track a leader whose address changes across restarts.
	LeaderFunc func() (string, error)
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// ReadTimeout bounds one read on an established stream; a healthy leader
	// heartbeats well inside it, so expiry means the leader is gone without
	// the kernel noticing. Default 10s.
	ReadTimeout time.Duration
	// SyncEvery is the follower's own WAL group-commit interval (see
	// persist.Options).
	SyncEvery time.Duration
	// Backoff paces reconnect attempts. Zero value gets a sane default
	// (50ms base doubling to 2s, half-jittered).
	Backoff backoff.Policy
	// OnBackoff, when set, observes every reconnect delay (attempt number
	// and chosen delay). Test instrumentation.
	OnBackoff func(attempt int, d time.Duration)
	// OnGraphSwap, when set, is called — under the follower's apply lock —
	// whenever a snapshot bootstrap replaces the graph object. Serving
	// layers that cache the *pg.Graph pointer use it to re-point.
	OnGraphSwap func(*pg.Graph)
	// Logger receives connection lifecycle events. Default: discard.
	Logger *slog.Logger
}

// FollowerStatus is a snapshot of a follower's replication state.
type FollowerStatus struct {
	Connected     bool   `json:"connected"`
	Seq           int64  `json:"seq"`
	LeaderSeq     int64  `json:"leaderSeq"`
	LagRecords    int64  `json:"lagRecords"`
	EverSynced    bool   `json:"everSynced"`
	StalenessMS   int64  `json:"stalenessMillis"`
	Reconnects    int64  `json:"reconnects"`
	Bootstraps    int64  `json:"bootstraps"`
	FramesApplied int64  `json:"framesApplied"`
	BadFrames     int64  `json:"badFrames"`
	LastError     string `json:"lastError,omitempty"`

	// Staleness is the structured form of StalenessMS (not serialized).
	Staleness time.Duration `json:"-"`
}

// Follower tails a leader's WAL stream into a local durable store. Every
// applied frame flows through the same mutation-capture path as a leader
// write, so the follower's own WAL and snapshots make its position —
// persist.SeqOfGraph of whatever graph it recovers — survive kill -9 with
// no separate position file to tear.
type Follower struct {
	store *persist.Store
	opts  FollowerOptions

	// lock serializes frame application against readers. Defaults to a
	// private mutex; a serving layer hands in the write side of its own
	// RWMutex via SetLock so reads exclude half-applied mutations.
	lock sync.Locker

	connected  atomic.Bool
	leaderSeq  atomic.Int64
	lastFresh  atomic.Int64 // unix nanos of last observed parity; 0 = never
	reconnects atomic.Int64
	bootstraps atomic.Int64
	frames     atomic.Int64
	badFrames  atomic.Int64

	errMu   sync.Mutex
	lastErr string

	// swapFns are additional graph-swap observers (see OnSwap), invoked —
	// like FollowerOptions.OnGraphSwap — under the apply lock.
	swapFns []func(*pg.Graph)

	// mutFns are applied-mutation observers (see OnMutation), invoked under
	// the apply lock after each shipped frame lands. An incremental view
	// maintainer tails them to keep derived facts current without
	// re-chasing on read.
	mutFns []func(pg.Mutation)
}

// OpenFollower opens (or recovers) the follower's local store in dir. The
// returned follower serves its recovered graph immediately; Run connects it
// to the leader.
func OpenFollower(dir string, opts FollowerOptions) (*Follower, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 10 * time.Second
	}
	if opts.Backoff == (backoff.Policy{}) {
		opts.Backoff = backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	st, err := persist.Open(dir, persist.Options{SyncEvery: opts.SyncEvery})
	if err != nil {
		return nil, err
	}
	return &Follower{store: st, opts: opts, lock: &sync.Mutex{}}, nil
}

// SetLock replaces the apply lock. Call before Run. Passing the write side
// of the RWMutex that guards reads makes "concurrent reads while applying"
// safe by construction.
func (f *Follower) SetLock(l sync.Locker) { f.lock = l }

// OnSwap registers an additional bootstrap observer, called under the
// apply lock whenever a snapshot bootstrap replaces the graph object.
// Serving layers that cache the *pg.Graph pointer re-point it here. Call
// before Run.
func (f *Follower) OnSwap(fn func(*pg.Graph)) { f.swapFns = append(f.swapFns, fn) }

// OnMutation registers an observer of every mutation a shipped frame applies
// to the follower's graph, called under the apply lock with the same
// pg.Mutation a leader-side hook would have seen. A snapshot bootstrap does
// NOT replay through it — register an OnSwap observer to resynchronize from
// scratch on bootstrap. Call before Run.
func (f *Follower) OnMutation(fn func(pg.Mutation)) { f.mutFns = append(f.mutFns, fn) }

// Graph returns the follower's current graph. After a snapshot bootstrap
// this is a different object — cache the pointer only via OnGraphSwap.
func (f *Follower) Graph() *pg.Graph { return f.store.Graph() }

// Store returns the follower's local durable store.
func (f *Follower) Store() *persist.Store { return f.store }

// Seq returns the follower's applied (not necessarily fsynced) sequence
// number.
func (f *Follower) Seq() int64 { return f.store.Seq() }

// Close releases the local store. Call after Run has returned.
func (f *Follower) Close() error { return f.store.Close() }

// Status snapshots the follower's replication state.
func (f *Follower) Status() FollowerStatus {
	seq := f.store.Seq()
	leaderSeq := f.leaderSeq.Load()
	lag := leaderSeq - seq
	if lag < 0 {
		lag = 0
	}
	var staleness time.Duration
	ever := false
	if fresh := f.lastFresh.Load(); fresh > 0 {
		ever = true
		staleness = time.Since(time.Unix(0, fresh))
	}
	f.errMu.Lock()
	lastErr := f.lastErr
	f.errMu.Unlock()
	return FollowerStatus{
		Connected:     f.connected.Load(),
		Seq:           seq,
		LeaderSeq:     leaderSeq,
		LagRecords:    lag,
		EverSynced:    ever,
		StalenessMS:   staleness.Milliseconds(),
		Staleness:     staleness,
		Reconnects:    f.reconnects.Load(),
		Bootstraps:    f.bootstraps.Load(),
		FramesApplied: f.frames.Load(),
		BadFrames:     f.badFrames.Load(),
		LastError:     lastErr,
	}
}

// Run tails the leader until ctx is cancelled, reconnecting with capped
// jittered backoff on every failure. It returns ctx.Err() — every other
// error is a reason to reconnect, not to stop.
func (f *Follower) Run(ctx context.Context) error {
	attempt := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		progressed, err := f.session(ctx)
		f.connected.Store(false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			f.setErr(err)
			f.opts.Logger.Debug("replication session ended", "err", err)
		}
		if progressed {
			// The leader was reachable and spoke protocol; whatever killed
			// the session was transient. Start the backoff ladder over.
			attempt = 0
		}
		d := f.opts.Backoff.Delay(attempt)
		attempt++
		if f.opts.OnBackoff != nil {
			f.opts.OnBackoff(attempt, d)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
		f.reconnects.Add(1)
	}
}

// session runs one connect-negotiate-stream cycle. progressed reports
// whether the leader completed a handshake (used to reset backoff).
func (f *Follower) session(ctx context.Context) (progressed bool, err error) {
	addr := f.opts.Leader
	if f.opts.LeaderFunc != nil {
		if addr, err = f.opts.LeaderFunc(); err != nil {
			return false, fmt.Errorf("replication: resolving leader: %w", err)
		}
	}
	if ferr := faultinject.FireErr(faultinject.SiteReplDial); ferr != nil {
		return false, fmt.Errorf("replication: dial %s: %w", addr, ferr)
	}
	conn, err := net.DialTimeout("tcp", addr, f.opts.DialTimeout)
	if err != nil {
		return false, fmt.Errorf("replication: dial %s: %w", addr, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	mySeq := f.store.Seq()
	reqLine, err := json.Marshal(request{Seq: mySeq})
	if err != nil {
		return false, err
	}
	if _, err := conn.Write(append(reqLine, '\n')); err != nil {
		return false, fmt.Errorf("replication: sending request: %w", err)
	}

	h, err := f.readHello(conn)
	if err != nil {
		return false, err
	}
	f.observeLeaderSeq(h.LeaderSeq)

	if h.Snapshot || h.Reset {
		if err := f.bootstrap(conn, h); err != nil {
			return true, err
		}
	} else if h.From != mySeq {
		return true, fmt.Errorf("replication: leader offered seq %d, asked for %d", h.From, mySeq)
	}

	// Stream loop: frames and heartbeats until something breaks.
	for {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, payload, err := readMsg(conn)
		if err != nil {
			return true, fmt.Errorf("replication: stream read: %w", err)
		}
		switch typ {
		case msgFrame:
			if err := f.applyFrame(payload); err != nil {
				return true, err
			}
		case msgHeartbeat:
			var hb heartbeat
			if err := decodeJSON(payload, &hb); err != nil {
				return true, err
			}
			f.observeLeaderSeq(hb.Seq)
		default:
			return true, fmt.Errorf("replication: unexpected %q message mid-stream", typ)
		}
	}
}

func (f *Follower) readHello(conn net.Conn) (hello, error) {
	conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
	typ, payload, err := readMsg(conn)
	if err != nil {
		return hello{}, fmt.Errorf("replication: reading hello: %w", err)
	}
	if typ != msgHello {
		return hello{}, fmt.Errorf("replication: expected hello, got %q", typ)
	}
	var h hello
	if err := decodeJSON(payload, &h); err != nil {
		return hello{}, err
	}
	return h, nil
}

// bootstrap discards local state and adopts the leader's: either the
// shipped snapshot, or — for a generation-0 leader — the empty graph. The
// adopted graph is published atomically under the apply lock and made
// durable (the follower's store rotates to a fresh snapshot) before any
// frame is applied on top.
func (f *Follower) bootstrap(conn net.Conn, h hello) error {
	g := pg.New()
	if h.Snapshot {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, payload, err := readMsg(conn)
		if err != nil {
			return fmt.Errorf("replication: reading snapshot: %w", err)
		}
		if typ != msgSnapshot {
			return fmt.Errorf("replication: expected snapshot, got %q", typ)
		}
		if g, err = persist.DecodeSnapshot(payload); err != nil {
			f.badFrames.Add(1)
			return fmt.Errorf("replication: snapshot rejected: %w", err)
		}
	}
	if got := persist.SeqOfGraph(g); got != h.From {
		return fmt.Errorf("replication: bootstrap graph is at seq %d, hello promised %d", got, h.From)
	}
	f.lock.Lock()
	err := f.store.ReplaceGraph(g)
	if err == nil {
		if f.opts.OnGraphSwap != nil {
			f.opts.OnGraphSwap(g)
		}
		for _, fn := range f.swapFns {
			fn(g)
		}
	}
	f.lock.Unlock()
	if err != nil {
		return fmt.Errorf("replication: adopting bootstrap state: %w", err)
	}
	f.bootstraps.Add(1)
	f.opts.Logger.Info("replication bootstrap", "seq", h.From, "gen", h.Gen, "reset", h.Reset)
	return nil
}

// applyFrame validates one shipped WAL frame and applies it. The CRC check
// runs against the wire bytes, so corruption in transit is caught here and
// handled like a disconnect: the caller drops the connection and the next
// session re-requests from the last locally-held sequence number.
func (f *Follower) applyFrame(frame []byte) error {
	faultinject.Fire(faultinject.SiteReplApply)
	rec, err := persist.DecodeFrame(frame)
	if err != nil {
		f.badFrames.Add(1)
		return fmt.Errorf("replication: frame rejected: %w", err)
	}
	f.lock.Lock()
	// Applying the record mutates the graph, which fires the store's
	// mutation hook: the frame lands in the follower's own WAL and advances
	// its sequence number. Durability and position tracking come free.
	g := f.store.Graph()
	// Removal mutations carry the element as it was — resolve before apply.
	var removed pg.Mutation
	if len(f.mutFns) > 0 {
		switch rec.Op {
		case persist.OpRemoveEdge:
			removed = pg.Mutation{Kind: pg.MutRemoveEdge, Edge: g.Edge(pg.EdgeID(rec.ID))}
		case persist.OpRemoveNode:
			removed = pg.Mutation{Kind: pg.MutRemoveNode, Node: g.Node(pg.NodeID(rec.ID))}
		}
	}
	err = persist.Apply(g, rec)
	if err == nil && len(f.mutFns) > 0 {
		m := removed
		switch rec.Op {
		case persist.OpAddNode:
			m = pg.Mutation{Kind: pg.MutAddNode, Node: g.Node(pg.NodeID(rec.ID))}
		case persist.OpAddEdge:
			m = pg.Mutation{Kind: pg.MutAddEdge, Edge: g.Edge(pg.EdgeID(rec.ID))}
		case persist.OpSetEdgeWeight:
			m = pg.Mutation{Kind: pg.MutSetEdgeWeight, Edge: g.Edge(pg.EdgeID(rec.ID))}
		}
		for _, fn := range f.mutFns {
			fn(m)
		}
	}
	f.lock.Unlock()
	if err != nil {
		return fmt.Errorf("replication: applying frame: %w", err)
	}
	f.frames.Add(1)
	f.markFreshIfCaughtUp()
	return nil
}

// observeLeaderSeq records the leader's position and refreshes the
// staleness clock if we are at parity.
func (f *Follower) observeLeaderSeq(seq int64) {
	// Keep the max: heartbeats from a stale read race with hello.
	for {
		cur := f.leaderSeq.Load()
		if seq <= cur {
			break
		}
		if f.leaderSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	f.connected.Store(true)
	f.markFreshIfCaughtUp()
}

// markFreshIfCaughtUp stamps lastFresh when the follower's applied state
// has reached the last position the leader reported. A follower that is
// perpetually slightly behind a busy leader never stamps — its staleness
// grows until a heartbeat or applied frame shows parity again.
func (f *Follower) markFreshIfCaughtUp() {
	if f.store.Seq() >= f.leaderSeq.Load() {
		f.lastFresh.Store(time.Now().UnixNano())
	}
}

func (f *Follower) setErr(err error) {
	f.errMu.Lock()
	f.lastErr = err.Error()
	f.errMu.Unlock()
}
