// Package replication ships the write-ahead log from a leader to read-only
// followers over a plain TCP stream.
//
// The protocol is deliberately small. A follower connects, states the one
// thing the leader needs to know — the sequence number of the last mutation
// it holds durably — and from then on only reads:
//
//	follower → leader:  {"seq": N}\n                (single JSON request line)
//	leader → follower:  [1-byte type][u32le length][payload]...
//
// Message types:
//
//	'H'  hello      JSON: generation, base, first shipped seq, whether a
//	                snapshot precedes the frames, the leader's current seq,
//	                and whether the follower must discard local state.
//	'S'  snapshot   one snapshot file, byte-for-byte (VKGSNAP1 envelope,
//	                verified by the follower with the same checks used on
//	                disk).
//	'F'  frame      one WAL frame, byte-for-byte ([len][crc][payload]); the
//	                follower re-verifies the CRC, so corruption on the wire
//	                is detected exactly like corruption on disk.
//	'P'  heartbeat  JSON: the leader's current seq; lets an idle follower
//	                measure its lag and freshness.
//
// The sequence number is a pure function of graph state
// (persist.SeqOfGraph), so position negotiation is stateless: any anomaly —
// torn stream, bad frame, rotation, leader restart — is handled by dropping
// the connection and reconnecting with whatever sequence number the
// follower's recovered graph implies. There is no ack channel and no
// session state to corrupt.
package replication

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Protocol message types.
const (
	msgHello     byte = 'H'
	msgSnapshot  byte = 'S'
	msgFrame     byte = 'F'
	msgHeartbeat byte = 'P'
)

// msgHeaderLen = 1 type byte + u32le payload length.
const msgHeaderLen = 5

// maxMsgLen bounds one message; a longer length in a header is treated as
// corruption, not an allocation request. Snapshots are the only large
// payloads and a 256 MiB graph snapshot is far beyond anything this system
// serves.
const maxMsgLen = 256 << 20

// hello is the leader's first message on every connection: where the stream
// starts and what the follower must do to receive it.
type hello struct {
	// Gen is the leader's current WAL generation.
	Gen uint64 `json:"gen"`
	// Base is the sequence number at the start of that generation's WAL.
	Base int64 `json:"base"`
	// From is the sequence number of the first frame that will be shipped;
	// after any snapshot is applied the follower must be at exactly From.
	From int64 `json:"from"`
	// Snapshot announces an 'S' message before the first frame.
	Snapshot bool `json:"snapshot"`
	// Reset tells the follower its local state is ahead of (or diverged
	// from) the leader — discard it and adopt the bootstrap state. Set when
	// a leader lost unsynced tail writes in a crash.
	Reset bool `json:"reset"`
	// LeaderSeq is the leader's sequence number at connection time.
	LeaderSeq int64 `json:"leaderSeq"`
}

// heartbeat is the leader's periodic 'P' payload.
type heartbeat struct {
	Seq int64 `json:"seq"`
}

// request is the follower's single JSON request line.
type request struct {
	Seq int64 `json:"seq"`
}

// encodeMsg wraps a payload in the wire envelope.
func encodeMsg(typ byte, payload []byte) []byte {
	msg := make([]byte, msgHeaderLen, msgHeaderLen+len(payload))
	msg[0] = typ
	binary.LittleEndian.PutUint32(msg[1:5], uint32(len(payload)))
	return append(msg, payload...)
}

// readMsg reads one complete message. Short reads, absurd lengths and
// unknown types are errors — the caller's only recovery is to drop the
// connection and renegotiate.
func readMsg(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [msgHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	switch typ {
	case msgHello, msgSnapshot, msgFrame, msgHeartbeat:
	default:
		return 0, nil, fmt.Errorf("replication: unknown message type %q", typ)
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxMsgLen {
		return 0, nil, fmt.Errorf("replication: message length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("replication: short message body: %w", err)
	}
	return typ, payload, nil
}

// decodeJSON strictly parses a JSON payload into v.
func decodeJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("replication: bad message payload: %w", err)
	}
	return nil
}
