// Package replication ships the write-ahead log from a leader to read-only
// followers over a plain TCP stream.
//
// The protocol is deliberately small. A follower connects, states the one
// thing the leader needs to know — the sequence number of the last mutation
// it holds durably — and from then on only reads:
//
//	follower → leader:  {"seq": N}\n                (single JSON request line)
//	leader → follower:  [1-byte type][u32le length][payload]...
//
// Message types:
//
//	'H'  hello      JSON: generation, base, first shipped seq, whether a
//	                snapshot precedes the frames, the leader's current seq,
//	                and whether the follower must discard local state.
//	'S'  snapshot   one snapshot file, byte-for-byte (VKGSNAP1 envelope,
//	                verified by the follower with the same checks used on
//	                disk).
//	'F'  frame      one WAL frame, byte-for-byte ([len][crc][payload]); the
//	                follower re-verifies the CRC, so corruption on the wire
//	                is detected exactly like corruption on disk.
//	'P'  heartbeat  JSON: the leader's current seq; lets an idle follower
//	                measure its lag and freshness.
//
// The sequence number is a pure function of graph state
// (persist.SeqOfGraph), so position negotiation is stateless: any anomaly —
// torn stream, bad frame, rotation, leader restart — is handled by dropping
// the connection and reconnecting with whatever sequence number the
// follower's recovered graph implies. There is no ack channel and no
// session state to corrupt.
package replication

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"vadalink/internal/persist"
)

// Protocol message types.
const (
	msgHello     byte = 'H'
	msgSnapshot  byte = 'S'
	msgFrame     byte = 'F'
	msgHeartbeat byte = 'P'
	// msgStatus is a replica-group peer's one-shot reply to a probe or
	// fence request: a PeerStatus JSON payload, then the connection closes.
	msgStatus byte = 'T'
)

// msgHeaderLen = 1 type byte + u32le payload length.
const msgHeaderLen = 5

// maxMsgLen bounds one message; a longer length in a header is treated as
// corruption, not an allocation request. Snapshots are the only large
// payloads and a 256 MiB graph snapshot is far beyond anything this system
// serves.
const maxMsgLen = 256 << 20

// hello is the leader's first message on every connection: where the stream
// starts and what the follower must do to receive it.
type hello struct {
	// Gen is the leader's current WAL generation.
	Gen uint64 `json:"gen"`
	// Base is the sequence number at the start of that generation's WAL.
	Base int64 `json:"base"`
	// From is the sequence number of the first frame that will be shipped;
	// after any snapshot is applied the follower must be at exactly From.
	From int64 `json:"from"`
	// Snapshot announces an 'S' message before the first frame.
	Snapshot bool `json:"snapshot"`
	// Reset tells the follower its local state is ahead of (or diverged
	// from) the leader — discard it and adopt the bootstrap state. Set when
	// a leader lost unsynced tail writes in a crash.
	Reset bool `json:"reset"`
	// LeaderSeq is the leader's sequence number at connection time.
	LeaderSeq int64 `json:"leaderSeq"`
	// Epoch is the leader's replication epoch. A follower whose own durable
	// epoch is higher knows this leader is deposed and must drop the stream.
	Epoch uint64 `json:"epoch,omitempty"`
	// Marks is the leader's full epoch history. A follower resuming
	// mid-generation adopts any marks it is missing here — the OpEpoch
	// frames that carried them may live in WAL generations already rotated
	// away, so the handshake is the only reliable carrier.
	Marks []persist.EpochMark `json:"marks,omitempty"`
	// NotLeader means the answering node is not the group's leader and will
	// not stream; Leader/LeaderAPI carry its best hint of who is (may be
	// empty when unknown). The follower redials the hinted address. On a
	// successful stream (NotLeader false) LeaderAPI is the streaming
	// leader's OWN advertised API address, so followers learn where writes
	// belong from the handshake alone.
	NotLeader bool   `json:"notLeader,omitempty"`
	Leader    string `json:"leader,omitempty"`
	LeaderAPI string `json:"leaderAPI,omitempty"`
}

// heartbeat is the leader's periodic 'P' payload. Epoch stamps the liveness
// signal: a follower fenced into a newer epoch rejects heartbeats from the
// deposed epoch instead of treating them as leader health.
type heartbeat struct {
	Seq   int64  `json:"seq"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// request is the connecting side's single JSON request line. Three shapes
// share it: a stream request (Seq set, the PR 5 protocol), a status probe
// (Probe true — the peer answers one msgStatus and closes), and a fence
// request (Fence > 0 — a promotion candidate asking the peer to durably
// enter a new epoch).
type request struct {
	Seq int64 `json:"seq"`
	// Epoch is the requester's durable replication epoch (its newest fence
	// mark, whether or not facts followed it). A leader outranked by it
	// knows it is deposed.
	Epoch uint64 `json:"epoch,omitempty"`
	// LastEpoch is the epoch under which the requester's newest FACT was
	// written (persist.Store.LastEpoch). The leader uses it, with Seq, to
	// detect a fenced-off divergent tail; elections and fence grants use it
	// to order candidate histories. Distinct from Epoch: a granted fence
	// advances Epoch without validating the facts beneath it.
	LastEpoch uint64 `json:"lastEpoch,omitempty"`
	// ID identifies the requesting node across reconnects (its advertised
	// replication address); the leader keys durable-ack tracking by it.
	ID string `json:"id,omitempty"`
	// API is the requester's advertised HTTP API address, forwarded to
	// followers as the leader hint when the requester wins an election.
	API string `json:"api,omitempty"`
	// Probe asks for a one-shot PeerStatus instead of a stream.
	Probe bool `json:"probe,omitempty"`
	// Fence, when non-zero, asks the peer to durably fence itself into
	// epoch Fence, granted only if Fence advances the peer's epoch, the
	// peer's leader contact is stale, and the candidate's history
	// (LastEpoch, FenceStart) is at least as up to date as the peer's — so
	// no fact the peer may have acknowledged can be orphaned.
	Fence      uint64 `json:"fence,omitempty"`
	FenceStart int64  `json:"fenceStart,omitempty"`
}

// ack is the follower→leader durable-progress line, sent on the same
// connection as the stream: "everything up to Seq is fsynced here, and my
// epoch is Epoch". The leader counts distinct fresh epoch-matching acks to
// renew its lease and to release quorum-committed writes.
type ack struct {
	Seq   int64  `json:"ack"`
	Epoch uint64 `json:"epoch"`
}

// PeerStatus is the msgStatus payload: one node's view of itself and of the
// group's leadership, answered to probes and fence requests.
type PeerStatus struct {
	Addr  string `json:"addr"`
	Role  string `json:"role"` // "leader" or "follower"
	Epoch uint64 `json:"epoch"`
	// LastEpoch is the epoch of the peer's newest fact (see request); with
	// Seq it is the peer's history identity, compared lexicographically to
	// pick election candidates.
	LastEpoch uint64 `json:"lastEpoch"`
	Seq       int64  `json:"seq"`
	// LeaderAddr/LeaderAPI are the peer's current belief of the leader.
	LeaderAddr string `json:"leaderAddr,omitempty"`
	LeaderAPI  string `json:"leaderAPI,omitempty"`
	// LeaderFreshMS is how long ago the peer last heard from a live leader
	// (0 when the peer is the leader; -1 when it never heard from one).
	LeaderFreshMS int64 `json:"leaderFreshMillis"`
	// Granted reports whether a fence request was granted.
	Granted bool `json:"granted,omitempty"`
}

// encodeMsg wraps a payload in the wire envelope.
func encodeMsg(typ byte, payload []byte) []byte {
	msg := make([]byte, msgHeaderLen, msgHeaderLen+len(payload))
	msg[0] = typ
	binary.LittleEndian.PutUint32(msg[1:5], uint32(len(payload)))
	return append(msg, payload...)
}

// readMsg reads one complete message. Short reads, absurd lengths and
// unknown types are errors — the caller's only recovery is to drop the
// connection and renegotiate.
func readMsg(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [msgHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	switch typ {
	case msgHello, msgSnapshot, msgFrame, msgHeartbeat, msgStatus:
	default:
		return 0, nil, fmt.Errorf("replication: unknown message type %q", typ)
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxMsgLen {
		return 0, nil, fmt.Errorf("replication: message length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("replication: short message body: %w", err)
	}
	return typ, payload, nil
}

// decodeJSON strictly parses a JSON payload into v.
func decodeJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("replication: bad message payload: %w", err)
	}
	return nil
}
