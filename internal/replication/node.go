// Self-healing replica groups: lease-based leader failover with
// epoch-fenced WAL shipping.
//
// A Node is one member of a small replica group. Exactly one member serves
// the Leader stream; the rest tail it as Followers. Three mechanisms keep
// that arrangement honest across leader death:
//
//   - Lease. The leader's authority is a lease renewed by fresh durable
//     acks from a majority of the group (its own store counts as one
//     member). Followers track the mirror image — time since the last
//     protocol message from a live leader. When either side's deadline
//     passes the lease, the leader steps down / the follower runs an
//     election.
//
//   - Epoch fencing. Every promotion durably opens a new epoch (a
//     persist.EpochMark: epoch number + the sequence number it opened at).
//     A deposed leader's heartbeats, frames and acks are refused the
//     moment a newer epoch is visible anywhere — so split-brain can hold a
//     stale graph but can never acknowledge a fact.
//
//   - Deterministic promotion. On lease expiry a follower probes the
//     group; the unique candidate is the reachable member with the most
//     up-to-date history — ordered by (epoch of newest fact, applied
//     sequence number), lowest address breaking exact ties. The candidate
//     then asks each peer to durably grant a fence into epoch+1; a grant
//     is refused when the peer still hears a live leader, or when the
//     peer's history is more up to date than the candidate's (the grant
//     would orphan acked facts). Majority grants promote; anything less
//     leaves the group leaderless for another round.
//
// The safety argument for "no acknowledged fact is ever lost": a fact is
// acknowledged only after the leader's store and majority-1 follower
// stores hold it fsynced at the current epoch (Node.Commit). A later
// election needs majority fence grants, each refused when the granter's
// log extends past the candidate's — so the grant set and the ack set
// intersect, and the intersection forces the candidate's log to contain
// every acknowledged fact. Peers that logged past the fence point under
// the old epoch are detected by persist.DivergedSince on reconnect and
// re-bootstrapped from the new history (their unacknowledged divergent
// tail is truncated away).
package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/backoff"
	"vadalink/internal/faultinject"
	"vadalink/internal/persist"
)

// Typed failures of the replica-group write path.
var (
	// ErrNotLeader means this node cannot accept writes; ask the leader.
	ErrNotLeader = errors.New("replication: not the leader")
	// ErrStaleEpoch means the write ran under an epoch that was fenced off
	// before it could be acknowledged; it must not be reported durable.
	ErrStaleEpoch = errors.New("replication: stale epoch")
	// ErrStaleLeader means a stream peer presented an epoch older than the
	// local durable epoch — a deposed leader still talking.
	ErrStaleLeader = errors.New("replication: stale leader")
)

// Role names, as exposed in statuses and metrics.
const (
	RoleFollower = "follower"
	RoleLeader   = "leader"
)

// NodeOptions configures one replica-group member.
type NodeOptions struct {
	// Self is this node's advertised replication address (host:port) — its
	// identity in the group and the election tiebreak key. Required.
	Self string
	// API is this node's advertised HTTP API address, handed to redirecting
	// clients when this node leads.
	API string
	// Peers are the other members' replication addresses. Self is filtered
	// out, so passing the full group roster to every member is fine.
	Peers []string
	// PeersFunc, when set, overrides Peers before every election and dial —
	// for tests whose peer addresses appear as processes (re)start.
	PeersFunc func() []string
	// Lease bounds failure detection on both sides: a leader that cannot
	// see majority acks for Lease steps down; a follower that hears nothing
	// from a leader for Lease starts an election. Default 3s.
	Lease time.Duration
	// ProbeTimeout bounds one election probe round-trip. Default Lease/3.
	ProbeTimeout time.Duration
	// SyncEvery is the local store's WAL group-commit interval.
	SyncEvery time.Duration
	// AckEvery rate-limits follower durable acks (see FollowerOptions).
	AckEvery time.Duration
	// Backoff paces follower reconnects. Zero gets the follower default.
	Backoff backoff.Policy
	// OnRoleChange, when set, observes every transition with the new role
	// and the epoch it happened at.
	OnRoleChange func(role string, epoch uint64)
	// Logger receives lifecycle events. Default: discard.
	Logger *slog.Logger
}

// FailoverEvent records one role transition.
type FailoverEvent struct {
	At time.Time `json:"at"`
	// Role is the role entered.
	Role string `json:"role"`
	// Cause: "startup", "promoted", "lease_expired", "deposed".
	Cause string `json:"cause"`
	Epoch uint64 `json:"epoch"`
}

// NodeStatus is a snapshot of a replica-group member's failover state.
type NodeStatus struct {
	Addr       string `json:"addr"`
	Role       string `json:"role"`
	Epoch      uint64 `json:"epoch"`
	Seq        int64  `json:"seq"`
	LeaderAddr string `json:"leaderAddr,omitempty"`
	LeaderAPI  string `json:"leaderAPI,omitempty"`
	// LeaseOK reports whether the role's lease condition currently holds:
	// fresh majority acks for a leader, fresh leader contact for a
	// follower.
	LeaseOK bool `json:"leaseOK"`
	// LeaseMS is the age of that evidence in milliseconds (-1 = none yet).
	LeaseMS     int64 `json:"leaseMillis"`
	Promotions  int64 `json:"promotions"`
	Depositions int64 `json:"depositions"`
	Elections   int64 `json:"elections"`
	// LastFailover is the most recent role transition (nil before any).
	LastFailover *FailoverEvent `json:"lastFailover,omitempty"`
}

// Node is one member of a self-healing replica group. It owns a durable
// store (via its Follower), serves the replication listener whatever its
// role, and switches between tailing and leading as elections dictate.
type Node struct {
	opts NodeOptions
	fl   *Follower
	ld   *Leader

	// role is RoleFollower or RoleLeader (atomic string via int).
	isLeader atomic.Bool
	// deposedBy is the highest epoch ever observed above our own — a
	// leader steps down when it outranks the epoch it leads under.
	deposedBy atomic.Uint64
	// lastQuorum is the unix-nano stamp of the last majority-ack
	// observation while leading (the leader-side lease evidence).
	lastQuorum atomic.Int64

	promotions   atomic.Int64
	depositions  atomic.Int64
	elections    atomic.Int64
	lastFailover atomic.Value // *FailoverEvent
	started      time.Time
	rr           atomic.Int64 // round-robin cursor for leaderless discovery

	wg sync.WaitGroup
}

// OpenNode opens (or recovers) the member's durable store in dir. Serve and
// Run bring it into the group; until an election concludes it follows.
func OpenNode(dir string, opts NodeOptions) (*Node, error) {
	if opts.Self == "" {
		return nil, errors.New("replication: NodeOptions.Self is required")
	}
	if opts.Lease <= 0 {
		opts.Lease = 3 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = opts.Lease / 3
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	n := &Node{opts: opts, started: time.Now()}
	fl, err := OpenFollower(dir, FollowerOptions{
		LeaderFunc: n.resolveLeader,
		ID:         opts.Self,
		API:        opts.API,
		SyncEvery:  opts.SyncEvery,
		AckEvery:   opts.AckEvery,
		Backoff:    opts.Backoff,
		Logger:     opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	n.fl = fl
	n.ld = NewLeader(fl.Store(), LeaderOptions{
		Heartbeat:     opts.Lease / 6,
		OnHigherEpoch: n.observeHigherEpoch,
		API:           opts.API,
		Logger:        opts.Logger,
	})
	return n, nil
}

// Follower returns the node's tailing half — the serving tier wires its
// locks, swap and mutation observers through it exactly as it would for a
// standalone follower.
func (n *Node) Follower() *Follower { return n.fl }

// Leader returns the node's serving half (live only while leading, but
// always safe to query for counters).
func (n *Node) Leader() *Leader { return n.ld }

// Store returns the node's durable store.
func (n *Node) Store() *persist.Store { return n.fl.Store() }

// Close releases the local store. Call after Run and Serve have returned.
func (n *Node) Close() error { return n.fl.Close() }

// IsLeader reports whether this node currently holds the leader role. The
// authoritative write barrier is Commit — a deposed leader may see true
// here for up to a lease tick, but can never get a Commit acknowledged.
func (n *Node) IsLeader() bool { return n.isLeader.Load() }

// Epoch returns the node's durable replication epoch.
func (n *Node) Epoch() uint64 { return n.Store().Epoch() }

// LeaderHint returns the current belief of who leads (self when leading).
func (n *Node) LeaderHint() (addr, apiAddr string) {
	if n.IsLeader() {
		return n.opts.Self, n.opts.API
	}
	return n.fl.LeaderHint()
}

// Status snapshots the node's failover state.
func (n *Node) Status() NodeStatus {
	st := NodeStatus{
		Addr:        n.opts.Self,
		Role:        RoleFollower,
		Epoch:       n.Store().Epoch(),
		Seq:         n.Store().Seq(),
		Promotions:  n.promotions.Load(),
		Depositions: n.depositions.Load(),
		Elections:   n.elections.Load(),
		LeaseMS:     -1,
	}
	st.LeaderAddr, st.LeaderAPI = n.LeaderHint()
	if ev, ok := n.lastFailover.Load().(*FailoverEvent); ok {
		st.LastFailover = ev
	}
	if n.IsLeader() {
		st.Role = RoleLeader
		if q := n.lastQuorum.Load(); q > 0 {
			age := time.Since(time.Unix(0, q))
			st.LeaseMS = age.Milliseconds()
			st.LeaseOK = age <= n.opts.Lease
		}
		return st
	}
	if last := n.fl.LastContact(); !last.IsZero() {
		age := time.Since(last)
		st.LeaseMS = age.Milliseconds()
		st.LeaseOK = age <= n.opts.Lease
	}
	return st
}

// peerList is the current roster minus self, deduplicated and sorted (the
// sort makes election tiebreaks independent of configuration order).
func (n *Node) peerList() []string {
	src := n.opts.Peers
	if n.opts.PeersFunc != nil {
		src = n.opts.PeersFunc()
	}
	seen := map[string]bool{n.opts.Self: true}
	var out []string
	for _, p := range src {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// majority of the current group (peers + self).
func (n *Node) majority() int { return (len(n.peerList())+1)/2 + 1 }

// resolveLeader picks the next dial target for the tailing side: the
// current hint when one exists, otherwise peers in round-robin until one of
// them streams or redirects.
func (n *Node) resolveLeader() (string, error) {
	if hint, _ := n.fl.LeaderHint(); hint != "" && hint != n.opts.Self {
		return hint, nil
	}
	peers := n.peerList()
	if len(peers) == 0 {
		return "", errors.New("replication: no peers to discover a leader from")
	}
	return peers[int(n.rr.Add(1))%len(peers)], nil
}

// observeHigherEpoch is the leader's deposition signal: some member fenced
// an epoch above ours, so our authority is gone the moment we notice.
func (n *Node) observeHigherEpoch(epoch uint64) {
	for {
		cur := n.deposedBy.Load()
		if epoch <= cur || n.deposedBy.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Serve answers the node's replication listener until ctx is cancelled:
// probes and fence requests whatever the role, streams while leading,
// not-a-leader redirects otherwise.
func (n *Node) Serve(ctx context.Context, ln net.Listener) error {
	n.ld.addr.Store(ln.Addr().String())
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	defer n.wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("replication: accept: %w", err)
		}
		if ferr := faultinject.FireErr(faultinject.SiteReplAccept); ferr != nil {
			conn.Close()
			continue
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			stopConn := context.AfterFunc(ctx, func() { conn.Close() })
			defer stopConn()
			defer conn.Close()
			if err := n.handleConn(ctx, conn); err != nil && ctx.Err() == nil {
				n.opts.Logger.Debug("replica-group connection ended",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
		}()
	}
}

// handleConn routes one inbound connection by its request shape.
func (n *Node) handleConn(ctx context.Context, conn net.Conn) error {
	req, br, err := readRequest(conn, n.ld.opts.RequestTimeout)
	if err != nil {
		return err
	}
	if req.Probe || req.Fence > 0 {
		return n.answerProbe(conn, req)
	}
	if !n.IsLeader() {
		leader, leaderAPI := n.LeaderHint()
		hb, err := json.Marshal(hello{
			Epoch: n.Store().Epoch(), NotLeader: true,
			Leader: leader, LeaderAPI: leaderAPI,
		})
		if err != nil {
			return err
		}
		return n.ld.send(conn, msgHello, hb)
	}
	n.ld.accepted.Add(1)
	n.ld.connected.Add(1)
	defer n.ld.connected.Add(-1)
	// Fence the stream to this leadership: a step-down or a newer durable
	// epoch kills every open follower connection, so followers lose
	// contact, notice, and go find (or become) the real leader instead of
	// tailing a deposed one indefinitely.
	epoch := n.Store().Epoch()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		every := n.opts.Lease / 8
		if every < 5*time.Millisecond {
			every = 5 * time.Millisecond
		}
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-watchDone:
				return
			case <-tick.C:
				if !n.IsLeader() || n.Store().Epoch() != epoch {
					conn.Close()
					return
				}
			}
		}
	}()
	return n.ld.serveStream(ctx, conn, br, req)
}

// answerProbe replies one PeerStatus to a probe or fence request. A fence
// request is the binding half of an election: granting it durably moves
// this node into the candidate's epoch, which simultaneously (a) commits
// this node to refuse the old leader's stream and acks, and (b) promises
// the candidate that this node's log is a prefix of the new history.
func (n *Node) answerProbe(conn net.Conn, req request) error {
	st := PeerStatus{
		Addr:      n.opts.Self,
		Role:      RoleFollower,
		Epoch:     n.Store().Epoch(),
		LastEpoch: n.Store().LastEpoch(),
		Seq:       n.Store().Seq(),
	}
	st.LeaderAddr, st.LeaderAPI = n.LeaderHint()
	if n.IsLeader() {
		st.Role = RoleLeader
		st.LeaderFreshMS = 0
	} else if last := n.fl.LastContact(); last.IsZero() {
		st.LeaderFreshMS = -1
	} else {
		st.LeaderFreshMS = time.Since(last).Milliseconds()
	}
	if req.Fence > 0 {
		staleLeader := st.Role != RoleLeader &&
			(st.LeaderFreshMS < 0 || st.LeaderFreshMS > n.opts.Lease.Milliseconds())
		// The candidate's history must be at least as up to date as ours,
		// compared by (epoch of newest fact, seq) — seq alone would let a
		// candidate whose equal-length tail was written under an older,
		// fenced-off epoch orphan an acknowledged fact.
		upToDate := req.LastEpoch > st.LastEpoch ||
			(req.LastEpoch == st.LastEpoch && req.FenceStart >= st.Seq)
		if req.Fence > st.Epoch && staleLeader && upToDate {
			// Re-evaluate the history comparison atomically with the mark:
			// between the snapshot above and here a streamed frame may have
			// advanced (and acked!) our seq, or a competing fence may have
			// raised our epoch. The grant must hold against the state the
			// old leader could still be counting acks from.
			granted, err := n.fl.grantFence(persist.EpochMark{
				Epoch: req.Fence, StartSeq: req.FenceStart,
			}, func(seq int64, epoch, lastEpoch uint64) bool {
				return req.Fence > epoch &&
					(req.LastEpoch > lastEpoch ||
						(req.LastEpoch == lastEpoch && req.FenceStart >= seq))
			})
			if granted && err == nil {
				st.Granted = true
				st.Epoch = req.Fence
				// Adopt the candidate as the leader to dial next: it wins
				// or nobody does, and a wrong hint just costs a redirect.
				if req.ID != "" {
					n.fl.setLeaderHint(req.ID, req.API)
				}
				n.opts.Logger.Info("fence granted",
					"epoch", req.Fence, "startSeq", req.FenceStart, "candidate", req.ID)
			}
		}
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return n.ld.send(conn, msgStatus, payload)
}

// probePeers sends req to every peer in parallel and collects the replies
// that arrive within ProbeTimeout. Unreachable peers are simply absent.
func (n *Node) probePeers(peers []string, req request) []PeerStatus {
	out := make([]PeerStatus, 0, len(peers))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			st, err := probeOne(peer, req, n.opts.ProbeTimeout)
			if err != nil {
				return
			}
			mu.Lock()
			out = append(out, st)
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	return out
}

// probeOne performs one probe round-trip.
func probeOne(addr string, req request, timeout time.Duration) (PeerStatus, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return PeerStatus{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	line, err := json.Marshal(req)
	if err != nil {
		return PeerStatus{}, err
	}
	if _, err := conn.Write(append(line, '\n')); err != nil {
		return PeerStatus{}, err
	}
	typ, payload, err := readMsg(conn)
	if err != nil {
		return PeerStatus{}, err
	}
	if typ != msgStatus {
		return PeerStatus{}, fmt.Errorf("replication: expected status, got %q", typ)
	}
	var st PeerStatus
	if err := decodeJSON(payload, &st); err != nil {
		return PeerStatus{}, err
	}
	return st, nil
}

// elect runs one election round and reports whether this node promoted.
//
// Round 1 (non-binding): probe the group. Abort unless a majority is
// reachable, nobody still hears a live leader, and this node is the
// deterministic candidate — highest applied seq, lowest address tiebreak.
// Round 2 (binding): ask every peer to durably fence into maxEpoch+1 at
// our sequence number; majority grants promote.
func (n *Node) elect() bool {
	n.elections.Add(1)
	peers := n.peerList()
	maj := n.majority()
	mySeq, myEpoch, myLast := n.Store().Seq(), n.Store().Epoch(), n.Store().LastEpoch()

	sts := n.probePeers(peers, request{
		Probe: true, ID: n.opts.Self, Seq: mySeq, Epoch: myEpoch, LastEpoch: myLast,
	})
	if 1+len(sts) < maj {
		n.opts.Logger.Debug("election aborted: no quorum reachable",
			"reachable", 1+len(sts), "majority", maj)
		return false
	}
	// The deterministic candidate: the reachable member with the most
	// up-to-date history — highest (epoch of newest fact, seq), lowest
	// address breaking exact ties. Seq alone is not enough: after a
	// failover, a revenant ex-leader's unacknowledged divergent tail can
	// match the acknowledged history's length while holding different
	// facts; the fact-bearing epoch disambiguates.
	maxEpoch := myEpoch
	bestLast, bestSeq, bestAddr := myLast, mySeq, n.opts.Self
	better := func(le uint64, seq int64, addr string) bool {
		if le != bestLast {
			return le > bestLast
		}
		if seq != bestSeq {
			return seq > bestSeq
		}
		return addr < bestAddr
	}
	for _, st := range sts {
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
		if st.Role == RoleLeader {
			// A peer that still believes it leads does not veto the
			// election — a live-but-mute leader must be replaceable — and
			// is not a candidate either (it will not run an election).
			// Promotion fences it out; any leader-only log tail it holds
			// is by definition unacknowledged and is truncated on rejoin.
			continue
		}
		if st.LeaderFreshMS >= 0 && st.LeaderFreshMS <= n.opts.Lease.Milliseconds() {
			// A follower with fresh leader contact is evidence the leader
			// is healthy and we are the partitioned ones. Stand down.
			n.opts.Logger.Debug("election aborted: peer still hears the leader",
				"peer", st.Addr, "freshMillis", st.LeaderFreshMS)
			return false
		}
		if better(st.LastEpoch, st.Seq, st.Addr) {
			bestLast, bestSeq, bestAddr = st.LastEpoch, st.Seq, st.Addr
		}
	}
	if bestAddr != n.opts.Self {
		n.opts.Logger.Debug("election deferred to better candidate",
			"candidate", bestAddr, "candidateSeq", bestSeq, "selfSeq", mySeq)
		return false
	}

	// The promotion-race window: hooks here hold the candidate between
	// deciding and fencing, so tests can land competing fences in between.
	faultinject.Fire(faultinject.SiteReplPromote)

	fence := maxEpoch + 1
	grants := 0
	for _, st := range n.probePeers(peers, request{
		Fence: fence, FenceStart: mySeq,
		ID: n.opts.Self, API: n.opts.API, Seq: mySeq, Epoch: myEpoch, LastEpoch: myLast,
	}) {
		if st.Granted {
			grants++
		}
	}
	if 1+grants < maj {
		n.opts.Logger.Debug("election lost: not enough fence grants",
			"grants", grants, "majority", maj, "epoch", fence)
		return false
	}
	// The local mark goes through the same seqMu-serialized path as peer
	// grants: a frame our own live stream applies concurrently must not
	// straddle it. RecordEpoch clamps StartSeq up to the applied seq, so
	// records adopted between round 2 and here stay attributed to the epoch
	// that actually wrote them.
	if _, err := n.fl.grantFence(persist.EpochMark{Epoch: fence, StartSeq: mySeq}, nil); err != nil {
		// A competing fence landed locally between rounds; our epoch is
		// gone. The grants we collected fence peers into our epoch number,
		// but without the local mark we must not lead.
		n.opts.Logger.Debug("election lost: local fence refused", "err", err)
		return false
	}
	n.opts.Logger.Info("promoted", "epoch", fence, "startSeq", mySeq, "grants", grants)
	return true
}

// Run operates the node's role state machine until ctx is cancelled:
// follow → (lease expiry) → elect → lead → (lease loss or deposition) →
// follow → ...
func (n *Node) Run(ctx context.Context) error {
	n.transition(RoleFollower, "startup")
	for ctx.Err() == nil {
		if n.IsLeader() {
			cause := n.runLeader(ctx)
			if ctx.Err() != nil {
				break
			}
			n.transition(RoleFollower, cause)
			continue
		}
		if n.runFollower(ctx) && ctx.Err() == nil && n.elect() {
			n.transition(RoleLeader, "promoted")
		}
	}
	return ctx.Err()
}

// transition records a role change and notifies observers.
func (n *Node) transition(role, cause string) {
	wasLeader := n.isLeader.Swap(role == RoleLeader)
	if role == RoleLeader {
		n.lastQuorum.Store(time.Now().UnixNano())
		n.promotions.Add(1)
	} else if wasLeader {
		n.depositions.Add(1)
	}
	ev := &FailoverEvent{At: time.Now(), Role: role, Cause: cause, Epoch: n.Store().Epoch()}
	n.lastFailover.Store(ev)
	n.opts.Logger.Info("role transition", "role", role, "cause", cause, "epoch", ev.Epoch)
	if n.opts.OnRoleChange != nil {
		n.opts.OnRoleChange(role, ev.Epoch)
	}
}

// runFollower tails the current leader while watching the lease. It
// returns true when the lease expired (the caller should elect), false
// when ctx ended.
func (n *Node) runFollower(ctx context.Context) (leaseExpired bool) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = n.fl.Run(sctx)
	}()
	since := func() time.Duration {
		if last := n.fl.LastContact(); !last.IsZero() {
			return time.Since(last)
		}
		return time.Since(n.started)
	}
	tick := time.NewTicker(n.opts.Lease / 4)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			<-done
			return false
		case <-done:
			return false
		case <-tick.C:
			if since() > n.opts.Lease {
				// Silence past the lease: stop tailing and let the caller
				// run an election.
				cancel()
				<-done
				return true
			}
		}
	}
}

// runLeader serves writes until the lease collapses or a higher epoch
// appears, returning the step-down cause. The lease condition mirrors
// Commit's barrier: majority-1 followers must have acked at the current
// epoch within the lease window (a single-node group renews trivially).
func (n *Node) runLeader(ctx context.Context) (cause string) {
	epoch := n.Store().Epoch()
	n.lastQuorum.Store(time.Now().UnixNano())
	tick := time.NewTicker(n.opts.Lease / 4)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return "shutdown"
		case <-tick.C:
		}
		if d := n.deposedBy.Load(); d > epoch {
			return "deposed"
		}
		if n.Store().Epoch() != epoch {
			// The local store fenced a newer epoch under us (a granted
			// fence while we thought we led).
			return "deposed"
		}
		if ferr := faultinject.FireErr(faultinject.SiteReplLease); ferr != nil {
			return "lease_expired"
		}
		if n.ld.AckedAtLeast(0, epoch, n.opts.Lease) >= n.majority()-1 {
			n.lastQuorum.Store(time.Now().UnixNano())
		}
		if time.Since(time.Unix(0, n.lastQuorum.Load())) > n.opts.Lease {
			return "lease_expired"
		}
	}
}

// Commit is the group write barrier: it makes everything up to the current
// sequence number durable on a majority at the current epoch, or refuses.
// Callers acknowledge a write if and only if Commit returns nil — that is
// the whole no-acked-fact-loss invariant.
func (n *Node) Commit(ctx context.Context) error {
	if !n.IsLeader() {
		return ErrNotLeader
	}
	epoch := n.Store().Epoch()
	seq := n.Store().Seq()
	if err := n.Store().Sync(); err != nil {
		return err
	}
	need := n.majority() - 1
	for {
		if n.deposedBy.Load() > epoch || n.Store().Epoch() != epoch || !n.IsLeader() {
			return ErrStaleEpoch
		}
		if n.ld.AckedAtLeast(seq, epoch, n.opts.Lease) >= need {
			// Re-check after counting: a deposition between the count and
			// the acknowledgement would let a dual-epoch ack slip out.
			if n.deposedBy.Load() > epoch || n.Store().Epoch() != epoch || !n.IsLeader() {
				return ErrStaleEpoch
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("replication: commit quorum: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}
