package backoff

import (
	"math/rand"
	"testing"
	"time"
)

// Without jitter the policy is the plain capped doubling ladder.
func TestDeterministicLadder(t *testing.T) {
	p := Policy{Base: time.Millisecond, Max: 50 * time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 16 * time.Millisecond, 32 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond,
	}
	for i, w := range want {
		if d := p.Delay(i); d != w {
			t.Errorf("Delay(%d) = %v, want %v", i, d, w)
		}
	}
}

// Jittered delays stay inside [d*(1-Jitter), d] for the capped ladder, and a
// seeded source actually spreads them (not every draw identical).
func TestJitterBounds(t *testing.T) {
	p := Policy{
		Base:   time.Millisecond,
		Max:    100 * time.Millisecond,
		Jitter: 0.5,
		Rand:   rand.New(rand.NewSource(42)),
	}
	distinct := map[time.Duration]bool{}
	for attempt := 0; attempt < 10; attempt++ {
		ceil := time.Millisecond << attempt
		if ceil > p.Max {
			ceil = p.Max
		}
		floor := ceil / 2
		for i := 0; i < 50; i++ {
			d := p.Delay(attempt)
			if d < floor || d > ceil {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", attempt, d, floor, ceil)
			}
			distinct[d] = true
		}
	}
	if len(distinct) < 10 {
		t.Errorf("jitter produced only %d distinct delays over 500 draws", len(distinct))
	}
}

// Out-of-range jitter fractions clamp instead of panicking or going
// negative.
func TestJitterClamped(t *testing.T) {
	for _, j := range []float64{-1, 2} {
		p := Policy{Base: 10 * time.Millisecond, Max: 10 * time.Millisecond, Jitter: j,
			Rand: rand.New(rand.NewSource(1))}
		d := p.Delay(3)
		if d < 0 || d > 10*time.Millisecond {
			t.Errorf("Jitter=%v: Delay = %v outside [0, 10ms]", j, d)
		}
	}
}

// A zero/negative base never sleeps negative.
func TestZeroBase(t *testing.T) {
	p := Policy{}
	if d := p.Delay(5); d != 0 {
		t.Errorf("zero policy Delay = %v, want 0", d)
	}
}

// Huge attempt counts don't overflow into negative delays.
func TestLargeAttemptNoOverflow(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute}
	if d := p.Delay(500); d != time.Minute {
		t.Errorf("Delay(500) = %v, want %v", d, time.Minute)
	}
}
