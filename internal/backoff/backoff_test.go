package backoff

import (
	"math/rand"
	"testing"
	"time"
)

// Without jitter the policy is the plain capped doubling ladder.
func TestDeterministicLadder(t *testing.T) {
	p := Policy{Base: time.Millisecond, Max: 50 * time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 16 * time.Millisecond, 32 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond,
	}
	for i, w := range want {
		if d := p.Delay(i); d != w {
			t.Errorf("Delay(%d) = %v, want %v", i, d, w)
		}
	}
}

// Jittered delays stay inside [d*(1-Jitter), d] for the capped ladder, and a
// seeded source actually spreads them (not every draw identical).
func TestJitterBounds(t *testing.T) {
	p := Policy{
		Base:   time.Millisecond,
		Max:    100 * time.Millisecond,
		Jitter: 0.5,
		Rand:   rand.New(rand.NewSource(42)),
	}
	distinct := map[time.Duration]bool{}
	for attempt := 0; attempt < 10; attempt++ {
		ceil := time.Millisecond << attempt
		if ceil > p.Max {
			ceil = p.Max
		}
		floor := ceil / 2
		for i := 0; i < 50; i++ {
			d := p.Delay(attempt)
			if d < floor || d > ceil {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", attempt, d, floor, ceil)
			}
			distinct[d] = true
		}
	}
	if len(distinct) < 10 {
		t.Errorf("jitter produced only %d distinct delays over 500 draws", len(distinct))
	}
}

// Out-of-range jitter fractions clamp instead of panicking or going
// negative.
func TestJitterClamped(t *testing.T) {
	for _, j := range []float64{-1, 2} {
		p := Policy{Base: 10 * time.Millisecond, Max: 10 * time.Millisecond, Jitter: j,
			Rand: rand.New(rand.NewSource(1))}
		d := p.Delay(3)
		if d < 0 || d > 10*time.Millisecond {
			t.Errorf("Jitter=%v: Delay = %v outside [0, 10ms]", j, d)
		}
	}
}

// A zero/negative base never sleeps negative.
func TestZeroBase(t *testing.T) {
	p := Policy{}
	if d := p.Delay(5); d != 0 {
		t.Errorf("zero policy Delay = %v, want 0", d)
	}
}

// Huge attempt counts don't overflow into negative delays.
func TestLargeAttemptNoOverflow(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute}
	if d := p.Delay(500); d != time.Minute {
		t.Errorf("Delay(500) = %v, want %v", d, time.Minute)
	}
}

// Property: for every jitter fraction, base/max combination and attempt
// count, the delay stays inside [ceil*(1-jitter), ceil] where ceil is the
// capped deterministic ladder value. This is the contract the replication
// reconnect tests rely on (their assertion is [ceil/2, ceil] at Jitter 0.5).
func TestJitterLadderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		base := time.Duration(1+rng.Intn(1000)) * time.Millisecond
		max := base * time.Duration(1+rng.Intn(64))
		jitter := rng.Float64()
		p := Policy{Base: base, Max: max, Jitter: jitter, Rand: rng}
		for attempt := 0; attempt < 20; attempt++ {
			ceil := base
			for i := 0; i < attempt && ceil < max; i++ {
				ceil *= 2
			}
			if ceil > max {
				ceil = max
			}
			// The floor tolerates the window's integer truncation: the
			// implementation draws from [0, floor(ceil*jitter)].
			floor := ceil - time.Duration(float64(ceil)*jitter)
			d := p.Delay(attempt)
			if d < floor || d > ceil {
				t.Fatalf("trial %d: Delay(%d) = %v outside [%v, %v] (base %v max %v jitter %v)",
					trial, attempt, d, floor, ceil, base, max, jitter)
			}
		}
	}
}

// A Retrier climbs the ladder failure by failure and Reset starts it over —
// the after-success contract the reconnect loops depend on.
func TestRetrierResetAfterSuccess(t *testing.T) {
	r := Retrier{Policy: Policy{Base: time.Millisecond, Max: 8 * time.Millisecond}}
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, w := range want {
		if r.Attempt() != i {
			t.Fatalf("Attempt = %d before call %d", r.Attempt(), i)
		}
		if d := r.Next(); d != w {
			t.Fatalf("Next() #%d = %v, want %v", i, d, w)
		}
	}
	r.Reset()
	if r.Attempt() != 0 {
		t.Fatalf("Attempt after Reset = %d, want 0", r.Attempt())
	}
	if d := r.Next(); d != time.Millisecond {
		t.Fatalf("Next after Reset = %v, want %v (ladder must restart)", d, time.Millisecond)
	}
}

// Retrier with jitter stays within the per-attempt bounds across a
// fail/succeed/fail schedule — the bounds restart with the ladder.
func TestRetrierJitterBoundsAcrossReset(t *testing.T) {
	r := Retrier{Policy: Policy{
		Base: time.Millisecond, Max: 16 * time.Millisecond, Jitter: 0.5,
		Rand: rand.New(rand.NewSource(99)),
	}}
	check := func(attempt int) {
		ceil := time.Millisecond << attempt
		if ceil > 16*time.Millisecond {
			ceil = 16 * time.Millisecond
		}
		d := r.Next()
		if d < ceil/2 || d > ceil {
			t.Fatalf("attempt %d: %v outside [%v, %v]", attempt, d, ceil/2, ceil)
		}
	}
	for attempt := 0; attempt < 8; attempt++ {
		check(attempt)
	}
	r.Reset()
	for attempt := 0; attempt < 8; attempt++ {
		check(attempt)
	}
}
