// Package backoff is the shared retry-delay policy: capped exponential
// backoff with bounded random jitter.
//
// It exists because two different retry loops — the ETL input-stream reader
// and the replication follower's reconnect loop — must not share a
// deterministic delay ladder. A fleet of followers that all lose their
// leader at the same instant and all sleep exactly 1ms, 2ms, 4ms, ... will
// all reconnect at the same instant too, hammering the recovering leader in
// synchronized waves (the thundering herd). Jitter decorrelates them; the
// cap keeps the worst-case wait bounded and the base keeps the common case
// fast.
package backoff

import (
	"math/rand"
	"time"
)

// Policy computes the delay before retry attempt n (0-based: Delay(0) is the
// wait after the first failure). The zero Policy is not usable; fill Base
// and Max.
type Policy struct {
	// Base is the delay after the first failure; each further failure
	// doubles it.
	Base time.Duration
	// Max caps the doubled delay (before jitter is applied).
	Max time.Duration
	// Jitter is the fraction of the capped delay that is randomized:
	// the returned delay is uniform in [d*(1-Jitter), d]. 0 means fully
	// deterministic; 0.5 spreads a synchronized herd over half the window.
	// Values outside [0, 1] are clamped.
	Jitter float64

	// Rand supplies the jitter randomness; nil uses the global source.
	// Tests inject a seeded *rand.Rand for reproducible schedules.
	Rand *rand.Rand
}

// Delay returns the wait before retry attempt n. It is safe for concurrent
// use only when Rand is nil (the global source locks internally).
func (p Policy) Delay(attempt int) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if d <= 0 {
		return 0
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	} else if j > 1 {
		j = 1
	}
	if j == 0 {
		return d
	}
	window := time.Duration(float64(d) * j)
	if window <= 0 {
		return d
	}
	var off time.Duration
	if p.Rand != nil {
		off = time.Duration(p.Rand.Int63n(int64(window) + 1))
	} else {
		off = time.Duration(rand.Int63n(int64(window) + 1))
	}
	return d - off
}

// Retrier is the stateful wrapper around a Policy that retry loops share:
// Next returns the delay for the current failure and advances the ladder;
// Reset (called after a success) starts the ladder over, so one long outage
// does not poison the delay of the next brief one. Not safe for concurrent
// use — each loop owns its own Retrier.
type Retrier struct {
	Policy  Policy
	attempt int
}

// Next returns the delay to sleep after the latest failure and advances to
// the next rung. The first call after construction or Reset returns
// Policy.Delay(0).
func (r *Retrier) Next() time.Duration {
	d := r.Policy.Delay(r.attempt)
	if r.attempt < 63 { // the ladder is capped far earlier; avoid overflow
		r.attempt++
	}
	return d
}

// Attempt returns how many times Next has been called since the last Reset.
func (r *Retrier) Attempt() int { return r.attempt }

// Reset starts the ladder over after a success.
func (r *Retrier) Reset() { r.attempt = 0 }
