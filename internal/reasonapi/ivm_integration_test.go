package reasonapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/relstore"
	"vadalink/internal/whatif"
)

func TestMinAggDeltaResolution(t *testing.T) {
	cases := []struct {
		cfg  float64
		want float64
	}{
		{0, whatif.DefaultMinAggDelta}, // default: the paper-scale step
		{0.01, 0.01},                   // explicit override wins
		{-1, 0},                        // negative: engine exact default
	}
	for _, tc := range cases {
		if got := (Config{MinAggDelta: tc.cfg}).minAggDelta(); got != tc.want {
			t.Errorf("Config{MinAggDelta: %v}.minAggDelta() = %v, want %v", tc.cfg, got, tc.want)
		}
	}
}

// cyclicOwnershipGraph builds the ε-pathological shape: a mutual-holding
// pair (B and C own 90% of each other) jointly holding a subsidiary D. The
// accown fixpoint for accown(B, D) / accown(C, D) is the limit of a
// geometric series with ratio 0.9, so the chase runs until the per-round
// improvement drops below the aggregate convergence step ε — that is,
// Θ(log(1/ε)/−log(0.9)) semi-naive rounds. A plain ring would not do: the
// X != Y guards in the accown rules cut every cycle through the source or
// target, so rings converge in O(n) rounds regardless of ε.
func cyclicOwnershipGraph(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.New()
	ids := make([]pg.NodeID, 4)
	for i := range ids {
		ids[i] = g.AddNode(pg.LabelCompany, pg.Properties{"name": fmt.Sprintf("C%d", i)})
	}
	a, b, c, d := ids[0], ids[1], ids[2], ids[3]
	for _, e := range []struct {
		from, to pg.NodeID
		w        float64
	}{{a, b, 0.05}, {b, c, 0.9}, {c, b, 0.9}, {b, d, 0.05}, {c, d, 0.05}} {
		if _, err := g.AddShare(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// chaseRounds runs the maintenance chase over g with the server's engine
// options and reports how many semi-naive rounds it took.
func chaseRounds(t *testing.T, g *pg.Graph, s *Server) int {
	t.Helper()
	prog, err := datalog.Parse(whatif.MaintenanceProgram())
	if err != nil {
		t.Fatal(err)
	}
	e, err := datalog.NewEngine(prog, s.engineOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(relstore.CompanyGraphFacts(g))
	for _, id := range g.Nodes() {
		e.Assert(datalog.Fact{Pred: "affected", Args: []any{int64(id)}})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st == nil {
		t.Fatal("engine options lost WithStats")
	}
	return st.Rounds
}

// TestMinAggDeltaGovernsCyclicChase is the regression test for the
// aggregate-epsilon bug: the server used to run every chase at the engine's
// exact-convergence default (1e-9), which on cyclic ownership graphs costs
// −log(ε)/−log(cycle gain) semi-naive rounds — minutes instead of seconds on
// registry-scale cycles. The default configuration must chase at the paper's
// 1e-4 step, and a caller asking for exactness (negative MinAggDelta) must
// pay measurably more rounds on the same graph.
func TestMinAggDeltaGovernsCyclicChase(t *testing.T) {
	g := cyclicOwnershipGraph(t)
	def := NewServerWith(g.Clone(), Config{})
	exact := NewServerWith(g.Clone(), Config{MinAggDelta: -1})

	defRounds := chaseRounds(t, g, def)
	exactRounds := chaseRounds(t, g, exact)
	if defRounds >= exactRounds {
		t.Fatalf("default ε chase took %d rounds, exact ε took %d — config is not reaching the engine",
			defRounds, exactRounds)
	}
	// At gain 0.9 the ε=1e-4 fixpoint lands near 60 rounds and ε=1e-9 near
	// 170; a generous bound keeps the test insensitive to engine detail
	// while still catching a silently dropped option.
	if defRounds > 100 {
		t.Errorf("default ε chase took %d rounds, want well under the exact-ε cost", defRounds)
	}
}

// TestCommitsMaintainWhatifBaseline exercises the serving-tier loop: the
// first what-if seeds the maintainer, committed shareholding mutations are
// maintained incrementally (no full re-chase), irrelevant commits are
// skipped, and /v1/metrics reports the counters.
func TestCommitsMaintainWhatifBaseline(t *testing.T) {
	srv, s, alpha, beta := acquisitionServer(t)
	ctx := context.Background()

	// First what-if: computes the full baseline and seeds the maintainer.
	body := fmt.Sprintf(`{"ops":[{"op":"addShare","from":%d,"to":%d,"w":0.30}]}`, alpha, beta)
	if resp, raw := postJSON(t, srv.URL+"/v1/whatif", body); resp.StatusCode != 200 {
		t.Fatalf("whatif status %d: %v", resp.StatusCode, raw)
	}
	if st := s.ivmM.Stats(); st.FullRebuilds != 1 || !st.Valid {
		t.Fatalf("after first whatif: stats = %+v, want one full rebuild, valid", st)
	}

	// A committed shareholding change is maintained incrementally and the
	// maintained baseline serves the next what-if at the new version.
	txn := s.vs.Begin()
	if _, err := txn.Overlay().AddShare(alpha, beta, 0.30); err != nil {
		t.Fatal(err)
	}
	ver, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	st := s.ivmM.Stats()
	if st.IncrementalCommits != 1 || st.FullRebuilds != 1 {
		t.Fatalf("after commit: stats = %+v, want 1 incremental commit, still 1 full rebuild", st)
	}
	bl := s.ivmM.Baseline(ver.Seq(), whatif.DefaultThreshold)
	if bl == nil {
		t.Fatal("maintainer lost the baseline across the commit")
	}
	// Alpha now holds 55% of Beta: control must be maintained into the
	// baseline without a re-chase, and it must equal the oracle.
	if !bl.Control[whatif.Pair{alpha, beta}] {
		t.Fatalf("maintained baseline misses control(alpha, beta): %v", bl.Control)
	}
	oracle, err := whatif.ComputeBaseline(ctx, ver.View(), whatif.DefaultThreshold, s.engineOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(bl.Control) != len(oracle.Control) || len(bl.CloseLink) != len(oracle.CloseLink) {
		t.Fatalf("maintained baseline diverged: control %v vs %v, closelink %v vs %v",
			bl.Control, oracle.Control, bl.CloseLink, oracle.CloseLink)
	}

	// The what-if path serves the maintained baseline (no recompute, no new
	// rebuild) at the committed version. Beta's incoming shares now total
	// 0.95, so this hypothetical tops it up rather than re-adding 0.30.
	body = fmt.Sprintf(`{"ops":[{"op":"addShare","from":%d,"to":%d,"w":0.05}]}`, alpha, beta)
	if resp, raw := postJSON(t, srv.URL+"/v1/whatif", body); resp.StatusCode != 200 {
		t.Fatalf("whatif status %d: %v", resp.StatusCode, raw)
	}
	if st := s.ivmM.Stats(); st.FullRebuilds != 1 {
		t.Fatalf("whatif after commit re-chased: stats = %+v", st)
	}

	// An augmentation run commits only derived-link edges — the maintainer
	// skips it without any chase.
	if resp, raw := postJSON(t, srv.URL+"/v1/augment", `{"classes":["family"],"noCluster":true}`); resp.StatusCode != 200 {
		t.Fatalf("augment status %d: %v", resp.StatusCode, raw)
	}
	st = s.ivmM.Stats()
	if st.SkippedCommits == 0 {
		t.Fatalf("augment commit was not skipped: %+v", st)
	}

	// Metrics surface the counter set.
	var m struct {
		Incremental *struct {
			IncrementalCommits int64 `json:"incrementalCommits"`
			SkippedCommits     int64 `json:"skippedCommits"`
			FullRebuilds       int64 `json:"fullRebuilds"`
			Valid              bool  `json:"valid"`
		} `json:"incremental"`
	}
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Incremental == nil || m.Incremental.IncrementalCommits != 1 ||
		m.Incremental.SkippedCommits == 0 || !m.Incremental.Valid {
		t.Fatalf("metrics incremental = %+v, want maintained counters", m.Incremental)
	}
}

// TestDisableIVM keeps the pre-maintenance behavior reachable.
func TestDisableIVM(t *testing.T) {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	if _, err := g.AddShare(a, b, 0.6); err != nil {
		t.Fatal(err)
	}
	s := NewServerWith(g, Config{DisableIVM: true})
	if s.ivmM != nil {
		t.Fatal("DisableIVM still constructed a maintainer")
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := fmt.Sprintf(`{"ops":[{"op":"addShare","from":%d,"to":%d,"w":0.1}]}`, a, b)
	if resp, raw := postJSON(t, srv.URL+"/v1/whatif", body); resp.StatusCode != 200 {
		t.Fatalf("whatif status %d: %v", resp.StatusCode, raw)
	}
	var m struct {
		Incremental any `json:"incremental"`
	}
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Incremental != nil {
		t.Fatalf("metrics reported incremental stats with IVM disabled: %v", m.Incremental)
	}
}
