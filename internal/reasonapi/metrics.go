package reasonapi

import (
	"expvar"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/datalog"
	"vadalink/internal/ivm"
	"vadalink/internal/persist"
	"vadalink/internal/qcache"
	"vadalink/internal/replication"
)

// latencyBucketsMs are the upper bounds (milliseconds) of the request-latency
// histogram; a final implicit +Inf bucket catches the rest.
var latencyBucketsMs = [...]int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// endpointMetrics is the live per-route counter set. All fields are atomics:
// the middleware updates them on every request without locking.
type endpointMetrics struct {
	count      atomic.Int64
	errors     atomic.Int64 // responses with status >= 400
	totalNanos atomic.Int64
	maxNanos   atomic.Int64
	buckets    [len(latencyBucketsMs) + 1]atomic.Int64
}

func (m *endpointMetrics) observe(status int, elapsed time.Duration) {
	m.count.Add(1)
	if status >= 400 {
		m.errors.Add(1)
	}
	n := int64(elapsed)
	m.totalNanos.Add(n)
	for {
		old := m.maxNanos.Load()
		if n <= old || m.maxNanos.CompareAndSwap(old, n) {
			break
		}
	}
	ms := elapsed.Milliseconds()
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	m.buckets[i].Add(1)
}

// EndpointMetrics is the JSON snapshot of one route's counters.
type EndpointMetrics struct {
	// Requests counts completed requests; Errors those answered with a
	// status >= 400.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// TotalMillis and MaxMillis aggregate wall-clock handler time;
	// MeanMillis is their ratio.
	TotalMillis int64   `json:"totalMillis"`
	MaxMillis   int64   `json:"maxMillis"`
	MeanMillis  float64 `json:"meanMillis"`
	// Latency is the cumulative histogram: Latency[le] counts requests that
	// took at most le milliseconds ("+Inf" catches the rest).
	Latency map[string]int64 `json:"latency"`
}

// Metrics is the snapshot served by GET /v1/metrics.
type Metrics struct {
	// UptimeSeconds is the age of the Server (not the process).
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Endpoints maps "METHOD /route" to its counters. Unmatched requests
	// (404s, bad methods) aggregate under "other".
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
	// LastChase is the statistics report of the most recent chase any
	// request triggered (/v1/reason, /v1/explain), nil before the first.
	LastChase *datalog.ChaseStats `json:"lastChase,omitempty"`
	// Incremental is the incremental view maintenance counter set
	// (commits maintained vs skipped vs full rebuilds, last apply cost);
	// absent when maintenance is disabled.
	Incremental *ivm.Stats `json:"incremental,omitempty"`
	// Recovery reports what startup recovery replayed (snapshot generation,
	// WAL records, torn tails, duration) when the server is backed by a
	// persistent store; absent on memory-only servers.
	Recovery *persist.RecoveryInfo `json:"recovery,omitempty"`
	// Persistence is the live WAL/snapshot counter set of that store.
	Persistence *persist.Stats `json:"persistence,omitempty"`
	// Replication is the follower's live position (seq, lag, staleness,
	// reconnects) when the server runs in read-only replica mode.
	Replication *replication.FollowerStatus `json:"replication,omitempty"`
	// ReplicationLeader is the stream-serving side (connected followers,
	// frames shipped) when this process is the replication leader.
	ReplicationLeader *replication.LeaderStatus `json:"replicationLeader,omitempty"`
	// ReplicaGroup is the self-healing failover state (role, epoch, lease,
	// election counters, last failover cause) when the server is a member
	// of a lease-based replica group.
	ReplicaGroup *replication.NodeStatus `json:"replicaGroup,omitempty"`
	// Cache is the query-result cache behind the point endpoints (hits,
	// misses, evictions, invalidations); absent when Config.QueryCacheBytes
	// is negative.
	Cache *qcache.Stats `json:"cache,omitempty"`
}

// serverMetrics is one Server's registry: a fixed route map built at Handler
// time (reads are lock-free) plus the catch-all slot.
type serverMetrics struct {
	start  time.Time
	routes map[string]*endpointMetrics
	other  endpointMetrics
}

func newServerMetrics(routes []string) *serverMetrics {
	sm := &serverMetrics{start: time.Now(), routes: make(map[string]*endpointMetrics, len(routes))}
	for _, r := range routes {
		sm.routes[r] = &endpointMetrics{}
	}
	return sm
}

func (sm *serverMetrics) observe(route string, status int, elapsed time.Duration) {
	m, ok := sm.routes[route]
	if !ok {
		m = &sm.other
	}
	m.observe(status, elapsed)
	expvarRequests.Add(route, 1)
	if status >= 400 {
		expvarErrors.Add(route, 1)
	}
}

func (sm *serverMetrics) snapshot(lastChase *datalog.ChaseStats) Metrics {
	out := Metrics{
		UptimeSeconds: time.Since(sm.start).Seconds(),
		Endpoints:     make(map[string]EndpointMetrics, len(sm.routes)+1),
		LastChase:     lastChase,
	}
	names := make([]string, 0, len(sm.routes))
	for name := range sm.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Endpoints[name] = sm.routes[name].export()
	}
	if sm.other.count.Load() > 0 {
		out.Endpoints["other"] = sm.other.export()
	}
	return out
}

func (m *endpointMetrics) export() EndpointMetrics {
	e := EndpointMetrics{
		Requests:    m.count.Load(),
		Errors:      m.errors.Load(),
		TotalMillis: m.totalNanos.Load() / 1e6,
		MaxMillis:   m.maxNanos.Load() / 1e6,
		Latency:     make(map[string]int64, len(latencyBucketsMs)+1),
	}
	if e.Requests > 0 {
		e.MeanMillis = float64(m.totalNanos.Load()) / float64(e.Requests) / 1e6
	}
	cum := int64(0)
	for i := range latencyBucketsMs {
		cum += m.buckets[i].Load()
		e.Latency[strconv.FormatInt(latencyBucketsMs[i], 10)] = cum
	}
	e.Latency["+Inf"] = cum + m.buckets[len(latencyBucketsMs)].Load()
	return e
}

// Process-wide expvar maps, published once: expvar panics on duplicate
// names, and tests construct many Servers in one process. They aggregate
// request and error counts across every Server; the rich per-Server view is
// GET /v1/metrics.
var (
	expvarRequests *expvar.Map
	expvarErrors   *expvar.Map
	expvarOnce     sync.Once
)

func initExpvar() {
	expvarOnce.Do(func() {
		expvarRequests = expvar.NewMap("reasonapi.requests")
		expvarErrors = expvar.NewMap("reasonapi.errors")
	})
}
