package reasonapi

// The demand-driven query surface: POST /v1/query answers one goal atom
// ("control(4, Y)") by magic-sets evaluation of the defining program, and
// the point forms of the reasoning endpoints route through the same
// machinery. Responses are cached in a byte-budgeted, seq-stamped result
// cache (internal/qcache) keyed on the goal and the version the answer was
// computed at; the IVM commit classifier decides which commits invalidate.
// Every response answered here carries the sequence number of the version it
// is exact for ("seq" in the body) and an X-Cache: hit|miss header.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/qcache"
	"vadalink/internal/vadalog"
)

// viewSeq pins the read view for one request together with the sequence
// number the view answers for. In MVCC mode both come from the same pinned
// version, so they cannot disagree; in follower mode the sequence is the
// follower's applied position, read under the same lock as the graph.
func (s *Server) viewSeq() (pg.View, uint64, func()) {
	if s.vs != nil {
		ver := s.vs.Current()
		return ver.View(), ver.Seq(), func() {}
	}
	s.mu.RLock()
	var seq uint64
	if fl := s.cfg.Follower; fl != nil {
		if n := fl.Seq(); n > 0 {
			seq = uint64(n)
		}
	}
	return s.g, seq, s.mu.RUnlock
}

// servePoint answers one point query through the result cache: on a hit the
// marshaled payload is replayed as-is (its embedded "seq" names the version
// it was computed at, which may trail the current one across irrelevant
// commits); on a miss, build runs once — concurrent misses on the same key
// share the computation — and the payload is stored unless the build was
// truncated or a commit raced it.
//
// build returns the response body (which servePoint stamps with "seq") plus
// the chase error, if any: a non-nil body with a non-nil error is a partial
// (budget-truncated) answer, served with 200 but never cached; a nil body is
// a hard failure, answered as a 500.
func (s *Server) servePoint(w http.ResponseWriter, r *http.Request, seq uint64, key string, class qcache.Class, build func() (map[string]any, error)) {
	compute := func() ([]byte, error) {
		body, err := build()
		if body == nil {
			if err == nil {
				err = errors.New("empty response")
			}
			return nil, err
		}
		body["seq"] = seq
		payload, merr := json.Marshal(body)
		if merr != nil {
			return nil, merr
		}
		return payload, err
	}
	var (
		payload []byte
		hit     bool
		err     error
	)
	if s.qc != nil {
		payload, _, hit, err = s.qc.Do(key, class, seq, compute)
	} else {
		payload, err = compute()
	}
	if payload == nil {
		writeErr(w, r, http.StatusInternalServerError, "internal", "query failed: %v", err)
		return
	}
	cache := "miss"
	if hit {
		cache = "hit"
	}
	w.Header().Set("X-Cache", cache)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// queryRequest is the body of POST /v1/query: a goal atom, optionally with
// the program defining it (the built-in control / close-link programs answer
// their own predicates when the program is omitted).
type queryRequest struct {
	// Goal is the atom to answer, e.g. "control(4, Y)" — constants demand
	// only the relevant derivation cone; variables are answered positions.
	Goal string `json:"goal"`
	// Program is the defining rule text. Empty selects the built-in program
	// of the goal predicate (control, ccand, accown, closelink, clcand,
	// company, person, own).
	Program string `json:"program"`
	// MaxFacts tightens the server's fact budget for this request only.
	MaxFacts int `json:"maxFacts"`
}

// handleQuery answers one goal atom demand-driven: POST /v1/query. The goal
// is rewritten with magic sets when its bound arguments admit it ("mode":
// "magic"); otherwise the full program is evaluated and the goal answered
// against the result ("mode": "full") — same answers, more derivation.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	if req.Goal == "" {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "missing goal")
		return
	}
	goal, err := datalog.ParseGoal(req.Goal)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "bad goal: %v", err)
		return
	}
	progSrc, class := req.Program, qcache.ClassAny
	if progSrc == "" {
		var ok bool
		if progSrc, ok = vadalog.ProgramForGoal(goal.Pred); !ok {
			writeErr(w, r, http.StatusBadRequest, "bad_request",
				"no built-in program defines %q; supply one in \"program\"", goal.Pred)
			return
		}
		class = qcache.ClassDerived
	} else if _, perr := datalog.Parse(progSrc); perr != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "parsing program: %v", perr)
		return
	}
	opts := s.engineOptions()
	b := s.cfg.Budget
	if req.MaxFacts > 0 && (b.MaxFacts == 0 || req.MaxFacts < b.MaxFacts) {
		b.MaxFacts = req.MaxFacts
		opts = append(opts, datalog.WithBudget(b))
	}

	v, seq, release := s.viewSeq()
	defer release()

	key := queryKey(class, goal, progSrc, req.MaxFacts)
	compute := func() ([]byte, error) {
		res, err := vadalog.EvalGoal(r.Context(), v, progSrc, goal, opts...)
		if err != nil {
			return nil, err
		}
		if res.Engine != nil {
			s.recordChase(res.Engine.Stats())
		}
		runErr := res.RunErr
		var be *datalog.BudgetExceededError
		if runErr != nil && !errors.As(runErr, &be) &&
			!errors.Is(runErr, context.DeadlineExceeded) && !errors.Is(runErr, context.Canceled) {
			return nil, runErr
		}
		resp := map[string]any{
			"goal":    goal.String(),
			"mode":    res.Mode,
			"answers": answerRows(res.Answers),
			"count":   len(res.Answers),
			"seq":     seq,
		}
		for k, vv := range truncMeta(runErr) {
			resp[k] = vv
		}
		payload, merr := json.Marshal(resp)
		if merr != nil {
			return nil, merr
		}
		return payload, runErr
	}
	var (
		payload []byte
		hit     bool
	)
	if s.qc != nil {
		payload, _, hit, err = s.qc.Do(key, class, seq, compute)
	} else {
		payload, err = compute()
	}
	if payload == nil {
		writeErr(w, r, http.StatusUnprocessableEntity, "unprocessable", "evaluating goal: %v", err)
		return
	}
	cache := "miss"
	if hit {
		cache = "hit"
	}
	w.Header().Set("X-Cache", cache)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// answerRows renders goal bindings as JSON objects keyed by variable name,
// in a deterministic order so identical queries marshal identically.
func answerRows(bs []datalog.Binding) []map[string]any {
	rows := make([]map[string]any, 0, len(bs))
	keys := make([]string, 0, len(bs))
	for _, b := range bs {
		row := make(map[string]any, len(b))
		k := ""
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, string(v))
		}
		sort.Strings(vars)
		for _, v := range vars {
			row[v] = jsonValue(b[datalog.Variable(v)])
			k += fmt.Sprintf("%s=%v;", v, b[datalog.Variable(v)])
		}
		rows = append(rows, row)
		keys = append(keys, k)
	}
	sort.Sort(&rowSorter{keys: keys, rows: rows})
	return rows
}

type rowSorter struct {
	keys []string
	rows []map[string]any
}

func (s *rowSorter) Len() int           { return len(s.keys) }
func (s *rowSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *rowSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// queryKey builds the cache key of one /v1/query evaluation. The program
// text is folded to a hash so an arbitrary caller program cannot blow the
// key budget; the goal stays readable for debugging.
func queryKey(class qcache.Class, goal datalog.Atom, progSrc string, maxFacts int) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(progSrc))
	return fmt.Sprintf("query:%d:%s:%x:%d", class, goal.String(), h.Sum64(), maxFacts)
}
