package reasonapi

// Coverage of the demand-driven query surface: POST /v1/query (success,
// malformed input, not-demandable fallback, budget truncation, custom
// programs, follower mode), the seq + X-Cache stamps on the point endpoints,
// the target form of /v1/control, the {"pairs": [...]} envelope, and the
// end-to-end invalidation contract — irrelevant commits keep cached answers
// alive at their original seq, relevant commits flush them.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vadalink/internal/pg"
)

// postQuery issues one POST /v1/query and returns the response + body map.
func postQuery(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	return doReq(t, "POST", url+"/v1/query", body)
}

func TestQueryEndpointAnswersGoal(t *testing.T) {
	srv, b := testServer(t)
	goal := fmt.Sprintf(`{"goal": "control(%s, Y)"}`, itoa(b.ID("P2")))
	resp, body := postQuery(t, srv.URL, goal)
	if resp.StatusCode != 200 {
		t.Fatalf("query = %d %v, want 200", resp.StatusCode, body)
	}
	if body["mode"] != "magic" {
		t.Fatalf("mode = %v, want magic (bound goal must be demanded)", body["mode"])
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	answers, _ := body["answers"].([]any)
	got := map[float64]bool{}
	for _, a := range answers {
		row := a.(map[string]any)
		got[row["Y"].(float64)] = true
	}
	// P2 controls C5, C6, C7 on Figure 2 (the declarative relation).
	for _, c := range []string{"C5", "C6", "C7"} {
		if !got[float64(b.ID(c))] {
			t.Errorf("answers miss %s: %v", c, answers)
		}
	}
	if n, _ := body["count"].(float64); int(n) != len(answers) {
		t.Errorf("count = %v, answers = %d", body["count"], len(answers))
	}
	if _, ok := body["seq"]; !ok {
		t.Error("response is not seq-stamped")
	}

	// The identical query replays from the cache at the same seq.
	resp2, body2 := postQuery(t, srv.URL, goal)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat query X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if body2["seq"] != body["seq"] {
		t.Fatalf("cached seq = %v, want %v", body2["seq"], body["seq"])
	}
}

func TestQueryEndpointMalformed(t *testing.T) {
	srv, _ := testServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed json", `{"goal": `},
		{"missing goal", `{}`},
		{"bad goal syntax", `{"goal": "control("}`},
		{"two atoms", `{"goal": "control(1, Y). control(2, Y)."}`},
		{"unknown predicate", `{"goal": "martians(1, Y)"}`},
		{"bad program", `{"goal": "p(1, Y)", "program": "p(X ->"}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postQuery(t, srv.URL, tc.body)
			if resp.StatusCode != 400 {
				t.Fatalf("status = %d %v, want 400", resp.StatusCode, body)
			}
			checkEnvelope(t, body, "bad_request")
		})
	}
}

// An all-free goal is outside the demandable fragment: the endpoint must
// fall back to full evaluation and still answer, reporting mode "full".
func TestQueryEndpointFullFallback(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := postQuery(t, srv.URL, `{"goal": "control(X, Y)"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("query = %d %v, want 200", resp.StatusCode, body)
	}
	if body["mode"] != "full" {
		t.Fatalf("mode = %v, want full (all-free goal is not demandable)", body["mode"])
	}
	if n, _ := body["count"].(float64); n == 0 {
		t.Fatal("full fallback returned no control pairs on Figure 2")
	}
}

// A caller-supplied program evaluates under demand too, and a truncated
// evaluation reports the partial answer without caching it.
func TestQueryEndpointCustomProgramAndTruncation(t *testing.T) {
	g, _ := pg.Figure2()
	s := NewServerWith(g, Config{})
	s.cfg.Budget.MaxFacts = 0 // server default: unlimited
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	prog := `own(X, Y, W) -> reach(X, Y). reach(X, Z), own(Z, Y, W) -> reach(X, Y).`
	req := fmt.Sprintf(`{"goal": "reach(0, Y)", "program": %q}`, prog)
	resp, body := postQuery(t, srv.URL, req)
	if resp.StatusCode != 200 || body["mode"] != "magic" {
		t.Fatalf("custom program query = %d %v, want 200/magic", resp.StatusCode, body)
	}

	// Tighten the budget per-request: the truncated partial must report
	// truncated: true and must NOT be stored (a retry recomputes).
	trunc := fmt.Sprintf(`{"goal": "reach(0, Y)", "program": %q, "maxFacts": 1}`, prog)
	resp2, body2 := postQuery(t, srv.URL, trunc)
	if resp2.StatusCode != 200 {
		t.Fatalf("truncated query = %d %v, want 200", resp2.StatusCode, body2)
	}
	if body2["truncated"] != true {
		t.Fatalf("truncated query body = %v, want truncated: true", body2)
	}
	resp3, _ := postQuery(t, srv.URL, trunc)
	if resp3.Header.Get("X-Cache") != "miss" {
		t.Fatalf("truncated answer was cached (X-Cache = %q)", resp3.Header.Get("X-Cache"))
	}
}

// The point endpoints carry the seq + X-Cache stamps and replay repeated
// queries from the cache; /v1/control grows the fully bound target form.
func TestPointEndpointsCacheAndStamps(t *testing.T) {
	srv, b := testServer(t)
	p2, c7 := itoa(b.ID("P2")), itoa(b.ID("C7"))
	paths := []string{
		"/v1/control?node=" + p2,
		"/v1/control?node=" + p2 + "&target=" + c7,
		"/v1/ubo?node=" + c7,
		"/v1/accumulated?from=" + p2 + "&to=" + c7,
		"/v1/explain?from=" + p2 + "&to=" + c7,
		"/v1/control/pairs",
		"/v1/closelinks",
	}
	for _, path := range paths {
		resp1, body1 := doReq(t, "GET", srv.URL+path, "")
		resp2, body2 := doReq(t, "GET", srv.URL+path, "")
		if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
			t.Fatalf("%s: status %d/%d, want 200", path, resp1.StatusCode, resp2.StatusCode)
		}
		if c := resp1.Header.Get("X-Cache"); c != "miss" {
			t.Errorf("%s first X-Cache = %q, want miss", path, c)
		}
		if c := resp2.Header.Get("X-Cache"); c != "hit" {
			t.Errorf("%s second X-Cache = %q, want hit", path, c)
		}
		if _, ok := body1["seq"]; !ok {
			t.Errorf("%s response not seq-stamped: %v", path, body1)
		}
		if fmt.Sprint(body1["seq"]) != fmt.Sprint(body2["seq"]) {
			t.Errorf("%s cached seq drifted: %v vs %v", path, body1["seq"], body2["seq"])
		}
	}

	// The target form answers the pair as a boolean.
	_, body := doReq(t, "GET", srv.URL+"/v1/control?node="+p2+"&target="+c7, "")
	if body["controls"] != true {
		t.Fatalf("control target form = %v, want controls: true", body)
	}
	_, body = doReq(t, "GET", srv.URL+"/v1/control?node="+c7+"&target="+p2, "")
	if body["controls"] != false {
		t.Fatalf("reversed target form = %v, want controls: false", body)
	}
	resp, _ := doReq(t, "GET", srv.URL+"/v1/control?node="+p2+"&target=99999", "")
	if resp.StatusCode != 400 {
		t.Fatalf("unknown target = %d, want 400", resp.StatusCode)
	}
}

// /v1/control/pairs answers the documented envelope: {"pairs": [{"from",
// "to"}, ...]} — not the bare capitalized array earlier releases leaked.
func TestControlPairsEnvelope(t *testing.T) {
	srv, b := testServer(t)
	resp, body := doReq(t, "GET", srv.URL+"/v1/control/pairs", "")
	if resp.StatusCode != 200 {
		t.Fatalf("pairs = %d, want 200", resp.StatusCode)
	}
	pairs, ok := body["pairs"].([]any)
	if !ok || len(pairs) == 0 {
		t.Fatalf(`body %v lacks a non-empty "pairs" array`, body)
	}
	found := false
	for _, p := range pairs {
		row, ok := p.(map[string]any)
		if !ok {
			t.Fatalf("pair %v is not an object", p)
		}
		if _, hasFrom := row["from"]; !hasFrom {
			t.Fatalf(`pair %v lacks lowercase "from"`, row)
		}
		if _, hasTo := row["to"]; !hasTo {
			t.Fatalf(`pair %v lacks lowercase "to"`, row)
		}
		if row["from"] == float64(b.ID("P2")) && row["to"] == float64(b.ID("C7")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("pairs %v miss P2→C7", pairs)
	}
}

// The invalidation contract end to end on the MVCC chain: a commit the IVM
// classifier deems irrelevant (a person node) keeps cached point answers
// alive at their original seq; a relevant commit (a shareholding edge)
// flushes them and the next read recomputes at the new seq.
func TestQueryCacheInvalidationFollowsCommitClassifier(t *testing.T) {
	g, b := pg.Figure2()
	s := NewServerWith(g, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	goal := fmt.Sprintf(`{"goal": "control(%s, Y)"}`, itoa(b.ID("P2")))
	_, body0 := postQuery(t, srv.URL, goal)
	seq0 := body0["seq"]

	// Irrelevant commit: a bare person node cannot move the control relation.
	txn := s.vs.Begin()
	txn.Overlay().AddNode(pg.LabelPerson, pg.Properties{"name": "bystander"})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	resp, body1 := postQuery(t, srv.URL, goal)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("after irrelevant commit X-Cache = %q, want hit (derived entries survive)", resp.Header.Get("X-Cache"))
	}
	if body1["seq"] != seq0 {
		t.Fatalf("surviving entry seq = %v, want original %v", body1["seq"], seq0)
	}

	// Relevant commit: a shareholding edge can move every derived relation.
	txn = s.vs.Begin()
	if _, err := txn.Overlay().AddShare(b.ID("P2"), b.ID("C4"), 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	resp, body2 := postQuery(t, srv.URL, goal)
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("after relevant commit X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	if body2["seq"] == seq0 {
		t.Fatalf("recomputed answer still stamped seq %v", seq0)
	}
	// And the recomputed answer reflects the new edge: P2 now controls C4.
	found := false
	for _, a := range body2["answers"].([]any) {
		if a.(map[string]any)["Y"] == float64(b.ID("C4")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-commit answers %v miss the new subsidiary C4", body2["answers"])
	}
}

// QueryCacheBytes < 0 disables the cache: every query recomputes and no
// cache section appears in /v1/metrics.
func TestQueryCacheDisabled(t *testing.T) {
	g, b := pg.Figure2()
	srv := httptest.NewServer(NewServerWith(g, Config{QueryCacheBytes: -1}).Handler())
	defer srv.Close()
	goal := fmt.Sprintf(`{"goal": "control(%s, Y)"}`, itoa(b.ID("P2")))
	for i := 0; i < 2; i++ {
		resp, _ := postQuery(t, srv.URL, goal)
		if c := resp.Header.Get("X-Cache"); c != "miss" {
			t.Fatalf("query %d with cache disabled: X-Cache = %q, want miss", i, c)
		}
	}
	var m Metrics
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if m.Cache != nil {
		t.Fatalf("metrics report a cache section with the cache disabled: %+v", m.Cache)
	}
}

// The cache counters surface in /v1/metrics.
func TestMetricsReportCacheCounters(t *testing.T) {
	srv, b := testServer(t)
	goal := fmt.Sprintf(`{"goal": "control(%s, Y)"}`, itoa(b.ID("P2")))
	postQuery(t, srv.URL, goal)
	postQuery(t, srv.URL, goal)
	var m Metrics
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if m.Cache == nil {
		t.Fatal("metrics lack the cache section")
	}
	if m.Cache.Hits < 1 || m.Cache.Misses < 1 {
		t.Fatalf("cache counters = %+v, want >= 1 hit and 1 miss", m.Cache)
	}
	if m.Cache.Entries < 1 || m.Cache.MaxBytes <= 0 {
		t.Fatalf("cache sizing = %+v, want entries and a positive budget", m.Cache)
	}
}

// Follower mode: /v1/query serves demand-driven reads from the replica, and
// the replication stream drives invalidation through the same classifier —
// an irrelevant frame keeps the entry, a relevant one drops it.
func TestQueryOnFollower(t *testing.T) {
	st, fl, srv := replicatedPair(t, Config{MaxStaleness: time.Minute})
	g := st.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	c := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	g.MustAddEdgeWeighted(a, c, 0.8)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitFollowerSeq(t, fl, st.Seq())

	goal := fmt.Sprintf(`{"goal": "control(%d, Y)"}`, a)
	resp, body := postQuery(t, srv.URL, goal)
	if resp.StatusCode != 200 {
		t.Fatalf("follower query = %d %v, want 200", resp.StatusCode, body)
	}
	if body["mode"] != "magic" {
		t.Fatalf("follower query mode = %v, want magic", body["mode"])
	}
	answers, _ := body["answers"].([]any)
	if len(answers) != 1 || answers[0].(map[string]any)["Y"] != float64(c) {
		t.Fatalf("follower answers = %v, want the one controlled company %d", answers, c)
	}

	// Irrelevant frame (person node): the cached entry survives.
	g.AddNode(pg.LabelPerson, pg.Properties{"name": "bystander"})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitFollowerSeq(t, fl, st.Seq())
	resp, _ = postQuery(t, srv.URL, goal)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("after irrelevant frame X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}

	// Relevant frame (shareholding edge): the entry drops, the answer grows.
	d := g.AddNode(pg.LabelCompany, pg.Properties{"name": "D"})
	g.MustAddEdgeWeighted(c, d, 0.9)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitFollowerSeq(t, fl, st.Seq())
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = postQuery(t, srv.URL, goal)
		if resp.Header.Get("X-Cache") == "miss" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relevant frame never invalidated the entry (X-Cache stays %q)", resp.Header.Get("X-Cache"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	answers, _ = body["answers"].([]any)
	if len(answers) != 2 {
		t.Fatalf("post-frame answers = %v, want A's grown cone {B, D}", answers)
	}
}
