package reasonapi

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vadalink/internal/replication"
)

// startAPINode spins up one replica-group member (listener, Serve, Run) and
// a reasonapi server in node mode on top of it.
func startAPINode(t *testing.T, peers func() []string, cfg Config) (*replication.Node, *httptest.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	node, err := replication.OpenNode(t.TempDir(), replication.NodeOptions{
		Self:      addr,
		API:       "http://api-" + addr,
		PeersFunc: peers,
		Lease:     400 * time.Millisecond,
		SyncEvery: time.Millisecond,
		AckEvery:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Node = node
	api := NewServerWith(nil, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan struct{})
	runDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		node.Serve(ctx, ln)
	}()
	go func() {
		defer close(runDone)
		node.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-runDone
		<-serveDone
		node.Close()
	})
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return node, srv, addr
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A single-member group self-promotes; its API then accepts writes through
// the quorum barrier and reports role/epoch on readyz and metrics.
func TestNodeModeLeaderAcceptsWrites(t *testing.T) {
	node, srv, _ := startAPINode(t, func() []string { return nil }, Config{})
	waitCond(t, "self-promotion", node.IsLeader)

	resp, err := http.Post(srv.URL+"/v1/augment", "application/json",
		strings.NewReader(`{"classes":["family"],"noCluster":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("augment on leader = %d, want 200", resp.StatusCode)
	}

	var rz struct {
		Status string `json:"status"`
		Checks map[string]struct {
			OK     bool
			Detail string
		} `json:"checks"`
	}
	if code := getJSON(t, srv.URL+"/v1/readyz", &rz); code != 200 || rz.Status != "ready" {
		t.Fatalf("readyz on leader = %d %+v, want 200 ready", code, rz)
	}
	if c, ok := rz.Checks["replicaGroup"]; !ok || !c.OK || !strings.Contains(c.Detail, "role leader") {
		t.Fatalf("readyz replicaGroup check = %+v, want ok with role leader", rz.Checks["replicaGroup"])
	}

	var m struct {
		ReplicaGroup *replication.NodeStatus `json:"replicaGroup"`
	}
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if m.ReplicaGroup == nil || m.ReplicaGroup.Role != replication.RoleLeader || m.ReplicaGroup.Epoch == 0 {
		t.Fatalf("metrics replicaGroup = %+v, want leader at epoch >= 1", m.ReplicaGroup)
	}
}

// A member that follows a live leader redirects writes (421 carrying the
// leader's API address learned from the stream handshake, not from static
// config) and serves reads with replication position headers.
func TestNodeModeFollowerRedirectsToLiveLeader(t *testing.T) {
	leader, _, ldAddr := startAPINode(t, func() []string { return nil }, Config{})
	waitCond(t, "leader promotion", leader.IsLeader)

	follower, fsrv, _ := startAPINode(t, func() []string { return []string{ldAddr} }, Config{
		MaxStaleness: time.Minute,
	})
	waitCond(t, "follower syncs to leader", func() bool {
		st := follower.Status()
		return st.LeaderAddr == ldAddr && st.LeaseOK
	})

	resp, err := http.Post(fsrv.URL+"/v1/augment", "application/json",
		strings.NewReader(`{"classes":["family"],"noCluster":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Code   string `json:"code"`
		Leader string `json:"leader"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest || body.Code != "not_leader" {
		t.Fatalf("augment on follower = %d %+v, want 421 not_leader", resp.StatusCode, body)
	}
	if body.Leader != "http://api-"+ldAddr {
		t.Fatalf("redirect leader = %q, want the handshake-learned %q", body.Leader, "http://api-"+ldAddr)
	}

	resp, err = http.Get(fsrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stats on synced follower = %d, want 200", resp.StatusCode)
	}
	for _, h := range []string{"X-Replication-Lag", "X-Replication-Staleness-Ms", "X-Replication-Disconnected-Ms"} {
		if resp.Header.Get(h) == "" {
			t.Fatalf("follower read missing %s header: %+v", h, resp.Header)
		}
	}
}
