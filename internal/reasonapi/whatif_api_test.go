package reasonapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vadalink/internal/pg"
)

// acquisitionServer serves the README scenario: Alpha holds 25% of Beta,
// Delta holds 40%, Carol holds the majority of Alpha.
func acquisitionServer(t *testing.T) (*httptest.Server, *Server, pg.NodeID, pg.NodeID) {
	t.Helper()
	g := pg.New()
	alpha := g.AddNode(pg.LabelCompany, pg.Properties{"name": "Alpha"})
	beta := g.AddNode(pg.LabelCompany, pg.Properties{"name": "Beta"})
	delta := g.AddNode(pg.LabelCompany, pg.Properties{"name": "Delta"})
	carol := g.AddNode(pg.LabelPerson, pg.Properties{"name": "Carol"})
	for _, e := range []struct {
		from, to pg.NodeID
		w        float64
	}{{alpha, beta, 0.25}, {delta, beta, 0.40}, {carol, alpha, 0.60}} {
		if _, err := g.AddShare(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(g)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, s, alpha, beta
}

type whatifResponse struct {
	Version         uint64         `json:"version"`
	Threshold       float64        `json:"threshold"`
	Created         []pg.NodeID    `json:"created"`
	Delta           map[string]int `json:"delta"`
	AffectedSources int            `json:"affectedSources"`
	Control         struct {
		Gained []map[string]pg.NodeID `json:"gained"`
		Lost   []map[string]pg.NodeID `json:"lost"`
	} `json:"control"`
	CloseLinks struct {
		Gained []map[string]pg.NodeID `json:"gained"`
		Lost   []map[string]pg.NodeID `json:"lost"`
	} `json:"closeLinks"`
}

func TestWhatifEndpoint(t *testing.T) {
	srv, s, alpha, beta := acquisitionServer(t)

	var before, after struct{ Nodes, Edges int }
	if code := getJSON(t, srv.URL+"/v1/stats", &before); code != 200 {
		t.Fatalf("stats status %d", code)
	}

	body := fmt.Sprintf(`{"ops":[{"op":"addShare","from":%d,"to":%d,"w":0.30}]}`, alpha, beta)
	resp, raw := postJSON(t, srv.URL+"/v1/whatif", body)
	if resp.StatusCode != 200 {
		t.Fatalf("whatif status %d: %v", resp.StatusCode, raw)
	}
	b, _ := json.Marshal(raw)
	var out whatifResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Threshold != 0.2 {
		t.Errorf("threshold = %v, want the 0.2 default", out.Threshold)
	}
	// Alpha gains direct control of Beta, and Carol — who already controls
	// Alpha — gains it transitively.
	gained := map[[2]pg.NodeID]bool{}
	for _, p := range out.Control.Gained {
		gained[[2]pg.NodeID{p["x"], p["y"]}] = true
	}
	if len(gained) != 2 || !gained[[2]pg.NodeID{alpha, beta}] {
		t.Errorf("control gained = %v, want Alpha→Beta plus Carol→Beta", out.Control.Gained)
	}
	if len(out.Control.Lost) != 0 {
		t.Errorf("control lost = %v, want none", out.Control.Lost)
	}
	// Alpha–Beta were closely linked already at 25%: the acquisition changes
	// nothing at the 20% threshold.
	if len(out.CloseLinks.Gained) != 0 || len(out.CloseLinks.Lost) != 0 {
		t.Errorf("close links changed: gained %v lost %v, want neither", out.CloseLinks.Gained, out.CloseLinks.Lost)
	}
	if out.Delta["addedEdges"] != 1 {
		t.Errorf("delta = %v, want one added edge", out.Delta)
	}
	if out.AffectedSources == 0 || out.AffectedSources >= before.Nodes {
		t.Errorf("affectedSources = %d, want a non-empty strict subset of %d", out.AffectedSources, before.Nodes)
	}

	// The counterfactual left the served graph untouched.
	if code := getJSON(t, srv.URL+"/v1/stats", &after); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if after != before {
		t.Errorf("graph changed across a what-if: %+v -> %+v", before, after)
	}

	// A second scenario against the same version hits the cached baseline
	// and must produce the same answer.
	if e := s.blCache.Load(); e == nil {
		t.Fatal("baseline cache empty after a what-if")
	}
	resp2, raw2 := postJSON(t, srv.URL+"/v1/whatif", body)
	if resp2.StatusCode != 200 {
		t.Fatalf("second whatif status %d", resp2.StatusCode)
	}
	b2, _ := json.Marshal(raw2)
	if !bytes.Equal(b, b2) {
		t.Errorf("cached-baseline response differs:\n%s\n%s", b, b2)
	}
}

func TestWhatifEndpointErrors(t *testing.T) {
	srv, _, alpha, beta := acquisitionServer(t)
	cases := []struct {
		name string
		body string
		code int
		want string
	}{
		{"empty ops", `{"ops":[]}`, 400, "bad_request"},
		{"garbage body", `{"ops":`, 400, "bad_request"},
		{"threshold out of range", `{"ops":[{"op":"addNode"}],"threshold":7}`, 400, "bad_request"},
		{"unknown op", `{"ops":[{"op":"merge"}]}`, 400, "bad_op"},
		{"unknown edge", `{"ops":[{"op":"removeEdge","edge":999}]}`, 400, "bad_op"},
		{"over-allocated share", fmt.Sprintf(`{"ops":[{"op":"addShare","from":%d,"to":%d,"w":0.9}]}`, alpha, beta), 400, "bad_op"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv.URL+"/v1/whatif", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.code, body)
			continue
		}
		if code, _ := body["code"].(string); code != tc.want {
			t.Errorf("%s: code %q, want %q", tc.name, code, tc.want)
		}
		if body["requestID"] == "" {
			t.Errorf("%s: missing request ID", tc.name)
		}
	}
}

// dirBytes snapshots every durable file in a store directory.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestWhatifNeverReachesWAL is the durability-isolation regression test: a
// burst of counterfactuals over a persistent store must leave every durable
// file byte-identical — overlays never produce WAL records — while a real
// augment afterwards still does.
func TestWhatifNeverReachesWAL(t *testing.T) {
	dir := t.TempDir()
	s, ps := durableServer(t, dir)
	defer ps.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	before := dirBytes(t, dir)

	// Each scenario both adds and removes structure, so the chase derives
	// different facts than the base — a real evaluation, not a no-op.
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"ops":[{"op":"addNode","name":"wi%d"},{"op":"removeNode","node":%d}]}`, i, i%3)
		resp, raw := postJSON(t, srv.URL+"/v1/whatif", body)
		if resp.StatusCode != 200 {
			t.Fatalf("whatif %d: status %d: %v", i, resp.StatusCode, raw)
		}
	}

	after := dirBytes(t, dir)
	if len(before) != len(after) {
		t.Fatalf("store directory changed shape: %d files -> %d", len(before), len(after))
	}
	for name, b := range before {
		if !bytes.Equal(b, after[name]) {
			t.Errorf("durable file %s changed across a what-if burst (%d -> %d bytes)", name, len(b), len(after[name]))
		}
	}

	// Sanity check the other direction: a committed augment must grow the WAL.
	resp, raw := postJSON(t, srv.URL+"/v1/augment", `{"classes":["family"],"noCluster":true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("augment status %d: %v", resp.StatusCode, raw)
	}
	grown := dirBytes(t, dir)
	changed := false
	for name, b := range grown {
		if !bytes.Equal(b, after[name]) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("augment left every durable file untouched — the WAL hook is dead")
	}
}
