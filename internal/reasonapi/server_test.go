package reasonapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
)

func testServer(t *testing.T) (*httptest.Server, *pg.Builder) {
	t.Helper()
	g, b := pg.Figure2()
	srv := httptest.NewServer(NewServer(g).Handler())
	t.Cleanup(srv.Close)
	return srv, b
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var stats struct {
		Nodes int
		Edges int
	}
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if stats.Nodes != 7 || stats.Edges != 8 {
		t.Errorf("stats = %+v, want 7 nodes / 8 edges", stats)
	}
}

func TestControlEndpoint(t *testing.T) {
	srv, b := testServer(t)
	var out struct {
		Controls []struct {
			ID   pg.NodeID `json:"id"`
			Name string    `json:"name"`
		} `json:"controls"`
	}
	url := srv.URL + "/v1/control?node=" + itoa(b.ID("P2"))
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	names := map[string]bool{}
	for _, c := range out.Controls {
		names[c.Name] = true
	}
	for _, want := range []string{"C5", "C6", "C7"} {
		if !names[want] {
			t.Errorf("P2 controls missing %s: %v", want, names)
		}
	}
}

func TestControlEndpointErrors(t *testing.T) {
	srv, _ := testServer(t)
	if code := getJSON(t, srv.URL+"/v1/control", nil); code != 400 {
		t.Errorf("missing node param: status %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/v1/control?node=xyz", nil); code != 400 {
		t.Errorf("bad node param: status %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/v1/control?node=999", nil); code != 400 {
		t.Errorf("unknown node: status %d, want 400", code)
	}
}

func TestCloseLinksEndpoint(t *testing.T) {
	srv, b := testServer(t)
	var out struct {
		Threshold float64 `json:"threshold"`
		Links     []struct {
			A, B pg.NodeID
		} `json:"links"`
	}
	if code := getJSON(t, srv.URL+"/v1/closelinks", &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Threshold != 0.2 {
		t.Errorf("default threshold = %v", out.Threshold)
	}
	found := false
	for _, l := range out.Links {
		if (l.A == b.ID("C4") && l.B == b.ID("C7")) || (l.A == b.ID("C7") && l.B == b.ID("C4")) {
			found = true
		}
	}
	if !found {
		t.Error("close link C4–C7 not reported")
	}
	if code := getJSON(t, srv.URL+"/v1/closelinks?t=7", nil); code != 400 {
		t.Errorf("bad threshold accepted: %d", code)
	}
}

func TestAccumulatedEndpoint(t *testing.T) {
	srv, b := testServer(t)
	var out struct {
		Phi float64 `json:"phi"`
	}
	url := srv.URL + "/v1/accumulated?from=" + itoa(b.ID("C4")) + "&to=" + itoa(b.ID("C7"))
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Phi < 0.199 || out.Phi > 0.201 {
		t.Errorf("phi = %v, want 0.2", out.Phi)
	}
}

func TestAugmentEndpoint(t *testing.T) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 60, Companies: 20, Seed: 3})
	srv := httptest.NewServer(NewServer(it.Graph).Handler())
	defer srv.Close()

	body := strings.NewReader(`{"classes":["family"],"noCluster":true}`)
	resp, err := http.Post(srv.URL+"/v1/augment", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Added       map[string]int `json:"added"`
		Comparisons int64          `json:"comparisons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range out.Added {
		total += n
	}
	if total == 0 {
		t.Error("augment added no edges")
	}
	if out.Comparisons == 0 {
		t.Error("no comparisons reported")
	}
}

func TestAugmentRejectsUnknownClass(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/augment", "application/json",
		strings.NewReader(`{"classes":["nonsense"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestGraphEndpointRoundTrips(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/graph")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	g, err := pg.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 || g.NumEdges() != 8 {
		t.Errorf("round-tripped graph: %d nodes / %d edges", g.NumNodes(), g.NumEdges())
	}
}

func itoa(id pg.NodeID) string {
	return json.Number(jsonInt(id)).String()
}

func jsonInt(id pg.NodeID) string {
	b, _ := json.Marshal(id)
	return string(b)
}

func TestExplainEndpoint(t *testing.T) {
	srv, b := testServer(t)
	var out struct {
		Controls bool     `json:"controls"`
		Why      []string `json:"why"`
	}
	url := srv.URL + "/v1/explain?from=" + itoa(b.ID("P2")) + "&to=" + itoa(b.ID("C7"))
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !out.Controls || len(out.Why) == 0 {
		t.Errorf("explain = %+v, want a derivation tree", out)
	}
	// Non-controlling pair.
	var out2 struct {
		Controls bool `json:"controls"`
	}
	url2 := srv.URL + "/v1/explain?from=" + itoa(b.ID("P3")) + "&to=" + itoa(b.ID("C7"))
	if code := getJSON(t, url2, &out2); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out2.Controls {
		t.Error("P3 does not control C7")
	}
}

func TestUBOEndpoint(t *testing.T) {
	srv, b := testServer(t)
	var out struct {
		UltimateControllers []struct {
			ID   pg.NodeID `json:"id"`
			Name string    `json:"name"`
		} `json:"ultimateControllers"`
	}
	url := srv.URL + "/v1/ubo?node=" + itoa(b.ID("C7"))
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(out.UltimateControllers) != 1 || out.UltimateControllers[0].Name != "P2" {
		t.Errorf("C7 UBOs = %+v, want [P2]", out.UltimateControllers)
	}
}

func TestNeighborhoodEndpoint(t *testing.T) {
	srv, b := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/neighborhood?node=" + itoa(b.ID("C7")) + "&hops=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sub, err := pg.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// 1 hop around C7: C5 and C6 own it → 3 nodes.
	if sub.NumNodes() != 3 {
		t.Errorf("ego nodes = %d, want 3", sub.NumNodes())
	}
	if code := getJSON(t, srv.URL+"/v1/neighborhood?node="+itoa(b.ID("C7"))+"&hops=99", nil); code != 400 {
		t.Errorf("hops=99 accepted: %d", code)
	}
}
