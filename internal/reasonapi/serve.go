package reasonapi

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// DefaultDrainTimeout bounds how long Serve waits for in-flight requests
// after its context is cancelled.
const DefaultDrainTimeout = 10 * time.Second

// Serve runs handler on the listener until ctx is cancelled, then shuts the
// server down gracefully: the listener closes immediately, in-flight
// requests get up to drainTimeout to finish, and only then are their
// connections forced closed. It returns nil after a clean drain, the drain
// error if the timeout expired, or the serve error if the listener failed
// first.
//
// Callers wire this to SIGINT/SIGTERM with signal.NotifyContext, so an
// operator's Ctrl-C or an orchestrator's TERM drains instead of dropping
// requests mid-chase.
//
// When handler is a Server's Handler, Serve additionally blocks until every
// in-flight graph mutation (an augment run, an admin snapshot) has finished
// before returning, even if drainTimeout expired first. Shutdown abandons
// handlers still running at its deadline — and an abandoned augment would
// keep mutating the graph while the caller tears down shared state (say,
// snapshotting it to disk). Mutators are bounded by the request deadline, so
// this wait is too.
func Serve(ctx context.Context, ln net.Listener, handler http.Handler, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		// Flip readiness first: /v1/readyz answers 503 from here on, so a
		// load balancer that probes during the drain window stops routing
		// new traffic to a listener that is about to close.
		if dn, ok := handler.(drainNotifier); ok {
			dn.StartDrain()
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		if aw, ok := handler.(mutationAwaiter); ok {
			if werr := aw.AwaitMutations(context.Background()); werr != nil && err == nil {
				err = werr
			}
		}
		<-errc // Serve has returned http.ErrServerClosed
		return err
	}
}

// mutationAwaiter is the drain coordination surface of Server.Handler:
// AwaitMutations returns once no graph mutation is in flight (bounded
// internally by the server's request deadline plus grace).
type mutationAwaiter interface {
	AwaitMutations(context.Context) error
}

// drainNotifier lets Serve tell the handler that shutdown has begun, so the
// readiness probe can fail before the listener stops accepting.
type drainNotifier interface {
	StartDrain()
}

// ListenAndServe listens on addr and calls Serve. It exists so commands can
// get graceful shutdown in one line.
func ListenAndServe(ctx context.Context, addr string, handler http.Handler, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, ln, handler, drainTimeout)
}
