package reasonapi

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// DefaultDrainTimeout bounds how long Serve waits for in-flight requests
// after its context is cancelled.
const DefaultDrainTimeout = 10 * time.Second

// Serve runs handler on the listener until ctx is cancelled, then shuts the
// server down gracefully: the listener closes immediately, in-flight
// requests get up to drainTimeout to finish, and only then are their
// connections forced closed. It returns nil after a clean drain, the drain
// error if the timeout expired, or the serve error if the listener failed
// first.
//
// Callers wire this to SIGINT/SIGTERM with signal.NotifyContext, so an
// operator's Ctrl-C or an orchestrator's TERM drains instead of dropping
// requests mid-chase.
func Serve(ctx context.Context, ln net.Listener, handler http.Handler, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		<-errc // Serve has returned http.ErrServerClosed
		return err
	}
}

// ListenAndServe listens on addr and calls Serve. It exists so commands can
// get graceful shutdown in one line.
func ListenAndServe(ctx context.Context, addr string, handler http.Handler, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, ln, handler, drainTimeout)
}
