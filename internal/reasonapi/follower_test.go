package reasonapi

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vadalink/internal/persist"
	"vadalink/internal/pg"
	"vadalink/internal/replication"
)

// replicatedPair spins up a leader (store + stream server) and a follower
// whose graph is served by a reasonapi Server in read-only replica mode.
func replicatedPair(t *testing.T, cfg Config) (*persist.Store, *replication.Follower, *httptest.Server) {
	t.Helper()
	st, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ld := replication.NewLeader(st, replication.LeaderOptions{Heartbeat: 20 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ldDone := make(chan struct{})
	go func() {
		defer close(ldDone)
		if err := ld.Serve(ctx, ln); err != nil {
			t.Errorf("leader serve: %v", err)
		}
	}()

	fl, err := replication.OpenFollower(t.TempDir(), replication.FollowerOptions{
		Leader: ln.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Follower = fl
	if cfg.Leader == nil {
		cfg.Leader = ld
	}
	api := NewServerWith(nil, cfg) // wires lock + graph tracking before Run
	flDone := make(chan struct{})
	go func() {
		defer close(flDone)
		fl.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-flDone
		<-ldDone
		fl.Close()
	})
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return st, fl, srv
}

// waitFollowerSeq polls until the follower has applied through seq.
func waitFollowerSeq(t *testing.T, fl *replication.Follower, seq int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for fl.Seq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d (status %+v)", fl.Seq(), seq, fl.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestHealthzAlwaysOK(t *testing.T) {
	srv, _ := testServer(t)
	var body struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, srv.URL+"/v1/healthz", &body); code != 200 || body.Status != "ok" {
		t.Fatalf("healthz = %d %+v, want 200 ok", code, body)
	}
}

func TestReadyzOnHealthyStandalone(t *testing.T) {
	srv, _ := testServer(t)
	var body struct {
		Status string `json:"status"`
		Checks map[string]struct {
			OK     bool   `json:"ok"`
			Detail string `json:"detail"`
		} `json:"checks"`
	}
	if code := getJSON(t, srv.URL+"/v1/readyz", &body); code != 200 || body.Status != "ready" {
		t.Fatalf("readyz = %d %+v, want 200 ready", code, body)
	}
	if c, ok := body.Checks["draining"]; !ok || !c.OK {
		t.Fatalf("draining check = %+v, want ok", body.Checks)
	}
}

// A drain flips readiness to 503 before the listener closes, and Serve
// performs that flip through the drainNotifier surface.
func TestReadyzFailsWhileDraining(t *testing.T) {
	g, _ := pg.Figure2()
	api := NewServerWith(g, Config{})
	h := api.Handler()
	dn, ok := h.(interface{ StartDrain() })
	if !ok {
		t.Fatal("Handler does not expose StartDrain for Serve's drain hook")
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	if code := getJSON(t, srv.URL+"/v1/readyz", nil); code != 200 {
		t.Fatalf("readyz before drain = %d, want 200", code)
	}
	dn.StartDrain()
	resp, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
		Code   string `json:"code"`
		Checks map[string]struct {
			OK bool `json:"ok"`
		} `json:"checks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 || body.Status != "unready" || body.Code != "not_ready" {
		t.Fatalf("readyz during drain = %d %+v, want 503 unready/not_ready", resp.StatusCode, body)
	}
	if body.Checks["draining"].OK {
		t.Fatal("draining check still ok during drain")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on unready readyz")
	}
	// Liveness is unaffected: draining is not a reason to restart the node.
	if code := getJSON(t, srv.URL+"/v1/healthz", nil); code != 200 {
		t.Fatalf("healthz during drain = %d, want 200", code)
	}
}

// Serve itself must trigger the drain flip when its context is cancelled.
func TestServeStartsDrainOnCancel(t *testing.T) {
	g, _ := pg.Figure2()
	api := NewServerWith(g, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, api.Handler(), time.Second) }()
	// Wait until the listener answers, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get("http://" + ln.Addr().String() + "/v1/healthz"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if !api.draining.Load() {
		t.Fatal("Serve returned without flipping the draining flag")
	}
}

// End-to-end follower serving: reads work and carry replication headers,
// writes are redirected to the leader, metrics and readyz report the
// replica's position.
func TestFollowerServesReadsRedirectsWrites(t *testing.T) {
	st, fl, srv := replicatedPair(t, Config{
		LeaderAPI:    "http://leader.example:8080",
		MaxStaleness: time.Minute,
	})
	g := st.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	g.MustAddEdgeWeighted(a, b, 0.6)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitFollowerSeq(t, fl, st.Seq())

	// Read path: correct answer plus position headers.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct{ Nodes, Edges int }
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || stats.Nodes != 2 || stats.Edges != 1 {
		t.Fatalf("stats via follower = %d %+v, want 200 with 2 nodes / 1 edge", resp.StatusCode, stats)
	}
	if resp.Header.Get("X-Replication-Lag") == "" || resp.Header.Get("X-Replication-Staleness-Ms") == "" {
		t.Fatalf("follower read missing replication headers: %+v", resp.Header)
	}

	// Write path: typed redirect to the leader, both endpoints.
	for _, path := range []string{"/v1/augment", "/v1/admin/snapshot"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Code   string `json:"code"`
			Leader string `json:"leader"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest || body.Code != "not_leader" {
			t.Fatalf("POST %s on follower = %d %+v, want 421 not_leader", path, resp.StatusCode, body)
		}
		if body.Leader != "http://leader.example:8080" {
			t.Fatalf("redirect leader = %q", body.Leader)
		}
	}

	// Metrics report both sides of the replication link.
	var m struct {
		Replication       *replication.FollowerStatus `json:"replication"`
		ReplicationLeader *replication.LeaderStatus   `json:"replicationLeader"`
	}
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if m.Replication == nil || m.Replication.Seq != st.Seq() {
		t.Fatalf("metrics replication = %+v, want seq %d", m.Replication, st.Seq())
	}
	if m.ReplicationLeader == nil || m.ReplicationLeader.Connected != 1 {
		t.Fatalf("metrics replicationLeader = %+v, want 1 connected follower", m.ReplicationLeader)
	}

	// Readyz: synced replica inside the bound is ready.
	var rz struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, srv.URL+"/v1/readyz", &rz); code != 200 || rz.Status != "ready" {
		t.Fatalf("readyz on synced follower = %d %+v, want 200 ready", code, rz)
	}
}

// A follower that has never reached parity with its leader refuses reads
// with 503 stale_replica and fails readiness, while healthz stays 200 and
// probes/metrics stay reachable.
func TestNeverSyncedFollowerRefusesReads(t *testing.T) {
	// Point the follower at a dead address: it will retry forever and never
	// sync.
	fl, err := replication.OpenFollower(t.TempDir(), replication.FollowerOptions{
		Leader: "127.0.0.1:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		fl.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	api := NewServerWith(nil, Config{Follower: fl, LeaderAPI: "leader:9"})
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Code       string `json:"code"`
		RetryAfter int    `json:"retryAfter"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || body.Code != "stale_replica" {
		t.Fatalf("read on never-synced follower = %d %+v, want 503 stale_replica", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" || body.RetryAfter == 0 {
		t.Fatal("stale read missing Retry-After")
	}

	var rz struct {
		Status string `json:"status"`
		Checks map[string]struct {
			OK bool `json:"ok"`
		} `json:"checks"`
	}
	if code := getJSON(t, srv.URL+"/v1/readyz", &rz); code != 503 || rz.Checks["replication"].OK {
		t.Fatalf("readyz on never-synced follower = %d %+v, want 503 with replication check failed", code, rz)
	}
	if code := getJSON(t, srv.URL+"/v1/healthz", nil); code != 200 {
		t.Fatalf("healthz on stale follower = %d, want 200", code)
	}
	if code := getJSON(t, srv.URL+"/v1/metrics", nil); code != 200 {
		t.Fatalf("metrics on stale follower = %d, want 200", code)
	}
}

// A negative MaxStaleness disables the gate: reads are served no matter how
// stale the replica is.
func TestNegativeMaxStalenessServesStaleReads(t *testing.T) {
	fl, err := replication.OpenFollower(t.TempDir(), replication.FollowerOptions{
		Leader: "127.0.0.1:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	// Not running: the follower never syncs, yet reads must still work.
	api := NewServerWith(nil, Config{Follower: fl, MaxStaleness: -1})
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	var stats struct{ Nodes int }
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats with staleness gate disabled = %d, want 200", code)
	}
}
