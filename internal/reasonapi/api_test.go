package reasonapi

// Table coverage of the /v1 surface: success, malformed-input, and
// budget-exceeded behavior for every endpoint, the uniform JSON error
// envelope (including the mux's own 404/405 responses), the /v1/metrics
// report shape, and the opt-in debug endpoints (expvar, pprof).

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
)

// doReq issues one request and decodes the JSON body into a generic map.
func doReq(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var val any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &val); err != nil {
			t.Fatalf("%s %s: non-JSON body (status %d): %q", method, url, resp.StatusCode, raw)
		}
	}
	out, _ := val.(map[string]any) // array-valued endpoints return a nil map
	return resp, out
}

// checkEnvelope asserts the uniform error shape: {error, code, requestID}.
func checkEnvelope(t *testing.T, body map[string]any, wantCode string) {
	t.Helper()
	if s, _ := body["error"].(string); s == "" {
		t.Errorf("envelope missing error message: %v", body)
	}
	if c, _ := body["code"].(string); c != wantCode {
		t.Errorf("envelope code = %q, want %q (%v)", body["code"], wantCode, body)
	}
	if id, _ := body["requestID"].(string); id == "" {
		t.Errorf("envelope missing requestID: %v", body)
	}
}

// TestEndpointTable exercises every /v1 route: one success case and its
// malformed-input cases, asserting status codes and that every error wears
// the JSON envelope.
func TestEndpointTable(t *testing.T) {
	srv, b := testServer(t)
	node := itoa(b.ID("P2"))
	company := itoa(b.ID("C7"))
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		want     int
		wantCode string // envelope code for error statuses
	}{
		{"stats ok", "GET", "/v1/stats", "", 200, ""},
		{"graph ok", "GET", "/v1/graph", "", 200, ""},
		{"metrics ok", "GET", "/v1/metrics", "", 200, ""},
		{"control ok", "GET", "/v1/control?node=" + node, "", 200, ""},
		{"control missing param", "GET", "/v1/control", "", 400, "bad_request"},
		{"control bad param", "GET", "/v1/control?node=xyz", "", 400, "bad_request"},
		{"control unknown node", "GET", "/v1/control?node=99999", "", 400, "bad_request"},
		{"control pairs ok", "GET", "/v1/control/pairs", "", 200, ""},
		{"closelinks ok", "GET", "/v1/closelinks", "", 200, ""},
		{"closelinks bad threshold", "GET", "/v1/closelinks?t=7", "", 400, "bad_request"},
		{"accumulated ok", "GET", "/v1/accumulated?from=" + node + "&to=" + company, "", 200, ""},
		{"accumulated missing to", "GET", "/v1/accumulated?from=" + node, "", 400, "bad_request"},
		{"explain ok", "GET", "/v1/explain?from=" + node + "&to=" + company, "", 200, ""},
		{"explain bad from", "GET", "/v1/explain?from=!&to=" + company, "", 400, "bad_request"},
		{"ubo ok", "GET", "/v1/ubo?node=" + company, "", 200, ""},
		{"ubo missing node", "GET", "/v1/ubo", "", 400, "bad_request"},
		{"neighborhood ok", "GET", "/v1/neighborhood?node=" + company + "&hops=1", "", 200, ""},
		{"neighborhood bad hops", "GET", "/v1/neighborhood?node=" + company + "&hops=99", "", 400, "bad_request"},
		{"reason ok", "POST", "/v1/reason", `{"program":"own(X,Y,W) -> linked(X,Y)."}`, 200, ""},
		{"reason malformed json", "POST", "/v1/reason", `{"program": `, 400, "bad_request"},
		{"reason missing program", "POST", "/v1/reason", `{}`, 400, "bad_request"},
		{"reason parse error", "POST", "/v1/reason", `{"program":"p(X ->"}`, 400, "bad_request"},
		{"augment ok", "POST", "/v1/augment", `{"classes":["family"],"noCluster":true}`, 200, ""},
		{"augment malformed json", "POST", "/v1/augment", `{"classes":`, 400, "bad_request"},
		{"augment unknown class", "POST", "/v1/augment", `{"classes":["nonsense"]}`, 400, "bad_request"},
		{"unknown route", "GET", "/v1/nonsense", "", 404, "not_found"},
		{"wrong method", "DELETE", "/v1/stats", "", 405, "method_not_allowed"},
		{"reason via GET", "GET", "/v1/reason", "", 405, "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doReq(t, tc.method, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (body %v)", resp.StatusCode, tc.want, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if resp.Header.Get("X-Request-ID") == "" {
				t.Error("no X-Request-ID header")
			}
			if tc.wantCode != "" {
				checkEnvelope(t, body, tc.wantCode)
			}
		})
	}
}

// TestReasonBudgetExceeded: a diverging ad-hoc program against a server with
// a tight fact budget answers 200 with the partial result marked truncated,
// and the embedded chase stats carry the same trip.
func TestReasonBudgetExceeded(t *testing.T) {
	g, _ := pg.Figure2()
	srv := httptest.NewServer(NewServerWith(g, Config{
		Budget: datalog.Budget{MaxFacts: 3, CheckEvery: 1},
	}).Handler())
	defer srv.Close()

	program := `own(X, Y, W) -> r(X, Y). r(X, Z), own(Z, Y, W) -> r(X, Y).`
	resp, body := doReq(t, "POST", srv.URL+"/v1/reason", `{"program":`+jsonQuote(program)+`}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 with truncation metadata (body %v)", resp.StatusCode, body)
	}
	if tr, _ := body["truncated"].(bool); !tr {
		t.Fatalf("truncated flag missing: %v", body)
	}
	if lim, _ := body["limit"].(string); lim != "max-facts" {
		t.Errorf("limit = %v, want max-facts", body["limit"])
	}
	st, ok := body["stats"].(map[string]any)
	if !ok {
		t.Fatalf("no stats in truncated reason response: %v", body)
	}
	if tr, _ := st["truncated"].(bool); !tr {
		t.Errorf("chase stats not marked truncated: %v", st)
	}
}

// TestReasonResponseEmbedsStats: a successful /v1/reason carries the chase
// report (per-rule rows, rounds) alongside the facts.
func TestReasonResponseEmbedsStats(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := doReq(t, "POST", srv.URL+"/v1/reason",
		`{"program":"own(X, Y, W) -> r(X, Y). r(X, Z), own(Z, Y, W) -> r(X, Y)."}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d (%v)", resp.StatusCode, body)
	}
	st, ok := body["stats"].(map[string]any)
	if !ok {
		t.Fatalf("no stats in reason response: %v", body)
	}
	rules, ok := st["rules"].([]any)
	if !ok || len(rules) != 2 {
		t.Fatalf("stats.rules = %v, want 2 rows", st["rules"])
	}
	row := rules[0].(map[string]any)
	for _, key := range []string{"rule", "firings", "derived", "duplicates", "evalNanos"} {
		if _, ok := row[key]; !ok {
			t.Errorf("rule row missing %q: %v", key, row)
		}
	}
	if n, _ := st["rounds"].(float64); n < 1 {
		t.Errorf("stats.rounds = %v", st["rounds"])
	}
	if _, ok := st["perRound"].([]any); !ok {
		t.Errorf("stats.perRound missing: %v", st)
	}
}

// jsonQuote JSON-quotes a program for embedding in a request body.
func jsonQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestMetricsShape drives a few requests and checks the /v1/metrics report:
// per-endpoint counters, cumulative latency histogram, error counts, and the
// last-chase report after a /v1/reason call.
func TestMetricsShape(t *testing.T) {
	srv, b := testServer(t)
	for i := 0; i < 3; i++ {
		if code := getJSON(t, srv.URL+"/v1/stats", nil); code != 200 {
			t.Fatalf("stats status = %d", code)
		}
	}
	if code := getJSON(t, srv.URL+"/v1/control", nil); code != 400 {
		t.Fatalf("bad control status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/nonsense", nil); code != 404 {
		t.Fatalf("unknown route status = %d", code)
	}
	resp, _ := doReq(t, "POST", srv.URL+"/v1/reason", `{"program":"own(X,Y,W) -> linked(X,Y)."}`)
	if resp.StatusCode != 200 {
		t.Fatalf("reason status = %d", resp.StatusCode)
	}
	_ = b

	var m Metrics
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	if m.UptimeSeconds <= 0 {
		t.Errorf("uptimeSeconds = %v", m.UptimeSeconds)
	}
	stats := m.Endpoints["GET /v1/stats"]
	if stats.Requests != 3 || stats.Errors != 0 {
		t.Errorf("GET /v1/stats counters = %+v, want 3 requests / 0 errors", stats)
	}
	if stats.Latency["+Inf"] != 3 {
		t.Errorf("latency +Inf bucket = %d, want 3 (cumulative)", stats.Latency["+Inf"])
	}
	if stats.MeanMillis < 0 || stats.MaxMillis < 0 || stats.TotalMillis < 0 {
		t.Errorf("negative latency aggregate: %+v", stats)
	}
	ctl := m.Endpoints["GET /v1/control"]
	if ctl.Requests != 1 || ctl.Errors != 1 {
		t.Errorf("GET /v1/control counters = %+v, want the 400 counted as request+error", ctl)
	}
	other := m.Endpoints["other"]
	if other.Requests != 1 || other.Errors != 1 {
		t.Errorf("unmatched-route counters = %+v, want 1/1 under \"other\"", other)
	}
	if m.LastChase == nil {
		t.Fatal("lastChase missing after a /v1/reason call")
	}
	if len(m.LastChase.Rules) == 0 || m.LastChase.Rounds < 1 {
		t.Errorf("lastChase report empty: %+v", m.LastChase)
	}
	// The metrics route counts itself on a later scrape.
	var m2 Metrics
	if code := getJSON(t, srv.URL+"/v1/metrics", &m2); code != 200 {
		t.Fatalf("second metrics scrape: %d", code)
	}
	if m2.Endpoints["GET /v1/metrics"].Requests < 1 {
		t.Error("metrics endpoint does not count itself")
	}
}

// TestMetricsDisabled: DisableMetrics turns /v1/metrics into an enveloped
// 404 and unmounts /debug/vars.
func TestMetricsDisabled(t *testing.T) {
	g, _ := pg.Figure2()
	srv := httptest.NewServer(NewServerWith(g, Config{DisableMetrics: true}).Handler())
	defer srv.Close()
	resp, body := doReq(t, "GET", srv.URL+"/v1/metrics", "")
	if resp.StatusCode != 404 {
		t.Fatalf("metrics status = %d, want 404", resp.StatusCode)
	}
	checkEnvelope(t, body, "not_found")
	if code := getJSON(t, srv.URL+"/debug/vars", nil); code != 404 {
		t.Errorf("/debug/vars status = %d, want 404 when metrics are off", code)
	}
	// The API itself still works.
	if code := getJSON(t, srv.URL+"/v1/stats", nil); code != 200 {
		t.Errorf("stats status = %d", code)
	}
}

// TestExpvarPublished: /debug/vars serves the process-wide request counters.
func TestExpvarPublished(t *testing.T) {
	srv, _ := testServer(t)
	if code := getJSON(t, srv.URL+"/v1/stats", nil); code != 200 {
		t.Fatal("stats request failed")
	}
	var vars map[string]any
	if code := getJSON(t, srv.URL+"/debug/vars", &vars); code != 200 {
		t.Fatalf("/debug/vars status = %d", code)
	}
	reqs, ok := vars["reasonapi.requests"].(map[string]any)
	if !ok {
		t.Fatalf("reasonapi.requests not published: %v", vars["reasonapi.requests"])
	}
	if n, _ := reqs["GET /v1/stats"].(float64); n < 1 {
		t.Errorf("expvar GET /v1/stats count = %v, want >= 1", reqs["GET /v1/stats"])
	}
}

// TestPprofOptIn: the profiling endpoints exist only under Config.Pprof.
func TestPprofOptIn(t *testing.T) {
	g, _ := pg.Figure2()
	on := httptest.NewServer(NewServerWith(g, Config{Pprof: true}).Handler())
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof enabled: status = %d, want 200", resp.StatusCode)
	}

	off, _ := testServer(t)
	if code := getJSON(t, off.URL+"/debug/pprof/cmdline", nil); code != 404 {
		t.Errorf("pprof default: status = %d, want 404", code)
	}
}

// TestRequestIDsDistinct: consecutive requests get distinct IDs, echoed in
// both the header and the error envelope.
func TestRequestIDsDistinct(t *testing.T) {
	srv, _ := testServer(t)
	resp1, body1 := doReq(t, "GET", srv.URL+"/v1/control", "")
	resp2, body2 := doReq(t, "GET", srv.URL+"/v1/control", "")
	id1, id2 := resp1.Header.Get("X-Request-ID"), resp2.Header.Get("X-Request-ID")
	if id1 == "" || id1 == id2 {
		t.Errorf("request IDs not distinct: %q vs %q", id1, id2)
	}
	if body1["requestID"] != id1 || body2["requestID"] != id2 {
		t.Errorf("envelope requestID does not echo the header: %v / %q", body1["requestID"], id1)
	}
}
