// Package reasonapi exposes the reasoning services of Vada-Link over HTTP —
// the "reasoning API" through which enterprise applications interact with
// the knowledge graph in the Section 5 architecture.
//
// Endpoints (all JSON):
//
//	GET  /v1/stats                      — graph profile (§2 statistics)
//	GET  /v1/control?node=ID            — companies controlled by a node
//	GET  /v1/control/pairs              — all control pairs
//	GET  /v1/closelinks?t=0.2           — close-link pairs
//	GET  /v1/accumulated?from=ID&to=ID  — accumulated ownership Φ(from, to)
//	POST /v1/augment                    — run KG augmentation (family links)
//	POST /v1/reason                     — evaluate a Vadalog program (budgeted)
//	GET  /v1/graph                      — the property graph as JSON
//	GET  /v1/explain?from=ID&to=ID      — derivation tree of a control decision
//
// The server holds one graph, injected at construction; mutation happens
// only through /v1/augment, which returns 503 + Retry-After when a mutation
// is already in flight instead of queueing.
//
// Every request runs under a wall-clock deadline (Config.Timeout) and the
// chase-backed endpoints under a resource Budget; when a limit trips, the
// response carries "truncated": true plus the tripped limit, so clients can
// tell a partial answer from a complete one. A panicking handler is
// converted into a JSON 500 with a request ID; the process survives.
package reasonapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/closelink"
	"vadalink/internal/cluster"
	"vadalink/internal/control"
	"vadalink/internal/core"
	"vadalink/internal/datalog"
	"vadalink/internal/embed"
	"vadalink/internal/faultinject"
	"vadalink/internal/graphstats"
	"vadalink/internal/pg"
	"vadalink/internal/relstore"
	"vadalink/internal/vadalog"
)

// DefaultTimeout is the per-request wall-clock budget when Config.Timeout
// is zero.
const DefaultTimeout = 30 * time.Second

// Config tunes the resource governance of the reasoning API.
type Config struct {
	// Timeout is the per-request wall-clock deadline. 0 means
	// DefaultTimeout; a negative value disables the deadline.
	Timeout time.Duration

	// Budget bounds every chase evaluation a request triggers (derived
	// facts, delta queue). The zero Budget imposes no fact limits — the
	// deadline is then the only guard.
	Budget datalog.Budget

	// MaxRounds caps the engine's semi-naive rounds per evaluation;
	// 0 keeps the engine default.
	MaxRounds int

	// RetryAfter is advertised in the Retry-After header of 503 responses.
	// 0 means 5 seconds.
	RetryAfter time.Duration

	// MaxBodyBytes caps request bodies on the POST endpoints.
	// 0 means 1 MiB.
	MaxBodyBytes int64
}

func (c Config) timeout() time.Duration {
	if c.Timeout == 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

func (c Config) retryAfterSeconds() int {
	ra := c.RetryAfter
	if ra <= 0 {
		ra = 5 * time.Second
	}
	s := int(ra / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return c.MaxBodyBytes
}

// Server serves the reasoning API over a company graph.
type Server struct {
	mu  sync.RWMutex
	g   *pg.Graph
	cfg Config

	// augMu serializes /v1/augment; TryLock turns contention into 503
	// instead of an unbounded queue on mu.
	augMu sync.Mutex

	reqSeq atomic.Uint64
}

// NewServer wraps a graph with the default governance (30s request
// deadline, unlimited facts).
func NewServer(g *pg.Graph) *Server { return NewServerWith(g, Config{}) }

// NewServerWith wraps a graph with explicit resource governance.
func NewServerWith(g *pg.Graph, cfg Config) *Server {
	return &Server{g: g, cfg: cfg}
}

// engineOptions is the budgeted engine configuration for request-triggered
// chases.
func (s *Server) engineOptions() datalog.Options {
	return datalog.Options{Budget: s.cfg.Budget, MaxRounds: s.cfg.MaxRounds}
}

// Handler returns the HTTP handler with all routes mounted, wrapped in the
// governance middleware (request IDs, panic recovery, per-request deadline).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/control", s.handleControl)
	mux.HandleFunc("GET /v1/control/pairs", s.handleControlPairs)
	mux.HandleFunc("GET /v1/closelinks", s.handleCloseLinks)
	mux.HandleFunc("GET /v1/accumulated", s.handleAccumulated)
	mux.HandleFunc("POST /v1/augment", s.handleAugment)
	mux.HandleFunc("POST /v1/reason", s.handleReason)
	mux.HandleFunc("GET /v1/graph", s.handleGraph)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/ubo", s.handleUBO)
	mux.HandleFunc("GET /v1/neighborhood", s.handleNeighborhood)
	return s.govern(mux)
}

// statusWriter tracks whether a response has been started, so the panic
// recovery knows whether it can still emit a JSON error.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// govern wraps the mux with the resource-governance middleware:
//
//   - every request gets an X-Request-ID;
//   - a panic in a handler becomes a JSON 500 carrying that ID — the
//     process survives;
//   - the request context gets the configured wall-clock deadline, which
//     the chase-backed handlers propagate into the engine.
func (s *Server) govern(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-ID", id)
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("reasonapi: %s %s %s: recovered panic: %v", id, r.Method, r.URL.Path, rec)
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError, map[string]any{
						"error":     fmt.Sprintf("internal error: %v", rec),
						"requestId": id,
					})
				}
			}
		}()
		ctx := r.Context()
		if t := s.cfg.timeout(); t > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
		faultinject.Fire(faultinject.SiteAPIHandler)
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// truncMeta classifies an interruption error into the JSON metadata of a
// partial response: {"truncated": true, "limit": ..., "detail": ...}.
// It returns nil for nil errors (complete responses).
func truncMeta(err error) map[string]any {
	if err == nil {
		return nil
	}
	var be *datalog.BudgetExceededError
	limit := ""
	switch {
	case errors.As(err, &be):
		limit = string(be.Limit)
	case errors.Is(err, context.DeadlineExceeded):
		limit = string(datalog.LimitDeadline)
	case errors.Is(err, context.Canceled):
		limit = string(datalog.LimitCancelled)
	default:
		limit = "error"
	}
	return map[string]any{"truncated": true, "limit": limit, "detail": err.Error()}
}

// handleUBO lists the ultimate beneficial owners of a company:
// GET /v1/ubo?node=ID.
func (s *Server) handleUBO(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	node, err := s.parseNode(r, "node")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	type item struct {
		ID   pg.NodeID `json:"id"`
		Name any       `json:"name,omitempty"`
	}
	ubos, runErr := control.UltimateControllersCtx(r.Context(), s.g, node)
	out := make([]item, 0, len(ubos))
	for _, id := range ubos {
		out = append(out, item{ID: id, Name: s.g.Node(id).Props["name"]})
	}
	resp := map[string]any{"node": node, "ultimateControllers": out}
	for k, v := range truncMeta(runErr) {
		resp[k] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleNeighborhood returns the ego network of a node as graph JSON:
// GET /v1/neighborhood?node=ID&hops=2.
func (s *Server) handleNeighborhood(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	node, err := s.parseNode(r, "node")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hops := 2
	if raw := r.URL.Query().Get("hops"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 || v > 10 {
			writeErr(w, http.StatusBadRequest, "bad hops %q (want 0–10)", raw)
			return
		}
		hops = v
	}
	sub, _ := s.g.Neighborhood(node, hops)
	w.Header().Set("Content-Type", "application/json")
	_ = sub.WriteJSON(w)
}

// handleExplain returns the derivation tree of a control decision — the §5
// explainability property over HTTP: GET /v1/explain?from=ID&to=ID.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	from, err := s.parseNode(r, "from")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	to, err := s.parseNode(r, "to")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	reasoner := vadalog.NewReasoner(s.g, vadalog.TaskControl)
	reasoner.Options = s.engineOptions()
	reasoner.Options.Provenance = true
	runErr := reasoner.RunContext(r.Context())
	var be *datalog.BudgetExceededError
	if runErr != nil && !errors.As(runErr, &be) {
		writeErr(w, http.StatusInternalServerError, "reasoning failed: %v", runErr)
		return
	}
	// On a budget trip the partial derivations remain readable: the tree is
	// reported if the pair was already derived, marked truncated otherwise.
	tree := reasoner.ExplainControl(from, to)
	resp := map[string]any{
		"from":     from,
		"to":       to,
		"controls": tree != nil,
		"why":      tree,
	}
	for k, v := range truncMeta(runErr) {
		resp[k] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, graphstats.Compute(s.g))
}

func (s *Server) parseNode(r *http.Request, param string) (pg.NodeID, error) {
	raw := r.URL.Query().Get(param)
	if raw == "" {
		return 0, fmt.Errorf("missing %q parameter", param)
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %q parameter: %v", param, err)
	}
	if s.g.Node(pg.NodeID(id)) == nil {
		return 0, fmt.Errorf("unknown node %d", id)
	}
	return pg.NodeID(id), nil
}

func (s *Server) handleControl(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	node, err := s.parseNode(r, "node")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	controlled, runErr := control.ControlsCtx(r.Context(), s.g, node)
	type item struct {
		ID   pg.NodeID `json:"id"`
		Name any       `json:"name,omitempty"`
	}
	out := make([]item, 0, len(controlled))
	for _, id := range controlled {
		out = append(out, item{ID: id, Name: s.g.Node(id).Props["name"]})
	}
	resp := map[string]any{"node": node, "controls": out}
	for k, v := range truncMeta(runErr) {
		resp[k] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleControlPairs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pairs, runErr := control.AllPairsCtx(r.Context(), s.g)
	if runErr == nil {
		writeJSON(w, http.StatusOK, pairs)
		return
	}
	resp := map[string]any{"pairs": pairs}
	for k, v := range truncMeta(runErr) {
		resp[k] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCloseLinks(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := closelink.DefaultThreshold
	if raw := r.URL.Query().Get("t"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 || v > 1 {
			writeErr(w, http.StatusBadRequest, "bad threshold %q", raw)
			return
		}
		t = v
	}
	links, runErr := closelink.CloseLinksCtx(r.Context(), s.g, t, closelink.Options{})
	type item struct {
		A      pg.NodeID `json:"a"`
		B      pg.NodeID `json:"b"`
		Reason string    `json:"reason"`
		Via    pg.NodeID `json:"via"`
	}
	out := make([]item, 0, len(links))
	for _, l := range links {
		reason := "direct"
		if l.Reason == closelink.ReasonCommonOwner {
			reason = "common-owner"
		}
		out = append(out, item{A: l.Pair.A, B: l.Pair.B, Reason: reason, Via: l.Via})
	}
	resp := map[string]any{"threshold": t, "links": out}
	for k, v := range truncMeta(runErr) {
		resp[k] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAccumulated(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	from, err := s.parseNode(r, "from")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	to, err := s.parseNode(r, "to")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	phi, runErr := closelink.AccumulatedCtx(r.Context(), s.g, from, to, closelink.Options{})
	resp := map[string]any{"from": from, "to": to, "phi": phi}
	for k, v := range truncMeta(runErr) {
		resp[k] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

// augmentRequest configures a POST /v1/augment run.
type augmentRequest struct {
	// Classes: any of "family", "control", "closelink". Empty means family.
	Classes []string `json:"classes"`
	// Clusters is the first-level k; 0 disables embedding clustering.
	Clusters int `json:"clusters"`
	// NoCluster forces the exhaustive single-block mode.
	NoCluster bool `json:"noCluster"`
}

func (s *Server) handleAugment(w http.ResponseWriter, r *http.Request) {
	var req augmentRequest
	if r.Body != nil {
		body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
		if err := json.NewDecoder(body).Decode(&req); err != nil && err.Error() != "EOF" {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	if len(req.Classes) == 0 {
		req.Classes = []string{"family"}
	}
	var cands []core.Candidate
	for _, c := range req.Classes {
		switch c {
		case "family":
			cands = append(cands, &core.FamilyCandidate{})
		case "control":
			cands = append(cands, core.ControlCandidate{})
		case "closelink":
			cands = append(cands, core.CloseLinkCandidate{})
		default:
			writeErr(w, http.StatusBadRequest, "unknown link class %q", c)
			return
		}
	}
	cfg := core.Config{
		Candidates:  cands,
		NoCluster:   req.NoCluster,
		FirstLevelK: req.Clusters,
		Embed:       embed.Config{Seed: 1},
	}
	if !req.NoCluster {
		cfg.Blocker = cluster.PersonBlocker{}
	}
	aug, err := core.New(cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// One mutation at a time: a second augment gets an immediate 503 with
	// Retry-After instead of queueing on the write lock forever.
	if !s.augMu.TryLock() {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
		writeErr(w, http.StatusServiceUnavailable, "augmentation already in progress; retry later")
		return
	}
	defer s.augMu.Unlock()
	s.mu.Lock()
	res, err := aug.RunContext(r.Context(), s.g)
	s.mu.Unlock()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// Completed rounds persist (augmentation is monotone); a retry
			// resumes from where this run stopped.
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
			resp := map[string]any{"error": fmt.Sprintf("augmentation interrupted: %v", err)}
			for k, v := range truncMeta(err) {
				resp[k] = v
			}
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
		writeErr(w, http.StatusInternalServerError, "augmentation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"added":       res.Added,
		"rounds":      res.Rounds,
		"comparisons": res.Comparisons,
		"blocks":      res.Blocks,
	})
}

// reasonRequest configures a POST /v1/reason evaluation: a Vadalog program
// evaluated over the company graph's relational facts, under the server's
// budget plus any tighter per-request limits.
type reasonRequest struct {
	// Program is the rule text (Vadalog subset syntax; see internal/datalog).
	Program string `json:"program"`
	// Predicates selects which derived predicates to return. Empty means
	// every head predicate of the program.
	Predicates []string `json:"predicates"`
	// MaxFacts tightens the server's fact budget for this request only
	// (it can lower the cap, never raise it).
	MaxFacts int `json:"maxFacts"`
	// MaxFactsPerPredicate caps the facts returned per predicate in the
	// response. 0 means 10000.
	MaxFactsPerPredicate int `json:"maxFactsPerPredicate"`
}

// handleReason evaluates an ad-hoc program. A non-terminating program does
// not hang the server: the chase stops at the request deadline (or fact
// budget) and the response reports the partial derivation with
// "truncated": true and the tripped limit.
func (s *Server) handleReason(w http.ResponseWriter, r *http.Request) {
	var req reasonRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Program == "" {
		writeErr(w, http.StatusBadRequest, "missing program")
		return
	}
	prog, err := datalog.Parse(req.Program)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parsing program: %v", err)
		return
	}
	opts := s.engineOptions()
	if req.MaxFacts > 0 && (opts.Budget.MaxFacts == 0 || req.MaxFacts < opts.Budget.MaxFacts) {
		opts.Budget.MaxFacts = req.MaxFacts
	}
	engine, err := datalog.NewEngine(prog, opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "preparing engine: %v", err)
		return
	}

	// Extract the graph's relational image under the read lock, then run
	// the chase without holding it.
	s.mu.RLock()
	facts := relstore.CompanyGraphFacts(s.g)
	s.mu.RUnlock()
	engine.AssertAll(facts)

	runErr := engine.RunContext(r.Context())
	var be *datalog.BudgetExceededError
	if runErr != nil && !errors.As(runErr, &be) &&
		!errors.Is(runErr, context.DeadlineExceeded) && !errors.Is(runErr, context.Canceled) {
		// A genuine evaluation error (bad builtin, type error), not a
		// budget trip.
		writeErr(w, http.StatusUnprocessableEntity, "evaluating program: %v", runErr)
		return
	}

	preds := req.Predicates
	if len(preds) == 0 {
		seen := map[string]bool{}
		for _, rule := range prog.Rules {
			for _, h := range rule.Head {
				if !seen[h.Pred] {
					seen[h.Pred] = true
					preds = append(preds, h.Pred)
				}
			}
		}
	}
	perPred := req.MaxFactsPerPredicate
	if perPred <= 0 {
		perPred = 10000
	}
	factsOut := make(map[string][][]any, len(preds))
	for _, p := range preds {
		fs := engine.FactsN(p, perPred)
		rows := make([][]any, 0, len(fs))
		for _, f := range fs {
			row := make([]any, len(f.Args))
			for i, a := range f.Args {
				row[i] = jsonValue(a)
			}
			rows = append(rows, row)
		}
		factsOut[p] = rows
	}
	resp := map[string]any{
		"facts":   factsOut,
		"rounds":  engine.Rounds(),
		"derived": engine.DerivedCount(),
	}
	for k, v := range truncMeta(runErr) {
		resp[k] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

// jsonValue converts a datalog term value into a JSON-encodable value;
// labeled nulls and Skolem terms render as their canonical strings.
func jsonValue(v any) any {
	switch x := v.(type) {
	case string, float64, bool, int64, int:
		return x
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	_ = s.g.WriteJSON(w)
}
