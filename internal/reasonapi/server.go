// Package reasonapi exposes the reasoning services of Vada-Link over HTTP —
// the "reasoning API" through which enterprise applications interact with
// the knowledge graph in the Section 5 architecture.
//
// Endpoints (all JSON):
//
//	GET  /v1/stats                      — graph profile (§2 statistics)
//	GET  /v1/control?node=ID            — companies controlled by a node
//	GET  /v1/control/pairs              — all control pairs
//	GET  /v1/closelinks?t=0.2           — close-link pairs
//	GET  /v1/accumulated?from=ID&to=ID  — accumulated ownership Φ(from, to)
//	POST /v1/augment                    — run KG augmentation (family links)
//	POST /v1/reason                     — evaluate a Vadalog program (budgeted)
//	POST /v1/query                      — answer one goal atom demand-driven
//	POST /v1/whatif                     — counterfactual scenario over an overlay
//	GET  /v1/graph                      — the property graph as JSON
//	GET  /v1/explain?from=ID&to=ID      — derivation tree of a control decision
//	POST /v1/admin/snapshot             — force a durable snapshot (persistence)
//	GET  /v1/healthz                    — liveness probe (always 200)
//	GET  /v1/readyz                     — readiness probe (drain, WAL, replication)
//
// The server holds one graph, injected at construction; mutation happens
// only through /v1/augment, which returns 503 + Retry-After when a mutation
// is already in flight instead of queueing.
//
// The point endpoints (/v1/query, /v1/control, /v1/ubo, /v1/accumulated,
// /v1/explain, /v1/closelinks, /v1/control/pairs) answer through a
// byte-budgeted query-result cache: responses are stamped with the sequence
// number of the version they are exact for ("seq" in the body) plus an
// X-Cache: hit|miss header, and the IVM commit classifier decides which
// commits invalidate which entries — write traffic that cannot move the
// derived relations keeps hot point answers alive.
//
// Reads are MVCC snapshots: the graph is published through a store.Versioned
// chain of immutable versions, read handlers pin the current version without
// taking any lock, and /v1/augment builds the successor in a copy-on-write
// overlay transaction — an in-flight augmentation never blocks a read, and a
// reader never observes a half-applied mutation. /v1/whatif layers a further
// private overlay on the pinned version, so counterfactuals touch neither
// the published chain nor the WAL. Follower mode keeps the locked read path:
// there the replication stream rewrites the graph in place under the write
// lock.
//
// Every request runs under a wall-clock deadline (Config.Timeout) and the
// chase-backed endpoints under a resource Budget; when a limit trips, the
// response carries "truncated": true plus the tripped limit, so clients can
// tell a partial answer from a complete one. A panicking handler is
// converted into a JSON 500 with a request ID; the process survives.
package reasonapi

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/closelink"
	"vadalink/internal/cluster"
	"vadalink/internal/control"
	"vadalink/internal/core"
	"vadalink/internal/datalog"
	"vadalink/internal/embed"
	"vadalink/internal/faultinject"
	"vadalink/internal/graphstats"
	"vadalink/internal/ivm"
	"vadalink/internal/persist"
	"vadalink/internal/pg"
	"vadalink/internal/qcache"
	"vadalink/internal/relstore"
	"vadalink/internal/replication"
	"vadalink/internal/store"
	"vadalink/internal/vadalog"
	"vadalink/internal/whatif"
)

// DefaultTimeout is the per-request wall-clock budget when Config.Timeout
// is zero.
const DefaultTimeout = 30 * time.Second

// ivmQueueCap bounds the follower's pending-maintenance journal; beyond it
// a full rebuild on next read beats replaying the backlog.
const ivmQueueCap = 1 << 16

// Config tunes the resource governance of the reasoning API.
type Config struct {
	// Timeout is the per-request wall-clock deadline. 0 means
	// DefaultTimeout; a negative value disables the deadline.
	Timeout time.Duration

	// Budget bounds every chase evaluation a request triggers (derived
	// facts, delta queue). The zero Budget imposes no fact limits — the
	// deadline is then the only guard.
	Budget datalog.Budget

	// MaxRounds caps the engine's semi-naive rounds per evaluation;
	// 0 keeps the engine default.
	MaxRounds int

	// MinAggDelta is the minimum monotonic-aggregate improvement the chase
	// re-derives on. 0 means whatif.DefaultMinAggDelta (1e-4) — on cyclic
	// ownership graphs the engine's exact-convergence default (1e-9) makes
	// the aggregate fixpoint exponential in −log(ε), turning sub-second
	// chases into minutes. A negative value restores the engine default for
	// callers that need near-exact totals and accept the cost.
	MinAggDelta float64

	// DisableIVM turns off incremental view maintenance: every /v1/whatif
	// baseline is then recomputed from scratch when the version changes.
	// Maintenance is on by default in both leader and follower modes.
	DisableIVM bool

	// QueryCacheBytes bounds the query-result cache behind the point
	// endpoints (/v1/query and the goal forms of the reasoning reads).
	// 0 means qcache.DefaultMaxBytes (64 MiB); negative disables the cache
	// entirely — every point query then recomputes.
	QueryCacheBytes int64

	// RetryAfter is advertised in the Retry-After header of 503 responses.
	// 0 means 5 seconds.
	RetryAfter time.Duration

	// MaxBodyBytes caps request bodies on the POST endpoints.
	// 0 means 1 MiB.
	MaxBodyBytes int64

	// DisableMetrics turns off the per-endpoint counters and the
	// GET /v1/metrics endpoint (which then answers 404). Metrics are on by
	// default: a handful of atomic adds per request.
	DisableMetrics bool

	// Pprof mounts net/http/pprof under /debug/pprof/ — opt-in, since the
	// profiling endpoints expose internals and cost CPU while sampling.
	Pprof bool

	// Logger receives one structured access-log record per request
	// (method, path, status, duration, request ID). nil disables access
	// logging.
	Logger *slog.Logger

	// Persist is the durable store backing the graph, when crash-safe
	// persistence is on. The server then syncs the WAL before acknowledging
	// a mutation (/v1/augment), serves POST /v1/admin/snapshot, and reports
	// recovery and persistence state in /v1/metrics. nil keeps the graph
	// memory-only.
	Persist *persist.Store

	// Follower puts the server in read-only replica mode: reads are served
	// from the follower's graph (with replication lag and staleness
	// headers), writes are rejected with a typed redirect-to-leader error,
	// and reads staler than MaxStaleness get 503 + Retry-After. The server
	// wires its own read lock and graph pointer into the follower at
	// construction; callers only need to Run it.
	Follower *replication.Follower

	// LeaderAPI is the leader's API base address ("host:port" or URL)
	// advertised in not_leader error envelopes so clients can redirect
	// their writes. Only meaningful with Follower.
	LeaderAPI string

	// MaxStaleness bounds how stale a follower read may be: when the
	// follower has not observed parity with the leader for longer than
	// this, reads answer 503 with code "stale_replica". 0 means 5s;
	// negative serves reads regardless of staleness. Only meaningful with
	// Follower.
	MaxStaleness time.Duration

	// Leader is the replication leader serving this store's WAL, when this
	// process is the replication leader. Used only for /v1/metrics and
	// /v1/readyz reporting; the leader serves its stream on its own
	// listener.
	Leader *replication.Leader

	// Node puts the server in self-healing replica-group mode: the node's
	// role decides dynamically whether this process serves writes. While
	// the node leads, /v1/augment is accepted and acknowledged only after
	// Node.Commit makes the facts durable on a majority at the current
	// epoch; while it follows, writes get 421 not_leader carrying the
	// CURRENT leader's API address (learned from the stream handshake, not
	// from static configuration), and reads are served with the staleness
	// gating of follower mode. Node supersedes Follower/Leader: the server
	// wires the node's own follower and leader halves, and any explicitly
	// set Follower is ignored. LeaderAPI remains the static fallback hint
	// for 421 envelopes when the group has no known leader yet.
	Node *replication.Node
}

func (c Config) maxStaleness() time.Duration {
	if c.MaxStaleness == 0 {
		return 5 * time.Second
	}
	return c.MaxStaleness
}

func (c Config) timeout() time.Duration {
	if c.Timeout == 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

func (c Config) retryAfterSeconds() int {
	ra := c.RetryAfter
	if ra <= 0 {
		ra = 5 * time.Second
	}
	s := int(ra / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return c.MaxBodyBytes
}

func (c Config) minAggDelta() float64 {
	switch {
	case c.MinAggDelta > 0:
		return c.MinAggDelta
	case c.MinAggDelta < 0:
		return 0 // the engine resolves 0 to its exact-convergence default
	default:
		return whatif.DefaultMinAggDelta
	}
}

// Server serves the reasoning API over a company graph.
type Server struct {
	mu  sync.RWMutex
	g   *pg.Graph
	cfg Config

	// vs is the MVCC version chain in leader/standalone mode: reads pin
	// Current() lock-free, /v1/augment commits overlay transactions against
	// it, and s.g stays the private writer master the WAL hook hangs on.
	// nil in follower mode, where reads stay under mu.
	vs *store.Versioned

	// blCache holds the what-if baseline of one (version, threshold) pair;
	// every /v1/whatif against the same published version reuses it instead
	// of re-chasing the base graph.
	blCache atomic.Pointer[baselineEntry]

	// qc caches marshaled point-query responses keyed by goal and stamped
	// with the sequence they were computed at; invalidated from the commit
	// stream via the IVM relevance classifier. nil when
	// Config.QueryCacheBytes is negative.
	qc *qcache.Cache

	// ivmM maintains the derived ownership baseline incrementally across
	// commits (leader: fed by the store's commit hook; follower: fed lazily
	// from the queued replication journal). nil when Config.DisableIVM.
	ivmM *ivm.Maintainer
	// ivmQ buffers follower-observed mutations until a read drains them
	// into the maintainer — frames apply under the write lock, where running
	// a maintenance chase would stall the replication stream.
	ivmQMu sync.Mutex
	ivmQ   []pg.Mutation

	// augMu serializes /v1/augment; TryLock turns contention into 503
	// instead of an unbounded queue on mu.
	augMu sync.Mutex

	// activeMut counts in-flight graph mutations (augment runs, admin
	// snapshots). Serve's drain blocks on it so the graph is quiescent
	// before the caller tears down shared state.
	activeMut atomic.Int64

	reqSeq atomic.Uint64

	// draining flips when shutdown begins; /v1/readyz then reports unready
	// so load balancers stop sending traffic before the listener closes.
	draining atomic.Bool

	// metrics is the per-endpoint counter registry (nil when
	// Config.DisableMetrics); metricsOnce builds it on the first Handler
	// call. lastChase is the statistics report of the most recent
	// request-triggered chase, served in /v1/metrics.
	metrics     *serverMetrics
	metricsOnce sync.Once
	lastChase   atomic.Pointer[datalog.ChaseStats]
}

// NewServer wraps a graph with the default governance (30s request
// deadline, unlimited facts).
func NewServer(g *pg.Graph) *Server { return NewServerWith(g, Config{}) }

// NewServerWith wraps a graph with explicit resource governance. In
// follower mode (cfg.Follower set) g may be nil — the server serves the
// follower's recovered graph and tracks it across snapshot bootstraps.
func NewServerWith(g *pg.Graph, cfg Config) *Server {
	if nd := cfg.Node; nd != nil {
		// Replica-group mode reuses the whole follower wiring (read lock,
		// bootstrap swap, IVM/cache invalidation) on the node's tailing
		// half, and the leader half for stream metrics. The store is the
		// node's own, so durability plumbing stays consistent too.
		cfg.Follower = nd.Follower()
		if cfg.Leader == nil {
			cfg.Leader = nd.Leader()
		}
		if cfg.Persist == nil {
			cfg.Persist = nd.Store()
		}
	}
	s := &Server{g: g, cfg: cfg}
	if !cfg.DisableIVM {
		s.ivmM = ivm.New(whatif.DefaultThreshold, s.engineOptions()...)
	}
	if cfg.QueryCacheBytes >= 0 {
		s.qc = qcache.New(cfg.QueryCacheBytes)
	}
	if fl := cfg.Follower; fl != nil {
		if s.g == nil {
			s.g = fl.Graph()
		}
		// Frames apply under the server's write lock, so readers never see
		// a half-applied mutation; a bootstrap re-points the served graph
		// inside the same critical section.
		fl.SetLock(&s.mu)
		fl.OnSwap(func(ng *pg.Graph) {
			s.g = ng
			if s.qc != nil {
				// No journal describes a snapshot bootstrap: drop everything.
				s.qc.Flush()
			}
			if s.ivmM != nil {
				// A bootstrap replaced the graph wholesale; the journal the
				// queue holds describes the old object.
				s.ivmQMu.Lock()
				s.ivmQ = nil
				s.ivmQMu.Unlock()
				s.ivmM.Invalidate()
			}
		})
		if s.qc != nil {
			// Invalidate cached point answers from the replication stream,
			// classified exactly like leader-side commits: a frame that cannot
			// move the derived relations keeps derived entries alive.
			fl.OnMutation(func(mut pg.Mutation) {
				s.qc.OnCommit(uint64(fl.Seq()), ivm.RelevantMutations([]pg.Mutation{mut}))
			})
		}
		if s.ivmM != nil {
			// Enqueue only: the observer runs under the write lock, where a
			// maintenance chase would stall frame application. The next read
			// drains the queue (see followerBaselineLocked). A runaway queue
			// (no reads at the maintained threshold for a long stretch of
			// writes) is cheaper to rebuild than to replay, so it drops.
			fl.OnMutation(func(mut pg.Mutation) {
				s.ivmQMu.Lock()
				s.ivmQ = append(s.ivmQ, mut)
				drop := len(s.ivmQ) > ivmQueueCap
				if drop {
					s.ivmQ = nil
				}
				s.ivmQMu.Unlock()
				if drop {
					s.ivmM.Invalidate()
				}
			})
		}
		return s
	}
	// Leader/standalone: publish the graph as version 0 and serve reads from
	// the immutable version chain. s.g remains the writer master — commits
	// replay onto it, so a WAL capture hook set by persistence keeps seeing
	// exactly the committed mutations.
	s.vs = store.NewVersioned(g)
	if s.ivmM != nil {
		// Maintain derived state at commit time: the hook runs under the
		// commit lock after the version is published, so maintenance sees
		// commits in order, exactly once. Any maintenance error invalidates
		// the maintainer and the next what-if falls back to a full chase.
		s.vs.SetCommitHook(func(next *store.Version, journal []pg.Mutation) {
			_ = s.ivmM.Apply(context.Background(), next.View(), next.Seq()-1, next.Seq(), journal)
		})
	}
	if s.qc != nil {
		// The cache invalidation composes with the maintenance hook above:
		// every commit is classified once by the shared IVM relevance rules,
		// and irrelevant commits leave the derived-class entries standing.
		s.vs.AddCommitHook(func(next *store.Version, journal []pg.Mutation) {
			s.qc.OnCommit(next.Seq(), ivm.RelevantMutations(journal))
		})
	}
	return s
}

// view returns the read view for one request plus a release function. In
// MVCC mode it pins the currently published immutable version — no lock, no
// contention with an in-flight augment. In follower mode it takes the read
// lock, because the replication stream mutates the served graph in place.
func (s *Server) view() (pg.View, func()) {
	if s.vs != nil {
		return s.vs.Current().View(), func() {}
	}
	s.mu.RLock()
	return s.g, s.mu.RUnlock
}

// engineOptions is the budgeted engine configuration for request-triggered
// chases. Stats collection is on so /v1/reason and /v1/metrics can report
// what the chase did. The aggregate-convergence step (Config.MinAggDelta)
// rides along so every chase the server runs — baselines, what-ifs,
// augmentations, ad-hoc programs, incremental maintenance — shares one ε:
// mixing steps would make seeded rows and re-derived rows disagree.
func (s *Server) engineOptions() []datalog.Option {
	return []datalog.Option{
		datalog.WithMinAggDelta(s.cfg.minAggDelta()),
		datalog.WithBudget(s.cfg.Budget),
		datalog.WithMaxRounds(s.cfg.MaxRounds),
		datalog.WithStats(),
	}
}

// recordChase publishes a chase report as the "last chase" of /v1/metrics.
func (s *Server) recordChase(st *datalog.ChaseStats) {
	if st != nil {
		s.lastChase.Store(st)
	}
}

// Handler returns the HTTP handler with all routes mounted, wrapped in the
// governance middleware (request IDs, metrics, access logs, panic recovery,
// per-request deadline).
func (s *Server) Handler() http.Handler {
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"GET /v1/stats", s.handleStats},
		{"GET /v1/control", s.handleControl},
		{"GET /v1/control/pairs", s.handleControlPairs},
		{"GET /v1/closelinks", s.handleCloseLinks},
		{"GET /v1/accumulated", s.handleAccumulated},
		{"POST /v1/augment", s.handleAugment},
		{"POST /v1/whatif", s.handleWhatif},
		{"POST /v1/reason", s.handleReason},
		{"POST /v1/query", s.handleQuery},
		{"GET /v1/graph", s.handleGraph},
		{"GET /v1/explain", s.handleExplain},
		{"GET /v1/ubo", s.handleUBO},
		{"GET /v1/neighborhood", s.handleNeighborhood},
		{"GET /v1/metrics", s.handleMetrics},
		{"POST /v1/admin/snapshot", s.handleAdminSnapshot},
		{"GET /v1/healthz", s.handleHealthz},
		{"GET /v1/readyz", s.handleReadyz},
	}
	if !s.cfg.DisableMetrics {
		s.metricsOnce.Do(func() {
			names := make([]string, len(routes))
			for i, rt := range routes {
				names[i] = rt.pattern
			}
			initExpvar()
			s.metrics = newServerMetrics(names)
		})
	}
	mux := http.NewServeMux()
	for _, rt := range routes {
		pattern, h := rt.pattern, rt.h
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			// Label the response writer so the governance middleware can
			// attribute metrics and logs to the matched route (the mux
			// pattern is not exposed on Go 1.22).
			if sw, ok := w.(*statusWriter); ok {
				sw.route = pattern
			}
			h(w, r)
		})
	}
	if !s.cfg.DisableMetrics {
		mux.Handle("GET /debug/vars", expvar.Handler())
	}
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.govern(mux)
}

// ctxKeyRequestID carries the request ID through the request context so the
// error envelope can echo it from any handler depth.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestIDFrom returns the request's ID assigned by the governance
// middleware ("" outside it).
func requestIDFrom(r *http.Request) string {
	id, _ := r.Context().Value(ctxKeyRequestID).(string)
	return id
}

// statusWriter tracks the response status for metrics and logs, lets the
// panic recovery know whether it can still emit a JSON error, and rewrites
// the mux's plaintext 404/405 fallbacks into the JSON error envelope.
type statusWriter struct {
	http.ResponseWriter
	wrote   bool
	status  int
	route   string // mux pattern, "" when no route matched
	reqID   string
	swallow bool // dropping the plaintext body of a rewritten 404/405
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wrote {
		w.ResponseWriter.WriteHeader(code)
		return
	}
	w.wrote = true
	w.status = code
	// A plaintext 404/405 at this point is the ServeMux fallback (or a stray
	// http.Error): rewrite it into the JSON envelope, dropping its body.
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		w.swallow = true
		msg, errCode := "not found", "not_found"
		if code == http.StatusMethodNotAllowed {
			msg, errCode = "method not allowed", "method_not_allowed"
		}
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(code)
		_ = json.NewEncoder(w.ResponseWriter).Encode(map[string]any{
			"error": msg, "code": errCode, "requestID": w.reqID,
		})
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.swallow {
		return len(b), nil
	}
	if !w.wrote {
		w.wrote = true
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// governedHandler is what Handler returns: the governed mux plus the drain
// coordination surface Serve type-asserts for.
type governedHandler struct {
	http.Handler
	s *Server
}

// AwaitMutations blocks until no graph mutation (augment run, admin
// snapshot) is in flight, bounded by the server's request deadline plus
// grace. Serve calls it after Shutdown so a timed-out drain cannot abandon a
// handler that is still writing the graph while the caller tears down shared
// state.
func (g *governedHandler) AwaitMutations(ctx context.Context) error {
	return g.s.awaitMutations(ctx)
}

// StartDrain marks the server as draining: /v1/readyz flips to 503 so load
// balancers pull the node before in-flight requests are cut off. Serve calls
// it the moment its context is cancelled, before Shutdown.
func (g *governedHandler) StartDrain() { g.s.draining.Store(true) }

func (s *Server) awaitMutations(ctx context.Context) error {
	bound := s.cfg.timeout()
	if bound <= 0 {
		bound = DefaultTimeout
	}
	// In-flight mutations run under the request deadline, so they finish
	// within it; the grace covers post-deadline unwinding and WAL sync.
	deadline := time.After(bound + 2*time.Second)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.activeMut.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline:
			return fmt.Errorf("reasonapi: shutdown abandoned %d in-flight mutation(s)", s.activeMut.Load())
		case <-tick.C:
		}
	}
}

// govern wraps the mux with the observability and resource-governance
// middleware:
//
//   - every request gets an X-Request-ID, echoed in error envelopes;
//   - per-route counters and latency histograms feed GET /v1/metrics;
//   - Config.Logger receives one structured access-log record per request;
//   - a panic in a handler becomes a JSON 500 carrying the request ID — the
//     process survives;
//   - the request context gets the configured wall-clock deadline, which
//     the chase-backed handlers propagate into the engine.
func (s *Server) govern(next http.Handler) http.Handler {
	return &governedHandler{s: s, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, reqID: id}
		sw.Header().Set("X-Request-ID", id)
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
		r = r.WithContext(ctx)
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("reasonapi: %s %s %s: recovered panic: %v", id, r.Method, r.URL.Path, rec)
				if !sw.wrote {
					writeErr(sw, r, http.StatusInternalServerError, "internal", "internal error: %v", rec)
				} else {
					sw.status = http.StatusInternalServerError
				}
			}
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			elapsed := time.Since(t0)
			if s.metrics != nil {
				route := sw.route
				if route == "" {
					route = "other"
				}
				s.metrics.observe(route, status, elapsed)
			}
			if lg := s.cfg.Logger; lg != nil {
				lg.LogAttrs(context.Background(), slog.LevelInfo, "request",
					slog.String("id", id),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Int("status", status),
					slog.Duration("duration", elapsed),
				)
			}
		}()
		if t := s.cfg.timeout(); t > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
			r = r.WithContext(ctx)
		}
		faultinject.Fire(faultinject.SiteAPIHandler)
		if s.cfg.Follower != nil && s.followerGate(sw, r) {
			return
		}
		next.ServeHTTP(sw, r)
	})}
}

// handleAdminSnapshot forces a durable snapshot + WAL rotation:
// POST /v1/admin/snapshot. It takes the same exclusive turn as /v1/augment,
// so a snapshot never captures a half-applied augmentation.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	ps := s.cfg.Persist
	if ps == nil {
		writeErr(w, r, http.StatusNotFound, "not_found", "persistence is not configured on this server")
		return
	}
	if !s.augMu.TryLock() {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
		writeErr(w, r, http.StatusServiceUnavailable, "busy", "a mutation is in progress; retry later")
		return
	}
	defer s.augMu.Unlock()
	s.activeMut.Add(1)
	defer s.activeMut.Add(-1)
	s.mu.Lock()
	info, err := ps.Snapshot()
	s.mu.Unlock()
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "persist_failed", "snapshot failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleMetrics serves the per-endpoint counters and the last chase report:
// GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		writeErr(w, r, http.StatusNotFound, "not_found", "metrics are disabled on this server")
		return
	}
	m := s.metrics.snapshot(s.lastChase.Load())
	if s.ivmM != nil {
		st := s.ivmM.Stats()
		m.Incremental = &st
	}
	if ps := s.cfg.Persist; ps != nil {
		rec, st := ps.Recovery(), ps.Stats()
		m.Recovery, m.Persistence = &rec, &st
	}
	if fl := s.cfg.Follower; fl != nil {
		st := fl.Status()
		m.Replication = &st
	}
	if ld := s.cfg.Leader; ld != nil {
		st := ld.Status()
		m.ReplicationLeader = &st
	}
	if nd := s.cfg.Node; nd != nil {
		st := nd.Status()
		m.ReplicaGroup = &st
	}
	if s.qc != nil {
		st := s.qc.Stats()
		m.Cache = &st
	}
	writeJSON(w, http.StatusOK, m)
}

// truncMeta classifies an interruption error into the JSON metadata of a
// partial response: {"truncated": true, "limit": ..., "detail": ...}.
// It returns nil for nil errors (complete responses).
func truncMeta(err error) map[string]any {
	if err == nil {
		return nil
	}
	var be *datalog.BudgetExceededError
	limit := ""
	switch {
	case errors.As(err, &be):
		limit = string(be.Limit)
	case errors.Is(err, context.DeadlineExceeded):
		limit = string(datalog.LimitDeadline)
	case errors.Is(err, context.Canceled):
		limit = string(datalog.LimitCancelled)
	default:
		limit = "error"
	}
	return map[string]any{"truncated": true, "limit": limit, "detail": err.Error()}
}

// handleUBO lists the ultimate beneficial owners of a company:
// GET /v1/ubo?node=ID.
// handleUBO lists the ultimate beneficial owners of a company:
// GET /v1/ubo?node=ID. The reverse question ("who controls this company?")
// is where demand transformation pays most: the goal control(X, node) binds
// the second argument, so only node's reverse ownership cone is derived
// instead of running the control fixpoint from every person in the graph.
func (s *Server) handleUBO(w http.ResponseWriter, r *http.Request) {
	v, seq, release := s.viewSeq()
	defer release()
	node, err := parseNode(v, r, "node")
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	s.servePoint(w, r, seq, fmt.Sprintf("ubo:%d", node), qcache.ClassDerived, func() (map[string]any, error) {
		type item struct {
			ID   pg.NodeID `json:"id"`
			Name any       `json:"name,omitempty"`
		}
		ubos, mode, runErr := control.GoalUltimateControllers(r.Context(), v, node, s.engineOptions()...)
		out := make([]item, 0, len(ubos))
		for _, id := range ubos {
			out = append(out, item{ID: id, Name: v.Node(id).Props["name"]})
		}
		resp := map[string]any{"node": node, "ultimateControllers": out, "mode": mode}
		for k, vv := range truncMeta(runErr) {
			resp[k] = vv
		}
		return resp, runErr
	})
}

// handleNeighborhood returns the ego network of a node as graph JSON:
// GET /v1/neighborhood?node=ID&hops=2.
func (s *Server) handleNeighborhood(w http.ResponseWriter, r *http.Request) {
	v, release := s.view()
	defer release()
	node, err := parseNode(v, r, "node")
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	hops := 2
	if raw := r.URL.Query().Get("hops"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 || v > 10 {
			writeErr(w, r, http.StatusBadRequest, "bad_request", "bad hops %q (want 0–10)", raw)
			return
		}
		hops = v
	}
	sub, _ := pg.NeighborhoodOf(v, node, hops)
	w.Header().Set("Content-Type", "application/json")
	_ = sub.WriteJSON(w)
}

// handleExplain returns the derivation tree of a control decision — the §5
// explainability property over HTTP: GET /v1/explain?from=ID&to=ID.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	v, seq, release := s.viewSeq()
	defer release()
	from, err := parseNode(v, r, "from")
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	to, err := parseNode(v, r, "to")
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	s.servePoint(w, r, seq, fmt.Sprintf("explain:%d:%d", from, to), qcache.ClassDerived, func() (map[string]any, error) {
		// The explained pair is a fully bound goal: demand derives only the
		// cone connecting from to to, and the provenance of that cone is all
		// the tree needs. StripDemandMarkers removes the rewrite's magic and
		// bridge bookkeeping so the "why" reads exactly like the full chase's.
		goal := datalog.Atom{Pred: "control", Terms: []datalog.Term{
			datalog.Int(int64(from)), datalog.Int(int64(to)),
		}}
		prog, perr := datalog.Parse(vadalog.ControlProgram)
		if perr != nil {
			return nil, perr
		}
		opts := append(s.engineOptions(), datalog.WithProvenance())
		mode := vadalog.GoalModeMagic
		e, eerr := datalog.NewGoalEngine(prog, goal, opts...)
		if eerr != nil {
			var nd *datalog.ErrNotDemandable
			if !errors.As(eerr, &nd) {
				return nil, eerr
			}
			mode = vadalog.GoalModeFull
			if e, eerr = datalog.NewEngine(prog, opts...); eerr != nil {
				return nil, eerr
			}
		}
		e.AssertAll(relstore.CompanyGraphFacts(v))
		runErr := e.RunContext(r.Context())
		s.recordChase(e.Stats())
		var be *datalog.BudgetExceededError
		if runErr != nil && !errors.As(runErr, &be) &&
			!errors.Is(runErr, context.DeadlineExceeded) && !errors.Is(runErr, context.Canceled) {
			return nil, runErr
		}
		// On a budget trip the partial derivations remain readable: the tree
		// is reported if the pair was already derived, marked truncated
		// otherwise.
		var tree []string
		f := datalog.Fact{Pred: "control", Args: []any{int64(from), int64(to)}}
		if e.Has(f) {
			tree = datalog.StripDemandMarkers(e.ExplainTree(f, 0))
		}
		resp := map[string]any{
			"from":     from,
			"to":       to,
			"controls": tree != nil,
			"why":      tree,
			"mode":     mode,
		}
		for k, vv := range truncMeta(runErr) {
			resp[k] = vv
		}
		return resp, runErr
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr emits the API's uniform JSON error envelope (see DESIGN.md §"HTTP
// error envelope"): {"error", "code", "requestID"}, plus "retryAfter"
// (seconds) when a Retry-After header is set on the response.
func writeErr(w http.ResponseWriter, r *http.Request, status int, code string, format string, args ...any) {
	body := map[string]any{
		"error":     fmt.Sprintf(format, args...),
		"code":      code,
		"requestID": requestIDFrom(r),
	}
	if ra := w.Header().Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil {
			body["retryAfter"] = n
		}
	}
	writeJSON(w, status, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	v, release := s.view()
	defer release()
	writeJSON(w, http.StatusOK, graphstats.Compute(v))
}

func parseNode(v pg.View, r *http.Request, param string) (pg.NodeID, error) {
	raw := r.URL.Query().Get(param)
	if raw == "" {
		return 0, fmt.Errorf("missing %q parameter", param)
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %q parameter: %v", param, err)
	}
	if v.Node(pg.NodeID(id)) == nil {
		return 0, fmt.Errorf("unknown node %d", id)
	}
	return pg.NodeID(id), nil
}

// handleControl answers the control question in two demand-driven forms:
// GET /v1/control?node=ID lists the companies the node controls (forward
// demand), GET /v1/control?node=ID&target=ID answers the single pair as a
// boolean (fully bound demand — only the derivation cone connecting the two
// is explored). Both route through the goal engine and the result cache.
func (s *Server) handleControl(w http.ResponseWriter, r *http.Request) {
	v, seq, release := s.viewSeq()
	defer release()
	node, err := parseNode(v, r, "node")
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if r.URL.Query().Get("target") != "" {
		target, err := parseNode(v, r, "target")
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		key := fmt.Sprintf("control:%d:%d", node, target)
		s.servePoint(w, r, seq, key, qcache.ClassDerived, func() (map[string]any, error) {
			ok, mode, runErr := control.GoalControlsPair(r.Context(), v, node, target, s.engineOptions()...)
			resp := map[string]any{"node": node, "target": target, "controls": ok, "mode": mode}
			for k, vv := range truncMeta(runErr) {
				resp[k] = vv
			}
			return resp, runErr
		})
		return
	}
	s.servePoint(w, r, seq, fmt.Sprintf("control:%d", node), qcache.ClassDerived, func() (map[string]any, error) {
		controlled, mode, runErr := control.GoalControls(r.Context(), v, node, s.engineOptions()...)
		type item struct {
			ID   pg.NodeID `json:"id"`
			Name any       `json:"name,omitempty"`
		}
		out := make([]item, 0, len(controlled))
		for _, id := range controlled {
			out = append(out, item{ID: id, Name: v.Node(id).Props["name"]})
		}
		resp := map[string]any{"node": node, "controls": out, "mode": mode}
		for k, vv := range truncMeta(runErr) {
			resp[k] = vv
		}
		return resp, runErr
	})
}

// handleControlPairs enumerates every control pair: GET /v1/control/pairs.
// The response is the {"pairs": [{"from", "to"}, ...]} envelope — earlier
// releases leaked a bare capitalized array on the success path; see API.md.
func (s *Server) handleControlPairs(w http.ResponseWriter, r *http.Request) {
	v, seq, release := s.viewSeq()
	defer release()
	s.servePoint(w, r, seq, "control/pairs", qcache.ClassDerived, func() (map[string]any, error) {
		pairs, runErr := control.AllPairsCtx(r.Context(), v)
		out := make([]map[string]pg.NodeID, 0, len(pairs))
		for _, p := range pairs {
			out = append(out, map[string]pg.NodeID{"from": p.From, "to": p.To})
		}
		resp := map[string]any{"pairs": out}
		for k, vv := range truncMeta(runErr) {
			resp[k] = vv
		}
		return resp, runErr
	})
}

func (s *Server) handleCloseLinks(w http.ResponseWriter, r *http.Request) {
	v, seq, release := s.viewSeq()
	defer release()
	t := closelink.DefaultThreshold
	if raw := r.URL.Query().Get("t"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 || v > 1 {
			writeErr(w, r, http.StatusBadRequest, "bad_request", "bad threshold %q", raw)
			return
		}
		t = v
	}
	s.servePoint(w, r, seq, fmt.Sprintf("closelinks:%g", t), qcache.ClassDerived, func() (map[string]any, error) {
		links, runErr := closelink.CloseLinksCtx(r.Context(), v, t, closelink.Options{})
		type item struct {
			A      pg.NodeID `json:"a"`
			B      pg.NodeID `json:"b"`
			Reason string    `json:"reason"`
			Via    pg.NodeID `json:"via"`
		}
		out := make([]item, 0, len(links))
		for _, l := range links {
			reason := "direct"
			if l.Reason == closelink.ReasonCommonOwner {
				reason = "common-owner"
			}
			out = append(out, item{A: l.Pair.A, B: l.Pair.B, Reason: reason, Via: l.Via})
		}
		resp := map[string]any{"threshold": t, "links": out}
		for k, vv := range truncMeta(runErr) {
			resp[k] = vv
		}
		return resp, runErr
	})
}

// handleAccumulated answers Φ(from, to): GET /v1/accumulated?from=&to=.
// The compute stays the simple-path enumeration (its cutoff semantics on
// cyclic graphs are part of the endpoint's contract); the response rides the
// result cache and carries the seq and X-Cache stamps like every point read.
func (s *Server) handleAccumulated(w http.ResponseWriter, r *http.Request) {
	v, seq, release := s.viewSeq()
	defer release()
	from, err := parseNode(v, r, "from")
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	to, err := parseNode(v, r, "to")
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	s.servePoint(w, r, seq, fmt.Sprintf("accumulated:%d:%d", from, to), qcache.ClassDerived, func() (map[string]any, error) {
		phi, runErr := closelink.AccumulatedCtx(r.Context(), v, from, to, closelink.Options{})
		resp := map[string]any{"from": from, "to": to, "phi": phi}
		for k, vv := range truncMeta(runErr) {
			resp[k] = vv
		}
		return resp, runErr
	})
}

// augmentRequest configures a POST /v1/augment run.
type augmentRequest struct {
	// Classes: any of "family", "control", "closelink". Empty means family.
	Classes []string `json:"classes"`
	// Clusters is the first-level k; 0 disables embedding clustering.
	Clusters int `json:"clusters"`
	// NoCluster forces the exhaustive single-block mode.
	NoCluster bool `json:"noCluster"`
}

func (s *Server) handleAugment(w http.ResponseWriter, r *http.Request) {
	var req augmentRequest
	if r.Body != nil {
		body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
		if err := json.NewDecoder(body).Decode(&req); err != nil && err.Error() != "EOF" {
			writeErr(w, r, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
			return
		}
	}
	if len(req.Classes) == 0 {
		req.Classes = []string{"family"}
	}
	var cands []core.Candidate
	for _, c := range req.Classes {
		switch c {
		case "family":
			cands = append(cands, &core.FamilyCandidate{})
		case "control":
			cands = append(cands, core.ControlCandidate{})
		case "closelink":
			cands = append(cands, core.CloseLinkCandidate{})
		default:
			writeErr(w, r, http.StatusBadRequest, "bad_request", "unknown link class %q", c)
			return
		}
	}
	cfg := core.Config{
		Candidates:  cands,
		NoCluster:   req.NoCluster,
		FirstLevelK: req.Clusters,
		Embed:       embed.Config{Seed: 1},
	}
	if !req.NoCluster {
		cfg.Blocker = cluster.PersonBlocker{}
	}
	aug, err := core.New(cfg)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	// One mutation at a time: a second augment gets an immediate 503 with
	// Retry-After instead of queueing on the write lock forever.
	if !s.augMu.TryLock() {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
		writeErr(w, r, http.StatusServiceUnavailable, "busy", "augmentation already in progress; retry later")
		return
	}
	defer s.augMu.Unlock()
	s.activeMut.Add(1)
	var res *core.Result
	if s.vs != nil {
		// Run the augmentation on a copy-on-write overlay transaction:
		// readers keep serving the published version untouched for the whole
		// run. Commit replays the journal onto the writer master (where the
		// WAL capture hook lives) and publishes the successor version; it
		// runs even after an interrupted chase, because completed rounds are
		// monotone and must persist. s.mu guards the master against a
		// concurrent admin snapshot reading it mid-replay.
		txn := s.vs.Begin()
		res, err = aug.RunContext(r.Context(), txn.Overlay())
		s.mu.Lock()
		_, cerr := txn.Commit()
		s.mu.Unlock()
		if cerr != nil {
			s.activeMut.Add(-1)
			writeErr(w, r, http.StatusInternalServerError, "internal", "commit failed: %v", cerr)
			return
		}
	} else {
		s.mu.Lock()
		res, err = aug.RunContext(r.Context(), s.g)
		s.mu.Unlock()
	}
	// Durability before acknowledgement: whatever the run added (even the
	// completed rounds of an interrupted run) must be in the WAL and synced
	// before any response promises it exists. In replica-group mode the bar
	// is higher — Node.Commit requires the facts fsynced on a majority at
	// the current epoch, so an acknowledged augmentation survives any
	// single-node failover.
	var syncErr error
	if nd := s.cfg.Node; nd != nil {
		syncErr = nd.Commit(r.Context())
	} else if s.cfg.Persist != nil {
		syncErr = s.cfg.Persist.Sync()
	}
	s.activeMut.Add(-1)
	if syncErr != nil {
		s.writeCommitErr(w, r, syncErr)
		return
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// Completed rounds persist (augmentation is monotone); a retry
			// resumes from where this run stopped.
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
			resp := map[string]any{
				"error":      fmt.Sprintf("augmentation interrupted: %v", err),
				"code":       "interrupted",
				"requestID":  requestIDFrom(r),
				"retryAfter": s.cfg.retryAfterSeconds(),
			}
			for k, v := range truncMeta(err) {
				resp[k] = v
			}
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
		writeErr(w, r, http.StatusInternalServerError, "internal", "augmentation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"added":       res.Added,
		"rounds":      res.Rounds,
		"comparisons": res.Comparisons,
		"blocks":      res.Blocks,
		// The augmentation loop's run report (its cost breakdown plays the
		// role the chase stats play for /v1/reason).
		"stats": map[string]any{
			"rounds":      res.Rounds,
			"comparisons": res.Comparisons,
			"blocks":      res.Blocks,
			"embedMillis": res.EmbedTime.Milliseconds(),
			"matchMillis": res.MatchTime.Milliseconds(),
		},
	})
}

// baselineEntry caches the derived baseline of one (published version,
// threshold) pair, so a burst of what-if scenarios against the same version
// re-chases the base graph once, not once per request.
type baselineEntry struct {
	seq       uint64
	threshold float64
	bl        *whatif.Baseline
}

// baselineFor returns the what-if baseline of a published version. The
// incrementally maintained baseline answers first (at the maintainer's
// threshold it stays current across commits without any re-chase); the
// single-entry cache covers other thresholds; a full chase is the fallback,
// and its result re-seeds the maintainer so subsequent commits go back to
// incremental maintenance.
func (s *Server) baselineFor(ctx context.Context, ver *store.Version, threshold float64) (*whatif.Baseline, error) {
	if m := s.ivmM; m != nil {
		if bl := m.Baseline(ver.Seq(), threshold); bl != nil {
			return bl, nil
		}
	}
	if e := s.blCache.Load(); e != nil && e.seq == ver.Seq() && e.threshold == threshold {
		return e.bl, nil
	}
	bl, err := whatif.ComputeBaseline(ctx, ver.View(), threshold, s.engineOptions()...)
	if err != nil {
		return nil, err
	}
	s.blCache.Store(&baselineEntry{seq: ver.Seq(), threshold: threshold, bl: bl})
	if m := s.ivmM; m != nil && threshold == m.Threshold() {
		// Best-effort: if a commit published a newer version while this
		// baseline was being chased, the seed is stale — Seed drops it and
		// the commit hook's gap check keeps the maintainer honest.
		_ = m.Seed(ctx, ver.View(), ver.Seq(), bl)
	}
	return bl, nil
}

// followerBaselineLocked returns the baseline for the follower's current
// graph, maintained incrementally from the queued replication journal.
// Callers must hold s.mu.RLock (or stronger): that excludes frame
// application, so the queue and the graph cannot advance mid-drain; the
// queue mutex serializes concurrent readers draining at once.
func (s *Server) followerBaselineLocked(ctx context.Context, threshold float64) (*whatif.Baseline, error) {
	m := s.ivmM
	if m == nil {
		return whatif.ComputeBaseline(ctx, s.g, threshold, s.engineOptions()...)
	}
	curSeq := uint64(s.cfg.Follower.Seq())
	s.ivmQMu.Lock()
	if pending := s.ivmQ; len(pending) > 0 {
		if from, ok := m.Seq(); ok {
			s.ivmQ = nil
			_ = m.Apply(ctx, s.g, from, curSeq, pending)
		}
		// Invalid maintainer: leave the queue alone — it is cleared when a
		// full chase re-seeds below, and unbounded growth is impossible
		// because every read that recomputes also reseeds.
	}
	s.ivmQMu.Unlock()
	if bl := m.Baseline(curSeq, threshold); bl != nil {
		return bl, nil
	}
	bl, err := whatif.ComputeBaseline(ctx, s.g, threshold, s.engineOptions()...)
	if err != nil {
		return nil, err
	}
	if threshold == m.Threshold() {
		// The chase ran under the read lock, so the graph could not advance:
		// the queued journal (if any) predates this baseline. Drop it before
		// seeding, or the next drain would re-apply already-reflected
		// mutations.
		s.ivmQMu.Lock()
		s.ivmQ = nil
		s.ivmQMu.Unlock()
		_ = m.Seed(ctx, s.g, curSeq, bl)
	}
	return bl, nil
}

// whatifRequest describes a POST /v1/whatif counterfactual: a batch of
// hypothetical graph operations plus the close-link threshold to reason at.
type whatifRequest struct {
	// Ops are applied in order to a private overlay; see whatif.Op for the
	// vocabulary (addNode, addShare, setShare, removeEdge, removeNode).
	Ops []whatif.Op `json:"ops"`
	// Threshold is the close-link threshold; 0 means the paper's 20%.
	Threshold float64 `json:"threshold"`
}

// handleWhatif evaluates a counterfactual scenario: POST /v1/whatif. The ops
// apply to a copy-on-write overlay on the pinned read view, the chase runs
// over the composite, and the response reports how control and close-link
// would change. The published graph and the WAL are never touched — a
// what-if burst is invisible to every other client.
func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	var req whatifRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "a what-if scenario needs at least one op")
		return
	}
	threshold := req.Threshold
	if threshold == 0 {
		threshold = whatif.DefaultThreshold
	}
	if threshold < 0 || threshold > 1 {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "threshold must be in (0, 1], got %v", req.Threshold)
		return
	}

	opt := whatif.Options{Threshold: threshold, Engine: s.engineOptions()}
	var (
		res *whatif.Result
		seq uint64
		err error
	)
	if s.vs != nil {
		ver := s.vs.Current()
		seq = ver.Seq()
		var bl *whatif.Baseline
		if bl, err = s.baselineFor(r.Context(), ver, threshold); err == nil {
			res, err = whatif.Evaluate(r.Context(), ver.View(), bl, req.Ops, opt)
		}
	} else {
		// Follower mode: no version chain — evaluate under the read lock so
		// the replication stream cannot rewrite the graph mid-chase. The
		// baseline is maintained incrementally from the queued replication
		// journal (followerBaselineLocked), so steady-state reads skip the
		// full re-chase the stream's out-of-band writes would otherwise
		// force on every request.
		s.mu.RLock()
		var bl *whatif.Baseline
		if bl, err = s.followerBaselineLocked(r.Context(), threshold); err == nil {
			res, err = whatif.Evaluate(r.Context(), s.g, bl, req.Ops, opt)
		}
		s.mu.RUnlock()
	}
	if err != nil {
		var oe *whatif.OpError
		var be *datalog.BudgetExceededError
		switch {
		case errors.As(err, &oe):
			writeErr(w, r, http.StatusBadRequest, "bad_op", "op %d: %v", oe.Index, oe.Err)
		case errors.As(err, &be),
			errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled):
			// The counterfactual chase tripped a limit: nothing partial is
			// worth returning (a truncated diff would lie), so report 503
			// like an interrupted augment.
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
			resp := map[string]any{
				"error":      fmt.Sprintf("what-if interrupted: %v", err),
				"code":       "interrupted",
				"requestID":  requestIDFrom(r),
				"retryAfter": s.cfg.retryAfterSeconds(),
			}
			for k, v := range truncMeta(err) {
				resp[k] = v
			}
			writeJSON(w, http.StatusServiceUnavailable, resp)
		default:
			writeErr(w, r, http.StatusInternalServerError, "internal", "what-if failed: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":         seq,
		"threshold":       threshold,
		"created":         res.Created,
		"delta":           res.Delta,
		"affectedSources": res.AffectedSources,
		"control": map[string]any{
			"gained": pairObjects(res.ControlGained),
			"lost":   pairObjects(res.ControlLost),
		},
		"closeLinks": map[string]any{
			"gained": pairObjects(res.CloseLinkGained),
			"lost":   pairObjects(res.CloseLinkLost),
		},
	})
}

// pairObjects renders node pairs as {"x": id, "y": id} objects, never null.
func pairObjects(ps []whatif.Pair) []map[string]pg.NodeID {
	out := make([]map[string]pg.NodeID, 0, len(ps))
	for _, p := range ps {
		out = append(out, map[string]pg.NodeID{"x": p[0], "y": p[1]})
	}
	return out
}

// reasonRequest configures a POST /v1/reason evaluation: a Vadalog program
// evaluated over the company graph's relational facts, under the server's
// budget plus any tighter per-request limits.
type reasonRequest struct {
	// Program is the rule text (Vadalog subset syntax; see internal/datalog).
	Program string `json:"program"`
	// Predicates selects which derived predicates to return. Empty means
	// every head predicate of the program.
	Predicates []string `json:"predicates"`
	// MaxFacts tightens the server's fact budget for this request only
	// (it can lower the cap, never raise it).
	MaxFacts int `json:"maxFacts"`
	// MaxFactsPerPredicate caps the facts returned per predicate in the
	// response. 0 means 10000.
	MaxFactsPerPredicate int `json:"maxFactsPerPredicate"`
}

// handleReason evaluates an ad-hoc program. A non-terminating program does
// not hang the server: the chase stops at the request deadline (or fact
// budget) and the response reports the partial derivation with
// "truncated": true and the tripped limit.
func (s *Server) handleReason(w http.ResponseWriter, r *http.Request) {
	var req reasonRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	if req.Program == "" {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "missing program")
		return
	}
	prog, err := datalog.Parse(req.Program)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "parsing program: %v", err)
		return
	}
	opts := s.engineOptions()
	b := s.cfg.Budget
	if req.MaxFacts > 0 && (b.MaxFacts == 0 || req.MaxFacts < b.MaxFacts) {
		b.MaxFacts = req.MaxFacts
		opts = append(opts, datalog.WithBudget(b))
	}
	engine, err := datalog.NewEngine(prog, opts...)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "preparing engine: %v", err)
		return
	}

	// Extract the relational image of the pinned read view (in follower
	// mode: under the read lock), then run the chase without holding it.
	v, release := s.view()
	facts := relstore.CompanyGraphFacts(v)
	release()
	engine.AssertAll(facts)

	runErr := engine.RunContext(r.Context())
	s.recordChase(engine.Stats())
	var be *datalog.BudgetExceededError
	if runErr != nil && !errors.As(runErr, &be) &&
		!errors.Is(runErr, context.DeadlineExceeded) && !errors.Is(runErr, context.Canceled) {
		// A genuine evaluation error (bad builtin, type error), not a
		// budget trip.
		writeErr(w, r, http.StatusUnprocessableEntity, "unprocessable", "evaluating program: %v", runErr)
		return
	}

	preds := req.Predicates
	if len(preds) == 0 {
		seen := map[string]bool{}
		for _, rule := range prog.Rules {
			for _, h := range rule.Head {
				if !seen[h.Pred] {
					seen[h.Pred] = true
					preds = append(preds, h.Pred)
				}
			}
		}
	}
	perPred := req.MaxFactsPerPredicate
	if perPred <= 0 {
		perPred = 10000
	}
	factsOut := make(map[string][][]any, len(preds))
	for _, p := range preds {
		fs := engine.FactsN(p, perPred)
		rows := make([][]any, 0, len(fs))
		for _, f := range fs {
			row := make([]any, len(f.Args))
			for i, a := range f.Args {
				row[i] = jsonValue(a)
			}
			rows = append(rows, row)
		}
		factsOut[p] = rows
	}
	resp := map[string]any{
		"facts":   factsOut,
		"rounds":  engine.Rounds(),
		"derived": engine.DerivedCount(),
	}
	if st := engine.Stats(); st != nil {
		resp["stats"] = st
	}
	for k, v := range truncMeta(runErr) {
		resp[k] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

// jsonValue converts a datalog term value into a JSON-encodable value;
// labeled nulls and Skolem terms render as their canonical strings.
func jsonValue(v any) any {
	switch x := v.(type) {
	case string, float64, bool, int64, int:
		return x
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	v, release := s.view()
	defer release()
	w.Header().Set("Content-Type", "application/json")
	_ = pg.WriteJSONView(v, w)
}
