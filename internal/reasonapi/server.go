// Package reasonapi exposes the reasoning services of Vada-Link over HTTP —
// the "reasoning API" through which enterprise applications interact with
// the knowledge graph in the Section 5 architecture.
//
// Endpoints (all JSON):
//
//	GET  /v1/stats                      — graph profile (§2 statistics)
//	GET  /v1/control?node=ID            — companies controlled by a node
//	GET  /v1/control/pairs              — all control pairs
//	GET  /v1/closelinks?t=0.2           — close-link pairs
//	GET  /v1/accumulated?from=ID&to=ID  — accumulated ownership Φ(from, to)
//	POST /v1/augment                    — run KG augmentation (family links)
//	GET  /v1/graph                      — the property graph as JSON
//	GET  /v1/explain?from=ID&to=ID      — derivation tree of a control decision
//
// The server holds one graph, injected at construction; mutation happens
// only through /v1/augment, which is serialized by an internal lock.
package reasonapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"vadalink/internal/closelink"
	"vadalink/internal/cluster"
	"vadalink/internal/control"
	"vadalink/internal/core"
	"vadalink/internal/embed"
	"vadalink/internal/graphstats"
	"vadalink/internal/pg"
	"vadalink/internal/vadalog"
)

// Server serves the reasoning API over a company graph.
type Server struct {
	mu sync.RWMutex
	g  *pg.Graph
}

// NewServer wraps a graph.
func NewServer(g *pg.Graph) *Server {
	return &Server{g: g}
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/control", s.handleControl)
	mux.HandleFunc("GET /v1/control/pairs", s.handleControlPairs)
	mux.HandleFunc("GET /v1/closelinks", s.handleCloseLinks)
	mux.HandleFunc("GET /v1/accumulated", s.handleAccumulated)
	mux.HandleFunc("POST /v1/augment", s.handleAugment)
	mux.HandleFunc("GET /v1/graph", s.handleGraph)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/ubo", s.handleUBO)
	mux.HandleFunc("GET /v1/neighborhood", s.handleNeighborhood)
	return mux
}

// handleUBO lists the ultimate beneficial owners of a company:
// GET /v1/ubo?node=ID.
func (s *Server) handleUBO(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	node, err := s.parseNode(r, "node")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	type item struct {
		ID   pg.NodeID `json:"id"`
		Name any       `json:"name,omitempty"`
	}
	ubos := control.UltimateControllers(s.g, node)
	out := make([]item, 0, len(ubos))
	for _, id := range ubos {
		out = append(out, item{ID: id, Name: s.g.Node(id).Props["name"]})
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": node, "ultimateControllers": out})
}

// handleNeighborhood returns the ego network of a node as graph JSON:
// GET /v1/neighborhood?node=ID&hops=2.
func (s *Server) handleNeighborhood(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	node, err := s.parseNode(r, "node")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hops := 2
	if raw := r.URL.Query().Get("hops"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 || v > 10 {
			writeErr(w, http.StatusBadRequest, "bad hops %q (want 0–10)", raw)
			return
		}
		hops = v
	}
	sub, _ := s.g.Neighborhood(node, hops)
	w.Header().Set("Content-Type", "application/json")
	_ = sub.WriteJSON(w)
}

// handleExplain returns the derivation tree of a control decision — the §5
// explainability property over HTTP: GET /v1/explain?from=ID&to=ID.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	from, err := s.parseNode(r, "from")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	to, err := s.parseNode(r, "to")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	reasoner := vadalog.NewReasoner(s.g, vadalog.TaskControl)
	reasoner.Options.Provenance = true
	if err := reasoner.Run(); err != nil {
		writeErr(w, http.StatusInternalServerError, "reasoning failed: %v", err)
		return
	}
	tree := reasoner.ExplainControl(from, to)
	writeJSON(w, http.StatusOK, map[string]any{
		"from":     from,
		"to":       to,
		"controls": tree != nil,
		"why":      tree,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, graphstats.Compute(s.g))
}

func (s *Server) parseNode(r *http.Request, param string) (pg.NodeID, error) {
	raw := r.URL.Query().Get(param)
	if raw == "" {
		return 0, fmt.Errorf("missing %q parameter", param)
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %q parameter: %v", param, err)
	}
	if s.g.Node(pg.NodeID(id)) == nil {
		return 0, fmt.Errorf("unknown node %d", id)
	}
	return pg.NodeID(id), nil
}

func (s *Server) handleControl(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	node, err := s.parseNode(r, "node")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	controlled := control.Controls(s.g, node)
	type item struct {
		ID   pg.NodeID `json:"id"`
		Name any       `json:"name,omitempty"`
	}
	out := make([]item, 0, len(controlled))
	for _, id := range controlled {
		out = append(out, item{ID: id, Name: s.g.Node(id).Props["name"]})
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": node, "controls": out})
}

func (s *Server) handleControlPairs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, control.AllPairs(s.g))
}

func (s *Server) handleCloseLinks(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := closelink.DefaultThreshold
	if raw := r.URL.Query().Get("t"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 || v > 1 {
			writeErr(w, http.StatusBadRequest, "bad threshold %q", raw)
			return
		}
		t = v
	}
	links := closelink.CloseLinks(s.g, t, closelink.Options{})
	type item struct {
		A      pg.NodeID `json:"a"`
		B      pg.NodeID `json:"b"`
		Reason string    `json:"reason"`
		Via    pg.NodeID `json:"via"`
	}
	out := make([]item, 0, len(links))
	for _, l := range links {
		reason := "direct"
		if l.Reason == closelink.ReasonCommonOwner {
			reason = "common-owner"
		}
		out = append(out, item{A: l.Pair.A, B: l.Pair.B, Reason: reason, Via: l.Via})
	}
	writeJSON(w, http.StatusOK, map[string]any{"threshold": t, "links": out})
}

func (s *Server) handleAccumulated(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	from, err := s.parseNode(r, "from")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	to, err := s.parseNode(r, "to")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	phi := closelink.Accumulated(s.g, from, to, closelink.Options{})
	writeJSON(w, http.StatusOK, map[string]any{"from": from, "to": to, "phi": phi})
}

// augmentRequest configures a POST /v1/augment run.
type augmentRequest struct {
	// Classes: any of "family", "control", "closelink". Empty means family.
	Classes []string `json:"classes"`
	// Clusters is the first-level k; 0 disables embedding clustering.
	Clusters int `json:"clusters"`
	// NoCluster forces the exhaustive single-block mode.
	NoCluster bool `json:"noCluster"`
}

func (s *Server) handleAugment(w http.ResponseWriter, r *http.Request) {
	var req augmentRequest
	if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err.Error() != "EOF" {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	if len(req.Classes) == 0 {
		req.Classes = []string{"family"}
	}
	var cands []core.Candidate
	for _, c := range req.Classes {
		switch c {
		case "family":
			cands = append(cands, &core.FamilyCandidate{})
		case "control":
			cands = append(cands, core.ControlCandidate{})
		case "closelink":
			cands = append(cands, core.CloseLinkCandidate{})
		default:
			writeErr(w, http.StatusBadRequest, "unknown link class %q", c)
			return
		}
	}
	cfg := core.Config{
		Candidates:  cands,
		NoCluster:   req.NoCluster,
		FirstLevelK: req.Clusters,
		Embed:       embed.Config{Seed: 1},
	}
	if !req.NoCluster {
		cfg.Blocker = cluster.PersonBlocker{}
	}
	aug, err := core.New(cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	res, err := aug.Run(s.g)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "augmentation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"added":       res.Added,
		"rounds":      res.Rounds,
		"comparisons": res.Comparisons,
		"blocks":      res.Blocks,
	})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	_ = s.g.WriteJSON(w)
}
