package reasonapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vadalink/internal/faultinject"
	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
)

// divergingProgram never reaches a fixpoint: every p(X) invents a fresh
// null Z which feeds back into p. Seeded from the own facts of the graph.
const divergingProgram = `own(X, Y, W) -> p(X).
p(X) -> q(X, Z).
q(X, Z) -> p(Z).`

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// TestReasonEndpointDeadlineTruncates is the headline acceptance test: a
// non-terminating program submitted over the API comes back as a JSON
// partial result naming the tripped limit, within (about) the configured
// 100ms budget instead of hanging the server.
func TestReasonEndpointDeadlineTruncates(t *testing.T) {
	g, _ := pg.Figure2()
	srv := httptest.NewServer(NewServerWith(g, Config{Timeout: 100 * time.Millisecond}).Handler())
	defer srv.Close()

	start := time.Now()
	resp, out := postJSON(t, srv.URL+"/v1/reason",
		fmt.Sprintf(`{"program": %q, "predicates": ["p"], "maxFactsPerPredicate": 5}`, divergingProgram))
	elapsed := time.Since(start)

	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body = %v", resp.StatusCode, out)
	}
	if out["truncated"] != true {
		t.Fatalf("response not marked truncated: %v", out)
	}
	if out["limit"] != "deadline" {
		t.Errorf("limit = %v, want deadline", out["limit"])
	}
	if _, ok := out["detail"].(string); !ok {
		t.Errorf("missing detail in %v", out)
	}
	if out["derived"] == nil || out["derived"].(float64) <= 0 {
		t.Errorf("no partial derivation reported: %v", out["derived"])
	}
	// 100ms budget + cooperative-check latency + test-host slack.
	if elapsed > 5*time.Second {
		t.Errorf("request took %v, the deadline did not stop the chase", elapsed)
	}
}

// TestReasonEndpointFactBudget: the per-request maxFacts tightens the
// server budget and names itself in the truncation metadata.
func TestReasonEndpointFactBudget(t *testing.T) {
	g, _ := pg.Figure2()
	srv := httptest.NewServer(NewServerWith(g, Config{}).Handler())
	defer srv.Close()

	resp, out := postJSON(t, srv.URL+"/v1/reason",
		fmt.Sprintf(`{"program": %q, "maxFacts": 200}`, divergingProgram))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body = %v", resp.StatusCode, out)
	}
	if out["truncated"] != true || out["limit"] != "max-facts" {
		t.Fatalf("want truncated via max-facts, got %v", out)
	}
	facts, ok := out["facts"].(map[string]any)
	if !ok || len(facts) == 0 {
		t.Errorf("no partial facts in %v", out)
	}
}

// TestReasonEndpointComplete: a terminating program reports no truncation.
func TestReasonEndpointComplete(t *testing.T) {
	g, _ := pg.Figure2()
	srv := httptest.NewServer(NewServer(g).Handler())
	defer srv.Close()

	resp, out := postJSON(t, srv.URL+"/v1/reason",
		`{"program": "own(X, Y, W) -> holds(X, Y)."}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body = %v", resp.StatusCode, out)
	}
	if _, present := out["truncated"]; present {
		t.Errorf("complete run marked truncated: %v", out)
	}
	rows := out["facts"].(map[string]any)["holds"].([]any)
	if len(rows) == 0 {
		t.Error("no holds facts returned")
	}
}

func TestReasonEndpointBadProgram(t *testing.T) {
	g, _ := pg.Figure2()
	srv := httptest.NewServer(NewServer(g).Handler())
	defer srv.Close()
	resp, _ := postJSON(t, srv.URL+"/v1/reason", `{"program": "p(X ->"}`)
	if resp.StatusCode != 400 {
		t.Errorf("parse error: status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/reason", `{}`)
	if resp.StatusCode != 400 {
		t.Errorf("missing program: status = %d, want 400", resp.StatusCode)
	}
}

// TestHandlerPanicRecovery: an injected panic in a handler becomes a JSON
// 500 with a request ID, and the server keeps serving afterwards.
func TestHandlerPanicRecovery(t *testing.T) {
	srv, _ := testServer(t)
	t.Cleanup(faultinject.Reset)

	faultinject.Set(faultinject.SiteAPIHandler, func() { panic("injected crash") })
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Error     string `json:"error"`
		RequestID string `json:"requestID"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding panic response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(out.Error, "injected crash") {
		t.Errorf("error = %q, want the panic value", out.Error)
	}
	if out.RequestID == "" {
		t.Error("no requestID in panic response")
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID header")
	}

	// The process survived: the next request succeeds.
	faultinject.Clear(faultinject.SiteAPIHandler)
	if code := getJSON(t, srv.URL+"/v1/stats", nil); code != 200 {
		t.Fatalf("server dead after panic: status = %d", code)
	}
}

// TestServeGracefulDrain: cancelling Serve's context closes the listener but
// lets the in-flight request finish before the server exits.
func TestServeGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inFlight := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, "done")
	})

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, ln, mux, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	respc := make(chan string, 1)
	go func() {
		resp, err := http.Get(url + "/slow")
		if err != nil {
			respc <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		respc <- string(b)
	}()

	<-inFlight // request reached the handler
	cancel()   // SIGTERM equivalent: start draining

	if got := <-respc; got != "done" {
		t.Errorf("in-flight request = %q, want %q (dropped during drain?)", got, "done")
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// The listener is closed: new connections are refused.
	c := &http.Client{Timeout: time.Second}
	if _, err := c.Get(url + "/slow"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

// TestConcurrentReadsDuringAugment is the satellite concurrency test: read
// endpoints are hammered while /v1/augment mutates the graph, under -race.
// A second concurrent augment must get an immediate 503 with Retry-After.
func TestConcurrentReadsDuringAugment(t *testing.T) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 60, Companies: 20, Seed: 3})
	srv := httptest.NewServer(NewServerWith(it.Graph, Config{Timeout: 30 * time.Second}).Handler())
	defer srv.Close()
	t.Cleanup(faultinject.Reset)

	// Gate the first augmentation round so the busy window is deterministic,
	// then pad later rounds so reads genuinely overlap the mutation.
	gate := make(chan struct{})
	var started sync.Once
	startedc := make(chan struct{})
	faultinject.Set(faultinject.SiteAugmentRound, func() {
		started.Do(func() { close(startedc) })
		<-gate
		time.Sleep(2 * time.Millisecond)
	})

	nodes := it.Graph.Nodes()
	augDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/augment", "application/json",
			strings.NewReader(`{"classes":["family"],"noCluster":true}`))
		if err != nil {
			augDone <- -1
			return
		}
		resp.Body.Close()
		augDone <- resp.StatusCode
	}()

	<-startedc // first augment is inside RunContext, holding the busy lock

	// Concurrent augment: immediate 503 + Retry-After, no queueing.
	resp, err := http.Post(srv.URL+"/v1/augment", "application/json",
		strings.NewReader(`{"classes":["family"],"noCluster":true}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("concurrent augment: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}

	// The MVCC contract: while the augment is parked inside its first round
	// (the gate is still closed), reads answer 200 from the pinned prior
	// version instead of queueing behind the writer. A bounded client makes
	// a regression fail fast instead of hanging the test.
	quick := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{
		"/v1/stats",
		"/v1/closelinks",
		"/v1/control?node=" + itoa(nodes[0]),
	} {
		resp, err := quick.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("read %s blocked behind the in-flight augment: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("read %s during augment: status %d, want 200", path, resp.StatusCode)
		}
	}
	// A counterfactual is a read too: it overlays the prior version and must
	// not wait for the writer either.
	wiresp, err := quick.Post(srv.URL+"/v1/whatif", "application/json",
		strings.NewReader(`{"ops":[{"op":"addNode","name":"Hypothetical"}]}`))
	if err != nil {
		t.Fatalf("what-if blocked behind the in-flight augment: %v", err)
	}
	io.Copy(io.Discard, wiresp.Body)
	wiresp.Body.Close()
	if wiresp.StatusCode != 200 {
		t.Errorf("what-if during augment: status %d, want 200", wiresp.StatusCode)
	}

	close(gate) // let the augmentation proceed while reads hammer it

	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				node := nodes[(w*20+i)%len(nodes)]
				for _, path := range []string{
					"/v1/control?node=" + itoa(node),
					"/v1/closelinks",
					"/v1/stats",
				} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						errs <- err.Error()
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errs <- fmt.Sprintf("%s: status %d", path, resp.StatusCode)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent read failed: %s", e)
	}

	if code := <-augDone; code != 200 {
		t.Errorf("gated augment finished with status %d, want 200", code)
	}
}

// TestRequestIDOnEveryResponse: the middleware stamps each response.
func TestRequestIDOnEveryResponse(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID")
	}
}
