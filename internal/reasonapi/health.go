package reasonapi

import (
	"net/http"
	"strconv"
	"strings"
)

// Health and readiness probes, plus the follower serving gate.
//
// /v1/healthz is pure liveness: the process is up and the handler runs.
// /v1/readyz is readiness to serve correct answers: recovery finished (the
// store opened at all), the server is not draining, the WAL has not gone
// fail-stop on a sticky fsync error, and — on a follower — replication is
// inside the staleness bound. Orchestrators point traffic at readyz and
// restarts at healthz; the two disagree exactly when restarting would make
// things worse.

// handleHealthz answers liveness: GET /v1/healthz. It is deliberately
// unconditional — a stale follower or a fail-stopped WAL is a node that
// should stop RECEIVING traffic (readyz), not a node to kill (healthz).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// readyCheck is one named readiness verdict in the /v1/readyz body.
type readyCheck struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// handleReadyz answers readiness: GET /v1/readyz. 200 when every check
// passes, 503 with the failing checks named otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]readyCheck{}
	ready := true
	fail := func(name, detail string) {
		checks[name] = readyCheck{OK: false, Detail: detail}
		ready = false
	}

	if s.draining.Load() {
		fail("draining", "server is shutting down")
	} else {
		checks["draining"] = readyCheck{OK: true, Detail: "serving"}
	}

	if ps := s.cfg.Persist; ps != nil {
		st := ps.Stats()
		if st.LastError != "" {
			// The WAL is fail-stop: every future mutation acknowledgement
			// would lie about durability. Reads still work; writes must go
			// elsewhere.
			fail("wal", "persistence is fail-stopped: "+st.LastError)
		} else {
			checks["wal"] = readyCheck{OK: true}
		}
		rec := ps.Recovery()
		checks["recovery"] = readyCheck{OK: true,
			Detail: "replayed " + strconv.Itoa(rec.RecordsReplayed) + " records in " +
				strconv.FormatInt(rec.DurationMillis, 10) + "ms"}
	}

	if fl := s.cfg.Follower; fl != nil {
		st := fl.Status()
		bound := s.cfg.maxStaleness()
		detail := "seq " + strconv.FormatInt(st.Seq, 10) +
			", lag " + strconv.FormatInt(st.LagRecords, 10) +
			", staleness " + strconv.FormatInt(st.StalenessMS, 10) + "ms"
		switch {
		case !st.EverSynced:
			fail("replication", "never reached parity with the leader ("+detail+")")
		case bound > 0 && st.Staleness > bound:
			fail("replication", "past staleness bound ("+detail+")")
		default:
			checks["replication"] = readyCheck{OK: true, Detail: detail}
		}
	}

	status := http.StatusOK
	body := map[string]any{"status": "ready", "checks": checks}
	if !ready {
		status = http.StatusServiceUnavailable
		body["status"] = "unready"
		body["code"] = "not_ready"
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
	}
	writeJSON(w, status, body)
}

// followerGate enforces read-only replica semantics in front of the mux.
// It reports true when it answered the request itself.
func (s *Server) followerGate(w http.ResponseWriter, r *http.Request) (handled bool) {
	p := r.URL.Path
	// Probes, metrics and debug surfaces describe THIS node and always
	// answer locally, however stale the data is.
	if p == "/v1/healthz" || p == "/v1/readyz" || p == "/v1/metrics" || strings.HasPrefix(p, "/debug/") {
		return false
	}
	// Writes belong on the leader. 421 Misdirected Request carries the
	// leader's address so a client can re-issue without a discovery step.
	if p == "/v1/augment" || strings.HasPrefix(p, "/v1/admin/") {
		writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
			"error":     "this node is a read-only follower; send writes to the leader",
			"code":      "not_leader",
			"requestID": requestIDFrom(r),
			"leader":    s.cfg.LeaderAPI,
		})
		return true
	}
	// Reads: stamp replication position so clients can reason about
	// read-your-writes, and refuse only past the staleness bound.
	st := s.cfg.Follower.Status()
	w.Header().Set("X-Replication-Lag", strconv.FormatInt(st.LagRecords, 10))
	w.Header().Set("X-Replication-Staleness-Ms", strconv.FormatInt(st.StalenessMS, 10))
	bound := s.cfg.maxStaleness()
	if bound > 0 && (!st.EverSynced || st.Staleness > bound) {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
		writeErr(w, r, http.StatusServiceUnavailable, "stale_replica",
			"replica is stale: lag %d records, staleness %dms (bound %s)",
			st.LagRecords, st.StalenessMS, bound)
		return true
	}
	return false
}
