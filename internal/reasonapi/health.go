package reasonapi

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"vadalink/internal/replication"
)

// Health and readiness probes, plus the follower serving gate.
//
// /v1/healthz is pure liveness: the process is up and the handler runs.
// /v1/readyz is readiness to serve correct answers: recovery finished (the
// store opened at all), the server is not draining, the WAL has not gone
// fail-stop on a sticky fsync error, and — on a follower — replication is
// inside the staleness bound. Orchestrators point traffic at readyz and
// restarts at healthz; the two disagree exactly when restarting would make
// things worse.

// handleHealthz answers liveness: GET /v1/healthz. It is deliberately
// unconditional — a stale follower or a fail-stopped WAL is a node that
// should stop RECEIVING traffic (readyz), not a node to kill (healthz).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// readyCheck is one named readiness verdict in the /v1/readyz body.
type readyCheck struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// handleReadyz answers readiness: GET /v1/readyz. 200 when every check
// passes, 503 with the failing checks named otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]readyCheck{}
	ready := true
	fail := func(name, detail string) {
		checks[name] = readyCheck{OK: false, Detail: detail}
		ready = false
	}

	if s.draining.Load() {
		fail("draining", "server is shutting down")
	} else {
		checks["draining"] = readyCheck{OK: true, Detail: "serving"}
	}

	if ps := s.cfg.Persist; ps != nil {
		st := ps.Stats()
		if st.LastError != "" {
			// The WAL is fail-stop: every future mutation acknowledgement
			// would lie about durability. Reads still work; writes must go
			// elsewhere.
			fail("wal", "persistence is fail-stopped: "+st.LastError)
		} else {
			checks["wal"] = readyCheck{OK: true}
		}
		rec := ps.Recovery()
		checks["recovery"] = readyCheck{OK: true,
			Detail: "replayed " + strconv.Itoa(rec.RecordsReplayed) + " records in " +
				strconv.FormatInt(rec.DurationMillis, 10) + "ms"}
	}

	// Replica-group mode: readiness follows the role. A leader is ready
	// while its lease holds (fresh majority acks); a follower is ready
	// while it hears a live leader AND its data is inside the staleness
	// bound. An electing member is honestly unready — better a 503 than an
	// answer from a node that doesn't know who owns the truth.
	leading := false
	if nd := s.cfg.Node; nd != nil {
		st := nd.Status()
		leading = st.Role == replication.RoleLeader
		detail := "role " + st.Role + ", epoch " + strconv.FormatUint(st.Epoch, 10) +
			", lease age " + strconv.FormatInt(st.LeaseMS, 10) + "ms"
		if ev := st.LastFailover; ev != nil {
			detail += ", last failover " + ev.Cause
		}
		if st.LeaseOK {
			checks["replicaGroup"] = readyCheck{OK: true, Detail: detail}
		} else {
			fail("replicaGroup", "lease not held ("+detail+")")
		}
	}

	if fl := s.cfg.Follower; fl != nil && !leading {
		st := fl.Status()
		bound := s.cfg.maxStaleness()
		detail := "seq " + strconv.FormatInt(st.Seq, 10) +
			", lag " + strconv.FormatInt(st.LagRecords, 10) +
			", staleness " + strconv.FormatInt(st.StalenessMS, 10) + "ms" +
			", disconnected " + strconv.FormatInt(st.DisconnectedMS, 10) + "ms"
		switch {
		case !st.EverSynced:
			fail("replication", "never reached parity with the leader ("+detail+")")
		case bound > 0 && (st.Staleness > bound || st.Disconnected > bound):
			// Disconnected counts too: during an outage LagRecords and
			// StalenessMS freeze at their last-known values, so a dead
			// stream would otherwise look permanently fresh.
			fail("replication", "past staleness bound ("+detail+")")
		default:
			checks["replication"] = readyCheck{OK: true, Detail: detail}
		}
	}

	status := http.StatusOK
	body := map[string]any{"status": "ready", "checks": checks}
	if !ready {
		status = http.StatusServiceUnavailable
		body["status"] = "unready"
		body["code"] = "not_ready"
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
	}
	writeJSON(w, status, body)
}

// leaderAPIHint is the best current belief of the leader's API address for
// redirect envelopes: the replica group's live hint when available (learned
// from stream handshakes and election grants), else the static config.
func (s *Server) leaderAPIHint() string {
	if nd := s.cfg.Node; nd != nil {
		if _, api := nd.LeaderHint(); api != "" {
			return api
		}
	}
	return s.cfg.LeaderAPI
}

// writeNotLeader answers a write that landed on a non-leader: 421
// Misdirected Request with the leader's API address, so a client can
// re-issue without a discovery step.
func (s *Server) writeNotLeader(w http.ResponseWriter, r *http.Request, detail string) {
	writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
		"error":     detail,
		"code":      "not_leader",
		"requestID": requestIDFrom(r),
		"leader":    s.leaderAPIHint(),
	})
}

// writeCommitErr maps a failed group write barrier (Node.Commit) onto the
// API error vocabulary. The one invariant: a non-nil Commit is NEVER
// acknowledged as durable — the response says exactly what the client may
// assume, which for stale_epoch is "nothing".
func (s *Server) writeCommitErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, replication.ErrNotLeader):
		s.writeNotLeader(w, r, "this node lost the leader role; send writes to the leader")
	case errors.Is(err, replication.ErrStaleEpoch):
		// The leadership changed while the write was in flight. The facts
		// reached the local WAL but were fenced off before a majority held
		// them: the new leader may or may not carry them, so the only
		// honest answer is "not acknowledged — re-check, then retry against
		// the new leader".
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
		writeErr(w, r, http.StatusServiceUnavailable, "stale_epoch",
			"write not acknowledged: leadership changed mid-write (%v); retry against the current leader", err)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// Quorum never assembled within the request deadline: the group has
		// no majority of live, caught-up followers right now.
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
		writeErr(w, r, http.StatusServiceUnavailable, "replication_unavailable",
			"write not acknowledged: replication quorum unavailable (%v)", err)
	default:
		writeErr(w, r, http.StatusInternalServerError, "persist_failed",
			"augmentation ran but its facts could not be made durable: %v", err)
	}
}

// followerGate enforces replica serving semantics in front of the mux. It
// reports true when it answered the request itself. In static follower
// mode (cfg.Follower without cfg.Node) the node never serves writes; in
// replica-group mode the verdict follows the node's CURRENT role, so a
// failover re-points writes with no reconfiguration.
func (s *Server) followerGate(w http.ResponseWriter, r *http.Request) (handled bool) {
	p := r.URL.Path
	// Probes, metrics and debug surfaces describe THIS node and always
	// answer locally, however stale the data is.
	if p == "/v1/healthz" || p == "/v1/readyz" || p == "/v1/metrics" || strings.HasPrefix(p, "/debug/") {
		return false
	}
	if nd := s.cfg.Node; nd != nil && nd.IsLeader() {
		// Leading: writes proceed (the augment handler runs the quorum
		// barrier; a deposition mid-write surfaces there as stale_epoch,
		// never as a false ack) and reads are authoritative.
		return false
	}
	// Writes belong on the leader. 421 Misdirected Request carries the
	// leader's address so a client can re-issue without a discovery step.
	if p == "/v1/augment" || strings.HasPrefix(p, "/v1/admin/") {
		s.writeNotLeader(w, r, "this node is a read-only follower; send writes to the leader")
		return true
	}
	// Reads: stamp replication position so clients can reason about
	// read-your-writes, and refuse only past the staleness bound. The
	// disconnected header (and check) exists because LagRecords and
	// StalenessMS freeze at their last-known values while the stream is
	// down — without it, a long-dead follower would keep advertising the
	// freshness it had the moment it lost the leader.
	st := s.cfg.Follower.Status()
	w.Header().Set("X-Replication-Lag", strconv.FormatInt(st.LagRecords, 10))
	w.Header().Set("X-Replication-Staleness-Ms", strconv.FormatInt(st.StalenessMS, 10))
	w.Header().Set("X-Replication-Disconnected-Ms", strconv.FormatInt(st.DisconnectedMS, 10))
	bound := s.cfg.maxStaleness()
	if bound > 0 && (!st.EverSynced || st.Staleness > bound || st.Disconnected > bound) {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfterSeconds()))
		writeErr(w, r, http.StatusServiceUnavailable, "stale_replica",
			"replica is stale: lag %d records, staleness %dms, disconnected %dms (bound %s)",
			st.LagRecords, st.StalenessMS, st.DisconnectedMS, bound)
		return true
	}
	return false
}
