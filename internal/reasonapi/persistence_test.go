package reasonapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vadalink/internal/faultinject"
	"vadalink/internal/persist"
	"vadalink/internal/pg"
)

func durableServer(t *testing.T, dir string) (*Server, *persist.Store) {
	t.Helper()
	ps, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Graph().NumNodes() == 0 {
		g, _ := pg.Figure2()
		if err := ps.Import(g); err != nil {
			t.Fatal(err)
		}
	}
	return NewServerWith(ps.Graph(), Config{Persist: ps}), ps
}

// POST /v1/admin/snapshot rotates the store and reports the new generation;
// /v1/metrics carries the recovery and persistence sections.
func TestAdminSnapshotAndPersistenceMetrics(t *testing.T) {
	dir := t.TempDir()
	s, ps := durableServer(t, dir)
	defer ps.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	var info persist.SnapshotInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	// Import cut gen 1 at seeding; the admin call cuts gen 2.
	if info.Gen != 2 || info.Nodes == 0 {
		t.Fatalf("snapshot info %+v", info)
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Recovery == nil || m.Persistence == nil {
		t.Fatalf("metrics missing persistence sections: recovery=%v persistence=%v", m.Recovery, m.Persistence)
	}
	if m.Recovery.DurationMillis < 0 || m.Persistence.Gen != 2 {
		t.Errorf("recovery=%+v persistence=%+v", m.Recovery, m.Persistence)
	}
}

// Without a persistent store the admin endpoint answers the JSON 404
// envelope, mirroring disabled metrics.
func TestAdminSnapshotWithoutPersistence(t *testing.T) {
	g, _ := pg.Figure2()
	srv := httptest.NewServer(NewServer(g).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// An acknowledged augmentation survives a restart: the 200 means the derived
// edges were WAL-synced, so a new process recovers them without re-running
// entity resolution.
func TestAugmentAcknowledgementIsDurable(t *testing.T) {
	dir := t.TempDir()
	s, ps := durableServer(t, dir)
	srv := httptest.NewServer(s.Handler())

	resp, err := http.Post(srv.URL+"/v1/augment", "application/json",
		bytes.NewReader([]byte(`{"classes":["family"],"noCluster":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Added map[string]int `json:"added"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("augment status %d", resp.StatusCode)
	}
	total := 0
	for _, n := range out.Added {
		total += n
	}
	if total == 0 {
		t.Fatal("augment added nothing; Figure 2 should yield family links")
	}
	edgesBefore := ps.Graph().NumEdges()
	// Simulate a crash after the acknowledgement: no Close, no final sync
	// beyond what the handler already did.

	ps2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("recovery after acknowledged augment: %v", err)
	}
	defer ps2.Close()
	if got := ps2.Graph().NumEdges(); got != edgesBefore {
		t.Fatalf("recovered %d edges, want %d (acknowledged augment lost)", got, edgesBefore)
	}
}

// The drain race regression: cancelling Serve while an augment holds the
// write lock must not let Serve return (and the caller start tearing down
// the graph) before the augment finishes, even when the drain timeout is
// shorter than the augment.
func TestServeDrainWaitsForInFlightAugment(t *testing.T) {
	g, _ := pg.Figure2()
	s := NewServer(g)

	entered := make(chan struct{})
	var once sync.Once
	faultinject.Set(faultinject.SiteAugmentRound, func() {
		once.Do(func() {
			close(entered)
			time.Sleep(400 * time.Millisecond) // augment outlives the 50ms drain timeout
		})
	})
	defer faultinject.Reset()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, ln, s.Handler(), 50*time.Millisecond) }()

	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/augment", "application/json",
			bytes.NewReader([]byte(`{"classes":["family"],"noCluster":true}`)))
		if err == nil {
			resp.Body.Close()
		}
	}()

	<-entered // the augment is inside the mutation critical section
	cancel()  // SIGTERM: drain begins, expires long before the augment ends

	select {
	case <-serveErr:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return")
	}
	// The contract under test: at Serve-return time no mutation is in
	// flight, so snapshot-on-drain cannot race the augment.
	if n := s.activeMut.Load(); n != 0 {
		t.Fatalf("Serve returned with %d mutation(s) still in flight", n)
	}
}
