package closelink

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vadalink/internal/pg"
)

// bruteForcePhi enumerates all simple paths naively (independent of the
// production DFS) and sums their products — the reference implementation for
// Definition 2.5.
func bruteForcePhi(g *pg.Graph, x, y pg.NodeID) float64 {
	var total float64
	visited := map[pg.NodeID]bool{}
	var rec func(n pg.NodeID, product float64)
	rec = func(n pg.NodeID, product float64) {
		visited[n] = true
		for _, e := range g.OutLabel(n, pg.LabelShareholding) {
			w, ok := e.Weight()
			if !ok {
				continue
			}
			p := product * w
			if e.To == y {
				// A simple path ends the moment it reaches y.
				total += p
				continue
			}
			if visited[e.To] {
				continue
			}
			rec(e.To, p)
		}
		delete(visited, n)
	}
	rec(x, 1)
	return total
}

// randomDAGish builds a small random ownership graph (cycles allowed).
func randomDAGish(r *rand.Rand, n, edges int) *pg.Graph {
	g := pg.New()
	var ids []pg.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, g.AddNode(pg.LabelCompany, nil))
	}
	for i := 0; i < edges; i++ {
		a, b := ids[r.Intn(n)], ids[r.Intn(n)]
		if a == b {
			continue
		}
		g.MustAddEdgeWeighted(a, b, 0.05+0.9*r.Float64())
	}
	return g
}

// Property: the production simple-path DFS matches the brute-force reference
// on random small graphs.
func TestAccumulatedMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAGish(r, 7, 12)
		ids := g.Nodes()
		for trial := 0; trial < 5; trial++ {
			x := ids[r.Intn(len(ids))]
			y := ids[r.Intn(len(ids))]
			if x == y {
				continue
			}
			got := Accumulated(g, x, y, Options{})
			want := bruteForcePhi(g, x, y)
			if math.Abs(got-want) > 1e-9 {
				t.Logf("seed %d: Φ(%d,%d) = %v, brute force %v", seed, x, y, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Φ is monotone — adding an edge never decreases any Φ(x, y) for
// pairs not involving the new edge's endpoints as blockers (in fact it never
// decreases at all: more paths can only add non-negative contributions).
func TestAccumulatedMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAGish(r, 6, 8)
		ids := g.Nodes()
		x, y := ids[0], ids[len(ids)-1]
		before := Accumulated(g, x, y, Options{})
		a, b := ids[r.Intn(len(ids))], ids[r.Intn(len(ids))]
		if a != b {
			g.MustAddEdgeWeighted(a, b, 0.3)
		}
		after := Accumulated(g, x, y, Options{})
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Φ(x, y) ≤ 1 when every company's incoming shares sum to ≤ 1
// (you cannot accumulate more than the whole company).
func TestAccumulatedBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := pg.New()
		var ids []pg.NodeID
		for i := 0; i < 8; i++ {
			ids = append(ids, g.AddNode(pg.LabelCompany, nil))
		}
		incoming := map[pg.NodeID]float64{}
		for i := 0; i < 16; i++ {
			a, b := ids[r.Intn(len(ids))], ids[r.Intn(len(ids))]
			if a == b {
				continue
			}
			room := 1 - incoming[b]
			if room <= 0.02 {
				continue
			}
			w := 0.01 + r.Float64()*(room-0.01)
			incoming[b] += w
			g.MustAddEdgeWeighted(a, b, w)
		}
		for _, x := range ids {
			for y, v := range AccumulatedFrom(g, x, Options{}) {
				if v > 1+1e-9 {
					t.Logf("seed %d: Φ(%d,%d) = %v > 1", seed, x, y, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
