package closelink

import (
	"context"
	"sort"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/vadalog"
)

// Goal-mode entry points: close links and accumulated ownership answered by
// demand-driven (magic-sets) evaluation of the declarative close-link
// program, so a point question ("who is x closely linked to?") derives only
// x's ownership cone instead of every pair in the graph.
//
// Semantics note: the declarative accown is the paper's Definition 2.5
// fixpoint (all walks, shared per-pair totals), while AccumulatedCtx above
// enumerates simple paths with depth/product cutoffs — the two agree on
// DAGs within cutoff reach and the fixpoint dominates on cyclic graphs. The
// goal wrappers expose the declarative semantics, like /v1/explain always
// has.

var (
	clVarX = datalog.Variable("X")
	clVarY = datalog.Variable("Y")
	clVarW = datalog.Variable("W")
)

// GoalLinksOf answers closelink(x, Y) at threshold t: the companies closely
// linked to x, sorted. t <= 0 selects DefaultThreshold.
func GoalLinksOf(ctx context.Context, g pg.View, x pg.NodeID, t float64, opts ...datalog.Option) ([]pg.NodeID, string, error) {
	if t <= 0 {
		t = DefaultThreshold
	}
	goal := datalog.Atom{Pred: "closelink", Terms: []datalog.Term{datalog.Int(int64(x)), clVarY}}
	res, err := vadalog.EvalGoal(ctx, g, vadalog.CloseLinkProgramT(t), goal, opts...)
	if err != nil {
		return nil, "", err
	}
	var out []pg.NodeID
	seen := map[pg.NodeID]bool{}
	for _, b := range res.Answers {
		if id, ok := b[clVarY].(int64); ok && !seen[pg.NodeID(id)] {
			seen[pg.NodeID(id)] = true
			out = append(out, pg.NodeID(id))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, res.Mode, res.RunErr
}

// GoalLinkPair answers the fully bound closelink(x, y) at threshold t.
func GoalLinkPair(ctx context.Context, g pg.View, x, y pg.NodeID, t float64, opts ...datalog.Option) (bool, string, error) {
	if t <= 0 {
		t = DefaultThreshold
	}
	goal := datalog.Atom{Pred: "closelink", Terms: []datalog.Term{datalog.Int(int64(x)), datalog.Int(int64(y))}}
	res, err := vadalog.EvalGoal(ctx, g, vadalog.CloseLinkProgramT(t), goal, opts...)
	if err != nil {
		return false, "", err
	}
	return len(res.Answers) > 0, res.Mode, res.RunErr
}

// GoalAccumulatedFrom answers accown(x, Y, W): x's accumulated ownership in
// every company of its cone, per Definition 2.5 (final per-pair totals).
func GoalAccumulatedFrom(ctx context.Context, g pg.View, x pg.NodeID, opts ...datalog.Option) (map[pg.NodeID]float64, string, error) {
	goal := datalog.Atom{Pred: "accown", Terms: []datalog.Term{datalog.Int(int64(x)), clVarY, clVarW}}
	res, err := vadalog.EvalGoal(ctx, g, vadalog.CloseLinkProgram, goal, opts...)
	if err != nil {
		return nil, "", err
	}
	out := map[pg.NodeID]float64{}
	for _, b := range res.Answers {
		id, okID := b[clVarY].(int64)
		w, okW := b[clVarW].(float64)
		if okID && okW {
			out[pg.NodeID(id)] = w
		}
	}
	return out, res.Mode, res.RunErr
}
