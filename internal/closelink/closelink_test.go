package closelink

import (
	"math"
	"testing"

	"vadalink/internal/pg"
)

func TestAccumulatedSinglePath(t *testing.T) {
	b := pg.NewBuilder()
	b.Company("A")
	b.Company("B")
	b.Company("C")
	b.Own("A", "B", 0.5).Own("B", "C", 0.4)
	g := b.Graph()
	if got := Accumulated(g, b.ID("A"), b.ID("C"), Options{}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Φ(A,C) = %v, want 0.2", got)
	}
}

func TestAccumulatedMultiPath(t *testing.T) {
	// A→B→D (0.5·0.4) and A→C→D (0.3·0.5) and A→D (0.1): Φ = 0.2+0.15+0.1.
	b := pg.NewBuilder()
	for _, c := range []string{"A", "B", "C", "D"} {
		b.Company(c)
	}
	b.Own("A", "B", 0.5).Own("B", "D", 0.4).
		Own("A", "C", 0.3).Own("C", "D", 0.5).
		Own("A", "D", 0.1)
	g := b.Graph()
	if got := Accumulated(g, b.ID("A"), b.ID("D"), Options{}); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("Φ(A,D) = %v, want 0.45", got)
	}
}

func TestAccumulatedSimplePathsOnly(t *testing.T) {
	// Cycle A→B→A plus B→C. Simple paths from A to C: only A→B→C.
	// The cycle must not inflate Φ (Definition 2.5 ranges over simple paths).
	b := pg.NewBuilder()
	for _, c := range []string{"A", "B", "C"} {
		b.Company(c)
	}
	b.Own("A", "B", 0.5).Own("B", "A", 0.5).Own("B", "C", 0.4)
	g := b.Graph()
	if got := Accumulated(g, b.ID("A"), b.ID("C"), Options{}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Φ(A,C) = %v, want 0.2 (simple paths only)", got)
	}
	// Φ(A,A): no simple path from A back to A except through the cycle,
	// which ends when it would revisit A; per Definition 2.5 the path
	// A→B→A is simple in its intermediate nodes. Our DFS treats a return to
	// the start as a revisit, so Φ(A,A) counts A→B→A.
	if got := Accumulated(g, b.ID("A"), b.ID("A"), Options{}); got != 0 {
		t.Logf("Φ(A,A) = %v (cycle back to start; see package doc)", got)
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	b := pg.NewBuilder()
	b.Company("A")
	b.Company("B")
	b.Own("A", "A", 0.3).Own("A", "B", 0.5)
	g := b.Graph()
	if got := Accumulated(g, b.ID("A"), b.ID("B"), Options{}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Φ(A,B) = %v, want 0.5 (self-loop is not a simple path)", got)
	}
}

// TestFigure2CloseLinks checks Example 2.7: with t = 0.2, P3 owns 40% of C4
// and 50% of C6 → close link (C4, C6) by condition (iii); Φ(C4, C7) = 0.2
// → close link (C4, C7) by condition (i).
func TestFigure2CloseLinks(t *testing.T) {
	g, b := pg.Figure2()
	if got := Accumulated(g, b.ID("C4"), b.ID("C7"), Options{}); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Φ(C4,C7) = %v, want 0.2", got)
	}
	links := CloseLinks(g, 0.2, Options{})
	has := func(x, y string) bool {
		a, bID := b.ID(x), b.ID(y)
		if bID < a {
			a, bID = bID, a
		}
		for _, l := range links {
			if l.Pair.A == a && l.Pair.B == bID {
				return true
			}
		}
		return false
	}
	if !has("C4", "C6") {
		t.Error("missing close link (C4, C6) via P3 [Def 2.6(iii)]")
	}
	if !has("C4", "C7") {
		t.Error("missing close link (C4, C7) [Def 2.6(i)]")
	}
}

// TestFigure1CloseLinkGI checks the §1 narrative: G and I are closely linked
// since P2 owns more than 20% of both.
func TestFigure1CloseLinkGI(t *testing.T) {
	g, b := pg.Figure1()
	links := CloseLinks(g, 0.2, Options{})
	gID, iID := b.ID("G"), b.ID("I")
	if iID < gID {
		gID, iID = iID, gID
	}
	// The pair qualifies both by condition (iii) through P2 and by condition
	// (i), since Φ(G,I) = 0.6·0.4 = 0.24 ≥ 0.2; either reason is acceptable.
	for _, l := range links {
		if l.Pair.A == gID && l.Pair.B == iID {
			return
		}
	}
	t.Errorf("missing close link (G, I); got %v", links)
}

func TestCloseLinkPairsAreCompaniesOnly(t *testing.T) {
	g, _ := pg.Figure1()
	for _, l := range CloseLinks(g, 0.2, Options{}) {
		if g.Node(l.Pair.A).Label != pg.LabelCompany || g.Node(l.Pair.B).Label != pg.LabelCompany {
			t.Errorf("close-link pair includes a person: %v", l)
		}
	}
}

func TestCloseLinkThresholdBoundary(t *testing.T) {
	// Φ = exactly t counts (Definition 2.6 uses ≥).
	b := pg.NewBuilder()
	b.Company("A")
	b.Company("B")
	b.Own("A", "B", 0.2)
	g := b.Graph()
	links := CloseLinks(g, 0.2, Options{})
	if len(links) != 1 {
		t.Errorf("links = %v, want the exact-threshold pair", links)
	}
	// Just below the threshold: no link.
	b2 := pg.NewBuilder()
	b2.Company("A")
	b2.Company("B")
	b2.Own("A", "B", 0.19999)
	if links := CloseLinks(b2.Graph(), 0.2, Options{}); len(links) != 0 {
		t.Errorf("sub-threshold links = %v, want none", links)
	}
}

func TestFamilyCloseLinks(t *testing.T) {
	// P1 and P2 are family; P1 owns 40% of D, P2 owns 60% of G → D–G close
	// link through the family (the §1 discussion of D and G).
	g, b := pg.Figure1()
	fams := map[string][]pg.NodeID{
		"rossi": {b.ID("P1"), b.ID("P2")},
	}
	links := FamilyCloseLinks(g, fams, 0.2, Options{})
	dID, gID := b.ID("D"), b.ID("G")
	if gID < dID {
		dID, gID = gID, dID
	}
	found := false
	for _, l := range links {
		if l.Pair.A == dID && l.Pair.B == gID {
			found = true
		}
	}
	if !found {
		t.Errorf("missing family close link (D, G); got %v", links)
	}
	// A single-member family adds nothing beyond ordinary close links
	// (requires i ≠ j).
	solo := FamilyCloseLinks(g, map[string][]pg.NodeID{"x": {b.ID("P1")}}, 0.2, Options{})
	if len(solo) != 0 {
		t.Errorf("single-member family produced links: %v", solo)
	}
}

func TestAnnotateSymmetric(t *testing.T) {
	g, b := pg.Figure2()
	added := Annotate(g, 0.2, Options{})
	if added == 0 {
		t.Fatal("no close-link edges added")
	}
	if !g.HasEdge(pg.LabelCloseLink, b.ID("C4"), b.ID("C7")) ||
		!g.HasEdge(pg.LabelCloseLink, b.ID("C7"), b.ID("C4")) {
		t.Error("close-link edges must be added in both directions")
	}
	if again := Annotate(g, 0.2, Options{}); again != 0 {
		t.Errorf("second Annotate added %d, want 0", again)
	}
}

func TestPruningBoundsWork(t *testing.T) {
	// A long chain of 0.9 shares: with MaxDepth 3 only 3 hops accumulate.
	b := pg.NewBuilder()
	names := []string{"A", "B", "C", "D", "E"}
	for _, n := range names {
		b.Company(n)
	}
	for i := 0; i+1 < len(names); i++ {
		b.Own(names[i], names[i+1], 0.9)
	}
	g := b.Graph()
	acc := AccumulatedFrom(g, b.ID("A"), Options{MaxDepth: 3})
	if _, ok := acc[b.ID("E")]; ok {
		t.Error("MaxDepth 3 should not reach E (4 hops)")
	}
	if _, ok := acc[b.ID("C")]; !ok {
		t.Error("MaxDepth 3 should reach C (2 hops)")
	}
	// MinProduct pruning: contributions below the bound disappear.
	// Products along the chain: B=0.9, C=0.81, D=0.729.
	acc2 := AccumulatedFrom(g, b.ID("A"), Options{MinProduct: 0.8})
	if _, ok := acc2[b.ID("C")]; !ok {
		t.Error("MinProduct 0.8 should keep C (product 0.81)")
	}
	if _, ok := acc2[b.ID("D")]; ok {
		t.Error("MinProduct 0.8 should prune D (product 0.729)")
	}
}

func TestCommonOwners(t *testing.T) {
	g, b := pg.Figure2()
	// P3 owns 40% of C4 and 50% of C6 (Example 2.7, condition (iii)).
	owners := CommonOwners(g, b.ID("C4"), b.ID("C6"), 0.2, Options{})
	found := false
	for _, o := range owners {
		if o.Owner == b.ID("P3") {
			found = true
			if o.PhiX < 0.39 || o.PhiY < 0.49 {
				t.Errorf("P3 evidence Φ = %.2f/%.2f, want 0.4/0.5", o.PhiX, o.PhiY)
			}
		}
	}
	if !found {
		t.Errorf("P3 missing from common owners: %v", owners)
	}
	// No common owner holds ≥90%% of both.
	if got := CommonOwners(g, b.ID("C4"), b.ID("C6"), 0.9, Options{}); len(got) != 0 {
		t.Errorf("common owners at t=0.9 = %v, want none", got)
	}
}
