package closelink_test

// Consumer-level cross-checks of the declarative close-link program through
// the reworked engine: the accumulated-ownership aggregation (a recursive
// msum over share paths) must be identical across the sequential, parallel,
// and scan-mode chase configurations, and on DAGs it must agree with the
// imperative simple-path solver. Lives in package closelink_test because it
// imports the vadalog reasoner.

import (
	"math"
	"testing"

	"vadalink/internal/closelink"
	"vadalink/internal/datalog"
	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
	"vadalink/internal/vadalog"
)

func runReasoner(t *testing.T, g *pg.Graph, opts ...datalog.Option) *vadalog.Reasoner {
	t.Helper()
	r := vadalog.NewReasoner(g, vadalog.TaskCloseLink)
	r.EngineOptions = opts
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCloseLinkEngineConfigsAgree runs the close-link program on random
// graphgen graphs under every engine configuration and asserts identical
// closelink pairs and accumulated-ownership values (up to float-association
// noise in the summation order).
func TestCloseLinkEngineConfigsAgree(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 12, Companies: 25, Seed: seed})
		base := runReasoner(t, it.Graph, datalog.WithParallel(1))
		wantPairs := base.CloseLinkPairs()
		wantAcc := base.AccumulatedOwnership()

		for _, cfg := range []struct {
			name string
			opts []datalog.Option
		}{
			{"par4", []datalog.Option{datalog.WithParallel(4)}},
			{"seq-noindex", []datalog.Option{datalog.WithParallel(1), datalog.WithNoIndex()}},
		} {
			opts := cfg.name
			r := runReasoner(t, it.Graph, cfg.opts...)
			gotPairs := r.CloseLinkPairs()
			if len(gotPairs) != len(wantPairs) {
				t.Fatalf("seed %d opts %+v: %d pairs, want %d", seed, opts, len(gotPairs), len(wantPairs))
			}
			for i := range wantPairs {
				if gotPairs[i] != wantPairs[i] {
					t.Fatalf("seed %d opts %+v: pair %d = %v, want %v", seed, opts, i, gotPairs[i], wantPairs[i])
				}
			}
			gotAcc := r.AccumulatedOwnership()
			if len(gotAcc) != len(wantAcc) {
				t.Fatalf("seed %d opts %+v: %d accown groups, want %d", seed, opts, len(gotAcc), len(wantAcc))
			}
			for k, v := range wantAcc {
				if g, ok := gotAcc[k]; !ok || math.Abs(g-v) > 1e-9 {
					t.Fatalf("seed %d opts %+v: accown%v = %v, want %v", seed, opts, k, gotAcc[k], v)
				}
			}
		}
	}
}

// TestAccumulatedMatchesImperativeOnDAG checks the declarative accumulated
// ownership against the imperative simple-path solver on an acyclic graph,
// where both definitions coincide (on cycles the program computes the
// geometric-series limit instead of simple paths, by design — DESIGN.md §4).
func TestAccumulatedMatchesImperativeOnDAG(t *testing.T) {
	// A layered DAG: layer i owns shares of layer i+1 only.
	g := pg.New()
	var layers [3][]pg.NodeID
	for l := range layers {
		for i := 0; i < 4; i++ {
			layers[l] = append(layers[l], g.AddNode(pg.LabelCompany, map[string]any{"name": "c"}))
		}
	}
	w := []float64{0.6, 0.3, 0.25, 0.15}
	for l := 0; l < 2; l++ {
		for i, from := range layers[l] {
			for j, to := range layers[l+1] {
				if _, err := g.AddEdge(pg.LabelShareholding, from, to, map[string]any{pg.WeightProp: w[(i+j)%len(w)]}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	r := runReasoner(t, g, datalog.WithParallel(4))
	acc := r.AccumulatedOwnership()
	for _, x := range layers[0] {
		imp := closelink.AccumulatedFrom(g, x, closelink.Options{})
		for y, want := range imp {
			got, ok := acc[[2]pg.NodeID{x, y}]
			if !ok || math.Abs(got-want) > 1e-9 {
				t.Fatalf("accown(%d, %d) = %v (ok=%v), imperative says %v", x, y, got, ok, want)
			}
		}
	}
}
