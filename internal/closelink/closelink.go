// Package closelink solves the Close Link (asset eligibility) problem of
// Definitions 2.5 and 2.6 of the Vada-Link paper.
//
// The accumulated ownership Φ(x, y) of x over y is the sum, over all simple
// paths from x to y, of the product of the share amounts along the path
// (Definition 2.5). Two companies x and y are in a close-link relationship
// for threshold t if Φ(x, y) ≥ t, Φ(y, x) ≥ t, or some third party z has
// Φ(z, x) ≥ t and Φ(z, y) ≥ t (Definition 2.6 — the ECB "closely-linked
// entity" rule with t = 0.20).
//
// The solver enumerates simple paths by depth-first search with an on-path
// visited set, which matches Definition 2.5 exactly (the Datalog variant in
// the vadalog package computes the geometric-series semantics instead; see
// DESIGN.md for the discussion). Pruning options bound the exponential
// worst case: contributions below MinProduct and paths longer than MaxDepth
// are cut, both defaulting to values that are lossless on realistic company
// graphs (share products decay geometrically).
package closelink

import (
	"context"
	"sort"

	"vadalink/internal/pg"
)

// DefaultThreshold is the ECB regulation threshold: 20%.
const DefaultThreshold = 0.2

// Options tune the simple-path enumeration.
type Options struct {
	// MinProduct prunes paths whose accumulated product falls below this
	// value; such paths can contribute at most MinProduct each. Zero means
	// the default 1e-9.
	MinProduct float64
	// MaxDepth bounds path length in edges. Zero means the default 64.
	MaxDepth int
}

func (o Options) withDefaults() Options {
	if o.MinProduct == 0 {
		o.MinProduct = 1e-9
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 64
	}
	return o
}

// checkInterval is how many DFS edge expansions pass between context polls
// in the Ctx variants.
const checkInterval = 1024

// Accumulated computes Φ(x, y) per Definition 2.5.
func Accumulated(g pg.View, x, y pg.NodeID, opts Options) float64 {
	return AccumulatedFrom(g, x, opts)[y]
}

// AccumulatedCtx is Accumulated under a context; it returns the context's
// error when the enumeration is cut short (the value is then a lower bound).
func AccumulatedCtx(ctx context.Context, g pg.View, x, y pg.NodeID, opts Options) (float64, error) {
	acc, err := AccumulatedFromCtx(ctx, g, x, opts)
	return acc[y], err
}

// AccumulatedFrom computes Φ(x, ·) for every node reachable from x over
// shareholding edges, in a single simple-path enumeration.
func AccumulatedFrom(g pg.View, x pg.NodeID, opts Options) map[pg.NodeID]float64 {
	acc, _ := AccumulatedFromCtx(context.Background(), g, x, opts)
	return acc
}

// AccumulatedFromCtx is AccumulatedFrom under a context. The simple-path
// enumeration is worst-case exponential, so in a service it must be
// interruptible: the DFS polls the context every checkInterval edge
// expansions and unwinds with the context's error, returning the (partial,
// hence lower-bound) accumulation gathered so far.
func AccumulatedFromCtx(ctx context.Context, g pg.View, x pg.NodeID, opts Options) (map[pg.NodeID]float64, error) {
	opts = opts.withDefaults()
	acc := make(map[pg.NodeID]float64)
	onPath := make(map[pg.NodeID]bool)
	steps := 0
	var cancelErr error
	var dfs func(n pg.NodeID, product float64, depth int)
	dfs = func(n pg.NodeID, product float64, depth int) {
		if cancelErr != nil || depth >= opts.MaxDepth {
			return
		}
		onPath[n] = true
		for _, e := range g.OutLabel(n, pg.LabelShareholding) {
			if steps++; steps%checkInterval == 0 {
				if err := ctx.Err(); err != nil {
					cancelErr = err
					break
				}
			}
			w, ok := e.Weight()
			if !ok {
				continue
			}
			p := product * w
			if p < opts.MinProduct {
				continue
			}
			if onPath[e.To] {
				// Revisiting a node on the current path would make the path
				// non-simple (this also skips self-loops).
				continue
			}
			acc[e.To] += p
			dfs(e.To, p, depth+1)
			if cancelErr != nil {
				break
			}
		}
		onPath[n] = false
	}
	dfs(x, 1, 0)
	return acc, cancelErr
}

// Pair is an unordered close-link pair, stored with A < B.
type Pair struct {
	A, B pg.NodeID
}

// Reason explains why a pair is closely linked.
type Reason int

// Close-link reasons, matching the three conditions of Definition 2.6.
const (
	ReasonDirect      Reason = iota // Φ(A,B) ≥ t or Φ(B,A) ≥ t
	ReasonCommonOwner               // some z has Φ(z,A) ≥ t and Φ(z,B) ≥ t
)

// Link is a close-link finding.
type Link struct {
	Pair   Pair
	Reason Reason
	// Via is the common third party for ReasonCommonOwner.
	Via pg.NodeID
}

// CloseLinks computes every close-link pair among companies for threshold t
// (conditions (i)–(iii) of Definition 2.6). Persons are considered as
// potential common third parties z but never as members of a reported pair.
func CloseLinks(g pg.View, t float64, opts Options) []Link {
	out, _ := CloseLinksCtx(context.Background(), g, t, opts)
	return out
}

// CloseLinksCtx is CloseLinks under a context: it stops between third
// parties (and inside each Φ enumeration) when the context is cancelled,
// returning the links found so far plus the context's error.
func CloseLinksCtx(ctx context.Context, g pg.View, t float64, opts Options) ([]Link, error) {
	if t <= 0 {
		t = DefaultThreshold
	}
	isCompany := func(n pg.NodeID) bool { return g.Node(n).Label == pg.LabelCompany }

	seen := make(map[Pair]bool)
	var out []Link
	add := func(a, b pg.NodeID, r Reason, via pg.NodeID) {
		if a == b {
			return
		}
		if b < a {
			a, b = b, a
		}
		p := Pair{A: a, B: b}
		if seen[p] {
			return
		}
		seen[p] = true
		out = append(out, Link{Pair: p, Reason: r, Via: via})
	}

	for _, z := range g.Nodes() {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if len(g.OutLabel(z, pg.LabelShareholding)) == 0 {
			continue
		}
		acc, err := AccumulatedFromCtx(ctx, g, z, opts)
		if err != nil {
			return out, err
		}
		// Targets owned ≥ t by z.
		var heavy []pg.NodeID
		for y, v := range acc {
			if v >= t && isCompany(y) {
				heavy = append(heavy, y)
			}
		}
		sort.Slice(heavy, func(i, j int) bool { return heavy[i] < heavy[j] })

		// Condition (i)/(ii): z itself is a company owning ≥ t of y.
		if isCompany(z) {
			for _, y := range heavy {
				add(z, y, ReasonDirect, z)
			}
		}
		// Condition (iii): companies jointly heavily owned by z.
		for i := 0; i < len(heavy); i++ {
			for j := i + 1; j < len(heavy); j++ {
				add(heavy[i], heavy[j], ReasonCommonOwner, z)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		return out[i].Pair.B < out[j].Pair.B
	})
	return out, nil
}

// CommonOwners returns every entity z (person or company) whose accumulated
// ownership reaches t in both x and y — the third parties that justify a
// condition-(iii) close link, with their Φ values. This is the evidence a
// compliance analyst attaches to an eligibility rejection.
func CommonOwners(g pg.View, x, y pg.NodeID, t float64, opts Options) []CommonOwner {
	if t <= 0 {
		t = DefaultThreshold
	}
	var out []CommonOwner
	for _, z := range g.Nodes() {
		if z == x || z == y {
			continue
		}
		if len(g.OutLabel(z, pg.LabelShareholding)) == 0 {
			continue
		}
		acc := AccumulatedFrom(g, z, opts)
		if acc[x] >= t && acc[y] >= t {
			out = append(out, CommonOwner{Owner: z, PhiX: acc[x], PhiY: acc[y]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// CommonOwner is one common-third-party finding.
type CommonOwner struct {
	Owner      pg.NodeID
	PhiX, PhiY float64
}

// FamilyCloseLinks implements the family extension (Algorithm 9): two
// companies are closely linked when two *different* members i ≠ j of the same
// family group have Φ(i, x) ≥ t and Φ(j, y) ≥ t. families maps a family
// identifier to its member nodes.
func FamilyCloseLinks(g pg.View, families map[string][]pg.NodeID, t float64, opts Options) []Link {
	if t <= 0 {
		t = DefaultThreshold
	}
	isCompany := func(n pg.NodeID) bool { return g.Node(n).Label == pg.LabelCompany }
	seen := make(map[Pair]bool)
	var out []Link

	famIDs := make([]string, 0, len(families))
	for f := range families {
		famIDs = append(famIDs, f)
	}
	sort.Strings(famIDs)

	for _, f := range famIDs {
		members := families[f]
		// Heavy targets per member.
		heavy := make([][]pg.NodeID, len(members))
		for i, m := range members {
			for y, v := range AccumulatedFrom(g, m, opts) {
				if v >= t && isCompany(y) {
					heavy[i] = append(heavy[i], y)
				}
			}
			sort.Slice(heavy[i], func(a, b int) bool { return heavy[i][a] < heavy[i][b] })
		}
		for i := 0; i < len(members); i++ {
			for j := 0; j < len(members); j++ {
				if i == j {
					continue
				}
				for _, x := range heavy[i] {
					for _, y := range heavy[j] {
						if x == y {
							continue
						}
						a, b := x, y
						if b < a {
							a, b = b, a
						}
						p := Pair{A: a, B: b}
						if seen[p] {
							continue
						}
						seen[p] = true
						out = append(out, Link{Pair: p, Reason: ReasonCommonOwner, Via: members[i]})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		return out[i].Pair.B < out[j].Pair.B
	})
	return out
}

// Annotate adds CloseLink edges (both directions, since close links are
// symmetric per Definition 2.6) for every finding. It returns the number of
// edges added.
func Annotate(g pg.Mutable, t float64, opts Options) int {
	added := 0
	for _, l := range CloseLinks(g, t, opts) {
		for _, d := range [][2]pg.NodeID{{l.Pair.A, l.Pair.B}, {l.Pair.B, l.Pair.A}} {
			if !g.HasEdge(pg.LabelCloseLink, d[0], d[1]) {
				g.MustAddEdge(pg.LabelCloseLink, d[0], d[1], nil)
				added++
			}
		}
	}
	return added
}
