package graphgen

// BenchmarkSizes is the shared scale ladder of the benchmark regression
// harness (chase_bench_test.go, scripts/bench.sh): company counts for the
// fixed-seed Italian workloads. Keeping the ladder in one place makes
// before/after numbers comparable across PRs — scripts/bench.sh emits one
// BENCH_<n>.json per entry.
var BenchmarkSizes = []int{1_000, 10_000, 50_000}
