// Package graphgen generates the synthetic graphs of Section 6 of the
// Vada-Link paper:
//
//   - Barabási–Albert scale-free graphs ("we built different artificial
//     graphs by adopting Barabási algorithm for the generation of scale-free
//     networks, varying the number of nodes and the graph density"), used by
//     the Figure 4(b) and 4(d) experiments;
//   - an Italian-company-like graph with realistic person/company features
//     and planted family relationships, substituting for the proprietary
//     Banca d'Italia database in the Figure 4(a), 4(c), 4(e) experiments and
//     the Section 2 statistics profile (see DESIGN.md, substitutions).
package graphgen

import (
	"fmt"
	"math/rand"

	"vadalink/internal/pg"
)

// DensityLevel selects the edge density of a synthetic graph, matching the
// four Figure 4(d) scenarios.
type DensityLevel int

// Density levels of the Figure 4(d) experiment.
const (
	Sparse DensityLevel = iota
	Normal
	Dense
	Superdense
)

func (d DensityLevel) String() string {
	switch d {
	case Sparse:
		return "sparse"
	case Normal:
		return "normal"
	case Dense:
		return "dense"
	case Superdense:
		return "superdense"
	}
	return "unknown"
}

// EdgesPerNode returns the Barabási–Albert m parameter for the level.
func (d DensityLevel) EdgesPerNode() int {
	switch d {
	case Sparse:
		return 1
	case Normal:
		return 2
	case Dense:
		return 5
	case Superdense:
		return 12
	}
	return 1
}

// BarabasiConfig configures the scale-free generator.
type BarabasiConfig struct {
	N    int   // nodes
	M    int   // edges attached per new node (density)
	Seed int64 //
	// PersonFraction relabels this share of nodes as Person nodes with
	// generated personal features, so the family-detection workload of
	// Section 6 can run on the dense synthetic graphs of Figures 4(b) and
	// 4(d). The resulting graphs deliberately stress-test the system and are
	// not valid company graphs (persons may receive shareholding edges).
	PersonFraction float64
}

// Barabasi generates a scale-free company graph with n nodes by preferential
// attachment, each new node attaching m shareholding edges to existing nodes
// with probability proportional to their degree. Edge weights are share
// fractions normalized so the incoming shares of every company sum to at
// most 1. Node features (6 random features, matching the paper's synthetic
// setup) are drawn from simple distributions.
func Barabasi(n, m int, seed int64) *pg.Graph {
	return BarabasiWith(BarabasiConfig{N: n, M: m, Seed: seed})
}

// BarabasiWith is Barabasi with the full configuration.
func BarabasiWith(cfg BarabasiConfig) *pg.Graph {
	n, m := cfg.N, cfg.M
	if m < 1 {
		m = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := pg.New()

	ids := make([]pg.NodeID, 0, n)
	// repeated holds node indices once per degree unit — sampling an element
	// uniformly implements preferential attachment.
	var repeated []pg.NodeID

	for i := 0; i < n; i++ {
		var id pg.NodeID
		if r.Float64() < cfg.PersonFraction {
			id = g.AddNode(pg.LabelPerson, pg.Properties{
				"name":    firstNames[r.Intn(len(firstNames))],
				"surname": surnames[r.Intn(len(surnames))],
				"birth":   float64(1935 + r.Intn(70)),
				"addr":    fmt.Sprintf("%s %d", streets[r.Intn(len(streets))], 1+r.Intn(200)),
				"city":    cities[r.Intn(len(cities))],
			})
		} else {
			id = g.AddNode(pg.LabelCompany, pg.Properties{
				"name":   companyName(r),
				"sector": sectors[r.Intn(len(sectors))],
				"f1":     r.Float64(),
				"f2":     r.Float64(),
				"f3":     float64(r.Intn(100)),
				"f4":     sectors[r.Intn(len(sectors))],
				"f5":     float64(1950 + r.Intn(70)),
				"f6":     r.NormFloat64(),
			})
		}
		ids = append(ids, id)
		targets := map[pg.NodeID]bool{}
		for k := 0; k < m && len(ids) > 1; k++ {
			var to pg.NodeID
			if len(repeated) == 0 {
				to = ids[r.Intn(len(ids)-1)]
			} else {
				to = repeated[r.Intn(len(repeated))]
			}
			if to == id || targets[to] {
				continue
			}
			targets[to] = true
			g.MustAddEdge(pg.LabelShareholding, id, to,
				pg.Properties{pg.WeightProp: 0.05 + 0.95*r.Float64()})
			repeated = append(repeated, to, id)
		}
	}
	NormalizeShares(g)
	return g
}

// NormalizeShares rescales the incoming shareholding weights of every node
// whose total exceeds 1 so they sum to exactly 1, preserving proportions —
// the company-graph invariant that no more than 100% of a company is owned.
func NormalizeShares(g *pg.Graph) {
	for _, id := range g.Nodes() {
		var sum float64
		var edges []*pg.Edge
		for _, e := range g.InLabel(id, pg.LabelShareholding) {
			if w, ok := e.Weight(); ok {
				sum += w
				edges = append(edges, e)
			}
		}
		if sum <= 1 {
			continue
		}
		for _, e := range edges {
			w, _ := e.Weight()
			e.Props[pg.WeightProp] = w / sum
		}
	}
}

var sectors = []string{
	"manufacturing", "finance", "retail", "agriculture", "energy",
	"construction", "transport", "technology", "tourism", "health",
}

var companySyllables = []string{
	"ital", "tec", "fin", "co", "gen", "ser", "pro", "al", "mec", "tra",
	"ver", "lux", "ban", "mar", "ter", "nor", "sud", "est", "ovest", "gra",
}

func companyName(r *rand.Rand) string {
	n := 2 + r.Intn(2)
	name := ""
	for i := 0; i < n; i++ {
		name += companySyllables[r.Intn(len(companySyllables))]
	}
	return name + " s.p.a."
}
