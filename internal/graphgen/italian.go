package graphgen

import (
	"fmt"
	"math/rand"

	"vadalink/internal/family"
	"vadalink/internal/pg"
)

// ItalianConfig configures the Italian-company-like graph generator. Zero
// values take the documented defaults.
type ItalianConfig struct {
	Persons   int // number of person nodes (default 1000)
	Companies int // number of company nodes (default Persons)
	// ShareEdges is the number of shareholding edges; default ≈
	// 0.98·(Persons+Companies), reproducing the §2 average degree ≈ 1.
	ShareEdges int
	// SelfLoopRate is the fraction of companies owning shares of themselves
	// (the buy-back phenomenon); default 0.0007, matching ≈3K self-loops on
	// 4.06M nodes.
	SelfLoopRate float64
	Seed         int64
}

func (c ItalianConfig) withDefaults() ItalianConfig {
	if c.Persons == 0 {
		c.Persons = 1000
	}
	if c.Companies == 0 {
		c.Companies = c.Persons
	}
	if c.ShareEdges == 0 {
		c.ShareEdges = int(0.98 * float64(c.Persons+c.Companies))
	}
	if c.SelfLoopRate == 0 {
		c.SelfLoopRate = 0.0007
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// GroundLink is a planted personal connection, the ground truth for the
// recall experiments of Section 6.2.
type GroundLink struct {
	X, Y  pg.NodeID
	Class family.LinkClass
}

// Italian is a generated Italian-company-like graph plus its planted ground
// truth.
type Italian struct {
	Graph *pg.Graph
	// Truth lists the planted family links (X before Y in generation order).
	Truth []GroundLink
	// Families maps a family surname key to its member person nodes.
	Families map[string][]pg.NodeID
}

// NewItalian generates the graph. Persons are grouped into families of 1–5
// members sharing surname, address and city, with partner/sibling/parent
// structure recorded as ground truth. Shareholding follows preferential
// attachment onto companies (scale-free, §2 profile), with weights
// normalized per company.
func NewItalian(cfg ItalianConfig) *Italian {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	g := pg.New()
	out := &Italian{Graph: g, Families: map[string][]pg.NodeID{}}

	// 1. Persons in family groups.
	created := 0
	famIdx := 0
	for created < cfg.Persons {
		size := 1 + r.Intn(5)
		if created+size > cfg.Persons {
			size = cfg.Persons - created
		}
		famIdx++
		surname := surnames[r.Intn(len(surnames))]
		famKey := fmt.Sprintf("%s#%d", surname, famIdx)
		city := cities[r.Intn(len(cities))]
		addr := fmt.Sprintf("%s %d", streets[r.Intn(len(streets))], 1+r.Intn(200))

		type member struct {
			id    pg.NodeID
			birth int
			role  int // 0 parent-generation, 1 child-generation
		}
		var members []member
		parentBirth := 1935 + r.Intn(45)
		for i := 0; i < size; i++ {
			var birth int
			role := 0
			switch {
			case i == 0:
				birth = parentBirth
			case i == 1:
				// Likely partner of member 0: close birth year.
				birth = parentBirth - 5 + r.Intn(11)
			default:
				// Children generation (capped: registered shareholders are
				// adults in the 2005–2018 data the paper describes).
				birth = parentBirth + 20 + r.Intn(15)
				if birth > 1998 {
					birth = 1998 - r.Intn(5)
				}
				role = 1
			}
			sn := surname
			if i == 1 && r.Float64() < 0.5 {
				// Partners may keep their own surname.
				sn = surnames[r.Intn(len(surnames))]
			}
			id := g.AddNode(pg.LabelPerson, pg.Properties{
				"name":    firstNames[r.Intn(len(firstNames))],
				"surname": sn,
				"birth":   float64(birth),
				"addr":    addr,
				"city":    city,
			})
			members = append(members, member{id: id, birth: birth, role: role})
			out.Families[famKey] = append(out.Families[famKey], id)
		}
		// Ground-truth structure.
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				var class family.LinkClass
				switch {
				case a.role == 0 && b.role == 0:
					class = family.PartnerOf
				case a.role != b.role:
					class = family.ParentOf
				default:
					class = family.SiblingOf
				}
				out.Truth = append(out.Truth, GroundLink{X: a.id, Y: b.id, Class: class})
			}
		}
		created += size
	}

	// 2. Companies.
	companies := make([]pg.NodeID, 0, cfg.Companies)
	for i := 0; i < cfg.Companies; i++ {
		id := g.AddNode(pg.LabelCompany, pg.Properties{
			"name":   companyName(r),
			"sector": sectors[r.Intn(len(sectors))],
			"addr":   fmt.Sprintf("%s %d", streets[r.Intn(len(streets))], 1+r.Intn(200)),
			"city":   cities[r.Intn(len(cities))],
		})
		companies = append(companies, id)
	}
	if len(companies) == 0 {
		return out
	}

	// 3. Shareholding with preferential attachment on both sides: targets
	// accumulate in-degree (widely-held companies, paper: max in-degree
	// > 5K) and a minority of sources accumulate out-degree (holding
	// companies and funds with thousands of stakes, paper: max out-degree
	// > 28K). Degree distributions go power-law, per §2.
	persons := g.NodesWithLabel(pg.LabelPerson)
	var inRepeated, outRepeated []pg.NodeID
	pickTarget := func() pg.NodeID {
		if len(inRepeated) > 0 && r.Float64() < 0.7 {
			return inRepeated[r.Intn(len(inRepeated))]
		}
		return companies[r.Intn(len(companies))]
	}
	pickSource := func() pg.NodeID {
		if len(outRepeated) > 0 && r.Float64() < 0.35 {
			return outRepeated[r.Intn(len(outRepeated))]
		}
		if r.Float64() < 0.55 && len(persons) > 0 {
			return persons[r.Intn(len(persons))]
		}
		return companies[r.Intn(len(companies))]
	}
	for i := 0; i < cfg.ShareEdges; i++ {
		from := pickSource()
		to := pickTarget()
		if from == to {
			continue
		}
		g.MustAddEdge(pg.LabelShareholding, from, to,
			pg.Properties{pg.WeightProp: shareAmount(r)})
		inRepeated = append(inRepeated, to)
		outRepeated = append(outRepeated, from)
	}

	// 4. Buy-back self-loops.
	loops := int(cfg.SelfLoopRate * float64(len(companies)))
	for i := 0; i < loops; i++ {
		c := companies[r.Intn(len(companies))]
		g.MustAddEdge(pg.LabelShareholding, c, c,
			pg.Properties{pg.WeightProp: 0.01 + 0.1*r.Float64()})
	}

	// 5. Cross-ownership rings: small groups of companies holding minority
	// stakes in each other, reproducing the §2 non-trivial SCCs (paper:
	// largest SCC 15 on 4M nodes — rare but present).
	rings := len(companies) / 2000
	for i := 0; i < rings; i++ {
		size := 2 + r.Intn(6)
		ring := make([]pg.NodeID, size)
		for j := range ring {
			ring[j] = companies[r.Intn(len(companies))]
		}
		for j := range ring {
			a, b := ring[j], ring[(j+1)%size]
			if a == b {
				continue
			}
			g.MustAddEdge(pg.LabelShareholding, a, b,
				pg.Properties{pg.WeightProp: 0.02 + 0.1*r.Float64()})
		}
	}

	// 6. Ownership triangles: an owner of two companies where one company
	// also holds the other — lifts the clustering coefficient toward the
	// §2 value (≈ 0.0084) while staying "very low".
	triangles := (len(persons) + len(companies)) / 175
	holders := append(append([]pg.NodeID(nil), persons...), companies...)
	for i := 0; i < triangles && len(companies) >= 2; i++ {
		a := holders[r.Intn(len(holders))]
		c1 := companies[r.Intn(len(companies))]
		c2 := companies[r.Intn(len(companies))]
		if a == c1 || a == c2 || c1 == c2 {
			continue
		}
		g.MustAddEdge(pg.LabelShareholding, a, c1, pg.Properties{pg.WeightProp: shareAmount(r)})
		g.MustAddEdge(pg.LabelShareholding, a, c2, pg.Properties{pg.WeightProp: shareAmount(r)})
		g.MustAddEdge(pg.LabelShareholding, c1, c2, pg.Properties{pg.WeightProp: 0.02 + 0.1*r.Float64()})
	}

	NormalizeShares(g)
	return out
}

// shareAmount draws a share fraction with the bimodal shape of real company
// registers: many small stakes, a fat bump near majority and full ownership.
func shareAmount(r *rand.Rand) float64 {
	switch {
	case r.Float64() < 0.25:
		return 1.0 // sole ownership (normalized later if the company gains more owners)
	case r.Float64() < 0.3:
		return 0.5 + 0.5*r.Float64()
	default:
		return 0.01 + 0.49*r.Float64()
	}
}

var surnames = []string{
	"Rossi", "Russo", "Ferrari", "Esposito", "Bianchi", "Romano", "Colombo",
	"Ricci", "Marino", "Greco", "Bruno", "Gallo", "Conti", "DeLuca",
	"Mancini", "Costa", "Giordano", "Rizzo", "Lombardi", "Moretti",
	"Barbieri", "Fontana", "Santoro", "Mariani", "Rinaldi", "Caruso",
	"Ferrara", "Galli", "Martini", "Leone", "Longo", "Gentile", "Martinelli",
	"Vitale", "Lombardo", "Serra", "Coppola", "DeSantis", "D'Angelo",
	"Marchetti", "Parisi", "Villa", "Conte", "Ferraro", "Ferri", "Fabbri",
	"Bianco", "Marini", "Grasso", "Valentini",
}

var firstNames = []string{
	"Mario", "Luigi", "Giuseppe", "Giovanni", "Antonio", "Francesco",
	"Luca", "Marco", "Andrea", "Stefano", "Anna", "Maria", "Giulia",
	"Francesca", "Elena", "Laura", "Paola", "Chiara", "Sara", "Valentina",
	"Alessandro", "Davide", "Simone", "Matteo", "Lorenzo", "Roberta",
	"Silvia", "Martina", "Alessia", "Federica",
}

var streets = []string{
	"Via Roma", "Via Garibaldi", "Corso Italia", "Via Dante", "Via Verdi",
	"Piazza Duomo", "Via Mazzini", "Corso Vittorio Emanuele", "Via Cavour",
	"Via Marconi", "Viale Europa", "Via Manzoni",
}

var cities = []string{
	"Roma", "Milano", "Napoli", "Torino", "Palermo", "Genova", "Bologna",
	"Firenze", "Bari", "Catania", "Venezia", "Verona",
}
