package graphgen

import (
	"testing"

	"vadalink/internal/family"
	"vadalink/internal/graphstats"
	"vadalink/internal/pg"
)

func TestBarabasiBasicShape(t *testing.T) {
	g := Barabasi(500, 2, 1)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d, want 500", g.NumNodes())
	}
	// m=2 gives roughly 2 edges per node (first nodes attach fewer).
	if e := g.NumEdges(); e < 700 || e > 1000 {
		t.Errorf("edges = %d, want ≈ 1000", e)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid company graph: %v", err)
	}
}

func TestBarabasiDeterministic(t *testing.T) {
	g1 := Barabasi(200, 2, 7)
	g2 := Barabasi(200, 2, 7)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for _, eid := range g1.Edges() {
		e1, e2 := g1.Edge(eid), g2.Edge(eid)
		if e1.From != e2.From || e1.To != e2.To {
			t.Fatal("edge structure differs between same-seed runs")
		}
	}
}

func TestBarabasiScaleFree(t *testing.T) {
	g := Barabasi(2000, 2, 3)
	s := graphstats.Compute(g)
	// Scale-free networks have hubs: max degree far above the average.
	if float64(s.MaxInDegree) < 5*s.AvgInDegree {
		t.Errorf("no hubs: max in-degree %d vs avg %.2f", s.MaxInDegree, s.AvgInDegree)
	}
	// Power-law exponent lands in the usual 1.5–3.5 band for BA graphs.
	if s.PowerLawAlpha < 1.5 || s.PowerLawAlpha > 3.5 {
		t.Errorf("power-law α = %.2f, want ∈ [1.5, 3.5]", s.PowerLawAlpha)
	}
}

func TestNormalizeShares(t *testing.T) {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, nil)
	b := g.AddNode(pg.LabelCompany, nil)
	c := g.AddNode(pg.LabelCompany, nil)
	g.MustAddEdge(pg.LabelShareholding, a, c, pg.Properties{pg.WeightProp: 0.9})
	g.MustAddEdge(pg.LabelShareholding, b, c, pg.Properties{pg.WeightProp: 0.9})
	NormalizeShares(g)
	var sum float64
	for _, e := range g.InLabel(c, pg.LabelShareholding) {
		w, _ := e.Weight()
		sum += w
	}
	if sum > 1+1e-12 {
		t.Errorf("incoming shares sum to %v after normalization", sum)
	}
	// Proportions preserved: both owners keep equal shares.
	es := g.InLabel(c, pg.LabelShareholding)
	w0, _ := es[0].Weight()
	w1, _ := es[1].Weight()
	if w0 != w1 {
		t.Errorf("proportions not preserved: %v vs %v", w0, w1)
	}
}

func TestItalianDefaults(t *testing.T) {
	it := NewItalian(ItalianConfig{Persons: 300, Seed: 5})
	g := it.Graph
	if got := len(g.NodesWithLabel(pg.LabelPerson)); got != 300 {
		t.Errorf("persons = %d, want 300", got)
	}
	if got := len(g.NodesWithLabel(pg.LabelCompany)); got != 300 {
		t.Errorf("companies = %d, want 300 (default = persons)", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid company graph: %v", err)
	}
}

func TestItalianGroundTruthConsistent(t *testing.T) {
	it := NewItalian(ItalianConfig{Persons: 200, Seed: 9})
	g := it.Graph
	if len(it.Truth) == 0 {
		t.Fatal("no planted ground truth")
	}
	classes := map[family.LinkClass]int{}
	for _, gl := range it.Truth {
		if g.Node(gl.X) == nil || g.Node(gl.Y) == nil {
			t.Fatal("ground-truth link references missing node")
		}
		if g.Node(gl.X).Label != pg.LabelPerson || g.Node(gl.Y).Label != pg.LabelPerson {
			t.Fatal("ground-truth link between non-persons")
		}
		classes[gl.Class]++
	}
	for _, c := range []family.LinkClass{family.PartnerOf, family.SiblingOf, family.ParentOf} {
		if classes[c] == 0 {
			t.Errorf("no planted %s links; classes = %v", c, classes)
		}
	}
}

func TestItalianFamiliesShareAddress(t *testing.T) {
	it := NewItalian(ItalianConfig{Persons: 100, Seed: 2})
	g := it.Graph
	for fam, members := range it.Families {
		if len(members) < 2 {
			continue
		}
		addr := g.Node(members[0]).Props["addr"]
		for _, m := range members[1:] {
			if g.Node(m).Props["addr"] != addr {
				t.Errorf("family %s members have different addresses", fam)
			}
		}
	}
}

func TestItalianStatsProfile(t *testing.T) {
	// The generated graph must reproduce the §2 profile qualitatively:
	// avg degree ≈ 1, tiny SCCs, large WCC fragmentation, near-zero
	// clustering coefficient, hubs, self-loops.
	it := NewItalian(ItalianConfig{Persons: 5000, Companies: 5000, Seed: 4})
	s := graphstats.Compute(it.Graph)
	if s.AvgOutDegree < 0.7 || s.AvgOutDegree > 1.3 {
		t.Errorf("avg degree = %.2f, want ≈ 1", s.AvgOutDegree)
	}
	if s.LargestSCC > 30 {
		t.Errorf("largest SCC = %d, want small (paper: 15 on 4M nodes)", s.LargestSCC)
	}
	if s.AvgClustering > 0.05 {
		t.Errorf("clustering coefficient = %.4f, want ≈ 0", s.AvgClustering)
	}
	if float64(s.MaxInDegree) < 10*s.AvgInDegree {
		t.Errorf("no hubs: max in-degree %d", s.MaxInDegree)
	}
	if s.SelfLoops == 0 {
		t.Error("no buy-back self-loops generated")
	}
}

func TestDensityLevels(t *testing.T) {
	prev := 0
	for _, d := range []DensityLevel{Sparse, Normal, Dense, Superdense} {
		g := Barabasi(300, d.EdgesPerNode(), 6)
		if g.NumEdges() <= prev {
			t.Errorf("density %s edges = %d, not above previous %d", d, g.NumEdges(), prev)
		}
		prev = g.NumEdges()
	}
}
