package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vadalink/internal/faultinject"
	"vadalink/internal/pg"
)

// MVCC errors.
var (
	// ErrConflict is returned by Txn.Commit when another transaction
	// published a version after this transaction began. The transaction's
	// overlay is unchanged; the caller may re-begin and replay.
	ErrConflict = errors.New("store: transaction conflicts with a newer committed version")
	// ErrTxnDone is returned by Txn.Commit on a transaction that was
	// already committed or aborted.
	ErrTxnDone = errors.New("store: transaction already finished")
)

// DefaultFlattenDepth is the overlay-chain depth at which a commit folds
// the chain into a flat clone of the writer master. Depth-1 chains keep
// commits O(delta); flattening bounds the per-read indirection cost and is
// paid by the (rare, already O(graph)) write path, never by readers.
const DefaultFlattenDepth = 4

// Version is one immutable published state of a versioned graph. Its View
// is frozen — safe for unsynchronized concurrent reads for as long as any
// reader holds it, regardless of how many versions have been published
// since.
type Version struct {
	view  pg.View
	seq   uint64
	depth int
}

// View returns the frozen graph view of this version.
func (v *Version) View() pg.View { return v.view }

// Seq returns the version's commit sequence number (0 for the initial
// version, +1 per committed transaction).
func (v *Version) Seq() uint64 { return v.seq }

// Depth reports the overlay-chain depth of the version's view (0 = flat
// graph).
func (v *Version) Depth() int { return v.depth }

// Versioned is a multi-version store over a property graph. It keeps one
// mutable writer "master" — the graph handed to NewVersioned, which retains
// its mutation hook, so a WAL-capturing persist layer keeps observing every
// committed change — and an atomically published chain of immutable read
// versions:
//
//   - Current returns the latest published Version; its View never changes,
//     so readers and the chase run lock-free against it while writers work.
//   - Begin opens a transaction: a copy-on-write overlay on the current
//     version. Mutations touch only the overlay.
//   - Commit replays the overlay's journal onto the master (firing the
//     master's mutation hook — the only place WAL records originate) and
//     publishes the overlay as the next version with a single atomic
//     pointer swap. Concurrency control is optimistic: a commit that lost
//     the race to a newer version fails with ErrConflict.
//
// Every FlattenDepth commits the chain is folded into a flat clone of the
// master so read indirection stays bounded.
type Versioned struct {
	master       *pg.Graph
	mu           sync.Mutex // serializes commits (master replay + publish)
	curr         atomic.Pointer[Version]
	flattenDepth int

	// onCommit, when set, observes every published version together with the
	// journal that produced it — the seam an incremental view maintainer
	// hangs on. It runs under mu, after the version is visible to readers,
	// so observers see commits in publication order exactly once.
	onCommit func(next *Version, journal []pg.Mutation)
}

// VersionedOptions tunes a Versioned store.
type VersionedOptions struct {
	// FlattenDepth is the overlay-chain depth at which commits flatten;
	// 0 means DefaultFlattenDepth.
	FlattenDepth int
}

// NewVersioned wraps g as the writer master of a versioned store and
// publishes a flat clone of it as version 0. The clone does not inherit
// g's mutation hook (pg.Clone never does), so published read views are
// invisible to the WAL: durability capture happens exactly once, on the
// master, at commit time.
//
// After NewVersioned the caller must stop mutating g directly — every
// change goes through Begin/Commit, which keeps master and published
// versions in lockstep.
func NewVersioned(g *pg.Graph, opts ...VersionedOptions) *Versioned {
	fd := DefaultFlattenDepth
	if len(opts) > 0 && opts[0].FlattenDepth > 0 {
		fd = opts[0].FlattenDepth
	}
	vs := &Versioned{master: g, flattenDepth: fd}
	vs.curr.Store(&Version{view: g.Clone(), seq: 0, depth: 0})
	return vs
}

// Current returns the latest published version. Lock-free.
func (vs *Versioned) Current() *Version { return vs.curr.Load() }

// SetCommitHook installs fn as the store's commit observer; nil removes it.
// The hook runs synchronously inside Commit, under the commit lock, after
// the new version is published — it must not begin or commit transactions
// (that would deadlock), and it observes commits in order, exactly once.
func (vs *Versioned) SetCommitHook(fn func(next *Version, journal []pg.Mutation)) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.onCommit = fn
}

// AddCommitHook chains fn after any previously installed commit observers,
// under the same contract as SetCommitHook: hooks run synchronously inside
// Commit, in installation order, after the version is published. Use it when
// several subsystems (view maintenance, cache invalidation) need to observe
// the same commit stream without clobbering each other's hook.
func (vs *Versioned) AddCommitHook(fn func(next *Version, journal []pg.Mutation)) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	prev := vs.onCommit
	if prev == nil {
		vs.onCommit = fn
		return
	}
	vs.onCommit = func(next *Version, journal []pg.Mutation) {
		prev(next, journal)
		fn(next, journal)
	}
}

// Txn is one writer transaction: an overlay over the version that was
// current at Begin. It is not safe for concurrent use; the overlay is
// frozen the moment Commit publishes it.
type Txn struct {
	vs   *Versioned
	base *Version
	o    *pg.Overlay
	done bool
}

// Begin opens a transaction on the current version.
func (vs *Versioned) Begin() *Txn {
	base := vs.Current()
	return &Txn{vs: vs, base: base, o: pg.NewOverlay(base.view)}
}

// Overlay returns the transaction's mutable overlay. Mutations applied to
// it are invisible to readers until Commit.
func (t *Txn) Overlay() *pg.Overlay { return t.o }

// Base returns the version the transaction is stacked on.
func (t *Txn) Base() *Version { return t.base }

// Commit publishes the transaction as the next version. It fails with
// ErrConflict if a newer version was published after Begin and with
// ErrTxnDone if the transaction already finished. On success the overlay
// must no longer be mutated.
func (t *Txn) Commit() (*Version, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	journal, err := t.o.Journal()
	if err != nil {
		return nil, err
	}
	vs := t.vs
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.curr.Load() != t.base {
		return nil, ErrConflict
	}
	if err := replay(vs.master, journal); err != nil {
		return nil, err
	}
	t.done = true
	faultinject.Fire(faultinject.SiteStoreSwap)
	next := &Version{view: t.o, seq: t.base.seq + 1, depth: t.base.depth + 1}
	if next.depth >= vs.flattenDepth {
		next.view = vs.master.Clone()
		next.depth = 0
	}
	vs.curr.Store(next)
	if vs.onCommit != nil {
		vs.onCommit(next, journal)
	}
	return next, nil
}

// Abort discards the transaction. The overlay is dropped; nothing was ever
// visible to readers or the master.
func (t *Txn) Abort() { t.done = true }

// replay applies an overlay journal onto the master graph. Overlays assign
// IDs continuing from their base's counters and the master tracks the
// published chain exactly, so replayed IDs must come out identical; any
// divergence means the master was mutated outside a transaction and the
// store must fail loudly rather than publish a forked history.
func replay(g *pg.Graph, journal []pg.Mutation) error {
	for _, m := range journal {
		switch m.Kind {
		case pg.MutAddNode:
			id := g.AddNode(m.Node.Label, cloneProps(m.Node.Props))
			if id != m.Node.ID {
				return fmt.Errorf("store: commit replay: node id %d, overlay assigned %d (master mutated outside a transaction?)", id, m.Node.ID)
			}
		case pg.MutAddEdge:
			id, err := g.AddEdge(m.Edge.Label, m.Edge.From, m.Edge.To, cloneProps(m.Edge.Props))
			if err != nil {
				return fmt.Errorf("store: commit replay: %w", err)
			}
			if id != m.Edge.ID {
				return fmt.Errorf("store: commit replay: edge id %d, overlay assigned %d (master mutated outside a transaction?)", id, m.Edge.ID)
			}
		case pg.MutRemoveEdge:
			if !g.RemoveEdge(m.Edge.ID) {
				return fmt.Errorf("store: commit replay: remove of unknown edge %d", m.Edge.ID)
			}
		case pg.MutSetEdgeWeight:
			w, ok := m.Edge.Weight()
			if !ok {
				return fmt.Errorf("store: commit replay: weight edit of edge %d carries no weight", m.Edge.ID)
			}
			if err := g.SetEdgeWeight(m.Edge.ID, w); err != nil {
				return fmt.Errorf("store: commit replay: %w", err)
			}
		case pg.MutRemoveNode:
			// The overlay journals the incident-edge removals ahead of the
			// node removal, so by now the master node is edge-free and this
			// fires exactly one MutRemoveNode on the master's hook.
			if !g.RemoveNode(m.Node.ID) {
				return fmt.Errorf("store: commit replay: remove of unknown node %d", m.Node.ID)
			}
		default:
			return fmt.Errorf("store: commit replay: unknown mutation kind %d", m.Kind)
		}
	}
	return nil
}

func cloneProps(p pg.Properties) pg.Properties {
	c := make(pg.Properties, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}
