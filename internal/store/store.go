// Package store persists property graphs as versioned binary snapshots —
// the durable layer of the §5 architecture (the paper uses Neo4j purely as
// a store; this package plays that role without leaving the stdlib).
//
// Format: a magic header, a format version, then the gob-encoded graph
// payload. Snapshots are written atomically (temp file + rename) so a crash
// mid-save never corrupts the previous snapshot.
//
// Version 2 (current) preserves node and edge identifiers verbatim plus the
// graph's internal ID counters, so a write-ahead log recorded against the
// live graph replays against the restored one with identical identifier
// assignment (internal/persist depends on this). Version 1 snapshots remain
// readable; their edge IDs are reassigned densely in snapshot order, as that
// format always did.
package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vadalink/internal/pg"
)

const (
	magic   = "VADALINK-KG"
	version = 2
)

// payload is the gob-encoded snapshot body. NextNode/NextEdge are the
// graph's ID counters (version 2; zero in version-1 snapshots, where they
// are reconstructed as "dense"). WeightEdits is the graph's weight-edit
// counter, part of the WAL-position arithmetic (persist.SeqOfGraph); gob
// field semantics version-gate it for free — snapshots written before the
// field existed decode with WeightEdits == 0, which is correct because that
// code could not log weight edits.
type payload struct {
	Nodes       []nodeRec
	Edges       []edgeRec
	NextNode    int64
	NextEdge    int64
	WeightEdits int64
}

type nodeRec struct {
	ID    pg.NodeID
	Label pg.Label
	Props map[string]any
}

type edgeRec struct {
	ID    pg.EdgeID
	Label pg.Label
	From  pg.NodeID
	To    pg.NodeID
	Props map[string]any
}

func init() {
	// Property values are scalars; register the concrete types gob meets
	// inside the any-valued maps.
	gob.Register(float64(0))
	gob.Register(int64(0))
	gob.Register("")
	gob.Register(true)
}

// Write serializes the graph to w.
func Write(w io.Writer, g *pg.Graph) error {
	header := append([]byte(magic), byte(version))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("store: writing header: %w", err)
	}
	p := payload{
		NextNode:    int64(g.NextNodeID()),
		NextEdge:    int64(g.NextEdgeID()),
		WeightEdits: g.WeightEdits(),
	}
	for _, id := range g.Nodes() {
		n := g.Node(id)
		p.Nodes = append(p.Nodes, nodeRec{ID: n.ID, Label: n.Label, Props: n.Props})
	}
	for _, id := range g.Edges() {
		e := g.Edge(id)
		p.Edges = append(p.Edges, edgeRec{ID: e.ID, Label: e.Label, From: e.From, To: e.To, Props: e.Props})
	}
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("store: encoding graph: %w", err)
	}
	return nil
}

// Read parses a snapshot produced by Write. Node and edge identifiers and
// the graph's ID counters are preserved (version 2); for legacy version-1
// snapshots edge identifiers are assigned afresh in snapshot order, as
// before.
func Read(r io.Reader) (*pg.Graph, error) {
	header := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}
	if string(header[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: not a vadalink snapshot (magic %q)", header[:len(magic)])
	}
	got := int(header[len(magic)])
	if got != 1 && got != version {
		return nil, fmt.Errorf("store: snapshot version %d not supported (want 1 or %d)", got, version)
	}
	var p payload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("store: decoding graph: %w", err)
	}
	if got == 1 {
		// Legacy rebuild: preserve node IDs, reassign edge IDs densely.
		g := pg.New()
		if err := rebuild(g, p); err != nil {
			return nil, err
		}
		return g, nil
	}
	nodes := make([]pg.Node, len(p.Nodes))
	for i, n := range p.Nodes {
		nodes[i] = pg.Node{ID: n.ID, Label: n.Label, Props: pg.Properties(n.Props)}
	}
	edges := make([]pg.Edge, len(p.Edges))
	for i, e := range p.Edges {
		edges[i] = pg.Edge{ID: e.ID, Label: e.Label, From: e.From, To: e.To, Props: pg.Properties(e.Props)}
	}
	g, err := pg.Restore(nodes, edges, pg.NodeID(p.NextNode), pg.EdgeID(p.NextEdge))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	g.SetWeightEdits(p.WeightEdits)
	return g, nil
}

// rebuild restores nodes and edges with their original IDs via the public
// pg surface: nodes must be added in ID order (pg assigns sequential IDs).
func rebuild(g *pg.Graph, p payload) error {
	expect := pg.NodeID(0)
	for _, n := range p.Nodes {
		if n.ID != expect {
			// Fill gaps from removed nodes by adding placeholders is wrong;
			// snapshots of graphs always have dense node IDs because pg
			// never removes nodes. A sparse snapshot is corrupt.
			return fmt.Errorf("store: non-sequential node id %d (want %d)", n.ID, expect)
		}
		props := pg.Properties{}
		for k, v := range n.Props {
			props[k] = v
		}
		g.AddNode(n.Label, props)
		expect++
	}
	for _, e := range p.Edges {
		props := pg.Properties{}
		for k, v := range e.Props {
			props[k] = v
		}
		if _, err := g.AddEdge(e.Label, e.From, e.To, props); err != nil {
			return fmt.Errorf("store: restoring edge %d: %w", e.ID, err)
		}
	}
	return nil
}

// Save writes the graph to path atomically (temp file in the same directory,
// fsync, rename).
func Save(path string, g *pg.Graph) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".vadalink-snapshot-*")
	if err != nil {
		return fmt.Errorf("store: creating temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot from path.
func Load(path string) (*pg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening snapshot: %w", err)
	}
	defer f.Close()
	return Read(f)
}
