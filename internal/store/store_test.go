package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vadalink/internal/control"
	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
)

func TestRoundTripFigure2(t *testing.T) {
	g, b := pg.Figure2()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Node IDs, labels and properties preserved.
	for _, id := range g.Nodes() {
		orig, rest := g.Node(id), got.Node(id)
		if rest == nil || rest.Label != orig.Label {
			t.Fatalf("node %d lost or relabelled", id)
		}
		if rest.Props["name"] != orig.Props["name"] {
			t.Errorf("node %d name %v != %v", id, rest.Props["name"], orig.Props["name"])
		}
	}
	// Reasoning gives identical answers on the restored graph.
	origPairs := control.AllPairs(g)
	restPairs := control.AllPairs(got)
	if len(origPairs) != len(restPairs) {
		t.Fatalf("control pairs differ after restore: %d vs %d", len(origPairs), len(restPairs))
	}
	for i := range origPairs {
		if origPairs[i] != restPairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, origPairs[i], restPairs[i])
		}
	}
	_ = b
}

func TestRoundTripLargeGenerated(t *testing.T) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 500, Companies: 300, Seed: 7})
	var buf bytes.Buffer
	if err := Write(&buf, it.Graph); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != it.Graph.NumNodes() || got.NumEdges() != it.Graph.NumEdges() {
		t.Fatalf("large round trip: %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), it.Graph.NumNodes(), it.Graph.NumEdges())
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kg.snapshot")
	g, _ := pg.Figure1()
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() {
		t.Errorf("loaded %d nodes, want %d", got.NumNodes(), g.NumNodes())
	}
	// Overwriting is atomic: saving again leaves a readable snapshot and no
	// temp litter.
	if err := Save(path, got); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after re-save, want 1", len(entries))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC-XXX\x01garbagegarbage"),
		append([]byte(magic), 99), // future version
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("Read(%q) accepted garbage", c)
		}
	}
}

func TestReadRejectsTruncatedPayload(t *testing.T) {
	g, _ := pg.Figure2()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file accepted")
	}
}
