package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vadalink/internal/control"
	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
)

func TestRoundTripFigure2(t *testing.T) {
	g, b := pg.Figure2()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Node IDs, labels and properties preserved.
	for _, id := range g.Nodes() {
		orig, rest := g.Node(id), got.Node(id)
		if rest == nil || rest.Label != orig.Label {
			t.Fatalf("node %d lost or relabelled", id)
		}
		if rest.Props["name"] != orig.Props["name"] {
			t.Errorf("node %d name %v != %v", id, rest.Props["name"], orig.Props["name"])
		}
	}
	// Reasoning gives identical answers on the restored graph.
	origPairs := control.AllPairs(g)
	restPairs := control.AllPairs(got)
	if len(origPairs) != len(restPairs) {
		t.Fatalf("control pairs differ after restore: %d vs %d", len(origPairs), len(restPairs))
	}
	for i := range origPairs {
		if origPairs[i] != restPairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, origPairs[i], restPairs[i])
		}
	}
	_ = b
}

func TestRoundTripLargeGenerated(t *testing.T) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 500, Companies: 300, Seed: 7})
	var buf bytes.Buffer
	if err := Write(&buf, it.Graph); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != it.Graph.NumNodes() || got.NumEdges() != it.Graph.NumEdges() {
		t.Fatalf("large round trip: %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), it.Graph.NumNodes(), it.Graph.NumEdges())
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kg.snapshot")
	g, _ := pg.Figure1()
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() {
		t.Errorf("loaded %d nodes, want %d", got.NumNodes(), g.NumNodes())
	}
	// Overwriting is atomic: saving again leaves a readable snapshot and no
	// temp litter.
	if err := Save(path, got); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after re-save, want 1", len(entries))
	}
}

// TestRoundTripPreservesEdgeIDsAndCounters: version-2 snapshots keep edge
// identifiers (sparse after removals) and the ID counters, so WAL records
// recorded against the live graph replay against the restored one.
func TestRoundTripPreservesEdgeIDsAndCounters(t *testing.T) {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	e0 := g.MustAddEdgeWeighted(a, b, 0.5)
	e1 := g.MustAddEdgeWeighted(b, a, 0.4)
	g.RemoveEdge(e0)

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Edge(e0) != nil {
		t.Error("removed edge resurrected")
	}
	if e := got.Edge(e1); e == nil || e.From != b || e.To != a {
		t.Fatalf("edge %d not preserved: %+v", e1, got.Edge(e1))
	}
	if got.NextNodeID() != g.NextNodeID() || got.NextEdgeID() != g.NextEdgeID() {
		t.Errorf("counters = %d/%d, want %d/%d",
			got.NextNodeID(), got.NextEdgeID(), g.NextNodeID(), g.NextEdgeID())
	}
}

// TestReadVersion1Compat: a legacy version-1 snapshot (dense node IDs, edge
// IDs reassigned on load) still reads.
func TestReadVersion1Compat(t *testing.T) {
	g, _ := pg.Figure1()
	var body bytes.Buffer
	if err := Write(&body, g); err != nil {
		t.Fatal(err)
	}
	raw := body.Bytes()
	raw[len(magic)] = 1 // rewrite the version byte: payload is gob, v1-decodable
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("v1 read: %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC-XXX\x01garbagegarbage"),
		append([]byte(magic), 99), // future version
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("Read(%q) accepted garbage", c)
		}
	}
}

func TestReadRejectsTruncatedPayload(t *testing.T) {
	g, _ := pg.Figure2()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file accepted")
	}
}
