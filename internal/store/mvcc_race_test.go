package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vadalink/internal/faultinject"
	"vadalink/internal/pg"
)

// TestSnapshotIsolationRace is the MVCC proof under -race: a stream of
// committing writers, concurrent snapshot readers, and concurrent what-if
// overlays all share one Versioned store. Every committed transaction adds
// an atomic unit of two nodes joined by one edge, so:
//
//   - a version with sequence number s must show exactly base+2s nodes and
//     base+s edges — a reader that ever observes anything else saw a
//     half-applied augment;
//   - re-reading a held version after a delay must reproduce the identical
//     counts — versions are frozen.
//
// A faultinject hook at the version-swap site stretches the window between
// master replay and publish and asserts the published version is still the
// transaction's base — readers never see a commit in progress.
func TestSnapshotIsolationRace(t *testing.T) {
	g := seedGraph()
	baseNodes, baseEdges := g.NumNodes(), g.NumEdges()
	vs := NewVersioned(g, VersionedOptions{FlattenDepth: 3})

	var swapChecks atomic.Int64
	faultinject.Set(faultinject.SiteStoreSwap, func() {
		// Inside the swap window the commit has already mutated the master,
		// but the published chain must not have moved yet.
		seq := vs.Current().Seq()
		nodes := vs.Current().View().NumNodes()
		if nodes != baseNodes+2*int(seq) {
			t.Errorf("swap window: published version seq=%d shows %d nodes, want %d", seq, nodes, baseNodes+2*int(seq))
		}
		swapChecks.Add(1)
		time.Sleep(100 * time.Microsecond) // stretch the window
	})
	defer faultinject.Clear(faultinject.SiteStoreSwap)

	const (
		writers      = 3
		commitsTotal = 60
		readers      = 6
		whatIfs      = 4
	)
	var committed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: contend optimistically, retrying on ErrConflict, until the
	// commit budget is spent.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for committed.Load() < commitsTotal {
				txn := vs.Begin()
				o := txn.Overlay()
				a := o.AddNode(pg.LabelCompany, nil)
				b := o.AddNode(pg.LabelCompany, nil)
				if _, err := o.AddShare(a, b, 0.5); err != nil {
					t.Errorf("AddShare: %v", err)
					return
				}
				if _, err := txn.Commit(); err != nil {
					if errors.Is(err, ErrConflict) {
						continue
					}
					t.Errorf("Commit: %v", err)
					return
				}
				committed.Add(1)
			}
		}()
	}

	checkVersion := func(v *Version) {
		seq := int(v.Seq())
		if got, want := v.View().NumNodes(), baseNodes+2*seq; got != want {
			t.Errorf("version seq=%d: %d nodes, want %d (half-applied commit visible)", seq, got, want)
		}
		if got, want := v.View().NumEdges(), baseEdges+seq; got != want {
			t.Errorf("version seq=%d: %d edges, want %d", seq, got, want)
		}
	}

	// Readers: snapshot, verify, hold, verify again.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := vs.Current()
				checkVersion(v)
				// Walk some structure to race against commits.
				for _, id := range v.View().NodesWithLabel(pg.LabelCompany) {
					v.View().OutLabel(id, pg.LabelShareholding)
				}
				checkVersion(v) // the held version must not have moved
			}
		}()
	}

	// What-if workers: stack read-only overlays on the current version and
	// mutate them; published state must be unaffected (the invariant the
	// readers above keep checking).
	for w := 0; w < whatIfs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := vs.Current()
				o := pg.NewOverlay(v.View())
				n1 := o.AddNode(pg.LabelCompany, nil)
				n2 := o.AddNode(pg.LabelCompany, nil)
				if _, err := o.AddShare(n1, n2, 0.9); err != nil {
					t.Errorf("what-if AddShare: %v", err)
					return
				}
				if edges := o.EdgesWithLabel(pg.LabelShareholding); len(edges) > 0 {
					if err := o.SetEdgeWeight(edges[0], 0.42); err != nil {
						t.Errorf("what-if SetEdgeWeight: %v", err)
						return
					}
				}
				checkVersion(v)
			}
		}()
	}

	// Wait for the writers to finish, then stop the read/what-if load.
	done := make(chan struct{})
	go func() {
		for committed.Load() < commitsTotal {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	<-done
	close(stop)
	wg.Wait()

	final := vs.Current()
	if int64(final.Seq()) != committed.Load() {
		t.Fatalf("final seq %d != %d commits", final.Seq(), committed.Load())
	}
	checkVersion(final)
	if swapChecks.Load() == 0 {
		t.Fatal("faultinject swap site never fired")
	}
	// The master converged to the same state as the final published version.
	flat, err := pg.Flatten(final.View())
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumNodes() != g.NumNodes() || flat.NumEdges() != g.NumEdges() {
		t.Fatalf("master (%d nodes, %d edges) diverged from published (%d, %d)",
			g.NumNodes(), g.NumEdges(), flat.NumNodes(), flat.NumEdges())
	}
}
