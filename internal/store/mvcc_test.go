package store

import (
	"errors"
	"testing"

	"vadalink/internal/pg"
)

func seedGraph() *pg.Graph {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	c := g.AddNode(pg.LabelCompany, pg.Properties{"name": "C"})
	g.MustAddEdgeWeighted(a, b, 0.6)
	g.MustAddEdgeWeighted(b, c, 0.8)
	return g
}

func TestVersionedCommitPublishes(t *testing.T) {
	g := seedGraph()
	vs := NewVersioned(g)
	v0 := vs.Current()
	if v0.Seq() != 0 || v0.Depth() != 0 {
		t.Fatalf("initial version seq=%d depth=%d, want 0/0", v0.Seq(), v0.Depth())
	}

	txn := vs.Begin()
	o := txn.Overlay()
	n := o.AddNode(pg.LabelCompany, pg.Properties{"name": "D"})
	if _, err := o.AddShare(0, n, 0.3); err != nil {
		t.Fatal(err)
	}

	// Uncommitted work is invisible: the current version still reads the
	// original state.
	if got := vs.Current().View().NumNodes(); got != 3 {
		t.Fatalf("pre-commit view has %d nodes, want 3", got)
	}

	v1, err := txn.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if vs.Current() != v1 || v1.Seq() != 1 {
		t.Fatalf("Current() != committed version (seq %d)", v1.Seq())
	}
	if got := v1.View().NumNodes(); got != 4 {
		t.Fatalf("post-commit view has %d nodes, want 4", got)
	}
	// The frozen prior version is untouched.
	if got := v0.View().NumNodes(); got != 3 {
		t.Fatalf("prior version mutated: %d nodes", got)
	}
	// The master tracked the commit.
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("master has %d nodes, want 4", got)
	}
	// Double-commit is rejected.
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("second Commit err = %v, want ErrTxnDone", err)
	}
}

func TestVersionedConflict(t *testing.T) {
	vs := NewVersioned(seedGraph())
	t1 := vs.Begin()
	t2 := vs.Begin()
	t1.Overlay().AddNode(pg.LabelCompany, nil)
	t2.Overlay().AddNode(pg.LabelPerson, nil)
	if _, err := t1.Commit(); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	if _, err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting commit err = %v, want ErrConflict", err)
	}
	// The loser never reached the master or the published chain.
	if got := vs.Current().View().NodesWithLabel(pg.LabelPerson); len(got) != 0 {
		t.Fatalf("aborted txn leaked nodes: %v", got)
	}
}

func TestVersionedCommitsWeightEditAndNodeRemoval(t *testing.T) {
	g := seedGraph()
	vs := NewVersioned(g)
	txn := vs.Begin()
	edge := txn.Overlay().EdgesWithLabel(pg.LabelShareholding)[0]
	if err := txn.Overlay().SetEdgeWeight(edge, 0.99); err != nil {
		t.Fatal(err)
	}
	victim := txn.Overlay().Edge(edge).To
	if !txn.Overlay().RemoveNode(victim) {
		t.Fatalf("RemoveNode(%d) = false", victim)
	}
	v, err := txn.Commit()
	if err != nil {
		t.Fatalf("Commit of weight-edit + node-removal overlay: %v", err)
	}
	if v.Seq() != 1 {
		t.Fatalf("published seq = %d, want 1", v.Seq())
	}
	// The replayed master and the published view agree.
	if g.Node(victim) != nil || v.View().Node(victim) != nil {
		t.Fatal("removed node survived commit")
	}
	if g.Edge(edge) != nil || v.View().Edge(edge) != nil {
		t.Fatal("edge incident to removed node survived commit")
	}
	if g.WeightEdits() != 1 {
		t.Fatalf("master WeightEdits = %d, want 1", g.WeightEdits())
	}
}

func TestVersionedFlattens(t *testing.T) {
	g := seedGraph()
	vs := NewVersioned(g, VersionedOptions{FlattenDepth: 2})
	for i := 0; i < 5; i++ {
		txn := vs.Begin()
		txn.Overlay().AddNode(pg.LabelCompany, nil)
		v, err := txn.Commit()
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if v.Depth() >= 2 {
			t.Fatalf("commit %d: depth %d not flattened", i, v.Depth())
		}
		if _, isGraph := v.View().(*pg.Graph); (v.Depth() == 0) != isGraph {
			t.Fatalf("commit %d: depth %d but view flat=%v", i, v.Depth(), isGraph)
		}
		if got, want := v.View().NumNodes(), 3+i+1; got != want {
			t.Fatalf("commit %d: %d nodes, want %d", i, got, want)
		}
	}
}

// TestVersionedHookFiresOnCommitOnly pins the durability contract: the
// master's mutation hook — the seam the WAL hangs on — observes exactly the
// committed journal, exactly once, and nothing during overlay mutation or
// on read-only what-if overlays.
func TestVersionedHookFiresOnCommitOnly(t *testing.T) {
	g := seedGraph()
	var fired []pg.MutationKind
	g.SetMutationHook(func(m pg.Mutation) { fired = append(fired, m.Kind) })
	vs := NewVersioned(g)

	// A what-if burst over the current version: no hook activity.
	for i := 0; i < 5; i++ {
		o := pg.NewOverlay(vs.Current().View())
		o.AddNode(pg.LabelCompany, nil)
		o.RemoveNode(0)
	}
	if len(fired) != 0 {
		t.Fatalf("hook fired %d times during what-if burst", len(fired))
	}

	txn := vs.Begin()
	txn.Overlay().AddNode(pg.LabelCompany, nil)
	if len(fired) != 0 {
		t.Fatalf("hook fired %d times before commit", len(fired))
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != pg.MutAddNode {
		t.Fatalf("hook observed %v, want exactly [MutAddNode]", fired)
	}
}

func TestVersionedCommitHooksCompose(t *testing.T) {
	vs := NewVersioned(seedGraph())

	commit := func() *Version {
		txn := vs.Begin()
		txn.Overlay().AddNode(pg.LabelCompany, nil)
		next, err := txn.Commit()
		if err != nil {
			t.Fatal(err)
		}
		return next
	}

	// AddCommitHook on an empty slot behaves exactly like SetCommitHook.
	var order []string
	vs.AddCommitHook(func(next *Version, journal []pg.Mutation) {
		if len(journal) != 1 || journal[0].Kind != pg.MutAddNode {
			t.Errorf("hook a observed journal %v, want one MutAddNode", journal)
		}
		order = append(order, "a")
	})
	next := commit()
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("after first commit hooks ran %v, want [a]", order)
	}
	if next.Seq() != vs.Current().Seq() {
		t.Fatalf("hook saw seq %d, current is %d", next.Seq(), vs.Current().Seq())
	}

	// A second AddCommitHook chains after the first, in installation order.
	vs.AddCommitHook(func(next *Version, journal []pg.Mutation) {
		order = append(order, "b")
	})
	order = nil
	commit()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("chained hooks ran %v, want [a b]", order)
	}

	// SetCommitHook replaces the whole chain; nil removes it.
	vs.SetCommitHook(func(next *Version, journal []pg.Mutation) {
		order = append(order, "c")
	})
	order = nil
	commit()
	if len(order) != 1 || order[0] != "c" {
		t.Fatalf("after SetCommitHook hooks ran %v, want [c]", order)
	}
	vs.SetCommitHook(nil)
	order = nil
	commit()
	if len(order) != 0 {
		t.Fatalf("hooks ran %v after removal, want none", order)
	}
}

func TestVersionedTxnBaseAndAbort(t *testing.T) {
	vs := NewVersioned(seedGraph())
	base := vs.Current()

	txn := vs.Begin()
	if txn.Base() != base {
		t.Fatalf("Base() = seq %d, want the version current at Begin (seq %d)", txn.Base().Seq(), base.Seq())
	}
	txn.Overlay().AddNode(pg.LabelCompany, nil)
	txn.Abort()
	if got := vs.Current(); got != base {
		t.Fatalf("Abort published seq %d, want store unchanged at seq %d", got.Seq(), base.Seq())
	}
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Commit after Abort = %v, want ErrTxnDone", err)
	}
}
