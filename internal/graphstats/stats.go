// Package graphstats computes the structural statistics the paper reports
// for the Italian company database in Section 2: strongly and weakly
// connected components, degree statistics, clustering coefficient, self
// loops and the power-law exponent of the degree distribution.
package graphstats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vadalink/internal/pg"
)

// Stats is the structural profile of a graph (the §2 numbers).
type Stats struct {
	Nodes int
	Edges int

	SCCCount   int
	LargestSCC int
	WCCCount   int
	LargestWCC int

	AvgInDegree  float64
	AvgOutDegree float64
	MaxInDegree  int
	MaxOutDegree int

	SelfLoops int

	// AvgClustering is the average local clustering coefficient over nodes
	// with degree ≥ 2 (undirected view).
	AvgClustering float64

	// PowerLawAlpha is the MLE exponent of the degree distribution
	// (Clauset–Shalizi–Newman estimator with dmin = 1), 0 when degenerate.
	PowerLawAlpha float64
}

// Compute derives the full profile of a graph.
func Compute(g pg.View) Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	ids := g.Nodes()
	index := make(map[pg.NodeID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	n := len(ids)
	out := make([][]int32, n)
	in := make([][]int32, n)
	undirected := make([]map[int32]bool, n)
	totalIn, totalOut := 0, 0
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		u, v := int32(index[e.From]), int32(index[e.To])
		if u == v {
			s.SelfLoops++
		}
		out[u] = append(out[u], v)
		in[v] = append(in[v], u)
		totalOut++
		totalIn++
		if u != v {
			if undirected[u] == nil {
				undirected[u] = map[int32]bool{}
			}
			if undirected[v] == nil {
				undirected[v] = map[int32]bool{}
			}
			undirected[u][v] = true
			undirected[v][u] = true
		}
	}
	if n > 0 {
		s.AvgInDegree = float64(totalIn) / float64(n)
		s.AvgOutDegree = float64(totalOut) / float64(n)
	}
	for i := 0; i < n; i++ {
		if d := len(in[i]); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
		if d := len(out[i]); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
	}

	s.SCCCount, s.LargestSCC = tarjanSCC(out)
	s.WCCCount, s.LargestWCC = unionFindWCC(n, out)
	s.AvgClustering = avgClustering(undirected)
	s.PowerLawAlpha = powerLawAlpha(undirected)
	return s
}

// tarjanSCC runs an iterative Tarjan strongly-connected-components algorithm
// and returns (component count, size of the largest component).
func tarjanSCC(adj [][]int32) (count, largest int) {
	n := len(adj)
	const unvisited = -1
	indexOf := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = unvisited
	}
	var stack []int32
	var next int32

	type frame struct {
		v  int32
		ei int
	}
	var callStack []frame

	for root := 0; root < n; root++ {
		if indexOf[root] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{v: int32(root)})
		indexOf[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if indexOf[w] == unvisited {
					indexOf[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] {
					if indexOf[w] < lowlink[f.v] {
						lowlink[f.v] = indexOf[w]
					}
				}
				continue
			}
			// Post-order: pop and propagate lowlink.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == indexOf[v] {
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					size++
					if w == v {
						break
					}
				}
				count++
				if size > largest {
					largest = size
				}
			}
		}
	}
	return count, largest
}

// unionFindWCC counts weakly connected components via union-find.
func unionFindWCC(n int, adj [][]int32) (count, largest int) {
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	for u, vs := range adj {
		for _, v := range vs {
			union(int32(u), v)
		}
	}
	for i := 0; i < n; i++ {
		if find(int32(i)) == int32(i) {
			count++
			if int(size[i]) > largest {
				largest = int(size[i])
			}
		}
	}
	return count, largest
}

// avgClustering computes the average local clustering coefficient over nodes
// of undirected degree ≥ 2; nodes of lower degree contribute 0, matching the
// convention used for the §2 figure (≈ 0.0084 on a 4M-node graph).
func avgClustering(undirected []map[int32]bool) float64 {
	n := len(undirected)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, neigh := range undirected {
		d := len(neigh)
		if d < 2 {
			continue
		}
		links := 0
		for a := range neigh {
			for b := range neigh {
				if a < b && undirected[a][b] {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(d*(d-1))
	}
	return sum / float64(n)
}

// powerLawAlpha is the discrete MLE α ≈ 1 + n·(Σ ln(dᵢ/(dmin−0.5)))⁻¹ with
// dmin = 1, over undirected degrees ≥ 1.
func powerLawAlpha(undirected []map[int32]bool) float64 {
	var sum float64
	var count int
	for _, neigh := range undirected {
		d := len(neigh)
		if d < 1 {
			continue
		}
		sum += math.Log(float64(d) / 0.5)
		count++
	}
	if count == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(count)/sum
}

// DegreeHistogram returns the undirected degree → node-count histogram,
// sorted by degree; used to eyeball the power-law shape.
func DegreeHistogram(g pg.View) [][2]int {
	deg := map[pg.NodeID]map[pg.NodeID]bool{}
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		if e.From == e.To {
			continue
		}
		if deg[e.From] == nil {
			deg[e.From] = map[pg.NodeID]bool{}
		}
		if deg[e.To] == nil {
			deg[e.To] = map[pg.NodeID]bool{}
		}
		deg[e.From][e.To] = true
		deg[e.To][e.From] = true
	}
	hist := map[int]int{}
	for _, id := range g.Nodes() {
		hist[len(deg[id])]++
	}
	var ds []int
	for d := range hist {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	out := make([][2]int, 0, len(ds))
	for _, d := range ds {
		out = append(out, [2]int{d, hist[d]})
	}
	return out
}

// String renders the profile in the style of the §2 description.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes: %d, edges: %d\n", s.Nodes, s.Edges)
	fmt.Fprintf(&sb, "SCCs: %d (largest %d), WCCs: %d (largest %d)\n",
		s.SCCCount, s.LargestSCC, s.WCCCount, s.LargestWCC)
	fmt.Fprintf(&sb, "avg in/out degree: %.3f/%.3f, max in/out degree: %d/%d\n",
		s.AvgInDegree, s.AvgOutDegree, s.MaxInDegree, s.MaxOutDegree)
	fmt.Fprintf(&sb, "self-loops: %d, avg clustering coefficient: %.5f, power-law α: %.2f\n",
		s.SelfLoops, s.AvgClustering, s.PowerLawAlpha)
	return sb.String()
}
