package graphstats

import (
	"math"
	"testing"

	"vadalink/internal/pg"
)

func chain(n int) *pg.Graph {
	g := pg.New()
	var ids []pg.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, g.AddNode(pg.LabelCompany, nil))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(pg.LabelShareholding, ids[i], ids[i+1], pg.Properties{pg.WeightProp: 0.5})
	}
	return g
}

func TestChainStats(t *testing.T) {
	g := chain(5)
	s := Compute(g)
	if s.Nodes != 5 || s.Edges != 4 {
		t.Fatalf("nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.SCCCount != 5 || s.LargestSCC != 1 {
		t.Errorf("SCC = %d/%d, want 5 components of size 1", s.SCCCount, s.LargestSCC)
	}
	if s.WCCCount != 1 || s.LargestWCC != 5 {
		t.Errorf("WCC = %d/%d, want one component of size 5", s.WCCCount, s.LargestWCC)
	}
	if s.MaxInDegree != 1 || s.MaxOutDegree != 1 {
		t.Errorf("max degrees = %d/%d, want 1/1", s.MaxInDegree, s.MaxOutDegree)
	}
	if s.AvgClustering != 0 {
		t.Errorf("chain clustering = %v, want 0", s.AvgClustering)
	}
}

func TestCycleSCC(t *testing.T) {
	g := pg.New()
	var ids []pg.NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, g.AddNode(pg.LabelCompany, nil))
	}
	for i := 0; i < 4; i++ {
		g.MustAddEdge(pg.LabelShareholding, ids[i], ids[(i+1)%4], pg.Properties{pg.WeightProp: 0.2})
	}
	// Plus a dangling node.
	g.AddNode(pg.LabelCompany, nil)
	s := Compute(g)
	if s.SCCCount != 2 {
		t.Errorf("SCC count = %d, want 2 (4-cycle + singleton)", s.SCCCount)
	}
	if s.LargestSCC != 4 {
		t.Errorf("largest SCC = %d, want 4", s.LargestSCC)
	}
	if s.WCCCount != 2 {
		t.Errorf("WCC count = %d, want 2", s.WCCCount)
	}
}

func TestTriangleClustering(t *testing.T) {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, nil)
	b := g.AddNode(pg.LabelCompany, nil)
	c := g.AddNode(pg.LabelCompany, nil)
	g.MustAddEdge(pg.LabelShareholding, a, b, pg.Properties{pg.WeightProp: 0.2})
	g.MustAddEdge(pg.LabelShareholding, b, c, pg.Properties{pg.WeightProp: 0.2})
	g.MustAddEdge(pg.LabelShareholding, a, c, pg.Properties{pg.WeightProp: 0.2})
	s := Compute(g)
	if math.Abs(s.AvgClustering-1) > 1e-12 {
		t.Errorf("triangle clustering = %v, want 1", s.AvgClustering)
	}
}

func TestSelfLoopsCounted(t *testing.T) {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, nil)
	g.MustAddEdge(pg.LabelShareholding, a, a, pg.Properties{pg.WeightProp: 0.1})
	s := Compute(g)
	if s.SelfLoops != 1 {
		t.Errorf("self loops = %d, want 1", s.SelfLoops)
	}
	// A self-loop alone forms one SCC of size 1.
	if s.SCCCount != 1 || s.LargestSCC != 1 {
		t.Errorf("SCC = %d/%d", s.SCCCount, s.LargestSCC)
	}
}

func TestEmptyGraph(t *testing.T) {
	s := Compute(pg.New())
	if s.Nodes != 0 || s.Edges != 0 || s.SCCCount != 0 || s.WCCCount != 0 {
		t.Errorf("empty graph stats = %+v", s)
	}
}

func TestStarDegrees(t *testing.T) {
	g := pg.New()
	hub := g.AddNode(pg.LabelCompany, nil)
	for i := 0; i < 10; i++ {
		leaf := g.AddNode(pg.LabelCompany, nil)
		g.MustAddEdge(pg.LabelShareholding, leaf, hub, pg.Properties{pg.WeightProp: 0.05})
	}
	s := Compute(g)
	if s.MaxInDegree != 10 {
		t.Errorf("hub in-degree = %d, want 10", s.MaxInDegree)
	}
	if s.MaxOutDegree != 1 {
		t.Errorf("max out-degree = %d, want 1", s.MaxOutDegree)
	}
	if s.WCCCount != 1 {
		t.Errorf("WCC = %d, want 1", s.WCCCount)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := chain(4) // degrees (undirected): 1,2,2,1
	h := DegreeHistogram(g)
	want := map[int]int{1: 2, 2: 2}
	for _, row := range h {
		if want[row[0]] != row[1] {
			t.Errorf("degree %d count = %d, want %d", row[0], row[1], want[row[0]])
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := Compute(chain(3))
	out := s.String()
	if out == "" {
		t.Error("empty String()")
	}
}

func TestLargeRandomDoesNotOverflowStack(t *testing.T) {
	// Iterative Tarjan must handle long chains without recursion limits.
	g := chain(200000)
	s := Compute(g)
	if s.SCCCount != 200000 {
		t.Errorf("SCC count = %d", s.SCCCount)
	}
}

func TestConcentration(t *testing.T) {
	g := pg.New()
	p1 := g.AddNode(pg.LabelPerson, nil)
	p2 := g.AddNode(pg.LabelPerson, nil)
	sole := g.AddNode(pg.LabelCompany, nil)     // 100% one owner
	split := g.AddNode(pg.LabelCompany, nil)    // 50/50
	majority := g.AddNode(pg.LabelCompany, nil) // 60/40
	orphan := g.AddNode(pg.LabelCompany, nil)   // no owners
	_ = orphan
	g.MustAddEdgeWeighted(p1, sole, 1.0)
	g.MustAddEdgeWeighted(p1, split, 0.5)
	g.MustAddEdgeWeighted(p2, split, 0.5)
	g.MustAddEdgeWeighted(p1, majority, 0.6)
	g.MustAddEdgeWeighted(p2, majority, 0.4)
	// Buy-back must be ignored.
	g.MustAddEdgeWeighted(sole, sole, 0.1)

	c := ComputeConcentration(g)
	if c.CompaniesWithOwners != 3 {
		t.Errorf("companies with owners = %d, want 3", c.CompaniesWithOwners)
	}
	if c.SoleOwner != 1 {
		t.Errorf("sole-owner companies = %d, want 1", c.SoleOwner)
	}
	if c.MajorityHeld != 2 { // sole (100%) and majority (60%)
		t.Errorf("majority-held = %d, want 2", c.MajorityHeld)
	}
	// HHIs: 1.0, 0.5, 0.52 → mean ≈ 0.673, median 0.52.
	if math.Abs(c.MeanHHI-(1.0+0.5+0.52)/3) > 1e-9 {
		t.Errorf("mean HHI = %v", c.MeanHHI)
	}
	if math.Abs(c.MedianHHI-0.52) > 1e-9 {
		t.Errorf("median HHI = %v", c.MedianHHI)
	}
	if math.Abs(c.MeanTopShare-(1.0+0.5+0.6)/3) > 1e-9 {
		t.Errorf("mean top share = %v", c.MeanTopShare)
	}
}

func TestConcentrationEmpty(t *testing.T) {
	c := ComputeConcentration(pg.New())
	if c.CompaniesWithOwners != 0 || c.MeanHHI != 0 {
		t.Errorf("empty concentration = %+v", c)
	}
}
