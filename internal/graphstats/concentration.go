package graphstats

import (
	"math"
	"sort"

	"vadalink/internal/pg"
)

// Concentration summarizes how concentrated company ownership is — the
// lens supervision economists apply to ownership graphs (the "real
// dispersion of control" study the paper's introduction cites).
type Concentration struct {
	// Companies with at least one registered shareholder.
	CompaniesWithOwners int
	// MeanHHI is the mean Herfindahl–Hirschman index of the per-company
	// direct-ownership distribution: Σ shareᵢ² over registered shares,
	// 1 = sole owner, →0 = fully dispersed.
	MeanHHI float64
	// MedianHHI is the median of the same distribution.
	MedianHHI float64
	// SoleOwner counts companies with a single shareholder owning 100%.
	SoleOwner int
	// MajorityHeld counts companies where some single direct shareholder
	// holds strictly more than 50%.
	MajorityHeld int
	// MeanTopShare is the mean of the largest direct share per company.
	MeanTopShare float64
}

// ComputeConcentration derives the ownership-concentration profile from the
// direct shareholding structure.
func ComputeConcentration(g pg.View) Concentration {
	var c Concentration
	var hhis []float64
	var topSum float64
	for _, id := range g.NodesWithLabel(pg.LabelCompany) {
		var shares []float64
		for _, e := range g.InLabel(id, pg.LabelShareholding) {
			if e.From == e.To {
				continue // buy-backs are not external ownership
			}
			if w, ok := e.Weight(); ok && w > 0 {
				shares = append(shares, w)
			}
		}
		if len(shares) == 0 {
			continue
		}
		c.CompaniesWithOwners++
		var hhi, top float64
		for _, s := range shares {
			hhi += s * s
			if s > top {
				top = s
			}
		}
		hhis = append(hhis, hhi)
		topSum += top
		if len(shares) == 1 && math.Abs(shares[0]-1) < 1e-9 {
			c.SoleOwner++
		}
		if top > 0.5 {
			c.MajorityHeld++
		}
	}
	if len(hhis) == 0 {
		return c
	}
	var sum float64
	for _, h := range hhis {
		sum += h
	}
	c.MeanHHI = sum / float64(len(hhis))
	sort.Float64s(hhis)
	mid := len(hhis) / 2
	if len(hhis)%2 == 1 {
		c.MedianHHI = hhis[mid]
	} else {
		c.MedianHHI = (hhis[mid-1] + hhis[mid]) / 2
	}
	c.MeanTopShare = topSum / float64(c.CompaniesWithOwners)
	return c
}
