package control_test

// Cross-validation of the imperative company-control solver against the
// declarative Vadalog control program on randomized graphgen graphs — both
// implement Definition 2.3, so their AllPairs sets must coincide on every
// input. The declarative side runs through the indexed parallel chase, so
// this doubles as an end-to-end consumer check of the engine work: a bug in
// index maintenance or delta merging that survived the datalog-level
// differential tests would surface here as a control-pair divergence.
//
// The test lives in package control_test (not control) because it imports
// the vadalog reasoner, which would cycle against package control.

import (
	"fmt"
	"testing"

	"vadalink/internal/control"
	"vadalink/internal/datalog"
	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
	"vadalink/internal/vadalog"
)

func TestAllPairsMatchesDeclarativeOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 15, Companies: 30, Seed: seed})
		g := it.Graph

		want := map[string]bool{}
		for _, p := range control.AllPairs(g) {
			want[fmt.Sprintf("%d->%d", p.From, p.To)] = true
		}

		for _, parallel := range []int{1, 4} {
			r := vadalog.NewReasoner(g, vadalog.TaskControl)
			r.EngineOptions = []datalog.Option{datalog.WithParallel(parallel)}
			if err := r.Run(); err != nil {
				t.Fatalf("seed %d parallel %d: %v", seed, parallel, err)
			}
			got := map[string]bool{}
			for _, p := range r.ControlPairs() {
				got[fmt.Sprintf("%d->%d", p[0], p[1])] = true
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d parallel %d: %d declarative pairs, %d imperative",
					seed, parallel, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("seed %d parallel %d: imperative pair %s missing from declarative result", seed, parallel, k)
				}
			}
		}
	}
}

// TestUltimateControllersConsistent checks the inverted query against the
// forward one on a random graph: UltimateControllers(g, y) is exactly the
// set of person controllers appearing in AllPairs with controlled node y.
func TestUltimateControllersConsistent(t *testing.T) {
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 15, Companies: 30, Seed: 3})
	g := it.Graph
	persons := map[pg.NodeID]bool{}
	for _, p := range g.NodesWithLabel(pg.LabelPerson) {
		persons[p] = true
	}
	forward := map[pg.NodeID]map[pg.NodeID]bool{}
	for _, p := range control.AllPairs(g) {
		if !persons[p.From] {
			continue
		}
		if forward[p.To] == nil {
			forward[p.To] = map[pg.NodeID]bool{}
		}
		forward[p.To][p.From] = true
	}
	for y, controllers := range forward {
		got := control.UltimateControllers(g, y)
		gotSet := map[pg.NodeID]bool{}
		for _, x := range got {
			gotSet[x] = true
		}
		for x := range controllers {
			if !gotSet[x] {
				t.Fatalf("person controller %d of %d missing from UltimateControllers", x, y)
			}
		}
		for x := range gotSet {
			if !controllers[x] {
				t.Fatalf("UltimateControllers(%d) lists %d, absent from AllPairs", y, x)
			}
		}
	}
}
