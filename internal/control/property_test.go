package control

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vadalink/internal/pg"
)

func TestBareOwnershipCarriesNoVotes(t *testing.T) {
	b := pg.NewBuilder()
	b.Person("P")
	b.Company("C")
	g := b.Graph()
	g.MustAddEdge(pg.LabelShareholding, b.ID("P"), b.ID("C"), pg.Properties{
		pg.WeightProp: 0.8, RightProp: "bare ownership",
	})
	if got := Controls(g, b.ID("P")); len(got) != 0 {
		t.Errorf("bare ownership granted control: %v", got)
	}
	// Full ownership does.
	g.MustAddEdge(pg.LabelShareholding, b.ID("P"), b.ID("C"), pg.Properties{
		pg.WeightProp: 0.6, RightProp: "ownership",
	})
	if got := Controls(g, b.ID("P")); len(got) != 1 {
		t.Errorf("voting shares should control: %v", got)
	}
}

// randomOwnership builds a random ownership graph over n companies and p
// persons, with incoming shares per company normalized to at most 1.
func randomOwnership(r *rand.Rand, companies, persons, edges int) *pg.Graph {
	g := pg.New()
	var all []pg.NodeID
	var comps []pg.NodeID
	for i := 0; i < companies; i++ {
		id := g.AddNode(pg.LabelCompany, nil)
		all = append(all, id)
		comps = append(comps, id)
	}
	for i := 0; i < persons; i++ {
		all = append(all, g.AddNode(pg.LabelPerson, nil))
	}
	incoming := map[pg.NodeID]float64{}
	for i := 0; i < edges; i++ {
		from := all[r.Intn(len(all))]
		to := comps[r.Intn(len(comps))]
		if from == to {
			continue
		}
		room := 1 - incoming[to]
		if room <= 0.01 {
			continue
		}
		w := 0.01 + r.Float64()*(room-0.01)
		incoming[to] += w
		g.MustAddEdge(pg.LabelShareholding, from, to, pg.Properties{pg.WeightProp: w})
	}
	return g
}

// Property: control is transitive — if x controls y and y controls z, then
// x controls z (x's controlled set includes y's whole controlled set, since
// everything y can out-vote, the controlled coalition of x can too).
func TestControlTransitivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomOwnership(r, 15, 5, 40)
		ctrl := map[pg.NodeID]map[pg.NodeID]bool{}
		for _, x := range g.Nodes() {
			set := map[pg.NodeID]bool{}
			for _, y := range Controls(g, x) {
				set[y] = true
			}
			ctrl[x] = set
		}
		for x, xs := range ctrl {
			for y := range xs {
				for z := range ctrl[y] {
					if z != x && !xs[z] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding a shareholding edge never shrinks anyone's controlled
// set (control is monotone in the ownership relation).
func TestControlMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomOwnership(r, 12, 4, 25)
		before := map[pg.NodeID]int{}
		for _, x := range g.Nodes() {
			before[x] = len(Controls(g, x))
		}
		// Add one more valid edge.
		comps := g.NodesWithLabel(pg.LabelCompany)
		from := g.Nodes()[r.Intn(g.NumNodes())]
		to := comps[r.Intn(len(comps))]
		if from != to {
			var in float64
			for _, e := range g.InLabel(to, pg.LabelShareholding) {
				w, _ := e.Weight()
				in += w
			}
			if in < 0.95 {
				g.MustAddEdge(pg.LabelShareholding, from, to,
					pg.Properties{pg.WeightProp: (1 - in) * r.Float64()})
			}
		}
		for _, x := range g.Nodes() {
			if len(Controls(g, x)) < before[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a direct majority always controls (condition (i) of Def 2.3).
func TestDirectMajorityAlwaysControlsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomOwnership(r, 10, 3, 20)
		p := g.AddNode(pg.LabelPerson, nil)
		c := g.AddNode(pg.LabelCompany, nil)
		g.MustAddEdge(pg.LabelShareholding, p, c, pg.Properties{pg.WeightProp: 0.51})
		for _, y := range Controls(g, p) {
			if y == c {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
