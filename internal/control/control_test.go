package control

import (
	"testing"

	"vadalink/internal/pg"
)

func names(b *pg.Builder, ids []pg.NodeID) map[string]bool {
	g := b.Graph()
	out := map[string]bool{}
	for _, id := range ids {
		out[g.Node(id).Props["name"].(string)] = true
	}
	return out
}

// TestFigure1Control checks the control relationships narrated in the
// introduction of the paper: P1 controls C, D, E (jointly via D and its own
// 20%) and F (via E and D); P2 controls G, H and I; nobody controls L alone.
func TestFigure1Control(t *testing.T) {
	g, b := pg.Figure1()

	p1 := names(b, Controls(g, b.ID("P1")))
	for _, want := range []string{"C", "D", "E", "F"} {
		if !p1[want] {
			t.Errorf("P1 should control %s; got %v", want, p1)
		}
	}
	if p1["L"] {
		t.Error("P1 alone must not control L")
	}
	if p1["G"] || p1["H"] || p1["I"] {
		t.Errorf("P1 must not control P2's subtree; got %v", p1)
	}

	p2 := names(b, Controls(g, b.ID("P2")))
	for _, want := range []string{"G", "H", "I"} {
		if !p2[want] {
			t.Errorf("P2 should control %s; got %v", want, p2)
		}
	}
	if p2["L"] {
		t.Error("P2 alone must not control L")
	}
}

// TestFigure1FamilyControl checks the family-business conclusion of the
// introduction: P1 and P2 together control L (F owns 20%, I owns 40%, and
// the pair controls both F and I).
func TestFigure1FamilyControl(t *testing.T) {
	g, b := pg.Figure1()
	joint := names(b, GroupControls(g, []pg.NodeID{b.ID("P1"), b.ID("P2")}))
	if !joint["L"] {
		t.Errorf("P1+P2 should jointly control L; got %v", joint)
	}
	// Joint control subsumes individual control.
	for _, want := range []string{"C", "D", "E", "F", "G", "H", "I"} {
		if !joint[want] {
			t.Errorf("P1+P2 should jointly control %s; got %v", want, joint)
		}
	}
}

// TestFigure2Control checks Example 2.4: P1 controls C4 directly; P2
// controls C7 via C5 and C6.
func TestFigure2Control(t *testing.T) {
	g, b := pg.Figure2()

	p1 := names(b, Controls(g, b.ID("P1")))
	if !p1["C4"] {
		t.Errorf("P1 should control C4; got %v", p1)
	}

	p2 := names(b, Controls(g, b.ID("P2")))
	for _, want := range []string{"C5", "C6", "C7"} {
		if !p2[want] {
			t.Errorf("P2 should control %s; got %v", want, p2)
		}
	}

	p3 := names(b, Controls(g, b.ID("P3")))
	if len(p3) != 0 {
		t.Errorf("P3 controls nothing (40%% and 50%% are not majorities); got %v", p3)
	}
}

func TestExactlyHalfIsNotControl(t *testing.T) {
	b := pg.NewBuilder()
	b.Person("P")
	b.Company("C")
	b.Own("P", "C", 0.5)
	g := b.Graph()
	if got := Controls(g, b.ID("P")); len(got) != 0 {
		t.Errorf("50%% exactly must not grant control; got %v", got)
	}
}

func TestJointOwnershipThreshold(t *testing.T) {
	// x controls a (60%); x owns 30% of y, a owns 21% of y → 51% jointly.
	b := pg.NewBuilder()
	b.Person("X")
	b.Company("A")
	b.Company("Y")
	b.Own("X", "A", 0.6).Own("X", "Y", 0.3).Own("A", "Y", 0.21)
	g := b.Graph()
	got := names(b, Controls(g, b.ID("X")))
	if !got["Y"] {
		t.Errorf("X should control Y via joint 51%%; got %v", got)
	}
}

func TestControlChainDeep(t *testing.T) {
	// A chain of 60% ownerships: control propagates the whole way down.
	b := pg.NewBuilder()
	b.Person("P")
	prev := "P"
	for i := 0; i < 20; i++ {
		c := "Co" + string(rune('A'+i))
		b.Company(c)
		b.Own(prev, c, 0.6)
		prev = c
	}
	g := b.Graph()
	if got := Controls(g, b.ID("P")); len(got) != 20 {
		t.Errorf("chain control length = %d, want 20", len(got))
	}
}

func TestSelfLoopDoesNotBlockControl(t *testing.T) {
	// C owns 30% of itself (buy-back); P owns 60% of C: P controls C.
	b := pg.NewBuilder()
	b.Person("P")
	b.Company("C")
	b.Own("P", "C", 0.6).Own("C", "C", 0.3)
	g := b.Graph()
	got := names(b, Controls(g, b.ID("P")))
	if !got["C"] {
		t.Errorf("P should control C despite buy-back self-loop; got %v", got)
	}
}

func TestAllPairsMatchesPerSource(t *testing.T) {
	g, b := pg.Figure2()
	pairs := AllPairs(g)
	byFrom := map[pg.NodeID]map[pg.NodeID]bool{}
	for _, p := range pairs {
		if byFrom[p.From] == nil {
			byFrom[p.From] = map[pg.NodeID]bool{}
		}
		byFrom[p.From][p.To] = true
	}
	for _, x := range g.Nodes() {
		want := Controls(g, x)
		if len(want) != len(byFrom[x]) {
			t.Errorf("AllPairs disagrees with Controls for %v: %v vs %v",
				g.Node(x).Props["name"], byFrom[x], want)
		}
		for _, y := range want {
			if !byFrom[x][y] {
				t.Errorf("AllPairs missing %v→%v", x, y)
			}
		}
	}
	_ = b
}

func TestAnnotateAddsControlEdges(t *testing.T) {
	g, b := pg.Figure2()
	added := Annotate(g)
	if added == 0 {
		t.Fatal("Annotate added no edges")
	}
	if !g.HasEdge(pg.LabelControl, b.ID("P2"), b.ID("C7")) {
		t.Error("missing P2→C7 control edge")
	}
	if again := Annotate(g); again != 0 {
		t.Errorf("second Annotate added %d edges, want 0", again)
	}
}

func TestUltimateControllers(t *testing.T) {
	g, b := pg.Figure1()
	// L has no single ultimate controller (P1 and P2 only jointly).
	if got := UltimateControllers(g, b.ID("L")); len(got) != 0 {
		t.Errorf("L ultimate controllers = %v, want none", got)
	}
	// F is ultimately controlled by P1 (via D and E).
	got := UltimateControllers(g, b.ID("F"))
	if len(got) != 1 || got[0] != b.ID("P1") {
		t.Errorf("F ultimate controllers = %v, want [P1]", got)
	}
	// I is ultimately controlled by P2.
	got = UltimateControllers(g, b.ID("I"))
	if len(got) != 1 || got[0] != b.ID("P2") {
		t.Errorf("I ultimate controllers = %v, want [P2]", got)
	}
}

func TestOrphans(t *testing.T) {
	g, b := pg.Figure1()
	orphans := names(b, Orphans(g))
	if !orphans["L"] {
		t.Errorf("L should be an orphan (no single controller); got %v", orphans)
	}
	for _, c := range []string{"C", "D", "E", "F", "G", "H", "I"} {
		if orphans[c] {
			t.Errorf("%s has an ultimate controller; must not be an orphan", c)
		}
	}
}
