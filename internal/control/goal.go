package control

import (
	"context"
	"sort"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/vadalog"
)

// Goal-mode entry points: the same control relation as the fixpoint solvers
// above, answered by demand-driven (magic-sets) evaluation of the
// declarative control program. The forward solver (Controls) is already
// goal-directed — it expands one holder set — but the reverse question
// ("who controls y?") had no better plan than running the fixpoint from
// every candidate; the demand transformation propagates the binding through
// the ownership recursion instead, touching only y's reverse cone.
//
// Note the declarative program reads the relational image (relstore), which
// aggregates every shareholding edge by weight; the imperative solver
// additionally discounts non-voting rights (bare ownership, pledge). The
// two agree on graphs without such rights — the cross-check harness keeps
// that honest.

var controlVarY = datalog.Variable("Y")
var controlVarX = datalog.Variable("X")

// GoalControls answers control(x, Y): the companies x controls, sorted. The
// mode reports whether demand transformation served the goal.
func GoalControls(ctx context.Context, g pg.View, x pg.NodeID, opts ...datalog.Option) ([]pg.NodeID, string, error) {
	goal := datalog.Atom{Pred: "control", Terms: []datalog.Term{datalog.Int(int64(x)), controlVarY}}
	res, err := vadalog.EvalGoal(ctx, g, vadalog.ControlProgram, goal, opts...)
	if err != nil {
		return nil, "", err
	}
	return bindingIDs(res.Answers, controlVarY), res.Mode, res.RunErr
}

// GoalControllers answers control(X, y): every node (person or company)
// controlling y, via reverse demand, sorted.
func GoalControllers(ctx context.Context, g pg.View, y pg.NodeID, opts ...datalog.Option) ([]pg.NodeID, string, error) {
	goal := datalog.Atom{Pred: "control", Terms: []datalog.Term{controlVarX, datalog.Int(int64(y))}}
	res, err := vadalog.EvalGoal(ctx, g, vadalog.ControlProgram, goal, opts...)
	if err != nil {
		return nil, "", err
	}
	return bindingIDs(res.Answers, controlVarX), res.Mode, res.RunErr
}

// GoalControlsPair answers the fully bound goal control(x, y) as a boolean.
func GoalControlsPair(ctx context.Context, g pg.View, x, y pg.NodeID, opts ...datalog.Option) (bool, string, error) {
	goal := datalog.Atom{Pred: "control", Terms: []datalog.Term{datalog.Int(int64(x)), datalog.Int(int64(y))}}
	res, err := vadalog.EvalGoal(ctx, g, vadalog.ControlProgram, goal, opts...)
	if err != nil {
		return false, "", err
	}
	return len(res.Answers) > 0, res.Mode, res.RunErr
}

// GoalUltimateControllers answers the UBO question demand-driven: the
// persons controlling y, directly or through chains — GoalControllers
// restricted to person nodes.
func GoalUltimateControllers(ctx context.Context, g pg.View, y pg.NodeID, opts ...datalog.Option) ([]pg.NodeID, string, error) {
	// A budget-truncation error still carries partial answers, mirroring the
	// Ctx solvers above; filter whatever came back and pass the error along.
	all, mode, err := GoalControllers(ctx, g, y, opts...)
	out := all[:0]
	for _, id := range all {
		if n := g.Node(id); n != nil && n.Label == pg.LabelPerson {
			out = append(out, id)
		}
	}
	return out, mode, err
}

// bindingIDs projects one variable of each binding to a sorted node-ID set.
func bindingIDs(bs []datalog.Binding, v datalog.Variable) []pg.NodeID {
	seen := map[pg.NodeID]bool{}
	var out []pg.NodeID
	for _, b := range bs {
		id, ok := b[v].(int64)
		if !ok {
			continue
		}
		if n := pg.NodeID(id); !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
