// Package control solves the Company Control problem of Definition 2.3 of
// the Vada-Link paper: a company (or person) x controls a company y if
//
//	(i)  x directly owns more than 50% of y, or
//	(ii) x controls a set of companies that jointly — and possibly together
//	     with x itself — own more than 50% of y.
//
// The solver is the classic monotone fixpoint over the lattice of controlled
// sets (the logic-programming formulation the paper cites): the controlled
// set of x only grows and accumulated vote fractions only grow, so the
// fixpoint is reached in at most |N| rounds.
//
// The package also implements family control (the extension discussed with
// Algorithm 8): joint control exercised by a group of persons (e.g. a family)
// pooling their shares.
package control

import (
	"context"
	"sort"

	"vadalink/internal/pg"
)

// Threshold is the vote-majority threshold of Definition 2.3. Control
// requires strictly more than Threshold of the voting shares.
const Threshold = 0.5

// RightProp is the edge property naming the legal right attached to a share
// (the Italian register distinguishes ownership, bare ownership, usufruct,
// pledge, ...). Only voting shares count toward control.
const RightProp = "right"

// nonVotingRights lists share rights that carry no voting power: the bare
// owner has ceded voting rights to the usufructuary, and a pledged share
// votes with the creditor.
var nonVotingRights = map[string]bool{
	"bare ownership": true,
	"pledge":         true,
}

// votes reports the voting power of a shareholding edge: its share amount,
// or 0 when the attached legal right carries no votes.
func votes(e *pg.Edge) float64 {
	w, ok := e.Weight()
	if !ok {
		return 0
	}
	if right, ok := e.Props[RightProp].(string); ok && nonVotingRights[right] {
		return 0
	}
	return w
}

// checkInterval is how many fixpoint iterations pass between context polls
// in the Ctx solver variants: frequent enough for sub-millisecond
// cancellation latency, rare enough to stay off the profile.
const checkInterval = 256

// Controls computes the set of companies controlled by x, per Definition
// 2.3. The result excludes x itself and is sorted.
func Controls(g pg.View, x pg.NodeID) []pg.NodeID {
	return GroupControls(g, []pg.NodeID{x})
}

// ControlsCtx is Controls under a context: the fixpoint aborts with the
// context's error when it is cancelled or its deadline expires.
func ControlsCtx(ctx context.Context, g pg.View, x pg.NodeID) ([]pg.NodeID, error) {
	return GroupControlsCtx(ctx, g, []pg.NodeID{x})
}

// GroupControls computes the set of companies jointly controlled by the
// given group of nodes pooling their shares (family control: Algorithm 8).
// A company y is group-controlled if the members plus the already
// group-controlled companies jointly own more than 50% of y. Members
// themselves are never reported as controlled.
func GroupControls(g pg.View, members []pg.NodeID) []pg.NodeID {
	out, _ := GroupControlsCtx(context.Background(), g, members)
	return out
}

// GroupControlsCtx is GroupControls under a context. The fixpoint polls the
// context between holder expansions and returns its error on cancellation;
// the partial result computed so far is returned alongside.
func GroupControlsCtx(ctx context.Context, g pg.View, members []pg.NodeID) ([]pg.NodeID, error) {
	holders := make(map[pg.NodeID]bool, len(members))
	for _, m := range members {
		holders[m] = true
	}
	member := make(map[pg.NodeID]bool, len(members))
	for _, m := range members {
		member[m] = true
	}

	// voteCount[y] = total voting share of y held by current holders
	// (members + controlled companies). Rebuilt incrementally as holders
	// grow.
	voteCount := make(map[pg.NodeID]float64)
	addHolder := func(h pg.NodeID) []pg.NodeID {
		var promoted []pg.NodeID
		for _, e := range g.OutLabel(h, pg.LabelShareholding) {
			if e.From == e.To {
				// Self-loops (buy-backs) carry no external voting power.
				continue
			}
			w := votes(e)
			if w == 0 {
				continue
			}
			voteCount[e.To] += w
			if voteCount[e.To] > Threshold && !holders[e.To] && !member[e.To] {
				promoted = append(promoted, e.To)
			}
		}
		return promoted
	}

	queue := append([]pg.NodeID(nil), members...)
	var cancelErr error
	steps := 0
	for len(queue) > 0 {
		if steps++; steps%checkInterval == 0 {
			if err := ctx.Err(); err != nil {
				cancelErr = err
				break
			}
		}
		h := queue[0]
		queue = queue[1:]
		for _, y := range addHolder(h) {
			if !holders[y] {
				holders[y] = true
				queue = append(queue, y)
			}
		}
	}

	var out []pg.NodeID
	for y := range holders {
		if !member[y] {
			out = append(out, y)
		}
	}
	// A company whose votes crossed the threshold after it was enqueued is
	// already in holders; companies that crossed later via other holders are
	// found because every holder addition re-checks its targets. One final
	// sweep catches companies that crossed the threshold exactly when the
	// last holder was added but were never promoted (cannot happen by
	// construction, but the sweep makes the invariant explicit and cheap).
	for y, v := range voteCount {
		if v > Threshold && !member[y] && !holders[y] {
			out = append(out, y)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, cancelErr
}

// Pair is one control relationship: From controls To.
type Pair struct {
	From, To pg.NodeID
}

// AllPairs computes every control relationship in the graph by running the
// fixpoint from every node that owns at least one share. The result is
// sorted by (From, To). This is the quadratic-in-the-worst-case baseline the
// clustered augmentation of the core package avoids.
func AllPairs(g pg.View) []Pair {
	out, _ := AllPairsCtx(context.Background(), g)
	return out
}

// AllPairsCtx is AllPairs under a context: it stops between source nodes
// when the context is cancelled, returning the pairs found so far plus the
// context's error.
func AllPairsCtx(ctx context.Context, g pg.View) ([]Pair, error) {
	var out []Pair
	for _, x := range g.Nodes() {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if len(g.OutLabel(x, pg.LabelShareholding)) == 0 {
			continue
		}
		ys, err := ControlsCtx(ctx, g, x)
		for _, y := range ys {
			out = append(out, Pair{From: x, To: y})
		}
		if err != nil {
			return out, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out, nil
}

// UltimateControllers returns the persons who control company y, directly
// or through arbitrary ownership chains — the ultimate-beneficial-owner
// question of the anti-money-laundering use case the paper's introduction
// names. The result is sorted.
func UltimateControllers(g pg.View, y pg.NodeID) []pg.NodeID {
	out, _ := UltimateControllersCtx(context.Background(), g, y)
	return out
}

// UltimateControllersCtx is UltimateControllers under a context: it stops
// between candidate persons when the context is cancelled, returning the
// controllers found so far plus the context's error.
func UltimateControllersCtx(ctx context.Context, g pg.View, y pg.NodeID) ([]pg.NodeID, error) {
	var out []pg.NodeID
	for _, p := range g.NodesWithLabel(pg.LabelPerson) {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if len(g.OutLabel(p, pg.LabelShareholding)) == 0 {
			continue
		}
		cs, err := ControlsCtx(ctx, g, p)
		for _, c := range cs {
			if c == y {
				out = append(out, p)
				break
			}
		}
		if err != nil {
			return out, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Orphans returns the companies with no ultimate controller — widely-held
// or foreign-controlled entities, interesting as supervision blind spots.
func Orphans(g pg.View) []pg.NodeID {
	controlled := map[pg.NodeID]bool{}
	for _, p := range g.NodesWithLabel(pg.LabelPerson) {
		if len(g.OutLabel(p, pg.LabelShareholding)) == 0 {
			continue
		}
		for _, c := range Controls(g, p) {
			controlled[c] = true
		}
	}
	var out []pg.NodeID
	for _, c := range g.NodesWithLabel(pg.LabelCompany) {
		if !controlled[c] {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Annotate adds a Control edge to the graph for every control relationship,
// skipping existing ones. It returns the number of edges added.
func Annotate(g pg.Mutable) int {
	added := 0
	for _, p := range AllPairs(g) {
		if !g.HasEdge(pg.LabelControl, p.From, p.To) {
			g.MustAddEdge(pg.LabelControl, p.From, p.To, nil)
			added++
		}
	}
	return added
}
