package persist

import (
	"bytes"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes — truncations, bit flips, hostile
// lengths — through the frame scanner and record decoder. The invariants
// under attack:
//
//   - neither ever panics or over-allocates on a lying length prefix;
//   - scanFrames' goodLen is always a valid frame boundary within the input;
//   - any record that decodes reaches an encoding fixed point: encoding it
//     and decoding that again yields byte-identical output (so state can
//     cycle through log→memory→log forever without silent drift).
func FuzzWALDecode(f *testing.F) {
	seedRecords := []Record{
		{Op: OpAddNode, ID: 0, Label: "Company"},
		{Op: OpAddNode, ID: 42, Label: "Person", Props: map[string]any{"name": "A", "w": 0.5, "n": int64(9), "b": true}},
		{Op: OpAddEdge, ID: 3, Label: "Shareholding", From: 1, To: 2, Props: map[string]any{"weight": 0.51}},
		{Op: OpRemoveEdge, ID: 3},
	}
	for _, r := range seedRecords {
		payload, err := appendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		f.Add(encodeFrameBytes(payload))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		// The record decoder must be total — a failed decode returns an
		// error, never a panic — and encode∘decode must be a fixed point.
		if rec, err := decodeRecord(data); err == nil {
			enc1, err := appendRecord(nil, rec)
			if err != nil {
				t.Fatalf("decoded record %+v does not re-encode: %v", rec, err)
			}
			rec2, err := decodeRecord(enc1)
			if err != nil {
				t.Fatalf("re-encoded record does not decode: %v", err)
			}
			enc2, err := appendRecord(nil, rec2)
			if err != nil {
				t.Fatalf("twice-decoded record does not re-encode: %v", err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("encoding not a fixed point:\n 1st %x\n 2nd %x", enc1, enc2)
			}
		}
		// The frame scanner must stop at a frame boundary inside the input.
		goodLen, _, _ := scanFrames(data, func(payload []byte) error {
			_, _ = decodeRecord(payload) // decoding corrupt-but-CRC-valid payloads must not panic
			return nil
		})
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d outside input of %d bytes", goodLen, len(data))
		}
	})
}

func encodeFrameBytes(payload []byte) []byte {
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	putFrameHeader(frame, payload)
	return append(frame, payload...)
}
