package persist

import (
	"testing"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/relstore"
)

// Derived knowledge is knowledge: edges the reasoner materializes through
// relstore's output mapping go through the same pg mutation path as loaded
// facts, so they are WAL-captured and survive a restart without re-running
// the chase.
func TestDerivedLinksAreDurable(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	g := s.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	g.MustAddEdgeWeighted(a, b, 0.8)

	// A minimal "evaluated engine": one control fact the output mapping will
	// materialize, standing in for a full chase run.
	eng, err := datalog.NewEngine(&datalog.Program{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Assert(datalog.Fact{Pred: "control", Args: []any{int64(a), int64(b)}})
	added, err := relstore.ApplyPredictedLinks(g, eng)
	if err != nil || added != 1 {
		t.Fatalf("ApplyPredictedLinks = %d, %v", added, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	g2 := s2.Graph()
	if !g2.HasEdge(pg.LabelControl, a, b) {
		t.Fatal("derived control edge did not survive recovery")
	}
	// Idempotence across restarts: re-applying the same prediction adds
	// nothing, because the recovered graph already holds the edge.
	added, err = relstore.ApplyPredictedLinks(g2, eng)
	if err != nil || added != 0 {
		t.Fatalf("re-apply after recovery = %d, %v (want 0: edge already present)", added, err)
	}
}
