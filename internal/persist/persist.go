// Package persist is the crash-safe durability layer of the knowledge graph
// store: an append-only write-ahead log of graph mutations plus periodic
// checksummed full snapshots, with recovery that survives torn writes.
//
// The paper's §5 architecture assumes the augmented KG outlives the process
// (the KGMS persists what the reasoner derives); this package provides that
// without leaving the stdlib. Layout of a data directory:
//
//	snap-<gen>.vsnap   full snapshot opening generation <gen>
//	wal-<gen>.log      mutations since that snapshot
//
// Invariants:
//
//   - a fact is durable once Sync returns (callers sync before
//     acknowledging; the group-commit loop bounds the window for the rest);
//   - recovery loads the newest snapshot whose checksum verifies, then
//     replays every WAL of that generation and later, truncating a torn
//     final record instead of failing;
//   - recovery REFUSES to serve corrupt state: a CRC-valid record that does
//     not decode, or one whose replay diverges from the log (wrong IDs,
//     unknown endpoints), is an Open error, not a shrug.
package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vadalink/internal/pg"
)

// Options tunes a Store.
type Options struct {
	// SyncEvery is the WAL group-commit interval: how often buffered
	// records are fsynced in the background. Zero syncs every append inline
	// (maximum safety, minimum throughput). Explicit Store.Sync calls are
	// independent of the interval.
	SyncEvery time.Duration
}

// RecoveryInfo reports what Open did to bring the graph back.
type RecoveryInfo struct {
	// SnapshotGen is the generation of the snapshot that loaded (0 = none,
	// recovery started from an empty graph).
	SnapshotGen uint64 `json:"snapshotGen"`
	// SnapshotsSkipped counts newer snapshots that failed their checksum
	// and were passed over.
	SnapshotsSkipped int `json:"snapshotsSkipped,omitempty"`
	// WALFiles is the number of log files replayed.
	WALFiles int `json:"walFiles"`
	// RecordsReplayed is the number of WAL records applied on top of the
	// snapshot.
	RecordsReplayed int `json:"recordsReplayed"`
	// TornTails counts WAL files whose final record was torn and truncated.
	TornTails int `json:"tornTails,omitempty"`
	// Nodes and Edges are the recovered graph's size.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// DurationMillis is the wall-clock cost of recovery.
	DurationMillis int64 `json:"durationMillis"`
}

// SnapshotInfo reports one Snapshot call.
type SnapshotInfo struct {
	Gen            uint64 `json:"gen"`
	Nodes          int    `json:"nodes"`
	Edges          int    `json:"edges"`
	Bytes          int64  `json:"bytes"`
	DurationMillis int64  `json:"durationMillis"`
}

// Stats is the live counter snapshot of a Store.
type Stats struct {
	Gen         uint64 `json:"gen"`
	WALAppends  int64  `json:"walAppends"`
	WALSyncs    int64  `json:"walSyncs"`
	WALBytes    int64  `json:"walBytes"`
	Snapshots   int64  `json:"snapshots"`
	LastError   string `json:"lastError,omitempty"`
	SyncEveryMS int64  `json:"syncEveryMillis"`
}

// Store is a durable property graph: every committed mutation of Graph() is
// captured into the WAL, and Snapshot()/Sync() control when state is
// compacted and when it is guaranteed down.
//
// Concurrency: Append capture is internally serialized, but the graph
// itself keeps pg's rules — one mutator at a time. Snapshot must not run
// concurrently with mutations (hold your write lock around it, as
// reasonapi does).
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options
	g    *pg.Graph
	wal  *walWriter
	gen  uint64
	rec  RecoveryInfo

	// seq is the replication sequence number: the count of mutation records
	// ever applied to this graph (snapshot state included). It is a pure
	// function of graph state — see SeqOfGraph — maintained incrementally
	// here so readers never touch the graph's counters concurrently with a
	// mutator. base is seq as of the current generation's snapshot, i.e. the
	// sequence number the first frame of the current WAL follows.
	seq  atomic.Int64
	base int64

	// epochs is the replication-epoch history, oldest first: each mark says
	// "epoch E opened at sequence number S". Durable via OpEpoch WAL records
	// and the snapshot header; recovered by Open the same stateless way as
	// the position. epoch mirrors the newest mark's number atomically so
	// fencing checks never take the store lock.
	epochs []EpochMark
	epoch  atomic.Uint64

	snapshots int64
	capErr    error // first record-capture failure (sticky, surfaced by Sync)
}

// EpochMark records the opening of one replication epoch: a leader that
// fenced itself into Epoch did so when its log held exactly StartSeq
// records. The history of marks is what lets a store decide whether a
// rejoining peer's tail was fenced off — see DivergedSince.
type EpochMark struct {
	Epoch    uint64 `json:"epoch"`
	StartSeq int64  `json:"startSeq"`
}

// SeqOfGraph computes the replication sequence number of a graph: the total
// number of mutation records (AddNode, AddEdge, RemoveEdge, SetEdgeWeight,
// RemoveNode) ever applied to reach its state. Each AddNode advances the
// node-ID counter, each AddEdge the edge-ID counter, each removal widens the
// gap between elements ever created and elements live, and each weight edit
// bumps the graph's weight-edit counter (carried through snapshots) — so the
// count is derivable from any graph alone, with no position file to keep in
// sync. A follower recovering from kill -9 computes its replication position
// from its recovered graph. Graphs restored from snapshots that predate
// weight edits report WeightEdits() == 0, which is exact: that code could
// not have logged any.
func SeqOfGraph(g *pg.Graph) int64 {
	return 2*int64(g.NextNodeID()) - int64(g.NumNodes()) +
		2*int64(g.NextEdgeID()) - int64(g.NumEdges()) +
		g.WeightEdits()
}

// Open recovers the store in dir (creating it if empty) and arms change
// capture on the recovered graph.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	start := time.Now()
	s := &Store{dir: dir, opts: opts}

	snaps, wals, stray, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	// Newest verifiable snapshot wins; corrupt ones (torn rename survivors,
	// disk rot) are skipped, falling back generation by generation.
	var g *pg.Graph
	for i := len(snaps) - 1; i >= 0; i-- {
		loaded, marks, err := readSnapshot(snapPath(dir, snaps[i]))
		if err != nil {
			s.rec.SnapshotsSkipped++
			continue
		}
		g = loaded
		s.epochs = marks
		s.rec.SnapshotGen = snaps[i]
		break
	}
	if g == nil {
		g = pg.New()
	}

	// Replay every WAL at or after the loaded generation, oldest first. When
	// a snapshot was skipped as corrupt this re-derives its state from the
	// previous generation's log — records carry explicit IDs, so the replay
	// either reproduces exactly the state the log describes or fails.
	maxGen := s.rec.SnapshotGen
	perGen := make(map[uint64]int, len(wals))
	for _, wg := range wals {
		if wg < s.rec.SnapshotGen {
			continue
		}
		if wg > maxGen {
			maxGen = wg
		}
		// Epoch marks are intercepted before graph replay: they are
		// sequence-neutral, so only true mutations count toward the base
		// arithmetic below.
		applied := 0
		_, torn, err := replayWAL(walPath(dir, wg), func(r Record) error {
			if r.Op == OpEpoch {
				s.noteEpoch(EpochMark{Epoch: uint64(r.ID), StartSeq: r.From})
				return nil
			}
			applied++
			return apply(g, r)
		})
		if err != nil {
			return nil, err
		}
		perGen[wg] = applied
		s.rec.WALFiles++
		s.rec.RecordsReplayed += applied
		if torn {
			s.rec.TornTails++
		}
	}

	s.g = g
	s.gen = maxGen
	s.seq.Store(SeqOfGraph(g))
	s.base = s.seq.Load() - int64(perGen[maxGen])
	if n := len(s.epochs); n > 0 {
		s.epoch.Store(s.epochs[n-1].Epoch)
	}
	w, err := openWAL(walPath(dir, s.gen), opts.SyncEvery)
	if err != nil {
		return nil, err
	}
	s.wal = w

	// Stale generations and orphaned temp files are dead weight now.
	for _, gen := range snaps {
		if gen != s.rec.SnapshotGen {
			os.Remove(snapPath(dir, gen))
		}
	}
	for _, gen := range wals {
		if gen < s.rec.SnapshotGen {
			os.Remove(walPath(dir, gen))
		}
	}
	for _, p := range stray {
		os.Remove(p)
	}

	s.rec.Nodes = g.NumNodes()
	s.rec.Edges = g.NumEdges()
	s.rec.DurationMillis = time.Since(start).Milliseconds()
	g.SetMutationHook(s.capture)
	return s, nil
}

// capture is the pg mutation hook: encode and append. Failures are sticky
// and surface on the next Sync — the mutation already happened in memory,
// so the only honest report is "stop acknowledging".
func (s *Store) capture(m pg.Mutation) {
	s.seq.Add(1)
	rec, err := recordFor(m)
	if err == nil {
		err = s.wal.Append(rec)
	}
	if err != nil {
		s.mu.Lock()
		if s.capErr == nil {
			s.capErr = err
		}
		s.mu.Unlock()
	}
}

// Graph returns the recovered, change-captured graph. Mutate it under the
// same discipline as any pg.Graph; call Sync before acknowledging.
func (s *Store) Graph() *pg.Graph { return s.g }

// Recovery reports what Open replayed.
func (s *Store) Recovery() RecoveryInfo { return s.rec }

// Sync makes every captured mutation durable. A nil return is the
// acknowledgement barrier: facts logged before this call survive a crash.
func (s *Store) Sync() error {
	s.mu.Lock()
	capErr := s.capErr
	s.mu.Unlock()
	if capErr != nil {
		return capErr
	}
	return s.wal.Sync()
}

// Snapshot writes a checksummed full snapshot, rotates the WAL to a fresh
// generation and deletes the superseded files. The caller must exclude
// concurrent graph mutations for the duration.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	info := SnapshotInfo{Gen: s.gen + 1, Nodes: s.g.NumNodes(), Edges: s.g.NumEdges()}
	if s.capErr != nil {
		return info, s.capErr
	}
	n, err := s.rotateLocked()
	if err != nil {
		return info, err
	}
	info.Bytes = n
	info.DurationMillis = time.Since(start).Milliseconds()
	return info, nil
}

// rotateLocked cuts a snapshot of the current graph as generation gen+1,
// switches the WAL to that generation and deletes the superseded files.
// The caller holds s.mu and excludes concurrent graph mutations.
func (s *Store) rotateLocked() (int64, error) {
	// Everything the old generation's log holds must be down before the
	// snapshot that supersedes it is cut.
	if err := s.wal.Sync(); err != nil {
		return 0, err
	}
	_, n, err := writeSnapshot(s.dir, s.gen+1, s.g, s.epochs)
	if err != nil {
		return 0, err
	}
	w, err := openWAL(walPath(s.dir, s.gen+1), s.opts.SyncEvery)
	if err != nil {
		return 0, err
	}
	old := s.wal
	oldGen := s.gen
	s.wal = w
	s.gen++
	s.snapshots++
	// The new snapshot holds every record logged so far: the fresh WAL's
	// first frame will carry sequence number base+1.
	s.base = s.seq.Load()
	_ = old.Close()
	os.Remove(walPath(s.dir, oldGen))
	if oldGen > 0 {
		os.Remove(snapPath(s.dir, oldGen))
	}
	return n, nil
}

// ReplaceGraph swaps the store's graph for g wholesale and makes the new
// state durable as a fresh snapshot generation — the follower-side half of a
// replication snapshot bootstrap: a replica that lagged past the leader's
// log truncation (or diverged ahead of a restarted leader) adopts the
// leader's snapshot and resumes tailing from its sequence number. The caller
// must exclude concurrent mutations and readers for the duration (hold the
// serving tier's write lock), and must stop using the previous Graph().
func (s *Store) ReplaceGraph(g *pg.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replaceGraphLocked(g, s.epochs)
}

// ReplaceGraphMarks is ReplaceGraph for a bootstrap that also adopts the
// leader's epoch history: the shipped snapshot carries the marks, and a
// replica that adopts the state must adopt the history that produced it or
// its own divergence answers would lie.
func (s *Store) ReplaceGraphMarks(g *pg.Graph, marks []EpochMark) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replaceGraphLocked(g, marks)
}

func (s *Store) replaceGraphLocked(g *pg.Graph, marks []EpochMark) error {
	if s.capErr != nil {
		return s.capErr
	}
	s.g.SetMutationHook(nil)
	s.g = g
	g.SetMutationHook(s.capture)
	s.seq.Store(SeqOfGraph(g))
	s.epochs = append([]EpochMark(nil), marks...)
	if n := len(s.epochs); n > 0 {
		s.epoch.Store(s.epochs[n-1].Epoch)
	} else {
		s.epoch.Store(0)
	}
	_, err := s.rotateLocked()
	return err
}

// Epoch returns the store's current replication epoch (0 before any leader
// ever fenced). Lock-free: fencing checks run on every shipped frame.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// EpochMarks returns a copy of the epoch history, oldest first.
func (s *Store) EpochMarks() []EpochMark {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]EpochMark(nil), s.epochs...)
}

// RecordEpoch durably opens a new epoch: the mark is appended to the WAL as
// an OpEpoch record, fsynced, and added to the in-memory history. A
// non-advancing epoch is refused — epochs are fencing tokens and only ever
// move forward. This is the promotion barrier: a candidate that returns from
// RecordEpoch holds its fence on disk and cannot un-promote by crashing.
func (s *Store) RecordEpoch(m EpochMark) error {
	s.mu.Lock()
	if s.capErr != nil {
		err := s.capErr
		s.mu.Unlock()
		return err
	}
	if cur := s.epoch.Load(); m.Epoch <= cur {
		s.mu.Unlock()
		return fmt.Errorf("persist: epoch %d does not advance current epoch %d", m.Epoch, cur)
	}
	// A mark can only describe records appended after it: clamp StartSeq up
	// to the current sequence number. Without this, a member granting a
	// fence whose start point lies below its own seq (legal when the
	// candidate's newest fact carries a strictly newer epoch) would
	// retroactively attribute its pre-existing — possibly divergent — tail
	// to the new epoch, inflating LastEpoch and hiding the divergence from
	// DivergedSince, so the reset bootstrap that should truncate the tail
	// never fires.
	if seq := s.seq.Load(); m.StartSeq < seq {
		m.StartSeq = seq
	}
	if err := s.wal.Append(Record{Op: OpEpoch, ID: int64(m.Epoch), From: m.StartSeq}); err != nil {
		s.mu.Unlock()
		return err
	}
	s.noteEpoch(m)
	s.epoch.Store(m.Epoch)
	s.mu.Unlock()
	return s.Sync()
}

// noteEpoch appends a mark to the history if it advances it (recovery may
// replay marks already present in the snapshot header). Caller holds s.mu
// or is single-threaded (Open).
func (s *Store) noteEpoch(m EpochMark) {
	if n := len(s.epochs); n > 0 && m.Epoch <= s.epochs[n-1].Epoch {
		return
	}
	s.epochs = append(s.epochs, m)
}

// LastEpoch returns the epoch under which the newest mutation was appended:
// the highest mark whose StartSeq precedes the current sequence number. A
// fence mark opened at the current sequence number doesn't count — no
// mutation has happened under it yet. This, paired with Seq, is the store's
// history identity: two stores agree on every fact iff their (LastEpoch,
// Seq) pairs are comparable prefixes, which is what elections and fence
// grants compare. Zero means the store predates all epochs (or is empty).
func (s *Store) LastEpoch() uint64 {
	seq := s.Seq()
	s.mu.Lock()
	defer s.mu.Unlock()
	var last uint64
	for _, m := range s.epochs {
		if m.StartSeq < seq && m.Epoch > last {
			last = m.Epoch
		}
	}
	return last
}

// DivergedSince reports whether a peer whose newest fact was written under
// lastEpoch, at sequence number seq, holds records this store's history
// fenced off: true iff some later epoch opened at a sequence number below
// the peer's. Such a peer logged records past a fence point under a deposed
// leader — its tail is not a prefix of this history and must be discarded
// via snapshot bootstrap. Pass the peer's LastEpoch, not its durable epoch:
// a granted fence advances the durable epoch without validating the facts
// beneath it, so only the fact-bearing epoch identifies the history.
func (s *Store) DivergedSince(lastEpoch uint64, seq int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.epochs {
		if m.Epoch > lastEpoch && m.StartSeq < seq {
			return true
		}
	}
	return false
}

// Seq returns the store's replication sequence number: the count of mutation
// records ever applied to its graph. Safe to call concurrently with
// mutations (the counter is atomic); a frame with sequence number N is the
// Nth record ever logged.
func (s *Store) Seq() int64 { return s.seq.Load() }

// Position reports the store's replication position: the current WAL
// generation, the sequence number its snapshot covers (base — the current
// WAL's frames carry sequence numbers base+1..seq) and the current sequence
// number. gen and base are read together under the store lock so a
// concurrent rotation cannot tear them.
func (s *Store) Position() (gen uint64, base, seq int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen, s.base, s.seq.Load()
}

// WALFile returns the path of the log file of a generation. The file exists
// for the current generation (and may be deleted at any rotation); the
// replication leader streams it.
func (s *Store) WALFile(gen uint64) string { return walPath(s.dir, gen) }

// SnapshotFile returns the path of a generation's snapshot file. Generation
// 0 has none (stores are born empty); the current generation's snapshot
// exists until the next rotation supersedes it.
func (s *Store) SnapshotFile(gen uint64) string { return snapPath(s.dir, gen) }

// Import seeds a freshly opened, still-empty store with g: the store adopts
// the graph, arms change capture on it and cuts an initial snapshot so the
// state is durable immediately. Importing over existing state is refused.
func (s *Store) Import(g *pg.Graph) error {
	s.mu.Lock()
	if s.g.NumNodes() > 0 || s.g.NumEdges() > 0 {
		s.mu.Unlock()
		return fmt.Errorf("persist: refusing to import over a non-empty store (%d nodes)", s.g.NumNodes())
	}
	s.g.SetMutationHook(nil)
	s.g = g
	g.SetMutationHook(s.capture)
	s.seq.Store(SeqOfGraph(g))
	s.mu.Unlock()
	_, err := s.Snapshot()
	return err
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, sy, b := s.wal.stats()
	st := Stats{
		Gen:         s.gen,
		WALAppends:  a,
		WALSyncs:    sy,
		WALBytes:    b,
		Snapshots:   s.snapshots,
		SyncEveryMS: s.opts.SyncEvery.Milliseconds(),
	}
	err := s.capErr
	if err == nil {
		err = s.wal.Err()
	}
	if err != nil {
		st.LastError = err.Error()
	}
	return st
}

// Close syncs and closes the WAL and detaches change capture. The graph
// remains usable in memory; further mutations are no longer logged.
func (s *Store) Close() error {
	s.mu.Lock()
	g, w, capErr := s.g, s.wal, s.capErr
	s.mu.Unlock()
	g.SetMutationHook(nil)
	err := w.Close()
	if capErr != nil && err == nil {
		err = capErr
	}
	return err
}

// scanDir inventories a data directory: snapshot generations, WAL
// generations (each sorted ascending) and stray temp files.
func scanDir(dir string) (snaps, wals []uint64, stray []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("persist: reading data dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".vsnap"):
			if gen, ok := parseGen(name, "snap-", ".vsnap"); ok {
				snaps = append(snaps, gen)
			} else {
				stray = append(stray, filepath.Join(dir, name))
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if gen, ok := parseGen(name, "wal-", ".log"); ok {
				wals = append(wals, gen)
			} else {
				stray = append(stray, filepath.Join(dir, name))
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".tmp"):
			stray = append(stray, filepath.Join(dir, name))
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, stray, nil
}

func parseGen(name, prefix, suffix string) (uint64, bool) {
	body := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if body == "" {
		return 0, false
	}
	var gen uint64
	for _, c := range body {
		if c < '0' || c > '9' {
			return 0, false
		}
		gen = gen*10 + uint64(c-'0')
	}
	return gen, true
}
