package persist

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"vadalink/internal/pg"
)

// The crash-recovery harness: a child process (this test binary re-executed
// with -test.run=TestCrashChild) opens the store, verifies every fact it
// acknowledged in previous lives is still present, then keeps appending and
// acknowledging until the parent SIGKILLs it mid-write. Twenty consecutive
// kill/restart cycles must show zero acknowledged-fact loss and zero
// corrupt-state loads.
//
// The acknowledgement protocol is the durability contract under test: the
// child writes "seq N" to the ack file only AFTER Store.Sync returns for the
// mutation that created fact N. kill -9 loses user-space state but not what
// reached the page cache, so any acked-but-missing fact on restart is a WAL
// ordering bug, not test noise.

const (
	crashDirEnv = "PERSIST_CRASH_DIR"
	crashAckEnv = "PERSIST_CRASH_ACK"

	// Child exit codes, decoded by the parent.
	crashExitOpenFailed = 2 // recovery refused or errored: corrupt-state load
	crashExitFactLost   = 3 // an acknowledged fact is missing after recovery
	crashExitInternal   = 4 // harness plumbing failure
)

func TestCrashRecoveryLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short")
	}
	dir := t.TempDir()
	ack := dir + "/acked.txt"

	const cycles = 20
	for i := 0; i < cycles; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.v")
		cmd.Env = append(os.Environ(), crashDirEnv+"="+dir+"/data", crashAckEnv+"="+ack)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatalf("cycle %d: starting child: %v", i, err)
		}
		// Vary the kill point so deaths land during appends, syncs and
		// snapshot rotations alike.
		time.Sleep(time.Duration(30+i*17%90) * time.Millisecond)
		_ = cmd.Process.Kill()
		err := cmd.Wait()
		if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() >= 0 {
			// The child exited on its own before the kill: it detected a
			// violation (or tripped on plumbing). Its output says which.
			t.Fatalf("cycle %d: child exited with code %d before kill:\n%s", i, ee.ExitCode(), out.String())
		}
	}

	// Final verification in-process: the store must open cleanly and hold
	// every fact any child life acknowledged.
	acked := readAckedSeqs(t, ack)
	s, err := Open(dir+"/data", Options{})
	if err != nil {
		t.Fatalf("final recovery failed after %d kills: %v", cycles, err)
	}
	defer s.Close()
	g := s.Graph()
	for _, seq := range acked {
		n := g.Node(pg.NodeID(seq - 1))
		if n == nil || n.Props["seq"] != seq {
			t.Fatalf("acknowledged fact %d lost (node: %+v) after %d kills", seq, n, cycles)
		}
	}
	rec := s.Recovery()
	t.Logf("survived %d kills: %d facts acked, recovered %d nodes / %d edges in %dms (snapshot gen %d, %d wal records, %d torn tails)",
		cycles, len(acked), rec.Nodes, rec.Edges, rec.DurationMillis, rec.SnapshotGen, rec.RecordsReplayed, rec.TornTails)
	if len(acked) == 0 {
		t.Fatal("harness never acknowledged a fact; the loop tested nothing")
	}
}

// TestCrashChild is the re-executed body. Under normal `go test` it skips.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash-harness child; run via TestCrashRecoveryLoop")
	}
	ackPath := os.Getenv(crashAckEnv)

	die := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "crash child: "+format+"\n", args...)
		os.Exit(code)
	}

	acked := readAckedSeqsFile(ackPath)
	s, err := Open(dir, Options{SyncEvery: 2 * time.Millisecond})
	if err != nil {
		die(crashExitOpenFailed, "recovery refused: %v", err)
	}
	g := s.Graph()
	// Every fact acknowledged by a previous life must have survived.
	for _, seq := range acked {
		n := g.Node(pg.NodeID(seq - 1))
		if n == nil || n.Props["seq"] != seq {
			die(crashExitFactLost, "acked fact %d missing after recovery (node %+v)", seq, n)
		}
	}

	ackF, err := os.OpenFile(ackPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		die(crashExitInternal, "opening ack file: %v", err)
	}

	// Append, sync, acknowledge — forever, until the parent kills us. Nodes
	// carry their sequence number; IDs are assigned densely so fact N lives
	// at node N-1 in every life. Edge churn and periodic snapshots run
	// alongside so the kill can land inside rotation too.
	seq := int64(g.NumNodes())
	for {
		seq++
		id := g.AddNode(pg.LabelCompany, pg.Properties{"seq": seq})
		if seq%3 == 0 && id > 0 {
			e := g.MustAddEdgeWeighted(id-1, id, 0.5)
			if seq%9 == 0 {
				g.RemoveEdge(e)
			}
		}
		if err := s.Sync(); err != nil {
			die(crashExitInternal, "sync: %v", err)
		}
		if _, err := fmt.Fprintf(ackF, "%d\n", seq); err != nil {
			die(crashExitInternal, "ack write: %v", err)
		}
		if seq%101 == 0 {
			if _, err := s.Snapshot(); err != nil {
				die(crashExitInternal, "snapshot: %v", err)
			}
		}
	}
}

func readAckedSeqs(t *testing.T, path string) []int64 {
	t.Helper()
	return readAckedSeqsFile(path)
}

// readAckedSeqsFile parses the ack file: one acknowledged sequence number per
// line. A torn final line (the child died mid-write) is ignored — the ack
// never completed, so the fact was never promised.
func readAckedSeqsFile(path string) []int64 {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var seqs []int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		n, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	return seqs
}
