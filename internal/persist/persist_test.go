package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vadalink/internal/faultinject"
	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// Build a small graph through a store, reopen, and check everything came back
// with identical identifiers.
func TestOpenRecoversAppendedMutations(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	g := s.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "ACME"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "Banca"})
	p := g.AddNode(pg.LabelPerson, pg.Properties{"name": "Alice", "age": int64(52), "pep": true, "score": 0.75})
	e1 := g.MustAddEdgeWeighted(a, b, 0.6)
	e2 := g.MustAddEdgeWeighted(p, a, 0.3)
	g.RemoveEdge(e1)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	g2 := s2.Graph()
	if g2.NumNodes() != 3 || g2.NumEdges() != 1 {
		t.Fatalf("recovered %d nodes / %d edges, want 3/1", g2.NumNodes(), g2.NumEdges())
	}
	if n := g2.Node(p); n == nil || n.Props["name"] != "Alice" || n.Props["age"] != int64(52) ||
		n.Props["pep"] != true || n.Props["score"] != 0.75 {
		t.Fatalf("person node lost properties: %+v", g2.Node(p))
	}
	if g2.Edge(e1) != nil {
		t.Error("removed edge resurrected by recovery")
	}
	if e := g2.Edge(e2); e == nil || e.From != p || e.To != a {
		t.Fatalf("edge %d not recovered: %+v", e2, g2.Edge(e2))
	}
	// Post-recovery IDs continue where the log left off.
	if g2.NextNodeID() != g.NextNodeID() || g2.NextEdgeID() != g.NextEdgeID() {
		t.Errorf("counters %d/%d, want %d/%d", g2.NextNodeID(), g2.NextEdgeID(), g.NextNodeID(), g.NextEdgeID())
	}
	rec := s2.Recovery()
	if rec.RecordsReplayed != 6 {
		t.Errorf("RecordsReplayed = %d, want 6", rec.RecordsReplayed)
	}
	if rec.Nodes != 3 || rec.Edges != 1 {
		t.Errorf("recovery reports %d/%d, want 3/1", rec.Nodes, rec.Edges)
	}
}

// Snapshot rotates generations, deletes superseded files, and recovery from
// the snapshot alone (plus the fresh WAL) reproduces the state.
func TestSnapshotRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	g := s.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	g.MustAddEdgeWeighted(a, b, 1.0)

	info, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 || info.Nodes != 2 || info.Edges != 1 {
		t.Fatalf("snapshot info %+v", info)
	}
	// More mutations after the snapshot land in the new generation's WAL.
	c := g.AddNode(pg.LabelCompany, pg.Properties{"name": "C"})
	g.MustAddEdgeWeighted(b, c, 0.9)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir after rotation = %v, want exactly snap+wal of gen 1", names)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotGen != 1 {
		t.Errorf("recovered from gen %d, want 1", rec.SnapshotGen)
	}
	if rec.RecordsReplayed != 2 {
		t.Errorf("RecordsReplayed = %d, want 2 (post-snapshot tail)", rec.RecordsReplayed)
	}
	if s2.Graph().NumNodes() != 3 || s2.Graph().NumEdges() != 2 {
		t.Fatalf("recovered %d/%d, want 3/2", s2.Graph().NumNodes(), s2.Graph().NumEdges())
	}
}

// A corrupt newest snapshot is skipped; recovery falls back to the previous
// generation's snapshot and replays its WAL, which still spans everything.
func TestRecoverySkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	g := s.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	g.MustAddEdgeWeighted(a, b, 1.0)
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "C"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload bit in the gen-1 snapshot.
	p := snapPath(dir, 1)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(snapMagic)+3] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Gen-0 files were deleted at rotation, so there is no older snapshot —
	// but gen-1's WAL can't rebuild pre-snapshot state either. Recovery must
	// refuse (apply fails on the dangling edge) rather than serve a partial
	// graph.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open served state despite corrupt snapshot and no fallback")
	}
}

// With an older snapshot still present (simulated retained generation),
// recovery falls back to it and replays forward across generations.
func TestRecoveryFallsBackAcrossGenerations(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	g := s.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	g.MustAddEdgeWeighted(a, b, 1.0)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Keep a copy of the gen-0 WAL; rotation will delete it.
	wal0, err := os.ReadFile(walPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "C"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Restore the old WAL and corrupt the gen-1 snapshot: recovery should
	// fall back to empty + wal-0 + wal-1 and still reach the full state.
	if err := os.WriteFile(walPath(dir, 0), wal0, 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(snapPath(dir, 1))
	data[len(snapMagic)+3] ^= 0xff
	if err := os.WriteFile(snapPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotsSkipped != 1 || rec.SnapshotGen != 0 {
		t.Errorf("recovery %+v, want skipped=1 gen=0", rec)
	}
	if s2.Graph().NumNodes() != 3 || s2.Graph().NumEdges() != 1 {
		t.Fatalf("fallback recovered %d/%d, want 3/1", s2.Graph().NumNodes(), s2.Graph().NumEdges())
	}
}

// An injected fault in the fsync-to-rename window leaves the temp file behind
// and the previous state authoritative — exactly a crash-before-rename.
func TestSnapshotCrashBeforeRenameLeavesOldStateAuthoritative(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	g := s.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("crash before rename")
	faultinject.SetErr(faultinject.SitePersistRename, func() error { return boom })
	defer faultinject.Reset()
	if _, err := s.Snapshot(); !errors.Is(err, boom) {
		t.Fatalf("Snapshot error = %v, want injected crash", err)
	}
	faultinject.Reset()
	s.Close()

	// The failed publication left a *.tmp; Open must ignore and remove it.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Graph().NumNodes() != 1 {
		t.Fatalf("recovered %d nodes, want 1", s2.Graph().NumNodes())
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("stray temp file %s survived recovery", e.Name())
		}
	}
}

// Import seeds an empty store and makes the seed durable immediately.
func TestImportSeedsAndSnapshots(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	seed := pg.New()
	a := seed.AddNode(pg.LabelCompany, pg.Properties{"name": "Seed"})
	if err := s.Import(seed); err != nil {
		t.Fatal(err)
	}
	if s.Graph() != seed {
		t.Fatal("store did not adopt the imported graph")
	}
	// Mutations after import are captured.
	b := seed.AddNode(pg.LabelCompany, pg.Properties{"name": "Post"})
	seed.MustAddEdgeWeighted(a, b, 1.0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Graph().NumNodes() != 2 || s2.Graph().NumEdges() != 1 {
		t.Fatalf("recovered %d/%d after import, want 2/1", s2.Graph().NumNodes(), s2.Graph().NumEdges())
	}
	if err := s2.Import(pg.New()); err == nil {
		t.Error("Import over non-empty store accepted")
	}
}

// Group commit: with a long interval, un-synced appends are made durable by
// an explicit Sync; Stats reflects the activity.
func TestGroupCommitAndStats(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncEvery: time.Hour})
	g := s.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WALAppends != 2 || st.WALSyncs < 1 || st.WALBytes == 0 {
		t.Errorf("stats %+v", st)
	}
	if st.SyncEveryMS != time.Hour.Milliseconds() {
		t.Errorf("SyncEveryMS = %d", st.SyncEveryMS)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Graph().NumNodes() != 2 {
		t.Fatalf("recovered %d nodes, want 2", s2.Graph().NumNodes())
	}
}

// fsync failure is fail-stop: the first error sticks, Sync keeps refusing,
// and no later acknowledgement can pretend durability.
func TestSyncFailureIsSticky(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncEvery: time.Hour})
	defer s.Close()
	g := s.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})

	diskFull := errors.New("injected fsync failure")
	faultinject.SetErr(faultinject.SitePersistSync, func() error { return diskFull })
	defer faultinject.Reset()
	if err := s.Sync(); !errors.Is(err, diskFull) {
		t.Fatalf("Sync = %v, want injected failure", err)
	}
	faultinject.Reset()
	// Fault cleared, but the WAL must stay failed.
	if err := s.Sync(); !errors.Is(err, diskFull) {
		t.Fatalf("Sync after clear = %v, want sticky failure", err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Error("Snapshot succeeded on a failed store")
	}
	if st := s.Stats(); st.LastError == "" {
		t.Error("Stats does not surface the sticky error")
	}
}

// A torn final append (injected short write) is truncated on recovery; every
// record synced before it survives.
func TestTornFinalAppendIsTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncEvery: time.Hour})
	g := s.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	torn := errors.New("torn write")
	faultinject.SetErr(faultinject.SitePersistAppend, func() error { return torn })
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "HalfWritten"})
	faultinject.Reset()
	if err := s.Sync(); !errors.Is(err, torn) {
		t.Fatalf("Sync = %v, want capture failure surfaced", err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", rec.TornTails)
	}
	if s2.Graph().NumNodes() != 2 {
		t.Fatalf("recovered %d nodes, want the 2 acknowledged ones", s2.Graph().NumNodes())
	}
	// The truncation is in place: a second recovery sees a clean log.
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	if s3.Recovery().TornTails != 0 {
		t.Error("torn tail not truncated in place")
	}
}

// A CRC-valid frame holding an undecodable record is corruption, not a torn
// tail: Open must refuse.
func TestRecoveryRefusesUndecodableRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Graph().AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	s.Sync()
	s.Close()

	w, err := openWAL(walPath(dir, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-append a frame whose payload is garbage but whose CRC is correct.
	payload := []byte{0xee, 0xee, 0xee}
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	putFrameHeader(frame, payload)
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		t.Fatal(err)
	}
	w.f.Close()

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open served a log with an undecodable record")
	}
}

// The acceptance bar from the issue: a 10k-company graph recovers from
// snapshot + WAL tail in under five seconds, reported in RecoveryInfo.
func TestLargeGraphRecoveryUnderFiveSeconds(t *testing.T) {
	if testing.Short() {
		t.Skip("large recovery benchmark-test skipped in -short")
	}
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncEvery: 2 * time.Millisecond})
	it := graphgen.NewItalian(graphgen.ItalianConfig{Persons: 10000, Companies: 10000, Seed: 42})
	if err := s.Import(it.Graph); err != nil {
		t.Fatal(err)
	}
	// A WAL tail on top of the snapshot so recovery exercises both paths.
	g := s.Graph()
	for i := 0; i < 2000; i++ {
		g.AddNode(pg.LabelCompany, pg.Properties{"name": "tail"})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Nodes < 20000 {
		t.Fatalf("recovered only %d nodes", rec.Nodes)
	}
	if rec.RecordsReplayed != 2000 {
		t.Errorf("RecordsReplayed = %d, want 2000", rec.RecordsReplayed)
	}
	if rec.DurationMillis >= 5000 {
		t.Errorf("recovery took %dms, acceptance bar is <5000ms", rec.DurationMillis)
	}
}

// putFrameHeader stamps length+CRC for payload into the 8-byte header.
func putFrameHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
}

// Weight edits and node removals are first-class WAL records: a store that
// logs them recovers to the identical graph (same weights, same missing
// node, same counters and sequence number), whether replay starts from the
// WAL alone or from a snapshot cut after the mutations.
func TestWALRoundTripWeightEditAndNodeRemoval(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	g := s.Graph()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	c := g.AddNode(pg.LabelCompany, pg.Properties{"name": "C"})
	ab := g.MustAddEdgeWeighted(a, b, 0.6)
	g.MustAddEdgeWeighted(b, c, 0.8)
	g.MustAddEdgeWeighted(c, a, 0.5)
	if err := g.SetEdgeWeight(ab, 0.35); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveNode(c) { // removes c plus its two incident edges
		t.Fatal("RemoveNode(c) = false")
	}
	wantSeq := s.Seq()
	// 3 adds + 3 edges + 1 weight edit + 2 incident removals + 1 node = 10.
	if wantSeq != 10 {
		t.Fatalf("seq after mutations = %d, want 10", wantSeq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(stage string, g2 *pg.Graph, seq int64) {
		t.Helper()
		if seq != wantSeq {
			t.Fatalf("%s: recovered seq = %d, want %d", stage, seq, wantSeq)
		}
		if g2.Node(c) != nil {
			t.Fatalf("%s: removed node resurrected", stage)
		}
		if g2.NumNodes() != 2 || g2.NumEdges() != 1 {
			t.Fatalf("%s: recovered %d nodes / %d edges, want 2/1", stage, g2.NumNodes(), g2.NumEdges())
		}
		if w, _ := g2.Edge(ab).Weight(); w != 0.35 {
			t.Fatalf("%s: recovered weight = %v, want 0.35", stage, w)
		}
		if g2.WeightEdits() != 1 {
			t.Fatalf("%s: recovered WeightEdits = %d, want 1", stage, g2.WeightEdits())
		}
		if g2.NextNodeID() != 3 || g2.NextEdgeID() != 3 {
			t.Fatalf("%s: counters %d/%d, want 3/3", stage, g2.NextNodeID(), g2.NextEdgeID())
		}
	}

	// Recovery replays the records from the WAL.
	s2 := mustOpen(t, dir, Options{})
	check("wal replay", s2.Graph(), s2.Seq())
	// Cut a snapshot so the next recovery loads state (including the
	// weight-edit counter) from the snapshot instead of the log.
	if _, err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	check("snapshot", s3.Graph(), s3.Seq())
}
