// WAL record codec: one Record per committed graph mutation, encoded in a
// compact self-describing binary form. The decoder is deliberately paranoid
// — every length is bounds-checked against the remaining buffer before any
// allocation, because it feeds on bytes that survived a crash (and on fuzz
// input). A record that does not decode cleanly and completely is corrupt.
package persist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"vadalink/internal/pg"
)

// Op discriminates WAL record types.
type Op byte

// WAL operations, mirroring pg's mutation kinds. Records are
// self-describing (the op byte selects the wire shape), so adding
// OpSetEdgeWeight and OpRemoveNode version-gated the format for free: logs
// written before those ops existed contain only the first three and decode
// unchanged, while old decoders meeting a new op fail loudly as "unknown
// op" instead of misreading it.
const (
	OpAddNode Op = 1 + iota
	OpAddEdge
	OpRemoveEdge
	OpSetEdgeWeight
	OpRemoveNode
	// OpEpoch is a replication-epoch mark, not a graph mutation: ID carries
	// the epoch number, From the sequence number the epoch opened at. It is
	// sequence-neutral (SeqOfGraph stays a pure function of graph state), so
	// recovery intercepts it before graph replay instead of applying it.
	OpEpoch
)

// Record is one logged mutation. IDs are explicit — replay asserts that the
// graph reassigns the same identifiers, so a log applied to the wrong base
// state fails loudly instead of silently weaving a graph that never existed.
type Record struct {
	Op       Op
	ID       int64 // node ID for OpAddNode/OpRemoveNode, edge ID otherwise
	Label    string
	From, To int64   // OpAddEdge only
	W        float64 // OpSetEdgeWeight only: the new share amount
	Props    pg.Properties
}

// Property value type tags.
const (
	tagString byte = 's'
	tagFloat  byte = 'f'
	tagInt    byte = 'i'
	tagBool   byte = 'b'
)

// appendRecord appends the encoding of r to buf and returns the result.
// Unsupported property value types are an error: the WAL must not silently
// drop state it cannot re-create.
func appendRecord(buf []byte, r Record) ([]byte, error) {
	buf = append(buf, byte(r.Op))
	buf = binary.AppendVarint(buf, r.ID)
	switch r.Op {
	case OpAddNode:
		buf = appendString(buf, r.Label)
	case OpAddEdge:
		buf = appendString(buf, r.Label)
		buf = binary.AppendVarint(buf, r.From)
		buf = binary.AppendVarint(buf, r.To)
	case OpRemoveEdge, OpRemoveNode:
		return buf, nil // no label or props logged for removals
	case OpSetEdgeWeight:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.W))
		return buf, nil
	case OpEpoch:
		buf = binary.AppendVarint(buf, r.From)
		return buf, nil
	default:
		return nil, fmt.Errorf("persist: unknown op %d", r.Op)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Props)))
	// Sorted keys make the encoding canonical: the same record always
	// produces the same bytes, so decode∘encode is the identity and the
	// fuzz harness can assert it.
	keys := make([]string, 0, len(r.Props))
	for k := range r.Props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := r.Props[k]
		buf = appendString(buf, k)
		switch x := v.(type) {
		case string:
			buf = append(buf, tagString)
			buf = appendString(buf, x)
		case float64:
			buf = append(buf, tagFloat)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		case int64:
			buf = append(buf, tagInt)
			buf = binary.AppendVarint(buf, x)
		case int:
			buf = append(buf, tagInt)
			buf = binary.AppendVarint(buf, int64(x))
		case bool:
			buf = append(buf, tagBool)
			if x {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default:
			return nil, fmt.Errorf("persist: property %q has unloggable type %T", k, v)
		}
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeRecord parses one record payload. The whole buffer must be consumed
// — trailing garbage means the frame length lied, which means corruption.
func decodeRecord(b []byte) (Record, error) {
	d := decoder{b: b}
	var r Record
	op, ok := d.byte()
	if !ok {
		return r, errTruncatedRecord
	}
	r.Op = Op(op)
	if r.ID, ok = d.varint(); !ok {
		return r, errTruncatedRecord
	}
	switch r.Op {
	case OpAddNode:
		if r.Label, ok = d.str(); !ok {
			return r, errTruncatedRecord
		}
	case OpAddEdge:
		if r.Label, ok = d.str(); !ok {
			return r, errTruncatedRecord
		}
		if r.From, ok = d.varint(); !ok {
			return r, errTruncatedRecord
		}
		if r.To, ok = d.varint(); !ok {
			return r, errTruncatedRecord
		}
	case OpRemoveEdge, OpRemoveNode:
		if len(d.b) != d.off {
			return r, fmt.Errorf("persist: %d trailing bytes after record", len(d.b)-d.off)
		}
		return r, nil
	case OpSetEdgeWeight:
		v, ok := d.u64()
		if !ok {
			return r, errTruncatedRecord
		}
		r.W = math.Float64frombits(v)
		if len(d.b) != d.off {
			return r, fmt.Errorf("persist: %d trailing bytes after record", len(d.b)-d.off)
		}
		return r, nil
	case OpEpoch:
		if r.From, ok = d.varint(); !ok {
			return r, errTruncatedRecord
		}
		if len(d.b) != d.off {
			return r, fmt.Errorf("persist: %d trailing bytes after record", len(d.b)-d.off)
		}
		return r, nil
	default:
		return r, fmt.Errorf("persist: unknown op %d", op)
	}
	n, ok := d.uvarint()
	if !ok {
		return r, errTruncatedRecord
	}
	// Each property needs at least 3 bytes (empty key, tag, empty value);
	// a count beyond that is a lie about the buffer.
	if n > uint64(len(d.b)-d.off) {
		return r, fmt.Errorf("persist: property count %d exceeds record size", n)
	}
	if n > 0 {
		r.Props = make(pg.Properties, n)
	}
	for i := uint64(0); i < n; i++ {
		k, ok := d.str()
		if !ok {
			return r, errTruncatedRecord
		}
		tag, ok := d.byte()
		if !ok {
			return r, errTruncatedRecord
		}
		switch tag {
		case tagString:
			v, ok := d.str()
			if !ok {
				return r, errTruncatedRecord
			}
			r.Props[k] = v
		case tagFloat:
			v, ok := d.u64()
			if !ok {
				return r, errTruncatedRecord
			}
			r.Props[k] = math.Float64frombits(v)
		case tagInt:
			v, ok := d.varint()
			if !ok {
				return r, errTruncatedRecord
			}
			r.Props[k] = v
		case tagBool:
			v, ok := d.byte()
			if !ok {
				return r, errTruncatedRecord
			}
			r.Props[k] = v != 0
		default:
			return r, fmt.Errorf("persist: unknown property tag %q", tag)
		}
	}
	if len(d.b) != d.off {
		return r, fmt.Errorf("persist: %d trailing bytes after record", len(d.b)-d.off)
	}
	return r, nil
}

var errTruncatedRecord = fmt.Errorf("persist: truncated record")

// decoder is a bounds-checked cursor over a record payload.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) byte() (byte, bool) {
	if d.off >= len(d.b) {
		return 0, false
	}
	v := d.b[d.off]
	d.off++
	return v, true
}

func (d *decoder) varint() (int64, bool) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, false
	}
	d.off += n
	return v, true
}

func (d *decoder) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, false
	}
	d.off += n
	return v, true
}

func (d *decoder) str() (string, bool) {
	n, ok := d.uvarint()
	if !ok || n > uint64(len(d.b)-d.off) {
		return "", false
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, true
}

func (d *decoder) u64() (uint64, bool) {
	if len(d.b)-d.off < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, true
}

// recordFor translates a committed pg mutation into its WAL record.
func recordFor(m pg.Mutation) (Record, error) {
	switch m.Kind {
	case pg.MutAddNode:
		return Record{Op: OpAddNode, ID: int64(m.Node.ID), Label: string(m.Node.Label), Props: m.Node.Props}, nil
	case pg.MutAddEdge:
		return Record{Op: OpAddEdge, ID: int64(m.Edge.ID), Label: string(m.Edge.Label),
			From: int64(m.Edge.From), To: int64(m.Edge.To), Props: m.Edge.Props}, nil
	case pg.MutRemoveEdge:
		return Record{Op: OpRemoveEdge, ID: int64(m.Edge.ID)}, nil
	case pg.MutSetEdgeWeight:
		w, ok := m.Edge.Weight()
		if !ok {
			return Record{}, fmt.Errorf("persist: weight edit of edge %d carries no weight", m.Edge.ID)
		}
		return Record{Op: OpSetEdgeWeight, ID: int64(m.Edge.ID), W: w}, nil
	case pg.MutRemoveNode:
		return Record{Op: OpRemoveNode, ID: int64(m.Node.ID)}, nil
	}
	return Record{}, fmt.Errorf("persist: unknown mutation kind %d", m.Kind)
}

// Apply replays one record onto g under the same discipline as recovery:
// the graph must assign exactly the identifiers the record claims, or the
// record does not belong on this base state. The replication follower runs
// every shipped frame through it, so a stream applied out of order — or to
// a replica that silently diverged — fails loudly instead of weaving a
// graph the leader never had.
func Apply(g *pg.Graph, r Record) error { return apply(g, r) }

// apply replays one record onto g, asserting that the graph assigns the
// identifiers the record claims. A mismatch means the log does not belong to
// this base state — corrupt, refuse.
func apply(g *pg.Graph, r Record) error {
	switch r.Op {
	case OpAddNode:
		id := g.AddNode(pg.Label(r.Label), r.Props)
		if int64(id) != r.ID {
			return fmt.Errorf("persist: replayed node got id %d, log says %d", id, r.ID)
		}
	case OpAddEdge:
		id, err := g.AddEdge(pg.Label(r.Label), pg.NodeID(r.From), pg.NodeID(r.To), r.Props)
		if err != nil {
			return fmt.Errorf("persist: replaying edge %d: %w", r.ID, err)
		}
		if int64(id) != r.ID {
			return fmt.Errorf("persist: replayed edge got id %d, log says %d", id, r.ID)
		}
	case OpRemoveEdge:
		if !g.RemoveEdge(pg.EdgeID(r.ID)) {
			return fmt.Errorf("persist: replayed removal of unknown edge %d", r.ID)
		}
	case OpSetEdgeWeight:
		if err := g.SetEdgeWeight(pg.EdgeID(r.ID), r.W); err != nil {
			return fmt.Errorf("persist: replaying weight edit of edge %d: %w", r.ID, err)
		}
	case OpEpoch:
		// Epoch marks are metadata, not mutations: recovery and the
		// replication follower both intercept them before graph replay.
		// Reaching here means an interception was skipped.
		return fmt.Errorf("persist: epoch record reached graph replay (epoch %d)", r.ID)
	case OpRemoveNode:
		// Every incident-edge removal was logged as its own OpRemoveEdge
		// ahead of this record, so the node must be edge-free here. A node
		// that still has live edges means the log is incomplete or out of
		// order — removing them implicitly would silently diverge from the
		// leader's weight-edit/seq accounting, so refuse instead.
		id := pg.NodeID(r.ID)
		if n := len(g.Out(id)) + len(g.In(id)); n > 0 {
			return fmt.Errorf("persist: replayed removal of node %d with %d live incident edges", r.ID, n)
		}
		if !g.RemoveNode(id) {
			return fmt.Errorf("persist: replayed removal of unknown node %d", r.ID)
		}
	default:
		return fmt.Errorf("persist: unknown op %d", r.Op)
	}
	return nil
}
