// The write-ahead log: an append-only file of length-prefixed, CRC32C-
// checksummed frames, one per graph mutation.
//
//	frame := [u32le payload length][u32le CRC32C(payload)][payload]
//
// Appends are buffered; durability is batched. A background group-commit
// loop fsyncs every SyncEvery (bounding the loss window for writes nobody
// waited on), and Sync() forces the batch down before a fact is
// acknowledged. With SyncEvery zero every append syncs inline.
//
// On fsync failure the WAL goes fail-stop: the first error is sticky and
// every later Append/Sync returns it. Retrying fsync after a failure lies
// about durability (the kernel may have dropped the dirty pages), so the
// only honest options are "stop acknowledging" or "crash"; we stop.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"vadalink/internal/faultinject"
)

const (
	frameHeaderLen = 8
	// maxFramePayload bounds one record; anything larger in a header is
	// treated as corruption, not an allocation request.
	maxFramePayload = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walWriter is the append side of the log. Safe for concurrent use.
type walWriter struct {
	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer
	path      string
	syncEvery time.Duration
	dirty     bool
	closed    bool
	err       error // sticky first failure; fail-stop

	appends int64
	syncs   int64
	bytes   int64

	stopc  chan struct{}
	doneWG sync.WaitGroup
}

// openWAL opens (creating if needed) the log at path for appending and
// starts the group-commit loop when syncEvery > 0.
func openWAL(path string, syncEvery time.Duration) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: stat wal: %w", err)
	}
	w := &walWriter{
		f:         f,
		bw:        bufio.NewWriterSize(f, 1<<16),
		path:      path,
		syncEvery: syncEvery,
		bytes:     st.Size(),
		stopc:     make(chan struct{}),
	}
	if syncEvery > 0 {
		w.doneWG.Add(1)
		go w.groupCommitLoop()
	}
	return w, nil
}

func (w *walWriter) groupCommitLoop() {
	defer w.doneWG.Done()
	t := time.NewTicker(w.syncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = w.Sync()
		case <-w.stopc:
			return
		}
	}
}

// Append encodes r as a frame and writes it to the log buffer. It returns
// once the bytes are buffered — call Sync before acknowledging the mutation
// to anyone. With SyncEvery zero the frame is also synced before returning.
func (w *walWriter) Append(r Record) error {
	payload, err := appendRecord(nil, r)
	if err != nil {
		return w.fail(err)
	}
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if ferr := faultinject.FireErr(faultinject.SitePersistAppend); ferr != nil {
		// Simulated torn write: half the frame reaches the file, then the
		// "process dies". Flush what made it so the torn tail is on disk for
		// the recovery path to find.
		_, _ = w.bw.Write(frame[:len(frame)/2])
		_ = w.bw.Flush()
		w.err = ferr
		return ferr
	}
	if _, err := w.bw.Write(frame); err != nil {
		w.err = fmt.Errorf("persist: appending wal record: %w", err)
		return w.err
	}
	w.dirty = true
	w.appends++
	w.bytes += int64(len(frame))
	if w.syncEvery == 0 {
		return w.syncLocked()
	}
	return nil
}

// Sync flushes buffered frames and fsyncs the file. After Sync returns nil,
// every previously appended record survives a crash.
func (w *walWriter) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

func (w *walWriter) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("persist: flushing wal: %w", err)
		return w.err
	}
	if err := faultinject.FireErr(faultinject.SitePersistSync); err != nil {
		w.err = fmt.Errorf("persist: syncing wal: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("persist: syncing wal: %w", err)
		return w.err
	}
	w.dirty = false
	w.syncs++
	return nil
}

func (w *walWriter) fail(err error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
	return err
}

// Err returns the sticky failure, if any.
func (w *walWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close stops the group-commit loop, syncs outstanding frames and closes
// the file. The sync error (if any) is returned — callers acking on Close
// must check it. Closing twice is a no-op.
func (w *walWriter) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stopc)
	w.doneWG.Wait()
	syncErr := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	return syncErr
}

// stats snapshots the writer's counters.
func (w *walWriter) stats() (appends, syncs, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs, w.bytes
}

// NextFrame examines the head of data for one complete, CRC-valid WAL frame
// and returns its total length (header + payload). ok is false when the
// bytes at the head are not yet (or never will be) a whole valid frame — a
// short header, an impossible length, a short payload or a checksum
// mismatch all look the same from here: wait for more bytes or give up,
// the caller knows which. The replication leader uses it to cut frames out
// of a growing log file; the follower to validate frames off the wire.
func NextFrame(data []byte) (frameLen int, ok bool) {
	if len(data) < frameHeaderLen {
		return 0, false
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > maxFramePayload || int(n) > len(data)-frameHeaderLen {
		return 0, false
	}
	payload := data[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[4:8]) {
		return 0, false
	}
	return frameHeaderLen + int(n), true
}

// FrameOp peeks at the operation byte of a complete frame without decoding
// it. The replication leader uses it to classify frames on the hot shipping
// path: epoch marks are sequence-neutral and must not count against the
// skip arithmetic, but must always ship.
func FrameOp(frame []byte) (Op, bool) {
	if len(frame) <= frameHeaderLen {
		return 0, false
	}
	return Op(frame[frameHeaderLen]), true
}

// DecodeFrame decodes exactly one complete frame into its Record. The frame
// must be whole (NextFrame-validated length equal to len(frame)); anything
// else — including a CRC-valid payload that does not decode — is corruption.
func DecodeFrame(frame []byte) (Record, error) {
	n, ok := NextFrame(frame)
	if !ok || n != len(frame) {
		return Record{}, fmt.Errorf("persist: corrupt frame (%d bytes)", len(frame))
	}
	return decodeRecord(frame[frameHeaderLen:n])
}

// scanFrames walks the framed log in data, calling fn for each payload that
// checks out. It returns the byte offset up to which the log is valid and
// whether the tail beyond that offset is torn (short header, impossible
// length, short payload, or checksum mismatch — the signatures of a crash
// mid-write). An error from fn aborts the scan and is returned as scanErr;
// torn tails are NOT errors, they are what recovery truncates.
func scanFrames(data []byte, fn func(payload []byte) error) (goodLen int, torn bool, scanErr error) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, false, nil
		}
		if len(rest) < frameHeaderLen {
			return off, true, nil
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n > maxFramePayload || int(n) > len(rest)-frameHeaderLen {
			return off, true, nil
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return off, true, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, false, err
			}
		}
		off += frameHeaderLen + int(n)
	}
}

// replayWAL reads the log at path, applies every valid record via fn, and
// truncates a torn tail in place so the next append continues from a clean
// boundary. Missing files replay as empty. It returns the number of records
// applied and whether a torn tail was cut.
func replayWAL(path string, fn func(Record) error) (records int, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("persist: reading wal: %w", err)
	}
	goodLen, torn, scanErr := scanFrames(data, func(payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		records++
		return fn(rec)
	})
	if scanErr != nil {
		return records, torn, fmt.Errorf("persist: wal %s: %w", path, scanErr)
	}
	if torn {
		if err := os.Truncate(path, int64(goodLen)); err != nil {
			return records, torn, fmt.Errorf("persist: truncating torn wal tail: %w", err)
		}
	}
	return records, torn, nil
}
