package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"

	"vadalink/internal/pg"
)

// The replication sequence number is a pure function of graph state: every
// mutation kind advances it by exactly one, and recovery — from the
// snapshot, the WAL, or both — reproduces it.
func TestSeqTracksEveryMutationKind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.Graph()
	if got := s.Seq(); got != 0 {
		t.Fatalf("fresh store Seq = %d, want 0", got)
	}
	a := g.AddNode(pg.LabelCompany, nil) // seq 1
	b := g.AddNode(pg.LabelCompany, nil) // seq 2
	e := g.MustAddEdgeWeighted(a, b, 0.5)
	g.MustAddEdgeWeighted(a, b, 0.3) // parallel edge, seq 4
	g.RemoveEdge(e)                  // seq 5
	if got := s.Seq(); got != 5 {
		t.Fatalf("Seq after 5 mutations = %d, want 5", got)
	}
	if got := SeqOfGraph(g); got != 5 {
		t.Fatalf("SeqOfGraph = %d, want 5", got)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from the WAL alone reproduces the sequence number.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Seq(); got != 5 {
		t.Fatalf("recovered Seq = %d, want 5", got)
	}
	gen, base, seq := s2.Position()
	if gen != 0 || base != 0 || seq != 5 {
		t.Fatalf("Position = (%d, %d, %d), want (0, 0, 5)", gen, base, seq)
	}
}

// Rotation moves base up to the current sequence number: the new WAL's
// frames continue the global numbering, and recovery after a rotation
// reports the same position.
func TestPositionAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.Graph()
	for i := 0; i < 7; i++ {
		g.AddNode(pg.LabelCompany, nil)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	gen, base, seq := s.Position()
	if gen != 1 || base != 7 || seq != 7 {
		t.Fatalf("Position after rotation = (%d, %d, %d), want (1, 7, 7)", gen, base, seq)
	}
	g.AddNode(pg.LabelCompany, nil)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	gen, base, seq = s2.Position()
	if gen != 1 || base != 7 || seq != 8 {
		t.Fatalf("recovered Position = (%d, %d, %d), want (1, 7, 8)", gen, base, seq)
	}
}

// ReplaceGraph adopts a foreign graph wholesale (the snapshot-bootstrap
// path): the store's position jumps to the new graph's sequence number, the
// state is durable immediately, and capture follows the new graph.
func TestReplaceGraph(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Graph().AddNode(pg.LabelPerson, nil) // local state that will be discarded

	leader := pg.New()
	for i := 0; i < 4; i++ {
		leader.AddNode(pg.LabelCompany, pg.Properties{"i": int64(i)})
	}
	leader.MustAddEdgeWeighted(0, 1, 0.6)
	adopted := leader.Clone()
	if err := s.ReplaceGraph(adopted); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Seq(), SeqOfGraph(leader); got != want {
		t.Fatalf("Seq after ReplaceGraph = %d, want %d", got, want)
	}
	if s.Graph() != adopted {
		t.Fatal("Graph() does not return the adopted graph")
	}
	// Mutations of the adopted graph are captured and replayable.
	adopted.AddNode(pg.LabelCompany, nil)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Seq(), SeqOfGraph(leader)+1; got != want {
		t.Fatalf("recovered Seq = %d, want %d", got, want)
	}
	if n := s2.Graph().NumNodes(); n != 5 {
		t.Fatalf("recovered %d nodes, want 5", n)
	}
	if s2.Graph().Node(0).Label != pg.LabelCompany {
		t.Fatal("recovered graph kept the pre-bootstrap node")
	}
}

// NextFrame cuts exactly the frames scanFrames would accept, and
// DecodeFrame round-trips a record while rejecting corruption.
func TestNextFrameAndDecodeFrame(t *testing.T) {
	rec := Record{Op: OpAddNode, ID: 7, Label: "Company", Props: pg.Properties{"name": "ACME"}}
	payload, err := appendRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameFor(payload)

	if _, ok := NextFrame(frame[:5]); ok {
		t.Fatal("NextFrame accepted a short header")
	}
	if _, ok := NextFrame(frame[:len(frame)-1]); ok {
		t.Fatal("NextFrame accepted a short payload")
	}
	n, ok := NextFrame(append(frame, frame...))
	if !ok || n != len(frame) {
		t.Fatalf("NextFrame = (%d, %v), want (%d, true)", n, ok, len(frame))
	}

	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.ID != rec.ID || got.Label != rec.Label || got.Props["name"] != "ACME" {
		t.Fatalf("DecodeFrame = %+v, want %+v", got, rec)
	}

	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-1] ^= 0xFF
	if _, ok := NextFrame(corrupt); ok {
		t.Fatal("NextFrame accepted a CRC-corrupt frame")
	}
	if _, err := DecodeFrame(corrupt); err == nil {
		t.Fatal("DecodeFrame accepted a CRC-corrupt frame")
	}
	if _, err := DecodeFrame(append(frame, frame...)); err == nil {
		t.Fatal("DecodeFrame accepted two concatenated frames")
	}
}

// DecodeSnapshot accepts exactly what readSnapshot accepts and rejects a
// flipped byte anywhere in the payload.
func TestDecodeSnapshotBytes(t *testing.T) {
	dir := t.TempDir()
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	g.MustAddEdgeWeighted(a, b, 0.9)
	path, _, err := writeSnapshot(dir, 3, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.NumNodes() != 2 || got.NumEdges() != 1 {
		t.Fatalf("decoded %d nodes / %d edges, want 2 / 1", got.NumNodes(), got.NumEdges())
	}
	if SeqOfGraph(got) != SeqOfGraph(g) {
		t.Fatalf("decoded seq %d != original %d", SeqOfGraph(got), SeqOfGraph(g))
	}
	for i := range data {
		if i%7 != 0 { // sampling keeps the test fast; corruption anywhere must fail
			continue
		}
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x55
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("DecodeSnapshot accepted a byte flip at offset %d", i)
		}
	}
}

// frameFor wraps a record payload in the on-disk frame envelope, mirroring
// walWriter.Append.
func frameFor(payload []byte) []byte {
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}
