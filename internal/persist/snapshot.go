// Checksummed full snapshots. A snapshot file wraps the internal/store
// binary format (which preserves IDs and counters) in an envelope that makes
// corruption detectable:
//
//	[8-byte magic "VKGSNAP2"][epoch header][store payload][u64le payload length][u32le CRC32C(payload)]
//
// where the epoch header is [u32le count][count × (u64le epoch, u64le
// startSeq)] — the replication-epoch history, inside the checksummed
// payload so a corrupted mark is caught like any other corruption.
// VKGSNAP1 files (no epoch header) still load, as epoch history ∅.
//
// Publication is crash-atomic: the body is written to a temp file in the
// same directory, fsynced, renamed over the final name, and the directory
// fsynced — a crash at any point leaves either the previous snapshot or the
// new one, never a half-written file under the real name. A snapshot that
// fails its trailer check on load is skipped, falling back to the previous
// generation plus the surviving WALs.
package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"vadalink/internal/faultinject"
	"vadalink/internal/pg"
	"vadalink/internal/store"
)

const (
	snapMagicV1 = "VKGSNAP1"
	snapMagic   = "VKGSNAP2"
)

// snapTrailerLen = u64 payload length + u32 CRC32C.
const snapTrailerLen = 12

// writeSnapshot publishes the graph (and the epoch history) as the snapshot
// for generation gen.
func writeSnapshot(dir string, gen uint64, g *pg.Graph, marks []EpochMark) (path string, bytesWritten int64, err error) {
	var body bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(marks)))
	body.Write(hdr[:])
	for _, m := range marks {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[0:8], m.Epoch)
		binary.LittleEndian.PutUint64(rec[8:16], uint64(m.StartSeq))
		body.Write(rec[:])
	}
	if err := store.Write(&body, g); err != nil {
		return "", 0, err
	}
	payload := body.Bytes()

	final := snapPath(dir, gen)
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", 0, fmt.Errorf("persist: creating snapshot temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var trailer [snapTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(len(payload)))
	binary.LittleEndian.PutUint32(trailer[8:12], crc32.Checksum(payload, crcTable))
	for _, chunk := range [][]byte{[]byte(snapMagic), payload, trailer[:]} {
		if _, err = tmp.Write(chunk); err != nil {
			return "", 0, fmt.Errorf("persist: writing snapshot: %w", err)
		}
	}
	if err = tmp.Sync(); err != nil {
		return "", 0, fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return "", 0, fmt.Errorf("persist: closing snapshot: %w", err)
	}
	// The crash-between-fsync-and-rename window: an injected fault here
	// leaves the temp file behind and the old generation authoritative,
	// exactly like a real crash would.
	if err = faultinject.FireErr(faultinject.SitePersistRename); err != nil {
		return "", 0, fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	if err = os.Rename(tmp.Name(), final); err != nil {
		return "", 0, fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return "", 0, err
	}
	total := int64(len(snapMagic) + len(payload) + snapTrailerLen)
	return final, total, nil
}

// readSnapshot loads and verifies the snapshot at path. Corruption —
// wrong magic, bad trailer, checksum mismatch, undecodable payload — is an
// error; the caller falls back to an older generation.
func readSnapshot(path string) (*pg.Graph, []EpochMark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	g, marks, err := DecodeSnapshotMarks(data)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: snapshot %s: %w", path, err)
	}
	return g, marks, nil
}

// DecodeSnapshot verifies and decodes the contents of a snapshot file,
// discarding the epoch history. See DecodeSnapshotMarks.
func DecodeSnapshot(data []byte) (*pg.Graph, error) {
	g, _, err := DecodeSnapshotMarks(data)
	return g, err
}

// DecodeSnapshotMarks verifies and decodes the contents of a snapshot file
// (VKGSNAP2 envelope; VKGSNAP1 accepted with an empty epoch history). The
// replication follower runs the bytes a leader ships through it, so a
// snapshot corrupted on the wire is rejected by the same checks that reject
// one corrupted on disk.
func DecodeSnapshotMarks(data []byte) (*pg.Graph, []EpochMark, error) {
	if len(data) < len(snapMagic)+snapTrailerLen {
		return nil, nil, fmt.Errorf("persist: snapshot too short (%d bytes)", len(data))
	}
	magic := string(data[:len(snapMagic)])
	if magic != snapMagic && magic != snapMagicV1 {
		return nil, nil, fmt.Errorf("persist: not a snapshot (magic %q)", data[:len(snapMagic)])
	}
	payload := data[len(snapMagic) : len(data)-snapTrailerLen]
	trailer := data[len(data)-snapTrailerLen:]
	if wantLen := binary.LittleEndian.Uint64(trailer[0:8]); wantLen != uint64(len(payload)) {
		return nil, nil, fmt.Errorf("persist: snapshot length %d != trailer %d", len(payload), wantLen)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(trailer[8:12]); got != want {
		return nil, nil, fmt.Errorf("persist: snapshot checksum %08x != trailer %08x", got, want)
	}
	var marks []EpochMark
	if magic == snapMagic {
		if len(payload) < 4 {
			return nil, nil, fmt.Errorf("persist: snapshot epoch header truncated")
		}
		count := binary.LittleEndian.Uint32(payload[:4])
		payload = payload[4:]
		if uint64(count)*16 > uint64(len(payload)) {
			return nil, nil, fmt.Errorf("persist: snapshot epoch count %d exceeds payload", count)
		}
		if count > 0 {
			marks = make([]EpochMark, count)
			for i := range marks {
				marks[i] = EpochMark{
					Epoch:    binary.LittleEndian.Uint64(payload[i*16:]),
					StartSeq: int64(binary.LittleEndian.Uint64(payload[i*16+8:])),
				}
			}
			payload = payload[int(count)*16:]
		}
	}
	g, err := store.Read(bytes.NewReader(payload))
	if err != nil {
		return nil, nil, fmt.Errorf("persist: snapshot payload: %w", err)
	}
	return g, marks, nil
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.vsnap", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", gen))
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing dir: %w", err)
	}
	return nil
}
