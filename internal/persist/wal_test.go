package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vadalink/internal/pg"
)

func encodeFrame(t *testing.T, r Record) []byte {
	t.Helper()
	payload, err := appendRecord(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}

func TestRecordCodecRoundTrip(t *testing.T) {
	cases := []Record{
		{Op: OpAddNode, ID: 0, Label: "Company", Props: pg.Properties{"name": "ACME"}},
		{Op: OpAddNode, ID: 1 << 40, Label: "Person",
			Props: pg.Properties{"name": "X", "age": int64(-3), "pep": false, "w": 0.25}},
		{Op: OpAddNode, ID: 2, Label: ""},
		{Op: OpAddEdge, ID: 7, Label: "Shareholding", From: 1, To: 2,
			Props: pg.Properties{"weight": 0.51}},
		{Op: OpRemoveEdge, ID: 7},
	}
	for _, want := range cases {
		buf, err := appendRecord(nil, want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		// int properties are canonicalised to int64 on the wire.
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestRecordEncodeRejectsUnloggableProp(t *testing.T) {
	_, err := appendRecord(nil, Record{Op: OpAddNode, ID: 0, Label: "X",
		Props: pg.Properties{"bad": []string{"not", "loggable"}}})
	if err == nil {
		t.Fatal("slice-valued property encoded silently")
	}
}

func TestScanFramesCleanLog(t *testing.T) {
	var log []byte
	want := []Record{
		{Op: OpAddNode, ID: 0, Label: "Company", Props: pg.Properties{"name": "A"}},
		{Op: OpAddEdge, ID: 0, Label: "Shareholding", From: 0, To: 0, Props: pg.Properties{"weight": 1.0}},
		{Op: OpRemoveEdge, ID: 0},
	}
	for _, r := range want {
		log = append(log, encodeFrame(t, r)...)
	}
	var got []Record
	goodLen, torn, err := scanFrames(log, func(p []byte) error {
		r, err := decodeRecord(p)
		got = append(got, r)
		return err
	})
	if err != nil || torn {
		t.Fatalf("clean log: torn=%v err=%v", torn, err)
	}
	if goodLen != len(log) {
		t.Errorf("goodLen %d != %d", goodLen, len(log))
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scan returned %+v, want %+v", got, want)
	}
}

func TestScanFramesTornTails(t *testing.T) {
	full := encodeFrame(t, Record{Op: OpAddNode, ID: 0, Label: "Company"})
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0x01
	huge := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(huge[0:4], maxFramePayload+1)

	cases := map[string][]byte{
		"short header":      append(append([]byte(nil), full...), 0x01, 0x02),
		"short payload":     append(append([]byte(nil), full...), full[:frameHeaderLen+1]...),
		"checksum mismatch": append(append([]byte(nil), full...), flipped...),
		"impossible length": append(append([]byte(nil), full...), huge...),
	}
	for name, log := range cases {
		goodLen, torn, err := scanFrames(log, nil)
		if err != nil {
			t.Errorf("%s: scan error %v", name, err)
		}
		if !torn {
			t.Errorf("%s: tail not reported torn", name)
		}
		if goodLen != len(full) {
			t.Errorf("%s: goodLen %d, want %d (the one valid frame)", name, goodLen, len(full))
		}
	}
}

func TestReplayWALTruncatesInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0.log")
	full := encodeFrame(t, Record{Op: OpAddNode, ID: 0, Label: "Company"})
	log := append(append([]byte(nil), full...), full[:5]...) // torn second frame
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}
	n, torn, err := replayWAL(path, func(Record) error { return nil })
	if err != nil || n != 1 || !torn {
		t.Fatalf("replay: n=%d torn=%v err=%v", n, torn, err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, full) {
		t.Fatalf("file not truncated to the valid prefix: %d bytes, want %d", len(after), len(full))
	}
	// Missing file replays as empty.
	n, torn, err = replayWAL(filepath.Join(dir, "nope.log"), nil)
	if err != nil || n != 0 || torn {
		t.Fatalf("missing file: n=%d torn=%v err=%v", n, torn, err)
	}
}

func TestWALAppendSyncReopenAppend(t *testing.T) {
	// The append-only contract across restarts: records written in two
	// separate openWAL sessions all replay, in order.
	path := filepath.Join(t.TempDir(), "wal-0.log")
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Op: OpAddNode, ID: 0, Label: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Record{Op: OpAddNode, ID: 1, Label: "B"}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	n, torn, err := replayWAL(path, func(r Record) error { ids = append(ids, r.ID); return nil })
	if err != nil || torn || n != 2 {
		t.Fatalf("replay: n=%d torn=%v err=%v", n, torn, err)
	}
	if ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("replay order %v", ids)
	}
}
