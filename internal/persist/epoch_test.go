package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"

	"vadalink/internal/pg"
)

// RecordEpoch survives kill -9-style reopen: marks come back from the WAL,
// the current epoch is the newest mark, and the replication position is
// unaffected (epoch records are sequence-neutral).
func TestEpochSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	wantSeq := s.Seq()
	if wantSeq != 2 {
		t.Fatalf("seq = %d, want 2", wantSeq)
	}
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", s.Epoch())
	}
	if err := s.RecordEpoch(EpochMark{Epoch: 1, StartSeq: wantSeq}); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch after RecordEpoch = %d, want 1", s.Epoch())
	}
	if got := s.Seq(); got != wantSeq {
		t.Fatalf("RecordEpoch moved seq %d -> %d; epoch records must be seq-neutral", wantSeq, got)
	}
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "C"})
	if err := s.RecordEpoch(EpochMark{Epoch: 3, StartSeq: s.Seq()}); err != nil {
		t.Fatal(err)
	}
	// No Close: reopening the same directory is the kill -9 recovery path.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Epoch() != 3 {
		t.Fatalf("recovered epoch = %d, want 3", s2.Epoch())
	}
	marks := s2.EpochMarks()
	if len(marks) != 2 || marks[0] != (EpochMark{1, 2}) || marks[1] != (EpochMark{3, 3}) {
		t.Fatalf("recovered marks = %v, want [{1 2} {3 3}]", marks)
	}
	if got := s2.Seq(); got != 3 {
		t.Fatalf("recovered seq = %d, want 3", got)
	}
	_, base, seq := s2.Position()
	if base != seq-3 {
		t.Fatalf("recovered base %d with seq %d: epoch records leaked into base arithmetic", base, seq)
	}
}

// Epoch marks survive snapshot rotation: after Snapshot deletes the WAL
// that held the OpEpoch records, the history must come back from the
// snapshot header.
func TestEpochSurvivesSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	if err := s.RecordEpoch(EpochMark{Epoch: 2, StartSeq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Epoch() != 2 {
		t.Fatalf("epoch after rotation+reopen = %d, want 2", s2.Epoch())
	}
	if marks := s2.EpochMarks(); len(marks) != 1 || marks[0] != (EpochMark{2, 1}) {
		t.Fatalf("marks after rotation+reopen = %v, want [{2 1}]", marks)
	}
}

// Epochs only move forward: recording a non-advancing epoch is an error and
// leaves the history untouched.
func TestEpochMustAdvance(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RecordEpoch(EpochMark{Epoch: 5, StartSeq: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordEpoch(EpochMark{Epoch: 5, StartSeq: 0}); err == nil {
		t.Fatal("RecordEpoch accepted a non-advancing epoch")
	}
	if err := s.RecordEpoch(EpochMark{Epoch: 4, StartSeq: 0}); err == nil {
		t.Fatal("RecordEpoch accepted a regressing epoch")
	}
	if s.Epoch() != 5 || len(s.EpochMarks()) != 1 {
		t.Fatalf("history disturbed: epoch %d, marks %v", s.Epoch(), s.EpochMarks())
	}
}

// DivergedSince implements the fencing rule: a peer's tail is fenced off
// iff some later epoch opened below the peer's sequence number.
func TestDivergedSince(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.Graph()
	// The fence opens at seq 5, then the new epoch writes five more records
	// (RecordEpoch clamps StartSeq to the live seq, so the mark must be
	// recorded at its fence time, like a real promotion).
	for i := 0; i < 5; i++ {
		g.AddNode(pg.LabelCompany, nil)
	}
	if err := s.RecordEpoch(EpochMark{Epoch: 2, StartSeq: 5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		g.AddNode(pg.LabelCompany, nil)
	}
	cases := []struct {
		epoch uint64
		seq   int64
		want  bool
	}{
		{0, 3, false},  // stopped before the fence point: clean prefix
		{0, 5, false},  // stopped exactly at the fence point: clean prefix
		{0, 7, true},   // logged past the fence under the old epoch: fenced off
		{2, 7, false},  // already in the new epoch: its records are canon
		{1, 10, true},  // old epoch, past the fence
		{2, 10, false}, // current epoch, any seq
	}
	for _, c := range cases {
		if got := s.DivergedSince(c.epoch, c.seq); got != c.want {
			t.Errorf("DivergedSince(%d, %d) = %v, want %v", c.epoch, c.seq, got, c.want)
		}
	}
}

// A V1 snapshot (no epoch header) still loads, with an empty history — the
// upgrade path from pre-epoch data directories.
func TestSnapshotV1Compat(t *testing.T) {
	g := pg.New()
	g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	dir := t.TempDir()
	path, _, err := writeSnapshot(dir, 1, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Decode the V2 bytes, then re-encode the payload as a V1 file: same
	// store payload, V1 magic, no epoch header.
	got, marks, err := DecodeSnapshotMarks(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 0 {
		t.Fatalf("fresh snapshot carries marks %v", marks)
	}
	if got.NumNodes() != 1 {
		t.Fatalf("decoded %d nodes, want 1", got.NumNodes())
	}
	// Re-wrap the bare store payload as a V1 file: V1 magic, no epoch
	// header, trailer recomputed for the shorter payload.
	storePayload := data[len(snapMagic)+4 : len(data)-snapTrailerLen]
	var trailer [snapTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(len(storePayload)))
	binary.LittleEndian.PutUint32(trailer[8:12], crc32.Checksum(storePayload, crcTable))
	v1 := append([]byte(snapMagicV1), storePayload...)
	v1 = append(v1, trailer[:]...)
	g1, marks1, err := DecodeSnapshotMarks(v1)
	if err != nil {
		t.Fatalf("V1 snapshot rejected: %v", err)
	}
	if len(marks1) != 0 || g1.NumNodes() != 1 {
		t.Fatalf("V1 decode: %d nodes, marks %v", g1.NumNodes(), marks1)
	}
}

// FrameOp classifies frames without decoding them.
func TestFrameOp(t *testing.T) {
	payload, err := appendRecord(nil, Record{Op: OpEpoch, ID: 7, From: 3})
	if err != nil {
		t.Fatal(err)
	}
	frame := frameFor(payload)
	op, ok := FrameOp(frame)
	if !ok || op != OpEpoch {
		t.Fatalf("FrameOp = %v, %v; want OpEpoch, true", op, ok)
	}
	if _, ok := FrameOp(frame[:frameHeaderLen]); ok {
		t.Fatal("FrameOp accepted a payload-less frame")
	}
	rec, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != OpEpoch || rec.ID != 7 || rec.From != 3 {
		t.Fatalf("decoded epoch record = %+v", rec)
	}
}

// A fence mark can only describe records appended after it: RecordEpoch
// clamps StartSeq up to the current sequence number. This is the honesty
// invariant behind DivergedSince — a member that wrote past a fence point
// and then grants a newer fence at a lower StartSeq must not retroactively
// file its divergent tail under the new epoch, or the reset bootstrap that
// truncates the tail would never trigger.
func TestRecordEpochClampsStartSeq(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.Graph()
	for i := 0; i < 10; i++ {
		g.AddNode(pg.LabelCompany, nil)
	}
	// Grant below our seq (candidate with a newer fact epoch but a shorter
	// log): the mark must land at 10, not 6.
	if err := s.RecordEpoch(EpochMark{Epoch: 2, StartSeq: 6}); err != nil {
		t.Fatal(err)
	}
	marks := s.EpochMarks()
	if len(marks) != 1 || marks[0] != (EpochMark{Epoch: 2, StartSeq: 10}) {
		t.Fatalf("marks = %v, want [{2 10}]", marks)
	}
	// Our ten records predate the fence: the newest fact's epoch is still 0.
	if got := s.LastEpoch(); got != 0 {
		t.Fatalf("LastEpoch after clamped grant = %d, want 0", got)
	}
	// A record appended after the mark belongs to the new epoch.
	g.AddNode(pg.LabelCompany, nil)
	if got := s.LastEpoch(); got != 2 {
		t.Fatalf("LastEpoch after post-fence record = %d, want 2", got)
	}
	// Granting above our seq (we are behind the fence point) is untouched.
	if err := s.RecordEpoch(EpochMark{Epoch: 3, StartSeq: 15}); err != nil {
		t.Fatal(err)
	}
	if marks = s.EpochMarks(); marks[len(marks)-1] != (EpochMark{Epoch: 3, StartSeq: 15}) {
		t.Fatalf("marks = %v, want tail {3 15}", marks)
	}
	// The clamp is durable: reopen and re-check.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if marks = s2.EpochMarks(); len(marks) != 2 || marks[0] != (EpochMark{2, 10}) {
		t.Fatalf("recovered marks = %v, want [{2 10} {3 15}]", marks)
	}
}
