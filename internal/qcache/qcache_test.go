package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vadalink/internal/ivm"
	"vadalink/internal/pg"
)

func TestHitMissAndSeqStamp(t *testing.T) {
	c := New(1 << 20)
	v, seq, hit, err := c.Do("k1", ClassDerived, 7, func() ([]byte, error) { return []byte("answer"), nil })
	if err != nil || hit || string(v) != "answer" || seq != 7 {
		t.Fatalf("first Do: v=%q seq=%d hit=%v err=%v", v, seq, hit, err)
	}
	v, seq, hit, err = c.Do("k1", ClassDerived, 9, func() ([]byte, error) {
		t.Fatal("compute must not run on a hit")
		return nil, nil
	})
	if err != nil || !hit || string(v) != "answer" || seq != 7 {
		t.Fatalf("second Do must hit at the original seq: v=%q seq=%d hit=%v err=%v", v, seq, hit, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	if _, _, _, err := c.Do("k", ClassDerived, 1, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	calls := 0
	if _, _, hit, err := c.Do("k", ClassDerived, 1, func() ([]byte, error) { calls++; return []byte("ok"), nil }); err != nil || hit {
		t.Fatalf("after an error the next Do must recompute: hit=%v err=%v", hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute calls: %d", calls)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(1 << 20)
	var computes atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, _, err := c.Do("hot", ClassDerived, 3, func() ([]byte, error) {
				computes.Add(1)
				<-gate
				return []byte("once"), nil
			})
			if err != nil || string(v) != "once" {
				t.Errorf("worker: v=%q err=%v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("thundering herd ran %d computations, want 1", n)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	// Budget fits roughly 4 of the 1 KiB entries (plus overhead).
	c := New(4 * (1024 + 8 + entryOverhead))
	payload := make([]byte, 1024)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("key-%03d", i), ClassDerived, uint64(i), payload)
	}
	st := c.Stats()
	if st.Entries != 4 || st.Evictions != 4 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	// LRU: the oldest keys are gone, the newest survive.
	if _, _, ok := c.Get("key-000"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, _, ok := c.Get("key-007"); !ok {
		t.Fatal("newest entry should have survived")
	}
	// An entry larger than the whole budget is refused, not thrashed.
	c.Put("giant", ClassDerived, 9, make([]byte, 1<<20))
	if _, _, ok := c.Get("giant"); ok {
		t.Fatal("over-budget entry must not be stored")
	}
}

// journal builders matching the IVM vocabulary.
func shareholdingEdge(from, to pg.NodeID) []pg.Mutation {
	return []pg.Mutation{{Kind: pg.MutAddEdge, Edge: &pg.Edge{From: from, To: to, Label: pg.LabelShareholding, Props: pg.Properties{pg.WeightProp: 0.5}}}}
}

func personNode(id pg.NodeID) []pg.Mutation {
	return []pg.Mutation{{Kind: pg.MutAddNode, Node: &pg.Node{ID: id, Label: pg.LabelPerson}}}
}

func TestInvalidationFollowsIVMClassifier(t *testing.T) {
	c := New(1 << 20)
	c.Put("control(4,Y)", ClassDerived, 10, []byte("derived"))
	c.Put("custom-program", ClassAny, 10, []byte("custom"))

	// Irrelevant commit (person node, no edges): derived entries survive,
	// custom-program entries drop.
	muts := personNode(99)
	if ivm.RelevantMutations(muts) {
		t.Fatal("person node should classify irrelevant")
	}
	c.OnCommit(11, ivm.RelevantMutations(muts))
	if _, seq, ok := c.Get("control(4,Y)"); !ok || seq != 10 {
		t.Fatalf("derived entry must survive an irrelevant commit (ok=%v seq=%d)", ok, seq)
	}
	if _, _, ok := c.Get("custom-program"); ok {
		t.Fatal("ClassAny entry must drop on every commit")
	}

	// Relevant commit (shareholding edge): everything flushes.
	muts = shareholdingEdge(1, 2)
	if !ivm.RelevantMutations(muts) {
		t.Fatal("shareholding edge should classify relevant")
	}
	c.OnCommit(12, ivm.RelevantMutations(muts))
	if _, _, ok := c.Get("control(4,Y)"); ok {
		t.Fatal("derived entry must drop on a relevant commit")
	}
	st := c.Stats()
	if st.Invalidations != 2 {
		t.Fatalf("invalidations: %+v", st)
	}
}

func TestRelevantMutationsClassification(t *testing.T) {
	cases := []struct {
		name string
		muts []pg.Mutation
		want bool
	}{
		{"empty", nil, false},
		{"person add", personNode(1), false},
		{"company add", []pg.Mutation{{Kind: pg.MutAddNode, Node: &pg.Node{ID: 1, Label: pg.LabelCompany}}}, true},
		{"node remove", []pg.Mutation{{Kind: pg.MutRemoveNode, Node: &pg.Node{ID: 1, Label: pg.LabelPerson}}}, true},
		{"shareholding edge", shareholdingEdge(1, 2), true},
		{"weight change", []pg.Mutation{{Kind: pg.MutSetEdgeWeight, Edge: &pg.Edge{From: 1, To: 2, Label: pg.LabelShareholding, Props: pg.Properties{pg.WeightProp: 0.9}}}}, true},
		{"family edge", []pg.Mutation{{Kind: pg.MutAddEdge, Edge: &pg.Edge{From: 1, To: 2, Label: pg.LabelFamily}}}, false},
		{"nil node", []pg.Mutation{{Kind: pg.MutAddNode}}, true},
		{"nil edge", []pg.Mutation{{Kind: pg.MutAddEdge}}, true},
		{"mixed irrelevant+relevant", append(personNode(3), shareholdingEdge(1, 2)...), true},
	}
	for _, tc := range cases {
		if got := ivm.RelevantMutations(tc.muts); got != tc.want {
			t.Errorf("%s: RelevantMutations = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFlushDuringInflightIsNotStored(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	finish := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, hit, err := c.Do("k", ClassDerived, 5, func() ([]byte, error) {
			close(started)
			<-finish
			return []byte("stale"), nil
		})
		// The caller still gets its answer (its request predates the commit)…
		if err != nil || hit || string(v) != "stale" {
			panic(fmt.Sprintf("inflight caller: v=%q hit=%v err=%v", v, hit, err))
		}
	}()
	<-started
	c.OnCommit(6, true) // relevant commit lands mid-computation
	close(finish)
	<-done
	// …but the stale result must not serve post-commit readers.
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("result computed before the commit must not be cached after it")
	}
}

func TestFlush(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", ClassDerived, 1, []byte("x"))
	c.Put("b", ClassAny, 1, []byte("y"))
	c.Flush()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Invalidations != 2 {
		t.Fatalf("after Flush: %+v", st)
	}
}

func TestDefaultBudget(t *testing.T) {
	c := New(0)
	if st := c.Stats(); st.MaxBytes != DefaultMaxBytes {
		t.Fatalf("default budget: %+v", st)
	}
}
