// Package qcache is the query-result cache behind the goal-oriented read
// endpoints: marshaled responses keyed by (goal, bindings, program), stamped
// with the store.Versioned sequence they were computed at, and invalidated
// by the commit stream.
//
// The invalidation contract leans on the IVM commit classifier
// (ivm.RelevantMutations): a commit that cannot move the derived relations
// — a person node, a family edge, an augmentation-materialized link — keeps
// every derived-class entry alive, so hot point queries survive unrelated
// write traffic; a relevant commit flushes everything. Entries computed
// from caller-supplied programs (ClassAny) cannot be classified against a
// fixed rule set and drop on every commit.
//
// Concurrency: lookups and stores take one mutex; misses are single-flight
// per key, so a thundering herd on a cold hot-key runs one chase, not N.
// A flush during an in-flight computation orphans the call — waiters still
// get its result (their requests began before the commit), but the result
// is not stored, so no reader that arrives after the commit can observe
// pre-commit state.
package qcache

import (
	"container/list"
	"sync"
)

// Class partitions entries by what can invalidate them.
type Class int

const (
	// ClassDerived marks answers over the built-in derived relations
	// (control, accown, closeLink, and their goal forms): invalidated only
	// by commits the IVM classifier deems relevant.
	ClassDerived Class = iota
	// ClassAny marks answers of arbitrary caller-supplied programs: any
	// commit may change them, so every commit invalidates.
	ClassAny
)

// DefaultMaxBytes sizes the cache when the caller does not: 64 MiB of
// marshaled responses.
const DefaultMaxBytes = 64 << 20

// Stats is a point-in-time counter snapshot, surfaced in /v1/metrics.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	MaxBytes      int64  `json:"maxBytes"`
}

type entry struct {
	key   string
	val   []byte
	seq   uint64
	class Class
	elem  *list.Element
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	val  []byte
	seq  uint64
	err  error
}

// Cache is a byte-budgeted LRU of marshaled query responses. The zero value
// is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	max      int64
	bytes    int64
	entries  map[string]*entry
	lru      *list.List // front = most recent; values are *entry
	inflight map[string]*call
	gen      uint64 // bumped on every invalidation; stales in-flight calls

	hits, misses, evictions, invalidations uint64
}

// New builds a cache holding at most maxBytes of response payloads;
// maxBytes <= 0 selects DefaultMaxBytes.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		max:      maxBytes,
		entries:  map[string]*entry{},
		lru:      list.New(),
		inflight: map[string]*call{},
	}
}

// entryOverhead approximates the bookkeeping bytes per entry (key copy, map
// slot, list element) charged against the budget alongside the payload.
const entryOverhead = 128

// Get returns the cached payload and the sequence it answers for, if
// present. The sequence may trail the store's current one: entries survive
// commits classified irrelevant, and the stamped seq tells the client which
// version the answer is exact for.
func (c *Cache) Get(key string) ([]byte, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.lru.MoveToFront(e.elem)
	return e.val, e.seq, true
}

// Do returns the cached payload for key, or computes, stores, and returns
// it. seq must be the store sequence the computation reads at. hit reports
// whether the payload came from the cache (possibly from another goroutine's
// just-finished computation); entrySeq is the sequence the payload answers
// for. Errors are returned to every waiter and never cached.
func (c *Cache) Do(key string, class Class, seq uint64, compute func() ([]byte, error)) (val []byte, entrySeq uint64, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e.val, e.seq, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-cl.done
		return cl.val, cl.seq, true, cl.err
	}
	c.misses++
	cl := &call{done: make(chan struct{}), seq: seq}
	c.inflight[key] = cl
	gen := c.gen
	c.mu.Unlock()

	cl.val, cl.err = compute()
	close(cl.done)

	c.mu.Lock()
	if c.inflight[key] == cl {
		delete(c.inflight, key)
	}
	// Store only if no invalidation raced the computation: a flush bumps gen,
	// and a payload computed against the pre-commit view must not serve
	// post-commit readers.
	if cl.err == nil && gen == c.gen {
		c.storeLocked(key, cl.val, seq, class)
	}
	c.mu.Unlock()
	return cl.val, seq, false, cl.err
}

// Put stores a payload directly (used by paths that compute without
// single-flight, e.g. warmed entries).
func (c *Cache) Put(key string, class Class, seq uint64, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(key, val, seq, class)
}

func (c *Cache) storeLocked(key string, val []byte, seq uint64, class Class) {
	size := int64(len(val)) + int64(len(key)) + entryOverhead
	if size > c.max {
		return // larger than the whole budget: never cacheable
	}
	if old, ok := c.entries[key]; ok {
		c.bytes -= int64(len(old.val)) + int64(len(old.key)) + entryOverhead
		c.lru.Remove(old.elem)
		delete(c.entries, key)
	}
	e := &entry{key: key, val: val, seq: seq, class: class}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += size
	for c.bytes > c.max {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail.Value.(*entry))
		c.evictions++
	}
}

func (c *Cache) removeLocked(e *entry) {
	c.bytes -= int64(len(e.val)) + int64(len(e.key)) + entryOverhead
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
}

// OnCommit applies the invalidation contract for one committed journal:
// relevant commits flush every entry; irrelevant ones flush only ClassAny
// entries (arbitrary programs can observe any mutation) and leave derived
// answers alive. In-flight computations are staled either way — their
// results will not be stored. The seq parameter is the post-commit sequence
// (accepted for symmetry with the commit hook; the contract needs only the
// classification).
func (c *Cache) OnCommit(seq uint64, relevant bool) {
	_ = seq
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*entry)
		if relevant || e.class == ClassAny {
			c.removeLocked(e)
			c.invalidations++
		}
	}
}

// Flush drops every entry (used on baseline rebuilds and follower snapshot
// re-bootstraps, where no journal describes the jump).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		c.removeLocked(el.Value.(*entry))
		c.invalidations++
		el = next
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		MaxBytes:      c.max,
	}
}
