package embed

import (
	"math"
	"math/rand"
	"testing"

	"vadalink/internal/pg"
)

// twoCliques builds two dense 6-node clusters joined by a single bridge
// edge — the canonical sanity graph for neighbourhood-preserving embeddings.
func twoCliques() (*pg.Graph, []pg.NodeID, []pg.NodeID) {
	g := pg.New()
	var a, b []pg.NodeID
	for i := 0; i < 6; i++ {
		a = append(a, g.AddNode(pg.LabelCompany, nil))
	}
	for i := 0; i < 6; i++ {
		b = append(b, g.AddNode(pg.LabelCompany, nil))
	}
	connect := func(ids []pg.NodeID) {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				g.MustAddEdge(pg.LabelShareholding, ids[i], ids[j],
					pg.Properties{pg.WeightProp: 0.1})
			}
		}
	}
	connect(a)
	connect(b)
	g.MustAddEdge(pg.LabelShareholding, a[0], b[0], pg.Properties{pg.WeightProp: 0.1})
	return g, a, b
}

func TestLearnPreservesNeighbourhoods(t *testing.T) {
	g, a, b := twoCliques()
	emb, err := Learn(g, Config{Dims: 16, WalkLength: 15, WalksPerNode: 8, Epochs: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Average intra-clique cosine must exceed average inter-clique cosine.
	intra, inter := 0.0, 0.0
	ni, nx := 0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			intra += emb.Cosine(a[i], a[j])
			ni++
		}
		for j := 0; j < len(b); j++ {
			inter += emb.Cosine(a[i], b[j])
			nx++
		}
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if intra <= inter {
		t.Errorf("intra-clique cosine %.3f ≤ inter-clique %.3f; embedding does not preserve neighbourhoods", intra, inter)
	}
}

func TestLearnDeterministic(t *testing.T) {
	g, a, _ := twoCliques()
	e1, err := Learn(g, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Learn(g, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := e1.Vector(a[0]), e2.Vector(a[0])
	for d := range v1 {
		if v1[d] != v2[d] {
			t.Fatalf("embedding not deterministic at dim %d: %v vs %v", d, v1[d], v2[d])
		}
	}
}

func TestLearnEmptyGraph(t *testing.T) {
	emb, err := Learn(pg.New(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Vectors) != 0 {
		t.Errorf("empty graph produced %d vectors", len(emb.Vectors))
	}
}

func TestLearnIsolatedNodes(t *testing.T) {
	g := pg.New()
	g.AddNode(pg.LabelCompany, nil)
	g.AddNode(pg.LabelCompany, nil)
	emb, err := Learn(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Isolated nodes still get (near-zero) vectors.
	if len(emb.Vectors) != 2 {
		t.Errorf("vectors = %d, want 2", len(emb.Vectors))
	}
}

func TestLearnRejectsBadPQ(t *testing.T) {
	g, _, _ := twoCliques()
	if _, err := Learn(g, Config{P: -1, Q: 1}); err == nil {
		t.Error("negative p accepted")
	}
}

func TestLinearVsAliasSameDistributionShape(t *testing.T) {
	// Both samplers must produce neighbourhood-preserving embeddings; exact
	// values differ (different RNG consumption) but the structure holds.
	g, a, b := twoCliques()
	emb, err := Learn(g, Config{Dims: 16, WalkLength: 15, WalksPerNode: 8, Epochs: 4, Seed: 7, LinearSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	intra := emb.Cosine(a[0], a[1])
	inter := emb.Cosine(a[0], b[3])
	if intra <= inter {
		t.Errorf("linear sampling: intra %.3f ≤ inter %.3f", intra, inter)
	}
}

func TestCosine(t *testing.T) {
	if c := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(c-1) > 1e-12 {
		t.Errorf("Cosine identical = %v", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{0, 1}); math.Abs(c) > 1e-12 {
		t.Errorf("Cosine orthogonal = %v", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{-1, 0}); math.Abs(c+1) > 1e-12 {
		t.Errorf("Cosine opposite = %v", c)
	}
	if c := Cosine([]float64{0, 0}, []float64{1, 0}); c != 0 {
		t.Errorf("Cosine zero vector = %v, want 0", c)
	}
}

func TestAliasTableDistribution(t *testing.T) {
	// Sampling frequencies must approximate the weights.
	weights := []float64{1, 2, 3, 4}
	table := newAliasTable(weights)
	r := rand.New(rand.NewSource(5))
	counts := make([]int, len(weights))
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[table.sample(r)]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("alias sample freq[%d] = %.3f, want %.3f", i, got, want)
		}
	}
}

func TestAliasTableUniformOnZeroWeights(t *testing.T) {
	table := newAliasTable([]float64{0, 0, 0})
	r := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[table.sample(r)] = true
	}
	if len(seen) != 3 {
		t.Errorf("zero-weight alias table not uniform: %v", seen)
	}
}

func TestWalkLengthRespected(t *testing.T) {
	g, a, _ := twoCliques()
	adj := buildAdjacency(g)
	w := &walker{adj: adj, cfg: Config{WalkLength: 10, P: 1, Q: 1}.withDefaults(), r: rand.New(rand.NewSource(3)), edgeAlias: map[int64]aliasTable{}}
	walk := w.walk(int32(adj.index[a[0]]))
	if len(walk) != 10 {
		t.Errorf("walk length = %d, want 10", len(walk))
	}
}

func TestReturnParameterBiasesWalks(t *testing.T) {
	// On a path graph A–B–C, a tiny p (return-heavy) makes immediate
	// backtracking much more common than with a huge p.
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, nil)
	b := g.AddNode(pg.LabelCompany, nil)
	c := g.AddNode(pg.LabelCompany, nil)
	g.MustAddEdge(pg.LabelShareholding, a, b, pg.Properties{pg.WeightProp: 0.5})
	g.MustAddEdge(pg.LabelShareholding, b, c, pg.Properties{pg.WeightProp: 0.5})
	adj := buildAdjacency(g)

	countReturns := func(p float64) int {
		w := &walker{adj: adj, cfg: Config{WalkLength: 3, P: p, Q: 1}.withDefaults(), r: rand.New(rand.NewSource(9)), edgeAlias: map[int64]aliasTable{}}
		w.cfg.P = p
		returns := 0
		for i := 0; i < 2000; i++ {
			walk := w.walk(int32(adj.index[a]))
			if len(walk) == 3 && walk[2] == walk[0] {
				returns++
			}
		}
		return returns
	}
	lowP := countReturns(0.05)  // return-friendly
	highP := countReturns(20.0) // return-averse
	if lowP <= highP {
		t.Errorf("return bias inverted: returns(p=0.05)=%d ≤ returns(p=20)=%d", lowP, highP)
	}
}

func TestWeightedWalksFollowHeavyEdges(t *testing.T) {
	// Star: center with one heavy (0.9) and nine light (0.01) edges. In
	// weighted mode, first steps overwhelmingly take the heavy edge.
	g := pg.New()
	center := g.AddNode(pg.LabelCompany, nil)
	heavy := g.AddNode(pg.LabelCompany, nil)
	g.MustAddEdge(pg.LabelShareholding, center, heavy, pg.Properties{pg.WeightProp: 0.9})
	var lights []pg.NodeID
	for i := 0; i < 9; i++ {
		l := g.AddNode(pg.LabelCompany, nil)
		lights = append(lights, l)
		g.MustAddEdge(pg.LabelShareholding, center, l, pg.Properties{pg.WeightProp: 0.01})
	}
	adj := buildAdjacency(g)
	count := func(weighted bool) int {
		w := &walker{
			adj: adj,
			cfg: Config{WalkLength: 2, P: 1, Q: 1, Weighted: weighted}.withDefaults(),
			r:   rand.New(rand.NewSource(4)), edgeAlias: map[int64]aliasTable{},
		}
		w.cfg.Weighted = weighted
		hits := 0
		for i := 0; i < 2000; i++ {
			walk := w.walk(int32(adj.index[center]))
			if len(walk) > 1 && adj.ids[walk[1]] == heavy {
				hits++
			}
		}
		return hits
	}
	weighted := count(true)
	uniform := count(false)
	// Weighted: ~90% of first steps to the heavy node; uniform: ~10%.
	if weighted < 1500 {
		t.Errorf("weighted walks took the heavy edge only %d/2000 times", weighted)
	}
	if uniform > 600 {
		t.Errorf("uniform walks took the heavy edge %d/2000 times, want ≈ 200", uniform)
	}
}

func TestWeightedLearnRuns(t *testing.T) {
	g, a, b := twoCliques()
	emb, err := Learn(g, Config{Weighted: true, Seed: 3, Dims: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if emb.Vector(a[0]) == nil || emb.Vector(b[0]) == nil {
		t.Error("weighted learn produced no vectors")
	}
}

func TestNearestReturnsCliqueMates(t *testing.T) {
	g, a, _ := twoCliques()
	emb, err := Learn(g, Config{Dims: 16, WalkLength: 15, WalksPerNode: 8, Epochs: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	near := emb.Nearest(a[1], 3)
	if len(near) != 3 {
		t.Fatalf("Nearest returned %d ids", len(near))
	}
	inA := map[pg.NodeID]bool{}
	for _, id := range a {
		inA[id] = true
	}
	hits := 0
	for _, id := range near {
		if inA[id] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("only %d/3 nearest neighbours are clique mates: %v", hits, near)
	}
	if got := emb.Nearest(pg.NodeID(999), 3); got != nil {
		t.Error("Nearest of unknown node should be nil")
	}
}
