// Package embed implements node2vec (Grover & Leskovec, KDD 2016), the
// neighbourhood-preserving node embedding that Vada-Link's #GraphEmbedClust
// function wraps for first-level clustering (Section 4.1 of the paper).
//
// The implementation has the two classic components:
//
//   - second-order biased random walks controlled by the return parameter p
//     and the in-out parameter q, sampled either by alias tables (O(1) per
//     step after preprocessing, the paper's choice) or by linear scan (the
//     ablation baseline);
//   - skip-gram with negative sampling trained by plain SGD over the walk
//     corpus, with a linearly decaying learning rate.
//
// Everything is deterministic for a fixed Config.Seed.
package embed

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vadalink/internal/pg"
)

// Config configures walk generation and skip-gram training. Zero values take
// the documented defaults.
type Config struct {
	Dims         int     // embedding dimensionality (default 32)
	WalkLength   int     // steps per walk (default 20)
	WalksPerNode int     // walks started at every node (default 4)
	Window       int     // skip-gram context window (default 4)
	Negatives    int     // negative samples per positive pair (default 3)
	Epochs       int     // passes over the walk corpus (default 2)
	P            float64 // return parameter p (default 1)
	Q            float64 // in-out parameter q (default 1)
	LR           float64 // initial learning rate (default 0.025)
	Seed         int64   // RNG seed (default 1)

	// LinearSampling disables alias tables and samples each walk step by a
	// linear scan over the neighbourhood (ablation baseline).
	LinearSampling bool

	// Weighted biases every transition by the edge weight (share fraction)
	// in addition to the p/q bias, the weighted-graph variant of node2vec —
	// a natural fit for ownership graphs, where a 60% stake is a stronger
	// tie than a 2% one. Unweighted edges count as weight 1.
	Weighted bool
}

func (c Config) withDefaults() Config {
	if c.Dims == 0 {
		c.Dims = 32
	}
	if c.WalkLength == 0 {
		c.WalkLength = 20
	}
	if c.WalksPerNode == 0 {
		c.WalksPerNode = 4
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Negatives == 0 {
		c.Negatives = 3
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.P == 0 {
		c.P = 1
	}
	if c.Q == 0 {
		c.Q = 1
	}
	if c.LR == 0 {
		c.LR = 0.025
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Embedding maps node IDs to learned vectors.
type Embedding struct {
	Dims    int
	Vectors map[pg.NodeID][]float64
}

// Vector returns the embedding of a node (nil if unknown).
func (e *Embedding) Vector(id pg.NodeID) []float64 { return e.Vectors[id] }

// Cosine returns the cosine similarity of two nodes' vectors (0 when either
// is missing or zero).
func (e *Embedding) Cosine(a, b pg.NodeID) float64 {
	va, vb := e.Vectors[a], e.Vectors[b]
	if va == nil || vb == nil {
		return 0
	}
	return Cosine(va, vb)
}

// Nearest returns the k nodes most cosine-similar to id (excluding id
// itself), ordered by descending similarity — a diagnostic for clustering
// quality.
func (e *Embedding) Nearest(id pg.NodeID, k int) []pg.NodeID {
	v := e.Vectors[id]
	if v == nil || k <= 0 {
		return nil
	}
	type scored struct {
		id  pg.NodeID
		sim float64
	}
	var all []scored
	for other, ov := range e.Vectors {
		if other == id {
			continue
		}
		all = append(all, scored{id: other, sim: Cosine(v, ov)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sim != all[j].sim {
			return all[i].sim > all[j].sim
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]pg.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// Cosine returns the cosine similarity of two vectors.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// adjacency is the undirected neighbourhood view used for walks: node2vec
// treats ownership edges as a social structure, direction-agnostic. Edge
// weights (share fractions) are kept per neighbour, with the maximum over
// parallel/reciprocal edges.
type adjacency struct {
	ids    []pg.NodeID
	index  map[pg.NodeID]int
	neigh  [][]int32   // sorted neighbour indices
	weight [][]float64 // weight per neighbour, parallel to neigh
}

func buildAdjacency(g pg.View) *adjacency {
	ids := g.Nodes()
	index := make(map[pg.NodeID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	sets := make([]map[int32]float64, len(ids))
	add := func(a, b int32, w float64) {
		if a == b {
			return
		}
		if sets[a] == nil {
			sets[a] = make(map[int32]float64)
		}
		if w > sets[a][b] {
			sets[a][b] = w
		}
	}
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		u, v := int32(index[e.From]), int32(index[e.To])
		w, ok := e.Weight()
		if !ok || w <= 0 {
			w = 1
		}
		add(u, v, w)
		add(v, u, w)
	}
	neigh := make([][]int32, len(ids))
	weight := make([][]float64, len(ids))
	for i, s := range sets {
		for n := range s {
			neigh[i] = append(neigh[i], n)
		}
		sort.Slice(neigh[i], func(a, b int) bool { return neigh[i][a] < neigh[i][b] })
		weight[i] = make([]float64, len(neigh[i]))
		for j, n := range neigh[i] {
			weight[i][j] = s[n]
		}
	}
	return &adjacency{ids: ids, index: index, neigh: neigh, weight: weight}
}

func (a *adjacency) hasEdge(u, v int32) bool {
	ns := a.neigh[u]
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == v
}

// aliasTable supports O(1) sampling from a discrete distribution (Walker's
// alias method).
type aliasTable struct {
	prob  []float64
	alias []int32
}

func newAliasTable(weights []float64) aliasTable {
	n := len(weights)
	t := aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		for i := range t.prob {
			t.prob[i] = 1
		}
		return t
	}
	scaled := make([]float64, n)
	var small, large []int32
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t
}

func (t aliasTable) sample(r *rand.Rand) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// walker generates second-order biased walks.
type walker struct {
	adj *adjacency
	cfg Config
	r   *rand.Rand
	// edgeAlias caches second-order alias tables keyed by prev*n + cur.
	edgeAlias map[int64]aliasTable
}

func (w *walker) stepWeights(prev, cur int32) []float64 {
	ns := w.adj.neigh[cur]
	weights := make([]float64, len(ns))
	for i, nxt := range ns {
		switch {
		case nxt == prev:
			weights[i] = 1 / w.cfg.P
		case w.adj.hasEdge(prev, nxt):
			weights[i] = 1
		default:
			weights[i] = 1 / w.cfg.Q
		}
		if w.cfg.Weighted {
			weights[i] *= w.adj.weight[cur][i]
		}
	}
	return weights
}

func (w *walker) next(prev, cur int32) int32 {
	ns := w.adj.neigh[cur]
	if len(ns) == 0 {
		return -1
	}
	if prev < 0 {
		// First step: uniform over neighbours (weight-proportional in
		// weighted mode).
		if !w.cfg.Weighted {
			return ns[w.r.Intn(len(ns))]
		}
		var sum float64
		for _, x := range w.adj.weight[cur] {
			sum += x
		}
		u := w.r.Float64() * sum
		for i, x := range w.adj.weight[cur] {
			u -= x
			if u <= 0 {
				return ns[i]
			}
		}
		return ns[len(ns)-1]
	}
	if w.cfg.LinearSampling {
		weights := w.stepWeights(prev, cur)
		var sum float64
		for _, x := range weights {
			sum += x
		}
		u := w.r.Float64() * sum
		for i, x := range weights {
			u -= x
			if u <= 0 {
				return ns[i]
			}
		}
		return ns[len(ns)-1]
	}
	key := int64(prev)*int64(len(w.adj.ids)) + int64(cur)
	t, ok := w.edgeAlias[key]
	if !ok {
		t = newAliasTable(w.stepWeights(prev, cur))
		w.edgeAlias[key] = t
	}
	return ns[t.sample(w.r)]
}

func (w *walker) walk(start int32) []int32 {
	out := make([]int32, 0, w.cfg.WalkLength)
	out = append(out, start)
	prev, cur := int32(-1), start
	for len(out) < w.cfg.WalkLength {
		nxt := w.next(prev, cur)
		if nxt < 0 {
			break
		}
		out = append(out, nxt)
		prev, cur = cur, nxt
	}
	return out
}

// Learn runs node2vec over the graph and returns the embedding.
func Learn(g pg.View, cfg Config) (*Embedding, error) {
	cfg = cfg.withDefaults()
	adj := buildAdjacency(g)
	n := len(adj.ids)
	if n == 0 {
		return &Embedding{Dims: cfg.Dims, Vectors: map[pg.NodeID][]float64{}}, nil
	}
	if cfg.P <= 0 || cfg.Q <= 0 {
		return nil, fmt.Errorf("embed: p and q must be positive (got %v, %v)", cfg.P, cfg.Q)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// 1. Walk corpus.
	w := &walker{adj: adj, cfg: cfg, r: r, edgeAlias: make(map[int64]aliasTable)}
	var corpus [][]int32
	order := r.Perm(n)
	for rep := 0; rep < cfg.WalksPerNode; rep++ {
		for _, i := range order {
			walk := w.walk(int32(i))
			if len(walk) > 1 {
				corpus = append(corpus, walk)
			}
		}
	}

	// 2. Negative-sampling distribution: unigram^0.75 over walk occurrences.
	counts := make([]float64, n)
	for _, walk := range corpus {
		for _, v := range walk {
			counts[v]++
		}
	}
	for i := range counts {
		counts[i] = math.Pow(counts[i]+1, 0.75)
	}
	negTable := newAliasTable(counts)

	// 3. Skip-gram with negative sampling.
	in := make([][]float64, n)
	out := make([][]float64, n)
	for i := range in {
		in[i] = make([]float64, cfg.Dims)
		out[i] = make([]float64, cfg.Dims)
		for d := 0; d < cfg.Dims; d++ {
			in[i][d] = (r.Float64() - 0.5) / float64(cfg.Dims)
		}
	}
	totalSteps := cfg.Epochs * len(corpus)
	step := 0
	for ep := 0; ep < cfg.Epochs; ep++ {
		for _, walk := range corpus {
			lr := cfg.LR * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LR*0.01 {
				lr = cfg.LR * 0.01
			}
			step++
			for ci, center := range walk {
				lo := ci - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := ci + cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				for t := lo; t <= hi; t++ {
					if t == ci {
						continue
					}
					ctx := walk[t]
					trainPair(in[center], out[ctx], 1, lr)
					for k := 0; k < cfg.Negatives; k++ {
						neg := negTable.sample(r)
						if int32(neg) == ctx {
							continue
						}
						trainPair(in[center], out[neg], 0, lr)
					}
				}
			}
		}
	}

	vectors := make(map[pg.NodeID][]float64, n)
	for i, id := range adj.ids {
		vectors[id] = in[i]
	}
	return &Embedding{Dims: cfg.Dims, Vectors: vectors}, nil
}

// trainPair applies one SGD update for a (center, context) pair with the
// given label (1 = positive, 0 = negative).
func trainPair(center, ctx []float64, label float64, lr float64) {
	var dot float64
	for d := range center {
		dot += center[d] * ctx[d]
	}
	pred := sigmoid(dot)
	g := lr * (label - pred)
	for d := range center {
		cd := center[d]
		center[d] += g * ctx[d]
		ctx[d] += g * cd
	}
}

func sigmoid(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}
