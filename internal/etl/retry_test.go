package etl

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"vadalink/internal/backoff"
	"vadalink/internal/faultinject"
)

// flakyErr is transient: Temporary() true, the retry contract.
type flakyErr struct{ n int }

func (e flakyErr) Error() string   { return fmt.Sprintf("transient failure %d", e.n) }
func (e flakyErr) Temporary() bool { return true }

const retryCompaniesCSV = "id,name\nC1,ACME\nC2,Banca\n"

// A stream that fails transiently a few times recovers: the load completes
// with every row intact and nothing duplicated.
func TestLoadRetriesTransientReadErrors(t *testing.T) {
	fails := 3
	faultinject.SetErr(faultinject.SiteIORead, func() error {
		if fails > 0 {
			fails--
			return flakyErr{n: fails}
		}
		return nil
	})
	defer faultinject.Reset()

	res, err := Load(strings.NewReader(retryCompaniesCSV), nil, nil)
	if err != nil {
		t.Fatalf("Load with transient faults: %v", err)
	}
	if res.Graph.NumNodes() != 2 {
		t.Fatalf("loaded %d companies, want 2", res.Graph.NumNodes())
	}
	if fails != 0 {
		t.Errorf("%d injected faults never fired", fails)
	}
}

// A stream that keeps failing transiently exhausts the retry budget and the
// load aborts with the underlying error — bounded, not hung.
func TestLoadGivesUpAfterRetryBudget(t *testing.T) {
	faultinject.SetErr(faultinject.SiteIORead, func() error { return flakyErr{} })
	defer faultinject.Reset()

	_, err := Load(strings.NewReader(retryCompaniesCSV), nil, nil)
	if err == nil {
		t.Fatal("Load succeeded on a permanently flaky stream")
	}
	var fe flakyErr
	if !errors.As(err, &fe) {
		t.Fatalf("error %v does not carry the stream failure", err)
	}
}

// A permanent error aborts on the first attempt: no retries, no backoff.
func TestPermanentErrorAbortsImmediately(t *testing.T) {
	attempts := 0
	permanent := errors.New("disk on fire")
	faultinject.SetErr(faultinject.SiteIORead, func() error {
		attempts++
		return permanent
	})
	defer faultinject.Reset()

	_, err := Load(strings.NewReader(retryCompaniesCSV), nil, nil)
	if !errors.Is(err, permanent) {
		t.Fatalf("Load error = %v, want the permanent failure", err)
	}
	if attempts != 1 {
		t.Fatalf("permanent error was attempted %d times, want 1", attempts)
	}
}

// Unit-level backoff shape: delays grow from the base, cap at the maximum,
// and carry jitter — each sleep lands in [ladder/2, ladder] for the capped
// doubling ladder, and a read that returned data is never retried.
func TestRetryReaderBackoffSchedule(t *testing.T) {
	var delays []time.Duration
	rr := &retryReader{
		r:       strings.NewReader("irrelevant"),
		sleep:   func(d time.Duration) { delays = append(delays, d) },
		backoff: backoff.Policy{Base: retryBaseDelay, Max: retryMaxDelay, Jitter: retryJitter},
	}
	calls := 0
	faultinject.SetErr(faultinject.SiteIORead, func() error {
		calls++
		if calls < retryMaxAttempts {
			return flakyErr{}
		}
		return nil
	})
	defer faultinject.Reset()

	buf := make([]byte, 4)
	n, err := rr.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("Read = %d, %v after retries", n, err)
	}
	if len(delays) != retryMaxAttempts-1 {
		t.Fatalf("slept %d times, want %d", len(delays), retryMaxAttempts-1)
	}
	for i, d := range delays {
		ceil := retryBaseDelay << i
		if ceil > retryMaxDelay {
			ceil = retryMaxDelay
		}
		if d < ceil/2 || d > ceil {
			t.Errorf("delay %d = %v outside jitter window [%v, %v]", i, d, ceil/2, ceil)
		}
	}
}
