package etl

import (
	"errors"
	"strings"
	"testing"
)

// TestLoadReportsManyMalformedRows: one pass reports every bad row (up to
// the cap) with its stream and line number, instead of stopping at the
// first.
func TestLoadReportsManyMalformedRows(t *testing.T) {
	companies := "id,name\nC1,Acme\nC2\nC3,Beta\nC4\n" // lines 3 and 5 short
	shares := "owner,owned,share\nC1,C3,0.5\nCX,C3,0.5\nC1,C3,7\n"
	_, err := Load(strings.NewReader(companies), nil, strings.NewReader(shares))
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LoadError", err)
	}
	if le.Total != 4 {
		t.Errorf("Total = %d, want 4 (%v)", le.Total, le)
	}
	wantRows := []RowError{
		{File: "companies", Line: 3, Msg: "want ≥ 2 columns, got 1"},
		{File: "companies", Line: 5, Msg: "want ≥ 2 columns, got 1"},
		{File: "shareholdings", Line: 3, Msg: `unknown owner "CX"`},
		{File: "shareholdings", Line: 4, Msg: `bad share "7" (want a fraction in (0,1])`},
	}
	for i, want := range wantRows {
		if i >= len(le.Rows) {
			t.Fatalf("only %d rows reported: %v", len(le.Rows), le)
		}
		if le.Rows[i] != want {
			t.Errorf("row %d = %+v, want %+v", i, le.Rows[i], want)
		}
	}
	if !strings.Contains(err.Error(), "companies line 3") {
		t.Errorf("error text lacks line numbers: %v", err)
	}
}

func TestLoadErrorReportCapped(t *testing.T) {
	var b strings.Builder
	b.WriteString("id,name\n")
	for i := 0; i < MaxReportedRows+5; i++ {
		b.WriteString("solo\n") // every row too short
	}
	_, err := Load(strings.NewReader(b.String()), nil, nil)
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LoadError", err)
	}
	if le.Total != MaxReportedRows+5 || len(le.Rows) != MaxReportedRows {
		t.Errorf("Total = %d, reported = %d, want %d and %d",
			le.Total, len(le.Rows), MaxReportedRows+5, MaxReportedRows)
	}
	if !strings.Contains(err.Error(), "first 10 shown") {
		t.Errorf("capped report not announced: %v", err)
	}
}

func TestLoadRejectsOverWideRow(t *testing.T) {
	row := "C1,Acme" + strings.Repeat(",x", MaxColumns) + "\n"
	_, err := Load(strings.NewReader(row), nil, nil)
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LoadError", err)
	}
	if !strings.Contains(err.Error(), "columns, max") {
		t.Errorf("wrong message: %v", err)
	}
}

func TestLoadRejectsOversizeRecord(t *testing.T) {
	row := "C1," + strings.Repeat("a", MaxRecordBytes+1) + "\n"
	_, err := Load(strings.NewReader(row), nil, nil)
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LoadError", err)
	}
	if !strings.Contains(err.Error(), "bytes, max") {
		t.Errorf("wrong message: %v", err)
	}
}

// TestLoadBadQuoting: a CSV syntax error is reported with its line and the
// loader keeps going (no hang, no panic).
func TestLoadBadQuoting(t *testing.T) {
	companies := "id,name\nC1,\"unterminated\n"
	_, err := Load(strings.NewReader(companies), nil, nil)
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LoadError", err)
	}
}

func TestLoadGoodRowsSurviveBadOnes(t *testing.T) {
	// The error report is complete even though good rows around the bad
	// ones parsed fine: nothing is silently half-loaded, the caller gets
	// either a graph or the full damage report.
	companies := "id,name\nC1,Acme\nbad\nC2,Beta\n"
	res, err := Load(strings.NewReader(companies), nil, nil)
	if err == nil {
		t.Fatal("want error")
	}
	if res != nil {
		t.Errorf("partial result returned alongside error")
	}
}
