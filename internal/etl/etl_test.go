package etl

import (
	"io"
	"strings"
	"testing"

	"vadalink/internal/control"
	"vadalink/internal/pg"
)

const companiesCSV = `id,name,sector,addr,city
C001,Acme s.p.a.,manufacturing,Via Roma 1,Milano
C002,Beta s.r.l.,finance,Via Dante 2,Roma
`

const personsCSV = `id,name,surname,birth,addr,city
P001,Mario,Rossi,1960,Via Garibaldi 12,Roma
P002,Elena,Rossi,1962,Via Garibaldi 12,Roma
`

const sharesCSV = `owner,owned,share,right
P001,C001,0.6,ownership
C001,C002,0.8,ownership
P002,C002,0.1,bare ownership
`

func TestLoadFullPipeline(t *testing.T) {
	res, err := Load(
		strings.NewReader(companiesCSV),
		strings.NewReader(personsCSV),
		strings.NewReader(sharesCSV),
	)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("loaded %d nodes / %d edges, want 4/3", g.NumNodes(), g.NumEdges())
	}
	mario := res.IDs["P001"]
	if g.Node(mario).Label != pg.LabelPerson || g.Node(mario).Props["surname"] != "Rossi" {
		t.Errorf("P001 loaded wrong: %+v", g.Node(mario))
	}
	// The loaded graph immediately supports reasoning: Mario controls both.
	got := control.Controls(g, mario)
	if len(got) != 2 {
		t.Errorf("Mario controls %d companies, want 2 (Acme and, via it, Beta)", len(got))
	}
	// Edge properties carried through.
	e := g.Edge(g.Out(mario)[0])
	if e.Props["right"] != "ownership" {
		t.Errorf("share right = %v", e.Props["right"])
	}
}

func TestLoadWithoutHeaders(t *testing.T) {
	res, err := Load(
		strings.NewReader("C1,NoHeader Co\n"),
		nil,
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() != 1 {
		t.Errorf("nodes = %d", res.Graph.NumNodes())
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name                       string
		companies, persons, shares string
	}{
		{"duplicate id", "C1,A\nC1,B\n", "", ""},
		{"unknown owner", "C1,A\n", "", "PX,C1,0.5\n"},
		{"unknown owned", "C1,A\n", "", "C1,CX,0.5\n"},
		{"bad share", "C1,A\nC2,B\n", "", "C1,C2,1.5\n"},
		{"zero share", "C1,A\nC2,B\n", "", "C1,C2,0\n"},
		{"bad birth", "", "P1,Mario,Rossi,notayear\n", ""},
		{"short person row", "", "P1,Mario\n", ""},
		{"share into person", "C1,A\n", "P1,Mario,Rossi,1960\n", "C1,P1,0.5\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(readerOrNil(c.companies), readerOrNil(c.persons), readerOrNil(c.shares)); err == nil {
				t.Errorf("want error, got nil")
			}
		})
	}
}

// readerOrNil returns an untyped nil for empty input: a typed nil
// *strings.Reader inside an io.Reader interface would not compare equal to
// nil in Load.
func readerOrNil(s string) io.Reader {
	if s == "" {
		return nil
	}
	return strings.NewReader(s)
}
