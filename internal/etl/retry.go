// Transient-fault tolerance for the input streams. Registry exports are
// fetched over NFS mounts and flaky object stores; a single EAGAIN-ish
// hiccup should not abort a multi-million-row load. Every stream Load
// consumes is wrapped in a retryReader that retries *transient* read errors
// with capped exponential backoff and surfaces everything else immediately —
// a permanent error retried forever is a hung ETL job, which is worse than a
// failed one.
package etl

import (
	"io"
	"time"

	"vadalink/internal/backoff"
	"vadalink/internal/faultinject"
)

// Backoff parameters of the input-stream retry loop. The schedule is the
// shared capped-exponential policy with jitter (internal/backoff): many ETL
// jobs restarted together — or a fleet of replicas re-running the same
// ingest after a failover — must not retry a shared upstream in lockstep.
const (
	retryMaxAttempts = 5
	retryBaseDelay   = time.Millisecond
	retryMaxDelay    = 50 * time.Millisecond
	retryJitter      = 0.5
)

// transientError is the contract for retryable read failures, matching the
// convention of net.Error and syscall errors: Temporary() reporting true.
type transientError interface {
	Temporary() bool
}

func isTransient(err error) bool {
	te, ok := err.(transientError)
	return ok && te.Temporary()
}

// retryReader retries transient failures of the underlying reader. A read
// that returned data is never retried (the bytes were consumed); only a
// clean (0, err) failure is, so no input is ever duplicated or dropped.
type retryReader struct {
	r       io.Reader
	sleep   func(time.Duration) // injectable for tests
	backoff backoff.Policy
}

// newRetryReader wraps r; nil stays nil so Load's absent-stream convention
// is preserved.
func newRetryReader(r io.Reader) io.Reader {
	if r == nil {
		return nil
	}
	return &retryReader{
		r:       r,
		sleep:   time.Sleep,
		backoff: backoff.Policy{Base: retryBaseDelay, Max: retryMaxDelay, Jitter: retryJitter},
	}
}

func (rr *retryReader) Read(p []byte) (int, error) {
	for attempt := 0; ; attempt++ {
		// The injection site stands in for the underlying stream failing:
		// an armed fault is indistinguishable from a short read off a flaky
		// mount, which is exactly what the retry loop must absorb.
		n, err := 0, faultinject.FireErr(faultinject.SiteIORead)
		if err == nil {
			n, err = rr.r.Read(p)
		}
		if err == nil || err == io.EOF || n > 0 {
			return n, err
		}
		if !isTransient(err) || attempt+1 >= retryMaxAttempts {
			return n, err
		}
		rr.sleep(rr.backoff.Delay(attempt))
	}
}
