// Package etl implements the data-loading pipeline of the §5 architecture:
// "data fetched from the RDBMS are enriched with features and extensions
// from external sources, with common ETL jobs. The enriched dataset is then
// used as input to build the extensional component of the KG".
//
// The exchange format is the registry-style CSV triple the Italian Chambers
// of Commerce data reduces to:
//
//	companies.csv:     id,name,sector,addr,city
//	persons.csv:       id,name,surname,birth,addr,city
//	shareholdings.csv: owner,owned,share[,right]
//
// IDs are free-form strings (fiscal codes in production); the loader assigns
// graph node IDs and returns the mapping. Malformed rows fail loudly with
// line numbers — silent data loss in an ETL job is how reporting graphs go
// wrong.
package etl

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vadalink/internal/pg"
)

// Result is a loaded company graph plus the external-ID mapping.
type Result struct {
	Graph *pg.Graph
	// IDs maps external identifiers (e.g. fiscal codes) to node IDs.
	IDs map[string]pg.NodeID
}

// Load reads the three CSV streams and builds the company graph. Any reader
// may be nil, in which case that entity class is absent. Shareholding rows
// referencing unknown IDs are an error.
func Load(companies, persons, shareholdings io.Reader) (*Result, error) {
	res := &Result{Graph: pg.New(), IDs: map[string]pg.NodeID{}}
	if companies != nil {
		if err := res.loadCompanies(companies); err != nil {
			return nil, err
		}
	}
	if persons != nil {
		if err := res.loadPersons(persons); err != nil {
			return nil, err
		}
	}
	if shareholdings != nil {
		if err := res.loadShareholdings(shareholdings); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// readAll reads CSV rows, skipping an optional header whose first column
// matches headerFirst.
func readAll(r io.Reader, headerFirst string, minCols int, what string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("etl: reading %s: %w", what, err)
	}
	var out [][]string
	for i, rec := range recs {
		if i == 0 && len(rec) > 0 && strings.EqualFold(strings.TrimSpace(rec[0]), headerFirst) {
			continue
		}
		if len(rec) < minCols {
			return nil, fmt.Errorf("etl: %s row %d: want ≥ %d columns, got %d", what, i+1, minCols, len(rec))
		}
		out = append(out, rec)
	}
	return out, nil
}

func (r *Result) register(extID string, id pg.NodeID, what string, row int) error {
	if _, dup := r.IDs[extID]; dup {
		return fmt.Errorf("etl: %s row %d: duplicate id %q", what, row, extID)
	}
	r.IDs[extID] = id
	return nil
}

func (r *Result) loadCompanies(in io.Reader) error {
	rows, err := readAll(in, "id", 2, "companies")
	if err != nil {
		return err
	}
	for i, rec := range rows {
		props := pg.Properties{"name": rec[1]}
		if len(rec) > 2 {
			props["sector"] = rec[2]
		}
		if len(rec) > 3 {
			props["addr"] = rec[3]
		}
		if len(rec) > 4 {
			props["city"] = rec[4]
		}
		id := r.Graph.AddNode(pg.LabelCompany, props)
		if err := r.register(strings.TrimSpace(rec[0]), id, "companies", i+1); err != nil {
			return err
		}
	}
	return nil
}

func (r *Result) loadPersons(in io.Reader) error {
	rows, err := readAll(in, "id", 3, "persons")
	if err != nil {
		return err
	}
	for i, rec := range rows {
		props := pg.Properties{"name": rec[1], "surname": rec[2]}
		if len(rec) > 3 && rec[3] != "" {
			birth, err := strconv.ParseFloat(rec[3], 64)
			if err != nil {
				return fmt.Errorf("etl: persons row %d: bad birth year %q", i+1, rec[3])
			}
			props["birth"] = birth
		}
		if len(rec) > 4 {
			props["addr"] = rec[4]
		}
		if len(rec) > 5 {
			props["city"] = rec[5]
		}
		id := r.Graph.AddNode(pg.LabelPerson, props)
		if err := r.register(strings.TrimSpace(rec[0]), id, "persons", i+1); err != nil {
			return err
		}
	}
	return nil
}

func (r *Result) loadShareholdings(in io.Reader) error {
	rows, err := readAll(in, "owner", 3, "shareholdings")
	if err != nil {
		return err
	}
	for i, rec := range rows {
		owner, ok := r.IDs[strings.TrimSpace(rec[0])]
		if !ok {
			return fmt.Errorf("etl: shareholdings row %d: unknown owner %q", i+1, rec[0])
		}
		owned, ok := r.IDs[strings.TrimSpace(rec[1])]
		if !ok {
			return fmt.Errorf("etl: shareholdings row %d: unknown owned company %q", i+1, rec[1])
		}
		share, err := strconv.ParseFloat(rec[2], 64)
		if err != nil || share <= 0 || share > 1 {
			return fmt.Errorf("etl: shareholdings row %d: bad share %q (want a fraction in (0,1])", i+1, rec[2])
		}
		props := pg.Properties{pg.WeightProp: share}
		if len(rec) > 3 && rec[3] != "" {
			props["right"] = rec[3]
		}
		if _, err := r.Graph.AddEdge(pg.LabelShareholding, owner, owned, props); err != nil {
			return fmt.Errorf("etl: shareholdings row %d: %w", i+1, err)
		}
	}
	return r.Graph.Validate()
}
