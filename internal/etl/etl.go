// Package etl implements the data-loading pipeline of the §5 architecture:
// "data fetched from the RDBMS are enriched with features and extensions
// from external sources, with common ETL jobs. The enriched dataset is then
// used as input to build the extensional component of the KG".
//
// The exchange format is the registry-style CSV triple the Italian Chambers
// of Commerce data reduces to:
//
//	companies.csv:     id,name,sector,addr,city
//	persons.csv:       id,name,surname,birth,addr,city
//	shareholdings.csv: owner,owned,share[,right]
//
// IDs are free-form strings (fiscal codes in production); the loader assigns
// graph node IDs and returns the mapping. Malformed rows fail loudly with
// line numbers — silent data loss in an ETL job is how reporting graphs go
// wrong. The loader streams (it never buffers a whole file), bounds row
// width and record size against hostile input, and reports the first
// MaxReportedRows malformed rows in one *LoadError instead of stopping at
// the first, so one pass over a dirty export shows the shape of the dirt.
package etl

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vadalink/internal/pg"
)

// Input hardening bounds: rows wider than MaxColumns or heavier than
// MaxRecordBytes are malformed regardless of content.
const (
	MaxColumns     = 64
	MaxRecordBytes = 1 << 20 // 1 MiB per record
	// MaxReportedRows caps how many malformed rows a LoadError carries.
	MaxReportedRows = 10
)

// RowError locates one malformed row.
type RowError struct {
	File string // which stream: "companies", "persons", "shareholdings"
	Line int    // 1-based line in that stream
	Msg  string
}

func (e RowError) String() string {
	return fmt.Sprintf("%s line %d: %s", e.File, e.Line, e.Msg)
}

// LoadError reports every malformed row of a Load pass, up to
// MaxReportedRows; Total counts all of them.
type LoadError struct {
	Rows  []RowError
	Total int
}

func (e *LoadError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "etl: %d malformed row(s)", e.Total)
	if e.Total > len(e.Rows) {
		fmt.Fprintf(&b, " (first %d shown)", len(e.Rows))
	}
	for _, r := range e.Rows {
		b.WriteString("\n\t")
		b.WriteString(r.String())
	}
	return b.String()
}

// errCollector accumulates row errors across the three streams.
type errCollector struct {
	rows  []RowError
	total int
}

func (c *errCollector) add(file string, line int, format string, args ...any) {
	c.total++
	if len(c.rows) < MaxReportedRows {
		c.rows = append(c.rows, RowError{File: file, Line: line, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *errCollector) err() error {
	if c.total == 0 {
		return nil
	}
	return &LoadError{Rows: c.rows, Total: c.total}
}

// Result is a loaded company graph plus the external-ID mapping.
type Result struct {
	Graph *pg.Graph
	// IDs maps external identifiers (e.g. fiscal codes) to node IDs.
	IDs map[string]pg.NodeID
}

// Load reads the three CSV streams and builds the company graph. Any reader
// may be nil, in which case that entity class is absent. Malformed rows
// (bad syntax, over-wide or over-size records, unknown IDs, out-of-range
// shares) are collected and returned together as a *LoadError; rows beyond
// the bounds are skipped, never partially applied.
// Transient read errors (anything reporting Temporary() true) are retried
// with capped exponential backoff before the row parser ever sees them; see
// retry.go.
func Load(companies, persons, shareholdings io.Reader) (*Result, error) {
	companies = newRetryReader(companies)
	persons = newRetryReader(persons)
	shareholdings = newRetryReader(shareholdings)
	res := &Result{Graph: pg.New(), IDs: map[string]pg.NodeID{}}
	var c errCollector
	if companies != nil {
		if err := res.loadCompanies(companies, &c); err != nil {
			return nil, err
		}
	}
	if persons != nil {
		if err := res.loadPersons(persons, &c); err != nil {
			return nil, err
		}
	}
	if shareholdings != nil {
		if err := res.loadShareholdings(shareholdings, &c); err != nil {
			return nil, err
		}
	}
	if err := c.err(); err != nil {
		return nil, err
	}
	if err := res.Graph.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// forEachRow streams CSV records to fn, skipping an optional header whose
// first column matches headerFirst. Structural problems (bad quoting,
// over-wide rows, over-size records, too few columns) go to the collector
// and the row is skipped; only non-CSV I/O errors abort the stream.
func forEachRow(r io.Reader, headerFirst string, minCols int, what string, c *errCollector, fn func(line int, rec []string)) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	first := true
	for {
		offsetBefore := cr.InputOffset()
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			var perr *csv.ParseError
			if errors.As(err, &perr) {
				c.add(what, perr.Line, "%v", perr.Err)
				if cr.InputOffset() == offsetBefore {
					// No forward progress: the reader is stuck (e.g. an
					// unterminated quote at EOF); stop instead of spinning.
					return nil
				}
				continue
			}
			return fmt.Errorf("etl: reading %s: %w", what, err)
		}
		line, _ := cr.FieldPos(0)
		if first {
			first = false
			if len(rec) > 0 && strings.EqualFold(strings.TrimSpace(rec[0]), headerFirst) {
				continue
			}
		}
		if len(rec) > MaxColumns {
			c.add(what, line, "row has %d columns, max %d", len(rec), MaxColumns)
			continue
		}
		size := 0
		for _, f := range rec {
			size += len(f)
		}
		if size > MaxRecordBytes {
			c.add(what, line, "record is %d bytes, max %d", size, MaxRecordBytes)
			continue
		}
		if len(rec) < minCols {
			c.add(what, line, "want ≥ %d columns, got %d", minCols, len(rec))
			continue
		}
		fn(line, rec)
	}
}

func (r *Result) register(extID string, id pg.NodeID) bool {
	if _, dup := r.IDs[extID]; dup {
		return false
	}
	r.IDs[extID] = id
	return true
}

func (r *Result) loadCompanies(in io.Reader, c *errCollector) error {
	return forEachRow(in, "id", 2, "companies", c, func(line int, rec []string) {
		extID := strings.TrimSpace(rec[0])
		if _, dup := r.IDs[extID]; dup {
			c.add("companies", line, "duplicate id %q", extID)
			return
		}
		props := pg.Properties{"name": rec[1]}
		if len(rec) > 2 {
			props["sector"] = rec[2]
		}
		if len(rec) > 3 {
			props["addr"] = rec[3]
		}
		if len(rec) > 4 {
			props["city"] = rec[4]
		}
		r.register(extID, r.Graph.AddNode(pg.LabelCompany, props))
	})
}

func (r *Result) loadPersons(in io.Reader, c *errCollector) error {
	return forEachRow(in, "id", 3, "persons", c, func(line int, rec []string) {
		extID := strings.TrimSpace(rec[0])
		if _, dup := r.IDs[extID]; dup {
			c.add("persons", line, "duplicate id %q", extID)
			return
		}
		props := pg.Properties{"name": rec[1], "surname": rec[2]}
		if len(rec) > 3 && rec[3] != "" {
			birth, err := strconv.ParseFloat(rec[3], 64)
			if err != nil {
				c.add("persons", line, "bad birth year %q", rec[3])
				return
			}
			props["birth"] = birth
		}
		if len(rec) > 4 {
			props["addr"] = rec[4]
		}
		if len(rec) > 5 {
			props["city"] = rec[5]
		}
		r.register(extID, r.Graph.AddNode(pg.LabelPerson, props))
	})
}

func (r *Result) loadShareholdings(in io.Reader, c *errCollector) error {
	return forEachRow(in, "owner", 3, "shareholdings", c, func(line int, rec []string) {
		owner, ok := r.IDs[strings.TrimSpace(rec[0])]
		if !ok {
			c.add("shareholdings", line, "unknown owner %q", rec[0])
			return
		}
		owned, ok := r.IDs[strings.TrimSpace(rec[1])]
		if !ok {
			c.add("shareholdings", line, "unknown owned company %q", rec[1])
			return
		}
		share, err := strconv.ParseFloat(rec[2], 64)
		if err != nil || share <= 0 || share > 1 {
			c.add("shareholdings", line, "bad share %q (want a fraction in (0,1])", rec[2])
			return
		}
		props := pg.Properties{pg.WeightProp: share}
		if len(rec) > 3 && rec[3] != "" {
			props["right"] = rec[3]
		}
		if _, err := r.Graph.AddEdge(pg.LabelShareholding, owner, owned, props); err != nil {
			c.add("shareholdings", line, "%v", err)
		}
	})
}
