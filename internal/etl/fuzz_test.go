package etl

import (
	"bytes"
	"testing"
)

// FuzzLoad asserts the loader's hardening contract on arbitrary bytes: no
// panic, no hang, and either a usable graph or an error — never both.
func FuzzLoad(f *testing.F) {
	f.Add([]byte("id,name\nC1,Acme\nC2,Beta\n"),
		[]byte("id,name,surname\nP1,Mario,Rossi\n"),
		[]byte("owner,owned,share\nP1,C1,0.6\n"))
	f.Add([]byte("C1,\"unterminated\n"), []byte(nil), []byte(nil))
	f.Add([]byte("C1"+bytes.NewBuffer(bytes.Repeat([]byte(",x"), 80)).String()+"\n"),
		[]byte(nil), []byte(nil))
	f.Add([]byte("\xff\xfe,\x00\n"), []byte("P1,a"), []byte("a,b,c,d,e"))
	f.Fuzz(func(t *testing.T, companies, persons, shares []byte) {
		res, err := Load(bytes.NewReader(companies), bytes.NewReader(persons), bytes.NewReader(shares))
		if (res == nil) == (err == nil) {
			t.Fatalf("want exactly one of result/error, got res=%v err=%v", res, err)
		}
		if res != nil {
			if res.Graph == nil || res.IDs == nil {
				t.Fatalf("successful load with nil graph or ids: %+v", res)
			}
			if err := res.Graph.Validate(); err != nil {
				t.Fatalf("loaded graph fails validation: %v", err)
			}
		}
	})
}
