// Package faultinject is a test-only fault-injection registry: production
// code calls Fire at named sites, and tests register hooks that sleep, panic
// or cancel to simulate slow strata, mid-chase aborts and handler crashes.
//
// With no hooks registered (the production state) Fire is a single atomic
// load — cheap enough to leave in hot loops. Sites are plain strings, listed
// as Site* constants next to the code that fires them.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Instrumented sites. A site name is stable API for tests; firing an
// unregistered site is a no-op.
const (
	// SiteDatalogRound fires at the start of every semi-naive round of the
	// chase (internal/datalog). Hooks here simulate slow strata.
	SiteDatalogRound = "datalog.round"
	// SiteDatalogMerge fires when a parallel chase round starts merging its
	// per-job buffers into the fact store (internal/datalog). Hooks here
	// stretch the window between worker evaluation and merge to surface
	// races and to land cancellations mid-merge.
	SiteDatalogMerge = "datalog.merge"
	// SiteAPIHandler fires on entry of every reasonapi request, inside the
	// panic-recovery middleware. Hooks here simulate handler crashes.
	SiteAPIHandler = "reasonapi.handler"
	// SiteAugmentRound fires at the start of every KG-augmentation round
	// (internal/core). Hooks here simulate slow augmentation.
	SiteAugmentRound = "core.round"
)

// Fn is an injected behavior. It may sleep, panic, or do nothing.
type Fn func()

var (
	armed atomic.Bool // true while any hook is registered
	mu    sync.RWMutex
	hooks = map[string]Fn{}
)

// Set registers (or replaces) the hook for a site. Tests must pair Set with
// Clear or Reset (typically via t.Cleanup).
func Set(site string, fn Fn) {
	mu.Lock()
	defer mu.Unlock()
	if fn == nil {
		delete(hooks, site)
	} else {
		hooks[site] = fn
	}
	armed.Store(len(hooks) > 0)
}

// Clear removes the hook for a site.
func Clear(site string) { Set(site, nil) }

// Reset removes every hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = map[string]Fn{}
	armed.Store(false)
}

// Fire invokes the hook registered for site, if any. It is safe for
// concurrent use and near-free when no hooks are registered.
func Fire(site string) {
	if !armed.Load() {
		return
	}
	mu.RLock()
	fn := hooks[site]
	mu.RUnlock()
	if fn != nil {
		fn()
	}
}
