// Package faultinject is a test-only fault-injection registry: production
// code calls Fire at named sites, and tests register hooks that sleep, panic
// or cancel to simulate slow strata, mid-chase aborts and handler crashes.
//
// With no hooks registered (the production state) Fire is a single atomic
// load — cheap enough to leave in hot loops. Sites are plain strings, listed
// as Site* constants next to the code that fires them.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Instrumented sites. A site name is stable API for tests; firing an
// unregistered site is a no-op.
const (
	// SiteDatalogRound fires at the start of every semi-naive round of the
	// chase (internal/datalog). Hooks here simulate slow strata.
	SiteDatalogRound = "datalog.round"
	// SiteDatalogMerge fires when a parallel chase round starts merging its
	// per-job buffers into the fact store (internal/datalog). Hooks here
	// stretch the window between worker evaluation and merge to surface
	// races and to land cancellations mid-merge.
	SiteDatalogMerge = "datalog.merge"
	// SiteAPIHandler fires on entry of every reasonapi request, inside the
	// panic-recovery middleware. Hooks here simulate handler crashes.
	SiteAPIHandler = "reasonapi.handler"
	// SiteAugmentRound fires at the start of every KG-augmentation round
	// (internal/core). Hooks here simulate slow augmentation.
	SiteAugmentRound = "core.round"
	// SiteStoreSwap fires inside the MVCC store's commit, after the
	// transaction journal has been replayed onto the writer master but
	// before the new version is published (internal/store). Hooks here
	// stretch the swap window so snapshot-isolation tests can prove readers
	// keep seeing the prior version until the atomic publish.
	SiteStoreSwap = "store.swap"

	// SiteIORead fires on every Read of a retrying input stream
	// (internal/etl). Error hooks here simulate transient reader hiccups —
	// flaky NFS mounts, droppy network fetches — to exercise backoff.
	SiteIORead = "io.read"
	// SitePersistAppend fires before a WAL record is written
	// (internal/persist). An error hook makes the writer emit a deliberately
	// torn (half-written) record and fail, simulating a crash mid-write.
	SitePersistAppend = "persist.append"
	// SitePersistSync fires before a WAL fsync (internal/persist). Error
	// hooks simulate fsync failures (full disk, dying device); the WAL goes
	// fail-stop.
	SitePersistSync = "persist.sync"
	// SitePersistRename fires between a snapshot temp file being fsynced and
	// its atomic rename (internal/persist). Error hooks simulate a crash in
	// that window: the temp file is left behind, the old snapshot stays
	// authoritative.
	SitePersistRename = "persist.rename"

	// SiteReplAccept fires when the replication leader accepts a follower
	// connection (internal/replication). An error hook closes the connection
	// immediately — a leader refusing or crashing at accept time.
	SiteReplAccept = "replication.accept"
	// SiteReplSend fires before the leader writes a protocol message to a
	// follower (internal/replication). An error hook makes the leader write
	// only half the message and drop the connection, simulating a stream cut
	// mid-frame.
	SiteReplSend = "replication.send"
	// SiteReplFrame fires as the leader ships a WAL frame
	// (internal/replication). An error hook flips a payload byte on the wire,
	// so the follower's CRC re-check must catch it.
	SiteReplFrame = "replication.frame"
	// SiteReplApply fires before the follower applies a received frame
	// (internal/replication). Plain hooks here slow the follower down to
	// build up replication lag.
	SiteReplApply = "replication.apply"
	// SiteReplDial fires before the follower dials the leader
	// (internal/replication). Error hooks simulate an unreachable leader to
	// exercise the reconnect backoff.
	SiteReplDial = "replication.dial"
	// SiteReplHeartbeat fires before the leader sends an idle-stream
	// heartbeat (internal/replication). An error hook suppresses the
	// heartbeat — the wire stays up but carries no liveness signal — so
	// followers' lease deadlines expire under a live but mute leader.
	SiteReplHeartbeat = "replication.heartbeat"
	// SiteReplLease fires on every lease check of a replica-group leader
	// (internal/replication). An error hook forces the check to report the
	// lease lost, making the leader step down as if its followers had gone
	// silent.
	SiteReplLease = "replication.lease"
	// SiteReplPromote fires between a candidate deciding to promote and it
	// durably fencing the new epoch (internal/replication). Plain hooks here
	// stretch the promotion window so races between concurrent candidates —
	// and between a promotion and a returning old leader — get a chance to
	// happen in tests.
	SiteReplPromote = "replication.promote"
)

// Fn is an injected behavior. It may sleep, panic, or do nothing.
type Fn func()

// ErrFn is an injected fallible behavior: returning a non-nil error makes
// the instrumented operation fail as if the underlying syscall had.
type ErrFn func() error

var (
	armed    atomic.Bool // true while any hook is registered
	mu       sync.RWMutex
	hooks    = map[string]Fn{}
	errHooks = map[string]ErrFn{}
)

// Set registers (or replaces) the hook for a site. Tests must pair Set with
// Clear or Reset (typically via t.Cleanup).
func Set(site string, fn Fn) {
	mu.Lock()
	defer mu.Unlock()
	if fn == nil {
		delete(hooks, site)
	} else {
		hooks[site] = fn
	}
	armed.Store(len(hooks)+len(errHooks) > 0)
}

// SetErr registers (or replaces) the error hook for a site. Tests must pair
// SetErr with Clear or Reset (typically via t.Cleanup).
func SetErr(site string, fn ErrFn) {
	mu.Lock()
	defer mu.Unlock()
	if fn == nil {
		delete(errHooks, site)
	} else {
		errHooks[site] = fn
	}
	armed.Store(len(hooks)+len(errHooks) > 0)
}

// Clear removes the hooks (plain and error) for a site.
func Clear(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, site)
	delete(errHooks, site)
	armed.Store(len(hooks)+len(errHooks) > 0)
}

// Reset removes every hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = map[string]Fn{}
	errHooks = map[string]ErrFn{}
	armed.Store(false)
}

// Fire invokes the hook registered for site, if any. It is safe for
// concurrent use and near-free when no hooks are registered.
func Fire(site string) {
	if !armed.Load() {
		return
	}
	mu.RLock()
	fn := hooks[site]
	mu.RUnlock()
	if fn != nil {
		fn()
	}
}

// FireErr invokes the error hook registered for site, if any, and returns
// its error. Production code treats a non-nil return as the instrumented
// operation failing. Like Fire, it is a single atomic load when no hooks
// are registered.
func FireErr(site string) error {
	if !armed.Load() {
		return nil
	}
	mu.RLock()
	fn := errHooks[site]
	mu.RUnlock()
	if fn != nil {
		return fn()
	}
	return nil
}
