package faultinject

import (
	"sync"
	"testing"
)

func TestFireRunsRegisteredHook(t *testing.T) {
	t.Cleanup(Reset)
	n := 0
	Set("site.a", func() { n++ })
	Fire("site.a")
	Fire("site.b") // unregistered: no-op
	Fire("site.a")
	if n != 2 {
		t.Errorf("hook ran %d times, want 2", n)
	}
	Clear("site.a")
	Fire("site.a")
	if n != 2 {
		t.Errorf("cleared hook still fired")
	}
}

func TestFireDisarmedIsNoop(t *testing.T) {
	Reset()
	Fire("anything") // must not panic or block
}

func TestConcurrentSetAndFire(t *testing.T) {
	t.Cleanup(Reset)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				Set("race.site", func() {})
				Clear("race.site")
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				Fire("race.site")
			}
		}()
	}
	wg.Wait()
}
