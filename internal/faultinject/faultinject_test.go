package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestFireRunsRegisteredHook(t *testing.T) {
	t.Cleanup(Reset)
	n := 0
	Set("site.a", func() { n++ })
	Fire("site.a")
	Fire("site.b") // unregistered: no-op
	Fire("site.a")
	if n != 2 {
		t.Errorf("hook ran %d times, want 2", n)
	}
	Clear("site.a")
	Fire("site.a")
	if n != 2 {
		t.Errorf("cleared hook still fired")
	}
}

func TestFireDisarmedIsNoop(t *testing.T) {
	Reset()
	Fire("anything") // must not panic or block
}

func TestFireErrReturnsInjectedError(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	calls := 0
	SetErr("site.err", func() error {
		calls++
		if calls < 3 {
			return boom
		}
		return nil
	})
	if err := FireErr("site.err"); err != boom {
		t.Errorf("FireErr = %v, want boom", err)
	}
	if err := FireErr("site.other"); err != nil {
		t.Errorf("unregistered site returned %v", err)
	}
	FireErr("site.err")
	if err := FireErr("site.err"); err != nil {
		t.Errorf("third call = %v, want nil", err)
	}
	Clear("site.err")
	if err := FireErr("site.err"); err != nil {
		t.Errorf("cleared error hook still fired: %v", err)
	}
}

// TestErrHookArmsRegistry: an ErrFn alone must arm the registry (the armed
// flag short-circuits both Fire and FireErr).
func TestErrHookArmsRegistry(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	SetErr("only.err", func() error { return errors.New("x") })
	if err := FireErr("only.err"); err == nil {
		t.Error("error hook did not fire — registry not armed by SetErr?")
	}
}

func TestConcurrentSetAndFire(t *testing.T) {
	t.Cleanup(Reset)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				Set("race.site", func() {})
				Clear("race.site")
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				Fire("race.site")
			}
		}()
	}
	wg.Wait()
}
