// Package cluster implements the two clustering levels of Vada-Link's
// Algorithm 3:
//
//   - first level (#GraphEmbedClust): k-means over node2vec embeddings,
//     with k-means++ seeding and Lloyd iterations;
//   - second level (#GenerateBlocks): deterministic feature-based blocking
//     with pluggable, polymorphic key functions per node type (Section 4.2),
//     including the hash-partitioning variant used by the Figure 4(c)
//     cluster-count experiments.
package cluster

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"vadalink/internal/pg"
)

// KMeansResult holds a clustering of embedded nodes.
type KMeansResult struct {
	K          int
	Assignment map[pg.NodeID]int
	Centroids  [][]float64
	Iterations int
}

// KMeans clusters node vectors into k groups with k-means++ seeding and at
// most maxIter Lloyd iterations (default 50 when 0). It is deterministic for
// a fixed seed. k is clamped to the number of distinct nodes.
func KMeans(vectors map[pg.NodeID][]float64, k int, seed int64, maxIter int) (*KMeansResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	ids := make([]pg.NodeID, 0, len(vectors))
	for id := range vectors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) == 0 {
		return &KMeansResult{K: 0, Assignment: map[pg.NodeID]int{}}, nil
	}
	if k > len(ids) {
		k = len(ids)
	}
	dims := len(vectors[ids[0]])
	r := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := ids[r.Intn(len(ids))]
	centroids = append(centroids, append([]float64(nil), vectors[first]...))
	dist2 := make([]float64, len(ids))
	for len(centroids) < k {
		var sum float64
		for i, id := range ids {
			d := sqDist(vectors[id], centroids[len(centroids)-1])
			if len(centroids) == 1 || d < dist2[i] {
				dist2[i] = d
			}
			sum += dist2[i]
		}
		var chosen pg.NodeID
		if sum == 0 {
			chosen = ids[r.Intn(len(ids))]
		} else {
			u := r.Float64() * sum
			chosen = ids[len(ids)-1]
			for i, id := range ids {
				u -= dist2[i]
				if u <= 0 {
					chosen = id
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), vectors[chosen]...))
	}

	assign := make(map[pg.NodeID]int, len(ids))
	iterations := 0
	for iter := 0; iter < maxIter; iter++ {
		iterations = iter + 1
		changed := false
		for _, id := range ids {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(vectors[id], cent); d < bestD {
					best, bestD = c, d
				}
			}
			if prev, ok := assign[id]; !ok || prev != best {
				assign[id] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dims)
		}
		for _, id := range ids {
			c := assign[id]
			counts[c]++
			for d, v := range vectors[id] {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty clusters at a random point.
				centroids[c] = append([]float64(nil), vectors[ids[r.Intn(len(ids))]]...)
				continue
			}
			for d := range sums[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return &KMeansResult{K: k, Assignment: assign, Centroids: centroids, Iterations: iterations}, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Inertia computes the within-cluster sum of squared distances, the standard
// k-means objective; tests use it to check Lloyd iterations never increase
// the objective.
func (r *KMeansResult) Inertia(vectors map[pg.NodeID][]float64) float64 {
	var s float64
	for id, c := range r.Assignment {
		s += sqDist(vectors[id], r.Centroids[c])
	}
	return s
}

// Sizes returns per-cluster member counts.
func (r *KMeansResult) Sizes() []int {
	sizes := make([]int, r.K)
	for _, c := range r.Assignment {
		sizes[c]++
	}
	return sizes
}

// --- second-level blocking (#GenerateBlocks) ---

// Blocker assigns a node to a second-level block. Implementations are the
// "pluggable implementations for various domains" of Section 4.2.
type Blocker interface {
	// Key returns the block identifier of the node, or "" to leave the node
	// unblocked (it then matches nothing).
	Key(n *pg.Node) string
}

// BlockerFunc adapts a function to the Blocker interface.
type BlockerFunc func(n *pg.Node) string

// Key implements Blocker.
func (f BlockerFunc) Key(n *pg.Node) string { return f(n) }

// FeatureHashBlocker hashes the listed feature values into K buckets — the
// Skolem/hash partitioning scheme of Section 4.2, and the mechanism the
// Figure 4(c) experiment uses to hijack the block count.
type FeatureHashBlocker struct {
	Features []string
	K        int
}

// Key implements Blocker.
func (b FeatureHashBlocker) Key(n *pg.Node) string {
	h := fnv.New64a()
	for _, f := range b.Features {
		fmt.Fprintf(h, "%v|", n.Props[f])
	}
	if b.K <= 0 {
		return fmt.Sprintf("h%x", h.Sum64())
	}
	return fmt.Sprintf("b%d", h.Sum64()%uint64(b.K))
}

// SingleBlock puts every node in one block — the paper's "no cluster mode"
// used to compute the exhaustive ground truth in Section 6.2.
type SingleBlock struct{}

// Key implements Blocker.
func (SingleBlock) Key(*pg.Node) string { return "all" }

// MultiKeyBlocker is an optional Blocker extension for multi-pass blocking,
// the standard record-linkage technique: a node belongs to one block per
// key, and a pair is compared when it shares any block. Partition uses
// AllKeys when available.
type MultiKeyBlocker interface {
	Blocker
	// AllKeys returns every blocking key of the node ("" entries are
	// skipped).
	AllKeys(n *pg.Node) []string
}

// Partition groups the given node IDs by blocker key, dropping nodes with an
// empty key. With a MultiKeyBlocker the blocks may overlap (multi-pass
// blocking). Block order and within-block order are deterministic.
func Partition(g pg.View, ids []pg.NodeID, b Blocker) [][]pg.NodeID {
	multi, isMulti := b.(MultiKeyBlocker)
	byKey := map[string][]pg.NodeID{}
	for _, id := range ids {
		n := g.Node(id)
		if n == nil {
			continue
		}
		var keys []string
		if isMulti {
			keys = multi.AllKeys(n)
		} else {
			keys = []string{b.Key(n)}
		}
		seen := map[string]bool{}
		for _, k := range keys {
			if k == "" || seen[k] {
				continue
			}
			seen[k] = true
			byKey[k] = append(byKey[k], id)
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]pg.NodeID, 0, len(keys))
	for _, k := range keys {
		members := byKey[k]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	return out
}
