package cluster

import (
	"fmt"

	"vadalink/internal/family"
	"vadalink/internal/pg"
)

// PersonBlocker blocks person nodes with two passes, the standard
// record-linkage multi-pass scheme the paper's Section 6.1 discussion calls
// for ("searching for the siblingOf relationship among people of the same
// last name ... would lead to clusters including thousands of persons ...
// resorting to specific features, for example address vicinity ... could
// highly reduce the search space"):
//
//   - a surname pass: phonetic surname code (Soundex) plus birth decade —
//     catches siblings and parent–child pairs that moved apart;
//   - a household pass: city plus street address — catches partners with
//     different surnames and cross-generation pairs at the family seat.
//
// A pair of persons is compared when it shares either key. Non-person nodes
// get no keys.
type PersonBlocker struct {
	// ByCity additionally partitions the surname pass by city, sharpening
	// selectivity on very common surnames.
	ByCity bool
	// NoHousehold disables the household pass (surname-only blocking).
	NoHousehold bool
}

// Key implements Blocker with the surname pass (the primary key).
func (b PersonBlocker) Key(n *pg.Node) string {
	keys := b.AllKeys(n)
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// AllKeys implements MultiKeyBlocker.
func (b PersonBlocker) AllKeys(n *pg.Node) []string {
	if n.Label != pg.LabelPerson {
		return nil
	}
	var keys []string
	if surname, _ := n.Props["surname"].(string); surname != "" {
		decade := 0
		switch v := n.Props["birth"].(type) {
		case float64:
			decade = int(v) / 10
		case int64:
			decade = int(v) / 10
		case int:
			decade = v / 10
		}
		key := fmt.Sprintf("sn|%s|%d", family.Soundex(surname), decade)
		if b.ByCity {
			city, _ := n.Props["city"].(string)
			key += "|" + city
		}
		keys = append(keys, key)
	}
	if !b.NoHousehold {
		addr, _ := n.Props["addr"].(string)
		city, _ := n.Props["city"].(string)
		if addr != "" {
			keys = append(keys, "hh|"+city+"|"+addr)
		}
	}
	return keys
}

// CompanyBlocker blocks company nodes by sector (the Section 4.2 example:
// "in case of companies, the industrial sector may be relevant").
type CompanyBlocker struct{}

// Key implements Blocker.
func (CompanyBlocker) Key(n *pg.Node) string {
	if n.Label != pg.LabelCompany {
		return ""
	}
	sector, _ := n.Props["sector"].(string)
	if sector == "" {
		return "company"
	}
	return "sector|" + sector
}
