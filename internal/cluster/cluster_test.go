package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vadalink/internal/pg"
)

// blobs generates k well-separated Gaussian blobs of vectors.
func blobs(k, perBlob, dims int, seed int64) (map[pg.NodeID][]float64, map[pg.NodeID]int) {
	r := rand.New(rand.NewSource(seed))
	vectors := map[pg.NodeID][]float64{}
	truth := map[pg.NodeID]int{}
	id := pg.NodeID(0)
	for c := 0; c < k; c++ {
		center := make([]float64, dims)
		for d := range center {
			center[d] = float64(c*20) + r.Float64()
		}
		for i := 0; i < perBlob; i++ {
			v := make([]float64, dims)
			for d := range v {
				v[d] = center[d] + r.NormFloat64()*0.5
			}
			vectors[id] = v
			truth[id] = c
			id++
		}
	}
	return vectors, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	vectors, truth := blobs(3, 30, 4, 11)
	res, err := KMeans(vectors, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All members of a true blob must share an assigned cluster, and
	// different blobs must get different clusters.
	blobCluster := map[int]int{}
	for id, tc := range truth {
		ac := res.Assignment[id]
		if prev, ok := blobCluster[tc]; ok {
			if prev != ac {
				t.Fatalf("blob %d split across clusters %d and %d", tc, prev, ac)
			}
		} else {
			blobCluster[tc] = ac
		}
	}
	seen := map[int]bool{}
	for _, c := range blobCluster {
		if seen[c] {
			t.Fatal("two blobs merged into one cluster")
		}
		seen[c] = true
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vectors, _ := blobs(4, 20, 3, 2)
	r1, _ := KMeans(vectors, 4, 99, 0)
	r2, _ := KMeans(vectors, 4, 99, 0)
	for id := range vectors {
		if r1.Assignment[id] != r2.Assignment[id] {
			t.Fatalf("assignment differs for %d", id)
		}
	}
}

func TestKMeansClampsK(t *testing.T) {
	vectors, _ := blobs(1, 3, 2, 3)
	res, err := KMeans(vectors, 10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Errorf("K = %d, want clamped to 3", res.K)
	}
}

func TestKMeansRejectsNonPositiveK(t *testing.T) {
	vectors, _ := blobs(1, 3, 2, 3)
	if _, err := KMeans(vectors, 0, 1, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKMeansEmptyInput(t *testing.T) {
	res, err := KMeans(map[pg.NodeID][]float64{}, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != 0 {
		t.Error("empty input produced assignments")
	}
}

func TestKMeansEveryNodeAssigned(t *testing.T) {
	f := func(seed int64) bool {
		vectors, _ := blobs(3, 10, 3, seed)
		res, err := KMeans(vectors, 5, seed, 0)
		if err != nil {
			return false
		}
		if len(res.Assignment) != len(vectors) {
			return false
		}
		for _, c := range res.Assignment {
			if c < 0 || c >= res.K {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSizesSumToNodes(t *testing.T) {
	vectors, _ := blobs(4, 25, 3, 7)
	res, _ := KMeans(vectors, 4, 1, 0)
	total := 0
	for _, s := range res.Sizes() {
		total += s
	}
	if total != len(vectors) {
		t.Errorf("sizes sum = %d, want %d", total, len(vectors))
	}
}

func personNode(g *pg.Graph, surname string, birth float64, city string) pg.NodeID {
	return g.AddNode(pg.LabelPerson, pg.Properties{
		"surname": surname, "birth": birth, "city": city,
	})
}

func TestPersonBlocker(t *testing.T) {
	g := pg.New()
	a := personNode(g, "Rossi", 1960, "Roma")
	b := personNode(g, "Rossi", 1965, "Roma") // same soundex, same decade? 1960/10=196, 1965/10=196 ✓
	c := personNode(g, "Bianchi", 1960, "Roma")
	comp := g.AddNode(pg.LabelCompany, pg.Properties{"sector": "finance"})

	blk := PersonBlocker{}
	if blk.Key(g.Node(a)) != blk.Key(g.Node(b)) {
		t.Error("same surname+decade persons must share a block")
	}
	if blk.Key(g.Node(a)) == blk.Key(g.Node(c)) {
		t.Error("different surnames must not share a block")
	}
	if blk.Key(g.Node(comp)) != "" {
		t.Error("companies must be unblocked by PersonBlocker")
	}
	// Phonetically identical surnames co-block (Rossi/Russo → R200).
	d := personNode(g, "Russo", 1961, "Roma")
	if blk.Key(g.Node(a)) != blk.Key(g.Node(d)) {
		t.Error("phonetically identical surnames should share a block")
	}
}

func TestCompanyBlocker(t *testing.T) {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"sector": "finance"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"sector": "finance"})
	c := g.AddNode(pg.LabelCompany, pg.Properties{"sector": "retail"})
	p := personNode(g, "Rossi", 1960, "Roma")
	blk := CompanyBlocker{}
	if blk.Key(g.Node(a)) != blk.Key(g.Node(b)) {
		t.Error("same-sector companies must share a block")
	}
	if blk.Key(g.Node(a)) == blk.Key(g.Node(c)) {
		t.Error("different sectors must not share a block")
	}
	if blk.Key(g.Node(p)) != "" {
		t.Error("persons must be unblocked by CompanyBlocker")
	}
}

func TestFeatureHashBlockerBucketCount(t *testing.T) {
	g := pg.New()
	var ids []pg.NodeID
	for i := 0; i < 500; i++ {
		ids = append(ids, g.AddNode(pg.LabelPerson, pg.Properties{
			"surname": "S" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)),
			"birth":   float64(1940 + i%60),
		}))
	}
	for _, k := range []int{1, 5, 20, 100} {
		blocks := Partition(g, ids, FeatureHashBlocker{Features: []string{"surname", "birth"}, K: k})
		if len(blocks) > k {
			t.Errorf("K=%d produced %d blocks", k, len(blocks))
		}
		total := 0
		for _, blk := range blocks {
			total += len(blk)
		}
		if total != len(ids) {
			t.Errorf("K=%d lost nodes: %d/%d", k, total, len(ids))
		}
	}
}

func TestSingleBlock(t *testing.T) {
	g := pg.New()
	var ids []pg.NodeID
	for i := 0; i < 10; i++ {
		ids = append(ids, g.AddNode(pg.LabelPerson, nil))
	}
	blocks := Partition(g, ids, SingleBlock{})
	if len(blocks) != 1 || len(blocks[0]) != 10 {
		t.Errorf("SingleBlock partition = %v", blocks)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := pg.New()
	var ids []pg.NodeID
	for i := 0; i < 100; i++ {
		ids = append(ids, g.AddNode(pg.LabelPerson, pg.Properties{
			"surname": "S" + string(rune('a'+i%7)),
		}))
	}
	b := FeatureHashBlocker{Features: []string{"surname"}, K: 4}
	p1 := Partition(g, ids, b)
	p2 := Partition(g, ids, b)
	if len(p1) != len(p2) {
		t.Fatal("partition count differs between runs")
	}
	for i := range p1 {
		if len(p1[i]) != len(p2[i]) {
			t.Fatal("partition sizes differ between runs")
		}
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatal("partition order differs between runs")
			}
		}
	}
}
