package pg

import (
	"encoding/json"
	"fmt"
	"io"
)

// View is the read-only interface of a property graph. Both *Graph and
// *Overlay satisfy it, so every consumer of graph structure — the imperative
// solvers, the relational fact extraction feeding the chase, statistics,
// serialization — can run indifferently against a flat graph, a frozen MVCC
// snapshot, or a what-if overlay stacked on one.
//
// A View obtained from a published store version is frozen: it never changes
// and is safe for unsynchronized concurrent reads. A View of a graph or
// overlay that is still being mutated follows the owning type's rules
// (reads are safe once mutation stops).
type View interface {
	// Node returns the node with the given ID, or nil.
	Node(id NodeID) *Node
	// Edge returns the edge with the given ID, or nil.
	Edge(id EdgeID) *Edge
	// NumNodes reports the number of visible nodes.
	NumNodes() int
	// NumEdges reports the number of visible edges.
	NumEdges() int
	// Nodes returns all visible node IDs in ascending order.
	Nodes() []NodeID
	// Edges returns all visible edge IDs in ascending order.
	Edges() []EdgeID
	// NodesWithLabel returns the visible nodes carrying the label, in
	// insertion order.
	NodesWithLabel(label Label) []NodeID
	// EdgesWithLabel returns the visible edges carrying the label, in
	// insertion order.
	EdgesWithLabel(label Label) []EdgeID
	// Out returns the outgoing edge IDs of a node. Callers must not mutate
	// the returned slice.
	Out(id NodeID) []EdgeID
	// In returns the incoming edge IDs of a node. Callers must not mutate
	// the returned slice.
	In(id NodeID) []EdgeID
	// OutLabel returns the outgoing edges of n restricted to one label.
	OutLabel(n NodeID, label Label) []*Edge
	// InLabel returns the incoming edges of n restricted to one label.
	InLabel(n NodeID, label Label) []*Edge
	// HasEdge reports whether an edge with the given label exists from → to.
	HasEdge(label Label, from, to NodeID) bool
	// NextNodeID returns the identifier the next AddNode would assign.
	NextNodeID() NodeID
	// NextEdgeID returns the identifier the next AddEdge would assign.
	NextEdgeID() EdgeID
}

// Mutable is a property graph that accepts the three committed mutation
// kinds. *Graph and *Overlay satisfy it; the KG-augmentation loop writes
// through this interface so a whole augment can run against an overlay
// transaction instead of the base graph.
type Mutable interface {
	View
	// AddNode inserts a node and returns its ID.
	AddNode(label Label, props Properties) NodeID
	// AddEdge inserts a directed edge from → to and returns its ID.
	AddEdge(label Label, from, to NodeID, props Properties) (EdgeID, error)
	// MustAddEdge is AddEdge that panics on error.
	MustAddEdge(label Label, from, to NodeID, props Properties) EdgeID
	// RemoveEdge deletes an edge, reporting whether it existed.
	RemoveEdge(id EdgeID) bool
}

var (
	_ Mutable = (*Graph)(nil)
	_ Mutable = (*Overlay)(nil)
)

// Flatten materializes any View into a standalone flat Graph. Node and edge
// identities and the ID counters are preserved, so facts, WAL positions and
// later overlays keyed on the original view stay aligned. For a *Graph it is
// exactly Clone.
func Flatten(v View) (*Graph, error) {
	if g, ok := v.(*Graph); ok {
		return g.Clone(), nil
	}
	nodeIDs := v.Nodes()
	nodes := make([]Node, 0, len(nodeIDs))
	for _, id := range nodeIDs {
		nodes = append(nodes, *v.Node(id))
	}
	edgeIDs := v.Edges()
	edges := make([]Edge, 0, len(edgeIDs))
	for _, id := range edgeIDs {
		edges = append(edges, *v.Edge(id))
	}
	return Restore(nodes, edges, v.NextNodeID(), v.NextEdgeID())
}

// ValidateView checks the company-graph invariants of Definition 2.2 over
// any view: shareholding edges carry a weight in (0, 1], shareholding
// sources are companies or persons, and shareholding targets are companies.
// It returns the first violation found, or nil.
func ValidateView(v View) error {
	for _, eid := range v.Edges() {
		e := v.Edge(eid)
		if e.Label != LabelShareholding {
			continue
		}
		w, ok := e.Weight()
		if !ok {
			return fmt.Errorf("pg: edge %d: shareholding edge missing weight", eid)
		}
		if w <= 0 || w > 1 {
			return fmt.Errorf("pg: edge %d: share amount %v outside (0,1]", eid, w)
		}
		from, to := v.Node(e.From), v.Node(e.To)
		if to.Label != LabelCompany {
			return fmt.Errorf("pg: edge %d: shareholding target %d is %s, want Company", eid, e.To, to.Label)
		}
		if from.Label != LabelCompany && from.Label != LabelPerson {
			return fmt.Errorf("pg: edge %d: shareholding source %d is %s, want Company or Person", eid, e.From, from.Label)
		}
	}
	return nil
}

// NeighborhoodOf returns the induced subgraph around a node of any view:
// every node within the given number of hops (edges followed in both
// directions) plus all the edges among them. Node and edge identities are
// freshly assigned; the returned mapping translates original → subgraph node
// IDs.
func NeighborhoodOf(v View, center NodeID, hops int) (*Graph, map[NodeID]NodeID) {
	if v.Node(center) == nil {
		return New(), map[NodeID]NodeID{}
	}
	inSet := map[NodeID]bool{center: true}
	frontier := []NodeID{center}
	for h := 0; h < hops; h++ {
		var next []NodeID
		for _, n := range frontier {
			for _, eid := range v.Out(n) {
				if e := v.Edge(eid); e != nil && !inSet[e.To] {
					inSet[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, eid := range v.In(n) {
				if e := v.Edge(eid); e != nil && !inSet[e.From] {
					inSet[e.From] = true
					next = append(next, e.From)
				}
			}
		}
		frontier = next
	}
	sub := New()
	mapping := make(map[NodeID]NodeID, len(inSet))
	for _, id := range v.Nodes() {
		if !inSet[id] {
			continue
		}
		n := v.Node(id)
		props := make(Properties, len(n.Props))
		for k, val := range n.Props {
			props[k] = val
		}
		mapping[id] = sub.AddNode(n.Label, props)
	}
	for _, eid := range v.Edges() {
		e := v.Edge(eid)
		if !inSet[e.From] || !inSet[e.To] {
			continue
		}
		props := make(Properties, len(e.Props))
		for k, val := range e.Props {
			props[k] = val
		}
		sub.MustAddEdge(e.Label, mapping[e.From], mapping[e.To], props)
	}
	return sub, mapping
}

// WriteJSONView serializes any view as a single JSON document, in the same
// format Graph.WriteJSON produces.
func WriteJSONView(v View, w io.Writer) error {
	doc := jsonGraph{}
	for _, id := range v.Nodes() {
		n := v.Node(id)
		doc.Nodes = append(doc.Nodes, jsonNode{ID: n.ID, Label: n.Label, Props: n.Props})
	}
	for _, id := range v.Edges() {
		e := v.Edge(id)
		doc.Edges = append(doc.Edges, jsonEdge{ID: e.ID, Label: e.Label, From: e.From, To: e.To, Props: e.Props})
	}
	return json.NewEncoder(w).Encode(doc)
}
