package pg

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    NodeID         `json:"id"`
	Label Label          `json:"label"`
	Props map[string]any `json:"props,omitempty"`
}

type jsonEdge struct {
	ID    EdgeID         `json:"id"`
	Label Label          `json:"label"`
	From  NodeID         `json:"from"`
	To    NodeID         `json:"to"`
	Props map[string]any `json:"props,omitempty"`
}

// WriteJSON serializes the graph as a single JSON document.
func (g *Graph) WriteJSON(w io.Writer) error { return WriteJSONView(g, w) }

// ReadJSON parses a graph previously written with WriteJSON. Node and edge
// IDs are preserved. Numeric property values decode as float64 (JSON
// semantics).
func ReadJSON(r io.Reader) (*Graph, error) {
	var doc jsonGraph
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("pg: read json: %w", err)
	}
	g := New()
	for _, n := range doc.Nodes {
		props := Properties{}
		for k, v := range n.Props {
			props[k] = v
		}
		g.nodes[n.ID] = &Node{ID: n.ID, Label: n.Label, Props: props}
		g.byNodeLabel[n.Label] = append(g.byNodeLabel[n.Label], n.ID)
		if n.ID >= g.nextNode {
			g.nextNode = n.ID + 1
		}
	}
	for _, e := range doc.Edges {
		if _, ok := g.nodes[e.From]; !ok {
			return nil, fmt.Errorf("pg: read json: edge %d references missing node %d", e.ID, e.From)
		}
		if _, ok := g.nodes[e.To]; !ok {
			return nil, fmt.Errorf("pg: read json: edge %d references missing node %d", e.ID, e.To)
		}
		props := Properties{}
		for k, v := range e.Props {
			props[k] = v
		}
		g.edges[e.ID] = &Edge{ID: e.ID, Label: e.Label, From: e.From, To: e.To, Props: props}
		g.out[e.From] = append(g.out[e.From], e.ID)
		g.in[e.To] = append(g.in[e.To], e.ID)
		g.byEdgeLabel[e.Label] = append(g.byEdgeLabel[e.Label], e.ID)
		if e.ID >= g.nextEdge {
			g.nextEdge = e.ID + 1
		}
	}
	return g, nil
}

// WriteEdgeCSV writes shareholding edges as "from,to,w" rows, the exchange
// format used by the ETL examples. Only Shareholding edges are exported.
func (g *Graph) WriteEdgeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"from", "to", "w"}); err != nil {
		return err
	}
	for _, eid := range g.Edges() {
		e := g.edges[eid]
		if e.Label != LabelShareholding {
			continue
		}
		wt, _ := e.Weight()
		rec := []string{
			strconv.FormatInt(int64(e.From), 10),
			strconv.FormatInt(int64(e.To), 10),
			strconv.FormatFloat(wt, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEdgeCSV loads shareholding edges from "from,to,w" rows into a fresh
// graph, creating Company nodes for every mentioned ID.
func ReadEdgeCSV(r io.Reader) (*Graph, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("pg: read csv: %w", err)
	}
	g := New()
	seen := map[NodeID]bool{}
	ensure := func(id NodeID) {
		if !seen[id] {
			seen[id] = true
			g.nodes[id] = &Node{ID: id, Label: LabelCompany, Props: Properties{}}
			g.byNodeLabel[LabelCompany] = append(g.byNodeLabel[LabelCompany], id)
			if id >= g.nextNode {
				g.nextNode = id + 1
			}
		}
	}
	for i, rec := range recs {
		if i == 0 && len(rec) >= 1 && rec[0] == "from" {
			continue // header
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("pg: read csv: row %d: want 3 fields, got %d", i, len(rec))
		}
		from, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pg: read csv: row %d: bad from: %w", i, err)
		}
		to, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pg: read csv: row %d: bad to: %w", i, err)
		}
		wt, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("pg: read csv: row %d: bad weight: %w", i, err)
		}
		ensure(NodeID(from))
		ensure(NodeID(to))
		if _, err := g.AddShare(NodeID(from), NodeID(to), wt); err != nil {
			return nil, err
		}
	}
	return g, nil
}
