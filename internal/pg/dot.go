package pg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format, in the visual language
// of the paper's figures: persons as blue ellipses, companies as black
// boxes, shareholding edges solid and labelled with the share percentage,
// predicted edges dashed and coloured by class (control green, close link
// magenta, personal connections red).
func (g *Graph) WriteDOT(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("digraph company {\n")
	sb.WriteString("  rankdir=TB;\n  node [fontsize=10];\n  edge [fontsize=9];\n")

	for _, id := range g.Nodes() {
		n := g.Node(id)
		label := fmt.Sprintf("%v", n.Props["name"])
		if label == "<nil>" || label == "" {
			label = fmt.Sprintf("n%d", id)
		}
		if sn, ok := n.Props["surname"].(string); ok && sn != "" {
			label += " " + sn
		}
		switch n.Label {
		case LabelPerson:
			fmt.Fprintf(&sb, "  n%d [label=%q, shape=ellipse, color=blue, fontcolor=blue];\n", id, label)
		default:
			fmt.Fprintf(&sb, "  n%d [label=%q, shape=box];\n", id, label)
		}
	}

	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		switch e.Label {
		case LabelShareholding:
			w, _ := e.Weight()
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%.0f%%\"];\n", e.From, e.To, w*100)
		case LabelControl:
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed, color=green, label=\"control\"];\n", e.From, e.To)
		case LabelCloseLink:
			// Close links are symmetric; render each stored direction once
			// as an undirected-looking edge.
			if e.From < e.To || !g.HasEdge(LabelCloseLink, e.To, e.From) {
				fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed, color=magenta, dir=none, label=\"close link\"];\n", e.From, e.To)
			}
		case LabelPartnerOf, LabelSiblingOf, LabelParentOf, LabelFamily:
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed, color=red, label=%q];\n", e.From, e.To, strings.ToLower(string(e.Label)))
		default:
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dotted, label=%q];\n", e.From, e.To, string(e.Label))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
