package pg

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g := New()
	a := g.AddNode(LabelCompany, nil)
	b := g.AddNode(LabelPerson, nil)
	if a == b {
		t.Fatalf("node IDs collide: %d", a)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	if g.Node(a).Label != LabelCompany {
		t.Errorf("node %d label = %s, want Company", a, g.Node(a).Label)
	}
	if g.Node(b).Label != LabelPerson {
		t.Errorf("node %d label = %s, want Person", b, g.Node(b).Label)
	}
}

func TestAddEdgeRejectsMissingEndpoints(t *testing.T) {
	g := New()
	a := g.AddNode(LabelCompany, nil)
	if _, err := g.AddEdge(LabelShareholding, a, NodeID(99), nil); err == nil {
		t.Error("AddEdge with missing target: want error, got nil")
	}
	if _, err := g.AddEdge(LabelShareholding, NodeID(99), a, nil); err == nil {
		t.Error("AddEdge with missing source: want error, got nil")
	}
}

func TestAdjacency(t *testing.T) {
	g := New()
	a := g.AddNode(LabelCompany, nil)
	b := g.AddNode(LabelCompany, nil)
	c := g.AddNode(LabelCompany, nil)
	e1, _ := g.AddShare(a, b, 0.5)
	e2, _ := g.AddShare(a, c, 0.3)
	e3, _ := g.AddShare(b, c, 0.7)

	if got := g.Out(a); len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Errorf("Out(a) = %v, want [%d %d]", got, e1, e2)
	}
	if got := g.In(c); len(got) != 2 || got[0] != e2 || got[1] != e3 {
		t.Errorf("In(c) = %v, want [%d %d]", got, e2, e3)
	}
	if !g.HasEdge(LabelShareholding, a, b) {
		t.Error("HasEdge(a,b) = false, want true")
	}
	if g.HasEdge(LabelShareholding, b, a) {
		t.Error("HasEdge(b,a) = true, want false")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	a := g.AddNode(LabelCompany, nil)
	b := g.AddNode(LabelCompany, nil)
	e, _ := g.AddShare(a, b, 0.5)
	if !g.RemoveEdge(e) {
		t.Fatal("RemoveEdge returned false for live edge")
	}
	if g.RemoveEdge(e) {
		t.Error("RemoveEdge returned true for already-removed edge")
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d after removal, want 0", g.NumEdges())
	}
	if len(g.Out(a)) != 0 || len(g.In(b)) != 0 {
		t.Errorf("adjacency not cleaned: out=%v in=%v", g.Out(a), g.In(b))
	}
	if got := g.EdgesWithLabel(LabelShareholding); len(got) != 0 {
		t.Errorf("EdgesWithLabel after removal = %v, want empty", got)
	}
}

func TestLabelIndexes(t *testing.T) {
	g := New()
	c1 := g.AddNode(LabelCompany, nil)
	p1 := g.AddNode(LabelPerson, nil)
	c2 := g.AddNode(LabelCompany, nil)
	if got := g.NodesWithLabel(LabelCompany); len(got) != 2 || got[0] != c1 || got[1] != c2 {
		t.Errorf("NodesWithLabel(Company) = %v", got)
	}
	if got := g.NodesWithLabel(LabelPerson); len(got) != 1 || got[0] != p1 {
		t.Errorf("NodesWithLabel(Person) = %v", got)
	}
}

func TestValidateCompanyGraph(t *testing.T) {
	g := New()
	c := g.AddNode(LabelCompany, nil)
	p := g.AddNode(LabelPerson, nil)
	if _, err := g.AddShare(p, c, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}

	// Shareholding into a person is invalid.
	bad := New()
	c2 := bad.AddNode(LabelCompany, nil)
	p2 := bad.AddNode(LabelPerson, nil)
	bad.MustAddEdge(LabelShareholding, c2, p2, Properties{WeightProp: 0.5})
	if err := bad.Validate(); err == nil {
		t.Error("shareholding into a Person accepted, want error")
	}

	// Out-of-range weight is invalid.
	bad2 := New()
	a := bad2.AddNode(LabelCompany, nil)
	b := bad2.AddNode(LabelCompany, nil)
	bad2.MustAddEdge(LabelShareholding, a, b, Properties{WeightProp: 1.5})
	if err := bad2.Validate(); err == nil {
		t.Error("share amount 1.5 accepted, want error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, b := Figure1()
	c := g.Clone()
	// Mutating the clone must not affect the original.
	c.Node(b.ID("C")).Props["name"] = "mutated"
	id, _ := c.AddShare(b.ID("C"), b.ID("D"), 0.1)
	_ = id
	if g.Node(b.ID("C")).Props["name"] != "C" {
		t.Error("clone shares node property map with original")
	}
	if g.NumEdges() == c.NumEdges() {
		t.Error("adding edge to clone changed original edge count")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, _ := Figure2()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes/edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, id := range g.Nodes() {
		if got.Node(id) == nil || got.Node(id).Label != g.Node(id).Label {
			t.Errorf("node %d lost or relabelled in round trip", id)
		}
	}
	// New IDs must not collide with restored ones.
	n := got.AddNode(LabelCompany, nil)
	if got.Node(n) == nil || g.Node(n) != nil && n < NodeID(g.NumNodes()) {
		t.Errorf("fresh node ID %d collides with restored IDs", n)
	}
}

func TestEdgeCSVRoundTrip(t *testing.T) {
	g := New()
	a := g.AddNode(LabelCompany, nil)
	b := g.AddNode(LabelCompany, nil)
	c := g.AddNode(LabelCompany, nil)
	g.MustAddEdge(LabelShareholding, a, b, Properties{WeightProp: 0.25})
	g.MustAddEdge(LabelShareholding, b, c, Properties{WeightProp: 0.75})
	var buf bytes.Buffer
	if err := g.WriteEdgeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 {
		t.Fatalf("round trip edges = %d, want 2", got.NumEdges())
	}
	if !got.HasEdge(LabelShareholding, a, b) || !got.HasEdge(LabelShareholding, b, c) {
		t.Error("round trip lost edges")
	}
}

func TestReadEdgeCSVErrors(t *testing.T) {
	cases := []string{
		"from,to,w\n1,2\n",     // short row handled by csv reader as error or by us
		"from,to,w\nx,2,0.5\n", // bad from
		"from,to,w\n1,y,0.5\n", // bad to
		"from,to,w\n1,2,zzz\n", // bad weight
	}
	for _, c := range cases {
		if _, err := ReadEdgeCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadEdgeCSV(%q): want error, got nil", c)
		}
	}
}

func TestFigure1Invariants(t *testing.T) {
	g, b := Figure1()
	if err := g.Validate(); err != nil {
		t.Fatalf("Figure1 invalid: %v", err)
	}
	if n := len(g.NodesWithLabel(LabelCompany)); n != 8 {
		t.Errorf("Figure1 companies = %d, want 8", n)
	}
	if n := len(g.NodesWithLabel(LabelPerson)); n != 2 {
		t.Errorf("Figure1 persons = %d, want 2", n)
	}
	// P1 directly owns 80% of C.
	var found bool
	for _, e := range g.OutLabel(b.ID("P1"), LabelShareholding) {
		if e.To == b.ID("C") {
			w, _ := e.Weight()
			if w != 0.8 {
				t.Errorf("P1→C share = %v, want 0.8", w)
			}
			found = true
		}
	}
	if !found {
		t.Error("missing P1→C shareholding")
	}
}

func TestBuilderPanicsOnLabelConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("builder accepted same key as both Company and Person")
		}
	}()
	b := NewBuilder()
	b.Company("X")
	b.Person("X")
}

// Property: for any sequence of edge insertions among a fixed node set, every
// edge is reachable through both its endpoints' adjacency lists.
func TestAdjacencyConsistencyProperty(t *testing.T) {
	f := func(pairs []struct{ F, T uint8 }) bool {
		g := New()
		const n = 16
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode(LabelCompany, nil)
		}
		for _, p := range pairs {
			from, to := ids[int(p.F)%n], ids[int(p.T)%n]
			if _, err := g.AddShare(from, to, 0.5); err != nil {
				return false
			}
		}
		for _, eid := range g.Edges() {
			e := g.Edge(eid)
			if !containsEdge(g.Out(e.From), eid) || !containsEdge(g.In(e.To), eid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func containsEdge(s []EdgeID, id EdgeID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

func TestWriteDOT(t *testing.T) {
	g, b := Figure2()
	g.MustAddEdge(LabelControl, b.ID("P2"), b.ID("C7"), nil)
	g.MustAddEdge(LabelCloseLink, b.ID("C4"), b.ID("C7"), nil)
	g.MustAddEdge(LabelCloseLink, b.ID("C7"), b.ID("C4"), nil)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph company", "shape=ellipse", "shape=box",
		"color=green", "color=magenta", "80%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Symmetric close link rendered once.
	if n := strings.Count(out, "close link"); n != 1 {
		t.Errorf("close link rendered %d times, want 1", n)
	}
}

func TestNeighborhood(t *testing.T) {
	g, b := Figure1()
	// 1 hop around D: P1 (owner), E and F (owned).
	sub, mapping := g.Neighborhood(b.ID("D"), 1)
	if len(mapping) != 4 {
		t.Fatalf("1-hop ego of D has %d nodes, want 4 (D, P1, E, F)", len(mapping))
	}
	for _, orig := range []NodeID{b.ID("D"), b.ID("P1"), b.ID("E"), b.ID("F")} {
		if _, ok := mapping[orig]; !ok {
			t.Errorf("node %d missing from ego network", orig)
		}
	}
	// Induced edges present: D→E, D→F, P1→D, P1→E, E→F.
	if sub.NumEdges() != 5 {
		t.Errorf("induced edges = %d, want 5", sub.NumEdges())
	}
	// 0 hops: just the center.
	solo, m := g.Neighborhood(b.ID("D"), 0)
	if solo.NumNodes() != 1 || len(m) != 1 {
		t.Errorf("0-hop ego = %d nodes", solo.NumNodes())
	}
	// Unknown center: empty.
	empty, _ := g.Neighborhood(NodeID(999), 2)
	if empty.NumNodes() != 0 {
		t.Error("unknown center produced nodes")
	}
}
