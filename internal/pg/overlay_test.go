package pg

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomBase builds a small random company graph.
func randomBase(rng *rand.Rand) *Graph {
	g := New()
	nCompanies := 4 + rng.Intn(6)
	nPersons := 1 + rng.Intn(3)
	var ids []NodeID
	for i := 0; i < nCompanies; i++ {
		ids = append(ids, g.AddNode(LabelCompany, Properties{"name": "C"}))
	}
	for i := 0; i < nPersons; i++ {
		ids = append(ids, g.AddNode(LabelPerson, Properties{"name": "P"}))
	}
	nEdges := rng.Intn(2 * len(ids))
	for i := 0; i < nEdges; i++ {
		from := ids[rng.Intn(len(ids))]
		to := ids[rng.Intn(nCompanies)] // targets must be companies
		g.MustAddEdgeWeighted(from, to, 0.05+0.9*rng.Float64())
	}
	return g
}

// mutateOverlay applies a random batch of overlay mutations, including the
// what-if-only kinds when allowed.
func mutateOverlay(rng *rand.Rand, o *Overlay, whatIf bool) {
	ops := 1 + rng.Intn(8)
	for i := 0; i < ops; i++ {
		switch k := rng.Intn(5); {
		case k == 0:
			o.AddNode(LabelCompany, Properties{"name": "N"})
		case k == 1:
			nodes := o.Nodes()
			companies := o.NodesWithLabel(LabelCompany)
			if len(nodes) == 0 || len(companies) == 0 {
				continue
			}
			from := nodes[rng.Intn(len(nodes))]
			to := companies[rng.Intn(len(companies))]
			if _, err := o.AddShare(from, to, 0.05+0.9*rng.Float64()); err != nil {
				panic(err)
			}
		case k == 2:
			edges := o.Edges()
			if len(edges) == 0 {
				continue
			}
			o.RemoveEdge(edges[rng.Intn(len(edges))])
		case k == 3 && whatIf:
			edges := o.EdgesWithLabel(LabelShareholding)
			if len(edges) == 0 {
				continue
			}
			if err := o.SetEdgeWeight(edges[rng.Intn(len(edges))], 0.05+0.9*rng.Float64()); err != nil {
				panic(err)
			}
		case k == 4 && whatIf:
			nodes := o.Nodes()
			if len(nodes) < 3 {
				continue
			}
			o.RemoveNode(nodes[rng.Intn(len(nodes))])
		}
	}
}

// assertViewsEqual compares every View accessor of got against want.
func assertViewsEqual(t *testing.T, got, want View) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes: got %d want %d", got.NumNodes(), want.NumNodes())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges: got %d want %d", got.NumEdges(), want.NumEdges())
	}
	eqNodeIDs := func(a, b []NodeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	eqEdgeIDs := func(a, b []EdgeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eqNodeIDs(got.Nodes(), want.Nodes()) {
		t.Fatalf("Nodes: got %v want %v", got.Nodes(), want.Nodes())
	}
	if !eqEdgeIDs(got.Edges(), want.Edges()) {
		t.Fatalf("Edges: got %v want %v", got.Edges(), want.Edges())
	}
	if got.NextNodeID() != want.NextNodeID() || got.NextEdgeID() != want.NextEdgeID() {
		t.Fatalf("counters: got (%d,%d) want (%d,%d)",
			got.NextNodeID(), got.NextEdgeID(), want.NextNodeID(), want.NextEdgeID())
	}
	for _, label := range []Label{LabelCompany, LabelPerson} {
		if !eqNodeIDs(got.NodesWithLabel(label), want.NodesWithLabel(label)) {
			t.Fatalf("NodesWithLabel(%s): got %v want %v", label, got.NodesWithLabel(label), want.NodesWithLabel(label))
		}
	}
	for _, label := range []Label{LabelShareholding, LabelControl} {
		if !eqEdgeIDs(got.EdgesWithLabel(label), want.EdgesWithLabel(label)) {
			t.Fatalf("EdgesWithLabel(%s): got %v want %v", label, got.EdgesWithLabel(label), want.EdgesWithLabel(label))
		}
	}
	for _, id := range want.Nodes() {
		gn, wn := got.Node(id), want.Node(id)
		if gn == nil || gn.Label != wn.Label || !reflect.DeepEqual(gn.Props, wn.Props) {
			t.Fatalf("Node(%d): got %+v want %+v", id, gn, wn)
		}
		sortEdges := func(ids []EdgeID) []EdgeID {
			c := append([]EdgeID(nil), ids...)
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
			return c
		}
		if !reflect.DeepEqual(sortEdges(got.Out(id)), sortEdges(want.Out(id))) {
			t.Fatalf("Out(%d): got %v want %v", id, got.Out(id), want.Out(id))
		}
		if !reflect.DeepEqual(sortEdges(got.In(id)), sortEdges(want.In(id))) {
			t.Fatalf("In(%d): got %v want %v", id, got.In(id), want.In(id))
		}
		edgeIDs := func(es []*Edge) []EdgeID {
			var ids []EdgeID
			for _, e := range es {
				ids = append(ids, e.ID)
			}
			return sortEdges(ids)
		}
		if !reflect.DeepEqual(edgeIDs(got.OutLabel(id, LabelShareholding)), edgeIDs(want.OutLabel(id, LabelShareholding))) {
			t.Fatalf("OutLabel(%d): mismatch", id)
		}
		if !reflect.DeepEqual(edgeIDs(got.InLabel(id, LabelShareholding)), edgeIDs(want.InLabel(id, LabelShareholding))) {
			t.Fatalf("InLabel(%d): mismatch", id)
		}
	}
	for _, id := range want.Edges() {
		ge, we := got.Edge(id), want.Edge(id)
		if ge == nil || ge.Label != we.Label || ge.From != we.From || ge.To != we.To || !reflect.DeepEqual(ge.Props, we.Props) {
			t.Fatalf("Edge(%d): got %+v want %+v", id, ge, we)
		}
		if !got.HasEdge(we.Label, we.From, we.To) {
			t.Fatalf("HasEdge(%s, %d, %d) = false", we.Label, we.From, we.To)
		}
	}
}

// TestOverlayMatchesFlatten is the pg-level differential: a random overlay
// (including weight edits and node removals) must read identically to its
// flattened materialization, which is built through the independent
// Restore path.
func TestOverlayMatchesFlatten(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := randomBase(rng)
		o := NewOverlay(base)
		mutateOverlay(rng, o, true)
		flat, err := Flatten(o)
		if err != nil {
			t.Fatalf("seed %d: Flatten: %v", seed, err)
		}
		assertViewsEqual(t, o, flat)
		if err := ValidateView(o); err != nil {
			t.Fatalf("seed %d: overlay invalid: %v", seed, err)
		}
	}
}

// TestOverlayChainMatchesFlatten stacks three overlay layers and checks the
// composite against its flattening.
func TestOverlayChainMatchesFlatten(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		base := randomBase(rng)
		var v View = base
		for layer := 0; layer < 3; layer++ {
			o := NewOverlay(v)
			mutateOverlay(rng, o, true)
			v = o
		}
		if got := v.(*Overlay).Depth(); got != 3 {
			t.Fatalf("seed %d: depth %d, want 3", seed, got)
		}
		flat, err := Flatten(v)
		if err != nil {
			t.Fatalf("seed %d: Flatten: %v", seed, err)
		}
		assertViewsEqual(t, v, flat)
	}
}

// TestOverlayLeavesBaseUntouched pins the durability-leak regression at the
// pg level: heavy overlay mutation must never fire the base graph's
// mutation hook nor change any base state.
func TestOverlayLeavesBaseUntouched(t *testing.T) {
	base := randomBase(rand.New(rand.NewSource(7)))
	fired := 0
	base.SetMutationHook(func(Mutation) { fired++ })
	wantFlat, err := Flatten(base)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(0); seed < 10; seed++ {
		o := NewOverlay(base)
		mutateOverlay(rand.New(rand.NewSource(seed)), o, true)
	}
	if fired != 0 {
		t.Fatalf("base mutation hook fired %d times during overlay mutation", fired)
	}
	base.SetMutationHook(nil)
	assertViewsEqual(t, base, wantFlat)
}

// TestOverlayJournal checks journal replay alignment and the what-if-only
// rejection.
func TestOverlayJournal(t *testing.T) {
	base := randomBase(rand.New(rand.NewSource(3)))
	o := NewOverlay(base)
	n1 := o.AddNode(LabelCompany, nil)
	n2 := o.AddNode(LabelCompany, nil)
	e1, err := o.AddShare(n1, n2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	victim := base.Edges()[0]
	if !o.RemoveEdge(victim) {
		t.Fatalf("RemoveEdge(%d) of base edge = false", victim)
	}
	journal, err := o.Journal()
	if err != nil {
		t.Fatalf("Journal: %v", err)
	}
	if len(journal) != 4 {
		t.Fatalf("journal has %d ops, want 4", len(journal))
	}
	// Replaying the journal onto a clone of the base must reproduce the
	// exact overlay-assigned IDs.
	replayed := base.Clone()
	for _, m := range journal {
		switch m.Kind {
		case MutAddNode:
			if id := replayed.AddNode(m.Node.Label, m.Node.Props); id != m.Node.ID {
				t.Fatalf("replayed node id %d, overlay assigned %d", id, m.Node.ID)
			}
		case MutAddEdge:
			id, err := replayed.AddEdge(m.Edge.Label, m.Edge.From, m.Edge.To, m.Edge.Props)
			if err != nil || id != m.Edge.ID {
				t.Fatalf("replayed edge id %d err %v, overlay assigned %d", id, err, m.Edge.ID)
			}
		case MutRemoveEdge:
			if !replayed.RemoveEdge(m.Edge.ID) {
				t.Fatalf("replayed remove of %d failed", m.Edge.ID)
			}
		}
	}
	assertViewsEqual(t, o, replayed)

	// A weight edit extends the journal like any other mutation.
	if err := o.SetEdgeWeight(e1, 0.9); err != nil {
		t.Fatal(err)
	}
	journal, err = o.Journal()
	if err != nil {
		t.Fatalf("Journal after weight edit: %v", err)
	}
	if len(journal) != 5 {
		t.Fatalf("journal has %d ops after weight edit, want 5", len(journal))
	}
	last := journal[len(journal)-1]
	if last.Kind != MutSetEdgeWeight || last.Edge.ID != e1 {
		t.Fatalf("last journal entry = %+v, want MutSetEdgeWeight of edge %d", last, e1)
	}
	if w, _ := last.Edge.Weight(); w != 0.9 {
		t.Fatalf("journaled weight = %v, want 0.9", w)
	}
}

// TestOverlayWhatIfMutations covers the what-if-only ops' semantics.
func TestOverlayWhatIfMutations(t *testing.T) {
	base := New()
	a := base.AddNode(LabelCompany, nil)
	b := base.AddNode(LabelCompany, nil)
	c := base.AddNode(LabelCompany, nil)
	ab := base.MustAddEdgeWeighted(a, b, 0.6)
	base.MustAddEdgeWeighted(b, c, 0.8)

	o := NewOverlay(base)
	if err := o.SetEdgeWeight(ab, 0.25); err != nil {
		t.Fatal(err)
	}
	if w, _ := o.Edge(ab).Weight(); w != 0.25 {
		t.Fatalf("overlay weight = %v, want 0.25", w)
	}
	if w, _ := base.Edge(ab).Weight(); w != 0.6 {
		t.Fatalf("base weight changed to %v", w)
	}
	if err := o.SetEdgeWeight(ab, 1.5); err == nil {
		t.Fatal("SetEdgeWeight(1.5) accepted")
	}
	if err := o.SetEdgeWeight(9999, 0.5); err == nil {
		t.Fatal("SetEdgeWeight on unknown edge accepted")
	}

	if !o.RemoveNode(b) {
		t.Fatal("RemoveNode(b) = false")
	}
	if o.Node(b) != nil {
		t.Fatal("removed node still visible")
	}
	if got := o.NumEdges(); got != 0 {
		t.Fatalf("NumEdges after removing b = %d, want 0 (both incident edges gone)", got)
	}
	if o.RemoveNode(b) {
		t.Fatal("second RemoveNode(b) = true")
	}
	if base.NumEdges() != 2 || base.Node(b) == nil {
		t.Fatal("base mutated by RemoveNode")
	}
	flat, err := Flatten(o)
	if err != nil {
		t.Fatal(err)
	}
	assertViewsEqual(t, o, flat)
}
