// Package pg implements the property-graph data model of Definition 2.1 of
// the Vada-Link paper: a finite set of nodes and edges, a binary incidence
// function, a partial labelling function, and a partial property function
// mapping (element, property) pairs to values.
//
// The concrete Company Graph of Definition 2.2 is built on top of this model:
// nodes labelled Company or Person, edges labelled Shareholding carrying a
// share amount in (0, 1].
package pg

import (
	"fmt"
	"sort"
)

// Label is a node or edge label (schema-level concept; maps to a predicate
// name in the relational representation of Section 3).
type Label string

// Well-known labels for the company graph of Definition 2.2.
const (
	LabelCompany      Label = "Company"
	LabelPerson       Label = "Person"
	LabelShareholding Label = "Shareholding"

	// Labels for predicted (intensional) edges.
	LabelControl   Label = "Control"
	LabelCloseLink Label = "CloseLink"
	LabelPartnerOf Label = "PartnerOf"
	LabelSiblingOf Label = "SiblingOf"
	LabelParentOf  Label = "ParentOf"
	LabelFamily    Label = "Family"
)

// NodeID identifies a node. IDs are assigned by the graph and stable for its
// lifetime.
type NodeID int64

// EdgeID identifies an edge.
type EdgeID int64

// Value is a property value: string, float64, int64 or bool.
type Value = any

// Properties maps property names to values (the σ function restricted to one
// element).
type Properties map[string]Value

// Node is a labelled node with properties.
type Node struct {
	ID    NodeID
	Label Label
	Props Properties
}

// Edge is a labelled, directed edge with properties. For shareholding edges
// the property "w" holds the share amount σ(e, w) ∈ (0, 1].
type Edge struct {
	ID    EdgeID
	Label Label
	From  NodeID
	To    NodeID
	Props Properties
}

// WeightProp is the property name of the share amount on shareholding edges.
const WeightProp = "w"

// Weight returns the edge weight property (share fraction) and whether it is
// set to a float64.
func (e *Edge) Weight() (float64, bool) {
	v, ok := e.Props[WeightProp]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}

// MutationKind discriminates the committed changes a mutation hook observes.
type MutationKind uint8

// Mutation kinds, in the order the graph applies them. MutSetEdgeWeight and
// MutRemoveNode joined the vocabulary when weight edits and node removals
// became first-class (journaled, WAL-captured, replicated) mutations; older
// code only knew the first three.
const (
	MutAddNode MutationKind = iota + 1
	MutAddEdge
	MutRemoveEdge
	MutSetEdgeWeight
	MutRemoveNode
)

// Mutation describes one committed graph change, delivered to the hook set
// with SetMutationHook after the change is applied. Node is set for
// MutAddNode and MutRemoveNode (for removals it is the node as it was, after
// its incident edges were removed); Edge for MutAddEdge, MutRemoveEdge (the
// edge as it was) and MutSetEdgeWeight (the edge with its new weight already
// applied). The pointed-to structs are the graph's own — observers must not
// mutate them.
type Mutation struct {
	Kind MutationKind
	Node *Node
	Edge *Edge
}

// Graph is an in-memory property graph. The zero value is not usable; create
// graphs with New. Graph is not safe for concurrent mutation; concurrent
// reads are safe once mutation stops.
type Graph struct {
	nodes map[NodeID]*Node
	edges map[EdgeID]*Edge

	nextNode NodeID
	nextEdge EdgeID

	out map[NodeID][]EdgeID // outgoing adjacency
	in  map[NodeID][]EdgeID // incoming adjacency

	byNodeLabel map[Label][]NodeID
	byEdgeLabel map[Label][]EdgeID

	// weightEdits counts committed SetEdgeWeight mutations over the graph's
	// history. Weight edits change no node or edge count, so the durability
	// layer's position formula (persist.SeqOfGraph) needs this counter to
	// recompute a WAL position from a recovered graph. Snapshots persist it;
	// graphs restored from pre-weight-edit snapshots start at zero, which is
	// exactly right because that code could not log weight edits.
	weightEdits int64

	// onMutate, when set, observes every committed mutation — the
	// change-capture seam the durability layer (internal/persist) hangs its
	// write-ahead logging on. Derived facts materialized by the chase reach
	// the graph through AddEdge like any other change, so one hook captures
	// both loaded and reasoned state.
	onMutate func(Mutation)
}

// New returns an empty property graph.
func New() *Graph {
	return &Graph{
		nodes:       make(map[NodeID]*Node),
		edges:       make(map[EdgeID]*Edge),
		out:         make(map[NodeID][]EdgeID),
		in:          make(map[NodeID][]EdgeID),
		byNodeLabel: make(map[Label][]NodeID),
		byEdgeLabel: make(map[Label][]EdgeID),
	}
}

// SetMutationHook installs fn as the graph's mutation observer; nil removes
// it. The hook runs synchronously inside AddNode/AddEdge/RemoveEdge, after
// the change is applied, on the mutating goroutine — it must not mutate the
// graph (that would recurse). Clone and Neighborhood subgraphs do not
// inherit the hook, and Restore does not fire it (bulk reconstruction is not
// new history).
func (g *Graph) SetMutationHook(fn func(Mutation)) { g.onMutate = fn }

// AddNode inserts a node with the given label and properties and returns its
// ID. Props may be nil.
func (g *Graph) AddNode(label Label, props Properties) NodeID {
	id := g.nextNode
	g.nextNode++
	if props == nil {
		props = Properties{}
	}
	n := &Node{ID: id, Label: label, Props: props}
	g.nodes[id] = n
	g.byNodeLabel[label] = append(g.byNodeLabel[label], id)
	if g.onMutate != nil {
		g.onMutate(Mutation{Kind: MutAddNode, Node: n})
	}
	return id
}

// AddEdge inserts a directed edge from → to and returns its ID. It returns an
// error if either endpoint does not exist.
func (g *Graph) AddEdge(label Label, from, to NodeID, props Properties) (EdgeID, error) {
	if _, ok := g.nodes[from]; !ok {
		return 0, fmt.Errorf("pg: add edge: unknown source node %d", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return 0, fmt.Errorf("pg: add edge: unknown target node %d", to)
	}
	id := g.nextEdge
	g.nextEdge++
	if props == nil {
		props = Properties{}
	}
	e := &Edge{ID: id, Label: label, From: from, To: to, Props: props}
	g.edges[id] = e
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.byEdgeLabel[label] = append(g.byEdgeLabel[label], id)
	if g.onMutate != nil {
		g.onMutate(Mutation{Kind: MutAddEdge, Edge: e})
	}
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; intended for tests and
// generators where endpoints are known to exist.
func (g *Graph) MustAddEdge(label Label, from, to NodeID, props Properties) EdgeID {
	id, err := g.AddEdge(label, from, to, props)
	if err != nil {
		panic(err)
	}
	return id
}

// AddShare inserts a Shareholding edge with weight w.
func (g *Graph) AddShare(from, to NodeID, w float64) (EdgeID, error) {
	return g.AddEdge(LabelShareholding, from, to, Properties{WeightProp: w})
}

// MustAddEdgeWeighted inserts a Shareholding edge with weight w, panicking
// on unknown endpoints; for tests and generators.
func (g *Graph) MustAddEdgeWeighted(from, to NodeID, w float64) EdgeID {
	id, err := g.AddShare(from, to, w)
	if err != nil {
		panic(err)
	}
	return id
}

// RemoveEdge deletes an edge. Removing a missing edge is a no-op returning
// false.
func (g *Graph) RemoveEdge(id EdgeID) bool {
	e, ok := g.edges[id]
	if !ok {
		return false
	}
	delete(g.edges, id)
	g.out[e.From] = removeID(g.out[e.From], id)
	g.in[e.To] = removeID(g.in[e.To], id)
	g.byEdgeLabel[e.Label] = removeID(g.byEdgeLabel[e.Label], id)
	if g.onMutate != nil {
		g.onMutate(Mutation{Kind: MutRemoveEdge, Edge: e})
	}
	return true
}

// SetEdgeWeight changes the share amount of a Shareholding edge in place and
// fires MutSetEdgeWeight (the hook observes the edge with the new weight).
// Only shareholding edges carry a weight, and Definition 2.2 bounds it to
// (0, 1] — retracting a share entirely is RemoveEdge, not a zero weight.
func (g *Graph) SetEdgeWeight(id EdgeID, w float64) error {
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("pg: set edge weight: unknown edge %d", id)
	}
	if e.Label != LabelShareholding {
		return fmt.Errorf("pg: set edge weight: edge %d is %s, not Shareholding", id, e.Label)
	}
	if w <= 0 || w > 1 {
		return fmt.Errorf("pg: set edge weight: weight %v outside (0, 1]", w)
	}
	e.Props[WeightProp] = w
	g.weightEdits++
	if g.onMutate != nil {
		g.onMutate(Mutation{Kind: MutSetEdgeWeight, Edge: e})
	}
	return nil
}

// RemoveNode deletes a node together with its incident edges. Each incident
// edge removal fires MutRemoveEdge through the ordinary RemoveEdge path, then
// the bare node removal fires MutRemoveNode — so a journal or WAL replaying
// the stream applies the same steps in the same order, and the node is
// already edge-free when its own removal record is observed. Removing a
// missing node is a no-op returning false.
func (g *Graph) RemoveNode(id NodeID) bool {
	n, ok := g.nodes[id]
	if !ok {
		return false
	}
	// Snapshot the incident edge IDs: RemoveEdge mutates g.out/g.in while we
	// iterate. A self-loop appears in both lists; RemoveEdge tolerates the
	// second, already-deleted occurrence.
	incident := append([]EdgeID(nil), g.out[id]...)
	incident = append(incident, g.in[id]...)
	for _, eid := range incident {
		g.RemoveEdge(eid)
	}
	delete(g.nodes, id)
	delete(g.out, id)
	delete(g.in, id)
	g.byNodeLabel[n.Label] = removeID(g.byNodeLabel[n.Label], id)
	if g.onMutate != nil {
		g.onMutate(Mutation{Kind: MutRemoveNode, Node: n})
	}
	return true
}

// WeightEdits reports the number of committed SetEdgeWeight mutations in the
// graph's history (see the field comment; persist.SeqOfGraph consumes it).
func (g *Graph) WeightEdits() int64 { return g.weightEdits }

// SetWeightEdits overwrites the weight-edit counter. It exists for the
// durability layer restoring a snapshot — like Restore, it rebuilds recorded
// history rather than creating new history, so no hook fires.
func (g *Graph) SetWeightEdits(n int64) { g.weightEdits = n }

func removeID[T comparable](s []T, x T) []T {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// NextNodeID returns the identifier the next AddNode will assign — the
// node-ID counter a snapshot must preserve for WAL replay to stay aligned.
func (g *Graph) NextNodeID() NodeID { return g.nextNode }

// NextEdgeID returns the identifier the next AddEdge will assign.
func (g *Graph) NextEdgeID() EdgeID { return g.nextEdge }

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Edge returns the edge with the given ID, or nil.
func (g *Graph) Edge(id EdgeID) *Edge { return g.edges[id] }

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Edges returns all edge IDs in ascending order.
func (g *Graph) Edges() []EdgeID {
	ids := make([]EdgeID, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NodesWithLabel returns the IDs of all nodes carrying the label, in
// insertion order.
func (g *Graph) NodesWithLabel(label Label) []NodeID {
	return append([]NodeID(nil), g.byNodeLabel[label]...)
}

// EdgesWithLabel returns the IDs of all live edges carrying the label, in
// insertion order.
func (g *Graph) EdgesWithLabel(label Label) []EdgeID {
	ids := g.byEdgeLabel[label]
	res := make([]EdgeID, 0, len(ids))
	for _, id := range ids {
		if _, ok := g.edges[id]; ok {
			res = append(res, id)
		}
	}
	return res
}

// Out returns the outgoing edge IDs of a node.
func (g *Graph) Out(id NodeID) []EdgeID { return g.out[id] }

// In returns the incoming edge IDs of a node.
func (g *Graph) In(id NodeID) []EdgeID { return g.in[id] }

// OutLabel returns the outgoing edges of n restricted to one label.
func (g *Graph) OutLabel(n NodeID, label Label) []*Edge {
	var res []*Edge
	for _, eid := range g.out[n] {
		if e := g.edges[eid]; e != nil && e.Label == label {
			res = append(res, e)
		}
	}
	return res
}

// InLabel returns the incoming edges of n restricted to one label.
func (g *Graph) InLabel(n NodeID, label Label) []*Edge {
	var res []*Edge
	for _, eid := range g.in[n] {
		if e := g.edges[eid]; e != nil && e.Label == label {
			res = append(res, e)
		}
	}
	return res
}

// HasEdge reports whether an edge with the given label exists from → to.
func (g *Graph) HasEdge(label Label, from, to NodeID) bool {
	for _, eid := range g.out[from] {
		e := g.edges[eid]
		if e != nil && e.Label == label && e.To == to {
			return true
		}
	}
	return false
}

// Neighborhood returns the induced subgraph around a node: every node within
// the given number of hops (edges followed in both directions) plus all the
// edges among them. Node and edge identities are freshly assigned; the
// returned mapping translates original → subgraph node IDs. The ego network
// is what a supervision UI shows when an analyst opens a company.
func (g *Graph) Neighborhood(center NodeID, hops int) (*Graph, map[NodeID]NodeID) {
	return NeighborhoodOf(g, center, hops)
}

// Clone returns a deep copy of the graph (nodes, edges and property maps are
// copied; property values are shared, which is safe because values are
// immutable scalars). Index and adjacency slices are copied verbatim, so the
// clone preserves the original's insertion orders — NodesWithLabel, Out and
// friends read identically on graph and clone, which MVCC snapshots rely on.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nextNode = g.nextNode
	c.nextEdge = g.nextEdge
	c.weightEdits = g.weightEdits
	for id, n := range g.nodes {
		props := make(Properties, len(n.Props))
		for k, v := range n.Props {
			props[k] = v
		}
		c.nodes[id] = &Node{ID: id, Label: n.Label, Props: props}
	}
	for id, e := range g.edges {
		props := make(Properties, len(e.Props))
		for k, v := range e.Props {
			props[k] = v
		}
		c.edges[id] = &Edge{ID: id, Label: e.Label, From: e.From, To: e.To, Props: props}
	}
	for label, ids := range g.byNodeLabel {
		c.byNodeLabel[label] = append([]NodeID(nil), ids...)
	}
	for label, ids := range g.byEdgeLabel {
		c.byEdgeLabel[label] = append([]EdgeID(nil), ids...)
	}
	for id, ids := range g.out {
		c.out[id] = append([]EdgeID(nil), ids...)
	}
	for id, ids := range g.in {
		c.in[id] = append([]EdgeID(nil), ids...)
	}
	return c
}

// Restore reconstructs a graph verbatim from persisted state: nodes and
// edges keep their original identifiers, and the internal ID counters resume
// where the persisted graph left off (so identifiers assigned after a
// restore never collide with removed ones). It exists for the durability
// layer — AddNode/AddEdge always assign fresh IDs, which a snapshot loader
// must not do. Property maps are copied; the mutation hook is not fired.
//
// Restore validates what it is given (duplicate or out-of-range IDs, edges
// with unknown endpoints) and fails rather than build a graph that never
// existed — a corrupt snapshot must not be served.
func Restore(nodes []Node, edges []Edge, nextNode NodeID, nextEdge EdgeID) (*Graph, error) {
	g := New()
	for i := range nodes {
		n := nodes[i]
		if n.ID < 0 || n.ID >= nextNode {
			return nil, fmt.Errorf("pg: restore: node id %d outside [0, %d)", n.ID, nextNode)
		}
		if _, dup := g.nodes[n.ID]; dup {
			return nil, fmt.Errorf("pg: restore: duplicate node id %d", n.ID)
		}
		props := make(Properties, len(n.Props))
		for k, v := range n.Props {
			props[k] = v
		}
		g.nodes[n.ID] = &Node{ID: n.ID, Label: n.Label, Props: props}
		g.byNodeLabel[n.Label] = append(g.byNodeLabel[n.Label], n.ID)
	}
	for i := range edges {
		e := edges[i]
		if e.ID < 0 || e.ID >= nextEdge {
			return nil, fmt.Errorf("pg: restore: edge id %d outside [0, %d)", e.ID, nextEdge)
		}
		if _, dup := g.edges[e.ID]; dup {
			return nil, fmt.Errorf("pg: restore: duplicate edge id %d", e.ID)
		}
		if _, ok := g.nodes[e.From]; !ok {
			return nil, fmt.Errorf("pg: restore: edge %d: unknown source node %d", e.ID, e.From)
		}
		if _, ok := g.nodes[e.To]; !ok {
			return nil, fmt.Errorf("pg: restore: edge %d: unknown target node %d", e.ID, e.To)
		}
		props := make(Properties, len(e.Props))
		for k, v := range e.Props {
			props[k] = v
		}
		g.edges[e.ID] = &Edge{ID: e.ID, Label: e.Label, From: e.From, To: e.To, Props: props}
		g.out[e.From] = append(g.out[e.From], e.ID)
		g.in[e.To] = append(g.in[e.To], e.ID)
		g.byEdgeLabel[e.Label] = append(g.byEdgeLabel[e.Label], e.ID)
	}
	g.nextNode = nextNode
	g.nextEdge = nextEdge
	return g, nil
}

// Validate checks company-graph invariants of Definition 2.2: shareholding
// edges carry a weight in (0, 1], shareholding sources are companies or
// persons, and shareholding targets are companies. It returns the first
// violation found, or nil.
func (g *Graph) Validate() error { return ValidateView(g) }
