package pg

import (
	"testing"
)

// TestMutationHookObservesAllKinds: the change-capture seam sees every
// committed mutation, in order, with the graph's own structs.
func TestMutationHookObservesAllKinds(t *testing.T) {
	g := New()
	var got []Mutation
	g.SetMutationHook(func(m Mutation) { got = append(got, m) })

	a := g.AddNode(LabelCompany, Properties{"name": "A"})
	b := g.AddNode(LabelCompany, nil)
	eid := g.MustAddEdgeWeighted(a, b, 0.6)
	if !g.RemoveEdge(eid) {
		t.Fatal("RemoveEdge failed")
	}

	want := []MutationKind{MutAddNode, MutAddNode, MutAddEdge, MutRemoveEdge}
	if len(got) != len(want) {
		t.Fatalf("hook saw %d mutations, want %d", len(got), len(want))
	}
	for i, k := range want {
		if got[i].Kind != k {
			t.Errorf("mutation %d kind = %d, want %d", i, got[i].Kind, k)
		}
	}
	if got[0].Node == nil || got[0].Node.ID != a || got[0].Node.Props["name"] != "A" {
		t.Errorf("AddNode mutation carries %+v", got[0].Node)
	}
	if got[2].Edge == nil || got[2].Edge.From != a || got[2].Edge.To != b {
		t.Errorf("AddEdge mutation carries %+v", got[2].Edge)
	}
	if got[3].Edge == nil || got[3].Edge.ID != eid {
		t.Errorf("RemoveEdge mutation carries %+v", got[3].Edge)
	}

	// Failed mutations are not observed.
	if _, err := g.AddEdge(LabelShareholding, a, 999, nil); err == nil {
		t.Fatal("AddEdge to unknown node succeeded")
	}
	if g.RemoveEdge(eid) {
		t.Fatal("second RemoveEdge succeeded")
	}
	if len(got) != len(want) {
		t.Errorf("failed mutations fired the hook: %d events", len(got))
	}

	// nil uninstalls.
	g.SetMutationHook(nil)
	g.AddNode(LabelPerson, nil)
	if len(got) != len(want) {
		t.Error("uninstalled hook still fired")
	}
}

// TestCloneDoesNotInheritHook: a clone is an independent graph; its
// mutations must not be logged as the original's.
func TestCloneDoesNotInheritHook(t *testing.T) {
	g := New()
	fired := 0
	g.SetMutationHook(func(Mutation) { fired++ })
	c := g.Clone()
	c.AddNode(LabelCompany, nil)
	if fired != 0 {
		t.Errorf("clone mutation fired original hook %d times", fired)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	g := New()
	a := g.AddNode(LabelCompany, Properties{"name": "A"})
	b := g.AddNode(LabelCompany, Properties{"name": "B"})
	p := g.AddNode(LabelPerson, Properties{"name": "P", "birth": 1960.0})
	e0 := g.MustAddEdgeWeighted(a, b, 0.6)
	e1 := g.MustAddEdgeWeighted(p, a, 0.9)
	g.RemoveEdge(e0) // leave a hole: edge IDs are sparse after removals

	var nodes []Node
	for _, id := range g.Nodes() {
		nodes = append(nodes, *g.Node(id))
	}
	var edges []Edge
	for _, id := range g.Edges() {
		edges = append(edges, *g.Edge(id))
	}
	r, err := Restore(nodes, edges, g.nextNode, g.nextEdge)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != 3 || r.NumEdges() != 1 {
		t.Fatalf("restored %d/%d, want 3/1", r.NumNodes(), r.NumEdges())
	}
	if e := r.Edge(e1); e == nil || e.From != p || e.To != a {
		t.Fatalf("edge %d not preserved: %+v", e1, r.Edge(e1))
	}
	if r.Edge(e0) != nil {
		t.Fatal("removed edge resurrected")
	}
	// Fresh IDs continue past the persisted counters — no collision with the
	// removed edge's ID.
	nid := r.AddNode(LabelCompany, nil)
	if nid != g.nextNode {
		t.Errorf("post-restore node id = %d, want %d", nid, g.nextNode)
	}
	eid := r.MustAddEdgeWeighted(nid, a, 0.3)
	if eid != g.nextEdge {
		t.Errorf("post-restore edge id = %d, want %d", eid, g.nextEdge)
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	n0 := Node{ID: 0, Label: LabelCompany}
	n1 := Node{ID: 1, Label: LabelCompany}
	cases := []struct {
		name               string
		nodes              []Node
		edges              []Edge
		nextNode, nextEdge int64
	}{
		{"duplicate node id", []Node{n0, n0}, nil, 2, 0},
		{"node id beyond counter", []Node{{ID: 5, Label: LabelCompany}}, nil, 2, 0},
		{"negative node id", []Node{{ID: -1, Label: LabelCompany}}, nil, 2, 0},
		{"edge unknown endpoint", []Node{n0}, []Edge{{ID: 0, Label: LabelControl, From: 0, To: 7}}, 1, 1},
		{"duplicate edge id", []Node{n0, n1},
			[]Edge{{ID: 0, Label: LabelControl, From: 0, To: 1}, {ID: 0, Label: LabelControl, From: 1, To: 0}}, 2, 1},
		{"edge id beyond counter", []Node{n0, n1}, []Edge{{ID: 9, Label: LabelControl, From: 0, To: 1}}, 2, 3},
	}
	for _, c := range cases {
		if _, err := Restore(c.nodes, c.edges, NodeID(c.nextNode), EdgeID(c.nextEdge)); err == nil {
			t.Errorf("%s: Restore accepted corrupt state", c.name)
		}
	}
}
