package pg

import "fmt"

// Builder constructs company graphs by name, the way the paper's running
// examples (Figures 1 and 2) are written: companies and persons are referred
// to by identifiers like "C4" or "P1", and shareholding edges by
// (owner, owned, share) triples.
//
// The error-returning methods (AddNode, AddOwnership, AddEdge, Lookup) are
// the primary API — use them when the input is untrusted (ETL, request
// payloads). Own, Link and ID are Must-style wrappers that panic on
// malformed input; they keep the chained literal style of the figure
// constructors and tests, where a failure is a programming error.
type Builder struct {
	g     *Graph
	byKey map[string]NodeID
}

// NewBuilder returns a Builder over a fresh graph.
func NewBuilder() *Builder {
	return &Builder{g: New(), byKey: make(map[string]NodeID)}
}

// Company ensures a company node named key exists and returns its ID.
func (b *Builder) Company(key string) NodeID {
	return b.node(key, LabelCompany)
}

// Person ensures a person node named key exists and returns its ID.
func (b *Builder) Person(key string) NodeID {
	return b.node(key, LabelPerson)
}

// PersonWith ensures a person node exists and merges the given properties.
func (b *Builder) PersonWith(key string, props Properties) NodeID {
	id := b.node(key, LabelPerson)
	for k, v := range props {
		b.g.Node(id).Props[k] = v
	}
	return id
}

// AddNode ensures a node named key with the given label exists and returns
// its ID. It reports an error when the key already names a node with a
// different label — the mistake the panicking Company/Person helpers can
// only crash on.
func (b *Builder) AddNode(key string, label Label) (NodeID, error) {
	if id, ok := b.byKey[key]; ok {
		if got := b.g.Node(id).Label; got != label {
			return 0, fmt.Errorf("pg: builder: node %q already exists with label %s, requested %s", key, got, label)
		}
		return id, nil
	}
	id := b.g.AddNode(label, Properties{"name": key})
	b.byKey[key] = id
	return id, nil
}

func (b *Builder) node(key string, label Label) NodeID {
	id, err := b.AddNode(key, label)
	if err != nil {
		panic(err.Error())
	}
	return id
}

// AddOwnership adds a shareholding edge owner → owned with share w. Both
// endpoints must already exist (create them with AddNode / Company / Person
// first), mirroring the paper convention that node type is explicit.
// Unknown endpoints and out-of-range shares (w must be in (0, 1]) are
// reported as errors.
func (b *Builder) AddOwnership(owner, owned string, w float64) (EdgeID, error) {
	if w <= 0 || w > 1 {
		return 0, fmt.Errorf("pg: builder: share %v out of range (0, 1]", w)
	}
	from, ok := b.byKey[owner]
	if !ok {
		return 0, fmt.Errorf("pg: builder: unknown owner %q", owner)
	}
	to, ok := b.byKey[owned]
	if !ok {
		return 0, fmt.Errorf("pg: builder: unknown owned company %q", owned)
	}
	return b.g.AddShare(from, to, w)
}

// Own is AddOwnership in chained Must style: it panics on malformed input.
func (b *Builder) Own(owner, owned string, w float64) *Builder {
	if _, err := b.AddOwnership(owner, owned, w); err != nil {
		panic(err.Error())
	}
	return b
}

// AddEdge adds an arbitrary labelled edge between two named nodes,
// reporting unknown endpoints as errors.
func (b *Builder) AddEdge(label Label, from, to string, props Properties) (EdgeID, error) {
	f, ok := b.byKey[from]
	if !ok {
		return 0, fmt.Errorf("pg: builder: unknown node %q", from)
	}
	t, ok := b.byKey[to]
	if !ok {
		return 0, fmt.Errorf("pg: builder: unknown node %q", to)
	}
	return b.g.AddEdge(label, f, t, props)
}

// Link is AddEdge in chained Must style: it panics on malformed input.
func (b *Builder) Link(label Label, from, to string, props Properties) *Builder {
	if _, err := b.AddEdge(label, from, to, props); err != nil {
		panic(err.Error())
	}
	return b
}

// Lookup returns the node ID for a named node, reporting whether it exists.
func (b *Builder) Lookup(key string) (NodeID, bool) {
	id, ok := b.byKey[key]
	return id, ok
}

// ID returns the node ID for a named node; it panics if the name is unknown.
// Use Lookup when the name comes from untrusted input.
func (b *Builder) ID(key string) NodeID {
	id, ok := b.Lookup(key)
	if !ok {
		panic(fmt.Sprintf("pg: builder: unknown node %q", key))
	}
	return id
}

// Graph returns the graph under construction.
func (b *Builder) Graph() *Graph { return b.g }

// Figure1 builds the ownership graph of Figure 1 of the paper:
//
//	P1 owns 80% of C and 75% of D; D owns 40% of E and 20% of F;
//	E owns 40% of F; P1 owns 20% of E; P2 owns 60% of G; G owns 60% of H;
//	H owns 40% of I; P2 owns 50% of I; H owns 10% of I is folded into the
//	40%+10% split; F owns 20% of L and I owns 40% of L (so that P1 and P2
//	together control L at 60%, per the family-business discussion in §1).
func Figure1() (*Graph, *Builder) {
	b := NewBuilder()
	for _, c := range []string{"C", "D", "E", "F", "G", "H", "I", "L"} {
		b.Company(c)
	}
	b.Person("P1")
	b.Person("P2")
	b.Own("P1", "C", 0.8).
		Own("P1", "D", 0.75).
		Own("D", "E", 0.4).
		Own("D", "F", 0.2).
		Own("E", "F", 0.4).
		Own("P1", "E", 0.2).
		Own("P2", "G", 0.6).
		Own("G", "H", 0.6).
		Own("H", "I", 0.4).
		Own("P2", "I", 0.5).
		Own("F", "L", 0.2).
		Own("I", "L", 0.4)
	return b.Graph(), b
}

// Figure2 builds the Italian company graph of Figure 2 used by Examples 2.4
// and 2.7:
//
//   - P1 owns 80% of C4 (so P1 controls C4 directly);
//   - P2 owns 60% of C5 and 55% of C6; C5 and C6 jointly own C7 (30% + 25%),
//     so P2 controls C7 via C5 and C6;
//   - P3 owns 40% of C4 and 50% of C6 (close link by Def 2.6(iii), t = 0.2);
//   - C4 owns 40% of C5, and C5 owns 50% of C7, giving Φ(C4, C7) = 0.2
//     (close link by Def 2.6(i)).
func Figure2() (*Graph, *Builder) {
	b := NewBuilder()
	for _, c := range []string{"C4", "C5", "C6", "C7"} {
		b.Company(c)
	}
	for _, p := range []string{"P1", "P2", "P3"} {
		b.Person(p)
	}
	b.Own("P1", "C4", 0.8).
		Own("P2", "C5", 0.6).
		Own("P2", "C6", 0.55).
		Own("C5", "C7", 0.5).
		Own("C6", "C7", 0.25).
		Own("P3", "C4", 0.4).
		Own("P3", "C6", 0.5).
		Own("C4", "C5", 0.4)
	return b.Graph(), b
}
