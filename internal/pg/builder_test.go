package pg

import (
	"strings"
	"testing"
)

func TestBuilderAddOwnershipErrors(t *testing.T) {
	b := NewBuilder()
	b.Company("C1")
	b.Company("C2")

	if _, err := b.AddOwnership("C1", "C2", 0.4); err != nil {
		t.Fatalf("valid ownership rejected: %v", err)
	}
	if _, err := b.AddOwnership("Cx", "C2", 0.4); err == nil || !strings.Contains(err.Error(), "unknown owner") {
		t.Errorf("unknown owner: err = %v", err)
	}
	if _, err := b.AddOwnership("C1", "Cx", 0.4); err == nil || !strings.Contains(err.Error(), "unknown owned") {
		t.Errorf("unknown owned: err = %v", err)
	}
	if _, err := b.AddOwnership("C1", "C2", 1.5); err == nil {
		t.Error("share > 1 accepted")
	}
	if _, err := b.AddOwnership("C1", "C2", -0.1); err == nil {
		t.Error("negative share accepted")
	}
}

func TestBuilderAddEdgeErrors(t *testing.T) {
	b := NewBuilder()
	b.Company("C1")
	b.Person("P1")
	if _, err := b.AddEdge(LabelControl, "P1", "C1", nil); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if _, err := b.AddEdge(LabelControl, "P1", "nope", nil); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := b.AddEdge(LabelControl, "nope", "C1", nil); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestBuilderAddNodeLabelConflict(t *testing.T) {
	b := NewBuilder()
	id, err := b.AddNode("X", LabelCompany)
	if err != nil {
		t.Fatal(err)
	}
	again, err := b.AddNode("X", LabelCompany)
	if err != nil || again != id {
		t.Errorf("re-adding same node: id=%v err=%v, want %v, nil", again, err, id)
	}
	if _, err := b.AddNode("X", LabelPerson); err == nil {
		t.Error("label conflict accepted")
	}
}

func TestBuilderLookup(t *testing.T) {
	b := NewBuilder()
	id := b.Company("C1")
	if got, ok := b.Lookup("C1"); !ok || got != id {
		t.Errorf("Lookup(C1) = %v, %v", got, ok)
	}
	if _, ok := b.Lookup("missing"); ok {
		t.Error("Lookup(missing) reported ok")
	}
}

// The chained Must-style helpers stay panicking — they back the figure
// constructors and test literals where malformed input is a programming
// error.
func TestBuilderOwnPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Own with unknown node did not panic")
		}
	}()
	NewBuilder().Own("nope", "also-nope", 0.5)
}
