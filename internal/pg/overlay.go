package pg

import (
	"fmt"
	"sort"
)

// Overlay is a copy-on-write delta stacked on a base View. Reads see the
// base plus the overlay's added nodes/edges, minus its removals, with
// weight edits substituted — without copying the base. Writes touch only
// the overlay; the base is never mutated and its mutation hook never fires.
//
// Identifier discipline: the overlay assigns node and edge IDs continuing
// from the base's NextNodeID/NextEdgeID counters, so an overlay journal
// replayed onto a graph equal to the base reproduces identical IDs — the
// property the MVCC store's commit path relies on.
//
// Overlays stack: the base may itself be an *Overlay, forming a version
// chain. An overlay is not safe for concurrent mutation; once frozen
// (published as a store version) concurrent reads are safe.
type Overlay struct {
	base View

	addedNodes map[NodeID]*Node
	addedEdges map[EdgeID]*Edge

	// removedNodes and removedEdges hold only base-visible IDs; removing an
	// overlay-added element deletes it from the added maps instead, keeping
	// NumNodes/NumEdges a pure arithmetic of map sizes.
	removedNodes map[NodeID]bool
	removedEdges map[EdgeID]bool

	// editedEdges substitutes a copy-on-write Edge for a base-visible edge
	// (weight edits). Label, endpoints and ID are unchanged.
	editedEdges map[EdgeID]*Edge

	nextNode NodeID
	nextEdge EdgeID

	out, in     map[NodeID][]EdgeID // adjacency of added edges only
	byNodeLabel map[Label][]NodeID
	byEdgeLabel map[Label][]EdgeID

	journal []Mutation // all ops, in application order
	depth   int
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base View) *Overlay {
	depth := 1
	if o, ok := base.(*Overlay); ok {
		depth = o.depth + 1
	}
	return &Overlay{
		base:         base,
		addedNodes:   map[NodeID]*Node{},
		addedEdges:   map[EdgeID]*Edge{},
		removedNodes: map[NodeID]bool{},
		removedEdges: map[EdgeID]bool{},
		editedEdges:  map[EdgeID]*Edge{},
		nextNode:     base.NextNodeID(),
		nextEdge:     base.NextEdgeID(),
		out:          map[NodeID][]EdgeID{},
		in:           map[NodeID][]EdgeID{},
		byNodeLabel:  map[Label][]NodeID{},
		byEdgeLabel:  map[Label][]EdgeID{},
		depth:        depth,
	}
}

// Base returns the view this overlay is stacked on.
func (o *Overlay) Base() View { return o.base }

// Depth reports how many overlay layers sit between this view and the
// flat graph at the bottom of the chain.
func (o *Overlay) Depth() int { return o.depth }

// Delta summarizes an overlay's changes against its base.
type Delta struct {
	AddedNodes   int `json:"addedNodes"`
	AddedEdges   int `json:"addedEdges"`
	RemovedNodes int `json:"removedNodes"`
	RemovedEdges int `json:"removedEdges"`
	EditedEdges  int `json:"editedEdges"`
}

// Delta reports the overlay's change counts.
func (o *Overlay) Delta() Delta {
	return Delta{
		AddedNodes:   len(o.addedNodes),
		AddedEdges:   len(o.addedEdges),
		RemovedNodes: len(o.removedNodes),
		RemovedEdges: len(o.removedEdges),
		EditedEdges:  len(o.editedEdges),
	}
}

// Journal returns the overlay's mutations in application order, ready to be
// replayed onto a graph equal to the base. Every overlay operation — adds,
// removals, weight edits, node removals — has a Mutation encoding, so any
// overlay is committable. The returned slice is the overlay's own; callers
// must not mutate it or the pointed-to nodes and edges.
//
// The error return is always nil; it survives from the era when weight edits
// and node removals were what-if-only and an overlay containing one could
// not be journaled. Kept so the many call sites compile unchanged.
func (o *Overlay) Journal() ([]Mutation, error) {
	return o.journal, nil
}

// --- View ---

// Node returns the visible node with the given ID, or nil.
func (o *Overlay) Node(id NodeID) *Node {
	if o.removedNodes[id] {
		return nil
	}
	if n, ok := o.addedNodes[id]; ok {
		return n
	}
	return o.base.Node(id)
}

// Edge returns the visible edge with the given ID, or nil.
func (o *Overlay) Edge(id EdgeID) *Edge {
	if o.removedEdges[id] {
		return nil
	}
	if e, ok := o.editedEdges[id]; ok {
		return e
	}
	if e, ok := o.addedEdges[id]; ok {
		return e
	}
	return o.base.Edge(id)
}

// NumNodes reports the number of visible nodes.
func (o *Overlay) NumNodes() int {
	return o.base.NumNodes() - len(o.removedNodes) + len(o.addedNodes)
}

// NumEdges reports the number of visible edges.
func (o *Overlay) NumEdges() int {
	return o.base.NumEdges() - len(o.removedEdges) + len(o.addedEdges)
}

// Nodes returns all visible node IDs in ascending order. Overlay-assigned
// IDs are all greater than base IDs, so the merge is a filter + append.
func (o *Overlay) Nodes() []NodeID {
	base := o.base.Nodes()
	ids := make([]NodeID, 0, len(base)+len(o.addedNodes))
	if len(o.removedNodes) == 0 {
		ids = append(ids, base...)
	} else {
		for _, id := range base {
			if !o.removedNodes[id] {
				ids = append(ids, id)
			}
		}
	}
	own := make([]NodeID, 0, len(o.addedNodes))
	for id := range o.addedNodes {
		own = append(own, id)
	}
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	return append(ids, own...)
}

// Edges returns all visible edge IDs in ascending order.
func (o *Overlay) Edges() []EdgeID {
	base := o.base.Edges()
	ids := make([]EdgeID, 0, len(base)+len(o.addedEdges))
	if len(o.removedEdges) == 0 {
		ids = append(ids, base...)
	} else {
		for _, id := range base {
			if !o.removedEdges[id] {
				ids = append(ids, id)
			}
		}
	}
	own := make([]EdgeID, 0, len(o.addedEdges))
	for id := range o.addedEdges {
		own = append(own, id)
	}
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	return append(ids, own...)
}

// NodesWithLabel returns the visible nodes carrying the label, in insertion
// order (base insertions first, then overlay insertions).
func (o *Overlay) NodesWithLabel(label Label) []NodeID {
	base := o.base.NodesWithLabel(label)
	if len(o.removedNodes) > 0 {
		kept := base[:0]
		for _, id := range base {
			if !o.removedNodes[id] {
				kept = append(kept, id)
			}
		}
		base = kept
	}
	return append(base, o.byNodeLabel[label]...)
}

// EdgesWithLabel returns the visible edges carrying the label, in insertion
// order. Weight edits do not change labels, so the base's label index stays
// authoritative for base edges.
func (o *Overlay) EdgesWithLabel(label Label) []EdgeID {
	base := o.base.EdgesWithLabel(label)
	if len(o.removedEdges) > 0 {
		kept := base[:0]
		for _, id := range base {
			if !o.removedEdges[id] {
				kept = append(kept, id)
			}
		}
		base = kept
	}
	return append(base, o.byEdgeLabel[label]...)
}

// Out returns the outgoing edge IDs of a node.
func (o *Overlay) Out(id NodeID) []EdgeID {
	if o.removedNodes[id] {
		return nil
	}
	base := o.base.Out(id)
	own := o.out[id]
	if len(o.removedEdges) == 0 && len(own) == 0 {
		return base
	}
	ids := make([]EdgeID, 0, len(base)+len(own))
	for _, eid := range base {
		if !o.removedEdges[eid] {
			ids = append(ids, eid)
		}
	}
	return append(ids, own...)
}

// In returns the incoming edge IDs of a node.
func (o *Overlay) In(id NodeID) []EdgeID {
	if o.removedNodes[id] {
		return nil
	}
	base := o.base.In(id)
	own := o.in[id]
	if len(o.removedEdges) == 0 && len(own) == 0 {
		return base
	}
	ids := make([]EdgeID, 0, len(base)+len(own))
	for _, eid := range base {
		if !o.removedEdges[eid] {
			ids = append(ids, eid)
		}
	}
	return append(ids, own...)
}

// OutLabel returns the outgoing edges of n restricted to one label.
func (o *Overlay) OutLabel(n NodeID, label Label) []*Edge {
	if o.removedNodes[n] {
		return nil
	}
	own := o.out[n]
	if len(o.removedEdges) == 0 && len(o.editedEdges) == 0 && len(own) == 0 {
		return o.base.OutLabel(n, label)
	}
	var res []*Edge
	for _, eid := range o.base.Out(n) {
		if o.removedEdges[eid] {
			continue
		}
		e := o.base.Edge(eid)
		if edited, ok := o.editedEdges[eid]; ok {
			e = edited
		}
		if e != nil && e.Label == label {
			res = append(res, e)
		}
	}
	for _, eid := range own {
		if e := o.addedEdges[eid]; e != nil && e.Label == label {
			res = append(res, e)
		}
	}
	return res
}

// InLabel returns the incoming edges of n restricted to one label.
func (o *Overlay) InLabel(n NodeID, label Label) []*Edge {
	if o.removedNodes[n] {
		return nil
	}
	own := o.in[n]
	if len(o.removedEdges) == 0 && len(o.editedEdges) == 0 && len(own) == 0 {
		return o.base.InLabel(n, label)
	}
	var res []*Edge
	for _, eid := range o.base.In(n) {
		if o.removedEdges[eid] {
			continue
		}
		e := o.base.Edge(eid)
		if edited, ok := o.editedEdges[eid]; ok {
			e = edited
		}
		if e != nil && e.Label == label {
			res = append(res, e)
		}
	}
	for _, eid := range own {
		if e := o.addedEdges[eid]; e != nil && e.Label == label {
			res = append(res, e)
		}
	}
	return res
}

// HasEdge reports whether a visible edge with the given label exists
// from → to.
func (o *Overlay) HasEdge(label Label, from, to NodeID) bool {
	if o.removedNodes[from] || o.removedNodes[to] {
		return false
	}
	for _, eid := range o.out[from] {
		if e := o.addedEdges[eid]; e != nil && e.Label == label && e.To == to {
			return true
		}
	}
	if len(o.removedEdges) == 0 {
		return o.base.HasEdge(label, from, to)
	}
	for _, eid := range o.base.Out(from) {
		if o.removedEdges[eid] {
			continue
		}
		if e := o.base.Edge(eid); e != nil && e.Label == label && e.To == to {
			return true
		}
	}
	return false
}

// NextNodeID returns the identifier the next AddNode will assign.
func (o *Overlay) NextNodeID() NodeID { return o.nextNode }

// NextEdgeID returns the identifier the next AddEdge will assign.
func (o *Overlay) NextEdgeID() EdgeID { return o.nextEdge }

// --- Mutable ---

// AddNode inserts a node into the overlay and returns its ID. The base is
// untouched.
func (o *Overlay) AddNode(label Label, props Properties) NodeID {
	id := o.nextNode
	o.nextNode++
	if props == nil {
		props = Properties{}
	}
	n := &Node{ID: id, Label: label, Props: props}
	o.addedNodes[id] = n
	o.byNodeLabel[label] = append(o.byNodeLabel[label], id)
	o.journal = append(o.journal, Mutation{Kind: MutAddNode, Node: n})
	return id
}

// AddEdge inserts a directed edge from → to into the overlay and returns
// its ID. Both endpoints must be visible in the composite view.
func (o *Overlay) AddEdge(label Label, from, to NodeID, props Properties) (EdgeID, error) {
	if o.Node(from) == nil {
		return 0, fmt.Errorf("pg: add edge: unknown source node %d", from)
	}
	if o.Node(to) == nil {
		return 0, fmt.Errorf("pg: add edge: unknown target node %d", to)
	}
	id := o.nextEdge
	o.nextEdge++
	if props == nil {
		props = Properties{}
	}
	e := &Edge{ID: id, Label: label, From: from, To: to, Props: props}
	o.addedEdges[id] = e
	o.out[from] = append(o.out[from], id)
	o.in[to] = append(o.in[to], id)
	o.byEdgeLabel[label] = append(o.byEdgeLabel[label], id)
	o.journal = append(o.journal, Mutation{Kind: MutAddEdge, Edge: e})
	return id, nil
}

// MustAddEdge is AddEdge that panics on error.
func (o *Overlay) MustAddEdge(label Label, from, to NodeID, props Properties) EdgeID {
	id, err := o.AddEdge(label, from, to, props)
	if err != nil {
		panic(err)
	}
	return id
}

// AddShare inserts a Shareholding edge with weight w.
func (o *Overlay) AddShare(from, to NodeID, w float64) (EdgeID, error) {
	return o.AddEdge(LabelShareholding, from, to, Properties{WeightProp: w})
}

// RemoveEdge hides a base edge or deletes an overlay-added one. Removing a
// missing edge is a no-op returning false.
func (o *Overlay) RemoveEdge(id EdgeID) bool {
	if e, ok := o.addedEdges[id]; ok {
		delete(o.addedEdges, id)
		o.out[e.From] = removeID(o.out[e.From], id)
		o.in[e.To] = removeID(o.in[e.To], id)
		o.byEdgeLabel[e.Label] = removeID(o.byEdgeLabel[e.Label], id)
		o.journal = append(o.journal, Mutation{Kind: MutRemoveEdge, Edge: e})
		return true
	}
	e := o.Edge(id)
	if e == nil {
		return false
	}
	o.removedEdges[id] = true
	delete(o.editedEdges, id)
	o.journal = append(o.journal, Mutation{Kind: MutRemoveEdge, Edge: e})
	return true
}

// SetEdgeWeight overrides the shareholding weight of a visible edge,
// copy-on-write, and journals a MutSetEdgeWeight. Editing the same edge
// twice journals the shared copy twice; replay applies the final weight both
// times, converging on the same state, which is all a journal promises.
func (o *Overlay) SetEdgeWeight(id EdgeID, w float64) error {
	e := o.Edge(id)
	if e == nil {
		return fmt.Errorf("pg: set weight: unknown edge %d", id)
	}
	if e.Label != LabelShareholding {
		return fmt.Errorf("pg: set weight: edge %d is %s, want Shareholding", id, e.Label)
	}
	if w <= 0 || w > 1 {
		return fmt.Errorf("pg: set weight: share amount %v outside (0,1]", w)
	}
	if _, added := o.addedEdges[id]; added || o.editedEdges[id] != nil {
		e.Props[WeightProp] = w // overlay-owned copy: edit in place
	} else {
		props := make(Properties, len(e.Props))
		for k, v := range e.Props {
			props[k] = v
		}
		props[WeightProp] = w
		e = &Edge{ID: e.ID, Label: e.Label, From: e.From, To: e.To, Props: props}
		o.editedEdges[id] = e
	}
	o.journal = append(o.journal, Mutation{Kind: MutSetEdgeWeight, Edge: e})
	return nil
}

// RemoveNode hides a visible node and all its visible incident edges.
// Incident-edge removals journal first (through RemoveEdge), then the bare
// node removal journals as MutRemoveNode — the same order Graph.RemoveNode
// fires its hooks in, so replaying the journal reproduces the stream.
// Removing a missing node is a no-op returning false.
func (o *Overlay) RemoveNode(id NodeID) bool {
	n := o.Node(id)
	if n == nil {
		return false
	}
	incident := append([]EdgeID(nil), o.Out(id)...)
	incident = append(incident, o.In(id)...)
	for _, eid := range incident {
		o.RemoveEdge(eid)
	}
	if _, added := o.addedNodes[id]; added {
		delete(o.addedNodes, id)
		o.byNodeLabel[n.Label] = removeID(o.byNodeLabel[n.Label], id)
	} else {
		o.removedNodes[id] = true
	}
	o.journal = append(o.journal, Mutation{Kind: MutRemoveNode, Node: n})
	return true
}
