package whatif

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
)

// randomOps builds a batch of 1–6 scenario ops that is guaranteed to apply
// cleanly, by trial-applying each candidate op to a scratch overlay. The
// scratch overlay evolves exactly as Evaluate's internal overlay will, so
// node IDs created mid-batch are referenceable by later ops.
func randomOps(rng *rand.Rand, base pg.View) []Op {
	scratch := pg.NewOverlay(base)
	var ops []Op
	want := 1 + rng.Intn(6)
	for attempts := 0; len(ops) < want && attempts < 50; attempts++ {
		var op Op
		switch rng.Intn(5) {
		case 0:
			label := "Company"
			if rng.Intn(4) == 0 {
				label = "Person"
			}
			op = Op{Op: "addNode", Label: label, Name: fmt.Sprintf("wi%d", len(ops))}
		case 1:
			nodes := scratch.Nodes()
			companies := scratch.NodesWithLabel(pg.LabelCompany)
			if len(nodes) == 0 || len(companies) == 0 {
				continue
			}
			op = Op{
				Op:   "addShare",
				From: nodes[rng.Intn(len(nodes))],
				To:   companies[rng.Intn(len(companies))],
				W:    0.05 + 0.9*rng.Float64(),
			}
		case 2:
			shares := scratch.EdgesWithLabel(pg.LabelShareholding)
			if len(shares) == 0 {
				continue
			}
			op = Op{Op: "setShare", Edge: shares[rng.Intn(len(shares))], W: 0.05 + 0.9*rng.Float64()}
		case 3:
			edges := scratch.Edges()
			if len(edges) == 0 {
				continue
			}
			op = Op{Op: "removeEdge", Edge: edges[rng.Intn(len(edges))]}
		case 4:
			nodes := scratch.Nodes()
			if len(nodes) < 4 {
				continue
			}
			op = Op{Op: "removeNode", Node: nodes[rng.Intn(len(nodes))]}
		}
		if _, _, err := Apply(scratch, []Op{op}); err != nil {
			continue
		}
		ops = append(ops, op)
	}
	return ops
}

func sortedPairs(m map[Pair]bool) []Pair {
	out := make([]Pair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

func diffPairSets(t *testing.T, what string, got, want map[Pair]bool) {
	t.Helper()
	if len(got) == len(want) {
		same := true
		for p := range want {
			if !got[p] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	t.Errorf("%s mismatch:\n  got  %v\n  want %v", what, sortedPairs(got), sortedPairs(want))
}

// TestDifferentialWhatIf is the ground-truth harness: across 100+ randomized
// generated graphs and random scenario batches, the scoped evaluation, the
// unscoped evaluation and the brute-force oracle — flatten the overlay into
// a standalone graph and re-run the full chase — must agree fact-for-fact on
// both the control and the close-link relation.
//
// Three-way agreement separates failure modes: scoped != unscoped blames the
// affected-cone scoping or the accown seeding; unscoped != oracle blames the
// overlay view itself (a read accessor lying about the composite graph).
func TestDifferentialWhatIf(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is not short")
	}
	ctx := context.Background()
	thresholds := []float64{0.1, 0.2, 0.3}

	const cases = 110
	ran := 0
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		var base *pg.Graph
		if i%5 == 4 {
			// Every fifth case: an Italian-style graph, for person-owner and
			// family-structure coverage.
			base = graphgen.NewItalian(graphgen.ItalianConfig{
				Companies: 10 + rng.Intn(10),
				Persons:   6 + rng.Intn(6),
				Seed:      int64(i),
			}).Graph
		} else {
			base = graphgen.Barabasi(8+rng.Intn(16), 1+rng.Intn(3), int64(i))
		}
		threshold := thresholds[i%len(thresholds)]
		ops := randomOps(rng, base)
		if len(ops) == 0 {
			continue
		}
		ran++

		name := fmt.Sprintf("case %d (t=%v, %d ops, %d nodes)", i, threshold, len(ops), base.NumNodes())

		bl, err := ComputeBaseline(ctx, base, threshold)
		if err != nil {
			t.Fatalf("%s: baseline: %v", name, err)
		}
		scoped, err := Evaluate(ctx, base, bl, ops, Options{Threshold: threshold})
		if err != nil {
			t.Fatalf("%s: scoped: %v", name, err)
		}
		unscoped, err := Evaluate(ctx, base, bl, ops, Options{Threshold: threshold, NoScope: true})
		if err != nil {
			t.Fatalf("%s: unscoped: %v", name, err)
		}

		// Oracle: deep-copy the composite into a standalone graph and chase
		// it from scratch.
		o := pg.NewOverlay(base)
		if _, _, err := Apply(o, ops); err != nil {
			t.Fatalf("%s: re-apply: %v", name, err)
		}
		flat, err := pg.Flatten(o)
		if err != nil {
			t.Fatalf("%s: flatten: %v", name, err)
		}
		oracle, err := ComputeBaseline(ctx, flat, threshold)
		if err != nil {
			t.Fatalf("%s: oracle chase: %v", name, err)
		}

		diffPairSets(t, name+": scoped vs unscoped control", scoped.Control, unscoped.Control)
		diffPairSets(t, name+": scoped vs unscoped closelink", scoped.CloseLink, unscoped.CloseLink)
		diffPairSets(t, name+": unscoped vs oracle control", unscoped.Control, oracle.Control)
		diffPairSets(t, name+": unscoped vs oracle closelink", unscoped.CloseLink, oracle.CloseLink)
		diffPairSets(t, name+": scoped vs oracle control", scoped.Control, oracle.Control)
		diffPairSets(t, name+": scoped vs oracle closelink", scoped.CloseLink, oracle.CloseLink)

		// The reported diffs must be exactly the set differences.
		checkDiff(t, name+": control diff", bl.Control, scoped.Control, scoped.ControlGained, scoped.ControlLost)
		checkDiff(t, name+": closelink diff", bl.CloseLink, scoped.CloseLink, scoped.CloseLinkGained, scoped.CloseLinkLost)

		if scoped.AffectedSources > unscoped.AffectedSources {
			t.Errorf("%s: scoped touched %d sources, more than unscoped's %d",
				name, scoped.AffectedSources, unscoped.AffectedSources)
		}
		if t.Failed() {
			t.Fatalf("%s: stopping after first divergence", name)
		}
	}
	if ran < 100 {
		t.Fatalf("only %d effective cases ran, want >= 100", ran)
	}
}

func checkDiff(t *testing.T, what string, before, after map[Pair]bool, gained, lost []Pair) {
	t.Helper()
	wantGained, wantLost := diffSets(before, after)
	if !pairSlicesEqual(gained, wantGained) {
		t.Errorf("%s: gained = %v, want %v", what, gained, wantGained)
	}
	if !pairSlicesEqual(lost, wantLost) {
		t.Errorf("%s: lost = %v, want %v", what, lost, wantLost)
	}
	if !sort.SliceIsSorted(gained, func(i, j int) bool {
		return gained[i][0] < gained[j][0] || (gained[i][0] == gained[j][0] && gained[i][1] < gained[j][1])
	}) {
		t.Errorf("%s: gained not sorted: %v", what, gained)
	}
}

func pairSlicesEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
