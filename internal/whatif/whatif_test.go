package whatif

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/vadalog"
)

// acquisitionGraph is the README example: Alpha holds 25% of Beta, Carol
// holds the majority of Alpha, Delta holds 40% of Beta.
func acquisitionGraph(t *testing.T) (g *pg.Graph, alpha, beta, delta pg.NodeID) {
	t.Helper()
	g = pg.New()
	alpha = g.AddNode(pg.LabelCompany, pg.Properties{"name": "Alpha"})
	beta = g.AddNode(pg.LabelCompany, pg.Properties{"name": "Beta"})
	delta = g.AddNode(pg.LabelCompany, pg.Properties{"name": "Delta"})
	carol := g.AddNode(pg.LabelPerson, pg.Properties{"name": "Carol"})
	mustShare(t, g, alpha, beta, 0.25)
	mustShare(t, g, delta, beta, 0.40)
	mustShare(t, g, carol, alpha, 0.60)
	return g, alpha, beta, delta
}

func mustShare(t *testing.T, g *pg.Graph, from, to pg.NodeID, w float64) pg.EdgeID {
	t.Helper()
	id, err := g.AddShare(from, to, w)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestAcquisitionScenario(t *testing.T) {
	g, alpha, beta, _ := acquisitionGraph(t)
	ctx := context.Background()
	bl, err := ComputeBaseline(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Control[Pair{alpha, beta}] {
		t.Fatal("baseline: Alpha already controls Beta at 25%")
	}

	// Alpha acquires an additional 30% of Beta: 55% > 50%.
	res, err := Evaluate(ctx, g, bl, []Op{{Op: "addShare", From: alpha, To: beta, W: 0.30}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Control[Pair{alpha, beta}] {
		t.Fatal("what-if: Alpha does not control Beta after the acquisition")
	}
	found := false
	for _, p := range res.ControlGained {
		if p == (Pair{alpha, beta}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("ControlGained = %v, want to include [%d %d]", res.ControlGained, alpha, beta)
	}
	if len(res.ControlLost) != 0 {
		t.Fatalf("ControlLost = %v, want none", res.ControlLost)
	}
	// Alpha–Beta become closely linked: Alpha now accumulates 55% ≥ 20% of
	// Beta (Delta–Beta at 40% was a baseline close link already).
	if !res.CloseLink[canonical(alpha, beta)] {
		t.Fatalf("CloseLink = %v, want Alpha–Beta", sortedPairs(res.CloseLink))
	}
	if !bl.CloseLink[canonical(2, beta)] || res.CloseLinkLost != nil {
		t.Fatalf("Delta–Beta baseline close link disturbed: lost %v", res.CloseLinkLost)
	}
	// Scoping: only Alpha's reverse cone (Alpha + Carol) is affected.
	if res.AffectedSources >= g.NumNodes() {
		t.Fatalf("AffectedSources = %d, want a strict subset of %d nodes", res.AffectedSources, g.NumNodes())
	}
	if res.Delta.AddedEdges != 1 {
		t.Fatalf("Delta = %+v, want exactly one added edge", res.Delta)
	}
	// The base graph is untouched.
	if g.NumEdges() != 3 {
		t.Fatalf("base graph mutated: %d edges", g.NumEdges())
	}
}

func TestDivestitureScenario(t *testing.T) {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	e := mustShare(t, g, a, b, 0.8)
	ctx := context.Background()
	bl, err := ComputeBaseline(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bl.Control[Pair{a, b}] {
		t.Fatal("baseline: A does not control B at 80%")
	}

	res, err := Evaluate(ctx, g, bl, []Op{{Op: "setShare", Edge: e, W: 0.3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ControlLost) != 1 || res.ControlLost[0] != (Pair{a, b}) {
		t.Fatalf("ControlLost = %v, want exactly [%d %d]", res.ControlLost, a, b)
	}
	// setShare by endpoints instead of edge ID resolves the same edge.
	res2, err := Evaluate(ctx, g, bl, []Op{{Op: "setShare", From: a, To: b, W: 0.3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.ControlLost) != 1 {
		t.Fatalf("endpoint-addressed setShare: ControlLost = %v", res2.ControlLost)
	}
}

func TestCreatedNodeIDsAreReferenceable(t *testing.T) {
	g, _, beta, _ := acquisitionGraph(t)
	ctx := context.Background()
	bl, err := ComputeBaseline(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A new holding company is created and immediately takes 35% of Beta
	// (Beta has 35% unallocated) — with Alpha's 25% it stays minority.
	next := g.NextNodeID()
	res, err := Evaluate(ctx, g, bl, []Op{
		{Op: "addNode", Label: "Company", Name: "NewCo"},
		{Op: "addShare", From: next, To: beta, W: 0.35},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Created) != 1 || res.Created[0] != next {
		t.Fatalf("Created = %v, want [%d]", res.Created, next)
	}
	if res.Control[Pair{next, beta}] {
		t.Fatal("35% should not control Beta")
	}
	if !res.CloseLink[canonical(next, beta)] {
		t.Fatalf("CloseLink = %v, want NewCo–Beta at 35%% ≥ 20%%", sortedPairs(res.CloseLink))
	}
}

func TestApplyErrors(t *testing.T) {
	g, alpha, beta, _ := acquisitionGraph(t)
	cases := []struct {
		name string
		ops  []Op
		idx  int
	}{
		{"unknown op", []Op{{Op: "merge"}}, 0},
		{"bad label", []Op{{Op: "addNode", Label: "Bank"}}, 0},
		{"share out of range", []Op{{Op: "addShare", From: alpha, To: beta, W: 1.5}}, 0},
		{"over 100% owned", []Op{{Op: "addShare", From: alpha, To: beta, W: 0.9}}, 0},
		{"share of person", []Op{{Op: "addShare", From: alpha, To: 3, W: 0.5}}, 0},
		{"unknown edge", []Op{{Op: "removeEdge", Edge: 99}}, 0},
		{"unknown node", []Op{{Op: "removeNode", Node: 99}}, 0},
		{"second op bad", []Op{{Op: "addNode"}, {Op: "setShare", Edge: 99, W: 0.5}}, 1},
	}
	for _, tc := range cases {
		o := pg.NewOverlay(g)
		_, _, err := Apply(o, tc.ops)
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Errorf("%s: err = %v, want *OpError", tc.name, err)
			continue
		}
		if oe.Index != tc.idx {
			t.Errorf("%s: error at op %d, want %d", tc.name, oe.Index, tc.idx)
		}
	}
}

func TestEvaluateThresholdMismatch(t *testing.T) {
	g, alpha, beta, _ := acquisitionGraph(t)
	ctx := context.Background()
	bl, err := ComputeBaseline(ctx, g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Evaluate(ctx, g, bl, []Op{{Op: "addShare", From: alpha, To: beta, W: 0.1}}, Options{Threshold: 0.3})
	if err == nil || !strings.Contains(err.Error(), "threshold") {
		t.Fatalf("err = %v, want threshold mismatch", err)
	}
}

// TestEvaluateNeverTouchesBase pins the isolation contract at the package
// level: a what-if burst over a hooked graph fires zero mutation hooks (the
// seam the WAL hangs on) and leaves the structure untouched.
func TestEvaluateNeverTouchesBase(t *testing.T) {
	g, alpha, beta, delta := acquisitionGraph(t)
	fired := 0
	g.SetMutationHook(func(pg.Mutation) { fired++ })
	nodes, edges := g.NumNodes(), g.NumEdges()
	ctx := context.Background()
	bl, err := ComputeBaseline(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Op{
		{{Op: "addShare", From: alpha, To: beta, W: 0.3}},
		{{Op: "removeNode", Node: delta}},
		{{Op: "addNode"}, {Op: "addShare", From: g.NextNodeID(), To: delta, W: 0.9}},
	}
	for _, ops := range batches {
		if _, err := Evaluate(ctx, g, bl, ops, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 0 {
		t.Fatalf("mutation hook fired %d times during what-if evaluation", fired)
	}
	if g.NumNodes() != nodes || g.NumEdges() != edges {
		t.Fatalf("base graph changed shape: %d/%d nodes, %d/%d edges", g.NumNodes(), nodes, g.NumEdges(), edges)
	}
}

// TestProgramsMatchVadalog keeps the generated program text honest against
// the canonical shipped programs: same rules, same thresholds.
func TestProgramsMatchVadalog(t *testing.T) {
	gen, err := datalog.Parse(Programs(0.2))
	if err != nil {
		t.Fatalf("generated program: %v", err)
	}
	canon, err := datalog.Parse(vadalog.ControlProgram + vadalog.CloseLinkProgramT(0.2))
	if err != nil {
		t.Fatalf("canonical program: %v", err)
	}
	if len(gen.Rules) != len(canon.Rules) {
		t.Fatalf("generated program has %d rules, canonical %d", len(gen.Rules), len(canon.Rules))
	}
	if !strings.Contains(vadalog.CloseLinkProgramT(0.35), "0.35") {
		t.Fatal("CloseLinkProgramT(0.35) does not inline the threshold")
	}
	if strings.Contains(vadalog.CloseLinkProgramT(0.35), "0.2") {
		t.Fatal("CloseLinkProgramT(0.35) left the default threshold behind")
	}
}
