// Package whatif evaluates counterfactual ownership scenarios — "A acquires
// 30% of B: who gains control? which close links appear?" — the workload of
// the COVID-19 golden-powers follow-up to the Vada-Link paper.
//
// A scenario is a batch of hypothetical mutations applied to a copy-on-write
// overlay (pg.Overlay) over a frozen base view. The chase then runs over the
// composite view and the derived control/closeLink relations are diffed
// against a precomputed baseline of the base view. The base graph is never
// copied and never mutated; the WAL never sees a what-if.
//
// Evaluation is scoped: control(x, ·) and accumulated ownership accown(x, ·)
// depend only on the shareholding cone reachable from x, so a source x whose
// cone contains no mutated edge derives exactly its baseline facts. The
// evaluator computes the affected-source set (reverse shareholding
// reachability from every mutated edge's owner side, in both base and
// composite), re-chases only those sources — seeding the engine with the
// baseline's accumulated-ownership rows for unaffected sources, sound
// because msum takes the per-contributor maximum — and splices the result
// into the baseline. On registry-scale graphs a small scenario touches a
// tiny cone, which is what makes /v1/whatif interactive where a full
// re-chase is not. The unscoped path (Options.NoScope) evaluates every
// source and exists so differential tests can pin scoped == unscoped ==
// flatten-and-re-chase.
package whatif

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/relstore"
)

// DefaultThreshold is the close-link threshold when a scenario does not set
// one (the ECB value).
const DefaultThreshold = 0.2

// DefaultMinAggDelta is the monotonic-aggregate convergence step used for
// what-if chases unless Options.Engine overrides it. Scenario mutations
// routinely create ownership cycles (cross-shareholding), and on a cyclic
// graph the engine's exact-fixpoint default grinds: every sub-threshold
// improvement event asserts another stale accown row, and the cascade of
// improvement events grows exponentially in -log(eps). 1e-4 converges in
// seconds where 1e-6 takes minutes and 1e-9 effectively never; the bounded
// error (≤ eps per contributor) is far below the share-fraction precision
// real registries record.
const DefaultMinAggDelta = 1e-4

// Op is one hypothetical mutation of a scenario batch.
//
// Kinds:
//
//   - "addNode": add a node; Label is "Company" (default) or "Person", Name
//     an optional display name. Nodes are assigned IDs sequentially from the
//     base view's NextNodeID, so later ops in the same batch can reference
//     them.
//   - "addShare": add a shareholding From → To with weight W in (0, 1].
//     The incoming shares of To must stay ≤ 1 — nobody acquires more of a
//     company than exists, and the bound keeps the chase convergent.
//   - "setShare": override the weight of the shareholding edge Edge — or,
//     when Edge is zero and From/To are set, of the unique shareholding edge
//     From → To — to W.
//   - "removeEdge": remove edge Edge.
//   - "removeNode": remove Node and every edge incident to it.
type Op struct {
	Op    string    `json:"op"`
	Label string    `json:"label,omitempty"`
	Name  string    `json:"name,omitempty"`
	From  pg.NodeID `json:"from,omitempty"`
	To    pg.NodeID `json:"to,omitempty"`
	W     float64   `json:"w,omitempty"`
	Edge  pg.EdgeID `json:"edge,omitempty"`
	Node  pg.NodeID `json:"node,omitempty"`
}

// OpError reports an invalid scenario op by batch index.
type OpError struct {
	Index int
	Err   error
}

func (e *OpError) Error() string { return fmt.Sprintf("whatif: op %d: %v", e.Index, e.Err) }

func (e *OpError) Unwrap() error { return e.Err }

// Pair is a directed (or canonicalized symmetric) node pair.
type Pair = [2]pg.NodeID

// Baseline is the derived state of one base view: the control relation, the
// (canonicalized) close-link relation, and the final accumulated-ownership
// rows grouped by source. Computing it costs one full chase; a server caches
// one per published version and every what-if against that version reuses
// it.
type Baseline struct {
	Threshold float64
	Control   map[Pair]bool
	CloseLink map[Pair]bool

	// Accown holds the final accumulated-ownership rows grouped by source
	// node. A published Baseline is shared by concurrent readers (the server
	// caches one per version), so all three maps must be treated as
	// immutable: derive an updated Baseline by building fresh maps (see
	// internal/ivm), never by mutating a published one.
	Accown map[pg.NodeID][]datalog.Fact
}

// ControlSize reports the number of control pairs in the baseline.
func (b *Baseline) ControlSize() int { return len(b.Control) }

// CloseLinkSize reports the number of (unordered) close-link pairs.
func (b *Baseline) CloseLinkSize() int { return len(b.CloseLink) }

// controlAccownText builds the control + accumulated-ownership rules (the
// aggregate fragment of the chase). When scoped, derivation of control
// candidates and accumulated ownership is restricted to sources with an
// affected(X) fact.
func controlAccownText(scoped bool) string {
	guard := ""
	if scoped {
		guard = ", affected(X)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "company(X, N, B, A, S)%s -> ccand(X, X).\n", guard)
	fmt.Fprintf(&b, "person(X, N, B, A, S)%s -> ccand(X, X).\n", guard)
	b.WriteString("ccand(X, Z), own(Z, Y, W), X != Y, S = msum(W, <Z>), S > 0.5 -> ccand(X, Y).\n")
	b.WriteString("ccand(X, Y), X != Y -> control(X, Y).\n")
	fmt.Fprintf(&b, "own(X, Y, W)%s, X != Y, S = msum(W, <X, Y>) -> accown(X, Y, S).\n", guard)
	fmt.Fprintf(&b, "own(X, Z, W1)%s, X != Z, accown(Z, Y, W2), X != Y, S = msum(W1 * W2, <Z, Y>) -> accown(X, Y, S).\n", guard)
	return b.String()
}

// closeLinkText builds the close-link pair-formation rules over the accown
// relation at a threshold.
func closeLinkText(threshold float64) string {
	t := strconv.FormatFloat(threshold, 'g', -1, 64)
	var b strings.Builder
	fmt.Fprintf(&b, "accown(X, Y, W), W >= %s, company(X, N1, B1, A1, S1), company(Y, N2, B2, A2, S2) -> clcand(X, Y).\n", t)
	b.WriteString("clcand(X, Y) -> clcand(Y, X).\n")
	fmt.Fprintf(&b, "accown(Z, X, W1), W1 >= %s, accown(Z, Y, W2), W2 >= %s, X != Y, company(X, N1, B1, A1, S1), company(Y, N2, B2, A2, S2) -> clcand(X, Y).\n", t, t)
	b.WriteString("clcand(X, Y) -> closelink(X, Y).\n")
	return b.String()
}

// programText builds the full control + close-link chase program. When
// scoped, pair formation stays global so baseline-seeded accown rows
// participate.
func programText(threshold float64, scoped bool) string {
	return controlAccownText(scoped) + closeLinkText(threshold)
}

// MaintenanceProgram is the scoped control + accumulated-ownership program
// (without the close-link pair formation), the recompute-per-affected-cone
// fragment of incremental view maintenance (internal/ivm). It is
// rule-for-rule the aggregate fragment of Programs, so a maintainer that
// seeds unaffected baseline rows and re-derives affected cones lands on
// exactly the facts a full chase would.
func MaintenanceProgram() string { return controlAccownText(true) }

// withWhatIfDefaults prepends the package convergence default so explicit
// caller options still win (later options overwrite earlier ones). The
// baseline and the scenario chase must run under the same step or the
// seeded rows would not line up with re-derived ones.
func withWhatIfDefaults(opts []datalog.Option) []datalog.Option {
	return append([]datalog.Option{datalog.WithMinAggDelta(DefaultMinAggDelta)}, opts...)
}

func toID(v any) (pg.NodeID, bool) {
	switch x := v.(type) {
	case int64:
		return pg.NodeID(x), true
	case float64:
		return pg.NodeID(int64(x)), float64(int64(x)) == x
	}
	return 0, false
}

func canonical(a, b pg.NodeID) Pair {
	if b < a {
		a, b = b, a
	}
	return Pair{a, b}
}

// ComputeBaseline runs the full control + close-link chase over a view and
// captures the state what-if evaluation diffs against. threshold 0 means
// DefaultThreshold.
func ComputeBaseline(ctx context.Context, v pg.View, threshold float64, engineOpts ...datalog.Option) (*Baseline, error) {
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	prog, err := datalog.Parse(programText(threshold, false))
	if err != nil {
		return nil, fmt.Errorf("whatif: parsing baseline program: %w", err)
	}
	e, err := datalog.NewEngine(prog, withWhatIfDefaults(engineOpts)...)
	if err != nil {
		return nil, fmt.Errorf("whatif: preparing baseline engine: %w", err)
	}
	e.AssertAll(relstore.CompanyGraphFacts(v))
	if err := e.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("whatif: baseline chase: %w", err)
	}
	bl := &Baseline{
		Threshold: threshold,
		Control:   pairSet(e, "control", false),
		CloseLink: pairSet(e, "closelink", true),
		Accown:    map[pg.NodeID][]datalog.Fact{},
	}
	for _, f := range e.MaxByGroup("accown", 2, 0, 1) {
		if src, ok := toID(f.Args[0]); ok {
			bl.Accown[src] = append(bl.Accown[src], f)
		}
	}
	return bl, nil
}

func pairSet(e *datalog.Engine, pred string, canon bool) map[Pair]bool {
	out := map[Pair]bool{}
	for _, f := range e.Facts(pred) {
		if len(f.Args) != 2 {
			continue
		}
		a, ok1 := toID(f.Args[0])
		b, ok2 := toID(f.Args[1])
		if !ok1 || !ok2 {
			continue
		}
		if canon {
			out[canonical(a, b)] = true
		} else {
			out[Pair{a, b}] = true
		}
	}
	return out
}

// Options tunes a what-if evaluation.
type Options struct {
	// Threshold is the close-link threshold; 0 means DefaultThreshold. It
	// must match the baseline's.
	Threshold float64
	// NoScope disables affected-cone scoping: every source is re-derived.
	// Slower; exists for differential testing and benchmarking.
	NoScope bool
	// Engine options (budget, parallelism, ...) applied to the chase.
	Engine []datalog.Option
}

// Result reports one evaluated scenario.
type Result struct {
	// Created lists the node IDs assigned to addNode ops, in op order.
	Created []pg.NodeID
	// Delta summarizes the overlay the scenario built.
	Delta pg.Delta
	// AffectedSources is the number of sources re-derived (equals the total
	// source count when scoping is off).
	AffectedSources int
	// Control/CloseLink diffs versus the baseline, sorted. CloseLink pairs
	// are canonicalized (A ≤ B); control pairs are directed.
	ControlGained   []Pair
	ControlLost     []Pair
	CloseLinkGained []Pair
	CloseLinkLost   []Pair

	// Composite relations (full sets on the overlay view), for callers that
	// need more than the diff.
	Control   map[Pair]bool
	CloseLink map[Pair]bool
}

// shareEps absorbs float noise when checking the 100%-ownership invariant.
const shareEps = 1e-9

// incomingShares totals the shareholding weights into a node. Scenario ops
// must keep this ≤ 1 — nobody can own more than all of a company — which is
// also what bounds the accumulated-ownership fixpoint: with incoming totals
// above 1, a cyclic ownership structure can amplify accown without limit and
// the chase diverges.
func incomingShares(v pg.View, to pg.NodeID) float64 {
	total := 0.0
	for _, e := range v.InLabel(to, pg.LabelShareholding) {
		if w, ok := e.Weight(); ok {
			total += w
		}
	}
	return total
}

// Apply validates and applies a scenario batch to an overlay, returning the
// IDs of created nodes and the set of "changed sources" — the owner-side
// endpoints of every mutated shareholding edge — that seeds affected-cone
// scoping.
func Apply(o *pg.Overlay, ops []Op) (created []pg.NodeID, changed map[pg.NodeID]bool, err error) {
	changed = map[pg.NodeID]bool{}
	for i, op := range ops {
		switch op.Op {
		case "addNode":
			label := pg.LabelCompany
			switch op.Label {
			case "", string(pg.LabelCompany):
			case string(pg.LabelPerson):
				label = pg.LabelPerson
			default:
				return nil, nil, &OpError{i, fmt.Errorf("unknown node label %q", op.Label)}
			}
			props := pg.Properties{}
			if op.Name != "" {
				props["name"] = op.Name
			}
			created = append(created, o.AddNode(label, props))
		case "addShare":
			if op.W <= 0 || op.W > 1 {
				return nil, nil, &OpError{i, fmt.Errorf("share amount %v outside (0,1]", op.W)}
			}
			if _, err := o.AddShare(op.From, op.To, op.W); err != nil {
				return nil, nil, &OpError{i, err}
			}
			if to := o.Node(op.To); to.Label != pg.LabelCompany {
				return nil, nil, &OpError{i, fmt.Errorf("shareholding target %d is %s, want Company", op.To, to.Label)}
			}
			if total := incomingShares(o, op.To); total > 1+shareEps {
				return nil, nil, &OpError{i, fmt.Errorf("incoming shares of %d would total %.4f > 1", op.To, total)}
			}
			changed[op.From] = true
		case "setShare":
			id := op.Edge
			if id == 0 && (op.From != 0 || op.To != 0) {
				var matches []pg.EdgeID
				for _, e := range o.OutLabel(op.From, pg.LabelShareholding) {
					if e.To == op.To {
						matches = append(matches, e.ID)
					}
				}
				if len(matches) != 1 {
					return nil, nil, &OpError{i, fmt.Errorf("%d shareholding edges %d → %d, need exactly 1 (use \"edge\")", len(matches), op.From, op.To)}
				}
				id = matches[0]
			}
			e := o.Edge(id)
			if e == nil {
				return nil, nil, &OpError{i, fmt.Errorf("unknown edge %d", id)}
			}
			if err := o.SetEdgeWeight(id, op.W); err != nil {
				return nil, nil, &OpError{i, err}
			}
			if total := incomingShares(o, e.To); total > 1+shareEps {
				return nil, nil, &OpError{i, fmt.Errorf("incoming shares of %d would total %.4f > 1", e.To, total)}
			}
			changed[e.From] = true
		case "removeEdge":
			e := o.Edge(op.Edge)
			if e == nil {
				return nil, nil, &OpError{i, fmt.Errorf("unknown edge %d", op.Edge)}
			}
			if e.Label == pg.LabelShareholding {
				changed[e.From] = true
			}
			o.RemoveEdge(op.Edge)
		case "removeNode":
			if o.Node(op.Node) == nil {
				return nil, nil, &OpError{i, fmt.Errorf("unknown node %d", op.Node)}
			}
			// Every incident shareholding edge disappears: the node itself
			// and the owners of its shares are changed sources.
			changed[op.Node] = true
			for _, e := range o.InLabel(op.Node, pg.LabelShareholding) {
				changed[e.From] = true
			}
			o.RemoveNode(op.Node)
		default:
			return nil, nil, &OpError{i, fmt.Errorf("unknown op %q", op.Op)}
		}
	}
	return created, changed, nil
}

// affectedSources computes reverse shareholding reachability from the
// changed sources, over both the base and the composite view: every source
// whose ownership cone can reach a mutated edge, and whose derived facts
// must therefore be re-chased. Sound for control and accown because both
// relations for source x depend only on edges among nodes forward-reachable
// from x.
func affectedSources(base pg.View, o *pg.Overlay, changed map[pg.NodeID]bool) map[pg.NodeID]bool {
	return ReverseReachable(changed, base, o)
}

// ReverseReachable computes reverse shareholding reachability from a seed set
// over the union of the given views: every node that can reach a seed by
// following shareholding edges forward in at least one view. This is the
// affected-source machinery shared by what-if scoping (seeds = owner-side
// endpoints of mutated edges, over base + overlay) and incremental view
// maintenance (seeds = the committed journal's changed set, over the
// post-commit view alone — sound because any pre-only reverse step starts at
// a mutated edge, whose owner side is already a seed).
func ReverseReachable(seeds map[pg.NodeID]bool, views ...pg.View) map[pg.NodeID]bool {
	affected := make(map[pg.NodeID]bool, len(seeds))
	queue := make([]pg.NodeID, 0, len(seeds))
	for n := range seeds {
		affected[n] = true
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range views {
			for _, e := range v.InLabel(n, pg.LabelShareholding) {
				if !affected[e.From] {
					affected[e.From] = true
					queue = append(queue, e.From)
				}
			}
		}
	}
	return affected
}

// Evaluate applies a scenario to an overlay over base, chases the composite
// view and diffs the derived relations against the baseline. The base view
// is read, never copied and never mutated.
func Evaluate(ctx context.Context, base pg.View, bl *Baseline, ops []Op, opt Options) (*Result, error) {
	threshold := opt.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if threshold != bl.Threshold {
		return nil, fmt.Errorf("whatif: threshold %v does not match baseline %v", threshold, bl.Threshold)
	}
	o := pg.NewOverlay(base)
	created, changed, err := Apply(o, ops)
	if err != nil {
		return nil, err
	}

	var affected map[pg.NodeID]bool
	if opt.NoScope {
		affected = map[pg.NodeID]bool{}
		for _, id := range base.Nodes() {
			affected[id] = true
		}
		for _, id := range o.Nodes() {
			affected[id] = true
		}
	} else {
		affected = affectedSources(base, o, changed)
	}

	prog, err := datalog.Parse(programText(threshold, true))
	if err != nil {
		return nil, fmt.Errorf("whatif: parsing scenario program: %w", err)
	}
	e, err := datalog.NewEngine(prog, withWhatIfDefaults(opt.Engine)...)
	if err != nil {
		return nil, fmt.Errorf("whatif: preparing scenario engine: %w", err)
	}
	e.AssertAll(relstore.CompanyGraphFacts(o))
	affectedIDs := make([]pg.NodeID, 0, len(affected))
	for id := range affected {
		affectedIDs = append(affectedIDs, id)
	}
	sort.Slice(affectedIDs, func(i, j int) bool { return affectedIDs[i] < affectedIDs[j] })
	for _, id := range affectedIDs {
		e.Assert(datalog.Fact{Pred: "affected", Args: []any{int64(id)}})
	}
	// Seed the baseline's final accumulated-ownership rows for unaffected
	// sources: their cones are untouched, so their rows are already exact;
	// the affected guard keeps the rules from re-deriving them, and msum's
	// per-contributor-maximum semantics make a final row an exact stand-in
	// for the derivation sequence that produced it.
	seeded := 0
	for src, rows := range bl.Accown {
		if affected[src] {
			continue
		}
		e.AssertAll(rows)
		seeded += len(rows)
	}
	if err := e.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("whatif: scenario chase: %w", err)
	}

	// Composite control: baseline minus affected sources, plus re-derived.
	control := make(map[Pair]bool, len(bl.Control))
	for p := range bl.Control {
		if !affected[p[0]] {
			control[p] = true
		}
	}
	for p := range pairSet(e, "control", false) {
		control[p] = true
	}
	// Composite close links come out of the engine whole: pair formation
	// ran over seeded + re-derived accown rows.
	closeLink := pairSet(e, "closelink", true)

	res := &Result{
		Created:         created,
		Delta:           o.Delta(),
		AffectedSources: len(affected),
		Control:         control,
		CloseLink:       closeLink,
	}
	res.ControlGained, res.ControlLost = diffSets(bl.Control, control)
	res.CloseLinkGained, res.CloseLinkLost = diffSets(bl.CloseLink, closeLink)
	return res, nil
}

// diffSets returns (after − before, before − after), sorted.
func diffSets(before, after map[Pair]bool) (gained, lost []Pair) {
	for p := range after {
		if !before[p] {
			gained = append(gained, p)
		}
	}
	for p := range before {
		if !after[p] {
			lost = append(lost, p)
		}
	}
	sortPairs(gained)
	sortPairs(lost)
	return gained, lost
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// Programs returns the unscoped program text evaluated by ComputeBaseline,
// for documentation and tests; it is rule-for-rule vadalog.ControlProgram +
// vadalog.CloseLinkProgramT(threshold).
func Programs(threshold float64) string {
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	return programText(threshold, false)
}
