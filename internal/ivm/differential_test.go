package ivm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vadalink/internal/graphgen"
	"vadalink/internal/pg"
	"vadalink/internal/whatif"
)

// randomCommit mutates the overlay with 1–4 random operations — share adds
// (including cycle-creating ones: any source, any target), reweights, edge
// removals, node removals and node additions — and reports how many applied.
func randomCommit(rng *rand.Rand, o *pg.Overlay) int {
	applied := 0
	for i := 0; i < 1+rng.Intn(4); i++ {
		switch rng.Intn(6) {
		case 0, 1: // bias toward adds so graphs don't wither
			nodes := o.Nodes()
			if len(nodes) < 2 {
				continue
			}
			from := nodes[rng.Intn(len(nodes))]
			to := nodes[rng.Intn(len(nodes))]
			if from == to && rng.Intn(4) != 0 {
				continue // keep a few self-loops, not many
			}
			if _, err := o.AddShare(from, to, 0.05+0.9*rng.Float64()); err == nil {
				applied++
			}
		case 2:
			shares := o.EdgesWithLabel(pg.LabelShareholding)
			if len(shares) == 0 {
				continue
			}
			if err := o.SetEdgeWeight(shares[rng.Intn(len(shares))], 0.05+0.9*rng.Float64()); err == nil {
				applied++
			}
		case 3:
			shares := o.EdgesWithLabel(pg.LabelShareholding)
			if len(shares) == 0 {
				continue
			}
			if o.RemoveEdge(shares[rng.Intn(len(shares))]) {
				applied++
			}
		case 4:
			nodes := o.Nodes()
			if len(nodes) < 5 {
				continue
			}
			if o.RemoveNode(nodes[rng.Intn(len(nodes))]) {
				applied++
			}
		case 5:
			label := pg.LabelCompany
			if rng.Intn(4) == 0 {
				label = pg.LabelPerson
			}
			o.AddNode(label, pg.Properties{"name": fmt.Sprintf("new%d", rng.Int())})
			applied++
		}
	}
	return applied
}

// TestDifferentialMaintenance is the ground-truth harness for incremental
// view maintenance: across 100+ randomized generated graphs (Barabási
// scale-free and Italian-style) and random committed mutation streams —
// share adds and removals, reweights, cycle-creating edges, node churn —
// the maintained baseline must agree with a from-scratch full chase of the
// post-commit graph on the control relation, the close-link relation and
// the threshold-crossing accown rows, after every single commit.
func TestDifferentialMaintenance(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is not short")
	}
	thresholds := []float64{0.1, 0.2, 0.3}

	const cases = 105
	ran := 0
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(7000 + i)))
		var base *pg.Graph
		if i%5 == 4 {
			base = graphgen.NewItalian(graphgen.ItalianConfig{
				Companies: 10 + rng.Intn(10),
				Persons:   6 + rng.Intn(6),
				Seed:      int64(i + 1),
			}).Graph
		} else {
			base = graphgen.Barabasi(8+rng.Intn(16), 1+rng.Intn(3), int64(i+1))
		}
		threshold := thresholds[i%len(thresholds)]
		d := newDriver(t, base, threshold)
		name := fmt.Sprintf("case %d (t=%v, %d nodes)", i, threshold, base.NumNodes())

		commits := 0
		for c := 0; c < 6; c++ {
			txn := d.vs.Begin()
			if randomCommit(rng, txn.Overlay()) == 0 {
				txn.Abort()
				continue
			}
			if _, err := txn.Commit(); err != nil {
				t.Fatalf("%s: commit %d: %v", name, c, err)
			}
			commits++
			if len(d.applyErrs) > 0 {
				t.Fatalf("%s: commit %d: maintenance failed: %v", name, c, d.applyErrs)
			}
			checkAgainstOracle(t, fmt.Sprintf("%s commit %d", name, c), d.maintained(), d.oracle())
			if t.Failed() {
				t.Fatalf("%s: stopping after first divergence", name)
			}
		}
		if commits > 0 {
			ran++
		}
		st := d.m.Stats()
		if got := st.IncrementalCommits + st.SkippedCommits; got != int64(commits) {
			t.Fatalf("%s: stats account for %d commits, want %d (%+v)", name, got, commits, st)
		}
	}
	if ran < 100 {
		t.Fatalf("only %d effective cases ran, want >= 100", ran)
	}
}

// TestConcurrentReadsDuringApply drives commits through the maintainer while
// reader goroutines continuously fetch and walk published baselines — the
// serving pattern (/v1/whatif readers vs the commit hook). Run under -race
// this proves published baselines are immutable: maintenance builds fresh
// maps instead of touching shared ones.
func TestConcurrentReadsDuringApply(t *testing.T) {
	base := graphgen.Barabasi(40, 2, 99)
	d := newDriver(t, base, whatif.DefaultThreshold)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur := d.vs.Current()
				bl := d.m.Baseline(cur.Seq(), whatif.DefaultThreshold)
				if bl == nil {
					continue // a commit won the race; next iteration
				}
				// Walk every shared map the way a reader would.
				n := 0
				for p := range bl.Control {
					_ = p
					n++
				}
				for p := range bl.CloseLink {
					_ = p
					n++
				}
				for _, rows := range bl.Accown {
					n += len(rows)
				}
				_ = n
			}
		}()
	}

	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 25; c++ {
		txn := d.vs.Begin()
		if randomCommit(rng, txn.Overlay()) == 0 {
			txn.Abort()
			continue
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatalf("commit %d: %v", c, err)
		}
		if len(d.applyErrs) > 0 {
			t.Fatalf("commit %d: maintenance failed: %v", c, d.applyErrs)
		}
	}
	close(stop)
	wg.Wait()

	checkAgainstOracle(t, "final state", d.maintained(), d.oracle())
}
