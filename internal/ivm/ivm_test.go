package ivm

import (
	"context"
	"errors"
	"sort"
	"testing"

	"vadalink/internal/pg"
	"vadalink/internal/store"
	"vadalink/internal/whatif"
)

// driver wires a Maintainer onto a Versioned store exactly the way the
// serving layer does: Init from version 0, commit hook feeds every journal.
type driver struct {
	t  *testing.T
	vs *store.Versioned
	m  *Maintainer
	// applyErrs records maintenance errors; the incremental path is allowed
	// to fail (callers fall back to full recompute) but tests that expect it
	// to work assert this stays empty.
	applyErrs []error
}

func newDriver(t *testing.T, g *pg.Graph, threshold float64) *driver {
	t.Helper()
	d := &driver{t: t, vs: store.NewVersioned(g), m: New(threshold)}
	cur := d.vs.Current()
	if err := d.m.Init(context.Background(), cur.View(), cur.Seq()); err != nil {
		t.Fatalf("Init: %v", err)
	}
	d.vs.SetCommitHook(func(next *store.Version, journal []pg.Mutation) {
		if err := d.m.Apply(context.Background(), next.View(), next.Seq()-1, next.Seq(), journal); err != nil {
			d.applyErrs = append(d.applyErrs, err)
		}
	})
	return d
}

// commit applies fn to a fresh transaction overlay and commits it.
func (d *driver) commit(fn func(o *pg.Overlay)) *store.Version {
	d.t.Helper()
	txn := d.vs.Begin()
	fn(txn.Overlay())
	v, err := txn.Commit()
	if err != nil {
		d.t.Fatalf("commit: %v", err)
	}
	return v
}

// maintained returns the maintained baseline for the current version,
// failing the test if the maintainer lost it.
func (d *driver) maintained() *whatif.Baseline {
	d.t.Helper()
	cur := d.vs.Current()
	bl := d.m.Baseline(cur.Seq(), d.m.Threshold())
	if bl == nil {
		d.t.Fatalf("maintainer has no baseline at seq %d (errors: %v)", cur.Seq(), d.applyErrs)
	}
	return bl
}

// oracle recomputes the full baseline of the current version from scratch.
func (d *driver) oracle() *whatif.Baseline {
	d.t.Helper()
	bl, err := whatif.ComputeBaseline(context.Background(), d.vs.Current().View(), d.m.Threshold())
	if err != nil {
		d.t.Fatalf("oracle chase: %v", err)
	}
	return bl
}

func checkAgainstOracle(t *testing.T, name string, got, want *whatif.Baseline) {
	t.Helper()
	diffPairSets(t, name+": control", got.Control, want.Control)
	diffPairSets(t, name+": closelink", got.CloseLink, want.CloseLink)
	// Accown agreement as strong sets at the threshold — the relation the
	// derived pairs are defined over (raw totals may differ by the chase's
	// bounded aggregate error, pair sets may not).
	gotStrong := strongSet(got)
	wantStrong := strongSet(want)
	diffPairSets(t, name+": strong accown", gotStrong, wantStrong)
}

func strongSet(bl *whatif.Baseline) map[whatif.Pair]bool {
	out := map[whatif.Pair]bool{}
	for _, rows := range bl.Accown {
		for _, f := range strongFacts(rows, bl.Threshold) {
			if p, ok := pairOf(f); ok {
				out[p] = true
			}
		}
	}
	return out
}

func sortedPairs(m map[whatif.Pair]bool) []whatif.Pair {
	out := make([]whatif.Pair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][0] < out[j][0] || (out[i][0] == out[j][0] && out[i][1] < out[j][1])
	})
	return out
}

func diffPairSets(t *testing.T, what string, got, want map[whatif.Pair]bool) {
	t.Helper()
	if len(got) == len(want) {
		same := true
		for p := range want {
			if !got[p] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	t.Errorf("%s mismatch:\n  got  %v\n  want %v", what, sortedPairs(got), sortedPairs(want))
}

// chainGraph builds a, b, c companies with a owning 60% of b.
func chainGraph() (*pg.Graph, [3]pg.NodeID) {
	g := pg.New()
	a := g.AddNode(pg.LabelCompany, pg.Properties{"name": "A"})
	b := g.AddNode(pg.LabelCompany, pg.Properties{"name": "B"})
	c := g.AddNode(pg.LabelCompany, pg.Properties{"name": "C"})
	g.MustAddEdge(pg.LabelShareholding, a, b, pg.Properties{pg.WeightProp: 0.6})
	return g, [3]pg.NodeID{a, b, c}
}

func TestIncrementalEdgeAdd(t *testing.T) {
	g, ids := chainGraph()
	a, b, c := ids[0], ids[1], ids[2]
	d := newDriver(t, g, whatif.DefaultThreshold)

	if bl := d.maintained(); !bl.Control[whatif.Pair{a, b}] {
		t.Fatalf("seeded baseline misses control(a,b): %v", bl.Control)
	}

	// b buys 60% of c: control propagates down the chain (a controls b's
	// stake), accown(a,c) = 0.36 crosses the close-link threshold.
	d.commit(func(o *pg.Overlay) {
		if _, err := o.AddShare(b, c, 0.6); err != nil {
			t.Fatal(err)
		}
	})
	if len(d.applyErrs) > 0 {
		t.Fatalf("incremental apply failed: %v", d.applyErrs)
	}
	bl := d.maintained()
	for _, p := range []whatif.Pair{{a, b}, {b, c}, {a, c}} {
		if !bl.Control[p] {
			t.Errorf("maintained control misses %v: %v", p, bl.Control)
		}
	}
	for _, p := range []whatif.Pair{{a, b}, {b, c}, {a, c}} {
		if !bl.CloseLink[canonical(p)] {
			t.Errorf("maintained closelink misses %v: %v", p, bl.CloseLink)
		}
	}
	checkAgainstOracle(t, "after add", bl, d.oracle())

	st := d.m.Stats()
	if st.IncrementalCommits != 1 || !st.Valid {
		t.Errorf("stats = %+v, want 1 incremental commit, valid", st)
	}
	if st.ControlChanged == 0 || st.CloseLinkChanged == 0 {
		t.Errorf("stats did not record derived changes: %+v", st)
	}
}

func TestIncrementalEdgeRemoveAndReweight(t *testing.T) {
	g, ids := chainGraph()
	a, b, c := ids[0], ids[1], ids[2]
	d := newDriver(t, g, whatif.DefaultThreshold)

	var bc pg.EdgeID
	d.commit(func(o *pg.Overlay) {
		var err error
		if bc, err = o.AddShare(b, c, 0.6); err != nil {
			t.Fatal(err)
		}
	})

	// Reweight below the control threshold but above the close-link one.
	d.commit(func(o *pg.Overlay) {
		if err := o.SetEdgeWeight(bc, 0.3); err != nil {
			t.Fatal(err)
		}
	})
	if len(d.applyErrs) > 0 {
		t.Fatalf("incremental apply failed: %v", d.applyErrs)
	}
	bl := d.maintained()
	if bl.Control[whatif.Pair{b, c}] || bl.Control[whatif.Pair{a, c}] {
		t.Errorf("control survived reweight to 0.3: %v", bl.Control)
	}
	if !bl.CloseLink[canonical(whatif.Pair{b, c})] {
		t.Errorf("closelink(b,c) lost despite 0.3 >= %v: %v", bl.Threshold, bl.CloseLink)
	}
	checkAgainstOracle(t, "after reweight", bl, d.oracle())

	// Remove the edge entirely: everything below b disappears.
	d.commit(func(o *pg.Overlay) {
		if !o.RemoveEdge(bc) {
			t.Fatal("RemoveEdge returned false")
		}
	})
	if len(d.applyErrs) > 0 {
		t.Fatalf("incremental apply failed: %v", d.applyErrs)
	}
	bl = d.maintained()
	if bl.CloseLink[canonical(whatif.Pair{b, c})] {
		t.Errorf("closelink(b,c) survived edge removal: %v", bl.CloseLink)
	}
	checkAgainstOracle(t, "after remove", bl, d.oracle())
}

func TestIncrementalNodeRemove(t *testing.T) {
	g, ids := chainGraph()
	b, c := ids[1], ids[2]
	d := newDriver(t, g, whatif.DefaultThreshold)
	d.commit(func(o *pg.Overlay) {
		if _, err := o.AddShare(b, c, 0.6); err != nil {
			t.Fatal(err)
		}
	})

	// Removing b takes its incident edges with it; a's whole cone collapses.
	d.commit(func(o *pg.Overlay) {
		if !o.RemoveNode(b) {
			t.Fatal("RemoveNode returned false")
		}
	})
	if len(d.applyErrs) > 0 {
		t.Fatalf("incremental apply failed: %v", d.applyErrs)
	}
	bl := d.maintained()
	if len(bl.Control) != 0 || len(bl.CloseLink) != 0 {
		t.Errorf("derived state survived removing the middle node: control=%v closelink=%v",
			bl.Control, bl.CloseLink)
	}
	checkAgainstOracle(t, "after node remove", bl, d.oracle())
}

func TestIrrelevantCommitSkips(t *testing.T) {
	g, _ := chainGraph()
	d := newDriver(t, g, whatif.DefaultThreshold)

	// A person node with a family edge cannot move the ownership relations.
	d.commit(func(o *pg.Overlay) {
		p1 := o.AddNode(pg.LabelPerson, pg.Properties{"name": "P1"})
		p2 := o.AddNode(pg.LabelPerson, pg.Properties{"name": "P2"})
		o.MustAddEdge(pg.LabelPartnerOf, p1, p2, nil)
	})
	if len(d.applyErrs) > 0 {
		t.Fatalf("apply failed: %v", d.applyErrs)
	}
	st := d.m.Stats()
	if st.SkippedCommits != 1 || st.IncrementalCommits != 0 {
		t.Errorf("stats = %+v, want exactly one skipped commit", st)
	}
	// The skip still advances the maintained sequence.
	if d.maintained() == nil {
		t.Fatal("baseline lost after skipped commit")
	}
}

func TestBaselineMismatches(t *testing.T) {
	g, _ := chainGraph()
	d := newDriver(t, g, whatif.DefaultThreshold)
	seq := d.vs.Current().Seq()

	if d.m.Baseline(seq+1, d.m.Threshold()) != nil {
		t.Error("Baseline returned state for a future sequence")
	}
	if d.m.Baseline(seq, d.m.Threshold()+0.1) != nil {
		t.Error("Baseline returned state for a different threshold")
	}
	if d.m.Baseline(seq, 0) == nil && d.m.Threshold() == whatif.DefaultThreshold {
		t.Error("Baseline(seq, 0) should resolve 0 to the default threshold")
	}
}

func TestSeedRejectsThresholdMismatch(t *testing.T) {
	g, _ := chainGraph()
	ctx := context.Background()
	bl, err := whatif.ComputeBaseline(ctx, g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	m := New(whatif.DefaultThreshold)
	if err := m.Seed(ctx, g, 0, bl); err == nil {
		t.Fatal("Seed accepted a baseline at a different threshold")
	}
}

func TestInvalidateAndReseed(t *testing.T) {
	g, _ := chainGraph()
	d := newDriver(t, g, whatif.DefaultThreshold)
	ctx := context.Background()
	cur := d.vs.Current()

	d.m.Invalidate()
	if d.m.Baseline(cur.Seq(), d.m.Threshold()) != nil {
		t.Fatal("Baseline served after Invalidate")
	}
	if err := d.m.Apply(ctx, cur.View(), cur.Seq(), cur.Seq()+1, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Apply on invalid maintainer = %v, want ErrInvalid", err)
	}
	st := d.m.Stats()
	if st.Invalidations != 1 || st.Valid {
		t.Errorf("stats = %+v, want one invalidation, invalid", st)
	}

	if err := d.m.Init(ctx, cur.View(), cur.Seq()); err != nil {
		t.Fatalf("re-Init: %v", err)
	}
	if d.m.Baseline(cur.Seq(), d.m.Threshold()) == nil {
		t.Fatal("Baseline missing after re-Init")
	}
}

func TestMalformedJournalInvalidates(t *testing.T) {
	g, _ := chainGraph()
	d := newDriver(t, g, whatif.DefaultThreshold)
	cur := d.vs.Current()
	err := d.m.Apply(context.Background(), cur.View(), cur.Seq(), cur.Seq()+1,
		[]pg.Mutation{{Kind: pg.MutAddEdge}}) // edge mutation without an edge
	if err == nil {
		t.Fatal("Apply accepted a malformed mutation")
	}
	if d.m.Baseline(cur.Seq(), d.m.Threshold()) != nil {
		t.Fatal("Baseline survived a malformed journal")
	}
}

func TestJournalGapInvalidates(t *testing.T) {
	g, ids := chainGraph()
	b, c := ids[1], ids[2]
	d := newDriver(t, g, whatif.DefaultThreshold)
	cur := d.vs.Current()
	// A journal claiming to start two sequences ahead means a commit was
	// missed; applying it would silently diverge, so the maintainer refuses.
	o := pg.NewOverlay(cur.View())
	if _, err := o.AddShare(b, c, 0.6); err != nil {
		t.Fatal(err)
	}
	journal, err := o.Journal()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.m.Apply(context.Background(), o, cur.Seq()+1, cur.Seq()+2, journal); err == nil {
		t.Fatal("Apply accepted a journal with a sequence gap")
	}
	if d.m.Baseline(cur.Seq(), d.m.Threshold()) != nil {
		t.Fatal("Baseline survived a journal gap")
	}
	if st := d.m.Stats(); st.Invalidations != 1 {
		t.Errorf("stats = %+v, want one invalidation", st)
	}
}
