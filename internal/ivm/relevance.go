package ivm

import "vadalink/internal/pg"

// RelevantMutations reports whether a committed journal can move the derived
// relations (control, accown, closeLink). It is the same classification
// Apply performs before deciding to skip a commit, exported so the query
// cache can share the invalidation decision: a journal this function rejects
// is exactly one Apply counts as a SkippedCommit, so cached answers over the
// derived relations stay valid across it.
//
// The classification errs conservative: malformed mutations (nil node/edge)
// and unknown kinds report relevant, so a cache never outlives a journal the
// maintainer would have failed on.
func RelevantMutations(muts []pg.Mutation) bool {
	for _, mut := range muts {
		switch mut.Kind {
		case pg.MutAddNode:
			// A new company seeds iscompany (close-link candidates); a new
			// person with no edges cannot own, control, or link anything.
			if mut.Node == nil || mut.Node.Label == pg.LabelCompany {
				return true
			}
		case pg.MutRemoveNode:
			return true
		case pg.MutAddEdge, pg.MutRemoveEdge, pg.MutSetEdgeWeight:
			// Only shareholding edges feed the ownership aggregates; family
			// and augmentation-materialized edges do not.
			if mut.Edge == nil || mut.Edge.Label == pg.LabelShareholding {
				return true
			}
		default:
			return true
		}
	}
	return false
}
