// Package ivm maintains the derived ownership relations — control,
// accumulated ownership, close links — incrementally under the committed
// mutation stream, instead of re-chasing the whole graph after every write.
//
// The derived state splits along the engine's incremental fault line
// (datalog.ApplyDelta refuses aggregates):
//
//   - control and accown are msum-aggregate relations, so their deltas are
//     non-local: retracting one contribution shifts a whole group's total.
//     They are maintained by recompute-per-affected-cone — reverse
//     shareholding reachability from the journal's changed set gives the
//     sources whose derived rows may have moved (whatif.ReverseReachable,
//     the PR-6 scoping machinery), and a scoped chase over the forward
//     closure of that set re-derives exactly those rows, seeding untouched
//     baseline rows for the cones it reads but does not own.
//   - close links are a positive, aggregate-free program over the FINAL
//     accown rows: strong(x, y) ⇔ Φ(x, y) ≥ t plus iscompany(x). A
//     persistent mini-engine holds that program materialized, and each
//     commit feeds it the strong/iscompany deltas through
//     datalog.ApplyDelta — counting/DRed delete-rederive, no recompute.
//
// On a registry-scale graph a single shareholding edit touches a tiny cone,
// which turns a full re-chase (seconds to minutes) into a few milliseconds
// of maintenance; the randomized differential harness in this package pins
// incremental == full re-chase across mutation streams.
//
// A Maintainer is invalid until seeded and after any error; callers fall
// back to a full baseline computation and re-seed. All methods are safe for
// concurrent use; Apply runs under the maintainer's lock while published
// baselines stay immutable, so readers never block on maintenance.
package ivm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vadalink/internal/datalog"
	"vadalink/internal/pg"
	"vadalink/internal/relstore"
	"vadalink/internal/whatif"
)

// closeLinkDeltaProgram is the aggregate-free close-link program the
// mini-engine maintains through ApplyDelta. It is the image of the
// whatif close-link rules under "accown(X, Y, W), W >= t" ⇒ "strong(X, Y)":
// since the chase's accown rows only improve, a row crosses the threshold
// iff its final (maximal) value does, so pair formation over final rows
// derives exactly the close links of the full program.
const closeLinkDeltaProgram = `
	strong(X, Y), iscompany(X), iscompany(Y) -> clcand(X, Y).
	strong(Z, X), strong(Z, Y), X != Y, iscompany(X), iscompany(Y) -> clcand(X, Y).
	clcand(X, Y) -> clcand(Y, X).
	clcand(X, Y) -> closelink(X, Y).
`

// ErrInvalid reports a maintainer with no valid derived state (never seeded,
// or invalidated by an error); the caller must recompute a full baseline and
// Seed again.
var ErrInvalid = errors.New("ivm: maintainer holds no valid derived state")

// Stats counts maintenance activity, served by /v1/metrics.
type Stats struct {
	// IncrementalCommits counts commits maintained incrementally.
	IncrementalCommits int64 `json:"incrementalCommits"`
	// SkippedCommits counts commits whose journal could not move any derived
	// fact (no shareholding mutations), acknowledged without any chase.
	SkippedCommits int64 `json:"skippedCommits"`
	// FullRebuilds counts seedings from a full baseline chase.
	FullRebuilds int64 `json:"fullRebuilds"`
	// Invalidations counts errors that discarded the derived state.
	Invalidations int64 `json:"invalidations"`
	// ControlChanged / CloseLinkChanged accumulate the derived-pair changes
	// applied across all incremental commits.
	ControlChanged   int64 `json:"controlChanged"`
	CloseLinkChanged int64 `json:"closeLinkChanged"`
	// LastAffectedSources is the affected-cone size of the last incremental
	// commit; LastApplyMillis its wall-clock cost.
	LastAffectedSources int     `json:"lastAffectedSources"`
	LastApplyMillis     float64 `json:"lastApplyMillis"`
	// Valid reports whether a maintained baseline is currently served, at
	// sequence Seq.
	Valid bool   `json:"valid"`
	Seq   uint64 `json:"seq"`
}

// Maintainer owns the incrementally maintained derived state of one graph at
// one close-link threshold.
type Maintainer struct {
	mu        sync.Mutex
	threshold float64
	opts      []datalog.Option

	valid bool
	seq   uint64
	bl    *whatif.Baseline // published: immutable once stored here
	cl    *datalog.Engine  // close-link mini-engine (strong/iscompany EDB)

	stats Stats
}

// New creates an empty (invalid) maintainer for one close-link threshold;
// threshold 0 means whatif.DefaultThreshold. The engine options apply to
// every maintenance chase and must match the ones the seeding baseline was
// computed with, or seeded rows would not line up with re-derived ones; the
// whatif convergence default (MinAggDelta) is prepended so explicit caller
// options still win, mirroring whatif.ComputeBaseline.
func New(threshold float64, engineOpts ...datalog.Option) *Maintainer {
	if threshold == 0 {
		threshold = whatif.DefaultThreshold
	}
	opts := append([]datalog.Option{datalog.WithMinAggDelta(whatif.DefaultMinAggDelta)}, engineOpts...)
	return &Maintainer{threshold: threshold, opts: opts}
}

// Threshold reports the close-link threshold this maintainer maintains.
func (m *Maintainer) Threshold() float64 { return m.threshold }

// Init computes a full baseline of v and seeds the maintainer with it.
func (m *Maintainer) Init(ctx context.Context, v pg.View, seq uint64) error {
	bl, err := whatif.ComputeBaseline(ctx, v, m.threshold, m.opts...)
	if err != nil {
		return err
	}
	return m.Seed(ctx, v, seq, bl)
}

// Seed installs an externally computed full baseline of v at seq as the
// maintained state and materializes the close-link mini-engine from it. The
// baseline must have been computed with this maintainer's threshold and
// engine options (reasonapi reuses its /v1/whatif baseline cache here, so
// one full chase serves both). A seed never regresses: when the maintainer
// already holds valid state at seq or later (a commit advanced it while
// this baseline was being computed), the stale seed is dropped.
func (m *Maintainer) Seed(ctx context.Context, v pg.View, seq uint64, bl *whatif.Baseline) error {
	if bl.Threshold != m.threshold {
		return fmt.Errorf("ivm: baseline threshold %v does not match maintainer %v", bl.Threshold, m.threshold)
	}
	cl, err := m.buildCloseLinkEngine(ctx, v, bl)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.valid && m.seq >= seq {
		return nil
	}
	m.valid = true
	m.seq = seq
	m.bl = bl
	m.cl = cl
	m.stats.FullRebuilds++
	m.stats.Valid = true
	m.stats.Seq = seq
	return nil
}

// buildCloseLinkEngine materializes the delta program from a baseline's
// final accown rows and verifies it reproduces the baseline's close-link
// set — a cheap proof that the strong-row translation is faithful before
// any increment trusts it.
func (m *Maintainer) buildCloseLinkEngine(ctx context.Context, v pg.View, bl *whatif.Baseline) (*datalog.Engine, error) {
	prog, err := datalog.Parse(closeLinkDeltaProgram)
	if err != nil {
		return nil, fmt.Errorf("ivm: parsing close-link program: %w", err)
	}
	cl, err := datalog.NewEngine(prog, m.opts...)
	if err != nil {
		return nil, fmt.Errorf("ivm: preparing close-link engine: %w", err)
	}
	for _, id := range v.NodesWithLabel(pg.LabelCompany) {
		cl.Assert(iscompanyFact(id))
	}
	for _, rows := range bl.Accown {
		for _, f := range strongFacts(rows, m.threshold) {
			cl.Assert(f)
		}
	}
	if err := cl.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("ivm: materializing close links: %w", err)
	}
	got := closeLinkPairs(cl.Facts("closelink"))
	if len(got) != len(bl.CloseLink) {
		return nil, fmt.Errorf("ivm: close-link materialization has %d pairs, baseline %d", len(got), len(bl.CloseLink))
	}
	for p := range got {
		if !bl.CloseLink[p] {
			return nil, fmt.Errorf("ivm: close-link materialization derived %v outside the baseline", p)
		}
	}
	return cl, nil
}

// Baseline returns the maintained baseline when it is valid, matches seq,
// and was maintained at threshold; nil otherwise (caller recomputes).
func (m *Maintainer) Baseline(seq uint64, threshold float64) *whatif.Baseline {
	if threshold == 0 {
		threshold = whatif.DefaultThreshold
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.valid || m.seq != seq || threshold != m.threshold {
		return nil
	}
	return m.bl
}

// Invalidate discards the maintained state (e.g. after a follower snapshot
// bootstrap replaced the graph wholesale).
func (m *Maintainer) Invalidate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.valid {
		m.stats.Invalidations++
	}
	m.invalidateLocked()
}

func (m *Maintainer) invalidateLocked() {
	m.valid = false
	m.bl = nil
	m.cl = nil
	m.stats.Valid = false
}

// Stats returns a snapshot of the maintenance counters.
func (m *Maintainer) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Seq reports the sequence the maintained state corresponds to; ok is false
// when the maintainer is invalid.
func (m *Maintainer) Seq() (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq, m.valid
}

// Apply advances the maintained state from fromSeq to toSeq under one
// committed journal. post must be the post-commit view and muts the exact,
// ordered mutations that produced it from the state at fromSeq — the
// leader's commit hook and the follower's frame observer both guarantee
// that by construction. A fromSeq that does not match the maintained
// sequence means a journal was missed (e.g. a commit landed between a full
// baseline chase and its Seed); the maintainer invalidates itself rather
// than silently diverge. On any error the maintainer invalidates itself and
// the caller must fall back to a full baseline.
func (m *Maintainer) Apply(ctx context.Context, post pg.View, fromSeq, toSeq uint64, muts []pg.Mutation) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.valid {
		return ErrInvalid
	}
	if fromSeq != m.seq {
		return m.failLocked(fmt.Errorf("ivm: journal gap: maintained state at seq %d, journal starts at %d", m.seq, fromSeq))
	}
	start := time.Now()

	// Classify the journal: the owner-side endpoints of every mutated
	// shareholding edge and every removed node seed the affected set;
	// company-node churn feeds the iscompany relation of the close-link
	// engine. Everything else (family/control/closelink edges materialized
	// by augmentation, person nodes) cannot move the derived state.
	changed := map[pg.NodeID]bool{}
	companyChurn := map[pg.NodeID]bool{}
	for _, mut := range muts {
		switch mut.Kind {
		case pg.MutAddNode:
			if mut.Node != nil && mut.Node.Label == pg.LabelCompany {
				companyChurn[mut.Node.ID] = true
			}
		case pg.MutRemoveNode:
			if mut.Node == nil {
				return m.failLocked(fmt.Errorf("ivm: node removal without node"))
			}
			changed[mut.Node.ID] = true
			if mut.Node.Label == pg.LabelCompany {
				companyChurn[mut.Node.ID] = true
			}
		case pg.MutAddEdge, pg.MutRemoveEdge, pg.MutSetEdgeWeight:
			if mut.Edge == nil {
				return m.failLocked(fmt.Errorf("ivm: edge mutation without edge"))
			}
			if mut.Edge.Label == pg.LabelShareholding {
				changed[mut.Edge.From] = true
			}
		default:
			return m.failLocked(fmt.Errorf("ivm: unknown mutation kind %d", mut.Kind))
		}
	}
	// Company churn resolves against the post view (a node added and removed
	// in the same journal nets to absent; ApplyDelta tolerates no-op deltas).
	var iscoDels, iscoAdds []datalog.Fact
	for id := range companyChurn {
		if n := post.Node(id); n != nil && n.Label == pg.LabelCompany {
			iscoAdds = append(iscoAdds, iscompanyFact(id))
		} else {
			iscoDels = append(iscoDels, iscompanyFact(id))
		}
	}
	if len(changed) == 0 && len(iscoDels) == 0 && len(iscoAdds) == 0 {
		m.seq = toSeq
		m.stats.Seq = toSeq
		m.stats.SkippedCommits++
		return nil
	}

	// Affected sources: reverse shareholding reachability from the changed
	// set over the post view. The post view alone suffices: a reverse path
	// that existed only pre-commit must start with a removed edge, and that
	// edge's owner side is already in the changed set.
	affected := whatif.ReverseReachable(changed, post)

	// The scoped chase reads the forward ownership closure of the affected
	// set: every cone an affected source can reach.
	cone := forwardClosure(post, affected)

	next, controlDelta, err := m.rechaseCones(ctx, post, affected, cone)
	if err != nil {
		return m.failLocked(err)
	}

	// Close links: final-row threshold crossings of re-derived sources plus
	// company churn, pushed through the mini-engine as extensional deltas.
	var dels, adds []datalog.Fact
	for src := range affected {
		old := strongFacts(m.bl.Accown[src], m.threshold)
		now := strongFacts(next.Accown[src], m.threshold)
		oldKeys := make(map[string]bool, len(old))
		for _, f := range old {
			oldKeys[f.Key()] = true
		}
		nowKeys := make(map[string]bool, len(now))
		for _, f := range now {
			nowKeys[f.Key()] = true
			if !oldKeys[f.Key()] {
				adds = append(adds, f)
			}
		}
		for _, f := range old {
			if !nowKeys[f.Key()] {
				dels = append(dels, f)
			}
		}
	}
	dels = append(dels, iscoDels...)
	adds = append(adds, iscoAdds...)
	clRes, err := m.cl.ApplyDelta(ctx, dels, adds)
	if err != nil {
		return m.failLocked(fmt.Errorf("ivm: close-link delta: %w", err))
	}
	closeLinkDelta := m.spliceCloseLinks(next, clRes)

	m.bl = next
	m.seq = toSeq
	m.stats.Seq = toSeq
	m.stats.IncrementalCommits++
	m.stats.ControlChanged += int64(controlDelta)
	m.stats.CloseLinkChanged += int64(closeLinkDelta)
	m.stats.LastAffectedSources = len(affected)
	m.stats.LastApplyMillis = float64(time.Since(start).Microseconds()) / 1000
	return nil
}

// failLocked invalidates the maintainer and passes the error through.
func (m *Maintainer) failLocked(err error) error {
	m.stats.Invalidations++
	m.invalidateLocked()
	return err
}

// rechaseCones re-derives control and accown for the affected sources over
// the forward closure, seeding untouched baseline rows for cone sources the
// chase reads but does not own, and returns the successor baseline (with
// the close-link set still the old one — spliceCloseLinks finishes it).
func (m *Maintainer) rechaseCones(ctx context.Context, post pg.View,
	affected, cone map[pg.NodeID]bool) (*whatif.Baseline, int, error) {

	prog, err := datalog.Parse(whatif.MaintenanceProgram())
	if err != nil {
		return nil, 0, fmt.Errorf("ivm: parsing maintenance program: %w", err)
	}
	e, err := datalog.NewEngine(prog, m.opts...)
	if err != nil {
		return nil, 0, fmt.Errorf("ivm: preparing maintenance engine: %w", err)
	}
	for id := range affected {
		e.Assert(datalog.Fact{Pred: "affected", Args: []any{int64(id)}})
		if f, ok := relstore.NodeFact(post, id); ok {
			e.Assert(f)
		}
	}
	for id := range cone {
		e.AssertAll(relstore.OwnFacts(post, id))
		if !affected[id] {
			e.AssertAll(m.bl.Accown[id])
		}
	}
	if err := e.RunContext(ctx); err != nil {
		return nil, 0, fmt.Errorf("ivm: scoped maintenance chase: %w", err)
	}

	// Splice: drop every affected source's old rows, adopt its new ones.
	// Every control fact of the scoped chase has an affected source (the
	// affected(X) guard seeds ccand), so unaffected rows carry over verbatim.
	nextControl := make(map[whatif.Pair]bool, len(m.bl.Control))
	for p := range m.bl.Control {
		if !affected[p[0]] {
			nextControl[p] = true
		}
	}
	controlDelta := 0
	for _, f := range e.Facts("control") {
		if p, ok := pairOf(f); ok {
			nextControl[p] = true
			if !m.bl.Control[p] {
				controlDelta++ // gained
			}
		}
	}
	for p := range m.bl.Control {
		if affected[p[0]] && !nextControl[p] {
			controlDelta++ // lost
		}
	}

	nextAccown := make(map[pg.NodeID][]datalog.Fact, len(m.bl.Accown))
	for src, rows := range m.bl.Accown {
		if !affected[src] {
			nextAccown[src] = rows
		}
	}
	for _, f := range e.MaxByGroup("accown", 2, 0, 1) {
		if src, ok := nodeID(f.Args[0]); ok && affected[src] {
			nextAccown[src] = append(nextAccown[src], f)
		}
	}
	return &whatif.Baseline{
		Threshold: m.threshold,
		Control:   nextControl,
		CloseLink: m.bl.CloseLink, // finished by spliceCloseLinks
		Accown:    nextAccown,
	}, controlDelta, nil
}

// spliceCloseLinks folds the mini-engine's derived close-link deltas into
// the successor baseline and reports how many canonical pairs changed.
func (m *Maintainer) spliceCloseLinks(next *whatif.Baseline, res datalog.DeltaResult) int {
	if len(res.Added) == 0 && len(res.Removed) == 0 {
		return 0
	}
	cl := make(map[whatif.Pair]bool, len(m.bl.CloseLink))
	for p := range m.bl.CloseLink {
		cl[p] = true
	}
	changed := 0
	for _, f := range res.Removed {
		if f.Pred != "closelink" {
			continue
		}
		if p, ok := pairOf(f); ok {
			if cl[canonical(p)] {
				changed++
			}
			delete(cl, canonical(p))
		}
	}
	for _, f := range res.Added {
		if f.Pred != "closelink" {
			continue
		}
		if p, ok := pairOf(f); ok {
			if !cl[canonical(p)] {
				changed++
			}
			cl[canonical(p)] = true
		}
	}
	next.CloseLink = cl
	return changed
}

// forwardClosure computes forward shareholding reachability from the seeds.
func forwardClosure(v pg.View, seeds map[pg.NodeID]bool) map[pg.NodeID]bool {
	out := make(map[pg.NodeID]bool, len(seeds))
	queue := make([]pg.NodeID, 0, len(seeds))
	for n := range seeds {
		out[n] = true
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, e := range v.OutLabel(n, pg.LabelShareholding) {
			if !out[e.To] {
				out[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return out
}

// strongFacts projects final accown rows to strong(x, y) facts at the
// threshold.
func strongFacts(rows []datalog.Fact, threshold float64) []datalog.Fact {
	var out []datalog.Fact
	for _, f := range rows {
		if len(f.Args) != 3 {
			continue
		}
		w, ok := f.Args[2].(float64)
		if !ok || w < threshold {
			continue
		}
		out = append(out, datalog.Fact{Pred: "strong", Args: []any{f.Args[0], f.Args[1]}})
	}
	return out
}

func iscompanyFact(id pg.NodeID) datalog.Fact {
	return datalog.Fact{Pred: "iscompany", Args: []any{int64(id)}}
}

func nodeID(v any) (pg.NodeID, bool) {
	switch x := v.(type) {
	case int64:
		return pg.NodeID(x), true
	case float64:
		return pg.NodeID(int64(x)), float64(int64(x)) == x
	}
	return 0, false
}

func pairOf(f datalog.Fact) (whatif.Pair, bool) {
	if len(f.Args) != 2 {
		return whatif.Pair{}, false
	}
	a, ok1 := nodeID(f.Args[0])
	b, ok2 := nodeID(f.Args[1])
	if !ok1 || !ok2 {
		return whatif.Pair{}, false
	}
	return whatif.Pair{a, b}, true
}

func canonical(p whatif.Pair) whatif.Pair {
	if p[1] < p[0] {
		return whatif.Pair{p[1], p[0]}
	}
	return p
}

// closeLinkPairs canonicalizes directed closelink facts into a pair set.
func closeLinkPairs(facts []datalog.Fact) map[whatif.Pair]bool {
	out := map[whatif.Pair]bool{}
	for _, f := range facts {
		if p, ok := pairOf(f); ok {
			out[canonical(p)] = true
		}
	}
	return out
}
