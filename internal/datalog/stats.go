package datalog

import (
	"sync/atomic"
	"time"
)

// Hook receives chase lifecycle events — the tracing seam of the engine.
// Every field is optional; a nil callback is skipped. With Options.Parallel
// greater than one, RuleStart and BudgetTrip may fire concurrently from
// several chase workers, so the callbacks must be safe for concurrent use;
// RuleDone and RoundDone always fire on the goroutine that called Run.
//
// Hooks run inline with the chase: a slow callback slows evaluation. They
// exist for tracing, progress reporting, and test instrumentation — keep
// them cheap.
type Hook struct {
	// RuleStart fires when a rule instantiation (one chase job) starts
	// evaluating. rule is the rule's label and text, round the semi-naive
	// round index.
	RuleStart func(rule string, round int)

	// RuleDone fires after a job's derivations have been applied to the
	// store: derived is the number of new facts it produced, duplicates the
	// emissions absorbed as already known, elapsed its evaluation time.
	RuleDone func(rule string, round int, derived, duplicates int, elapsed time.Duration)

	// RoundDone fires after each semi-naive round with the number of new
	// facts in the round's delta.
	RoundDone func(round, stratum, newFacts int, elapsed time.Duration)

	// BudgetTrip fires once per Run, when the first resource limit trips.
	BudgetTrip func(err *BudgetExceededError)
}

// active reports whether any callback is set.
func (h Hook) active() bool {
	return h.RuleStart != nil || h.RuleDone != nil || h.RoundDone != nil || h.BudgetTrip != nil
}

// RuleStats aggregates what one rule did during a Run.
type RuleStats struct {
	// Rule is the rule's label and text.
	Rule string `json:"rule"`
	// Firings counts the chase jobs that evaluated the rule (full-store
	// evaluations in round 0, delta-restricted evaluations afterwards).
	Firings int `json:"firings"`
	// Derived counts the new facts the rule's jobs inserted.
	Derived int `json:"derived"`
	// Duplicates counts head instantiations absorbed as already known.
	Duplicates int `json:"duplicates"`
	// EvalNanos is the total evaluation time of the rule's jobs. Under a
	// parallel chase jobs overlap, so the per-rule times can sum to more
	// than the wall clock.
	EvalNanos int64 `json:"evalNanos"`
}

// RoundStats describes one semi-naive round.
type RoundStats struct {
	Round   int `json:"round"`
	Stratum int `json:"stratum"`
	// Jobs is the number of rule instantiations the round evaluated.
	Jobs int `json:"jobs"`
	// NewFacts is the size of the round's delta.
	NewFacts int `json:"newFacts"`
	// Nanos is the round's wall-clock time.
	Nanos int64 `json:"nanos"`
}

// ChaseStats is the evaluation report of one Run, collected when the engine
// is built with WithStats. It is the data source for rule-ordering and
// caching decisions and for the /v1/metrics endpoint of the reasoning API.
type ChaseStats struct {
	// Rounds is the number of semi-naive rounds evaluated.
	Rounds int `json:"rounds"`
	// Derived and Duplicates count new facts inserted and emissions
	// absorbed as already known, across all rules.
	Derived    int `json:"derived"`
	Duplicates int `json:"duplicates"`
	// TotalNanos is the wall-clock time of the Run.
	TotalNanos int64 `json:"totalNanos"`

	// IndexHits counts lookups served from a positional hash index;
	// IndexScans counts lookups that fell back to scanning the full
	// relation (unbound atoms, NoIndex mode, or unindexable positions);
	// IndexBuilds counts lazy index constructions; IndexBytes is the
	// estimated index memory at the end of the Run.
	IndexHits   int64 `json:"indexHits"`
	IndexScans  int64 `json:"indexScans"`
	IndexBuilds int64 `json:"indexBuilds"`
	IndexBytes  int64 `json:"indexBytes"`

	// Workers is the largest worker-pool size any round used (1 for a
	// sequential chase). WorkerBusyNanos sums the evaluation time spent on
	// pool workers; Utilization is WorkerBusyNanos over the pool's
	// wall-clock capacity (workers × time the pool was running), 1 for a
	// fully sequential Run.
	Workers         int     `json:"workers"`
	WorkerBusyNanos int64   `json:"workerBusyNanos"`
	Utilization     float64 `json:"utilization"`

	// Truncated is set when a budget limit stopped the Run; Limit names it.
	Truncated bool  `json:"truncated,omitempty"`
	Limit     Limit `json:"limit,omitempty"`

	// Rules holds one entry per program rule, in program order.
	Rules []RuleStats `json:"rules"`
	// PerRound holds one entry per semi-naive round, in evaluation order.
	PerRound []RoundStats `json:"perRound"`
}

// TopRules returns the indices of the n most expensive rules by EvalNanos,
// most expensive first — the shortlist a rule-ordering optimizer (or a human
// reading /v1/metrics) starts from.
func (s *ChaseStats) TopRules(n int) []int {
	idx := make([]int, len(s.Rules))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by descending EvalNanos: rule counts are small.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && s.Rules[idx[j]].EvalNanos > s.Rules[idx[j-1]].EvalNanos; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	if n > 0 && len(idx) > n {
		idx = idx[:n]
	}
	return idx
}

// statsCollector is the engine's per-Run mutable statistics state. The
// per-rule and per-round slices are written only by the goroutine driving
// the chase (workers report through job-indexed slots merged there); the
// index counters are atomics because chase workers probe indexes
// concurrently.
type statsCollector struct {
	start    time.Time
	rules    []RuleStats
	perRound []RoundStats

	indexHits   atomic.Int64
	indexScans  atomic.Int64
	indexBuilds atomic.Int64

	workers      int
	parWallNanos int64
	parBusyNanos int64
}

func newStatsCollector(labels []string) *statsCollector {
	st := &statsCollector{start: time.Now(), rules: make([]RuleStats, len(labels))}
	for i, l := range labels {
		st.rules[i].Rule = l
	}
	return st
}

// snapshot freezes the collector into an immutable report.
func (st *statsCollector) snapshot(e *Engine) *ChaseStats {
	out := &ChaseStats{
		Rounds:          e.rounds,
		Derived:         e.derivedCount,
		Duplicates:      e.dupCount,
		TotalNanos:      int64(time.Since(st.start)),
		IndexHits:       st.indexHits.Load(),
		IndexScans:      st.indexScans.Load(),
		IndexBuilds:     st.indexBuilds.Load(),
		IndexBytes:      e.indexBytes.Load(),
		Workers:         st.workers,
		WorkerBusyNanos: st.parBusyNanos,
		Utilization:     1,
		Rules:           append([]RuleStats(nil), st.rules...),
		PerRound:        append([]RoundStats(nil), st.perRound...),
	}
	if out.Workers < 1 {
		out.Workers = 1
	}
	if st.parWallNanos > 0 && st.workers > 0 {
		out.Utilization = float64(st.parBusyNanos) / (float64(st.workers) * float64(st.parWallNanos))
	}
	if se := e.stopError(); se != nil {
		out.Truncated = true
		out.Limit = se.Limit
	}
	return out
}

// Stats returns the report of the last Run, or nil when the engine runs
// without WithStats (or has not run yet). The report is a snapshot: later
// Runs replace it, and reading it concurrently with the accessors is safe.
func (e *Engine) Stats() *ChaseStats { return e.lastStats }

// instrumenting reports whether the current Run collects per-job timings
// (stats or rule hooks). Checked once per chase job, not on the hot path.
func (e *Engine) instrumenting() bool {
	return e.stats != nil || e.opts.Hook.RuleStart != nil || e.opts.Hook.RuleDone != nil
}

// ruleStart marks the start of one chase job; it returns the zero time when
// the Run is uninstrumented, which ruleDone treats as "skip".
func (e *Engine) ruleStart(ri int) time.Time {
	if !e.instrumenting() {
		return time.Time{}
	}
	if fn := e.opts.Hook.RuleStart; fn != nil {
		fn(e.ruleMeta[ri].label, e.rounds)
	}
	return time.Now()
}

// ruleDone folds one finished chase job into the per-rule statistics and
// fires the RuleDone hook. Called only on the goroutine driving the chase.
func (e *Engine) ruleDone(ri int, t0 time.Time, derived, duplicates int) {
	if t0.IsZero() {
		return
	}
	e.ruleDoneNanos(ri, int64(time.Since(t0)), derived, duplicates)
}

// ruleDoneNanos is ruleDone for jobs whose duration was measured elsewhere
// (parallel workers time their own jobs; the merge applies the result here).
func (e *Engine) ruleDoneNanos(ri int, nanos int64, derived, duplicates int) {
	if st := e.stats; st != nil {
		rs := &st.rules[ri]
		rs.Firings++
		rs.Derived += derived
		rs.Duplicates += duplicates
		rs.EvalNanos += nanos
	}
	if fn := e.opts.Hook.RuleDone; fn != nil {
		fn(e.ruleMeta[ri].label, e.rounds, derived, duplicates, time.Duration(nanos))
	}
}
