package datalog

import (
	"context"
	"fmt"
)

// Budget bounds the resources one Run of the engine may consume. The chase
// of a warded program terminates, but the engine also accepts arbitrary
// Datalog± where termination is undecidable — in a long-running service
// every evaluation must therefore carry explicit limits. A zero Budget
// imposes no fact or queue limits; wall-clock limits come from the
// context passed to RunContext.
type Budget struct {
	// MaxFacts caps the number of facts derived by one Run (extensional
	// facts do not count). 0 means unlimited.
	MaxFacts int

	// MaxDeltaQueue caps the number of newly derived facts pending in the
	// semi-naive delta between rounds — a proxy for the memory the next
	// round will touch. 0 means unlimited.
	MaxDeltaQueue int

	// CheckEvery is the number of evaluation steps (body-literal bindings)
	// between cooperative cancellation checks. Smaller values tighten
	// deadline latency at a small CPU cost. 0 means the default of 2048.
	CheckEvery int

	// MaxIndexBytes caps the estimated memory held by the per-predicate
	// positional hash indexes the engine builds for join matching (DESIGN.md
	// §7.1). The estimate counts encoded-key bytes plus per-entry overhead;
	// it is approximate but monotone. Index memory is cumulative engine
	// state, so the cap applies across re-runs of one engine. 0 means
	// unlimited.
	MaxIndexBytes int
}

func (b Budget) checkEvery() int {
	if b.CheckEvery <= 0 {
		return 2048
	}
	return b.CheckEvery
}

// Limit names the resource bound that stopped a Run.
type Limit string

// The limits a Run can trip.
const (
	// LimitDeadline: the context's deadline expired mid-chase.
	LimitDeadline Limit = "deadline"
	// LimitCancelled: the context was cancelled (e.g. the caller went away).
	LimitCancelled Limit = "cancelled"
	// LimitFacts: Budget.MaxFacts derived facts were exceeded.
	LimitFacts Limit = "max-facts"
	// LimitDeltaQueue: Budget.MaxDeltaQueue pending delta facts were exceeded.
	LimitDeltaQueue Limit = "max-delta-queue"
	// LimitRounds: Options.MaxRounds semi-naive rounds were exceeded.
	LimitRounds Limit = "max-rounds"
	// LimitIndexMemory: Budget.MaxIndexBytes of positional-index memory were
	// exceeded.
	LimitIndexMemory Limit = "max-index-bytes"
)

// BudgetExceededError reports that a Run stopped before fixpoint because a
// resource limit tripped. The engine state remains valid: every fact derived
// before the trip is readable through Facts/Match/Query, so callers can
// serve partial results while telling "timed out" apart from "diverged"
// (Limit) and "done" (nil error).
type BudgetExceededError struct {
	// Limit names the bound that tripped.
	Limit Limit
	// Bound is the configured value of that bound (rounds, facts, …);
	// 0 for deadline/cancellation.
	Bound int
	// Facts is the number of facts derived by this Run before the trip.
	Facts int
	// Rounds is the number of semi-naive rounds completed before the trip.
	Rounds int
	// Stratum is the index of the stratum being evaluated when the trip
	// happened.
	Stratum int
	// Cause is the underlying context error for deadline/cancellation
	// trips, nil otherwise.
	Cause error
}

// Error names the tripped limit, summarizes how far the chase got, and
// suggests a remediation.
func (e *BudgetExceededError) Error() string {
	head := fmt.Sprintf("datalog: budget exceeded: %s after %d rounds, %d derived facts (stratum %d)",
		e.Limit, e.Rounds, e.Facts, e.Stratum)
	switch e.Limit {
	case LimitRounds:
		return fmt.Sprintf("%s: the chase hit Options.MaxRounds=%d without reaching a fixpoint; "+
			"if the program is warded (see CheckWarded) raise MaxRounds, "+
			"otherwise the rule set likely diverges on this input — fix the recursion or set a wall-clock deadline",
			head, e.Bound)
	case LimitFacts:
		return fmt.Sprintf("%s: Budget.MaxFacts=%d; raise the budget or restrict the program/input", head, e.Bound)
	case LimitDeltaQueue:
		return fmt.Sprintf("%s: Budget.MaxDeltaQueue=%d; raise the budget or restrict the program/input", head, e.Bound)
	case LimitIndexMemory:
		return fmt.Sprintf("%s: Budget.MaxIndexBytes=%d; raise the budget, shrink the input, or disable indexing (Options.NoIndex)", head, e.Bound)
	case LimitDeadline:
		return head + ": the deadline expired mid-chase; raise the timeout or tighten MaxFacts to fail faster"
	case LimitCancelled:
		return head + ": the caller cancelled the evaluation"
	}
	return head
}

// Unwrap exposes the context error, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work on wrapped trips.
func (e *BudgetExceededError) Unwrap() error { return e.Cause }

// trip records a budget violation on the engine; the evaluation unwinds at
// the next cooperative check. It is safe to call from chase workers: the
// first trip wins, later ones return the recorded error.
func (e *Engine) trip(limit Limit, bound int, cause error) *BudgetExceededError {
	e.stopMu.Lock()
	first := e.stopErr == nil
	if first {
		e.stopErr = &BudgetExceededError{
			Limit:   limit,
			Bound:   bound,
			Facts:   e.derivedCount,
			Rounds:  e.rounds,
			Stratum: e.curStratum,
			Cause:   cause,
		}
		e.stopped.Store(true)
	}
	err := e.stopErr
	e.stopMu.Unlock()
	// The BudgetTrip hook fires outside stopMu so a callback reading engine
	// state cannot deadlock against another worker tripping concurrently.
	if first {
		if fn := e.opts.Hook.BudgetTrip; fn != nil {
			fn(err)
		}
	}
	return err
}

// stopError returns the recorded budget violation, if any.
func (e *Engine) stopError() *BudgetExceededError {
	if !e.stopped.Load() {
		return nil
	}
	e.stopMu.Lock()
	defer e.stopMu.Unlock()
	return e.stopErr
}

// resetStop clears the sticky budget violation at the start of a Run.
func (e *Engine) resetStop() {
	e.stopMu.Lock()
	defer e.stopMu.Unlock()
	e.stopErr = nil
	e.stopped.Store(false)
}

// checkCtx classifies and records a context failure.
func (e *Engine) checkCtx() error {
	if err := e.ctx.Err(); err != nil {
		limit := LimitCancelled
		if err == context.DeadlineExceeded {
			limit = LimitDeadline
		}
		return e.trip(limit, 0, err)
	}
	return nil
}

// step is the cooperative cancellation point of the inner evaluation loops:
// it returns a pending budget error immediately and polls the context every
// Budget.CheckEvery steps. Each chase worker counts steps on its own evalCtx,
// so one enormous join round honors deadlines no matter which worker runs it.
func (ec *evalCtx) step() error {
	e := ec.e
	if e.stopped.Load() {
		return e.stopError()
	}
	ec.steps++
	if ec.steps >= ec.nextCheck {
		ec.nextCheck = ec.steps + e.opts.Budget.checkEvery()
		return e.checkCtx()
	}
	return nil
}
