package datalog

// Differential testing of the production engine against the naive reference
// evaluator (reference_test.go): randomized programs over randomized
// graphgen-derived fact sets, evaluated four ways — reference, indexed
// sequential, indexed parallel, and scan-mode (NoIndex) — asserting
// identical derived fact sets. This is the oracle behind the index and
// parallel-chase work: any divergence in index maintenance, semi-naive
// delta restriction, buffered merge order, or typed equality fails here
// with a reproducible per-case seed.
//
// The fact generator lives here rather than importing graphgen to avoid an
// import cycle (graphgen depends on datalog through relstore in tests); it
// produces the same relational shapes relstore.CompanyGraphFacts emits —
// company(id, p1..p4), person(id, p1..p4), own(from, to, w) — over a small
// random ownership graph.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomEDB builds a small random company graph in relational form.
func randomEDB(rng *rand.Rand) []Fact {
	nCompanies := 6 + rng.Intn(10)
	nPersons := 2 + rng.Intn(5)
	sectors := []string{"bank", "energy", "tech"}
	var facts []Fact
	for i := 0; i < nCompanies; i++ {
		facts = append(facts, Fact{Pred: "company", Args: []any{
			int64(i), fmt.Sprintf("C%d", i), "", "", sectors[rng.Intn(len(sectors))],
		}})
	}
	for i := 0; i < nPersons; i++ {
		facts = append(facts, Fact{Pred: "person", Args: []any{
			int64(nCompanies + i), fmt.Sprintf("P%d", i), "1970", "", "",
		}})
	}
	n := nCompanies + nPersons
	nEdges := n + rng.Intn(2*n)
	for i := 0; i < nEdges; i++ {
		from := int64(rng.Intn(n))
		to := int64(rng.Intn(nCompanies)) // only companies are owned
		if from == to {
			continue
		}
		w := float64(rng.Intn(100)+1) / 100.0
		facts = append(facts, Fact{Pred: "own", Args: []any{from, to, w}})
	}
	return facts
}

// randomProgram builds a random stratified program over the EDB predicates.
// IDB predicates are layered (p0, p1, ...) so that negation only ever looks
// down the layering — stratified by construction. Aggregates are excluded
// (the reference evaluator does not implement them; they get their own
// deterministic tests).
func randomProgram(rng *rand.Rand) string {
	var rules []string
	layers := 2 + rng.Intn(3) // IDB layers
	arity := map[string]int{}

	// Layer 0 rules: project/filter the EDB.
	base := []string{
		"own(X, Y, W) -> p0(X, Y).",
		"own(X, Y, W), W > 0.4 -> p0(X, Y).",
		"company(X, N, _, _, S) -> p0(X, X).",
		"own(X, Y, W), V = W * 2.0, V > 0.5 -> p0(Y, X).",
		"own(X, Y, W), own(Y, Z, U), X != Z -> p0(X, Z).",
	}
	nBase := 1 + rng.Intn(3)
	for i := 0; i < nBase; i++ {
		rules = append(rules, base[rng.Intn(len(base))])
	}
	arity["p0"] = 2

	for layer := 1; layer < layers; layer++ {
		prev := fmt.Sprintf("p%d", layer-1)
		cur := fmt.Sprintf("p%d", layer)
		arity[cur] = 2
		choices := []string{
			// transitive step through own (recursive within the layer)
			fmt.Sprintf("%s(X, Y), own(Y, Z, _), X != Z -> %s(X, Z).", cur, cur),
			// lift from the previous layer
			fmt.Sprintf("%s(X, Y) -> %s(X, Y).", prev, cur),
			// join of previous layer with EDB
			fmt.Sprintf("%s(X, Y), own(Y, Z, W), W > 0.2 -> %s(X, Z).", prev, cur),
			// negation against the previous layer (strictly lower stratum)
			fmt.Sprintf("own(X, Y, _), not %s(Y, X) -> %s(X, Y).", prev, cur),
			// symmetric closure
			fmt.Sprintf("%s(X, Y) -> %s(Y, X).", prev, cur),
			// constant head argument + arithmetic
			fmt.Sprintf("%s(X, Y), own(X, Y, W), V = W + 1.0 -> q%d(X, V).", prev, layer),
		}
		nRules := 1 + rng.Intn(3)
		seeded := false
		for i := 0; i < nRules; i++ {
			r := choices[rng.Intn(len(choices))]
			if strings.Contains(r, prev+"(") {
				seeded = true
			}
			rules = append(rules, r)
		}
		if !seeded {
			rules = append(rules, fmt.Sprintf("%s(X, Y) -> %s(X, Y).", prev, cur))
		}
	}

	// Occasionally add an existential rule at the top — null invention must
	// coincide between engines.
	if rng.Intn(3) == 0 {
		top := fmt.Sprintf("p%d", layers-1)
		rules = append(rules, fmt.Sprintf("%s(X, Y) -> holds(X, Y, E).", top))
	}
	return strings.Join(rules, "\n")
}

// headPreds collects the derived predicates of a program.
func headPreds(prog *Program) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range prog.Rules {
		for _, h := range r.Head {
			if !seen[h.Pred] {
				seen[h.Pred] = true
				out = append(out, h.Pred)
			}
		}
	}
	sortStrings(out)
	return out
}

func engineFactSet(e *Engine, preds []string) []string {
	var out []string
	for _, p := range preds {
		for _, f := range e.Facts(p) {
			out = append(out, f.Key())
		}
	}
	sortStrings(out)
	return out
}

func diffFactSets(a, b []string) string {
	am := map[string]bool{}
	bm := map[string]bool{}
	for _, k := range a {
		am[k] = true
	}
	for _, k := range b {
		bm[k] = true
	}
	var missing, extra []string
	for _, k := range a {
		if !bm[k] {
			missing = append(missing, k)
		}
	}
	for _, k := range b {
		if !am[k] {
			extra = append(extra, k)
		}
	}
	return fmt.Sprintf("missing=%v extra=%v", missing, extra)
}

// TestDifferentialRandomPrograms is the acceptance-criteria harness: ≥ 200
// randomized program/fact-set cases, each evaluated by the reference
// interpreter and three engine configurations, asserting identical fact
// sets. Every case is reproducible from its printed seed.
func TestDifferentialRandomPrograms(t *testing.T) {
	const cases = 240
	configs := []struct {
		name string
		opts []Option
	}{
		{"indexed-seq", []Option{WithParallel(1)}},
		{"indexed-par4", []Option{WithParallel(4)}},
		{"noindex", []Option{WithParallel(1), WithNoIndex()}},
	}
	for c := 0; c < cases; c++ {
		seed := int64(7000 + c)
		rng := rand.New(rand.NewSource(seed))
		edb := randomEDB(rng)
		progText := randomProgram(rng)
		prog, err := Parse(progText)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, progText)
		}
		preds := headPreds(prog)

		ref, err := newReference(prog)
		if err != nil {
			t.Fatalf("seed %d: reference rejects program: %v\n%s", seed, err, progText)
		}
		for _, f := range edb {
			ref.assert(f)
		}
		if err := ref.run(); err != nil {
			t.Fatalf("seed %d: reference run: %v\n%s", seed, err, progText)
		}
		want := ref.factSet(preds)

		for _, cfg := range configs {
			e, err := NewEngine(prog, cfg.opts...)
			if err != nil {
				t.Fatalf("seed %d [%s]: NewEngine: %v", seed, cfg.name, err)
			}
			e.AssertAll(edb)
			if err := e.Run(); err != nil {
				t.Fatalf("seed %d [%s]: Run: %v\n%s", seed, cfg.name, err, progText)
			}
			got := engineFactSet(e, preds)
			if len(got) != len(want) || diffFactSets(want, got) != "missing=[] extra=[]" {
				t.Fatalf("seed %d [%s]: fact sets diverge: %s\nprogram:\n%s",
					seed, cfg.name, diffFactSets(want, got), progText)
			}
		}
	}
}

// TestDifferentialControlProgram runs the paper's company-control shape (a
// recursive aggregate program) through the engine configurations only —
// the reference cannot do aggregates — asserting all engine modes agree
// with each other over random graphs.
func TestDifferentialControlProgram(t *testing.T) {
	const prog = `
company(X, _, _, _, _) -> ccand(X, X).
person(X, _, _, _, _) -> ccand(X, X).
ccand(X, Z), own(Z, Y, W), X != Y, S = msum(W, <Z>), S > 0.5 -> ccand(X, Y).
ccand(X, Y), X != Y -> control(X, Y).
`
	p := MustParse(prog)
	for c := 0; c < 20; c++ {
		seed := int64(9000 + c)
		edb := randomEDB(rand.New(rand.NewSource(seed)))

		var want []string
		for i, opts := range [][]Option{
			{WithParallel(1)},
			{WithParallel(4)},
			{WithParallel(1), WithNoIndex()},
		} {
			e, err := NewEngine(p, opts...)
			if err != nil {
				t.Fatal(err)
			}
			e.AssertAll(edb)
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			got := engineFactSet(e, []string{"control"})
			if i == 0 {
				want = got
				continue
			}
			if diffFactSets(want, got) != "missing=[] extra=[]" {
				t.Fatalf("seed %d config %d: control sets diverge: %s", seed, i, diffFactSets(want, got))
			}
		}
	}
}
