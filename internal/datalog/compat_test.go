package datalog

// Compatibility coverage for the pre-redesign construction surface: the
// Options struct and NewEngineWith must keep compiling and behaving exactly
// like the functional options that replaced them. Also pins down the
// defensive-copy contract of Facts/FactsN, which used to alias the store.

import (
	"reflect"
	"testing"
)

// TestNewEngineWithCompat is the proof the deprecated constructor still
// works: a hand-built Options struct drives the same chase as the
// equivalent With* chain.
func TestNewEngineWithCompat(t *testing.T) {
	prog := MustParse(statsProgram)
	legacy, err := NewEngineWith(prog, Options{Parallel: 1, MaxRounds: 50, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	legacy.AssertAll(statsEDB())
	if err := legacy.Run(); err != nil {
		t.Fatal(err)
	}

	modern := statsEngine(t, WithParallel(1), WithMaxRounds(50), WithStats())
	if err := modern.Run(); err != nil {
		t.Fatal(err)
	}

	if got, want := legacy.NumFacts("path"), modern.NumFacts("path"); got != want {
		t.Errorf("legacy constructor derived %d path facts, modern %d", got, want)
	}
	if legacy.Stats() == nil {
		t.Error("Options.Stats did not enable collection through NewEngineWith")
	}
	if !reflect.DeepEqual(legacy.Facts("path"), modern.Facts("path")) {
		t.Error("legacy and modern engines disagree on the fact set")
	}
}

// TestWithOptionsBridge: a wholesale Options struct composes with later
// functional options, later ones winning.
func TestWithOptionsBridge(t *testing.T) {
	e, err := NewEngine(MustParse(statsProgram),
		WithOptions(Options{NoIndex: true, MaxRounds: 1}),
		WithMaxRounds(50), // overrides the struct's field
	)
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(statsEDB())
	if err := e.Run(); err != nil {
		t.Fatalf("MaxRounds override did not apply: %v", err)
	}
	if e.IndexBytes() != 0 {
		t.Errorf("NoIndex from the bridged struct ignored: %d index bytes", e.IndexBytes())
	}
}

// TestFactsDefensiveCopy: mutating what Facts/FactsN return must not reach
// the engine's store or its indexes.
func TestFactsDefensiveCopy(t *testing.T) {
	e := statsEngine(t)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	before := e.NumFacts("path")

	fs := e.Facts("path")
	if len(fs) == 0 {
		t.Fatal("no path facts")
	}
	orig := Fact{Pred: fs[0].Pred, Args: append([]any(nil), fs[0].Args...)}
	fs[0].Pred = "corrupted"
	fs[0].Args[0] = "clobbered"

	if !e.Has(orig) {
		t.Error("mutating Facts result reached the store: original fact gone")
	}
	if got := e.Facts("path"); !reflect.DeepEqual(got[0], orig) && !e.Has(orig) {
		t.Errorf("store changed after caller mutation: %v", got[0])
	}
	if e.NumFacts("path") != before {
		t.Errorf("fact count changed: %d -> %d", before, e.NumFacts("path"))
	}
	// Indexed lookups still see the uncorrupted argument.
	if got := e.Match("path", orig.Args[0], nil); len(got) == 0 {
		t.Errorf("Match(path, %v, _) empty after caller mutation", orig.Args[0])
	}

	page := e.FactsN("path", 2)
	if len(page) != 2 {
		t.Fatalf("FactsN(2) returned %d facts", len(page))
	}
	keep := Fact{Pred: page[1].Pred, Args: append([]any(nil), page[1].Args...)}
	page[1].Args[0] = "clobbered too"
	if !e.Has(keep) {
		t.Error("mutating FactsN result reached the store")
	}
}
