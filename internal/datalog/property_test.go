package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refClosure computes transitive closure by Warshall, the reference for the
// recursive Datalog program.
func refClosure(n int, edges [][2]int) map[[2]int]bool {
	reach := map[[2]int]bool{}
	for _, e := range edges {
		reach[e] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[[2]int{i, k}] && reach[[2]int{k, j}] {
					reach[[2]int{i, j}] = true
				}
			}
		}
	}
	return reach
}

// Property: the engine's transitive closure equals Warshall's on random
// digraphs.
func TestClosureMatchesWarshallProperty(t *testing.T) {
	src := `
		edge(X, Y) -> path(X, Y).
		path(X, Z), edge(Z, Y) -> path(X, Y).
	`
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 8
		var edges [][2]int
		var edb []Fact
		for i := 0; i < 14; i++ {
			a, b := r.Intn(n), r.Intn(n)
			edges = append(edges, [2]int{a, b})
			edb = append(edb, Fact{Pred: "edge", Args: []any{int64(a), int64(b)}})
		}
		want := refClosure(n, edges)
		e, err := NewEngine(MustParse(src))
		if err != nil {
			return false
		}
		e.AssertAll(edb)
		if err := e.Run(); err != nil {
			return false
		}
		got := map[[2]int]bool{}
		for _, fct := range e.Facts("path") {
			got[[2]int{int(fct.Args[0].(int64)), int(fct.Args[1].(int64))}] = true
		}
		if len(got) != len(want) {
			return false
		}
		for p := range want {
			if !got[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: naive and semi-naive evaluation derive identical fact sets.
func TestNaiveEqualsSemiNaiveProperty(t *testing.T) {
	src := `
		edge(X, Y) -> path(X, Y).
		path(X, Z), edge(Z, Y) -> path(X, Y).
		path(X, Y), path(Y, X), X != Y -> scc(X, Y).
	`
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var edb []Fact
		for i := 0; i < 12; i++ {
			edb = append(edb, Fact{Pred: "edge", Args: []any{int64(r.Intn(6)), int64(r.Intn(6))}})
		}
		run := func(naive bool) (int, int) {
			var opts []Option
			if naive {
				opts = append(opts, WithNaive())
			}
			e, _ := NewEngine(MustParse(src), opts...)
			e.AssertAll(edb)
			if err := e.Run(); err != nil {
				return -1, -1
			}
			return e.NumFacts("path"), e.NumFacts("scc")
		}
		p1, s1 := run(false)
		p2, s2 := run(true)
		return p1 == p2 && s1 == s2 && p1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxByGroupSelectsMaxima(t *testing.T) {
	e, _ := NewEngine(MustParse(`a(X, V) -> b(X, V).`))
	e.AssertAll([]Fact{
		{Pred: "a", Args: []any{"g1", 1.0}},
		{Pred: "a", Args: []any{"g1", 3.0}},
		{Pred: "a", Args: []any{"g1", 2.0}},
		{Pred: "a", Args: []any{"g2", 5.0}},
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	finals := e.MaxByGroup("b", 1, 0)
	if len(finals) != 2 {
		t.Fatalf("finals = %v", finals)
	}
	want := map[string]float64{"g1": 3, "g2": 5}
	for _, f := range finals {
		if f.Args[1].(float64) != want[f.Args[0].(string)] {
			t.Errorf("MaxByGroup(%v) = %v", f.Args[0], f.Args[1])
		}
	}
}

func TestEmptyProgramAndEDBOnly(t *testing.T) {
	e, err := NewEngine(&Program{})
	if err != nil {
		t.Fatal(err)
	}
	e.Assert(Fact{Pred: "a", Args: []any{int64(1)}})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.NumFacts("a") != 1 {
		t.Error("EDB lost")
	}
}

func TestArityMismatchDoesNotUnify(t *testing.T) {
	e, _ := NewEngine(MustParse(`a(X, Y) -> b(X, Y).`))
	e.Assert(Fact{Pred: "a", Args: []any{int64(1)}})           // arity 1
	e.Assert(Fact{Pred: "a", Args: []any{int64(1), int64(2)}}) // arity 2
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.NumFacts("b") != 1 {
		t.Errorf("b facts = %d, want 1 (only the arity-2 a)", e.NumFacts("b"))
	}
}

func TestStringComparisons(t *testing.T) {
	e, _ := NewEngine(MustParse(`a(X), X != "skip" -> b(X).`))
	e.AssertAll([]Fact{
		{Pred: "a", Args: []any{"keep"}},
		{Pred: "a", Args: []any{"skip"}},
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.NumFacts("b") != 1 {
		t.Errorf("b = %v", e.Facts("b"))
	}
}

func TestAssertDuplicateFactIdempotent(t *testing.T) {
	e, _ := NewEngine(&Program{})
	f := Fact{Pred: "a", Args: []any{int64(1), "x"}}
	if !e.Assert(f) {
		t.Error("first assert returned false")
	}
	if e.Assert(f) {
		t.Error("duplicate assert returned true")
	}
	if e.NumFacts("a") != 1 {
		t.Errorf("facts = %d", e.NumFacts("a"))
	}
}

func TestSortFactsDeterministic(t *testing.T) {
	fs := []Fact{
		{Pred: "b", Args: []any{int64(2)}},
		{Pred: "a", Args: []any{int64(9)}},
		{Pred: "a", Args: []any{int64(1)}},
	}
	SortFacts(fs)
	if fs[0].Pred != "a" || fs[0].Args[0].(int64) != 1 {
		t.Errorf("sorted = %v", fs)
	}
}

func TestConstantStringRendering(t *testing.T) {
	cases := map[string]Constant{
		`"x"`:  Str("x"),
		`1.5`:  Num(1.5),
		`7`:    Int(7),
		`true`: Bool(true),
	}
	for want, c := range cases {
		if got := c.String(); got != want {
			t.Errorf("Constant.String() = %q, want %q", got, want)
		}
	}
}

func TestQueryConjunctiveGoal(t *testing.T) {
	e := run2(t, `
		edge(X, Y) -> path(X, Y).
		path(X, Z), edge(Z, Y) -> path(X, Y).
	`, []Fact{
		{Pred: "edge", Args: []any{"a", "b"}},
		{Pred: "edge", Args: []any{"b", "c"}},
		{Pred: "edge", Args: []any{"b", "d"}},
	})
	// Which nodes are reachable from a through b?
	answers := e.Query(
		Atom{Pred: "path", Terms: []Term{Str("a"), Variable("M")}},
		Atom{Pred: "path", Terms: []Term{Variable("M"), Variable("Y")}},
	)
	got := map[string]bool{}
	for _, b := range answers {
		got[b["M"].(string)+"→"+b["Y"].(string)] = true
	}
	for _, want := range []string{"b→c", "b→d"} {
		if !got[want] {
			t.Errorf("missing answer %s; got %v", want, got)
		}
	}
}

func TestQueryGroundGoal(t *testing.T) {
	e := run2(t, `edge(X, Y) -> path(X, Y).`, []Fact{
		{Pred: "edge", Args: []any{"a", "b"}},
	})
	if n := len(e.Query(Atom{Pred: "path", Terms: []Term{Str("a"), Str("b")}})); n != 1 {
		t.Errorf("ground goal answers = %d, want 1 (empty binding)", n)
	}
	if n := len(e.Query(Atom{Pred: "path", Terms: []Term{Str("b"), Str("a")}})); n != 0 {
		t.Errorf("false goal answers = %d, want 0", n)
	}
}

func TestQueryDeduplicates(t *testing.T) {
	e := run2(t, `edge(X, Y) -> reach(X).`, []Fact{
		{Pred: "edge", Args: []any{"a", "b"}},
		{Pred: "edge", Args: []any{"a", "c"}},
	})
	if n := len(e.Query(Atom{Pred: "reach", Terms: []Term{Variable("X")}})); n != 1 {
		t.Errorf("answers = %d, want 1 (deduplicated)", n)
	}
}

// run2 mirrors the run helper from engine_test without Options.
func run2(t *testing.T, src string, edb []Fact) *Engine {
	t.Helper()
	e, err := NewEngine(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(edb)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}
