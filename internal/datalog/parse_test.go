package datalog

import (
	"strings"
	"testing"
)

func TestParseBasicRule(t *testing.T) {
	prog, err := Parse(`edge(X, Y) -> path(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(prog.Rules))
	}
	r := prog.Rules[0]
	if len(r.Body) != 1 || r.Body[0].Kind != LitAtom || r.Body[0].Atom.Pred != "edge" {
		t.Errorf("bad body: %v", r.Body)
	}
	if len(r.Head) != 1 || r.Head[0].Pred != "path" {
		t.Errorf("bad head: %v", r.Head)
	}
}

func TestParseComments(t *testing.T) {
	src := `
		% Prolog-style comment
		// C-style comment
		a(X) -> b(X). % trailing comment
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Errorf("rules = %d, want 1", len(prog.Rules))
	}
}

func TestParseConstants(t *testing.T) {
	prog, err := Parse(`a(X, "str with \"esc\"", 3.14, -2, true, sym) -> b(X).`)
	if err != nil {
		t.Fatal(err)
	}
	terms := prog.Rules[0].Body[0].Atom.Terms
	if s := terms[1].(Constant).Value.(string); s != `str with "esc"` {
		t.Errorf("string const = %q", s)
	}
	if f := terms[2].(Constant).Value.(float64); f != 3.14 {
		t.Errorf("num const = %v", f)
	}
	if f := terms[3].(Constant).Value.(float64); f != -2 {
		t.Errorf("negative const = %v", f)
	}
	if b := terms[4].(Constant).Value.(bool); b != true {
		t.Errorf("bool const = %v", b)
	}
	if s := terms[5].(Constant).Value.(string); s != "sym" {
		t.Errorf("symbolic const = %q (bare identifiers are string constants)", s)
	}
}

func TestParseAggregate(t *testing.T) {
	prog, err := Parse(`own(Z, Y, W), S = msum(W, <Z>), S > 0.5 -> ctrl(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	var agg *Literal
	for i := range prog.Rules[0].Body {
		if prog.Rules[0].Body[i].Kind == LitAgg {
			agg = &prog.Rules[0].Body[i]
		}
	}
	if agg == nil {
		t.Fatal("no aggregate literal parsed")
	}
	if agg.Agg != AggSum || agg.Var != "S" {
		t.Errorf("agg = %v %v", agg.Agg, agg.Var)
	}
	if len(agg.Contributors) != 1 || agg.Contributors[0] != "Z" {
		t.Errorf("contributors = %v", agg.Contributors)
	}
}

func TestParseAggregateAllOps(t *testing.T) {
	src := `
		a(X, W), S = msum(W, <X>) -> s(S).
		a(X, W), S = mprod(W, <X>) -> p(S).
		a(X, W), S = mmax(W, <X>) -> mx(S).
		a(X, W), S = mmin(W, <X>) -> mn(S).
		a(X, W), S = mcount(1, <X>) -> c(S).
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []AggOp{AggSum, AggProd, AggMax, AggMin, AggCount}
	for i, r := range prog.Rules {
		found := false
		for _, l := range r.Body {
			if l.Kind == LitAgg {
				if l.Agg != want[i] {
					t.Errorf("rule %d: op = %v, want %v", i, l.Agg, want[i])
				}
				found = true
			}
		}
		if !found {
			t.Errorf("rule %d: no aggregate", i)
		}
	}
}

func TestParseBuiltinCall(t *testing.T) {
	prog, err := Parse(`person(N), Z = #skp(N, "x") -> node(Z, N).`)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Rules[0].Body[1]
	if as.Kind != LitAssign {
		t.Fatalf("literal kind = %v, want assignment", as.Kind)
	}
	call, ok := as.Expr.(CallExpr)
	if !ok || call.Name != "skp" || len(call.Args) != 2 {
		t.Errorf("call = %#v", as.Expr)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	prog, err := Parse(`a(X, Y), V = X + Y * 2 -> b(V).`)
	if err != nil {
		t.Fatal(err)
	}
	e := prog.Rules[0].Body[1].Expr.(BinExpr)
	if e.Op != '+' {
		t.Fatalf("top op = %c, want +", e.Op)
	}
	if inner, ok := e.R.(BinExpr); !ok || inner.Op != '*' {
		t.Errorf("right operand = %#v, want multiplication", e.R)
	}
}

func TestParseNegation(t *testing.T) {
	prog, err := Parse(`node(X), not covered(X) -> exposed(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Body[1].Kind != LitNot {
		t.Errorf("second literal = %v, want negation", prog.Rules[0].Body[1])
	}
}

func TestParseMultiHead(t *testing.T) {
	prog, err := Parse(`own(X, Y, W) -> link(X, Y), typed(X, "owner").`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules[0].Head) != 2 {
		t.Errorf("head atoms = %d, want 2", len(prog.Rules[0].Head))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`a(X) -> b(X)`,                  // missing dot
		`a(X -> b(X).`,                  // unbalanced paren
		`a(X) b(X).`,                    // missing arrow
		`a("unterminated) -> b.`,        // unterminated string
		`-> b(X).`,                      // empty body handled as error
		`a(X) -> .`,                     // empty head
		`a(X), S = msum(W, Z) -> b(S).`, // contributors need angle brackets
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error, got nil", src)
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	src := `candidate(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5 -> candidate(X, Y).`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := prog.Rules[0].String()
	reparsed, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q: %v", printed, err)
	}
	if got := reparsed.Rules[0].String(); got != printed {
		t.Errorf("round trip unstable:\n  1st: %s\n  2nd: %s", printed, got)
	}
}

func TestProgramStringParsesBack(t *testing.T) {
	src := `
		company(X) -> candidate(X, X).
		candidate(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5 -> candidate(X, Y).
		node(X), not covered(X) -> exposed(X).
	`
	prog := MustParse(src)
	if _, err := Parse(prog.String()); err != nil {
		t.Errorf("pretty-printed program does not parse: %v\n%s", err, prog.String())
	}
}

func TestParseAnonVariable(t *testing.T) {
	prog, err := Parse(`own(X, _, _) -> owner(X).`)
	if err != nil {
		t.Fatal(err)
	}
	terms := prog.Rules[0].Body[0].Atom.Terms
	if v, ok := terms[1].(Variable); !ok || v != "_" {
		t.Errorf("term 1 = %#v, want anonymous variable", terms[1])
	}
}

func TestParseLongProgram(t *testing.T) {
	// The full control program from Algorithm 5 plus output mapping from
	// Algorithm 4 parses as a unit.
	src := strings.Repeat(`
		company(X) -> candidate(X, X, "Control").
		candidate(X, Z, "Control"), own(Z, Y, W), S = msum(W, <Z>), S > 0.5 -> candidate(X, Y, "Control").
		link(Z, X, Y), edgetype(Z, "Control") -> control(X, Y).
	`, 3)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 9 {
		t.Errorf("rules = %d, want 9", len(prog.Rules))
	}
}
