package datalog

// Concurrency coverage for the parallel chase and the lazily built indexes,
// written to run under -race: concurrent read-only access after a Run,
// worker-pool evaluation, mid-chase cancellation landed at the delta-merge
// point through the faultinject harness, and worker panic propagation.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vadalink/internal/faultinject"
)

// closureProgram is aggregate-free, so every rule is parallel-safe and the
// chase actually exercises the worker pool.
const closureProgram = `
own(X, Y, _) -> reach(X, Y).
reach(X, Y), own(Y, Z, _), X != Z -> reach(X, Z).
own(X, Y, W), not reach(Y, X) -> oneway(X, Y).
`

func closureEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e, err := NewEngine(MustParse(closureProgram), opts...)
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(randomEDB(rand.New(rand.NewSource(42))))
	return e
}

// TestParallelChaseWorkers runs the worker-pool path (Parallel well above
// GOMAXPROCS) and cross-checks the result against the sequential path.
func TestParallelChaseWorkers(t *testing.T) {
	seq := closureEngine(t, WithParallel(1))
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	par := closureEngine(t, WithParallel(8))
	if err := par.Run(); err != nil {
		t.Fatal(err)
	}
	preds := []string{"reach", "oneway"}
	if d := diffFactSets(engineFactSet(seq, preds), engineFactSet(par, preds)); d != "missing=[] extra=[]" {
		t.Fatalf("parallel chase diverges from sequential: %s", d)
	}
}

// TestConcurrentReadsAfterRun hammers the read-only accessors — including
// Match patterns that trigger lazy index builds — from many goroutines at
// once. Under -race this verifies the double-checked index publication.
func TestConcurrentReadsAfterRun(t *testing.T) {
	e := closureEngine(t, WithParallel(4))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	reach := e.Facts("reach")
	if len(reach) == 0 {
		t.Fatal("no reach facts derived")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := reach[(g*13+i)%len(reach)]
				// Probe both argument positions: each may build its index
				// lazily, racing with the other goroutines.
				if got := e.Match("reach", f.Args[0], nil); len(got) == 0 {
					t.Errorf("Match(reach, %v, _) empty", f.Args[0])
					return
				}
				if got := e.Match("reach", nil, f.Args[1]); len(got) == 0 {
					t.Errorf("Match(reach, _, %v) empty", f.Args[1])
					return
				}
				if !e.Has(f) {
					t.Errorf("Has(%v) = false", f)
					return
				}
				bs := e.Query(
					Atom{Pred: "reach", Terms: []Term{Variable("X"), Variable("Y")}},
					Atom{Pred: "own", Terms: []Term{Variable("Y"), Variable("Z"), Variable("W")}},
				)
				if len(bs) == 0 {
					t.Error("two-atom Query returned nothing")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentEngineRuns runs several independent engines at once — the
// faultinject registry and the runtime are the only shared state.
func TestConcurrentEngineRuns(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e, err := NewEngine(MustParse(closureProgram), WithParallel(2))
			if err != nil {
				t.Error(err)
				return
			}
			e.AssertAll(randomEDB(rand.New(rand.NewSource(int64(100 + g)))))
			if err := e.Run(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}

// TestCancelAtMergePoint lands a cancellation exactly at the delta-merge
// site of the parallel chase and verifies the run stops with a cancellation
// trip, the partial state stays readable, and the engine recovers on re-run.
func TestCancelAtMergePoint(t *testing.T) {
	e := closureEngine(t, WithParallel(4), WithBudget(Budget{CheckEvery: 1}))
	ctx, cancel := context.WithCancel(context.Background())
	var merges atomic.Int64
	faultinject.Set(faultinject.SiteDatalogMerge, func() {
		if merges.Add(1) == 1 {
			cancel()
		}
	})
	t.Cleanup(faultinject.Reset)

	err := e.RunContext(ctx)
	if merges.Load() == 0 {
		t.Skip("chase finished before any parallel merge (GOMAXPROCS=1 single-job rounds)")
	}
	var be *BudgetExceededError
	if !errors.As(err, &be) || be.Limit != LimitCancelled {
		t.Fatalf("want cancellation trip, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("trip does not unwrap to context.Canceled: %v", err)
	}

	// Partial state must be readable, and a fresh run must complete.
	_ = e.Facts("reach")
	faultinject.Reset()
	if err := e.RunContext(context.Background()); err != nil {
		t.Fatalf("re-run after cancellation: %v", err)
	}
	want := closureEngine(t, WithParallel(1))
	if err := want.Run(); err != nil {
		t.Fatal(err)
	}
	if d := diffFactSets(engineFactSet(want, []string{"reach", "oneway"}), engineFactSet(e, []string{"reach", "oneway"})); d != "missing=[] extra=[]" {
		t.Fatalf("post-recovery fact set diverges: %s", d)
	}
}

// TestDeadlineMidChase cancels by deadline while rounds are stretched at the
// round boundary, under the parallel configuration.
func TestDeadlineMidChase(t *testing.T) {
	e := closureEngine(t, WithParallel(4), WithBudget(Budget{CheckEvery: 1}))
	faultinject.Set(faultinject.SiteDatalogRound, func() { time.Sleep(20 * time.Millisecond) })
	t.Cleanup(faultinject.Reset)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := e.RunContext(ctx)
	var be *BudgetExceededError
	if !errors.As(err, &be) || be.Limit != LimitDeadline {
		t.Fatalf("want deadline trip, got %v", err)
	}
}

// TestWorkerPanicPropagates asserts the parallel path preserves the
// sequential contract: a panic inside a builtin reaches the Run caller.
func TestWorkerPanicPropagates(t *testing.T) {
	prog := MustParse(`own(X, Y, W), V = #boom(W) -> p(X, V).`)
	e, err := NewEngine(prog, WithParallel(4))
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterBuiltin("boom", func(args []any) (any, error) { panic("builtin exploded") })
	e.AssertAll(randomEDB(rand.New(rand.NewSource(5))))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate from chase worker")
		}
	}()
	_ = e.Run()
}

// TestIndexMemoryBudget trips LimitIndexMemory on a tiny index budget and
// verifies the error names the limit and remediation works (NoIndex mode).
func TestIndexMemoryBudget(t *testing.T) {
	e := closureEngine(t, WithBudget(Budget{MaxIndexBytes: 64}))
	err := e.Run()
	var be *BudgetExceededError
	if !errors.As(err, &be) || be.Limit != LimitIndexMemory {
		t.Fatalf("want index-memory trip, got %v", err)
	}
	if e.IndexBytes() <= 64 {
		t.Fatalf("IndexBytes() = %d, want > budget", e.IndexBytes())
	}

	// Scan mode never builds indexes, so the same budget passes.
	noidx := closureEngine(t, WithNoIndex(), WithBudget(Budget{MaxIndexBytes: 64}))
	if err := noidx.Run(); err != nil {
		t.Fatalf("NoIndex run tripped: %v", err)
	}
	if noidx.IndexBytes() != 0 {
		t.Fatalf("NoIndex engine accrued %d index bytes", noidx.IndexBytes())
	}
}
