package datalog

import (
	"strings"
	"testing"
)

func TestPlainDatalogIsWarded(t *testing.T) {
	// No existentials → no affected positions → trivially warded.
	prog := MustParse(`
		edge(X, Y) -> path(X, Y).
		path(X, Z), edge(Z, Y) -> path(X, Y).
	`)
	rep := CheckWarded(prog)
	if !rep.Warded {
		t.Errorf("plain Datalog flagged non-warded: %+v", rep.Violations)
	}
	if len(rep.Affected) != 0 {
		t.Errorf("affected positions = %v, want none", rep.Affected)
	}
}

func TestExistentialMarksAffectedPositions(t *testing.T) {
	prog := MustParse(`
		a(X) -> b(X, Z).
	`)
	rep := CheckWarded(prog)
	if !rep.Warded {
		t.Fatalf("violations: %+v", rep.Violations)
	}
	if len(rep.Affected) != 1 || rep.Affected[0] != (PositionKey{Pred: "b", Pos: 1}) {
		t.Errorf("affected = %v, want [b[1]]", rep.Affected)
	}
}

func TestAffectedPropagation(t *testing.T) {
	// The null at b[1] propagates into c[0] through the second rule.
	prog := MustParse(`
		a(X) -> b(X, Z).
		b(X, Y) -> c(Y).
	`)
	rep := CheckWarded(prog)
	want := map[PositionKey]bool{
		{Pred: "b", Pos: 1}: true,
		{Pred: "c", Pos: 0}: true,
	}
	if len(rep.Affected) != len(want) {
		t.Fatalf("affected = %v", rep.Affected)
	}
	for _, a := range rep.Affected {
		if !want[a] {
			t.Errorf("unexpected affected position %v", a)
		}
	}
	if !rep.Warded {
		t.Errorf("single-dangerous-variable rule must be warded: %+v", rep.Violations)
	}
}

func TestHarmlessByUnaffectedOccurrence(t *testing.T) {
	// Y occurs at affected b[1] AND unaffected b[0] (second atom), so it is
	// harmless and the rule is warded even though Y reaches the head.
	prog := MustParse(`
		a(X) -> b(X, Z).
		b(X, Y), b(Y, W) -> c(Y).
	`)
	rep := CheckWarded(prog)
	if !rep.Warded {
		t.Errorf("rule with harmless head variable flagged: %+v", rep.Violations)
	}
}

func TestNonWardedTwoDangerousAtoms(t *testing.T) {
	// Y and Y2 are both dangerous (nulls in b[1], both in the head) but live
	// in different atoms: no single ward exists.
	prog := MustParse(`
		a(X) -> b(X, Z).
		b(X, Y), b(X2, Y2), X != X2 -> c(Y, Y2).
	`)
	rep := CheckWarded(prog)
	if rep.Warded {
		t.Fatal("two dangerous variables across atoms accepted as warded")
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %+v", rep.Violations)
	}
	v := rep.Violations[0]
	if len(v.Dangerous) != 2 {
		t.Errorf("dangerous = %v, want [Y Y2]", v.Dangerous)
	}
	if !strings.Contains(v.Reason, "ward") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func TestNonWardedSharedHarmfulVariable(t *testing.T) {
	// The candidate ward shares a harmful variable with another atom: the
	// classic non-warded join on nulls.
	prog := MustParse(`
		a(X) -> b(X, Z).
		a(X) -> d(X, Z).
		b(X, Y), d(X2, Y) -> c(Y).
	`)
	rep := CheckWarded(prog)
	if rep.Warded {
		t.Fatal("join on a harmful variable accepted as warded")
	}
}

func TestAssignedVariablesAreHarmless(t *testing.T) {
	// Aggregate and assignment targets hold computed values, never nulls.
	prog := MustParse(`
		own(X, Y, W), S = msum(W, <X>), S > 0.5 -> big(Y, S).
	`)
	rep := CheckWarded(prog)
	if !rep.Warded {
		t.Errorf("aggregate rule flagged: %+v", rep.Violations)
	}
}

// TestShippedProgramsAreWarded keeps the paper's PTIME claim checkable: all
// the rule programs this repository ships lie in the warded fragment.
func TestShippedProgramsAreWarded(t *testing.T) {
	// Import cycle prevents using the vadalog package here; the program
	// texts are re-checked from the vadalog package's own tests. This test
	// covers the engine-level exemplars.
	programs := map[string]string{
		"control": `
			company(X) -> ccand(X, X).
			ccand(X, Z), own(Z, Y, W), X != Y, S = msum(W, <Z>), S > 0.5 -> ccand(X, Y).
		`,
		"input-mapping": `
			own(X, Y, W), F = #skc(X), T = #skc(Y) -> glink(E, F, T, W), gedgetype(E, "comp_share").
		`,
		"output-mapping": `
			glink(Z, X, Y, W), gedgetype(Z, "Control") -> control(X, Y).
		`,
	}
	for name, src := range programs {
		rep := CheckWarded(MustParse(src))
		if !rep.Warded {
			t.Errorf("%s program not warded: %+v", name, rep.Violations)
		}
	}
}

func TestWardedReportRendering(t *testing.T) {
	rep := CheckWarded(MustParse(`
		a(X) -> b(X, Z).
		b(X, Y), b(X2, Y2), X != X2 -> c(Y, Y2).
	`))
	if rep.Violations[0].Rule == "" || rep.Violations[0].RuleIndex != 1 {
		t.Errorf("violation context missing: %+v", rep.Violations[0])
	}
}
