package datalog

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// runFull evaluates prog over facts and returns the sorted answer keys of
// goal — the oracle every goal-mode test compares against.
func runFull(t *testing.T, src string, facts []Fact, goal Atom, opts ...Option) []string {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := NewEngine(prog, opts...)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	e.AssertAll(facts)
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return answerKeys(e.Query(goal))
}

// runGoal evaluates the goal demand-driven and returns sorted answer keys.
func runGoal(t *testing.T, src string, facts []Fact, goal Atom, opts ...Option) []string {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := NewGoalEngine(prog, goal, opts...)
	if err != nil {
		t.Fatalf("goal engine: %v", err)
	}
	e.AssertAll(facts)
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return answerKeys(e.Query(goal))
}

func answerKeys(bs []Binding) []string {
	keys := make([]string, 0, len(bs))
	for _, b := range bs {
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, string(v))
		}
		sort.Strings(vars)
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			parts = append(parts, v+"="+string(encodeValue(b[Variable(v)])))
		}
		keys = append(keys, strings.Join(parts, ","))
	}
	sort.Strings(keys)
	return keys
}

func checkSame(t *testing.T, full, demand []string, what string) {
	t.Helper()
	if len(full) != len(demand) {
		t.Fatalf("%s: full %d answers, demand %d answers\nfull:   %v\ndemand: %v",
			what, len(full), len(demand), full, demand)
	}
	for i := range full {
		if full[i] != demand[i] {
			t.Fatalf("%s: answer %d differs: full %q vs demand %q", what, i, full[i], demand[i])
		}
	}
}

const pathProg = `
edge(X, Y) -> path(X, Y).
edge(X, Z), path(Z, Y) -> path(X, Y).
`

func chainEdges(n int) []Fact {
	fs := make([]Fact, 0, n)
	for i := 0; i < n; i++ {
		fs = append(fs, Fact{Pred: "edge", Args: []any{int64(i), int64(i + 1)}})
	}
	return fs
}

func TestParseGoal(t *testing.T) {
	g, err := ParseGoal("control(4, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if g.Pred != "control" || len(g.Terms) != 2 {
		t.Fatalf("bad goal: %v", g)
	}
	if c, ok := g.Terms[0].(Constant); !ok || c.Value != int64(4) {
		t.Fatalf("integral numeric goal constant should normalize to int64, got %T %v", g.Terms[0], g.Terms[0])
	}
	if _, ok := g.Terms[1].(Variable); !ok {
		t.Fatalf("Y should parse as a variable, got %T", g.Terms[1])
	}

	if g, err = ParseGoal(`person("rossi", X).`); err != nil {
		t.Fatal(err)
	}
	if c, ok := g.Terms[0].(Constant); !ok || c.Value != "rossi" {
		t.Fatalf("string constant mangled: %v", g.Terms[0])
	}

	if g, err = ParseGoal("accown(1, Y, 0.25)"); err != nil {
		t.Fatal(err)
	}
	if c, ok := g.Terms[2].(Constant); !ok || c.Value != 0.25 {
		t.Fatalf("fractional constant must stay float64, got %T %v", g.Terms[2], g.Terms[2])
	}

	for _, bad := range []string{"", "control(", "control(1) extra", "control(1). control(2)", "X"} {
		if _, err := ParseGoal(bad); err == nil {
			t.Fatalf("ParseGoal(%q) should fail", bad)
		}
	}
}

func TestMagicRewriteRefusals(t *testing.T) {
	cases := []struct {
		name, prog, goal, reason string
	}{
		{"all free", pathProg, "path(X, Y)", "no bound arguments"},
		{"zero arity", "a() -> b().", "b()", "no arguments"},
		{"idb negation", `
edge(X, Y) -> path(X, Y).
path(X, Y), not path(Y, X) -> oneway(X, Y).
`, "oneway(1, Y)", "negates intensional"},
		{"existential head", "company(X) -> holder(X, Z).", "holder(1, Y)", "existential head"},
		{"bound aggregate target", `
own(X, Y, W), S = msum(W, <Y>) -> total(X, S).
`, "total(1, 0.5)", "aggregate target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.prog)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			goal, err := ParseGoal(tc.goal)
			if err != nil {
				t.Fatalf("goal: %v", err)
			}
			_, err = MagicRewrite(prog, goal)
			var nd *ErrNotDemandable
			if !errors.As(err, &nd) {
				t.Fatalf("want ErrNotDemandable, got %v", err)
			}
			if !strings.Contains(nd.Reason, tc.reason) {
				t.Fatalf("reason %q does not mention %q", nd.Reason, tc.reason)
			}
		})
	}
}

func TestGoalEngineTransitiveClosure(t *testing.T) {
	facts := chainEdges(20)
	// Forward: everything reachable from 3.
	goal, _ := ParseGoal("path(3, Y)")
	checkSame(t, runFull(t, pathProg, facts, goal), runGoal(t, pathProg, facts, goal), "path(3,Y)")
	// Reverse: everything reaching 17 — demands the bf... no, fb adornment.
	goal, _ = ParseGoal("path(X, 17)")
	checkSame(t, runFull(t, pathProg, facts, goal), runGoal(t, pathProg, facts, goal), "path(X,17)")
	// Fully bound point query.
	goal, _ = ParseGoal("path(2, 9)")
	checkSame(t, runFull(t, pathProg, facts, goal), runGoal(t, pathProg, facts, goal), "path(2,9)")
	// Bound but absent.
	goal, _ = ParseGoal("path(9, 2)")
	if got := runGoal(t, pathProg, facts, goal); len(got) != 0 {
		t.Fatalf("path(9,2) should have no answers, got %v", got)
	}
}

func TestGoalEngineDerivesLess(t *testing.T) {
	// A short chain and a long disjoint chain; demanding from the short one
	// must not derive the long one's closure (the adorned bookkeeping costs a
	// constant factor, so the other component must dominate the fixpoint).
	facts := chainEdges(10)
	for i := 100; i < 180; i++ {
		facts = append(facts, Fact{Pred: "edge", Args: []any{int64(i), int64(i + 1)}})
	}
	prog, _ := Parse(pathProg)
	goal, _ := ParseGoal("path(0, Y)")
	e, err := NewGoalEngine(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(facts)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	full, _ := NewEngine(prog)
	full.AssertAll(facts)
	if err := full.Run(); err != nil {
		t.Fatal(err)
	}
	if e.DerivedCount() >= full.DerivedCount() {
		t.Fatalf("goal engine derived %d facts, full chase %d — demand did not prune",
			e.DerivedCount(), full.DerivedCount())
	}
	checkSame(t, answerKeys(full.Query(goal)), answerKeys(e.Query(goal)), "disjoint chains")
}

func TestGoalEngineExtensionalGoal(t *testing.T) {
	// Goal over a purely extensional predicate: the import rule alone answers.
	facts := chainEdges(5)
	goal, _ := ParseGoal("edge(2, Y)")
	checkSame(t, runFull(t, pathProg, facts, goal), runGoal(t, pathProg, facts, goal), "edge(2,Y)")
}

// The company-control program from the paper (Example 3.4): recursive msum
// aggregation over ownership edges. The goal-mode totals must match the full
// chase exactly, in both the forward (controller bound) and reverse
// (controllee bound) directions.
const controlProg = `
company(X) -> ccand(X, X).
ccand(X, Z), own(Z, Y, W), X != Y, S = msum(W, <Z>), S > 0.5 -> ccand(X, Y).
ccand(X, Y), X != Y -> control(X, Y).
`

const accownProg = `
own(X, Y, W), X != Y, S = msum(W, <X, Y>) -> accown(X, Y, S).
own(X, Z, W1), X != Z, accown(Z, Y, W2), X != Y, S = msum(W1 * W2, <Z, Y>) -> accown(X, Y, S).
`

// randomOwnership builds a small random company graph: n companies,
// preferential-attachment-ish ownership edges with random weights, plus —
// when cycles is set — a few back-edges creating ownership cycles (the
// aggregate fixpoint then converges geometrically instead of exactly, so
// cyclic instances suit threshold predicates like control, acyclic ones
// exact-total comparisons like accown).
func randomOwnership(rng *rand.Rand, n int, cycles bool) []Fact {
	fs := make([]Fact, 0, n*3)
	for i := 0; i < n; i++ {
		fs = append(fs, Fact{Pred: "company", Args: []any{int64(i)}})
	}
	for i := 1; i < n; i++ {
		k := 1 + rng.Intn(2)
		for j := 0; j < k; j++ {
			from := rng.Intn(i)
			w := 0.1 + 0.9*rng.Float64()
			fs = append(fs, Fact{Pred: "own", Args: []any{int64(from), int64(i), w}})
		}
	}
	if cycles {
		for j := 0; j < n/10+1; j++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				fs = append(fs, Fact{Pred: "own", Args: []any{int64(a), int64(b), 0.1 + 0.4*rng.Float64()}})
			}
		}
	}
	return fs
}

func TestGoalEngineControlDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		facts := randomOwnership(rng, 24+trial*8, true)
		for _, gs := range []string{
			fmt.Sprintf("control(%d, Y)", rng.Intn(24)),
			fmt.Sprintf("control(X, %d)", rng.Intn(24)),
			fmt.Sprintf("control(%d, %d)", rng.Intn(24), rng.Intn(24)),
		} {
			goal, err := ParseGoal(gs)
			if err != nil {
				t.Fatal(err)
			}
			eps := WithMinAggDelta(1e-6)
			checkSame(t, runFull(t, controlProg, facts, goal, eps), runGoal(t, controlProg, facts, goal, eps),
				fmt.Sprintf("trial %d %s", trial, gs))
		}
	}
}

// accownTotals evaluates and reduces accown to its final per-(X,Y) totals —
// the engine stores every intermediate monotone-aggregate value as a fact,
// and those intermediates depend on evaluation order, so the differential
// contract for aggregates is max-per-group (exactly how ivm and vadalog read
// accown), up to the aggregate convergence epsilon on cyclic graphs.
func accownTotals(t *testing.T, facts []Fact, goal Atom, goalMode bool) map[string]float64 {
	t.Helper()
	prog, err := Parse(accownProg)
	if err != nil {
		t.Fatal(err)
	}
	var e *Engine
	if goalMode {
		e, err = NewGoalEngine(prog, goal, WithMinAggDelta(1e-9))
	} else {
		e, err = NewEngine(prog, WithMinAggDelta(1e-9))
	}
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(facts)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, f := range e.MaxByGroup("accown", 2, 0, 1) {
		// Keep only groups matching the goal's bound positions: the full
		// chase has totals for every pair, the demand cone only for the goal's.
		match := true
		for i, tm := range goal.Terms {
			if c, ok := tm.(Constant); ok && !valueEqual(f.Args[i], c.Value) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		out[fmt.Sprintf("%v|%v", f.Args[0], f.Args[1])] = f.Args[2].(float64)
	}
	return out
}

func TestGoalEngineAccownDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		facts := randomOwnership(rng, 18+trial*4, false)
		for _, gs := range []string{
			fmt.Sprintf("accown(%d, Y, W)", rng.Intn(18)),
			fmt.Sprintf("accown(X, %d, W)", rng.Intn(18)),
		} {
			goal, err := ParseGoal(gs)
			if err != nil {
				t.Fatal(err)
			}
			full := accownTotals(t, facts, goal, false)
			demand := accownTotals(t, facts, goal, true)
			if len(full) != len(demand) {
				t.Fatalf("trial %d %s: full has %d groups, demand %d", trial, gs, len(full), len(demand))
			}
			for k, fv := range full {
				dv, ok := demand[k]
				if !ok {
					t.Fatalf("trial %d %s: group %s missing from demand answers", trial, gs, k)
				}
				if diff := fv - dv; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("trial %d %s: group %s total diverges: full %v demand %v", trial, gs, k, fv, dv)
				}
			}
		}
	}
}

func TestGoalEngineMultiHead(t *testing.T) {
	prog := `
edge(X, Y) -> fwd(X, Y), bwd(Y, X).
fwd(X, Z), bwd(Z, Y) -> sib(X, Y).
`
	facts := chainEdges(8)
	goal, _ := ParseGoal("sib(3, Y)")
	checkSame(t, runFull(t, prog, facts, goal), runGoal(t, prog, facts, goal), "multi-head sib(3,Y)")
}

func TestGoalEngineEDBNegation(t *testing.T) {
	prog := `
edge(X, Y), not blocked(X, Y) -> path(X, Y).
edge(X, Z), not blocked(X, Z), path(Z, Y) -> path(X, Y).
`
	facts := chainEdges(12)
	facts = append(facts, Fact{Pred: "blocked", Args: []any{int64(5), int64(6)}})
	goal, _ := ParseGoal("path(2, Y)")
	checkSame(t, runFull(t, prog, facts, goal), runGoal(t, prog, facts, goal), "edb negation")
}

func TestGoalEngineBudgetPropagates(t *testing.T) {
	prog, _ := Parse(pathProg)
	goal, _ := ParseGoal("path(0, Y)")
	e, err := NewGoalEngine(prog, goal, WithBudget(Budget{MaxFacts: 5}))
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(chainEdges(100))
	if err := e.Run(); err == nil {
		t.Fatal("expected a budget error on a 100-node chain with MaxFacts=5")
	}
}

func TestStripDemandMarkers(t *testing.T) {
	prog, _ := Parse(pathProg)
	goal, _ := ParseGoal("path(0, 3)")
	e, err := NewGoalEngine(prog, goal, WithProvenance())
	if err != nil {
		t.Fatal(err)
	}
	e.AssertAll(chainEdges(5))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Has(Fact{Pred: "path", Args: []any{int64(0), int64(3)}}) {
		t.Fatal("goal fact not derived")
	}
	lines := e.ExplainTree(Fact{Pred: "path", Args: []any{int64(0), int64(3)}}, 32)
	clean := StripDemandMarkers(lines)
	if len(clean) == 0 {
		t.Fatal("explanation vanished entirely")
	}
	for _, l := range clean {
		if strings.Contains(l, "magic#") || strings.Contains(l, "#bf") || strings.Contains(l, "#fb") || strings.Contains(l, "#bb") {
			t.Fatalf("demand marker leaked into explanation: %q", l)
		}
	}
	// The underlying edges must still appear as premises.
	joined := strings.Join(clean, "\n")
	if !strings.Contains(joined, "edge(") {
		t.Fatalf("explanation lost its extensional premises:\n%s", joined)
	}
}

func TestDemandSeedShape(t *testing.T) {
	prog, _ := Parse(pathProg)
	goal, _ := ParseGoal("path(7, Y)")
	d, err := MagicRewrite(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seed.Pred != "magic#path#bf" {
		t.Fatalf("seed pred: %s", d.Seed.Pred)
	}
	if len(d.Seed.Args) != 1 || d.Seed.Args[0] != int64(7) {
		t.Fatalf("seed args: %v", d.Seed.Args)
	}
	if d.Goal.Pred != "path" {
		t.Fatalf("goal: %v", d.Goal)
	}
	// Every rewritten program must validate under the ordinary engine rules.
	for _, r := range d.Program.Rules {
		if err := r.Validate(); err != nil {
			t.Fatalf("generated rule %q invalid: %v", r.String(), err)
		}
	}
}
