// Package datalog implements the logic substrate of Vada-Link: a Datalog±
// engine in the style of the Vadalog system (Section 3 of the paper).
//
// The engine supports:
//
//   - existential rules (Datalog with existential quantification in rule
//     heads), evaluated by a semi-naive bottom-up chase with deterministic
//     Skolemization of existential variables;
//   - Skolem functions for OID invention (deterministic, injective, with
//     disjoint ranges per function symbol — the three properties required in
//     Section 4);
//   - comparison conditions and arithmetic assignments in rule bodies;
//   - monotonic aggregation (msum, mprod, mmax, mmin, mcount) with
//     per-contributor semantics, as used by the company-control and
//     accumulated-ownership programs (Algorithms 5 and 6);
//   - stratified negation as an extension;
//   - pluggable built-in functions (the paper's #GraphEmbedClust,
//     #GenerateBlocks and #LinkProbability hooks are registered by the
//     vadalog package).
//
// Programs written in the concrete Vadalog-like syntax are produced by the
// parser in parse.go; the evaluation engine lives in engine.go.
package datalog

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Term is a term of the logic: a Constant, a Variable, or — at runtime only —
// a Null or Skolem value wrapped in a Constant.
type Term interface {
	isTerm()
	String() string
}

// Variable is a (regular) variable. By the paper's convention variables start
// with an upper-case letter.
type Variable string

func (Variable) isTerm()          {}
func (v Variable) String() string { return string(v) }

// Constant wraps a ground value: string, float64, int64, bool, Null or
// SkolemID.
type Constant struct {
	Value any
}

func (Constant) isTerm() {}
func (c Constant) String() string {
	switch v := c.Value.(type) {
	case string:
		return strconv.Quote(v)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case int64:
		return strconv.FormatInt(v, 10)
	case bool:
		return strconv.FormatBool(v)
	case Null:
		return v.String()
	case SkolemID:
		return v.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Null is a labeled null, invented to satisfy an existential variable that is
// not explicitly Skolemized. Nulls produced for the same rule, variable and
// frontier binding coincide (deterministic chase), so re-running a program is
// reproducible and the isomorphism check of Section 4.4 reduces to set
// semantics over these canonical nulls.
type Null struct {
	ID uint64
}

func (n Null) String() string { return fmt.Sprintf("ν%d", n.ID) }

// SkolemID is the result of a Skolem function application: the function
// symbol plus a canonical encoding of the arguments. Determinism, injectivity
// and range disjointness (Section 4, "Skolem functions") follow from the
// encoding: equal (symbol, args) yield equal IDs, different args yield
// different Key strings, and the symbol participates in the identity.
type SkolemID struct {
	Fn  string
	Key string
}

func (s SkolemID) String() string { return "#" + s.Fn + "(" + s.Key + ")" }

// NewSkolem applies the Skolem function named fn to ground args.
func NewSkolem(fn string, args ...any) SkolemID {
	var sb strings.Builder
	for i, a := range args {
		if i > 0 {
			sb.WriteByte('|')
		}
		appendValue(&sb, a)
	}
	return SkolemID{Fn: fn, Key: sb.String()}
}

// Str, Num, Int and Bool are convenience constructors for constants.
func Str(s string) Constant  { return Constant{Value: s} }
func Num(f float64) Constant { return Constant{Value: f} }
func Int(i int64) Constant   { return Constant{Value: i} }
func Bool(b bool) Constant   { return Constant{Value: b} }

// encodeValue renders a ground value as a canonical string usable in fact
// keys and Skolem keys. The one-letter prefix keeps types disjoint
// (e.g. string "1" ≠ int 1 ≠ float 1.0).
func encodeValue(v any) string {
	var sb strings.Builder
	appendValue(&sb, v)
	return sb.String()
}

// appendValue writes the canonical encoding of a ground value into a builder
// without allocating an intermediate string — the hot-path form of
// encodeValue, used when building fact keys and index probes.
func appendValue(sb *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		sb.WriteByte('s')
		sb.WriteString(x)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			// Normalize integral floats so 1.0 and 1 compare equal when both
			// arrive as float64 through different arithmetic paths.
			sb.WriteByte('f')
			sb.WriteString(strconv.FormatFloat(x, 'f', 1, 64))
			return
		}
		sb.WriteByte('f')
		sb.WriteString(strconv.FormatFloat(x, 'g', 17, 64))
	case int64:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(x, 10))
	case int:
		sb.WriteByte('i')
		sb.WriteString(strconv.Itoa(x))
	case bool:
		sb.WriteByte('b')
		sb.WriteString(strconv.FormatBool(x))
	case Null:
		sb.WriteByte('n')
		sb.WriteString(strconv.FormatUint(x.ID, 10))
	case SkolemID:
		sb.WriteByte('k')
		sb.WriteString(x.Fn)
		sb.WriteByte(':')
		sb.WriteString(x.Key)
	default:
		fmt.Fprintf(sb, "?%v", x)
	}
}

// valueEqual reports whether two ground values have equal canonical
// encodings, without building the encodings. The cases mirror appendValue
// exactly: types are disjoint except int/int64 (both encode with the "i"
// prefix), and floats compare by bit pattern (the 17-digit 'g' encoding is
// injective on non-NaN floats, so -0.0 ≠ 0.0 — the same distinction the
// string form makes). Exotic values fall back to the string comparison.
func valueEqual(a, b any) bool {
	switch x := a.(type) {
	case string:
		y, ok := b.(string)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && math.Float64bits(x) == math.Float64bits(y)
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y
		case int:
			return x == int64(y)
		}
		return false
	case int:
		switch y := b.(type) {
		case int64:
			return int64(x) == y
		case int:
			return x == y
		}
		return false
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case Null:
		y, ok := b.(Null)
		return ok && x.ID == y.ID
	case SkolemID:
		y, ok := b.(SkolemID)
		return ok && x == y
	}
	return encodeValue(a) == encodeValue(b)
}

// Fact is a ground atom: a predicate applied to ground values.
type Fact struct {
	Pred string
	Args []any
}

// Key returns the canonical identity of the fact (set semantics).
func (f Fact) Key() string {
	var sb strings.Builder
	sb.WriteString(f.Pred)
	sb.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		appendValue(&sb, a)
	}
	sb.WriteByte(')')
	return sb.String()
}

func (f Fact) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = Constant{Value: a}.String()
	}
	return f.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// hashKey hashes a canonical string to a uint64, used for deterministic null
// invention.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// SortFacts orders facts by their canonical keys, for deterministic output.
func SortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Key() < fs[j].Key() })
}
